// Package autohet's root benchmark harness: one benchmark per paper table
// and figure (see DESIGN.md §2 for the index), plus the design-choice
// ablation benches from DESIGN.md §5. RL-driven benchmarks scale the search
// with b.N (one benchmark op = one search round) so per-round cost is what
// gets reported; `go run ./cmd/experiments -run all` regenerates the actual
// tables at paper scale.
package autohet

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/experiments"
	"autohet/internal/fleet"
	"autohet/internal/hw"
	"autohet/internal/isa"
	"autohet/internal/quant"
	"autohet/internal/rl"
	"autohet/internal/search"
	"autohet/internal/serving"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

func mustPlan(b *testing.B, cfg hw.Config, m *dnn.Model, st accel.Strategy, shared bool) *accel.Plan {
	b.Helper()
	p, err := accel.BuildPlan(cfg, m, st, shared)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func mustSim(b *testing.B, p *accel.Plan) *sim.Result {
	b.Helper()
	r, err := sim.Simulate(p)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFig3 evaluates the motivation study: VGG16 on the five
// homogeneous SXB accelerators plus the manual heterogeneous strategy.
func BenchmarkFig3(b *testing.B) {
	cfg := hw.DefaultConfig()
	m := dnn.VGG16()
	strategies := make([]accel.Strategy, 0, 6)
	for _, s := range xbar.SquareCandidates() {
		strategies = append(strategies, accel.Homogeneous(16, s))
	}
	strategies = append(strategies, accel.ManualHetero(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range strategies {
			mustSim(b, mustPlan(b, cfg, m, st, false))
		}
	}
}

// BenchmarkFig4 measures the empty-crossbar study's allocation sweep:
// VGG16 L1–L4 on 64×64 crossbars across four tile sizes.
func BenchmarkFig4(b *testing.B) {
	suite := experiments.NewSuite(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 measures the single-layer utilization/ADC trade-off
// evaluation, including a functional bit-sliced MVM on each mapping to
// exercise the in-situ computing path the figure describes.
func BenchmarkFig5(b *testing.B) {
	cfg := hw.DefaultConfig()
	layer := &dnn.Layer{Name: "fig5", Kind: dnn.Conv, K: 3, InC: 12, OutC: 128, Stride: 1, Pad: 0, InH: 8, InW: 8}
	m, err := dnn.NewFlatModel("fig5", 8, 8, 12, []*dnn.Layer{layer})
	if err != nil {
		b.Fatal(err)
	}
	w := quant.QuantizeWeights(dnn.SyntheticWeights(m.Mappable()[0], 1))
	in := quant.QuantizeInput(dnn.SyntheticInput(m.Mappable()[0], 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, shape := range []xbar.Shape{xbar.Square(64), xbar.Square(128)} {
			p := mustPlan(b, cfg, m, accel.Homogeneous(1, shape), false)
			mustSim(b, p)
			if _, _, err := sim.ExecuteMVM(cfg, p.Layers[0], w, in); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSearchRounds runs the AutoHet search with b.N rounds so the metric
// is per-round search cost on the given model.
func benchSearchRounds(b *testing.B, m *dnn.Model, cands []xbar.Shape, shared bool) {
	b.Helper()
	env, err := search.NewEnv(hw.DefaultConfig(), m, cands, shared)
	if err != nil {
		b.Fatal(err)
	}
	opts := search.DefaultOptions()
	opts.Rounds = b.N
	opts.Agent = rl.DefaultAgentConfig(search.StateDim)
	opts.UpdateStride = m.NumMappable()/16 + 1
	res, err := search.AutoHet(env, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.BestResult.RUE()/res.RefRUE, "RUEgain/op")
}

// BenchmarkFig9 measures the overall-comparison search, per model: one op
// is one RL search round (Fig. 9's AutoHet bars come from 300 such rounds).
func BenchmarkFig9(b *testing.B) {
	for _, m := range dnn.Zoo() {
		b.Run(m.Name, func(b *testing.B) {
			benchSearchRounds(b, m, xbar.DefaultCandidates(), true)
		})
	}
}

// BenchmarkFig10 measures the ablation stages' search configurations on
// VGG16: +He (square candidates), +Hy (hybrid candidates), All (+sharing).
func BenchmarkFig10(b *testing.B) {
	m := dnn.VGG16()
	b.Run("He", func(b *testing.B) { benchSearchRounds(b, m, xbar.SquareCandidates(), false) })
	b.Run("Hy", func(b *testing.B) { benchSearchRounds(b, m, xbar.DefaultCandidates(), false) })
	b.Run("All", func(b *testing.B) { benchSearchRounds(b, m, xbar.DefaultCandidates(), true) })
}

// BenchmarkTable3 measures decoding + evaluation of a fixed per-layer
// strategy table row set (the three VGG16 strategy columns).
func BenchmarkTable3(b *testing.B) {
	cfg := hw.DefaultConfig()
	m := dnn.VGG16()
	strategies := []accel.Strategy{
		accel.Homogeneous(16, xbar.Square(512)), // Base
		accel.ManualHetero(16),                  // a heterogeneous SXB column
		accel.Homogeneous(16, xbar.Rect(576, 512)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range strategies {
			mustSim(b, mustPlan(b, cfg, m, st, false))
		}
	}
}

// BenchmarkTable4 measures the occupied-tile comparison: the same strategy
// allocated tile-based vs tile-shared on every model.
func BenchmarkTable4(b *testing.B) {
	cfg := hw.DefaultConfig()
	models := dnn.Zoo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			st := accel.Homogeneous(m.NumMappable(), xbar.Rect(288, 256))
			plain := mustPlan(b, cfg, m, st, false)
			shared := mustPlan(b, cfg, m, st, true)
			if shared.OccupiedTiles() > plain.OccupiedTiles() {
				b.Fatal("sharing increased tiles")
			}
		}
	}
}

// BenchmarkTable5 measures the area/latency evaluation across the six
// Table-5 accelerators.
func BenchmarkTable5(b *testing.B) {
	cfg := hw.DefaultConfig()
	m := dnn.VGG16()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range xbar.SquareCandidates() {
			r := mustSim(b, mustPlan(b, cfg, m, accel.Homogeneous(16, s), false))
			_ = r.AreaUM2
		}
		mustSim(b, mustPlan(b, cfg, m, accel.Homogeneous(16, xbar.Rect(576, 512)), true))
	}
}

// BenchmarkFig11 measures the three sensitivity sweeps' evaluation kernels:
// (a) candidate-ratio mixes, (b) candidate counts, (c) PEs per tile.
func BenchmarkFig11(b *testing.B) {
	m := dnn.VGG16()
	b.Run("a_ratio", func(b *testing.B) {
		cands := append(xbar.SquareCandidates()[:2], xbar.RectCandidates()[2:]...)
		benchSearchRounds(b, m, cands, true)
	})
	b.Run("b_candidates", func(b *testing.B) {
		benchSearchRounds(b, m, xbar.MixedPool()[:8], true)
	})
	b.Run("c_pes", func(b *testing.B) {
		cfg := hw.DefaultConfig()
		cfg.PEsPerTile = 32
		env, err := search.NewEnv(cfg, m, xbar.DefaultCandidates(), true)
		if err != nil {
			b.Fatal(err)
		}
		opts := search.DefaultOptions()
		opts.Rounds = b.N
		if _, err := search.AutoHet(env, opts); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkSearch300 measures one full §4.5-style search round on VGG16
// (the paper reports 49.2 minutes for 300 rounds on MNSIM; one op here is
// one round on this repo's simulator).
func BenchmarkSearch300(b *testing.B) {
	benchSearchRounds(b, dnn.VGG16(), xbar.DefaultCandidates(), true)
}

// BenchmarkAutoHetSearch measures the evaluation engine's per-round cost on
// VGG16, cached vs uncached. The eval/* variants drive an SA-style episode
// stream (one layer mutated per round — the search's actual access pattern)
// straight through the evaluator; the search/* variants run the full RL
// loop with the engine on and off. `cached` must come out ≥3x faster per
// round than `uncached`; the bit-identicality of the two paths is asserted
// in internal/search's tests.
func BenchmarkAutoHetSearch(b *testing.B) {
	m := dnn.VGG16()
	cands := xbar.DefaultCandidates()
	for _, cached := range []bool{false, true} {
		name := map[bool]string{false: "uncached", true: "cached"}[cached]
		b.Run("eval/"+name, func(b *testing.B) {
			env, err := search.NewEnv(hw.DefaultConfig(), m, cands, true)
			if err != nil {
				b.Fatal(err)
			}
			env.NoCache = !cached
			ev := env.Evaluator()
			n := env.NumLayers()
			indices := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				indices[i%n] = (indices[i%n] + i/n + 1) % len(cands)
				if _, err := ev.EvalIndices(indices); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(100*ev.Stats().HitRate(), "hit%")
		})
		b.Run("search/"+name, func(b *testing.B) {
			env, err := search.NewEnv(hw.DefaultConfig(), m, cands, true)
			if err != nil {
				b.Fatal(err)
			}
			env.NoCache = !cached
			opts := search.DefaultOptions()
			opts.Rounds = b.N
			opts.UpdateStride = m.NumMappable()/16 + 1
			res, err := search.AutoHet(env, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.Stats.HitRate(), "hit%")
		})
	}
}

// --- Design-choice ablations (DESIGN.md §5) ---

// BenchmarkAllocSchemes contrasts Algorithm 1's two-pointer tile sharing
// with the bin-packing-optimal full repack.
func BenchmarkAllocSchemes(b *testing.B) {
	cfg := hw.DefaultConfig()
	m := dnn.ResNet152()
	st := accel.Homogeneous(m.NumMappable(), xbar.Square(64))
	b.Run("two_pointer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := mustPlan(b, cfg, m, st, true)
			_ = p.OccupiedTiles()
		}
	})
	b.Run("optimal_repack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := mustPlan(b, cfg, m, st, false)
			p.RepackOptimal()
			_ = p.OccupiedTiles()
		}
	})
}

// BenchmarkRewardShaping contrasts the paper's R = u/e objective with a
// utilization-only objective under identical search budgets.
func BenchmarkRewardShaping(b *testing.B) {
	m := dnn.VGG16()
	objectives := map[string]func(*sim.Result) float64{
		"rue":       nil, // default Eq. 2
		"util_only": func(r *sim.Result) float64 { return r.Utilization },
	}
	for name, obj := range objectives {
		b.Run(name, func(b *testing.B) {
			env, err := search.NewEnv(hw.DefaultConfig(), m, xbar.DefaultCandidates(), true)
			if err != nil {
				b.Fatal(err)
			}
			opts := search.DefaultOptions()
			opts.Rounds = b.N
			opts.Objective = obj
			res, err := search.AutoHet(env, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.BestResult.RUE(), "finalRUE/op")
		})
	}
}

// BenchmarkSearchers contrasts the DDPG search with random search and the
// greedy utilization-first baseline at equal evaluation budgets.
func BenchmarkSearchers(b *testing.B) {
	m := dnn.VGG16()
	newEnv := func(b *testing.B) *search.Env {
		env, err := search.NewEnv(hw.DefaultConfig(), m, xbar.DefaultCandidates(), true)
		if err != nil {
			b.Fatal(err)
		}
		return env
	}
	b.Run("ddpg", func(b *testing.B) { benchSearchRounds(b, m, xbar.DefaultCandidates(), true) })
	b.Run("td3", func(b *testing.B) {
		env := newEnv(b)
		opts := search.DefaultOptions()
		opts.Rounds = b.N
		opts.Agent = rl.DefaultAgentConfig(search.StateDim)
		opts.Agent.TwinCritics = true
		opts.Agent.TargetNoise = 0.05
		res, err := search.AutoHet(env, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BestResult.RUE(), "finalRUE/op")
	})
	b.Run("random", func(b *testing.B) {
		ev, err := search.RandomSearch(newEnv(b), b.N, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ev.Result.RUE(), "finalRUE/op")
	})
	b.Run("greedy", func(b *testing.B) {
		env := newEnv(b)
		for i := 0; i < b.N; i++ {
			if _, err := search.Greedy(env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipelineBalance measures the PipeLayer-style replication
// balancer (DESIGN.md §5 extension) against the unbalanced pipeline.
func BenchmarkPipelineBalance(b *testing.B) {
	cfg := hw.DefaultConfig()
	m := dnn.VGG16()
	st := accel.Homogeneous(16, xbar.Square(128))
	b.Run("unbalanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := mustPlan(b, cfg, m, st, true)
			r := mustSim(b, p)
			_ = sim.PipelineFromResult(r, 64)
		}
	})
	b.Run("balanced", func(b *testing.B) {
		var speedup float64
		for i := 0; i < b.N; i++ {
			br, err := sim.BalancePipeline(cfg, m, st, true, 50)
			if err != nil {
				b.Fatal(err)
			}
			speedup = br.Speedup()
		}
		b.ReportMetric(speedup, "speedup/op")
	})
}

// BenchmarkProgramming measures the one-time weight-write pricing.
func BenchmarkProgramming(b *testing.B) {
	cfg := hw.DefaultConfig()
	m := dnn.VGG16()
	p := mustPlan(b, cfg, m, accel.Homogeneous(16, xbar.Rect(576, 512)), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.SimulateProgramming(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGCCompile measures Global Controller program compilation and
// binary round-tripping for the deepest model.
func BenchmarkGCCompile(b *testing.B) {
	cfg := hw.DefaultConfig()
	m := dnn.ResNet152()
	p := mustPlan(b, cfg, m, accel.Homogeneous(m.NumMappable(), xbar.Rect(288, 256)), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := isa.Compile(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := isa.Decode(bytes.NewReader(prog.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServing measures the discrete-event serving simulation at 80%
// load on the pipelined AlexNet accelerator.
func BenchmarkServing(b *testing.B) {
	cfg := hw.DefaultConfig()
	p := mustPlan(b, cfg, dnn.AlexNet(), accel.Homogeneous(8, xbar.Square(128)), true)
	pr, err := sim.SimulateBatch(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := serving.Workload{ArrivalRate: 0.8 * 1e9 / pr.IntervalNS, Requests: 1000, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := serving.Serve(pr, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetThroughput measures the concurrent serving runtime's request
// throughput (goroutine dispatch + batching + accounting, not accelerator
// time) across replica counts and dispatch policies. Fleets run free-running
// (no wall-clock pacing) so the number reported is the runtime's own
// overhead ceiling in requests/second.
func BenchmarkFleetThroughput(b *testing.B) {
	pr := &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}
	for _, replicas := range []int{1, 4, 16} {
		for _, policy := range []fleet.Policy{fleet.RoundRobin, fleet.JoinShortestQueue, fleet.PowerOfTwo} {
			b.Run(fmt.Sprintf("replicas_%d/%s", replicas, policy), func(b *testing.B) {
				cfg := fleet.DefaultConfig()
				cfg.Policy = policy
				cfg.TimeScale = 1e-9 // free-running
				cfg.QueueDepth = 4096
				specs := make([]fleet.ReplicaSpec, replicas)
				for i := range specs {
					specs[i] = fleet.ReplicaSpec{Pipeline: pr}
				}
				f, err := fleet.New(cfg, specs...)
				if err != nil {
					b.Fatal(err)
				}
				done := make(chan fleet.Outcome, b.N)
				b.ResetTimer()
				start := time.Now()
				accepted := 0
				for i := 0; i < b.N; i++ {
					if err := f.Submit(fleet.NewRequest(float64(i)*100, 0, done)); err == nil {
						accepted++
					}
				}
				for i := 0; i < accepted; i++ {
					<-done
				}
				elapsed := time.Since(start).Seconds()
				b.StopTimer()
				f.Close()
				if elapsed > 0 {
					b.ReportMetric(float64(accepted)/elapsed, "req/s")
				}
				if accepted == 0 {
					b.Fatal("no requests accepted")
				}
			})
		}
	}
}
