// Command fleet serves an inference workload on a multi-replica accelerator
// deployment: each replica group wraps a mapped design (a homogeneous
// crossbar shape or an explicit AutoHet strategy), and a dispatcher spreads
// a Poisson request stream across them under a pluggable load-balancing
// policy, with per-replica dynamic batching, bounded admission queues,
// latency budgets, and retry routing away from fault-degraded replicas.
//
// Usage:
//
//	fleet -model VGG16 -spec "4*128x128" -policy jsq -load 0.9
//	fleet -model VGG16 -spec "2*128x128;2*L1:72x64 L2-L16:576x512" -policy p2c
//	fleet -model VGG16 -spec "3*128x128" -fault-replica g0-1 -fault-at 0.3
//
// The -engine flag selects the runtime: "goroutine" (default) runs the
// wall-clock-paced concurrent fleet above; "des" runs the same service
// model on the discrete-event virtual-time engine (internal/des), which
// simulates cluster-scale fleets — tile the parsed spec up to -replicas,
// split into -clusters for two-level routing, and drive it with a -trace
// arrival process:
//
//	fleet -engine des -spec "4*128x128" -replicas 10000 -clusters 100 \
//	      -trace bursty -requests 1000000 -policy jsq
//
// -workers shards a DES fleet into parallel per-cluster simulation lanes
// (round-robin cluster routing required; results are bit-identical to
// -workers 1):
//
//	fleet -engine des -spec "4*128x128" -replicas 100000 -clusters 1000 \
//	      -trace bursty -requests 10000000 -policy jsq -cluster-policy rr -workers 8
//
// -chaos injects a seeded fault storm (correlated crashes plus fail-slow
// replicas, timed as fractions of the run) into either engine, and
// -resilience turns on the client-side stack that rides it out:
//
//	fleet -engine des -spec "4*128x128" -replicas 64 -requests 100000 \
//	      -budget 400000 -chaos -resilience
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on http.DefaultServeMux
	"os"
	"strconv"
	"strings"
	"time"

	"autohet/internal/accel"
	"autohet/internal/chaos"
	"autohet/internal/des"
	"autohet/internal/des/trace"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/fleet"
	"autohet/internal/hw"
	"autohet/internal/noc"
	"autohet/internal/obs"
	"autohet/internal/serving"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// desOpts carries the DES-engine flags through run.
type desOpts struct {
	engine    string
	traceName string
	replicas  int
	clusters  int
	// workers > 1 shards the fleet into parallel cluster lanes (see
	// des.Config.Workers); clusterPolicy overrides the cluster-level
	// routing policy ("" = same as the replica policy). The sharded path
	// needs round-robin cluster routing, e.g. -policy jsq -cluster-policy rr.
	workers       int
	clusterPolicy string
	// scaleTarget enables the TargetUtilization autoscaler (0 = off);
	// admitCap enables QueueCap admission control (0 = off).
	scaleTarget float64
	admitCap    float64
}

// chaosOpts carries the fault-storm and resilience flags through run. The
// storm is timed in fractions of the run's virtual span so one set of
// flags scales from a 5k-request goroutine run to a 1M-request DES run.
type chaosOpts struct {
	on         bool
	at         float64 // storm start, fraction of the run
	mttr       float64 // crash outage length, fraction of the run (slowdowns last 2x)
	crashFrac  float64
	slowFrac   float64
	slowFactor float64
	resilience bool
}

// storm builds the seeded schedule over the replica names for a run
// spanning spanNS of virtual time.
func (c chaosOpts) storm(names []string, spanNS float64, seed int64) *chaos.Schedule {
	return chaos.Merge(
		chaos.CrashStorm(c.at*spanNS, c.mttr*spanNS, names, c.crashFrac, seed),
		chaos.SlowStorm(c.at*spanNS, 2*c.mttr*spanNS, names, c.slowFrac, c.slowFactor, seed),
	)
}

func main() {
	model := flag.String("model", "VGG16", "model name (see dnn.ByName)")
	spec := flag.String("spec", "4*128x128",
		`replica groups, ';'-separated: "N*shape" or "N*strategy"`)
	policy := flag.String("policy", "jsq", "dispatch policy: rr, least-outstanding, jsq, p2c")
	load := flag.Float64("load", 0.8, "offered load as a fraction of aggregate capacity")
	requests := flag.Int("requests", 5000, "requests to offer")
	batch := flag.Int("batch", 1, "max dynamic batch size per replica (1 = no batching)")
	batchTimeout := flag.Float64("batch-timeout", 100, "batch close timeout in virtual µs")
	queue := flag.Int("queue", 256, "per-replica admission queue depth")
	budget := flag.Float64("budget", 0, "per-request latency budget in virtual µs (0 = none)")
	seed := flag.Int64("seed", 0, "arrival-process seed (0 = the default fixed stream)")
	timescale := flag.Float64("timescale", 0.2, "wall-clock pacing factor (1 = real time)")
	faultReplica := flag.String("fault-replica", "", "replica name to degrade mid-run (see printed legend)")
	faultRate := flag.Float64("fault-rate", 0.05, "stuck-at cell rate injected into -fault-replica")
	faultAt := flag.Float64("fault-at", 0.3, "injection instant as a fraction of the run")
	repairCap := flag.Float64("repair-capacity", 0, "stuck-at cell rate each replica's spares can absorb (0 = no self-repair)")
	repairMiss := flag.Float64("repair-miss", 0, "per-sweep detection miss probability of the online health loop")
	hwConfig := flag.String("hwconfig", "", "JSON hardware-config file (empty = paper defaults)")
	metricsAddr := flag.String("metrics-addr", "",
		"address serving /metrics (Prometheus text) and /debug/pprof/ (empty = disabled)")
	hold := flag.Duration("hold", 0,
		"keep the metrics endpoint up this long after the run (for scraping; needs -metrics-addr)")
	shards := flag.Int("shards", 1,
		"pipeline-parallel stages: cut the model into this many latency-balanced stages and chain requests through one replica per stage (needs a single-design -spec)")
	engine := flag.String("engine", "goroutine", "runtime: goroutine (wall-clock paced) or des (virtual time)")
	traceName := flag.String("trace", "poisson",
		"arrival process for -engine des: poisson, diurnal, bursty, pareto")
	replicas := flag.Int("replicas", 0,
		"tile the -spec replicas up to this fleet size (-engine des only; 0 = spec as written)")
	clusters := flag.Int("clusters", 0,
		"cluster count for two-level routing (-engine des only; 0 = one cluster per 100 replicas)")
	workers := flag.Int("workers", 1,
		"parallel simulation lanes (-engine des only; needs -cluster-policy rr, results identical to -workers 1)")
	clusterPolicy := flag.String("cluster-policy", "",
		"cluster-level routing policy (-engine des only; empty = same as -policy)")
	scaleTarget := flag.Float64("scale-target", 0,
		"autoscaler utilization target in (0,1] (-engine des only; 0 = autoscaling off)")
	admitCap := flag.Float64("admit-queue-cap", 0,
		"admission control: max queued requests per active replica (-engine des only; 0 = off)")
	chaosOn := flag.Bool("chaos", false, "inject a seeded fault storm (crashes + fail-slow; see -chaos-* knobs)")
	chaosAt := flag.Float64("chaos-at", 0.3, "storm start as a fraction of the run")
	chaosMTTR := flag.Float64("chaos-mttr", 0.2,
		"crash outage length as a fraction of the run (fail-slow lasts twice this)")
	chaosCrashFrac := flag.Float64("chaos-crash-frac", 0.25, "fraction of replicas the storm crashes")
	chaosSlowFrac := flag.Float64("chaos-slow-frac", 0.125, "fraction of replicas the storm makes fail-slow")
	chaosSlowFactor := flag.Float64("chaos-slow-factor", 10, "fail-slow service-time multiplier")
	resilience := flag.Bool("resilience", false,
		"enable client-side resilience (des: retry + hedging + breakers + brownout; goroutine: circuit breakers)")
	flag.Parse()

	dopts := desOpts{engine: *engine, traceName: *traceName, replicas: *replicas,
		clusters: *clusters, workers: *workers, clusterPolicy: *clusterPolicy,
		scaleTarget: *scaleTarget, admitCap: *admitCap}
	copts := chaosOpts{on: *chaosOn, at: *chaosAt, mttr: *chaosMTTR, crashFrac: *chaosCrashFrac,
		slowFrac: *chaosSlowFrac, slowFactor: *chaosSlowFactor, resilience: *resilience}
	if err := run(*model, *spec, *policy, *load, *requests, *batch, *batchTimeout,
		*queue, *budget, *seed, *timescale, *faultReplica, *faultRate, *faultAt,
		*repairCap, *repairMiss, *hwConfig, *metricsAddr, *hold, *shards, dopts, copts); err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}
}

// serveMetrics exposes the obs registry and pprof on addr. The listener is
// bound synchronously (so the printed URL is live before the workload
// starts); requests are served in the background for the process lifetime.
func serveMetrics(addr string) error {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Default.Handler())
	// The pprof import registered its handlers on the default mux.
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("metrics: http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "fleet: metrics server:", err)
		}
	}()
	return nil
}

// parseSpec expands "N*shapeOrStrategy" groups into replica specs. A group
// text containing ':' is an explicit accel strategy; otherwise it is a
// homogeneous crossbar shape.
func parseSpec(cfg hw.Config, m *dnn.Model, text string, batch int) ([]fleet.ReplicaSpec, error) {
	var specs []fleet.ReplicaSpec
	for gi, part := range strings.Split(text, ";") {
		part = strings.TrimSpace(part)
		countText, designText, ok := strings.Cut(part, "*")
		if !ok {
			countText, designText = "1", part
		}
		count, err := strconv.Atoi(strings.TrimSpace(countText))
		if err != nil || count < 1 {
			return nil, fmt.Errorf("bad replica count in group %q", part)
		}
		designText = strings.TrimSpace(designText)
		var st accel.Strategy
		if strings.Contains(designText, ":") {
			st, err = accel.ParseStrategy(designText)
		} else {
			var shape xbar.Shape
			shape, err = xbar.ParseShape(designText)
			st = accel.Homogeneous(m.NumMappable(), shape)
		}
		if err != nil {
			return nil, err
		}
		if len(st) != m.NumMappable() {
			return nil, fmt.Errorf("group %q covers %d layers, %s has %d",
				part, len(st), m.Name, m.NumMappable())
		}
		p, err := accel.BuildPlan(cfg, m, st, true)
		if err != nil {
			return nil, err
		}
		pr, err := sim.SimulateBatch(p, batch)
		if err != nil {
			return nil, err
		}
		fmt.Printf("group g%d: %d x %s — capacity %.0f req/s, area %.1f mm²\n",
			gi, count, designText, 1e9/pr.IntervalNS, p.Area()/1e6)
		for ci := 0; ci < count; ci++ {
			specs = append(specs, fleet.ReplicaSpec{
				Name: fmt.Sprintf("g%d-%d", gi, ci), Pipeline: pr, Plan: p,
			})
		}
	}
	return specs, nil
}

func run(modelName, specText, policyText string, load float64, requests, batch int,
	batchTimeoutUS float64, queue int, budgetUS float64, seed int64, timescale float64,
	faultReplica string, faultRate, faultAt, repairCap, repairMiss float64, hwConfig string,
	metricsAddr string, hold time.Duration, shards int, dopts desOpts, copts chaosOpts) error {
	if dopts.engine != "goroutine" && dopts.engine != "des" {
		return fmt.Errorf("unknown engine %q (want goroutine or des)", dopts.engine)
	}
	m, err := dnn.ByName(modelName)
	if err != nil {
		return err
	}
	if metricsAddr != "" {
		if err := serveMetrics(metricsAddr); err != nil {
			return err
		}
	}
	cfg, err := hw.LoadConfig(hwConfig)
	if err != nil {
		return err
	}
	policy, err := fleet.ParsePolicy(policyText)
	if err != nil {
		return err
	}
	if load <= 0 {
		return fmt.Errorf("load fraction %v", load)
	}
	if batch < 1 {
		return fmt.Errorf("batch %d", batch)
	}
	specs, err := parseSpec(cfg, m, specText, batch)
	if err != nil {
		return err
	}
	var sr *sim.ShardResult
	if shards > 1 {
		if sr, err = shardDesign(cfg, specs, shards); err != nil {
			return err
		}
	}
	if dopts.engine == "des" {
		if faultReplica != "" || repairCap > 0 {
			return fmt.Errorf("mid-run fault injection and self-repair need -engine goroutine")
		}
		return desRun(specs, policy, load, requests, batch, batchTimeoutUS, queue,
			budgetUS, seed, dopts, copts, hold, metricsAddr, sr)
	}
	if repairCap > 0 {
		rs := fleet.RepairSpec{Capacity: repairCap, MissRate: repairMiss}
		for i := range specs {
			specs[i].Repair = &rs
		}
		fmt.Printf("self-repair: spares absorb %.2f%% stuck cells, %.0f%% detection miss per sweep\n",
			100*repairCap, 100*repairMiss)
	}

	var aggregate float64
	if sr != nil {
		specs = shardSpecs(specs, sr)
		aggregate = chainCapacityRPS(len(specs), sr)
		fmt.Printf("fleet: %d replicas across %d pipeline stages, chain capacity %.0f req/s; offering %.0f%% = %.0f req/s\n\n",
			len(specs), len(sr.Stages), aggregate, 100*load, load*aggregate)
	} else {
		for _, s := range specs {
			aggregate += 1e9 / s.Pipeline.IntervalNS
		}
		fmt.Printf("fleet: %d replicas, aggregate capacity %.0f req/s; offering %.0f%% = %.0f req/s\n\n",
			len(specs), aggregate, 100*load, load*aggregate)
	}

	fcfg := fleet.Config{
		Policy:         policy,
		MaxBatch:       batch,
		BatchTimeoutNS: batchTimeoutUS * 1000,
		QueueDepth:     queue,
		TimeScale:      timescale,
		Seed:           seed,
	}
	if sr != nil {
		fcfg.Shards = len(sr.Stages)
		fcfg.StageTransferNS = stageTransfers(sr)
	}
	if copts.resilience {
		fcfg.Breaker = &chaos.BreakerConfig{}
		fmt.Println("resilience: per-replica circuit breakers enabled")
	}
	f, err := fleet.New(fcfg, specs...)
	if err != nil {
		return err
	}
	w := fleet.Workload{
		ArrivalRate: load * aggregate,
		Requests:    requests,
		Seed:        seed,
		BudgetNS:    budgetUS * 1000,
	}
	if copts.on {
		spanNS := float64(requests) / w.ArrivalRate * 1e9
		sched := copts.storm(replicaNames(specs), spanNS, seed)
		stop := f.StartChaos(sched)
		defer stop()
		fmt.Printf("chaos: %d scheduled events — crash %.0f%% at %.0f%% of the run (mttr %.0f%%), %.0f%% fail-slow %gx\n",
			len(sched.Events), 100*copts.crashFrac, 100*copts.at, 100*copts.mttr,
			100*copts.slowFrac, copts.slowFactor)
	}
	var timer *time.Timer
	if faultReplica != "" {
		spanNS := float64(requests) / w.ArrivalRate * 1e9
		at := time.Duration(faultAt * spanNS * timescale)
		stuck := &fault.Model{StuckAtZero: faultRate, Seed: 1}
		timer = time.AfterFunc(at, func() {
			if err := f.InjectFault(faultReplica, stuck); err != nil {
				fmt.Fprintln(os.Stderr, "fleet:", err)
			} else {
				fmt.Printf("[%.0f%% of run] injected %.1f%% stuck-at cells into %s\n",
					100*faultAt, 100*faultRate, faultReplica)
			}
		})
	}
	res, err := fleet.Run(f, w)
	if timer != nil {
		timer.Stop()
	}
	snap := f.Snapshot()
	f.Close()
	if err != nil {
		return err
	}

	fmt.Printf("\n%v\n\n", res)
	fmt.Printf("%-8s %-7s %-8s %-8s %-8s %-11s %-12s %-12s %s\n",
		"replica", "health", "repairs", "served", "batches", "mean batch", "p50 (µs)", "p99 (µs)", "max (µs)")
	for _, r := range snap.Replicas {
		fmt.Printf("%-8s %-7.2f %-8d %-8d %-8d %-11.2f %-12.1f %-12.1f %.1f\n",
			r.Name, r.Health, r.Repairs, r.Served, r.Batches, r.MeanBatch,
			r.P50NS/1000, r.P99NS/1000, r.MaxNS/1000)
	}
	if hold > 0 && metricsAddr != "" {
		fmt.Printf("\nholding metrics endpoint for %v\n", hold)
		time.Sleep(hold)
	}
	return nil
}

// tileSpecs replicates the parsed spec round-robin up to n replicas. Plans
// and pipeline results are shared pointers, so a 10k-replica fleet costs
// 10k spec structs, not 10k mapped designs.
func tileSpecs(specs []fleet.ReplicaSpec, n int) []fleet.ReplicaSpec {
	if n <= len(specs) {
		return specs
	}
	tiled := make([]fleet.ReplicaSpec, n)
	for i := range tiled {
		tiled[i] = specs[i%len(specs)]
		tiled[i].Name = fmt.Sprintf("r%d", i)
	}
	return tiled
}

// shardDesign cuts the (single) parsed design into priced pipeline stages
// on the bank's mesh and prints the stage table.
func shardDesign(cfg hw.Config, specs []fleet.ReplicaSpec, shards int) (*sim.ShardResult, error) {
	for _, s := range specs[1:] {
		if s.Plan != specs[0].Plan {
			return nil, fmt.Errorf("-shards needs a single-design -spec: every replica must share one plan")
		}
	}
	mesh, err := noc.NewMeshFor(cfg.TilesPerBank)
	if err != nil {
		return nil, err
	}
	sr, err := sim.ShardPlan(specs[0].Plan, mesh, shards)
	if err != nil {
		return nil, err
	}
	fmt.Printf("sharded: %d stages, chain fill %.0f ns, interval %.0f ns, inter-stage transfer %.0f ns total\n",
		len(sr.Stages), sr.FillNS(), sr.IntervalNS(), sr.TransferNS)
	fmt.Printf("%-6s %-8s %-11s %-13s %-11s %s\n", "stage", "layers", "fill (ns)", "interval (ns)", "area (mm²)", "transfer (ns)")
	for si := range sr.Stages {
		st := &sr.Stages[si]
		fmt.Printf("s%-5d %-8s %-11.0f %-13.0f %-11.2f %.0f\n",
			si, fmt.Sprintf("%d-%d", st.Stage.Lo, st.Stage.Hi-1), st.FillNS, st.IntervalNS, st.AreaUM2/1e6, st.TransferNS)
	}
	fmt.Println()
	return sr, nil
}

// shardSpecs rewrites the replica specs for pipeline-parallel serving: the
// fleet engines split replicas into contiguous stage groups (stage s is
// replicas[s·N/K : (s+1)·N/K]), so the same bounds here hand each replica
// exactly the timing of the stage it will host. The whole-model plan pointer
// is dropped — its area no longer describes a stage replica.
func shardSpecs(specs []fleet.ReplicaSpec, sr *sim.ShardResult) []fleet.ReplicaSpec {
	n, k := len(specs), len(sr.Stages)
	out := make([]fleet.ReplicaSpec, n)
	for s := 0; s < k; s++ {
		st := &sr.Stages[s]
		pr := &sim.PipelineResult{FillNS: st.FillNS, IntervalNS: st.IntervalNS}
		for i := s * n / k; i < (s+1)*n/k; i++ {
			out[i] = specs[i]
			out[i].Pipeline = pr
			out[i].Plan = nil
		}
	}
	return out
}

// stageTransfers extracts the fleet-config transfer vector (entries 0..K−2).
func stageTransfers(sr *sim.ShardResult) []float64 {
	transfers := make([]float64, len(sr.Stages)-1)
	for s := range transfers {
		transfers[s] = sr.Stages[s].TransferNS
	}
	return transfers
}

// chainCapacityRPS is the sharded fleet's steady-state service ceiling: the
// bottleneck stage's aggregate initiation rate over its replica group.
func chainCapacityRPS(n int, sr *sim.ShardResult) float64 {
	k := len(sr.Stages)
	cap := math.Inf(1)
	for s := 0; s < k; s++ {
		group := float64((s+1)*n/k - s*n/k)
		if c := group * 1e9 / sr.Stages[s].IntervalNS; c < cap {
			cap = c
		}
	}
	return cap
}

// replicaNames collects the (already assigned) spec names for a storm.
func replicaNames(specs []fleet.ReplicaSpec) []string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// desRun drives the spec on the discrete-event engine: virtual time, no
// pacing, cluster-scale fleet sizes.
func desRun(specs []fleet.ReplicaSpec, policy fleet.Policy, load float64,
	requests, batch int, batchTimeoutUS float64, queue int, budgetUS float64,
	seed int64, dopts desOpts, copts chaosOpts, hold time.Duration, metricsAddr string,
	sr *sim.ShardResult) error {
	specs = tileSpecs(specs, dopts.replicas)
	clusters := dopts.clusters
	if clusters <= 0 {
		clusters = (len(specs) + 99) / 100
	}
	var aggregate float64
	if sr != nil {
		if dopts.clusters > 1 {
			return fmt.Errorf("-shards needs flat routing (-clusters 1)")
		}
		clusters = 1
		specs = shardSpecs(specs, sr)
		aggregate = chainCapacityRPS(len(specs), sr)
		rate := load * aggregate
		fmt.Printf("des fleet: %d replicas across %d pipeline stages, chain capacity %.0f req/s; offering %.0f%% = %.0f req/s (%s arrivals)\n",
			len(specs), len(sr.Stages), aggregate, 100*load, rate, dopts.traceName)
	} else {
		for _, s := range specs {
			aggregate += 1e9 / s.Pipeline.IntervalNS
		}
		fmt.Printf("des fleet: %d replicas in %d clusters, aggregate capacity %.0f req/s; offering %.0f%% = %.0f req/s (%s arrivals)\n",
			len(specs), clusters, aggregate, 100*load, load*aggregate, dopts.traceName)
	}
	rate := load * aggregate

	clusterPolicy := policy
	if dopts.clusterPolicy != "" {
		var err error
		clusterPolicy, err = fleet.ParsePolicy(dopts.clusterPolicy)
		if err != nil {
			return err
		}
	}
	cfg := des.Config{
		Policy:         policy,
		ClusterPolicy:  clusterPolicy,
		Clusters:       clusters,
		MaxBatch:       batch,
		BatchTimeoutNS: batchTimeoutUS * 1000,
		QueueDepth:     queue,
		Seed:           seed,
		Workers:        dopts.workers,
	}
	if sr != nil {
		cfg.Shards = len(sr.Stages)
		cfg.StageTransferNS = stageTransfers(sr)
	}
	if dopts.scaleTarget > 0 {
		cfg.Scaler = des.TargetUtilization{Target: dopts.scaleTarget, Min: 1}
	}
	if dopts.admitCap > 0 {
		cfg.Admit = des.QueueCap{MaxQueuedPerActive: dopts.admitCap}
	}
	if copts.resilience {
		cfg.Resilience = chaos.DefaultResilience()
		fmt.Println("resilience: retry + hedging + circuit breakers + brownout enabled")
	}
	if copts.on {
		spanNS := float64(requests) / rate * 1e9
		cfg.Chaos = copts.storm(replicaNames(specs), spanNS, cfg.Seed)
		fmt.Printf("chaos: %d scheduled events — crash %.0f%% at %.0f%% of the run (mttr %.0f%%), %.0f%% fail-slow %gx\n",
			len(cfg.Chaos.Events), 100*copts.crashFrac, 100*copts.at, 100*copts.mttr,
			100*copts.slowFrac, copts.slowFactor)
	}
	f, err := des.NewFleet(cfg, specs...)
	if err != nil {
		return err
	}
	if seed == 0 {
		seed = serving.DefaultSeed
	}
	gen, err := trace.Parse(dopts.traceName, rate, seed)
	if err != nil {
		return err
	}
	res, err := f.RunTrace(gen, requests, budgetUS*1000)
	if err != nil {
		return err
	}

	fmt.Printf("\n%v\n", res)
	if dopts.workers > 1 {
		fmt.Printf("parallel lanes: %d of %d workers requested\n", res.Lanes, dopts.workers)
	}
	if res.AdmissionShed > 0 || res.ScaleActions > 0 {
		fmt.Printf("admission shed %d, autoscaler actions %d\n", res.AdmissionShed, res.ScaleActions)
	}
	if res.ChaosEvents > 0 || res.Retried > 0 || res.Hedged > 0 || res.BrownoutShed > 0 {
		fmt.Printf("chaos events %d; retried %d, hedged %d (%d wasted), brownout shed %d, failed %d, unroutable %d\n",
			res.ChaosEvents, res.Retried, res.Hedged, res.HedgeWasted, res.BrownoutShed,
			res.Failed, res.Unroutable)
	}
	// Per-cluster table, elided for very large fleets.
	if len(res.Clusters) <= 64 {
		fmt.Printf("\n%-8s %-9s %-8s %-10s %-11s %s\n", "cluster", "replicas", "active", "served", "adm. shed", "peak queue")
		for _, cl := range res.Clusters {
			fmt.Printf("%-8s %-9d %-8d %-10d %-11d %d\n", cl.Name, cl.Replicas, cl.Active, cl.Served, cl.AdmissionShed, cl.PeakQueued)
		}
	}
	if hold > 0 && metricsAddr != "" {
		fmt.Printf("\nholding metrics endpoint for %v\n", hold)
		time.Sleep(hold)
	}
	return nil
}
