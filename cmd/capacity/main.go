// Command capacity sizes an accelerator deployment for inference serving:
// it builds the mapping, derives the pipelined throughput ceiling, and runs
// Poisson request streams at rising load fractions, printing the latency
// distribution and stability at each — the provisioning table an edge
// deployment needs.
//
// Usage:
//
//	capacity -model VGG16 -strategy "L1:72x64 L2-L16:576x512"
//	capacity -model AlexNet -shape 128x128 -balance 50
//	capacity -model AlexNet -shape 128x128 -requests 20000 -loads 0.5,0.9,1.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/serving"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

func main() {
	model := flag.String("model", "VGG16", "model name (see dnn.ByName)")
	shape := flag.String("shape", "128x128", "homogeneous crossbar shape")
	strategy := flag.String("strategy", "", "explicit strategy (overrides -shape)")
	balance := flag.Int("balance", 0, "extra-tile budget for pipeline balancing by weight replication (0 = off)")
	requests := flag.Int("requests", 5000, "requests per load point")
	loads := flag.String("loads", "0.25,0.5,0.8,0.95,1.2", "load fractions of the capacity ceiling")
	seed := flag.Int64("seed", 42, "arrival-process seed")
	hwConfig := flag.String("hwconfig", "", "JSON hardware-config file (empty = paper defaults)")
	flag.Parse()

	if err := run(*model, *shape, *strategy, *balance, *requests, *loads, *seed, *hwConfig); err != nil {
		fmt.Fprintln(os.Stderr, "capacity:", err)
		os.Exit(1)
	}
}

func run(modelName, shapeText, strategyText string, balance, requests int, loadsText string, seed int64, hwConfig string) error {
	m, err := dnn.ByName(modelName)
	if err != nil {
		return err
	}
	cfg, err := hw.LoadConfig(hwConfig)
	if err != nil {
		return err
	}
	var st accel.Strategy
	if strategyText != "" {
		st, err = accel.ParseStrategy(strategyText)
	} else {
		var s xbar.Shape
		s, err = xbar.ParseShape(shapeText)
		st = accel.Homogeneous(m.NumMappable(), s)
	}
	if err != nil {
		return err
	}
	if len(st) != m.NumMappable() {
		return fmt.Errorf("strategy covers %d layers, %s has %d", len(st), m.Name, m.NumMappable())
	}

	var loadFracs []float64
	for _, part := range strings.Split(loadsText, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad load fraction %q", part)
		}
		loadFracs = append(loadFracs, v)
	}

	var pr *sim.PipelineResult
	if balance > 0 {
		br, err := sim.BalancePipeline(cfg, m, st, true, balance)
		if err != nil {
			return err
		}
		pr = br.Pipeline
		fmt.Printf("balanced pipeline: %.2fx interval speedup for %d extra tiles (replication %v)\n",
			br.Speedup(), br.ExtraTiles, br.Replication)
	} else {
		p, err := accel.BuildPlan(cfg, m, st, true)
		if err != nil {
			return err
		}
		pr, err = sim.SimulateBatch(p, 1)
		if err != nil {
			return err
		}
	}

	fmt.Printf("model:    %v\n", m)
	fmt.Printf("pipeline: fill %.4g ns, interval %.4g ns (bottleneck %s)\n",
		pr.FillNS, pr.IntervalNS, pr.Bottleneck.Layer.Name)
	fmt.Printf("capacity: %.0f inferences/s\n\n", 1e9/pr.IntervalNS)

	fmt.Printf("%-8s %-8s %-12s %-12s %-12s %-8s %s\n",
		"load", "stable", "p50 (µs)", "p95 (µs)", "p99 (µs)", "queue", "util")
	for _, frac := range loadFracs {
		w := serving.Workload{
			ArrivalRate: frac * 1e9 / pr.IntervalNS,
			Requests:    requests,
			Seed:        seed,
		}
		stats, err := serving.Serve(pr, w)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-8t %-12.1f %-12.1f %-12.1f %-8d %.0f%%\n",
			fmt.Sprintf("%.0f%%", 100*frac), stats.Stable,
			stats.P50NS/1000, stats.P95NS/1000, stats.P99NS/1000,
			stats.MaxQueue, 100*stats.Utilization)
	}
	return nil
}
