// Command hetmap maps a DNN model onto the heterogeneous accelerator under
// an explicit crossbar strategy and dumps the resulting tile allocation,
// with and without the tile-shared scheme.
//
// Usage:
//
//	hetmap -model AlexNet -shape 64x64          # homogeneous strategy
//	hetmap -model VGG16 -manual                 # the paper's Fig. 3 manual strategy
//	hetmap -model VGG16 -shape 64x64 -tiles     # also dump every tile
package main

import (
	"flag"
	"fmt"
	"os"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

func main() {
	model := flag.String("model", "AlexNet", "model: AlexNet, VGG16, ResNet152")
	shape := flag.String("shape", "64x64", "homogeneous crossbar shape, e.g. 64x64 or 36x32")
	manual := flag.Bool("manual", false, "use the paper's manual heterogeneous VGG16 strategy instead of -shape")
	dumpTiles := flag.Bool("tiles", false, "dump every occupied tile")
	drawXB := flag.Bool("xb", false, "draw each layer's first-crossbar cell occupancy as ASCII")
	hwConfig := flag.String("hwconfig", "", "JSON hardware-config file (empty = paper defaults)")
	flag.Parse()

	if err := run(*model, *shape, *manual, *dumpTiles, *drawXB, *hwConfig); err != nil {
		fmt.Fprintln(os.Stderr, "hetmap:", err)
		os.Exit(1)
	}
}

func run(modelName, shapeText string, manual, dumpTiles, drawXB bool, hwConfig string) error {
	m, err := dnn.ByName(modelName)
	if err != nil {
		return err
	}
	var st accel.Strategy
	if manual {
		st = accel.ManualHetero(m.NumMappable())
	} else {
		s, err := xbar.ParseShape(shapeText)
		if err != nil {
			return err
		}
		st = accel.Homogeneous(m.NumMappable(), s)
	}
	cfg, err := hw.LoadConfig(hwConfig)
	if err != nil {
		return err
	}

	for _, shared := range []bool{false, true} {
		label := "tile-based"
		if shared {
			label = "tile-shared"
		}
		p, err := accel.BuildPlan(cfg, m, st, shared)
		if err != nil {
			return err
		}
		r, err := sim.Simulate(p)
		if err != nil {
			return err
		}
		fmt.Printf("== %s allocation ==\n", label)
		fmt.Printf("%s\n", r)
		for _, la := range p.Layers {
			fmt.Printf("  L%-3d %-22s %v grid %dx%d → %d slots in %d tiles (array util %.1f%%)\n",
				la.Layer.Index+1, la.Layer.String(), la.Shape,
				la.Mapping.GridRows, la.Mapping.GridCols,
				la.SlotsNeeded(), p.LayerTiles(la.Layer.Index), 100*la.Mapping.Utilization())
		}
		if shared && len(p.Remaps) > 0 {
			fmt.Println("  remapped tiles (Algorithm 1 combMap):")
			for head, tails := range p.Remaps {
				fmt.Printf("    tile %d absorbed %v\n", head, tails)
			}
		}
		if dumpTiles {
			if err := p.RenderOccupancy(os.Stdout); err != nil {
				return err
			}
		}
		fmt.Printf("  %s\n\n", p.OccupancySummary())
		if drawXB && !shared { // cell maps are allocation-independent
			for _, la := range p.Layers {
				if err := la.Mapping.RenderMapping(os.Stdout, 32); err != nil {
					return err
				}
			}
			fmt.Println()
		}
	}
	return nil
}
