// Command autohet runs the AutoHet RL search on one DNN model and prints
// the per-layer heterogeneous crossbar strategy it finds, alongside the
// homogeneous baselines.
//
// Usage:
//
//	autohet -model VGG16 -rounds 300
//	autohet -model ResNet152 -candidates 32x32,36x32,72x64,288x256,576x512
//	autohet -model AlexNet -noshare        # disable tile-shared allocation
package main

import (
	"flag"
	"fmt"
	"os"

	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/rl"
	"autohet/internal/search"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

func main() {
	model := flag.String("model", "VGG16", "model: AlexNet, VGG16, ResNet152")
	rounds := flag.Int("rounds", 300, "RL search rounds (paper: 300)")
	seed := flag.Int64("seed", 1, "RNG seed")
	cands := flag.String("candidates", xbar.ShapeNames(xbar.DefaultCandidates()),
		"comma-separated crossbar candidates, e.g. 32x32,36x32,72x64")
	noshare := flag.Bool("noshare", false, "disable the tile-shared allocation scheme")
	verbose := flag.Bool("v", false, "log every round that improves the best strategy")
	objective := flag.String("objective", "rue", "search objective: rue (Eq. 2), util, energy, or area")
	saveAgent := flag.String("save-agent", "", "write the trained DDPG agent to this file")
	hwConfig := flag.String("hwconfig", "", "JSON hardware-config file (see hw.Config; empty = paper defaults)")
	flag.Parse()

	if err := run(*model, *rounds, *seed, *cands, !*noshare, *verbose, *objective, *saveAgent, *hwConfig); err != nil {
		fmt.Fprintln(os.Stderr, "autohet:", err)
		os.Exit(1)
	}
}

// objectiveFn resolves the -objective flag. The non-RUE objectives are
// extensions for deployment-specific searches (DESIGN.md §5).
func objectiveFn(name string) (func(*sim.Result) float64, error) {
	switch name {
	case "rue":
		return nil, nil // search default: Eq. 2
	case "util":
		return func(r *sim.Result) float64 { return r.Utilization }, nil
	case "energy":
		return func(r *sim.Result) float64 { return 1 / r.EnergyNJ }, nil
	case "area":
		return func(r *sim.Result) float64 { return 1 / r.AreaUM2 }, nil
	default:
		return nil, fmt.Errorf("unknown objective %q (have rue, util, energy, area)", name)
	}
}

func run(modelName string, rounds int, seed int64, candList string, shared, verbose bool, objective, saveAgent, hwConfig string) error {
	m, err := dnn.ByName(modelName)
	if err != nil {
		return err
	}
	candidates, err := xbar.ParseShapeList(candList)
	if err != nil {
		return err
	}
	ds, err := dnn.DatasetFor(m.Name)
	if err != nil {
		return err
	}
	fmt.Printf("model:      %v\n", m)
	fmt.Printf("dataset:    %v\n", ds)
	fmt.Printf("candidates: %s  tile-shared: %t\n\n", xbar.ShapeNames(candidates), shared)

	cfg, err := hw.LoadConfig(hwConfig)
	if err != nil {
		return err
	}
	env, err := search.NewEnv(cfg, m, candidates, shared)
	if err != nil {
		return err
	}

	// Homogeneous baselines over the candidate set.
	evals, best, err := search.BestHomogeneous(env, candidates)
	if err != nil {
		return err
	}
	// Mark the RUE-best (*) and the utilization/energy Pareto set (p).
	front := search.ParetoFront(evals, search.ObjEnergy, search.ObjNegUtil)
	onFront := map[int]bool{}
	for _, i := range front {
		onFront[i] = true
	}
	fmt.Println("homogeneous baselines (* best RUE, p util/energy Pareto-optimal):")
	for i, e := range evals {
		marker := " "
		if onFront[i] {
			marker = "p"
		}
		if i == best {
			marker = "*"
		}
		r := e.Result
		fmt.Printf("  %s %-8v util %6.2f%%  energy %10.4g nJ  RUE %10.4g  power %.2f W\n",
			marker, candidates[i], r.Utilization, r.EnergyNJ, r.RUE(), r.PowerW())
	}

	opts := search.DefaultOptions()
	opts.Rounds = rounds
	opts.Agent = rl.DefaultAgentConfig(search.StateDim)
	opts.Agent.Seed = seed
	opts.UpdateStride = m.NumMappable()/16 + 1
	opts.Objective, err = objectiveFn(objective)
	if err != nil {
		return err
	}
	if verbose {
		opts.Progress = func(rs search.RoundStats) {
			if rs.Best {
				fmt.Printf("  round %3d: new best RUE %.4g\n", rs.Round, rs.RUE)
			}
		}
	}

	fmt.Printf("\nsearching %d rounds...\n", rounds)
	res, err := search.AutoHet(env, opts)
	if err != nil {
		return err
	}
	r := res.BestResult
	fmt.Printf("\nbest strategy: %s\n", res.Best)
	fmt.Printf("  util %.2f%%  energy %.4g nJ  RUE %.4g (%.2fx best homogeneous)\n",
		r.Utilization, r.EnergyNJ, r.RUE(), r.RUE()/evals[best].Result.RUE())
	fmt.Printf("  latency %.4g ns  area %.4g µm²  occupied tiles %d\n",
		r.LatencyNS, r.AreaUM2, r.OccupiedTiles)
	fmt.Printf("  search time %v (simulator %v)\n", res.TotalTime.Round(1e6), res.SimTime.Round(1e6))
	if saveAgent != "" {
		f, err := os.Create(saveAgent)
		if err != nil {
			return err
		}
		if err := res.Agent.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  trained agent written to %s\n", saveAgent)
	}
	return nil
}
