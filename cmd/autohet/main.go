// Command autohet runs the AutoHet RL search on one DNN model and prints
// the per-layer heterogeneous crossbar strategy it finds, alongside the
// homogeneous baselines.
//
// Usage:
//
//	autohet -model VGG16 -rounds 300
//	autohet -model ResNet152 -candidates 32x32,36x32,72x64,288x256,576x512
//	autohet -model AlexNet -noshare        # disable tile-shared allocation
//	autohet -model VGG16 -fault-rate 0.002 -repair 4,1   # fault/repair study
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/hw"
	"autohet/internal/obs"
	"autohet/internal/repair"
	"autohet/internal/rl"
	"autohet/internal/search"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

func main() {
	model := flag.String("model", "VGG16", "model: AlexNet, VGG16, ResNet152")
	rounds := flag.Int("rounds", 300, "RL search rounds (paper: 300)")
	seed := flag.Int64("seed", 1, "RNG seed")
	cands := flag.String("candidates", xbar.ShapeNames(xbar.DefaultCandidates()),
		"comma-separated crossbar candidates, e.g. 32x32,36x32,72x64")
	noshare := flag.Bool("noshare", false, "disable the tile-shared allocation scheme")
	verbose := flag.Bool("v", false, "log every round that improves the best strategy")
	objective := flag.String("objective", "rue", "search objective: rue (Eq. 2), util, energy, or area")
	saveAgent := flag.String("save-agent", "", "write the trained DDPG agent to this file")
	hwConfig := flag.String("hwconfig", "", "JSON hardware-config file (see hw.Config; empty = paper defaults)")
	faultRate := flag.Float64("fault-rate", 0, "stuck-at cell rate for the fault study (split evenly SA0/SA1; 0 = none)")
	readNoise := flag.Float64("read-noise", 0, "analog read-noise sigma in integer sum units for the fault study")
	faultsFile := flag.String("faults", "", "JSON fault-model file (see fault.Model; -fault-rate/-read-noise override its fields)")
	repairSpec := flag.String("repair", "", `spare provisioning "C,X": C spare columns per crossbar and X spare PEs per tile (e.g. 4,1)`)
	metricsJSON := flag.String("metrics-json", "", "write an obs-registry JSON snapshot (search/sim counters, stage timings) to this file after the run")
	flag.Parse()

	fm, prov, err := faultArgs(*faultsFile, *faultRate, *readNoise, *seed, *repairSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autohet:", err)
		os.Exit(1)
	}
	if err := run(*model, *rounds, *seed, *cands, !*noshare, *verbose, *objective, *saveAgent, *hwConfig, fm, prov); err != nil {
		fmt.Fprintln(os.Stderr, "autohet:", err)
		os.Exit(1)
	}
	if *metricsJSON != "" {
		if err := writeMetricsJSON(*metricsJSON); err != nil {
			fmt.Fprintln(os.Stderr, "autohet:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsJSON)
	}
}

// writeMetricsJSON dumps the process-wide obs registry — search stage
// timings, per-searcher eval counts, sim cache hit/miss counters — as an
// indented JSON snapshot.
func writeMetricsJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// faultArgs assembles the fault study's model and spare provisioning from
// the CLI surface: the JSON file (if any) is the base, explicit flags
// override its fields.
func faultArgs(faultsFile string, faultRate, readNoise float64, seed int64, repairSpec string) (*fault.Model, *repair.Provision, error) {
	fm, err := fault.LoadModel(faultsFile)
	if err != nil {
		return nil, nil, err
	}
	if faultRate > 0 || readNoise > 0 {
		if fm == nil {
			fm = &fault.Model{Seed: seed}
		}
		if faultRate > 0 {
			fm.StuckAtZero, fm.StuckAtOne = faultRate/2, faultRate/2
		}
		if readNoise > 0 {
			fm.ReadNoiseSigma = readNoise
		}
		if err := fm.Validate(); err != nil {
			return nil, nil, err
		}
	}
	if repairSpec == "" {
		return fm, nil, nil
	}
	colsText, xbsText, ok := strings.Cut(repairSpec, ",")
	if !ok {
		xbsText = "0"
	}
	cols, err := strconv.Atoi(strings.TrimSpace(colsText))
	if err != nil {
		return nil, nil, fmt.Errorf("bad -repair %q: %v", repairSpec, err)
	}
	xbs, err := strconv.Atoi(strings.TrimSpace(xbsText))
	if err != nil {
		return nil, nil, fmt.Errorf("bad -repair %q: %v", repairSpec, err)
	}
	prov := repair.Provision{SpareCols: cols, SpareXBs: xbs}
	if err := prov.Validate(); err != nil {
		return nil, nil, err
	}
	return fm, &prov, nil
}

// objectiveFn resolves the -objective flag. The non-RUE objectives are
// extensions for deployment-specific searches (DESIGN.md §5).
func objectiveFn(name string) (func(*sim.Result) float64, error) {
	switch name {
	case "rue":
		return nil, nil // search default: Eq. 2
	case "util":
		return func(r *sim.Result) float64 { return r.Utilization }, nil
	case "energy":
		return func(r *sim.Result) float64 { return 1 / r.EnergyNJ }, nil
	case "area":
		return func(r *sim.Result) float64 { return 1 / r.AreaUM2 }, nil
	default:
		return nil, fmt.Errorf("unknown objective %q (have rue, util, energy, area)", name)
	}
}

func run(modelName string, rounds int, seed int64, candList string, shared, verbose bool, objective, saveAgent, hwConfig string, fm *fault.Model, prov *repair.Provision) error {
	m, err := dnn.ByName(modelName)
	if err != nil {
		return err
	}
	candidates, err := xbar.ParseShapeList(candList)
	if err != nil {
		return err
	}
	ds, err := dnn.DatasetFor(m.Name)
	if err != nil {
		return err
	}
	fmt.Printf("model:      %v\n", m)
	fmt.Printf("dataset:    %v\n", ds)
	fmt.Printf("candidates: %s  tile-shared: %t\n\n", xbar.ShapeNames(candidates), shared)

	cfg, err := hw.LoadConfig(hwConfig)
	if err != nil {
		return err
	}
	env, err := search.NewEnv(cfg, m, candidates, shared)
	if err != nil {
		return err
	}

	// Homogeneous baselines over the candidate set.
	evals, best, err := search.BestHomogeneous(env, candidates)
	if err != nil {
		return err
	}
	// Mark the RUE-best (*) and the utilization/energy Pareto set (p).
	front := search.ParetoFront(evals, search.ObjEnergy, search.ObjNegUtil)
	onFront := map[int]bool{}
	for _, i := range front {
		onFront[i] = true
	}
	fmt.Println("homogeneous baselines (* best RUE, p util/energy Pareto-optimal):")
	for i, e := range evals {
		marker := " "
		if onFront[i] {
			marker = "p"
		}
		if i == best {
			marker = "*"
		}
		r := e.Result
		fmt.Printf("  %s %-8v util %6.2f%%  energy %10.4g nJ  RUE %10.4g  power %.2f W\n",
			marker, candidates[i], r.Utilization, r.EnergyNJ, r.RUE(), r.PowerW())
	}

	opts := search.DefaultOptions()
	opts.Rounds = rounds
	opts.Agent = rl.DefaultAgentConfig(search.StateDim)
	opts.Agent.Seed = seed
	opts.UpdateStride = m.NumMappable()/16 + 1
	opts.Objective, err = objectiveFn(objective)
	if err != nil {
		return err
	}
	if verbose {
		opts.Progress = func(rs search.RoundStats) {
			if rs.Best {
				fmt.Printf("  round %3d: new best RUE %.4g\n", rs.Round, rs.RUE)
			}
		}
	}

	fmt.Printf("\nsearching %d rounds...\n", rounds)
	res, err := search.AutoHet(env, opts)
	if err != nil {
		return err
	}
	r := res.BestResult
	fmt.Printf("\nbest strategy: %s\n", res.Best)
	fmt.Printf("  util %.2f%%  energy %.4g nJ  RUE %.4g (%.2fx best homogeneous)\n",
		r.Utilization, r.EnergyNJ, r.RUE(), r.RUE()/evals[best].Result.RUE())
	fmt.Printf("  latency %.4g ns  area %.4g µm²  occupied tiles %d\n",
		r.LatencyNS, r.AreaUM2, r.OccupiedTiles)
	fmt.Printf("  search time %v (simulator %v)\n", res.TotalTime.Round(1e6), res.SimTime.Round(1e6))
	fmt.Printf("  evaluations %d (cache hits %d, hit rate %.1f%%)\n",
		res.Stats.Evals, res.Stats.CacheHits, 100*res.Stats.HitRate())
	if saveAgent != "" {
		f, err := os.Create(saveAgent)
		if err != nil {
			return err
		}
		if err := res.Agent.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  trained agent written to %s\n", saveAgent)
	}
	if fm != nil || prov != nil {
		if err := faultStudy(cfg, m, res.Best, shared, r, fm, prov); err != nil {
			return err
		}
	}
	return nil
}

// faultStudy reports how the searched strategy tolerates the requested
// fault model: the honest RUE/area cost of provisioning spares, and per
// layer whether the spare budget analytically covers the stuck-at rate
// (repair.Provision.MaxCellRate). Read noise is analog and not repairable,
// so it is only echoed.
func faultStudy(cfg hw.Config, m *dnn.Model, st accel.Strategy, shared bool, base *sim.Result, fm *fault.Model, prov *repair.Provision) error {
	rate := fm.CellFaultRate()
	fmt.Printf("\nfault study: stuck-at rate %.3g%%, read-noise sigma %.3g\n", 100*rate, fm.ReadNoiseSigma)
	if prov == nil {
		fmt.Println("  no spares provisioned (-repair C,X to provision); faults can only be masked, not repaired")
	}

	spares := repair.Provision{}
	if prov != nil {
		spares = *prov
	}
	p, err := accel.Build(cfg, m, accel.PlanSpec{Strategy: st, Shared: shared, Spares: spares})
	if err != nil {
		return err
	}
	r, err := sim.Simulate(p)
	if err != nil {
		return err
	}
	if prov != nil {
		fmt.Printf("  spares: %d columns/crossbar, %d PEs/tile — util %.2f%% (was %.2f%%), "+
			"RUE %.4g (was %.4g), area %.4g µm² (+%.1f%%)\n",
			spares.SpareCols, spares.SpareXBs, r.Utilization, base.Utilization,
			r.RUE(), base.RUE(), r.AreaUM2, 100*(r.AreaUM2/base.AreaUM2-1))
	}

	if rate > 0 {
		fmt.Println("  per-layer repair coverage (analytic, full detection):")
		covered := true
		for _, la := range p.Layers {
			budget := p.RepairBudget(la)
			max := budget.MaxCellRate(la.Shape.R, la.Shape.C, la.WeightBits, la.SlotsNeeded())
			ok := rate <= max
			covered = covered && ok
			mark := "✓"
			if !ok {
				mark = "✗ (masking)"
			}
			fmt.Printf("    %-6s %-9v spares %d cols + %d crossbars: covers ≤%.3g%%  %s\n",
				la.Layer.Name, la.Shape, budget.SpareCols, budget.SpareXBs, 100*max, mark)
		}
		if covered {
			fmt.Println("  repaired inference is bit-exact with the ideal accelerator at this rate")
		} else {
			fmt.Println("  spares exhausted on ✗ layers: known-bad cells are masked to the nearest representable weight (bounded error)")
		}
	}
	if fm.ReadNoiseSigma > 0 {
		fmt.Println("  note: analog read noise is not repairable by remapping; it adds on top of any residual stuck-at error")
	}
	return nil
}
