// Command gcprog compiles a DNN mapping into the accelerator's Global
// Controller instruction stream (paper §3.1), and can disassemble, save,
// load, and execute the binary program against the functional simulator.
//
// Usage:
//
//	gcprog -model AlexNet -shape 64x64 -dis           # compile + disassemble
//	gcprog -model AlexNet -shape 64x64 -o prog.gc     # save binary
//	gcprog -model AlexNet -shape 64x64 -run           # compile + execute
//	gcprog -in prog.gc -model AlexNet -shape 64x64 -run
package main

import (
	"flag"
	"fmt"
	"os"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/isa"
	"autohet/internal/xbar"
)

func main() {
	model := flag.String("model", "AlexNet", "model: AlexNet, VGG16, ResNet152")
	shape := flag.String("shape", "64x64", "homogeneous crossbar shape")
	strategy := flag.String("strategy", "", "explicit strategy (overrides -shape), e.g. \"L1:72x64 L2-L16:576x512\"")
	dis := flag.Bool("dis", false, "disassemble the program to stdout")
	out := flag.String("o", "", "write the binary program to this file")
	in := flag.String("in", "", "load the binary program from this file instead of compiling")
	run := flag.Bool("run", false, "execute the program on a synthetic input")
	timeIt := flag.Bool("time", false, "price the program instruction by instruction")
	seed := flag.Int64("seed", 1, "synthetic weight/input seed")
	flag.Parse()

	if err := mainErr(*model, *shape, *strategy, *dis, *out, *in, *run, *timeIt, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gcprog:", err)
		os.Exit(1)
	}
}

func mainErr(modelName, shapeText, strategyText string, dis bool, out, in string, run, timeIt bool, seed int64) error {
	m, err := dnn.ByName(modelName)
	if err != nil {
		return err
	}
	var st accel.Strategy
	if strategyText != "" {
		st, err = accel.ParseStrategy(strategyText)
	} else {
		var s xbar.Shape
		s, err = xbar.ParseShape(shapeText)
		st = accel.Homogeneous(m.NumMappable(), s)
	}
	if err != nil {
		return err
	}
	plan, err := accel.BuildPlan(hw.DefaultConfig(), m, st, true)
	if err != nil {
		return err
	}

	var prog *isa.Program
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		prog, err = isa.Decode(f)
		if err != nil {
			return err
		}
	} else {
		prog, err = isa.Compile(plan)
		if err != nil {
			return err
		}
	}
	fmt.Printf("program: %d instructions (%d bytes encoded)\n", len(prog.Instrs), len(prog.Bytes()))

	if dis {
		if err := prog.Disassemble(os.Stdout); err != nil {
			return err
		}
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := prog.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if timeIt {
		tp, err := isa.Time(prog, plan)
		if err != nil {
			return err
		}
		fmt.Printf("weight programming (one-time): %.4g ns\n", tp.ProgramNS)
		fmt.Printf("inference critical path:       %.4g ns over %d instructions\n",
			tp.InferenceNS, len(tp.CriticalPath()))
		fmt.Println("top critical-path instructions:")
		path := tp.CriticalPath()
		for i := 0; i < len(path) && i < 8; i++ {
			fmt.Printf("  %04d  %-28s %.4g ns\n", path[i].PC, path[i].Instr, path[i].Latency)
		}
	}
	if run {
		input := dnn.SyntheticTensor(m.InC, m.InH, m.InW, seed)
		ctl := isa.NewController(plan, seed)
		outVec, err := ctl.Run(prog, input)
		if err != nil {
			return err
		}
		top := 0
		for i, v := range outVec {
			if v > outVec[top] {
				top = i
			}
		}
		fmt.Printf("executed: %d outputs, argmax=%d (%.4g)\n", len(outVec), top, outVec[top])
	}
	return nil
}
