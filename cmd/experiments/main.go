// Command experiments regenerates the paper's evaluation tables and figures
// (see DESIGN.md §2 for the experiment index).
//
// Usage:
//
//	experiments -run all                       # every experiment, paper order
//	experiments -run fig9 -rounds 300          # one experiment, paper-scale search
//	experiments -run table5 -csv out/          # also emit CSV files
//	experiments -bench-json BENCH_search.json  # search-speedup benchmark only
//	experiments -bench mvm -bench-json BENCH_mvm.json  # packed-MVM benchmark
//	experiments -bench fleet -bench-json BENCH_fleet.json  # DES fleet benchmark
//	experiments -run fig9 -cpuprofile cpu.out  # profile with go tool pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"autohet/internal/experiments"
	"autohet/internal/obs"
	"autohet/internal/report"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, ext, or one of "+
		strings.Join(experiments.Names, ", ")+" / "+strings.Join(experiments.Extensions, ", "))
	rounds := flag.Int("rounds", 300, "RL search rounds per search (paper: 300)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	csvDir := flag.String("csv", "", "directory to also write per-table CSV files into")
	benchJSON := flag.String("bench-json", "", "run a benchmark instead of experiments and write its JSON document to this path")
	bench := flag.String("bench", "search", "which benchmark -bench-json runs: search (cached-vs-uncached search), mvm (packed-vs-scalar MVM engine), or fleet (DES cluster-scale fleet)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsJSON := flag.String("metrics-json", "", "write an obs-registry JSON snapshot (search/sim counters, stage timings) to this file on exit")
	flag.Parse()

	if *metricsJSON != "" {
		defer func() {
			if err := writeMetricsJSON(*metricsJSON); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: metrics-json: %v\n", err)
				return
			}
			fmt.Printf("metrics snapshot written to %s\n", *metricsJSON)
		}()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
			}
		}()
	}

	if *benchJSON != "" {
		switch *bench {
		case "search":
			b, err := experiments.BenchSearch(*rounds, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bench: %v\n", err)
				os.Exit(1)
			}
			if err := b.WriteJSON(*benchJSON); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("search bench (%s, %d rounds, %d workers): uncached %.2fs, cached %.2fs (%.1fx, hit rate %.1f%%) -> %s\n",
				b.Model, b.Rounds, b.Workers, b.Uncached.WallSeconds, b.Cached.WallSeconds,
				b.Speedup, 100*b.Cached.HitRate, *benchJSON)
		case "mvm":
			b, err := experiments.BenchMVM(*seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bench: %v\n", err)
				os.Exit(1)
			}
			if err := b.WriteJSON(*benchJSON); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("mvm bench (%d workers): kernel %.0fns packed vs %.0fns scalar (%.0fx); %s end-to-end %.3fs/inf (%.1f inf/s, %.2f allocs/patch, est. %.0fx over scalar) -> %s\n",
				b.Workers, b.Kernel.PackedNsPerMVM, b.Kernel.ScalarNsPerMVM, b.Kernel.Speedup,
				b.EndToEnd.Model, b.EndToEnd.WallSecondsPerInf, b.EndToEnd.InferencesPerSec,
				b.EndToEnd.AllocsPerPatch, b.EndToEnd.EstimatedSpeedup, *benchJSON)
			fmt.Printf("  kernel batch sweep (Fig. 5 layer):\n")
			fmt.Printf("    %6s  %12s  %12s  %8s\n", "batch", "ns/MVM", "MVMs/s", "vs B=1")
			for _, kl := range b.KernelBatch {
				fmt.Printf("    %6d  %12.0f  %12.0f  %7.2fx\n", kl.Batch, kl.NsPerMVM, kl.MVMsPerSec, kl.SpeedupVsB1)
			}
			fmt.Printf("  %s serving sweep (fast kernels; bit-exact pipeline %.2f inf/s):\n",
				b.EndToEnd.Model, b.EndToEnd.BitExactInfPerSec)
			fmt.Printf("    %6s  %12s  %12s\n", "batch", "s/inf", "inf/s")
			for _, sl := range b.EndToEnd.ServeBatch {
				fmt.Printf("    %6d  %12.4f  %12.2f\n", sl.Batch, sl.WallSecondsPerInf, sl.InferencesPerSec)
			}
		case "fleet":
			b, err := experiments.BenchFleet(*seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bench: %v\n", err)
				os.Exit(1)
			}
			if err := b.WriteJSON(*benchJSON); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bench: %v\n", err)
				os.Exit(1)
			}
			for _, l := range b.Legs {
				fmt.Printf("fleet bench: %d replicas / %d requests: %.2fs wall, %.1fM ev/s, %.0fx virtual/wall, %.0f req/s simulated\n",
					l.Replicas, l.Requests, l.WallSeconds, l.EventsPerSec/1e6, l.SpeedupVsWall, l.RequestsPerSec)
			}
			fmt.Printf("fleet bench -> %s\n", *benchJSON)
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown benchmark %q (want search, mvm, or fleet)\n", *bench)
			os.Exit(1)
		}
		return
	}

	suite := experiments.NewSuite(*rounds, *seed)
	var names []string
	switch *run {
	case "all":
		names = experiments.Names
	case "ext":
		names = experiments.Extensions
	default:
		names = strings.Split(*run, ",")
	}
	isExtension := func(name string) bool {
		for _, e := range experiments.Extensions {
			if e == name {
				return true
			}
		}
		return false
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		var tables []*report.Table
		var err error
		if isExtension(name) {
			tables, err = suite.RunExtension(name)
		} else {
			tables, err = suite.Run(name)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		for i, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: render %s: %v\n", name, err)
				os.Exit(1)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, fmt.Sprintf("%s_%d.csv", name, i), t); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: csv %s: %v\n", name, err)
					os.Exit(1)
				}
			}
		}
	}
}

// writeMetricsJSON dumps the process-wide obs registry — search stage
// timings, per-searcher eval counts, sim cache hit/miss counters — as an
// indented JSON snapshot.
func writeMetricsJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(dir, name string, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}
