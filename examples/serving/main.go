// Serving: size an AutoHet accelerator for an edge inference service.
// The layer pipeline (each layer's weights resident in its own crossbars)
// lets consecutive requests overlap; this example finds the throughput
// ceiling of a VGG16 deployment, then drives Poisson request streams at
// rising intensities and reports the latency distribution and stability.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/serving"
	"autohet/internal/sim"
)

func main() {
	m := dnn.VGG16()
	// The strategy the paper-scale RL search settles on for VGG16
	// (Table 3, +Hy column): a small RXB for layer 1, 576x512 elsewhere.
	st, err := accel.ParseStrategy("L1:72x64 L2-L16:576x512")
	if err != nil {
		log.Fatal(err)
	}
	p, err := accel.BuildPlan(hw.DefaultConfig(), m, st, true)
	if err != nil {
		log.Fatal(err)
	}

	pr, err := sim.SimulateBatch(p, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", m)
	fmt.Println("pipeline:", pr)
	fmt.Printf("capacity: %.0f inferences/s\n\n", 1e9/pr.IntervalNS)

	fmt.Printf("%-10s %-10s %-12s %-12s %-10s %s\n",
		"load", "stable", "p50 (µs)", "p99 (µs)", "queue", "util")
	for _, frac := range []float64{0.25, 0.5, 0.8, 0.95, 1.2} {
		// Seed 0 selects serving.DefaultSeed — the documented fixed stream.
		w := serving.Workload{
			ArrivalRate: frac * 1e9 / pr.IntervalNS,
			Requests:    5000,
		}
		stats, err := serving.Serve(pr, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-10t %-12.1f %-12.1f %-10d %.0f%%\n",
			fmt.Sprintf("%.0f%%", 100*frac), stats.Stable,
			stats.P50NS/1000, stats.P99NS/1000, stats.MaxQueue, 100*stats.Utilization)
	}
	fmt.Println("\nabove 100% of capacity the queue grows without bound — provision below the ceiling")
}
