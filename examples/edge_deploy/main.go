// Edge deployment: the paper motivates AutoHet with mobile/edge settings
// where chip area and battery energy are hard constraints (§1, §2.2). This
// example sweeps the candidate accelerators for AlexNet/MNIST against an
// area budget and a per-inference energy budget, then shows which designs
// fit and which maximizes RUE inside the envelope.
//
//	go run ./examples/edge_deploy
package main

import (
	"fmt"
	"log"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/search"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

const (
	areaBudgetUM2  = 5.0e8 // 500 mm² edge SoC budget
	energyBudgetNJ = 4.0e5 // per-inference energy budget
)

func main() {
	model := dnn.AlexNet()
	fmt.Println("workload:", model)
	fmt.Printf("budgets:  area ≤ %.3g µm², energy ≤ %.3g nJ/inference\n\n", areaBudgetUM2, energyBudgetNJ)

	env, err := search.NewEnv(hw.DefaultConfig(), model, xbar.DefaultCandidates(), true)
	if err != nil {
		log.Fatal(err)
	}

	type design struct {
		name   string
		result *sim.Result
	}
	var designs []design

	for _, s := range xbar.SquareCandidates() {
		r, err := env.EvalStrategy(accel.Homogeneous(model.NumMappable(), s))
		if err != nil {
			log.Fatal(err)
		}
		designs = append(designs, design{"homogeneous " + s.String(), r})
	}

	opts := search.DefaultOptions()
	opts.Rounds = 100
	res, err := search.AutoHet(env, opts)
	if err != nil {
		log.Fatal(err)
	}
	designs = append(designs, design{"AutoHet", res.BestResult})

	fmt.Printf("%-22s %-12s %-14s %-10s %-6s\n", "design", "area (µm²)", "energy (nJ)", "RUE", "fits?")
	bestIdx := -1
	for i, d := range designs {
		fits := d.result.AreaUM2 <= areaBudgetUM2 && d.result.EnergyNJ <= energyBudgetNJ
		mark := "no"
		if fits {
			mark = "yes"
			if bestIdx == -1 || d.result.RUE() > designs[bestIdx].result.RUE() {
				bestIdx = i
			}
		}
		fmt.Printf("%-22s %-12.4g %-14.4g %-10.4g %-6s\n",
			d.name, d.result.AreaUM2, d.result.EnergyNJ, d.result.RUE(), mark)
	}
	if bestIdx == -1 {
		fmt.Println("\nno design fits the envelope — relax a budget or shrink the model")
		return
	}
	fmt.Printf("\nbest in-envelope design: %s (RUE %.4g)\n",
		designs[bestIdx].name, designs[bestIdx].result.RUE())
}
