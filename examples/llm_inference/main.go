// LLM inference (paper §4.5): the paper argues the heterogeneous-crossbar
// idea extends to large language models. This example maps a BERT-Base-
// shaped encoder (≈85M mapped weights) onto the heterogeneous accelerator:
// the AutoHet search chooses per-projection crossbar shapes for the
// weight-stationary matrices (Q/K/V/O and the FFN pair), while the dynamic
// attention product stays on the digital side.
//
//	go run ./examples/llm_inference
package main

import (
	"fmt"
	"log"

	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/search"
	"autohet/internal/xbar"
)

func main() {
	model := dnn.BERTBase()
	fmt.Println("workload:", model)
	fmt.Printf("per inference: %d MVM positions across %d mapped projections\n\n",
		model.Mappable()[0].OutputPositions(), model.NumMappable())

	// Transformer projections have k=1, so the paper's multiple-of-9 RXB
	// heights buy nothing; offer a candidate pool that spans both SXBs and
	// the wide RXBs and let the agent decide.
	candidates := []xbar.Shape{
		xbar.Square(128), xbar.Square(256), xbar.Square(512),
		xbar.Rect(288, 256), xbar.Rect(576, 512),
	}
	env, err := search.NewEnv(hw.DefaultConfig(), model, candidates, true)
	if err != nil {
		log.Fatal(err)
	}

	evals, best, err := search.BestHomogeneous(env, candidates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("homogeneous baselines:")
	for i, e := range evals {
		mark := " "
		if i == best {
			mark = "*"
		}
		fmt.Printf("  %s %-8v util %6.2f%%  energy %10.4g nJ  RUE %10.4g\n",
			mark, candidates[i], e.Result.Utilization, e.Result.EnergyNJ, e.Result.RUE())
	}

	opts := search.DefaultOptions()
	opts.Rounds = 120
	opts.UpdateStride = model.NumMappable()/16 + 1
	res, err := search.AutoHet(env, opts)
	if err != nil {
		log.Fatal(err)
	}
	r := res.BestResult
	fmt.Printf("\nAutoHet strategy: %s\n", res.Best)
	fmt.Printf("AutoHet: util %.1f%%, energy %.4g nJ, RUE %.4g (%.2fx over best homogeneous)\n",
		r.Utilization, r.EnergyNJ, r.RUE(), r.RUE()/evals[best].Result.RUE())
	fmt.Printf("occupied tiles %d, area %.4g µm²\n", r.OccupiedTiles, r.AreaUM2)
}
