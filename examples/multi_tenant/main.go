// Multi-tenant co-location: §3.4 notes that tiles freed by the tile-shared
// scheme "become available for other layers in the DNN model or other
// models". This example maps AlexNet and VGG16 onto the SAME bank and
// compares three deployments: separate tile-based banks, separate
// tile-shared banks, and a fused bank where the two models' layers share
// tiles with each other.
//
//	go run ./examples/multi_tenant
package main

import (
	"fmt"
	"log"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

func main() {
	cfg := hw.DefaultConfig()
	// Bigger tiles make tile-based wastage (and thus the value of sharing)
	// visible — the Fig. 11(c) regime.
	cfg.PEsPerTile = 16
	shape := xbar.Rect(288, 256)
	models := []*dnn.Model{dnn.AlexNet(), dnn.VGG16()}

	tiles := func(m *dnn.Model, shared bool) int {
		p, err := accel.BuildPlan(cfg, m, accel.Homogeneous(m.NumMappable(), shape), shared)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Simulate(p)
		if err != nil {
			log.Fatal(err)
		}
		return r.OccupiedTiles
	}

	sepPlain := tiles(models[0], false) + tiles(models[1], false)
	sepShared := tiles(models[0], true) + tiles(models[1], true)

	fused, err := dnn.Concat("AlexNet+VGG16", models...)
	if err != nil {
		log.Fatal(err)
	}
	fusedShared := tiles(fused, true)

	fmt.Printf("deploying AlexNet + VGG16 on %v crossbars (%d slots/tile)\n\n", shape, cfg.PEsPerTile)
	fmt.Printf("%-44s %s\n", "deployment", "occupied tiles")
	fmt.Printf("%-44s %d\n", "separate banks, tile-based", sepPlain)
	fmt.Printf("%-44s %d\n", "separate banks, tile-shared (per model)", sepShared)
	fmt.Printf("%-44s %d\n", "one bank, cross-model tile sharing", fusedShared)
	fmt.Printf("\ncross-model sharing saves %d tiles vs per-model sharing and %d vs tile-based\n",
		sepShared-fusedShared, sepPlain-fusedShared)
}
