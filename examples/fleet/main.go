// Fleet: scale one accelerator into a serving deployment. A single mapped
// design has a hard throughput ceiling (see examples/serving); a deployment
// replicates designs — here two homogeneous 128x128 accelerators next to two
// paper-searched AutoHet ones — and dispatches a shared request stream
// across them. Because the replicas' capacities differ, the dispatch policy
// matters: queue-blind round robin overloads the slower replicas, while
// queue-aware policies keep the tail flat. Finally a replica degrades
// mid-run with stuck-at faults and the fleet reroutes its queued work.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/fleet"
	"autohet/internal/hw"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// timeScale paces runs at a fifth of real time: fast, but slow enough that
// queue depths — the routing signal — evolve as they would live.
const timeScale = 0.2

func build(name string, st accel.Strategy) fleet.ReplicaSpec {
	m := dnn.VGG16()
	p, err := accel.BuildPlan(hw.DefaultConfig(), m, st, true)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := sim.SimulateBatch(p, 64)
	if err != nil {
		log.Fatal(err)
	}
	return fleet.ReplicaSpec{Name: name, Pipeline: pr, Plan: p}
}

func main() {
	m := dnn.VGG16()
	autohet, err := accel.ParseStrategy("L1:72x64 L2-L16:576x512")
	if err != nil {
		log.Fatal(err)
	}
	specs := []fleet.ReplicaSpec{
		build("homo-1", accel.Homogeneous(m.NumMappable(), xbar.Square(128))),
		build("homo-2", accel.Homogeneous(m.NumMappable(), xbar.Square(128))),
		build("het-1", autohet),
		build("het-2", autohet),
	}
	var aggregate float64
	for _, s := range specs {
		cap := 1e9 / s.Pipeline.IntervalNS
		aggregate += cap
		fmt.Printf("%-8s capacity %5.0f req/s, area %5.1f mm²\n",
			s.Name, cap, s.Plan.Area()/1e6)
	}
	fmt.Printf("fleet aggregate: %.0f req/s\n\n", aggregate)

	// Policy face-off at 95% of aggregate capacity: round robin offers each
	// replica the same rate, which exceeds the AutoHet replicas' capacity.
	fmt.Println("95% load — dispatch policy vs tail latency:")
	for _, policy := range []fleet.Policy{fleet.RoundRobin, fleet.JoinShortestQueue} {
		cfg := fleet.DefaultConfig()
		cfg.Policy = policy
		cfg.TimeScale = timeScale
		f, err := fleet.New(cfg, specs...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fleet.Run(f, fleet.Workload{ArrivalRate: 0.95 * aggregate, Requests: 3000})
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s p50 %7.1f µs   p99 %7.1f µs   %d/%d completed\n",
			policy, res.P50NS/1000, res.P99NS/1000, res.Completed, res.Offered)
	}

	// Robustness: one replica degrades a third into the run; its in-flight
	// requests bounce to the healthy replicas and everything still lands.
	fmt.Println("\n60% load — replica het-1 degrades mid-run (5% stuck-at cells):")
	cfg := fleet.DefaultConfig()
	cfg.Policy = fleet.JoinShortestQueue
	cfg.MaxBatch = 16
	cfg.BatchTimeoutNS = 2e6
	cfg.TimeScale = timeScale
	f, err := fleet.New(cfg, specs...)
	if err != nil {
		log.Fatal(err)
	}
	w := fleet.Workload{ArrivalRate: 0.6 * aggregate, Requests: 3000}
	spanNS := float64(w.Requests) / w.ArrivalRate * 1e9
	timer := time.AfterFunc(time.Duration(0.3*spanNS*timeScale), func() {
		f.InjectFault("het-1", &fault.Model{StuckAtZero: 0.05, Seed: 1})
	})
	res, err := fleet.Run(f, w)
	timer.Stop()
	snap := f.Snapshot()
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %v\n", res)
	for _, r := range snap.Replicas {
		fmt.Printf("  %-8s degraded=%-5t served %4d (mean batch %.1f)\n",
			r.Name, r.Degraded, r.Served, r.MeanBatch)
	}
	fmt.Println("\nevery admitted request completed — capacity shrinks under faults, correctness does not")
}
