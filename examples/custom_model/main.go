// Custom model + tailored candidates (paper §4.4: "users can tailor
// heterogeneous crossbars based on the architecture of their target DNNs").
//
// This example defines a small keyword-spotting CNN whose 5×5 kernels
// misalign with both power-of-two SXBs and the paper's multiple-of-9 RXBs,
// derives candidate heights as multiples of k²=25 instead, and lets the RL
// agent pick per-layer shapes.
//
//	go run ./examples/custom_model
package main

import (
	"fmt"
	"log"

	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/search"
	"autohet/internal/xbar"
)

func main() {
	// A 6-layer CNN for 40x40 single-channel audio spectrograms.
	model, err := dnn.NewModel("KWS-CNN", 40, 40, 1, []*dnn.Layer{
		{Name: "conv1", Kind: dnn.Conv, K: 5, InC: 1, OutC: 32, Stride: 1, Pad: 2},
		{Name: "pool1", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "conv2", Kind: dnn.Conv, K: 5, InC: 32, OutC: 64, Stride: 1, Pad: 2},
		{Name: "pool2", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "conv3", Kind: dnn.Conv, K: 5, InC: 64, OutC: 64, Stride: 1, Pad: 2},
		{Name: "pool3", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "fc1", Kind: dnn.FC, K: 1, InC: 64 * 5 * 5, OutC: 128, Stride: 1},
		{Name: "fc2", Kind: dnn.FC, K: 1, InC: 128, OutC: 12, Stride: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", model)

	// Tailored rectangular candidates: heights are multiples of 5²=25 so a
	// 5×5 kernel column wastes no rows (the §3.3 recipe applied to k=5),
	// plus one small square for the narrow FC tail.
	candidates := []xbar.Shape{
		xbar.Square(32),
		xbar.Rect(25, 32),
		xbar.Rect(50, 64),
		xbar.Rect(100, 128),
		xbar.Rect(200, 256),
	}
	fmt.Println("tailored candidates:", xbar.ShapeNames(candidates))

	// Show why: per-layer Eq.-4 utilization of conv2 on a 64x64 SXB vs the
	// tailored 50x64 RXB.
	conv2 := model.Mappable()[1]
	fmt.Printf("conv2 utilization on 64x64: %.1f%%, on 50x64: %.1f%%\n",
		100*xbar.Utilization(conv2, xbar.Square(64)),
		100*xbar.Utilization(conv2, xbar.Rect(50, 64)))

	env, err := search.NewEnv(hw.DefaultConfig(), model, candidates, true)
	if err != nil {
		log.Fatal(err)
	}
	opts := search.DefaultOptions()
	opts.Rounds = 100
	res, err := search.AutoHet(env, opts)
	if err != nil {
		log.Fatal(err)
	}
	r := res.BestResult
	fmt.Printf("strategy: %s\n", res.Best)
	fmt.Printf("result:   util %.1f%%, energy %.3g nJ, RUE %.3g (%.2fx over the best homogeneous candidate)\n",
		r.Utilization, r.EnergyNJ, r.RUE(), r.RUE()/res.RefRUE)
}
