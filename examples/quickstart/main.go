// Quickstart: run the AutoHet RL search on VGG16/CIFAR-10 with the paper's
// default crossbar candidates and print the resulting heterogeneous
// per-layer strategy next to the best homogeneous baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/search"
	"autohet/internal/xbar"
)

func main() {
	// 1. Pick a workload. The zoo carries the paper's three models with
	//    their dataset-defined input shapes.
	model := dnn.VGG16()
	fmt.Println("workload:", model)

	// 2. Build the search environment: hardware config (§4.1 defaults),
	//    crossbar candidates (32x32, 36x32, 72x64, 288x256, 576x512), and
	//    the tile-shared allocation scheme enabled.
	env, err := search.NewEnv(hw.DefaultConfig(), model, xbar.DefaultCandidates(), true)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Baseline: the best homogeneous accelerator.
	evals, best, err := search.BestHomogeneous(env, xbar.SquareCandidates())
	if err != nil {
		log.Fatal(err)
	}
	homo := evals[best].Result
	fmt.Printf("best homogeneous (%v): util %.1f%%, energy %.3g nJ, RUE %.3g\n",
		evals[best].Strategy[0], homo.Utilization, homo.EnergyNJ, homo.RUE())

	// 4. Run the RL search. 120 rounds keeps the example fast; the paper
	//    uses 300.
	opts := search.DefaultOptions()
	opts.Rounds = 120
	res, err := search.AutoHet(env, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report the heterogeneous result.
	r := res.BestResult
	fmt.Printf("AutoHet strategy: %s\n", res.Best)
	fmt.Printf("AutoHet: util %.1f%%, energy %.3g nJ, RUE %.3g (%.2fx over best homogeneous)\n",
		r.Utilization, r.EnergyNJ, r.RUE(), r.RUE()/homo.RUE())
}
