// Tile sharing: reproduce the paper's Fig. 8 walk-through of Algorithm 1.
// Three layers needing 2/1/1 crossbar slots land on three 4-slot tiles
// under tile-based allocation (8 of 12 slots wasted); the tile-shared
// scheme folds them into one fully occupied tile and releases the other two.
//
//	go run ./examples/tileshare
package main

import (
	"fmt"
	"log"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/xbar"
)

func main() {
	// Three small layers sized so their 32x32 mappings need 2, 1, and 1
	// logical crossbars (as in Fig. 8's L1–L3).
	mk := func(name string, inC, outC int) *dnn.Layer {
		return &dnn.Layer{Name: name, Kind: dnn.Conv, K: 1, InC: inC, OutC: outC,
			Stride: 1, InH: 8, InW: 8}
	}
	model, err := dnn.NewFlatModel("fig8", 8, 8, 16, []*dnn.Layer{
		mk("L1", 16, 64), // 1 band × 2 column groups = 2 slots
		mk("L2", 16, 16), // 1 slot
		mk("L3", 32, 20), // 1 slot
	})
	if err != nil {
		log.Fatal(err)
	}
	strategy := accel.Homogeneous(3, xbar.Square(32))
	cfg := hw.DefaultConfig() // 4 slots per tile

	for _, shared := range []bool{false, true} {
		label := "(a) without tile-shared allocation"
		if shared {
			label = "(b) with tile-shared allocation"
		}
		p, err := accel.BuildPlan(cfg, model, strategy, shared)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(label)
		for _, t := range p.Tiles {
			status := "occupied"
			if t.Used() == 0 {
				status = "released"
			}
			fmt.Printf("  %-48s %s\n", t, status)
		}
		fmt.Printf("  occupied tiles: %d, empty slots in occupied tiles: %.0f%%\n\n",
			p.OccupiedTiles(), 100*p.EmptySlotFraction())
		if shared {
			for head, tails := range p.Remaps {
				fmt.Printf("  combMap: tile %d absorbed tiles %v\n", head, tails)
			}
		}
	}
}
