package dnn

import (
	"fmt"
	"math"
)

// Structured channel pruning (in the spirit of AUTO-PRUNE, the paper's
// reference [27], by the same research group): dropping a fraction of each
// layer's output channels removes whole columns from the unfolded weight
// matrix, shrinking the crossbar grids of both the pruned layer and its
// consumer. PruneChannels derives the pruned *architecture*; with no
// trained weights in this repo (DESIGN.md substitutions), channel selection
// is structural, and accuracy is governed by a keep-ratio budget in the
// search, as with mixed precision.

// PruneChannels returns a new sequential model where mappable layer i keeps
// ⌈keep[i]·OutC⌉ output channels; downstream input channels (and the first
// FC layer's flattened width) shrink accordingly. The final mappable
// layer's outputs are the classifier logits and are never pruned (its keep
// entry must be 1). Only chain-structured models built with NewModel are
// supported — skip-connection (flat) models would need mask propagation
// across branches.
func PruneChannels(m *Model, keep []float64) (*Model, error) {
	if len(keep) != m.NumMappable() {
		return nil, fmt.Errorf("dnn: keep covers %d layers, model %q has %d", len(keep), m.Name, m.NumMappable())
	}
	for i, k := range keep {
		if k <= 0 || k > 1 {
			return nil, fmt.Errorf("dnn: layer %d keep ratio %v outside (0,1]", i, k)
		}
	}
	if keep[len(keep)-1] != 1 {
		return nil, fmt.Errorf("dnn: the final layer's logits cannot be pruned (keep must be 1)")
	}

	var layers []*Layer
	prevKept := -1 // OutC of the previous mappable layer after pruning
	prevOrig := -1 // its original OutC
	flattened := false
	for _, l := range m.Layers {
		c := *l
		switch l.Kind {
		case Pool:
			layers = append(layers, &c)
			continue
		case Conv:
			if l.GroupCount() > 1 {
				return nil, fmt.Errorf("dnn: pruning grouped layer %q unsupported", l.Name)
			}
			if prevKept >= 0 {
				c.InC = prevKept
			}
		case FC:
			if prevKept >= 0 {
				if !flattened && prevOrig > 0 && l.InC != prevOrig {
					// First FC after spatial layers: its input is the
					// flattened C·H·W, which scales with the channel ratio.
					perChannel := l.InC / prevOrig
					if perChannel*prevOrig != l.InC {
						return nil, fmt.Errorf("dnn: layer %q input %d not divisible by upstream channels %d",
							l.Name, l.InC, prevOrig)
					}
					c.InC = perChannel * prevKept
				} else {
					c.InC = prevKept
				}
			}
			flattened = true
		}
		kept := int(math.Ceil(keep[l.Index] * float64(l.OutC)))
		if kept < 1 {
			kept = 1
		}
		c.OutC = kept
		prevKept, prevOrig = kept, l.OutC
		layers = append(layers, &c)
	}
	return NewModel(m.Name+"-pruned", m.InH, m.InW, m.InC, layers)
}

// PrunedFraction returns 1 − (pruned weights / original weights) for a
// keep vector applied to m — the overall structural sparsity achieved.
func PrunedFraction(m *Model, keep []float64) (float64, error) {
	pruned, err := PruneChannels(m, keep)
	if err != nil {
		return 0, err
	}
	return 1 - float64(pruned.TotalWeights())/float64(m.TotalWeights()), nil
}
