package dnn

import (
	"fmt"
	"io"
)

// Describe writes a per-layer summary table of the model: shapes, weights,
// MACs — the view used to sanity-check zoo builders against published
// architectures.
func (m *Model) Describe(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s (input %dx%dx%d)\n", m.Name, m.InH, m.InW, m.InC); err != nil {
		return err
	}
	header := fmt.Sprintf("%-4s %-16s %-6s %-22s %-12s %-12s\n",
		"L", "name", "type", "shape", "weights", "MACs")
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	var totalW, totalMACs int64
	for _, l := range m.Layers {
		idx := "-"
		if l.Index >= 0 {
			idx = fmt.Sprintf("L%d", l.Index+1)
		}
		shape := ""
		switch l.Kind {
		case Conv:
			shape = fmt.Sprintf("%dx%d %d→%d @%dx%d", l.K, l.K, l.InC, l.OutC, l.InH, l.InW)
			if l.GroupCount() > 1 {
				shape += fmt.Sprintf(" g%d", l.Groups)
			}
		case FC:
			shape = fmt.Sprintf("%d→%d", l.InC, l.OutC)
		case Pool:
			shape = fmt.Sprintf("%dx%d/%d @%dx%d", l.K, l.K, l.Stride, l.InH, l.InW)
		}
		line := fmt.Sprintf("%-4s %-16s %-6s %-22s %-12d %-12d\n",
			idx, l.Name, l.Kind, shape, l.Weights(), l.MACs())
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
		totalW += int64(l.Weights())
		totalMACs += l.MACs()
	}
	_, err := fmt.Fprintf(w, "total: %d weights, %d MACs/inference\n", totalW, totalMACs)
	return err
}
