package dnn

import (
	"bytes"
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	var buf bytes.Buffer
	if err := VGG16().Describe(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"VGG16", "conv1_1", "POOL", "fc16", "total:", "MACs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("describe missing %q:\n%s", want, out)
		}
	}
	// Grouped layers show their group count.
	buf.Reset()
	if err := DepthwiseNet().Describe(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "g32") {
		t.Fatalf("grouped shape missing:\n%s", buf.String())
	}
}
