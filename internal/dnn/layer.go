// Package dnn describes DNN inference workloads the way the AutoHet paper
// consumes them: as sequences of convolutional and fully-connected layers
// whose *shapes* (kernel size, channels, strides, feature-map sizes) drive
// crossbar mapping, utilization, and energy. It ships the paper's model zoo
// (Table 2: AlexNet, VGG16, ResNet152), the three dataset descriptors
// (§4.1), weight-matrix unfolding (Fig. 7), and deterministic synthetic
// weights that stand in for trained parameters (see DESIGN.md —
// substitutions).
package dnn

import "fmt"

// Kind distinguishes the layer types the accelerator maps. Pool layers are
// tracked for shape propagation and the tile pooling-module energy but hold
// no weights and occupy no crossbars.
type Kind int

// Layer kinds.
const (
	Conv Kind = iota
	FC
	Pool
)

// String returns the kind's short name.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "CONV"
	case FC:
		return "FC"
	case Pool:
		return "POOL"
	default:
		return "?"
	}
}

// Layer is one DNN layer. For FC layers, K and Stride are 1 and InC/OutC are
// the input/output neuron counts, matching the paper's convention (§3.2:
// "we consider the FC layer as a special kind of CONV layer"). For Pool
// layers only K and Stride matter (window K×K, stride Stride).
type Layer struct {
	Name   string
	Kind   Kind
	K      int // kernel side length (k in the paper; kernel has k² elements)
	InC    int // input channels (or input neurons for FC)
	OutC   int // output channels (or output neurons for FC)
	Stride int
	Pad    int
	// Groups splits a CONV into independent channel groups (0 or 1 means a
	// dense convolution; Groups == InC == OutC is a depthwise convolution).
	// Grouped kernels unfold into a block-diagonal weight matrix, which is
	// exactly the hard case for crossbar utilization — an extension beyond
	// the paper's dense-CONV workloads.
	Groups int

	// Propagated by Model.Propagate:
	InH, InW   int // input feature-map spatial size
	OutH, OutW int // output feature-map spatial size
	Index      int // position among *mappable* (Conv/FC) layers, -1 for Pool
}

// Mappable reports whether the layer holds weights that map onto crossbars.
func (l *Layer) Mappable() bool { return l.Kind == Conv || l.Kind == FC }

// GroupCount returns the effective group count (≥ 1).
func (l *Layer) GroupCount() int {
	if l.Kind == Conv && l.Groups > 1 {
		return l.Groups
	}
	return 1
}

// Weights returns the number of weight scalars in the layer (w in the
// paper's state vector): InC·k²·OutC/Groups for CONV, InC·OutC for FC,
// 0 for Pool.
func (l *Layer) Weights() int {
	if !l.Mappable() {
		return 0
	}
	return l.InC * l.K * l.K * l.OutC / l.GroupCount()
}

// KernelElems returns k², the number of elements of one 2-D kernel slice
// (ks in the paper's state vector). FC layers report 1.
func (l *Layer) KernelElems() int {
	if l.Kind == FC {
		return 1
	}
	return l.K * l.K
}

// UnfoldedRows returns the height of the unfolded weight matrix, C_in·k²
// (Fig. 7). This is the number of crossbar rows the layer's kernels need.
func (l *Layer) UnfoldedRows() int { return l.InC * l.KernelElems() }

// UnfoldedCols returns the width of the unfolded weight matrix, C_out.
func (l *Layer) UnfoldedCols() int { return l.OutC }

// InputSize returns the input feature-map spatial size InH·InW (ins in the
// paper's state vector).
func (l *Layer) InputSize() int { return l.InH * l.InW }

// OutputPositions returns the number of sliding-window positions per
// inference, OutH·OutW. Each position triggers one MVM over the layer's
// crossbar array; FC layers have exactly one.
func (l *Layer) OutputPositions() int { return l.OutH * l.OutW }

// MACs returns the multiply-accumulate count per inference:
// weights × output positions.
func (l *Layer) MACs() int64 {
	return int64(l.Weights()) * int64(l.OutputPositions())
}

// String renders the layer compactly, e.g. "CONV k3 64→128 @28x28".
func (l *Layer) String() string {
	switch l.Kind {
	case Pool:
		return fmt.Sprintf("POOL %dx%d/%d @%dx%d", l.K, l.K, l.Stride, l.InH, l.InW)
	case FC:
		return fmt.Sprintf("FC %d→%d", l.InC, l.OutC)
	default:
		return fmt.Sprintf("CONV k%d %d→%d @%dx%d", l.K, l.InC, l.OutC, l.InH, l.InW)
	}
}

// Validate reports a descriptive error for inconsistent layer parameters.
func (l *Layer) Validate() error {
	switch l.Kind {
	case Conv:
		if l.K <= 0 || l.InC <= 0 || l.OutC <= 0 || l.Stride <= 0 || l.Pad < 0 {
			return fmt.Errorf("dnn: invalid CONV layer %q: k=%d inC=%d outC=%d stride=%d pad=%d",
				l.Name, l.K, l.InC, l.OutC, l.Stride, l.Pad)
		}
		if l.Groups < 0 || (l.Groups > 1 && (l.InC%l.Groups != 0 || l.OutC%l.Groups != 0)) {
			return fmt.Errorf("dnn: CONV layer %q: groups %d must divide inC %d and outC %d",
				l.Name, l.Groups, l.InC, l.OutC)
		}
	case FC:
		if l.InC <= 0 || l.OutC <= 0 {
			return fmt.Errorf("dnn: invalid FC layer %q: in=%d out=%d", l.Name, l.InC, l.OutC)
		}
		if l.K != 1 || l.Stride != 1 {
			return fmt.Errorf("dnn: FC layer %q must have K=1 Stride=1 (paper §3.2)", l.Name)
		}
	case Pool:
		if l.K <= 0 || l.Stride <= 0 {
			return fmt.Errorf("dnn: invalid POOL layer %q: k=%d stride=%d", l.Name, l.K, l.Stride)
		}
	default:
		return fmt.Errorf("dnn: unknown layer kind %d in %q", l.Kind, l.Name)
	}
	return nil
}
