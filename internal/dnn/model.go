package dnn

import "fmt"

// Model is an ordered sequence of layers plus the input tensor shape it
// expects. Construct one with NewModel (or a zoo builder) so shapes are
// propagated and validated once, up front.
type Model struct {
	Name   string
	Layers []*Layer // all layers, including Pool

	InH, InW, InC int // input tensor shape (from the dataset)

	mappable []*Layer // cached Conv/FC subsequence, in order
}

// NewModel builds a model, propagates feature-map shapes through every
// layer, and validates consistency (e.g. channel counts must chain).
func NewModel(name string, inH, inW, inC int, layers []*Layer) (*Model, error) {
	if inH <= 0 || inW <= 0 || inC <= 0 {
		return nil, fmt.Errorf("dnn: model %q invalid input shape %dx%dx%d", name, inH, inW, inC)
	}
	m := &Model{Name: name, Layers: layers, InH: inH, InW: inW, InC: inC}
	if err := m.propagate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustModel is NewModel that panics on error; used by the zoo builders whose
// inputs are compile-time constants.
func MustModel(name string, inH, inW, inC int, layers []*Layer) *Model {
	m, err := NewModel(name, inH, inW, inC, layers)
	if err != nil {
		panic(err)
	}
	return m
}

// NewFlatModel builds a model from layers whose input feature-map sizes
// (InH, InW) are preassigned by the caller instead of derived by chaining.
// Networks with skip connections (ResNet152's bottleneck blocks run a
// downsample conv in parallel with the main path) cannot be expressed as a
// strict chain, but AutoHet only needs each layer's own shape, so the zoo
// assigns shapes per layer and validates them here.
func NewFlatModel(name string, inH, inW, inC int, layers []*Layer) (*Model, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("dnn: flat model %q has no layers", name)
	}
	m := &Model{Name: name, Layers: layers, InH: inH, InW: inW, InC: inC}
	idx := 0
	for i, l := range layers {
		if err := l.Validate(); err != nil {
			return nil, err
		}
		if l.InH <= 0 || l.InW <= 0 {
			return nil, fmt.Errorf("dnn: flat model %q layer %d (%s): InH/InW must be preassigned", name, i, l.Name)
		}
		switch l.Kind {
		case FC:
			l.OutH, l.OutW = 1, 1
		default:
			l.OutH = convOut(l.InH, l.K, l.Stride, l.Pad)
			l.OutW = convOut(l.InW, l.K, l.Stride, l.Pad)
		}
		l.Index = -1
		if l.Mappable() {
			l.Index = idx
			idx++
			m.mappable = append(m.mappable, l)
		}
	}
	if idx == 0 {
		return nil, fmt.Errorf("dnn: flat model %q has no mappable layers", name)
	}
	return m, nil
}

// MustFlatModel is NewFlatModel that panics on error.
func MustFlatModel(name string, inH, inW, inC int, layers []*Layer) *Model {
	m, err := NewFlatModel(name, inH, inW, inC, layers)
	if err != nil {
		panic(err)
	}
	return m
}

func convOut(in, k, stride, pad int) int {
	out := (in+2*pad-k)/stride + 1
	if out < 1 {
		out = 1
	}
	return out
}

// propagate walks the layers, filling InH/InW/OutH/OutW/Index and checking
// that channel counts chain correctly. FC layers flatten whatever spatial
// extent precedes them: the first FC's InC must equal C·H·W of its input.
func (m *Model) propagate() error {
	h, w, c := m.InH, m.InW, m.InC
	flattened := false
	idx := 0
	m.mappable = m.mappable[:0]
	for i, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
		l.InH, l.InW = h, w
		l.Index = -1
		switch l.Kind {
		case Conv:
			if flattened {
				return fmt.Errorf("dnn: model %q layer %d: CONV after FC", m.Name, i)
			}
			if l.InC != c {
				return fmt.Errorf("dnn: model %q layer %d (%s): input channels %d, previous produced %d",
					m.Name, i, l.Name, l.InC, c)
			}
			h = convOut(h, l.K, l.Stride, l.Pad)
			w = convOut(w, l.K, l.Stride, l.Pad)
			c = l.OutC
		case Pool:
			if flattened {
				return fmt.Errorf("dnn: model %q layer %d: POOL after FC", m.Name, i)
			}
			h = convOut(h, l.K, l.Stride, 0)
			w = convOut(w, l.K, l.Stride, 0)
			l.InC, l.OutC = c, c
		case FC:
			if !flattened {
				want := c * h * w
				if l.InC != want {
					return fmt.Errorf("dnn: model %q layer %d (%s): FC input %d, flatten gives %d (=%d·%d·%d)",
						m.Name, i, l.Name, l.InC, want, c, h, w)
				}
				flattened = true
			} else if l.InC != c {
				return fmt.Errorf("dnn: model %q layer %d (%s): FC input %d, previous produced %d",
					m.Name, i, l.Name, l.InC, c)
			}
			h, w = 1, 1
			c = l.OutC
		}
		l.OutH, l.OutW = h, w
		if l.Mappable() {
			l.Index = idx
			idx++
			m.mappable = append(m.mappable, l)
		}
	}
	if idx == 0 {
		return fmt.Errorf("dnn: model %q has no mappable layers", m.Name)
	}
	return nil
}

// Mappable returns the Conv/FC layers in order — the layers the RL agent
// assigns crossbar types to.
func (m *Model) Mappable() []*Layer { return m.mappable }

// NumMappable returns the number of Conv/FC layers (N in the paper's C^N
// search-space size).
func (m *Model) NumMappable() int { return len(m.mappable) }

// TotalWeights returns the total weight count across mappable layers.
func (m *Model) TotalWeights() int64 {
	var total int64
	for _, l := range m.mappable {
		total += int64(l.Weights())
	}
	return total
}

// TotalMACs returns the model's per-inference MAC count.
func (m *Model) TotalMACs() int64 {
	var total int64
	for _, l := range m.mappable {
		total += l.MACs()
	}
	return total
}

// String summarizes the model.
func (m *Model) String() string {
	return fmt.Sprintf("%s: %d layers (%d mappable), %d weights, input %dx%dx%d",
		m.Name, len(m.Layers), len(m.mappable), m.TotalWeights(), m.InH, m.InW, m.InC)
}
