package dnn

import "fmt"

// Model zoo matching the paper's Table 2 and §4.1 model/dataset pairings:
// AlexNet on MNIST, VGG16 on CIFAR-10, ResNet152 on ImageNet.

func conv(name string, k, inC, outC, stride, pad int) *Layer {
	return &Layer{Name: name, Kind: Conv, K: k, InC: inC, OutC: outC, Stride: stride, Pad: pad}
}

func fc(name string, in, out int) *Layer {
	return &Layer{Name: name, Kind: FC, K: 1, InC: in, OutC: out, Stride: 1}
}

func pool(name string, k, stride int) *Layer {
	return &Layer{Name: name, Kind: Pool, K: k, Stride: stride}
}

// AlexNet returns the Table-2 AlexNet (C3-64, C3-192, C3-384, 2×C3-256,
// F4096, F4096, F10) sized for MNIST 28×28×1 input.
func AlexNet() *Model {
	return MustModel("AlexNet", 28, 28, 1, []*Layer{
		conv("conv1", 3, 1, 64, 1, 1),
		pool("pool1", 2, 2),
		conv("conv2", 3, 64, 192, 1, 1),
		pool("pool2", 2, 2),
		conv("conv3", 3, 192, 384, 1, 1),
		conv("conv4", 3, 384, 256, 1, 1),
		conv("conv5", 3, 256, 256, 1, 1),
		pool("pool5", 2, 2),
		fc("fc6", 256*3*3, 4096),
		fc("fc7", 4096, 4096),
		fc("fc8", 4096, 10),
	})
}

// VGG16 returns the Table-2 VGG16 (2C3-64, 2C3-128, 3C3-256, 6C3-512, F4096,
// F1000, F10 — 13 CONV + 3 FC layers) sized for CIFAR-10 32×32×3 input.
func VGG16() *Model {
	var layers []*Layer
	blocks := []struct {
		convs, outC int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	inC := 3
	for bi, b := range blocks {
		for ci := 0; ci < b.convs; ci++ {
			layers = append(layers, conv(fmt.Sprintf("conv%d_%d", bi+1, ci+1), 3, inC, b.outC, 1, 1))
			inC = b.outC
		}
		layers = append(layers, pool(fmt.Sprintf("pool%d", bi+1), 2, 2))
	}
	layers = append(layers,
		fc("fc14", 512, 4096),
		fc("fc15", 4096, 1000),
		fc("fc16", 1000, 10),
	)
	return MustModel("VGG16", 32, 32, 3, layers)
}

// ResNet152 returns the Table-2 ResNet152 (156 mappable layers: the 7×7 stem,
// the bottleneck-block 1×1/3×3 convolutions, the four stage-entry downsample
// 1×1 convolutions, and F1000) sized for ImageNet 224×224×3 input. Grouping
// its layers by kernel size and output channels reproduces the paper's
// Table-2 row exactly (verified in zoo_test.go). Skip connections make the
// topology a DAG, so the builder assigns feature-map sizes per layer and
// uses NewFlatModel.
func ResNet152() *Model {
	var layers []*Layer
	add := func(l *Layer, inHW int) {
		l.InH, l.InW = inHW, inHW
		layers = append(layers, l)
	}

	// Stem: 7×7/2 conv then 3×3/2 max pool.
	add(conv("conv1", 7, 3, 64, 2, 3), 224)
	add(pool("pool1", 3, 2), 112) // pool layers carry shape only

	// Bottleneck stages: {blocks, mid channels, out channels, spatial size}.
	stages := []struct {
		blocks, mid, out, hw int
	}{
		{3, 64, 256, 56},
		{8, 128, 512, 28},
		{36, 256, 1024, 14},
		{3, 512, 2048, 7},
	}
	inC := 64
	inHW := 56
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			prefix := fmt.Sprintf("res%d_%d", si+2, b+1)
			stride := 1
			blockIn := inHW
			if b == 0 && si > 0 {
				// Stage entry halves the spatial size (stride on the 3×3).
				stride = 2
			}
			add(conv(prefix+"_1x1a", 1, inC, st.mid, 1, 0), blockIn)
			add(conv(prefix+"_3x3", 3, st.mid, st.mid, stride, 1), blockIn)
			if b == 0 {
				// Downsample branch projects the block input to out channels.
				add(conv(prefix+"_down", 1, inC, st.out, stride, 0), blockIn)
				inHW = st.hw
			}
			add(conv(prefix+"_1x1b", 1, st.mid, st.out, 1, 0), inHW)
			inC = st.out
		}
	}
	add(pool("avgpool", 7, 7), 7)
	f := fc("fc", 2048, 1000)
	f.InH, f.InW = 1, 1
	layers = append(layers, f)
	return MustFlatModel("ResNet152", 224, 224, 3, layers)
}

// LeNet5 returns the classic LeNet-5 sized for MNIST — the smallest
// workload, handy for exhaustive-search validation (C⁵ strategies are
// enumerable).
func LeNet5() *Model {
	return MustModel("LeNet-5", 28, 28, 1, []*Layer{
		conv("conv1", 5, 1, 6, 1, 2),
		pool("pool1", 2, 2),
		conv("conv2", 5, 6, 16, 1, 0),
		pool("pool2", 2, 2),
		fc("fc3", 16*5*5, 120),
		fc("fc4", 120, 84),
		fc("fc5", 84, 10),
	})
}

// VGG11 returns the VGG-11 variant (configuration A) for CIFAR-10: 8 CONV
// + 3 FC layers.
func VGG11() *Model {
	var layers []*Layer
	blocks := []struct{ convs, outC int }{{1, 64}, {1, 128}, {2, 256}, {2, 512}, {2, 512}}
	inC := 3
	for bi, b := range blocks {
		for ci := 0; ci < b.convs; ci++ {
			layers = append(layers, conv(fmt.Sprintf("conv%d_%d", bi+1, ci+1), 3, inC, b.outC, 1, 1))
			inC = b.outC
		}
		layers = append(layers, pool(fmt.Sprintf("pool%d", bi+1), 2, 2))
	}
	layers = append(layers,
		fc("fc9", 512, 4096),
		fc("fc10", 4096, 1000),
		fc("fc11", 1000, 10),
	)
	return MustModel("VGG11", 32, 32, 3, layers)
}

// ResNet18 returns a ResNet-18 for ImageNet built the same way as
// ResNet152: basic blocks (two 3×3 convs) with stage-entry downsample
// projections, flattened per layer shape.
func ResNet18() *Model {
	var layers []*Layer
	add := func(l *Layer, inHW int) {
		l.InH, l.InW = inHW, inHW
		layers = append(layers, l)
	}
	add(conv("conv1", 7, 3, 64, 2, 3), 224)
	add(pool("pool1", 3, 2), 112)
	stages := []struct{ blocks, ch, hw int }{
		{2, 64, 56}, {2, 128, 28}, {2, 256, 14}, {2, 512, 7},
	}
	inC := 64
	inHW := 56
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			prefix := fmt.Sprintf("res%d_%d", si+2, b+1)
			stride := 1
			blockIn := inHW
			if b == 0 && si > 0 {
				stride = 2
			}
			add(conv(prefix+"_3x3a", 3, inC, st.ch, stride, 1), blockIn)
			if b == 0 && si > 0 {
				add(conv(prefix+"_down", 1, inC, st.ch, stride, 0), blockIn)
				inHW = st.hw
			}
			add(conv(prefix+"_3x3b", 3, st.ch, st.ch, 1, 1), inHW)
			inC = st.ch
		}
	}
	add(pool("avgpool", 7, 7), 7)
	f := fc("fc", 512, 1000)
	f.InH, f.InW = 1, 1
	layers = append(layers, f)
	return MustFlatModel("ResNet18", 224, 224, 3, layers)
}

// DepthwiseNet returns a MobileNet-style depthwise-separable CNN for
// CIFAR-10: a dense stem followed by [3×3 depthwise, 1×1 pointwise] blocks.
// Depthwise kernels unfold block-diagonally and waste most of any dense
// crossbar, making this the stress workload for the heterogeneous mapping
// extension (not part of the paper's evaluation).
func DepthwiseNet() *Model {
	dw := func(name string, c, stride int) *Layer {
		return &Layer{Name: name, Kind: Conv, K: 3, InC: c, OutC: c, Stride: stride, Pad: 1, Groups: c}
	}
	pw := func(name string, in, out int) *Layer {
		return &Layer{Name: name, Kind: Conv, K: 1, InC: in, OutC: out, Stride: 1}
	}
	return MustModel("DepthwiseNet", 32, 32, 3, []*Layer{
		conv("stem", 3, 3, 32, 1, 1),
		dw("dw1", 32, 1), pw("pw1", 32, 64),
		pool("pool1", 2, 2),
		dw("dw2", 64, 1), pw("pw2", 64, 128),
		pool("pool2", 2, 2),
		dw("dw3", 128, 1), pw("pw3", 128, 256),
		pool("pool3", 2, 2),
		dw("dw4", 256, 1), pw("pw4", 256, 256),
		pool("pool4", 4, 4),
		fc("fc", 256, 10),
	})
}

// Zoo returns the three paper workloads in evaluation order.
func Zoo() []*Model {
	return []*Model{AlexNet(), VGG16(), ResNet152()}
}

// ByName returns the zoo model with the given (case-sensitive) name.
func ByName(name string) (*Model, error) {
	switch name {
	case "AlexNet", "alexnet":
		return AlexNet(), nil
	case "VGG16", "vgg16":
		return VGG16(), nil
	case "ResNet152", "resnet152":
		return ResNet152(), nil
	case "LeNet5", "lenet5":
		return LeNet5(), nil
	case "VGG11", "vgg11":
		return VGG11(), nil
	case "ResNet18", "resnet18":
		return ResNet18(), nil
	case "DepthwiseNet", "depthwisenet":
		return DepthwiseNet(), nil
	case "BERT-Base", "bertbase", "bert":
		return BERTBase(), nil
	default:
		return nil, fmt.Errorf("dnn: unknown model %q (have AlexNet, VGG16, ResNet152, LeNet5, VGG11, ResNet18, DepthwiseNet, BERT-Base)", name)
	}
}
