package dnn

import (
	"math"
	"testing"
	"testing/quick"
)

func uniformKeep(m *Model, k float64) []float64 {
	keep := make([]float64, m.NumMappable())
	for i := range keep {
		keep[i] = k
	}
	keep[len(keep)-1] = 1
	return keep
}

func TestPruneChannelsHalvesAlexNet(t *testing.T) {
	m := AlexNet()
	pruned, err := PruneChannels(m, uniformKeep(m, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumMappable() != m.NumMappable() {
		t.Fatalf("layer count changed: %d", pruned.NumMappable())
	}
	// conv1: 64 → 32 outputs; conv2 inputs follow.
	if pruned.Mappable()[0].OutC != 32 {
		t.Fatalf("conv1 out = %d, want 32", pruned.Mappable()[0].OutC)
	}
	if pruned.Mappable()[1].InC != 32 {
		t.Fatalf("conv2 in = %d, want 32", pruned.Mappable()[1].InC)
	}
	// fc6's flattened input scales with conv5's channel ratio: 128·3·3.
	fc6 := pruned.Mappable()[5]
	if fc6.InC != 128*3*3 {
		t.Fatalf("fc6 in = %d, want %d", fc6.InC, 128*9)
	}
	// Final logits untouched.
	last := pruned.Mappable()[7]
	if last.OutC != 10 {
		t.Fatalf("logits pruned to %d", last.OutC)
	}
	// Weights shrink to roughly a quarter (both dims halve on most layers).
	frac, err := PrunedFraction(m, uniformKeep(m, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.6 || frac > 0.85 {
		t.Fatalf("pruned fraction %v, want ≈0.75", frac)
	}
}

func TestPruneChannelsIdentity(t *testing.T) {
	m := VGG16()
	pruned, err := PruneChannels(m, uniformKeep(m, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if pruned.TotalWeights() != m.TotalWeights() {
		t.Fatalf("identity pruning changed weights: %d vs %d", pruned.TotalWeights(), m.TotalWeights())
	}
}

func TestPruneChannelsDoesNotMutateOriginal(t *testing.T) {
	m := AlexNet()
	origOut := m.Mappable()[0].OutC
	if _, err := PruneChannels(m, uniformKeep(m, 0.5)); err != nil {
		t.Fatal(err)
	}
	if m.Mappable()[0].OutC != origOut {
		t.Fatal("pruning mutated the source model")
	}
}

func TestPruneChannelsValidation(t *testing.T) {
	m := AlexNet()
	bad := [][]float64{
		make([]float64, 3), // wrong length
		uniformKeep(m, 0),  // zero is invalid — but uniformKeep forces last=1...
	}
	bad[1][0] = 0
	for i, keep := range bad {
		if _, err := PruneChannels(m, keep); err == nil {
			t.Errorf("case %d must error", i)
		}
	}
	// Out-of-range ratio.
	keep := uniformKeep(m, 0.5)
	keep[2] = 1.5
	if _, err := PruneChannels(m, keep); err == nil {
		t.Error("ratio > 1 must error")
	}
	// Pruned logits.
	keep = uniformKeep(m, 0.5)
	keep[len(keep)-1] = 0.5
	if _, err := PruneChannels(m, keep); err == nil {
		t.Error("pruning logits must error")
	}
	// Grouped layers unsupported.
	dw := DepthwiseNet()
	if _, err := PruneChannels(dw, uniformKeep(dw, 0.5)); err == nil {
		t.Error("grouped model must error")
	}
}

// Property: any valid keep vector yields a valid model with weights ≤ the
// original and logits preserved.
func TestPruneChannelsProperty(t *testing.T) {
	m := VGG16()
	f := func(seed int64) bool {
		keep := make([]float64, m.NumMappable())
		r := seed
		for i := range keep {
			r = r*6364136223846793005 + 1442695040888963407
			keep[i] = 0.25 + float64(uint64(r)>>40%768)/1024 // 0.25..1.0
			if keep[i] > 1 {
				keep[i] = 1
			}
		}
		keep[len(keep)-1] = 1
		pruned, err := PruneChannels(m, keep)
		if err != nil {
			return false
		}
		if pruned.TotalWeights() > m.TotalWeights() {
			return false
		}
		last := pruned.Mappable()[pruned.NumMappable()-1]
		return last.OutC == 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPrunedModelRunsReference(t *testing.T) {
	m := AlexNet()
	pruned, err := PruneChannels(m, uniformKeep(m, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	in := SyntheticTensor(1, 28, 28, 3)
	out, err := RunReference(pruned, in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("pruned output len %d", len(out))
	}
	var norm float64
	for _, v := range out {
		norm += math.Abs(v)
	}
	if norm == 0 {
		t.Fatal("pruned reference produced all zeros")
	}
}
