package dnn

import "fmt"

// Transformer workloads. The paper's §4.5 argues the heterogeneous-crossbar
// idea carries to other AI domains "such as large language models"; this
// builder makes that concrete. Only the weight-stationary projections map
// onto ReRAM — per block the Q/K/V/output projections (d×d) and the two
// feed-forward matrices (d×d_ff, d_ff×d). The dynamic attention product
// QKᵀ·V has no fixed weights and is assumed to run on the digital side, as
// in ReRAM transformer accelerators generally.
//
// Each projection applies once per token, so it is modeled as a 1×1
// convolution over a seqLen×1 feature map: OutputPositions = seqLen MVMs
// per inference, which is exactly the hardware's workload.

// TransformerEncoder builds an encoder stack: blocks × {W_Q, W_K, W_V, W_O,
// FFN_up, FFN_down} plus a final classifier head (d_model → classes) when
// classes > 0.
func TransformerEncoder(name string, blocks, dModel, dFF, seqLen, classes int) (*Model, error) {
	if blocks <= 0 || dModel <= 0 || dFF <= 0 || seqLen <= 0 || classes < 0 {
		return nil, fmt.Errorf("dnn: invalid transformer %q: blocks=%d d=%d dff=%d seq=%d classes=%d",
			name, blocks, dModel, dFF, seqLen, classes)
	}
	proj := func(lname string, in, out int) *Layer {
		return &Layer{
			Name: lname, Kind: Conv, K: 1, InC: in, OutC: out, Stride: 1,
			InH: seqLen, InW: 1,
		}
	}
	var layers []*Layer
	for b := 0; b < blocks; b++ {
		p := fmt.Sprintf("blk%d_", b+1)
		layers = append(layers,
			proj(p+"wq", dModel, dModel),
			proj(p+"wk", dModel, dModel),
			proj(p+"wv", dModel, dModel),
			proj(p+"wo", dModel, dModel),
			proj(p+"ffn_up", dModel, dFF),
			proj(p+"ffn_down", dFF, dModel),
		)
	}
	if classes > 0 {
		head := &Layer{Name: "classifier", Kind: FC, K: 1, InC: dModel, OutC: classes, Stride: 1, InH: 1, InW: 1}
		layers = append(layers, head)
	}
	return NewFlatModel(name, seqLen, 1, dModel, layers)
}

// BERTBase returns a BERT-Base-shaped encoder (12 blocks, d=768, d_ff=3072)
// at sequence length 128 with a 2-way classification head — ≈85M mapped
// weights, the §4.5 LLM-domain workload.
func BERTBase() *Model {
	m, err := TransformerEncoder("BERT-Base", 12, 768, 3072, 128, 2)
	if err != nil {
		panic(err)
	}
	return m
}

// TinyTransformer returns a 2-block, d=64 encoder used by tests and the
// examples where search speed matters more than scale.
func TinyTransformer() *Model {
	m, err := TransformerEncoder("TinyFormer", 2, 64, 256, 16, 4)
	if err != nil {
		panic(err)
	}
	return m
}

// Concat fuses several models into one flat workload so they can be mapped
// onto a single bank with cross-model tile sharing — the paper's §3.4 notes
// freed tiles "become available for other layers in the DNN model or other
// models". Layers are deep-copied; the inputs keep their own shapes, and
// the fused model's nominal input is the first model's.
func Concat(name string, models ...*Model) (*Model, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("dnn: Concat needs at least one model")
	}
	var layers []*Layer
	for _, m := range models {
		for _, l := range m.Layers {
			c := *l
			layers = append(layers, &c)
		}
	}
	first := models[0]
	return NewFlatModel(name, first.InH, first.InW, first.InC, layers)
}

// ConcatStrategies appends per-model strategies in Concat's layer order.
// The caller must pass one strategy per model, each covering that model's
// mappable layers.
func ConcatStrategies(models []*Model, strategies [][]int) ([]int, error) {
	if len(models) != len(strategies) {
		return nil, fmt.Errorf("dnn: %d models but %d strategies", len(models), len(strategies))
	}
	var out []int
	for i, m := range models {
		if len(strategies[i]) != m.NumMappable() {
			return nil, fmt.Errorf("dnn: strategy %d covers %d layers, model %q has %d",
				i, len(strategies[i]), m.Name, m.NumMappable())
		}
		out = append(out, strategies[i]...)
	}
	return out, nil
}
