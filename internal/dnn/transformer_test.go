package dnn

import "testing"

func TestTransformerEncoderStructure(t *testing.T) {
	m, err := TransformerEncoder("t", 3, 64, 256, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 3 blocks × 6 projections + classifier.
	if m.NumMappable() != 19 {
		t.Fatalf("mappable = %d, want 19", m.NumMappable())
	}
	// Projections apply once per token: OutputPositions = seqLen.
	wq := m.Mappable()[0]
	if wq.OutputPositions() != 32 {
		t.Fatalf("wq positions = %d, want 32", wq.OutputPositions())
	}
	if wq.InC != 64 || wq.OutC != 64 || wq.K != 1 {
		t.Fatalf("wq = %v", wq)
	}
	up := m.Mappable()[4]
	if up.OutC != 256 {
		t.Fatalf("ffn_up outC = %d", up.OutC)
	}
	down := m.Mappable()[5]
	if down.InC != 256 || down.OutC != 64 {
		t.Fatalf("ffn_down = %v", down)
	}
	head := m.Mappable()[18]
	if head.Kind != FC || head.OutC != 10 || head.OutputPositions() != 1 {
		t.Fatalf("classifier = %v", head)
	}
}

func TestTransformerEncoderValidation(t *testing.T) {
	bad := [][5]int{
		{0, 64, 256, 16, 2},
		{2, 0, 256, 16, 2},
		{2, 64, 0, 16, 2},
		{2, 64, 256, 0, 2},
		{2, 64, 256, 16, -1},
	}
	for _, c := range bad {
		if _, err := TransformerEncoder("bad", c[0], c[1], c[2], c[3], c[4]); err == nil {
			t.Errorf("TransformerEncoder(%v) should error", c)
		}
	}
	// No head when classes == 0.
	m, err := TransformerEncoder("nohead", 2, 32, 64, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumMappable() != 12 {
		t.Fatalf("headless mappable = %d, want 12", m.NumMappable())
	}
}

func TestBERTBaseWeightCount(t *testing.T) {
	m := BERTBase()
	// Per block: 4·768² + 2·768·3072 = 7077888; ×12 ≈ 84.93M, + head 1536.
	want := int64(12*(4*768*768+2*768*3072) + 768*2)
	if m.TotalWeights() != want {
		t.Fatalf("BERT-Base weights = %d, want %d", m.TotalWeights(), want)
	}
	if m.NumMappable() != 73 {
		t.Fatalf("BERT-Base mappable = %d, want 73", m.NumMappable())
	}
}

func TestTinyTransformer(t *testing.T) {
	m := TinyTransformer()
	if m.NumMappable() != 13 {
		t.Fatalf("TinyFormer mappable = %d", m.NumMappable())
	}
}

func TestConcat(t *testing.T) {
	a := AlexNet()
	v := VGG16()
	fused, err := Concat("fused", a, v)
	if err != nil {
		t.Fatal(err)
	}
	if fused.NumMappable() != a.NumMappable()+v.NumMappable() {
		t.Fatalf("fused mappable = %d", fused.NumMappable())
	}
	if fused.TotalWeights() != a.TotalWeights()+v.TotalWeights() {
		t.Fatal("fused weights wrong")
	}
	// Deep copy: mutating the fused model must not touch the originals.
	fused.Mappable()[0].OutC = 9999
	if a.Mappable()[0].OutC == 9999 {
		t.Fatal("Concat must deep-copy layers")
	}
	// Indices are re-assigned contiguously.
	for i, l := range fused.Mappable() {
		if l.Index != i {
			t.Fatalf("fused layer %d has index %d", i, l.Index)
		}
	}
	if _, err := Concat("empty"); err == nil {
		t.Fatal("empty Concat must error")
	}
}

func TestConcatStrategies(t *testing.T) {
	a := AlexNet()
	v := VGG16()
	sa := make([]int, a.NumMappable())
	sv := make([]int, v.NumMappable())
	for i := range sv {
		sv[i] = 1
	}
	combined, err := ConcatStrategies([]*Model{a, v}, [][]int{sa, sv})
	if err != nil {
		t.Fatal(err)
	}
	if len(combined) != 24 {
		t.Fatalf("combined len = %d", len(combined))
	}
	if combined[7] != 0 || combined[8] != 1 {
		t.Fatal("ordering wrong")
	}
	if _, err := ConcatStrategies([]*Model{a}, [][]int{sa, sv}); err == nil {
		t.Fatal("count mismatch must error")
	}
	if _, err := ConcatStrategies([]*Model{a}, [][]int{{0}}); err == nil {
		t.Fatal("length mismatch must error")
	}
}
