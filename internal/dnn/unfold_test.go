package dnn

import (
	"testing"
	"testing/quick"
)

func TestUnfoldShape(t *testing.T) {
	l := conv("c", 3, 12, 128, 1, 1)
	r, c := UnfoldShape(l)
	if r != 108 || c != 128 {
		t.Fatalf("UnfoldShape = %dx%d, want 108x128", r, c)
	}
	f := fc("f", 512, 1000)
	r, c = UnfoldShape(f)
	if r != 512 || c != 1000 {
		t.Fatalf("FC UnfoldShape = %dx%d", r, c)
	}
}

func TestSyntheticWeightsDeterministic(t *testing.T) {
	m := VGG16()
	l := m.Mappable()[3]
	a := SyntheticWeights(l, 42)
	b := SyntheticWeights(l, 42)
	if !a.Equal(b, 0) {
		t.Fatal("SyntheticWeights not deterministic")
	}
	c := SyntheticWeights(l, 43)
	if a.Equal(c, 0) {
		t.Fatal("different seeds produced identical weights")
	}
	other := m.Mappable()[4]
	d := SyntheticWeights(other, 42)
	if a.Rows == d.Rows && a.Cols == d.Cols && a.Equal(d, 0) {
		t.Fatal("different layers produced identical weights")
	}
}

func TestSyntheticWeightsShapeAndRange(t *testing.T) {
	l := conv("c", 3, 4, 8, 1, 1)
	l.Index = 2
	w := SyntheticWeights(l, 1)
	if w.Rows != 36 || w.Cols != 8 {
		t.Fatalf("shape %dx%d, want 36x8", w.Rows, w.Cols)
	}
	if w.MaxAbs() > 1 {
		t.Fatalf("weights exceed [-1,1): max %v", w.MaxAbs())
	}
}

func TestSyntheticInputProperties(t *testing.T) {
	l := conv("c", 3, 4, 8, 1, 1)
	l.Index = 5
	x := SyntheticInput(l, 7)
	if len(x) != 36 {
		t.Fatalf("input length %d, want 36", len(x))
	}
	for _, v := range x {
		if v < 0 || v >= 1 {
			t.Fatalf("input value %v outside [0,1)", v)
		}
	}
	y := SyntheticInput(l, 7)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("SyntheticInput not deterministic")
		}
	}
}

func TestSyntheticPanicsOnPool(t *testing.T) {
	p := pool("p", 2, 2)
	for _, fn := range []func(){
		func() { SyntheticWeights(p, 1) },
		func() { SyntheticInput(p, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on pool layer")
				}
			}()
			fn()
		}()
	}
}

// Property: unfolded shape row count equals Weights()/OutC for any valid conv.
func TestUnfoldConsistencyProperty(t *testing.T) {
	f := func(kRaw, inCRaw, outCRaw uint8) bool {
		k := 1 + int(kRaw)%7
		inC := 1 + int(inCRaw)%64
		outC := 1 + int(outCRaw)%64
		l := conv("c", k, inC, outC, 1, 0)
		r, c := UnfoldShape(l)
		return r*c == l.Weights() && c == outC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
