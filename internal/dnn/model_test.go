package dnn

import (
	"strings"
	"testing"
)

func TestNewModelPropagatesShapes(t *testing.T) {
	m, err := NewModel("toy", 8, 8, 3, []*Layer{
		conv("c1", 3, 3, 16, 1, 1),
		pool("p1", 2, 2),
		conv("c2", 3, 16, 32, 1, 1),
		fc("f1", 32*4*4, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	c1 := m.Layers[0]
	if c1.InH != 8 || c1.OutH != 8 {
		t.Fatalf("c1 shapes in=%d out=%d", c1.InH, c1.OutH)
	}
	p1 := m.Layers[1]
	if p1.OutH != 4 {
		t.Fatalf("pool out = %d, want 4", p1.OutH)
	}
	f1 := m.Layers[3]
	if f1.OutH != 1 || f1.OutW != 1 {
		t.Fatal("fc output must be 1x1")
	}
	if m.NumMappable() != 3 {
		t.Fatalf("mappable = %d, want 3", m.NumMappable())
	}
	if m.Mappable()[2].Index != 2 {
		t.Fatal("mappable indices wrong")
	}
	if m.Layers[1].Index != -1 {
		t.Fatal("pool must have index -1")
	}
}

func TestNewModelRejectsChannelMismatch(t *testing.T) {
	_, err := NewModel("bad", 8, 8, 3, []*Layer{
		conv("c1", 3, 3, 16, 1, 1),
		conv("c2", 3, 8, 32, 1, 1), // 8 != 16
	})
	if err == nil || !strings.Contains(err.Error(), "channels") {
		t.Fatalf("expected channel mismatch error, got %v", err)
	}
}

func TestNewModelRejectsBadFlatten(t *testing.T) {
	_, err := NewModel("bad", 8, 8, 1, []*Layer{
		conv("c1", 3, 1, 4, 1, 1),
		fc("f1", 99, 10), // flatten is 4*8*8=256
	})
	if err == nil || !strings.Contains(err.Error(), "flatten") {
		t.Fatalf("expected flatten error, got %v", err)
	}
}

func TestNewModelRejectsConvAfterFC(t *testing.T) {
	_, err := NewModel("bad", 4, 4, 1, []*Layer{
		fc("f1", 16, 8),
		conv("c1", 3, 8, 8, 1, 1),
	})
	if err == nil {
		t.Fatal("expected CONV-after-FC error")
	}
}

func TestNewModelRejectsEmptyAndBadInput(t *testing.T) {
	if _, err := NewModel("bad", 0, 4, 1, []*Layer{fc("f", 4, 2)}); err == nil {
		t.Fatal("expected input-shape error")
	}
	if _, err := NewModel("bad", 4, 4, 1, []*Layer{pool("p", 2, 2)}); err == nil {
		t.Fatal("expected no-mappable-layers error")
	}
}

func TestFCChain(t *testing.T) {
	m, err := NewModel("mlp", 1, 1, 16, []*Layer{
		fc("f1", 16, 8),
		fc("f2", 8, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalWeights() != 16*8+8*4 {
		t.Fatalf("TotalWeights = %d", m.TotalWeights())
	}
	// FC-after-FC mismatch.
	if _, err := NewModel("bad", 1, 1, 16, []*Layer{fc("f1", 16, 8), fc("f2", 9, 4)}); err == nil {
		t.Fatal("expected FC chain mismatch error")
	}
}

func TestNewFlatModel(t *testing.T) {
	c := conv("c", 1, 64, 256, 1, 0)
	c.InH, c.InW = 56, 56
	d := conv("d", 3, 64, 64, 2, 1)
	d.InH, d.InW = 56, 56
	m, err := NewFlatModel("flat", 224, 224, 3, []*Layer{c, d})
	if err != nil {
		t.Fatal(err)
	}
	if c.OutH != 56 {
		t.Fatalf("1x1 stride1 out = %d, want 56", c.OutH)
	}
	if d.OutH != 28 {
		t.Fatalf("3x3 stride2 pad1 out = %d, want 28", d.OutH)
	}
	if m.NumMappable() != 2 {
		t.Fatal("flat mappable count wrong")
	}
}

func TestNewFlatModelRejectsMissingShape(t *testing.T) {
	c := conv("c", 1, 64, 256, 1, 0) // InH unset
	if _, err := NewFlatModel("flat", 8, 8, 3, []*Layer{c}); err == nil {
		t.Fatal("expected preassigned-shape error")
	}
	if _, err := NewFlatModel("flat", 8, 8, 3, nil); err == nil {
		t.Fatal("expected empty-model error")
	}
}

func TestConvOutFloor(t *testing.T) {
	// (7-2)/2+1 = 3 (paper AlexNet pool5 7→3).
	if convOut(7, 2, 2, 0) != 3 {
		t.Fatalf("convOut(7,2,2,0) = %d", convOut(7, 2, 2, 0))
	}
	// Never below 1.
	if convOut(1, 3, 1, 0) != 1 {
		t.Fatal("convOut floor failed")
	}
}

func TestModelString(t *testing.T) {
	m := AlexNet()
	s := m.String()
	if !strings.Contains(s, "AlexNet") || !strings.Contains(s, "mappable") {
		t.Fatalf("String = %q", s)
	}
}
