package dnn

import (
	"fmt"
	"testing"
)

func TestAlexNetMatchesTable2(t *testing.T) {
	m := AlexNet()
	// Table 2: C3-64, C3-192, C3-384, 2C3-256, F4096, F4096, F10.
	want := []struct {
		kind Kind
		k    int
		outC int
	}{
		{Conv, 3, 64}, {Conv, 3, 192}, {Conv, 3, 384}, {Conv, 3, 256}, {Conv, 3, 256},
		{FC, 1, 4096}, {FC, 1, 4096}, {FC, 1, 10},
	}
	got := m.Mappable()
	if len(got) != len(want) {
		t.Fatalf("AlexNet mappable layers = %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		l := got[i]
		if l.Kind != w.kind || l.K != w.k || l.OutC != w.outC {
			t.Errorf("layer %d = %v, want %v k%d out%d", i, l, w.kind, w.k, w.outC)
		}
	}
	if !MNIST.Matches(m) {
		t.Fatal("AlexNet input must match MNIST")
	}
}

func TestVGG16MatchesTable2(t *testing.T) {
	m := VGG16()
	got := m.Mappable()
	if len(got) != 16 {
		t.Fatalf("VGG16 mappable = %d, want 16", len(got))
	}
	// Count CONV layers by output channels: 2×64, 2×128, 3×256, 6×512.
	convCounts := map[int]int{}
	for _, l := range got {
		if l.Kind == Conv {
			if l.K != 3 {
				t.Errorf("VGG16 conv kernel %d, want 3", l.K)
			}
			convCounts[l.OutC]++
		}
	}
	wantCounts := map[int]int{64: 2, 128: 2, 256: 3, 512: 6}
	for outC, n := range wantCounts {
		if convCounts[outC] != n {
			t.Errorf("VGG16 C3-%d count = %d, want %d", outC, convCounts[outC], n)
		}
	}
	// FC tail: 4096, 1000, 10.
	fcs := got[13:]
	for i, want := range []int{4096, 1000, 10} {
		if fcs[i].Kind != FC || fcs[i].OutC != want {
			t.Errorf("VGG16 FC %d = %v, want F%d", i, fcs[i], want)
		}
	}
	// Paper §3.3: the fourth layer is k=3, Cin=128, Cout=128.
	l4 := got[3]
	if l4.K != 3 || l4.InC != 128 || l4.OutC != 128 {
		t.Errorf("VGG16 L4 = %v, want k3 128→128", l4)
	}
	if !CIFAR10.Matches(m) {
		t.Fatal("VGG16 input must match CIFAR-10")
	}
}

func TestResNet152MatchesTable2(t *testing.T) {
	m := ResNet152()
	got := m.Mappable()
	if len(got) != 156 {
		t.Fatalf("ResNet152 mappable = %d, want 156", len(got))
	}
	// Table 2: C7-64, 3C1-64, 8C1-128, 40C1-256, 12C1-512, 37C1-1024,
	// 4C1-2048, 3C3-64, 8C3-128, 36C3-256, 3C3-512, F1000.
	counts := map[string]int{}
	for _, l := range got {
		switch l.Kind {
		case Conv:
			counts[fmt.Sprintf("C%d-%d", l.K, l.OutC)]++
		case FC:
			counts[fmt.Sprintf("F%d", l.OutC)]++
		}
	}
	want := map[string]int{
		"C7-64": 1,
		"C1-64": 3, "C1-128": 8, "C1-256": 40, "C1-512": 12, "C1-1024": 37, "C1-2048": 4,
		"C3-64": 3, "C3-128": 8, "C3-256": 36, "C3-512": 3,
		"F1000": 1,
	}
	for key, n := range want {
		if counts[key] != n {
			t.Errorf("ResNet152 %s count = %d, want %d", key, counts[key], n)
		}
	}
	for key := range counts {
		if _, ok := want[key]; !ok {
			t.Errorf("ResNet152 has unexpected layer group %s ×%d", key, counts[key])
		}
	}
	if !ImageNet.Matches(m) {
		t.Fatal("ResNet152 input must match ImageNet")
	}
}

func TestResNet152SpatialSizes(t *testing.T) {
	m := ResNet152()
	// The stem conv halves 224→112; stage spatial sizes are 56/28/14/7.
	stem := m.Mappable()[0]
	if stem.OutH != 112 {
		t.Fatalf("stem out = %d, want 112", stem.OutH)
	}
	var last *Layer
	for _, l := range m.Mappable() {
		if l.Kind == Conv {
			last = l
		}
	}
	if last.OutH != 7 {
		t.Fatalf("final conv out = %d, want 7", last.OutH)
	}
}

func TestZooAndByName(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 3 {
		t.Fatalf("Zoo size = %d", len(zoo))
	}
	for _, name := range []string{"AlexNet", "vgg16", "ResNet152"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("LeNet"); err == nil {
		t.Error("ByName unknown model must fail")
	}
}

func TestDatasetFor(t *testing.T) {
	pairs := map[string]string{"AlexNet": "MNIST", "VGG16": "CIFAR-10", "ResNet152": "ImageNet"}
	for model, ds := range pairs {
		d, err := DatasetFor(model)
		if err != nil {
			t.Fatalf("DatasetFor(%q): %v", model, err)
		}
		if d.Name != ds {
			t.Errorf("DatasetFor(%q) = %q, want %q", model, d.Name, ds)
		}
	}
	if _, err := DatasetFor("LeNet"); err == nil {
		t.Error("DatasetFor unknown model must fail")
	}
}

func TestDatasetString(t *testing.T) {
	s := MNIST.String()
	if s != "MNIST (28x28x1, 70000 images, 10 classes)" {
		t.Fatalf("MNIST.String = %q", s)
	}
}

func TestZooModelsAreIndependent(t *testing.T) {
	a := VGG16()
	b := VGG16()
	a.Mappable()[0].OutC = 9999
	if b.Mappable()[0].OutC == 9999 {
		t.Fatal("zoo builders must return fresh layer structs")
	}
}
