package dnn

import (
	"fmt"
	"math/rand"
)

// Tensor is a C×H×W feature map stored C-major (channel, then row, then
// column) — the layout the unfolded weight matrices expect: flattening a
// k×k window across C channels yields the C_in·k² patch column of Fig. 7.
type Tensor struct {
	C, H, W int
	Data    []float64 // len C*H*W
}

// NewTensor returns a zeroed C×H×W tensor.
func NewTensor(c, h, w int) *Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("dnn: invalid tensor shape %dx%dx%d", c, h, w))
	}
	return &Tensor{C: c, H: h, W: w, Data: make([]float64, c*h*w)}
}

// At returns element (c, y, x).
func (t *Tensor) At(c, y, x int) float64 {
	t.check(c, y, x)
	return t.Data[(c*t.H+y)*t.W+x]
}

// Set assigns element (c, y, x).
func (t *Tensor) Set(c, y, x int, v float64) {
	t.check(c, y, x)
	t.Data[(c*t.H+y)*t.W+x] = v
}

func (t *Tensor) check(c, y, x int) {
	if c < 0 || c >= t.C || y < 0 || y >= t.H || x < 0 || x >= t.W {
		panic(fmt.Sprintf("dnn: index (%d,%d,%d) out of %dx%dx%d", c, y, x, t.C, t.H, t.W))
	}
}

// Flatten returns the tensor's data as a vector in C-major order — the
// layout FC layers consume after the last spatial layer.
func (t *Tensor) Flatten() []float64 {
	out := make([]float64, len(t.Data))
	copy(out, t.Data)
	return out
}

// Patch extracts the unfolded input column for the convolution window whose
// top-left output coordinate is (oy, ox): a vector of length C·k² ordered
// channel-major then row-major within the window, with zero padding outside
// the feature map. This matches the weight-matrix row order of Fig. 7.
func (t *Tensor) Patch(l *Layer, oy, ox int) []float64 {
	return t.PatchInto(make([]float64, t.C*l.K*l.K), l, oy, ox)
}

// PatchInto is Patch writing into dst, which must have length C·k² — the
// allocation-free form the sliding-window inference loop reuses per worker.
func (t *Tensor) PatchInto(dst []float64, l *Layer, oy, ox int) []float64 {
	if l.Kind != Conv {
		panic("dnn: Patch on non-CONV layer " + l.Name)
	}
	k := l.K
	out := dst
	if len(out) != t.C*k*k {
		panic(fmt.Sprintf("dnn: patch buffer %d, want %d", len(out), t.C*k*k))
	}
	y0 := oy*l.Stride - l.Pad
	x0 := ox*l.Stride - l.Pad
	i := 0
	for c := 0; c < t.C; c++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				y, x := y0+ky, x0+kx
				if y >= 0 && y < t.H && x >= 0 && x < t.W {
					out[i] = t.At(c, y, x)
				} else {
					out[i] = 0 // zero padding; dst may be reused
				}
				i++
			}
		}
	}
	return out
}

// SyntheticTensor returns a deterministic tensor with values in [0, 1)
// (post-ReLU activation range), standing in for dataset images (see
// DESIGN.md — substitutions).
func SyntheticTensor(c, h, w int, seed int64) *Tensor {
	t := NewTensor(c, h, w)
	rng := rand.New(rand.NewSource(seed ^ 0x7e57ab1e))
	for i := range t.Data {
		t.Data[i] = rng.Float64()
	}
	return t
}
