package dnn

import "testing"

func TestDepthwiseNetStructure(t *testing.T) {
	m := DepthwiseNet()
	// stem + 4×(dw+pw) + fc = 10 mappable layers.
	if m.NumMappable() != 10 {
		t.Fatalf("mappable = %d, want 10", m.NumMappable())
	}
	var dwCount int
	for _, l := range m.Mappable() {
		if l.GroupCount() > 1 {
			dwCount++
			if l.Groups != l.InC || l.InC != l.OutC {
				t.Errorf("layer %s is not depthwise: groups=%d in=%d out=%d", l.Name, l.Groups, l.InC, l.OutC)
			}
			if l.K != 3 {
				t.Errorf("depthwise kernel %d", l.K)
			}
		}
	}
	if dwCount != 4 {
		t.Fatalf("depthwise layers = %d, want 4", dwCount)
	}
	if !CIFAR10.Matches(m) {
		t.Fatal("DepthwiseNet input must match CIFAR-10")
	}
	// Depthwise weights are tiny relative to pointwise.
	dw := m.Mappable()[1]
	pw := m.Mappable()[2]
	if dw.Weights() >= pw.Weights() {
		t.Fatalf("dw weights %d should be far below pw %d", dw.Weights(), pw.Weights())
	}
}
