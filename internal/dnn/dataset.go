package dnn

import "fmt"

// Dataset describes an inference input source (paper §4.1). Only the input
// tensor shape influences the accelerator metrics; image counts and class
// counts are carried for workload generation and reporting.
type Dataset struct {
	Name    string
	H, W, C int
	Images  int
	Classes int
}

// The three paper datasets, plus a token-sequence descriptor for the
// transformer extension (shape = embedded sequence, seq×1×d).
var (
	MNIST    = Dataset{Name: "MNIST", H: 28, W: 28, C: 1, Images: 70000, Classes: 10}
	CIFAR10  = Dataset{Name: "CIFAR-10", H: 32, W: 32, C: 3, Images: 60000, Classes: 10}
	ImageNet = Dataset{Name: "ImageNet", H: 224, W: 224, C: 3, Images: 1400000, Classes: 1000}
	TextSeq  = Dataset{Name: "text-cls", H: 128, W: 1, C: 768, Images: 67000, Classes: 2}
)

// DatasetFor returns the dataset the paper pairs with the given model
// (AlexNet→MNIST, VGG16→CIFAR-10, ResNet152→ImageNet); the extension
// models pair with the dataset matching their input shape.
func DatasetFor(model string) (Dataset, error) {
	switch model {
	case "AlexNet", "alexnet", "LeNet-5", "LeNet5", "lenet5":
		return MNIST, nil
	case "VGG16", "vgg16", "VGG11", "vgg11", "DepthwiseNet", "depthwisenet":
		return CIFAR10, nil
	case "ResNet152", "resnet152", "ResNet18", "resnet18":
		return ImageNet, nil
	case "BERT-Base", "bertbase", "bert":
		return TextSeq, nil
	default:
		return Dataset{}, fmt.Errorf("dnn: no dataset pairing for model %q", model)
	}
}

// Matches reports whether the dataset's input shape equals the model's.
func (d Dataset) Matches(m *Model) bool {
	return d.H == m.InH && d.W == m.InW && d.C == m.InC
}

// String returns e.g. "MNIST (28x28x1, 70000 images, 10 classes)".
func (d Dataset) String() string {
	return fmt.Sprintf("%s (%dx%dx%d, %d images, %d classes)", d.Name, d.H, d.W, d.C, d.Images, d.Classes)
}
