package dnn

import "testing"

func TestLeNet5Structure(t *testing.T) {
	m := LeNet5()
	if m.NumMappable() != 5 {
		t.Fatalf("mappable = %d, want 5", m.NumMappable())
	}
	// conv2 output 16 channels at 10×10, pooled to 5×5 → fc3 in 400.
	fc3 := m.Mappable()[2]
	if fc3.InC != 400 {
		t.Fatalf("fc3 in = %d, want 400", fc3.InC)
	}
	if !MNIST.Matches(m) {
		t.Fatal("LeNet-5 input must match MNIST")
	}
}

func TestVGG11Structure(t *testing.T) {
	m := VGG11()
	if m.NumMappable() != 11 {
		t.Fatalf("mappable = %d, want 11", m.NumMappable())
	}
	convs := 0
	for _, l := range m.Mappable() {
		if l.Kind == Conv {
			convs++
		}
	}
	if convs != 8 {
		t.Fatalf("convs = %d, want 8", convs)
	}
	if !CIFAR10.Matches(m) {
		t.Fatal("VGG11 input must match CIFAR-10")
	}
}

func TestResNet18Structure(t *testing.T) {
	m := ResNet18()
	// 1 stem + 2 blocks/stage × 4 stages × 2 convs + 3 downsamples + 1 FC
	// = 1 + 16 + 3 + 1 = 21.
	if m.NumMappable() != 21 {
		t.Fatalf("mappable = %d, want 21", m.NumMappable())
	}
	// Final conv at 7×7, FC 512→1000.
	last := m.Mappable()[m.NumMappable()-1]
	if last.Kind != FC || last.InC != 512 || last.OutC != 1000 {
		t.Fatalf("fc = %v", last)
	}
	if !ImageNet.Matches(m) {
		t.Fatal("ResNet18 input must match ImageNet")
	}
}

func TestByNameExtendedZoo(t *testing.T) {
	for _, name := range []string{"LeNet5", "VGG11", "ResNet18", "DepthwiseNet", "BERT-Base"} {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		ds, err := DatasetFor(m.Name)
		if err != nil {
			t.Errorf("DatasetFor(%q): %v", m.Name, err)
			continue
		}
		if !ds.Matches(m) {
			t.Errorf("%s input %dx%dx%d does not match %s", m.Name, m.InH, m.InW, m.InC, ds.Name)
		}
	}
}
