package dnn

import (
	"math"
	"testing"
	"testing/quick"

	"autohet/internal/mat"
)

func TestTensorBasics(t *testing.T) {
	ts := NewTensor(2, 3, 4)
	ts.Set(1, 2, 3, 7)
	if ts.At(1, 2, 3) != 7 {
		t.Fatal("At/Set wrong")
	}
	if len(ts.Flatten()) != 24 {
		t.Fatal("Flatten length wrong")
	}
	// Flatten is C-major.
	ts.Set(0, 0, 1, 5)
	if ts.Flatten()[1] != 5 {
		t.Fatal("Flatten order wrong")
	}
}

func TestTensorPanics(t *testing.T) {
	cases := []func(){
		func() { NewTensor(0, 1, 1) },
		func() { NewTensor(1, 1, 1).At(1, 0, 0) },
		func() { NewTensor(1, 1, 1).Set(0, 0, -1, 0) },
		func() { NewTensor(1, 2, 2).Patch(pool("p", 2, 2), 0, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPatchInterior(t *testing.T) {
	// 1 channel, 3x3 input, identity layout. k=3, pad=1: patch at (1,1)
	// covers the whole map.
	in := NewTensor(1, 3, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			in.Set(0, y, x, float64(y*3+x))
		}
	}
	l := conv("c", 3, 1, 1, 1, 1)
	p := in.Patch(l, 1, 1)
	for i := 0; i < 9; i++ {
		if p[i] != float64(i) {
			t.Fatalf("patch = %v", p)
		}
	}
	// Corner patch at (0,0) has zero padding on top/left.
	corner := in.Patch(l, 0, 0)
	want := []float64{0, 0, 0, 0, 0, 1, 0, 3, 4}
	for i := range want {
		if corner[i] != want[i] {
			t.Fatalf("corner patch = %v, want %v", corner, want)
		}
	}
}

func TestPatchMultiChannelOrder(t *testing.T) {
	in := NewTensor(2, 2, 2)
	in.Set(0, 0, 0, 1)
	in.Set(1, 0, 0, 2)
	l := conv("c", 1, 2, 1, 1, 0)
	p := in.Patch(l, 0, 0)
	if p[0] != 1 || p[1] != 2 {
		t.Fatalf("channel order wrong: %v", p)
	}
}

func TestSyntheticTensorDeterministic(t *testing.T) {
	a := SyntheticTensor(2, 3, 3, 9)
	b := SyntheticTensor(2, 3, 3, 9)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("not deterministic")
		}
		if a.Data[i] < 0 || a.Data[i] >= 1 {
			t.Fatal("value out of [0,1)")
		}
	}
	c := SyntheticTensor(2, 3, 3, 10)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical tensors")
	}
}

func TestConvRefMatchesManual(t *testing.T) {
	// 1 input channel, 2x2 input, k=1, 1 output channel, weight 2.0:
	// output = 2*input.
	in := NewTensor(1, 2, 2)
	in.Set(0, 0, 0, 3)
	in.Set(0, 1, 1, 4)
	l := conv("c", 1, 1, 1, 1, 0)
	l.InH, l.InW, l.OutH, l.OutW = 2, 2, 2, 2
	w := mat.FromSlice(1, 1, []float64{2})
	out := ConvRef(l, in, w)
	if out.At(0, 0, 0) != 6 || out.At(0, 1, 1) != 8 {
		t.Fatalf("ConvRef = %v", out.Data)
	}
}

// Property: ConvRef with a k=1 kernel equals a per-pixel matrix multiply.
func TestConvRef1x1Property(t *testing.T) {
	f := func(seed int64) bool {
		in := SyntheticTensor(3, 4, 4, seed)
		l := conv("c", 1, 3, 2, 1, 0)
		l.InH, l.InW, l.OutH, l.OutW = 4, 4, 4, 4
		w := SyntheticWeights(l, seed)
		out := ConvRef(l, in, w)
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				for j := 0; j < 2; j++ {
					var want float64
					for c := 0; c < 3; c++ {
						want += in.At(c, y, x) * w.At(c, j)
					}
					if math.Abs(out.At(j, y, x)-want) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolMaxRef(t *testing.T) {
	in := NewTensor(1, 4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			in.Set(0, y, x, float64(y*4+x))
		}
	}
	out := PoolMaxRef(pool("p", 2, 2), in)
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pool out %dx%d", out.H, out.W)
	}
	want := [][]float64{{5, 7}, {13, 15}}
	for y := range want {
		for x := range want[y] {
			if out.At(0, y, x) != want[y][x] {
				t.Fatalf("pool(%d,%d) = %v, want %v", y, x, out.At(0, y, x), want[y][x])
			}
		}
	}
}

func TestFCRefAndReLU(t *testing.T) {
	l := fc("f", 2, 2)
	w := mat.FromSlice(2, 2, []float64{1, -1, 2, 3})
	out := FCRef(l, []float64{1, 1}, w)
	if out[0] != 3 || out[1] != 2 {
		t.Fatalf("FCRef = %v", out)
	}
	r := ReLU([]float64{-1, 0.5})
	if r[0] != 0 || r[1] != 0.5 {
		t.Fatalf("ReLU = %v", r)
	}
}

func TestReferencePanics(t *testing.T) {
	l1 := conv("c", 3, 2, 2, 1, 1)
	l1.InH, l1.InW, l1.OutH, l1.OutW = 4, 4, 4, 4
	in := NewTensor(3, 4, 4) // wrong channels
	func() {
		defer func() {
			if recover() == nil {
				t.Error("channel mismatch did not panic")
			}
		}()
		ConvRef(l1, in, SyntheticWeights(l1, 1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("FCRef length mismatch did not panic")
			}
		}()
		FCRef(fc("f", 3, 1), []float64{1}, mat.New(3, 1))
	}()
}

func TestRunReferenceSmallCNN(t *testing.T) {
	m, err := NewModel("tinycnn", 6, 6, 1, []*Layer{
		conv("c1", 3, 1, 4, 1, 1),
		pool("p1", 2, 2),
		conv("c2", 3, 4, 8, 1, 1),
		pool("p2", 3, 3),
		fc("f1", 8, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	in := SyntheticTensor(1, 6, 6, 3)
	out, err := RunReference(m, in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("output len %d", len(out))
	}
	// Deterministic.
	again, _ := RunReference(m, in, 3)
	for i := range out {
		if out[i] != again[i] {
			t.Fatal("RunReference not deterministic")
		}
	}
	// Wrong input shape must error.
	if _, err := RunReference(m, NewTensor(1, 5, 5), 3); err == nil {
		t.Fatal("wrong input shape must error")
	}
}
