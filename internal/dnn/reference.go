package dnn

import (
	"fmt"

	"autohet/internal/mat"
)

// Float reference inference. The crossbar pipeline in package sim executes
// the same model through quantized, bit-sliced MVMs; these functions define
// the ground truth it is checked against.

// ConvRef computes a convolution layer on the float reference path. w is
// the layer's unfolded weight matrix (C_in·k² × C_out).
func ConvRef(l *Layer, in *Tensor, w *mat.Matrix) *Tensor {
	if l.Kind != Conv {
		panic("dnn: ConvRef on non-CONV layer " + l.Name)
	}
	if l.GroupCount() > 1 {
		panic("dnn: ConvRef does not support grouped convolutions: " + l.Name)
	}
	if in.C != l.InC {
		panic(fmt.Sprintf("dnn: ConvRef input channels %d, layer wants %d", in.C, l.InC))
	}
	if w.Rows != l.UnfoldedRows() || w.Cols != l.UnfoldedCols() {
		panic(fmt.Sprintf("dnn: ConvRef weights %dx%d, layer unfolds to %dx%d",
			w.Rows, w.Cols, l.UnfoldedRows(), l.UnfoldedCols()))
	}
	out := NewTensor(l.OutC, l.OutH, l.OutW)
	dst := make([]float64, l.OutC)
	for oy := 0; oy < l.OutH; oy++ {
		for ox := 0; ox < l.OutW; ox++ {
			patch := in.Patch(l, oy, ox)
			for j := 0; j < l.OutC; j++ {
				var sum float64
				for i, v := range patch {
					sum += v * w.At(i, j)
				}
				dst[j] = sum
			}
			for c, v := range dst {
				out.Set(c, oy, ox, v)
			}
		}
	}
	return out
}

// PoolMaxRef computes a max-pooling layer.
func PoolMaxRef(l *Layer, in *Tensor) *Tensor {
	if l.Kind != Pool {
		panic("dnn: PoolMaxRef on non-POOL layer " + l.Name)
	}
	outH := convOut(in.H, l.K, l.Stride, 0)
	outW := convOut(in.W, l.K, l.Stride, 0)
	out := NewTensor(in.C, outH, outW)
	for c := 0; c < in.C; c++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := in.At(c, oy*l.Stride, ox*l.Stride)
				for ky := 0; ky < l.K; ky++ {
					for kx := 0; kx < l.K; kx++ {
						y, x := oy*l.Stride+ky, ox*l.Stride+kx
						if y < in.H && x < in.W {
							if v := in.At(c, y, x); v > best {
								best = v
							}
						}
					}
				}
				out.Set(c, oy, ox, best)
			}
		}
	}
	return out
}

// FCRef computes a fully-connected layer: out[j] = Σ_i in[i]·w[i][j].
func FCRef(l *Layer, in []float64, w *mat.Matrix) []float64 {
	if l.Kind != FC {
		panic("dnn: FCRef on non-FC layer " + l.Name)
	}
	if len(in) != l.InC {
		panic(fmt.Sprintf("dnn: FCRef input %d, layer wants %d", len(in), l.InC))
	}
	out := make([]float64, l.OutC)
	for j := 0; j < l.OutC; j++ {
		var sum float64
		for i, v := range in {
			sum += v * w.At(i, j)
		}
		out[j] = sum
	}
	return out
}

// ReLU clamps negatives to zero in place and returns x.
func ReLU(x []float64) []float64 {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	return x
}

// RunReference runs the whole model in float, with ReLU after every
// mappable layer except the last (the logits), using SyntheticWeights(seed)
// for every layer. It returns the output vector.
func RunReference(m *Model, input *Tensor, seed int64) ([]float64, error) {
	if input.C != m.InC || input.H != m.InH || input.W != m.InW {
		return nil, fmt.Errorf("dnn: input %dx%dx%d, model %q wants %dx%dx%d",
			input.C, input.H, input.W, m.Name, m.InC, m.InH, m.InW)
	}
	cur := input
	var flat []float64
	last := m.Mappable()[m.NumMappable()-1]
	for _, l := range m.Layers {
		switch l.Kind {
		case Conv:
			w := SyntheticWeights(l, seed)
			cur = ConvRef(l, cur, w)
			if l != last {
				ReLU(cur.Data)
			}
		case Pool:
			cur = PoolMaxRef(l, cur)
		case FC:
			if flat == nil {
				flat = cur.Flatten()
			}
			w := SyntheticWeights(l, seed)
			flat = FCRef(l, flat, w)
			if l != last {
				ReLU(flat)
			}
		}
	}
	if flat == nil {
		flat = cur.Flatten()
	}
	return flat, nil
}
