package dnn

import (
	"math/rand"

	"autohet/internal/mat"
)

// Weight-matrix unfolding (paper Fig. 7): a CONV layer's kernels become a
// (C_in·k²) × C_out matrix where column j is kernel j expanded into a column
// vector. FC layers are already matrices. The repo has no trained weights
// (see DESIGN.md substitutions), so SyntheticWeights generates deterministic
// pseudo-weights; metrics depend only on shapes, and functional simulation
// only needs *some* reproducible values.

// UnfoldShape returns the unfolded weight-matrix shape (rows, cols) for a
// mappable layer: rows = C_in·k², cols = C_out.
func UnfoldShape(l *Layer) (rows, cols int) {
	return l.UnfoldedRows(), l.UnfoldedCols()
}

// SyntheticWeights returns a deterministic unfolded weight matrix for layer
// l. The same (seed, layer index, shape) always yields the same matrix.
// Values are uniform in [-1, 1).
func SyntheticWeights(l *Layer, seed int64) *mat.Matrix {
	if !l.Mappable() {
		panic("dnn: SyntheticWeights on non-mappable layer " + l.Name)
	}
	rows, cols := UnfoldShape(l)
	rng := rand.New(rand.NewSource(seed ^ int64(l.Index)*0x9e3779b97f4a7c ^ int64(rows*31+cols)))
	w := mat.New(rows, cols)
	w.Randomize(rng, 1)
	return w
}

// SyntheticInput returns a deterministic input feature map for layer l as a
// flat vector of length C_in·k² — one unfolded sliding-window patch, the
// vector a crossbar array multiplies per output position. Values are uniform
// in [0, 1) (post-ReLU activations are non-negative).
func SyntheticInput(l *Layer, seed int64) []float64 {
	if !l.Mappable() {
		panic("dnn: SyntheticInput on non-mappable layer " + l.Name)
	}
	n := l.UnfoldedRows()
	rng := rand.New(rand.NewSource(seed ^ 0x5bf03635 ^ int64(l.Index+1)*0x100000001b3))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}
