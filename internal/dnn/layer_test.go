package dnn

import "testing"

func TestKindString(t *testing.T) {
	if Conv.String() != "CONV" || FC.String() != "FC" || Pool.String() != "POOL" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "?" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestLayerWeights(t *testing.T) {
	c := conv("c", 3, 12, 128, 1, 1)
	if got := c.Weights(); got != 12*9*128 {
		t.Fatalf("conv weights = %d, want %d", got, 12*9*128)
	}
	f := fc("f", 512, 1000)
	if got := f.Weights(); got != 512000 {
		t.Fatalf("fc weights = %d", got)
	}
	p := pool("p", 2, 2)
	if p.Weights() != 0 {
		t.Fatal("pool has weights")
	}
}

func TestKernelElems(t *testing.T) {
	if conv("c", 3, 1, 1, 1, 0).KernelElems() != 9 {
		t.Fatal("conv k² wrong")
	}
	if fc("f", 4, 4).KernelElems() != 1 {
		t.Fatal("fc ks must be 1 (paper §3.2)")
	}
}

func TestUnfoldedShape(t *testing.T) {
	// Paper Fig. 5: 128 kernels of 3×3×12 → 108×128 weight matrix.
	l := conv("c", 3, 12, 128, 1, 1)
	if l.UnfoldedRows() != 108 || l.UnfoldedCols() != 128 {
		t.Fatalf("unfold = %dx%d, want 108x128", l.UnfoldedRows(), l.UnfoldedCols())
	}
}

func TestMappable(t *testing.T) {
	if !conv("c", 1, 1, 1, 1, 0).Mappable() || !fc("f", 1, 1).Mappable() {
		t.Fatal("conv/fc must be mappable")
	}
	if pool("p", 2, 2).Mappable() {
		t.Fatal("pool must not be mappable")
	}
}

func TestLayerValidate(t *testing.T) {
	bad := []*Layer{
		{Name: "k0", Kind: Conv, K: 0, InC: 1, OutC: 1, Stride: 1},
		{Name: "negC", Kind: Conv, K: 3, InC: -1, OutC: 1, Stride: 1},
		{Name: "s0", Kind: Conv, K: 3, InC: 1, OutC: 1, Stride: 0},
		{Name: "negPad", Kind: Conv, K: 3, InC: 1, OutC: 1, Stride: 1, Pad: -1},
		{Name: "fcK2", Kind: FC, K: 2, InC: 4, OutC: 4, Stride: 1},
		{Name: "fcIn0", Kind: FC, K: 1, InC: 0, OutC: 4, Stride: 1},
		{Name: "poolS0", Kind: Pool, K: 2, Stride: 0},
		{Name: "badKind", Kind: Kind(7), K: 1, InC: 1, OutC: 1, Stride: 1},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layer %q validated but should not", l.Name)
		}
	}
	good := []*Layer{
		conv("ok", 3, 1, 64, 1, 1),
		fc("ok", 10, 10),
		pool("ok", 2, 2),
	}
	for _, l := range good {
		if err := l.Validate(); err != nil {
			t.Errorf("layer %q failed validation: %v", l.Name, err)
		}
	}
}

func TestLayerString(t *testing.T) {
	l := conv("c", 3, 64, 128, 1, 1)
	l.InH, l.InW = 28, 28
	if got := l.String(); got != "CONV k3 64→128 @28x28" {
		t.Fatalf("conv String = %q", got)
	}
	f := fc("f", 512, 10)
	if got := f.String(); got != "FC 512→10" {
		t.Fatalf("fc String = %q", got)
	}
	p := pool("p", 2, 2)
	p.InH, p.InW = 8, 8
	if got := p.String(); got != "POOL 2x2/2 @8x8" {
		t.Fatalf("pool String = %q", got)
	}
}

func TestMACs(t *testing.T) {
	l := conv("c", 3, 2, 4, 1, 1)
	l.OutH, l.OutW = 5, 5
	want := int64(2*9*4) * 25
	if l.MACs() != want {
		t.Fatalf("MACs = %d, want %d", l.MACs(), want)
	}
}
