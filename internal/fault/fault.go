// Package fault models ReRAM device non-idealities: stuck-at cell faults
// (a memristor pinned at low or high conductance regardless of the
// programmed bit) and analog read noise on bitline current sums. The paper
// assumes ideal devices; real arrays do not (its reference [24], AVAC,
// exists precisely because of RRAM variability), so this extension lets the
// functional simulator quantify how mapping choices tolerate defects.
package fault

import (
	"fmt"
	"math/rand"

	"autohet/internal/quant"
)

// Model describes the injected non-idealities. The zero value injects
// nothing.
type Model struct {
	// StuckAtZero and StuckAtOne are per-cell probabilities that a
	// memristor reads as 0 / 1 regardless of its programmed bit.
	StuckAtZero float64
	StuckAtOne  float64
	// ReadNoiseSigma is the standard deviation of zero-mean Gaussian noise
	// added to every digitized bitline sum, in integer sum units (one unit
	// = one cell conducting at full input). It models ADC quantization
	// slack plus analog summation noise.
	ReadNoiseSigma float64
	// Seed makes the fault map and noise reproducible.
	Seed int64
}

// Validate reports an error for probabilities outside [0,1] or combined
// above 1.
func (m *Model) Validate() error {
	if m == nil {
		return nil
	}
	if m.StuckAtZero < 0 || m.StuckAtOne < 0 || m.StuckAtZero+m.StuckAtOne > 1 {
		return fmt.Errorf("fault: stuck-at rates (%v, %v) invalid", m.StuckAtZero, m.StuckAtOne)
	}
	if m.ReadNoiseSigma < 0 {
		return fmt.Errorf("fault: negative read-noise sigma %v", m.ReadNoiseSigma)
	}
	return nil
}

// Zero reports whether the model injects nothing.
func (m *Model) Zero() bool {
	return m == nil || (m.StuckAtZero == 0 && m.StuckAtOne == 0 && m.ReadNoiseSigma == 0)
}

// ApplyStuckAt returns a copy of planes with stuck-at faults injected. The
// fault map is deterministic in (Seed, layerKey): the same physical cells
// fail on every inference, as real defects do. The input planes are not
// modified.
func (m *Model) ApplyStuckAt(planes []*quant.BitPlane, layerKey int64) []*quant.BitPlane {
	if m == nil || (m.StuckAtZero == 0 && m.StuckAtOne == 0) {
		return planes
	}
	rng := rand.New(rand.NewSource(m.Seed ^ layerKey*0x9e3779b9 ^ 0x5ca1ab1e))
	out := make([]*quant.BitPlane, len(planes))
	for pi, p := range planes {
		c := &quant.BitPlane{Rows: p.Rows, Cols: p.Cols, Bit: p.Bit, Bits: make([]uint8, len(p.Bits))}
		copy(c.Bits, p.Bits)
		for i := range c.Bits {
			r := rng.Float64()
			switch {
			case r < m.StuckAtZero:
				c.Bits[i] = 0
			case r < m.StuckAtZero+m.StuckAtOne:
				c.Bits[i] = 1
			}
		}
		out[pi] = c
	}
	return out
}

// Noise returns a reproducible per-conversion noise source. Each call to
// the returned function yields one Gaussian sample scaled by
// ReadNoiseSigma (always 0 when the sigma is 0).
func (m *Model) Noise(layerKey int64) func() float64 {
	if m == nil || m.ReadNoiseSigma == 0 {
		return func() float64 { return 0 }
	}
	rng := rand.New(rand.NewSource(m.Seed ^ layerKey*0x85ebca6b ^ 0x0ddba11))
	sigma := m.ReadNoiseSigma
	return func() float64 { return sigma * rng.NormFloat64() }
}

// CellFaultRate returns the total per-cell stuck-at probability.
func (m *Model) CellFaultRate() float64 {
	if m == nil {
		return 0
	}
	return m.StuckAtZero + m.StuckAtOne
}
