package fault

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadModel(t *testing.T) {
	m, err := ReadModel(strings.NewReader(
		`{"stuck_at_zero": 0.01, "read_noise_sigma": 0.5, "seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Model{StuckAtZero: 0.01, ReadNoiseSigma: 0.5, Seed: 7}
	if *m != want {
		t.Fatalf("got %+v, want %+v", *m, want)
	}
	// Absent fields keep their zero values.
	if m.StuckAtOne != 0 {
		t.Fatalf("absent stuck_at_one = %v", m.StuckAtOne)
	}
}

func TestReadModelRejects(t *testing.T) {
	for _, bad := range []string{
		`{"stuck_at_zero": 0.8, "stuck_at_one": 0.8}`, // combined > 1
		`{"read_noise_sigma": -1}`,
		`{"stuck_rate": 0.1}`, // unknown field
		`not json`,
	} {
		if _, err := ReadModel(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadModel(%q) accepted", bad)
		}
	}
}

func TestLoadModelRoundTrip(t *testing.T) {
	m, err := LoadModel("")
	if err != nil || m != nil {
		t.Fatalf("empty path: got (%v, %v), want (nil, nil)", m, err)
	}
	src := &Model{StuckAtZero: 0.02, StuckAtOne: 0.01, ReadNoiseSigma: 0.25, Seed: 3}
	var buf bytes.Buffer
	if err := src.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *src {
		t.Fatalf("round trip: got %+v, want %+v", *got, *src)
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
