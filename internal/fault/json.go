package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSON fault-model support so the command-line tools can run fault and
// repair studies without recompiling. Fields absent from the JSON keep
// their zero (inject-nothing) values.

// modelJSON mirrors Model with pointer fields so "absent" is
// distinguishable from zero.
type modelJSON struct {
	StuckAtZero    *float64 `json:"stuck_at_zero"`
	StuckAtOne     *float64 `json:"stuck_at_one"`
	ReadNoiseSigma *float64 `json:"read_noise_sigma"`
	Seed           *int64   `json:"seed"`
}

// ReadModel parses a JSON fault model from r, starting from the zero Model
// and overriding only the present fields, then validates.
func ReadModel(r io.Reader) (*Model, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var j modelJSON
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("fault: parsing model: %w", err)
	}
	var m Model
	if j.StuckAtZero != nil {
		m.StuckAtZero = *j.StuckAtZero
	}
	if j.StuckAtOne != nil {
		m.StuckAtOne = *j.StuckAtOne
	}
	if j.ReadNoiseSigma != nil {
		m.ReadNoiseSigma = *j.ReadNoiseSigma
	}
	if j.Seed != nil {
		m.Seed = *j.Seed
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadModel reads a JSON fault-model file; an empty path returns nil (no
// injected faults).
func LoadModel(path string) (*Model, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadModel(f)
}

// WriteJSON serializes the full model (all fields explicit).
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelJSON{
		StuckAtZero:    &m.StuckAtZero,
		StuckAtOne:     &m.StuckAtOne,
		ReadNoiseSigma: &m.ReadNoiseSigma,
		Seed:           &m.Seed,
	})
}
