package fault

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"autohet/internal/mat"
	"autohet/internal/quant"
)

func planes(seed int64) []*quant.BitPlane {
	rng := rand.New(rand.NewSource(seed))
	w := mat.New(16, 16)
	w.Randomize(rng, 1)
	return quant.QuantizeWeights(w).Slices()
}

func TestValidate(t *testing.T) {
	good := []*Model{
		nil,
		{},
		{StuckAtZero: 0.1, StuckAtOne: 0.2, ReadNoiseSigma: 0.5},
		{StuckAtZero: 0.5, StuckAtOne: 0.5},
	}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("%+v failed validation: %v", m, err)
		}
	}
	bad := []*Model{
		{StuckAtZero: -0.1},
		{StuckAtOne: -0.1},
		{StuckAtZero: 0.6, StuckAtOne: 0.6},
		{ReadNoiseSigma: -1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v validated but should not", m)
		}
	}
}

func TestZero(t *testing.T) {
	var nilModel *Model
	if !nilModel.Zero() || !(&Model{}).Zero() {
		t.Fatal("nil/empty model must be Zero")
	}
	if (&Model{StuckAtZero: 0.1}).Zero() || (&Model{ReadNoiseSigma: 1}).Zero() {
		t.Fatal("non-empty model must not be Zero")
	}
}

func TestApplyStuckAtNoopWhenZero(t *testing.T) {
	p := planes(1)
	var m *Model
	if got := m.ApplyStuckAt(p, 1); &got[0].Bits[0] != &p[0].Bits[0] {
		t.Fatal("nil model must return planes unchanged (no copy)")
	}
	noisy := &Model{ReadNoiseSigma: 1}
	if got := noisy.ApplyStuckAt(p, 1); &got[0].Bits[0] != &p[0].Bits[0] {
		t.Fatal("noise-only model must not copy planes")
	}
}

func TestApplyStuckAtDoesNotMutateInput(t *testing.T) {
	p := planes(2)
	orig := append([]uint8(nil), p[0].Bits...)
	m := &Model{StuckAtZero: 0.5, Seed: 3}
	m.ApplyStuckAt(p, 1)
	for i := range orig {
		if p[0].Bits[i] != orig[i] {
			t.Fatal("ApplyStuckAt mutated its input")
		}
	}
}

func TestApplyStuckAtDeterministic(t *testing.T) {
	p := planes(3)
	m := &Model{StuckAtZero: 0.1, StuckAtOne: 0.1, Seed: 4}
	a := m.ApplyStuckAt(p, 7)
	b := m.ApplyStuckAt(p, 7)
	for pi := range a {
		for i := range a[pi].Bits {
			if a[pi].Bits[i] != b[pi].Bits[i] {
				t.Fatal("fault map not deterministic")
			}
		}
	}
	c := m.ApplyStuckAt(p, 8)
	same := true
	for pi := range a {
		for i := range a[pi].Bits {
			if a[pi].Bits[i] != c[pi].Bits[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different layer keys gave identical fault maps")
	}
}

func TestStuckAtOneForcesOnes(t *testing.T) {
	p := planes(5)
	m := &Model{StuckAtOne: 1, Seed: 1}
	out := m.ApplyStuckAt(p, 1)
	for _, plane := range out {
		for _, b := range plane.Bits {
			if b != 1 {
				t.Fatal("StuckAtOne=1 must pin every cell to 1")
			}
		}
	}
	mz := &Model{StuckAtZero: 1, Seed: 1}
	out = mz.ApplyStuckAt(p, 1)
	for _, plane := range out {
		for _, b := range plane.Bits {
			if b != 0 {
				t.Fatal("StuckAtZero=1 must pin every cell to 0")
			}
		}
	}
}

// Property: the observed flip rate tracks the configured rate.
func TestStuckAtRateProperty(t *testing.T) {
	f := func(rateRaw uint8) bool {
		rate := float64(rateRaw%50) / 100 // 0–0.49
		m := &Model{StuckAtZero: rate / 2, StuckAtOne: rate / 2, Seed: int64(rateRaw)}
		p := planes(int64(rateRaw) + 100)
		out := m.ApplyStuckAt(p, 1)
		total, pinned := 0, 0
		for pi := range p {
			for i := range p[pi].Bits {
				total++
				if out[pi].Bits[i] != p[pi].Bits[i] {
					pinned++
				}
			}
		}
		if rate == 0 {
			return pinned == 0
		}
		// A pinned cell only shows as changed ~half the time (the stuck
		// value may match the programmed bit), so expect ≈ rate/2 flips
		// with generous slack.
		observed := float64(pinned) / float64(total)
		return observed < rate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNoise(t *testing.T) {
	var nilModel *Model
	n := nilModel.Noise(1)
	if n() != 0 {
		t.Fatal("nil model noise must be 0")
	}
	m := &Model{ReadNoiseSigma: 2, Seed: 6}
	src := m.Noise(1)
	var sum, sumSq float64
	const samples = 20000
	for i := 0; i < samples; i++ {
		v := src()
		sum += v
		sumSq += v * v
	}
	mean := sum / samples
	std := math.Sqrt(sumSq/samples - mean*mean)
	if math.Abs(mean) > 0.1 {
		t.Fatalf("noise mean %v", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Fatalf("noise std %v, want 2", std)
	}
	// Reproducible.
	a, b := m.Noise(3), m.Noise(3)
	for i := 0; i < 10; i++ {
		if a() != b() {
			t.Fatal("noise not reproducible")
		}
	}
}

func TestCellFaultRate(t *testing.T) {
	var nilModel *Model
	if nilModel.CellFaultRate() != 0 {
		t.Fatal("nil rate != 0")
	}
	m := &Model{StuckAtZero: 0.01, StuckAtOne: 0.02}
	if math.Abs(m.CellFaultRate()-0.03) > 1e-12 {
		t.Fatalf("rate = %v", m.CellFaultRate())
	}
}
