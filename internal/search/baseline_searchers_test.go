package search

import (
	"testing"

	"autohet/internal/dnn"
	"autohet/internal/xbar"
)

func bestHomoRUE(t *testing.T, env *Env) float64 {
	t.Helper()
	evals, best, err := BestHomogeneous(env, env.Candidates)
	if err != nil {
		t.Fatal(err)
	}
	return evals[best].Result.RUE()
}

func TestSimulatedAnnealingNeverBelowHomogeneous(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	ref := bestHomoRUE(t, env)
	opts := DefaultSAOptions()
	opts.Rounds = 80
	ev, err := SimulatedAnnealing(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Result.RUE() < ref {
		t.Fatalf("SA %v below best homogeneous %v", ev.Result.RUE(), ref)
	}
	if err := ev.Strategy.Validate(env.Model); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedAnnealingDeterministicAndValidated(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], false)
	opts := DefaultSAOptions()
	opts.Rounds = 40
	a, err := SimulatedAnnealing(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulatedAnnealing(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.RUE() != b.Result.RUE() {
		t.Fatal("SA not deterministic per seed")
	}
	// Option validation.
	bad := []SAOptions{
		{Rounds: 0, T0: 1, Alpha: 0.9},
		{Rounds: 10, T0: 0, Alpha: 0.9},
		{Rounds: 10, T0: 1, Alpha: 0},
		{Rounds: 10, T0: 1, Alpha: 1.5},
	}
	for _, o := range bad {
		if _, err := SimulatedAnnealing(env, o); err == nil {
			t.Errorf("SA options %+v must error", o)
		}
	}
}

func TestSimulatedAnnealingSingleCandidate(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:1], false)
	ev, err := SimulatedAnnealing(env, DefaultSAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Strategy[0] != env.Candidates[0] {
		t.Fatal("single-candidate SA must return the homogeneous strategy")
	}
}

func TestSimulatedAnnealingApproachesOptimum(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	optimal, err := Exhaustive(env)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSAOptions()
	opts.Rounds = 200
	ev, err := SimulatedAnnealing(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := ev.Result.RUE() / optimal.Result.RUE(); ratio < 0.9 {
		t.Fatalf("SA reached only %.1f%% of optimum", 100*ratio)
	}
}

func TestGeneticNeverBelowHomogeneous(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	ref := bestHomoRUE(t, env)
	opts := DefaultGAOptions()
	opts.Generations = 6
	opts.Population = 10
	ev, err := Genetic(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Result.RUE() < ref {
		t.Fatalf("GA %v below best homogeneous %v", ev.Result.RUE(), ref)
	}
	if err := ev.Strategy.Validate(env.Model); err != nil {
		t.Fatal(err)
	}
}

func TestGeneticOptionsValidation(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:2], false)
	bad := []GAOptions{
		{Generations: 0, Population: 10, MutationRate: 0.1},
		{Generations: 5, Population: 1, MutationRate: 0.1},
		{Generations: 5, Population: 10, Elite: 10, MutationRate: 0.1},
		{Generations: 5, Population: 10, Elite: -1, MutationRate: 0.1},
		{Generations: 5, Population: 10, MutationRate: -0.1},
		{Generations: 5, Population: 10, MutationRate: 1.1},
	}
	for _, o := range bad {
		if _, err := Genetic(env, o); err == nil {
			t.Errorf("GA options %+v must error", o)
		}
	}
}

func TestGeneticDeterministicPerSeed(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], false)
	opts := DefaultGAOptions()
	opts.Generations = 4
	opts.Population = 8
	a, err := Genetic(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Genetic(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.RUE() != b.Result.RUE() {
		t.Fatal("GA not deterministic per seed")
	}
}

func TestGeneticApproachesOptimum(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	optimal, err := Exhaustive(env)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Genetic(env, DefaultGAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ratio := ev.Result.RUE() / optimal.Result.RUE(); ratio < 0.9 {
		t.Fatalf("GA reached only %.1f%% of optimum", 100*ratio)
	}
}

// All searchers on VGG16 with the default candidates must land in the same
// neighborhood (the space has a strong optimum basin).
func TestSearcherConsensusOnVGG16(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-searcher comparison in -short mode")
	}
	env := testEnv(t, dnn.VGG16(), xbar.DefaultCandidates(), true)
	sa, err := SimulatedAnnealing(env, SAOptions{Rounds: 150, Seed: 2, T0: 0.3, Alpha: 0.98})
	if err != nil {
		t.Fatal(err)
	}
	ga, err := Genetic(env, GAOptions{Generations: 10, Population: 16, Elite: 2, MutationRate: 0.08, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref := bestHomoRUE(t, env)
	for name, rue := range map[string]float64{"SA": sa.Result.RUE(), "GA": ga.Result.RUE()} {
		if rue < ref {
			t.Errorf("%s RUE %v below best homogeneous %v", name, rue, ref)
		}
	}
}
