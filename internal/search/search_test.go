package search

import (
	"bytes"
	"math"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/rl"
	"autohet/internal/xbar"
)

func testEnv(t *testing.T, m *dnn.Model, cands []xbar.Shape, shared bool) *Env {
	t.Helper()
	env, err := NewEnv(hw.DefaultConfig(), m, cands, shared)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// tinyModel is a 4-layer model small enough for exhaustive search.
func tinyModel(t *testing.T) *dnn.Model {
	t.Helper()
	specs := [][3]int{{3, 3, 32}, {3, 32, 64}, {1, 64, 128}, {1, 128, 10}}
	var layers []*dnn.Layer
	for _, s := range specs {
		layers = append(layers, &dnn.Layer{
			Name: "c", Kind: dnn.Conv, K: s[0], InC: s[1], OutC: s[2],
			Stride: 1, Pad: 1, InH: 16, InW: 16,
		})
	}
	m, err := dnn.NewFlatModel("tiny", 16, 16, 3, layers)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewEnvValidation(t *testing.T) {
	m := tinyModel(t)
	if _, err := NewEnv(hw.DefaultConfig(), m, nil, false); err == nil {
		t.Fatal("empty candidates must error")
	}
	if _, err := NewEnv(hw.DefaultConfig(), m, []xbar.Shape{{}}, false); err == nil {
		t.Fatal("invalid candidate must error")
	}
	bad := hw.DefaultConfig()
	bad.PEsPerTile = 0
	if _, err := NewEnv(bad, m, xbar.DefaultCandidates(), false); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestStateVector(t *testing.T) {
	m := dnn.VGG16()
	env := testEnv(t, m, xbar.DefaultCandidates(), false)
	s := env.State(3, 0.7, 0.8)
	if len(s) != StateDim {
		t.Fatalf("state dim %d, want %d", len(s), StateDim)
	}
	// Layer 4 of VGG16 is CONV k3 128→128.
	if s[1] != 1 {
		t.Fatal("conv layer type flag wrong")
	}
	if s[8] != 0.7 || s[9] != 0.8 {
		t.Fatal("dynamic features not propagated")
	}
	for i, v := range s {
		if v < 0 || v > 1.5 {
			t.Fatalf("state[%d] = %v badly scaled", i, v)
		}
	}
	// FC layer flags 0.
	fcState := env.State(15, 0, 0)
	if fcState[1] != 0 {
		t.Fatal("fc layer type flag wrong")
	}
	if fcState[5] != 0.5 {
		t.Fatalf("fc stride feature = %v, want 0.5", fcState[5])
	}
}

func TestStatePanicsOutOfRange(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates(), false)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range layer did not panic")
		}
	}()
	env.State(99, 0, 0)
}

func TestDecodeAction(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates(), false)
	cases := []struct {
		a    float64
		want int
	}{
		{0, 0}, {0.19, 0}, {0.21, 1}, {0.5, 2}, {0.99, 4}, {1.0, 4}, {-0.1, 0},
	}
	for _, c := range cases {
		if got := env.DecodeAction(c.a); got != c.want {
			t.Errorf("DecodeAction(%v) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestLayerUtilizationMatchesEq4(t *testing.T) {
	m := dnn.VGG16()
	env := testEnv(t, m, xbar.DefaultCandidates(), false)
	// VGG16 L4 on 36×32 is 100% (§3.3).
	if u := env.LayerUtilization(3, 1); u != 1.0 {
		t.Fatalf("L4 on 36x32 = %v, want 1", u)
	}
}

func TestBestHomogeneous(t *testing.T) {
	env := testEnv(t, dnn.VGG16(), xbar.SquareCandidates(), false)
	evals, best, err := BestHomogeneous(env, xbar.SquareCandidates())
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 5 || best < 0 || best >= 5 {
		t.Fatalf("evals %d best %d", len(evals), best)
	}
	for i, e := range evals {
		if e.Result.RUE() > evals[best].Result.RUE() {
			t.Fatalf("best index wrong: %d beats %d", i, best)
		}
	}
	if _, _, err := BestHomogeneous(env, nil); err == nil {
		t.Fatal("empty shapes must error")
	}
}

func TestGreedyMaximizesLayerUtilization(t *testing.T) {
	env := testEnv(t, dnn.VGG16(), xbar.DefaultCandidates(), false)
	ev, err := Greedy(env)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range ev.Strategy {
		got := xbar.Utilization(env.Model.Mappable()[k], s)
		for _, c := range env.Candidates {
			if u := xbar.Utilization(env.Model.Mappable()[k], c); u > got+1e-9 {
				t.Fatalf("layer %d: greedy picked %v (%.3f), %v has %.3f", k, s, got, c, u)
			}
		}
	}
}

func TestRandomSearchDeterministicPerSeed(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates(), false)
	a, err := RandomSearch(env, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSearch(env, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.RUE() != b.Result.RUE() {
		t.Fatal("same seed must reproduce the same search")
	}
	if _, err := RandomSearch(env, 0, 1); err == nil {
		t.Fatal("zero rounds must error")
	}
}

func TestExhaustiveTinyAndBound(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], false)
	best, err := Exhaustive(env)
	if err != nil {
		t.Fatal(err)
	}
	// The optimum must beat or match every homogeneous build.
	_, bh, err := BestHomogeneous(env, env.Candidates)
	if err != nil {
		t.Fatal(err)
	}
	evals, _, _ := BestHomogeneous(env, env.Candidates)
	if best.Result.RUE() < evals[bh].Result.RUE()-1e-12 {
		t.Fatal("exhaustive lost to a homogeneous build")
	}
	// ResNet152's space must be rejected.
	bigEnv := testEnv(t, dnn.ResNet152(), xbar.DefaultCandidates(), false)
	if _, err := Exhaustive(bigEnv); err == nil {
		t.Fatal("exhaustive on ResNet152 must error")
	}
}

// The core claim: the RL search finds (near-)optimal heterogeneous
// strategies. On the tiny model, compare against exhaustive enumeration.
func TestAutoHetApproachesExhaustiveOptimum(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	optimal, err := Exhaustive(env)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Rounds = 150
	res, err := AutoHet(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.BestResult.RUE() / optimal.Result.RUE()
	if ratio < 0.9 {
		t.Fatalf("RL best %.4g is %.1f%% of optimum %.4g", res.BestResult.RUE(), 100*ratio, optimal.Result.RUE())
	}
}

func TestAutoHetBeatsBestHomogeneousOnVGG16(t *testing.T) {
	if testing.Short() {
		t.Skip("RL search in -short mode")
	}
	env := testEnv(t, dnn.VGG16(), xbar.DefaultCandidates(), true)
	homoEnv := testEnv(t, dnn.VGG16(), xbar.SquareCandidates(), false)
	evals, best, err := BestHomogeneous(homoEnv, xbar.SquareCandidates())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Rounds = 120
	res, err := AutoHet(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestResult.RUE() <= evals[best].Result.RUE() {
		t.Fatalf("AutoHet RUE %.4g did not beat best homogeneous %.4g",
			res.BestResult.RUE(), evals[best].Result.RUE())
	}
	if len(res.History) != 120 {
		t.Fatalf("history len %d", len(res.History))
	}
}

func TestAutoHetOptionsValidation(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates(), false)
	opts := DefaultOptions()
	opts.Rounds = 0
	if _, err := AutoHet(env, opts); err == nil {
		t.Fatal("zero rounds must error")
	}
	opts = DefaultOptions()
	opts.Agent = rl.DefaultAgentConfig(3)
	if _, err := AutoHet(env, opts); err == nil {
		t.Fatal("wrong state dim must error")
	}
}

func TestAutoHetProgressCallbackAndBestTracking(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:2], false)
	opts := DefaultOptions()
	opts.Rounds = 10
	calls := 0
	opts.Progress = func(rs RoundStats) { calls++ }
	res, err := AutoHet(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("progress calls %d", calls)
	}
	// Best must be achievable: re-evaluating it reproduces BestResult.
	re, err := env.EvalStrategy(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re.RUE()-res.BestResult.RUE()) > 1e-12 {
		t.Fatal("stored best result does not match its strategy")
	}
	// History RUEs never exceed the best.
	for _, h := range res.History {
		if h.RUE > res.BestResult.RUE()+1e-12 {
			t.Fatal("history contains round better than best")
		}
	}
	if err := res.Best.Validate(env.Model); err != nil {
		t.Fatal(err)
	}
}

func TestEvalIndicesErrors(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates(), false)
	if _, err := env.EvalIndices([]int{0, 1, 2, 99}); err == nil {
		t.Fatal("bad index must error")
	}
	if _, err := env.EvalIndices([]int{0}); err == nil {
		t.Fatal("short strategy must error")
	}
}

// Reward normalization: the env reward handed to the agent is RUE/RefRUE,
// so a homogeneous-equivalent round scores ~1.
func TestRewardNormalization(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:2], false)
	opts := DefaultOptions()
	opts.Rounds = 5
	res, err := AutoHet(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.History {
		if math.Abs(h.Reward-h.RUE/res.RefRUE) > 1e-12 {
			t.Fatal("reward != RUE/RefRUE")
		}
	}
	if res.RefRUE <= 0 {
		t.Fatal("RefRUE must be positive")
	}
}

// Strategy round-trip through accel: manual-hetero on VGG16 must beat
// every homogeneous SXB build in RUE (the paper's Fig. 3 motivation).
func TestManualHeteroBeatsHomogeneous(t *testing.T) {
	env := testEnv(t, dnn.VGG16(), xbar.SquareCandidates(), false)
	manual := accel.ManualHetero(16)
	mr, err := env.EvalStrategy(manual)
	if err != nil {
		t.Fatal(err)
	}
	evals, best, err := BestHomogeneous(env, xbar.SquareCandidates())
	if err != nil {
		t.Fatal(err)
	}
	if mr.RUE() <= evals[best].Result.RUE() {
		t.Fatalf("manual hetero RUE %.4g did not beat best homogeneous %.4g",
			mr.RUE(), evals[best].Result.RUE())
	}
}

// Depthwise layers are the extreme heterogeneity case: their block-diagonal
// unfolding wastes most of a large crossbar, so a heterogeneous strategy
// must beat every homogeneous one clearly.
func TestAutoHetOnDepthwiseNet(t *testing.T) {
	if testing.Short() {
		t.Skip("RL search in -short mode")
	}
	env := testEnv(t, dnn.DepthwiseNet(), xbar.DefaultCandidates(), true)
	evals, best, err := BestHomogeneous(env, env.Candidates)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Rounds = 120
	res, err := AutoHet(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestResult.RUE() < evals[best].Result.RUE() {
		t.Fatalf("AutoHet %v below best homogeneous %v on DepthwiseNet",
			res.BestResult.RUE(), evals[best].Result.RUE())
	}
	// The found strategy should be genuinely heterogeneous: the depthwise
	// layers' best shapes differ from the big pointwise/FC layers' unless
	// a single shape truly dominates (allow that, but check utilization
	// stayed reasonable).
	if res.BestResult.Utilization <= evals[best].Result.Utilization/2 {
		t.Fatalf("AutoHet utilization %v collapsed vs homogeneous %v",
			res.BestResult.Utilization, evals[best].Result.Utilization)
	}
}

// The search accepts a TD3-configured agent (twin critics, delayed policy)
// and still finds heterogeneous strategies at least as good as homogeneous.
func TestAutoHetWithTD3Agent(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	opts := DefaultOptions()
	opts.Rounds = 80
	opts.Agent = rl.DefaultAgentConfig(StateDim)
	opts.Agent.TwinCritics = true
	opts.Agent.TargetNoise = 0.05
	res, err := AutoHet(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := bestHomoRUE(t, env)
	if res.BestResult.RUE() < ref {
		t.Fatalf("TD3 search %v below best homogeneous %v", res.BestResult.RUE(), ref)
	}
}

// A trained agent can be saved, loaded, and used to warm-start a related
// search (policy transfer).
func TestAutoHetWarmStart(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	opts := DefaultOptions()
	opts.Rounds = 40
	first, err := AutoHet(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.Agent.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := rl.LoadAgent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	warm := DefaultOptions()
	warm.Rounds = 20
	warm.WarmStart = loaded
	second, err := AutoHet(env, warm)
	if err != nil {
		t.Fatal(err)
	}
	if second.Agent != loaded {
		t.Fatal("warm start must reuse the provided agent")
	}
	ref := bestHomoRUE(t, env)
	if second.BestResult.RUE() < ref {
		t.Fatal("warm-started search below homogeneous floor")
	}
	// Shape mismatch is rejected.
	bad := DefaultOptions()
	bad.WarmStart = rl.NewAgent(rl.DefaultAgentConfig(3))
	if _, err := AutoHet(env, bad); err == nil {
		t.Fatal("wrong warm-start dimension must error")
	}
}
