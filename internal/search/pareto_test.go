package search

import (
	"testing"

	"autohet/internal/dnn"
	"autohet/internal/xbar"
)

func TestParetoFrontOnHomogeneousSet(t *testing.T) {
	// Over the five SXB builds of VGG16, utilization and energy trade off
	// monotonically at the extremes: 32x32 (best util) and 512x512 (best
	// energy) must both be on the util/energy front.
	env := testEnv(t, dnn.VGG16(), xbar.SquareCandidates(), false)
	evals, _, err := BestHomogeneous(env, xbar.SquareCandidates())
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(evals, ObjEnergy, ObjNegUtil)
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	has := func(idx int) bool {
		for _, i := range front {
			if i == idx {
				return true
			}
		}
		return false
	}
	// 512x512 has the lowest energy of all → always non-dominated.
	if !has(4) {
		t.Fatalf("512x512 missing from front %v", front)
	}
	// 64x64 has the highest utilization (beats 32x32 here) → non-dominated.
	bestUtil := 0
	for i, e := range evals {
		if e.Result.Utilization > evals[bestUtil].Result.Utilization {
			bestUtil = i
		}
	}
	if !has(bestUtil) {
		t.Fatalf("utilization leader %d missing from front %v", bestUtil, front)
	}
	// Front sorted by energy ascending.
	for i := 1; i < len(front); i++ {
		if evals[front[i]].Result.EnergyNJ < evals[front[i-1]].Result.EnergyNJ {
			t.Fatal("front not sorted by first objective")
		}
	}
	// Every off-front design is dominated by some front member.
	for i, e := range evals {
		if has(i) {
			continue
		}
		dominated := false
		for _, fi := range front {
			f := evals[fi].Result
			if f.EnergyNJ <= e.Result.EnergyNJ && f.Utilization >= e.Result.Utilization &&
				(f.EnergyNJ < e.Result.EnergyNJ || f.Utilization > e.Result.Utilization) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("design %d off the front but not dominated", i)
		}
	}
}

func TestParetoFrontSingleObjective(t *testing.T) {
	env := testEnv(t, dnn.VGG16(), xbar.SquareCandidates(), false)
	evals, best, err := BestHomogeneous(env, xbar.SquareCandidates())
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(evals, ObjNegRUE)
	if len(front) != 1 || front[0] != best {
		t.Fatalf("single-objective front %v, want [%d]", front, best)
	}
}

func TestParetoFrontEdgeCases(t *testing.T) {
	if ParetoFront(nil, ObjEnergy) != nil {
		t.Fatal("empty evals must give nil")
	}
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:2], false)
	evals, _, err := BestHomogeneous(env, env.Candidates)
	if err != nil {
		t.Fatal(err)
	}
	if ParetoFront(evals) != nil {
		t.Fatal("no objectives must give nil")
	}
	// Duplicates collapse to the first occurrence.
	dup := append(evals[:1], evals[0])
	front := ParetoFront(dup, ObjEnergy, ObjLatency)
	if len(front) != 1 || front[0] != 0 {
		t.Fatalf("duplicate front = %v", front)
	}
}
