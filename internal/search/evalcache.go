package search

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"autohet/internal/accel"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// The paper reports 97% of its 49.2-minute search inside the simulator
// (§4.5); this repo's profile has the same shape, with tile materialization
// (accel.Build) dominating every evaluation. The Evaluator removes that cost
// twice over: repeated strategies return the cached sim.Result outright, and
// fresh strategies are priced through the tile-free accel.Summarize plus
// per-layer memoized sim.LayerBase results — both asserted bit-identical to
// the BuildPlan+Simulate path in tests.

// EvalStats counts the evaluation engine's work. SimTime is cumulative time
// inside actual simulation — cache hits contribute nothing, and parallel
// workers sum their individual times, so it can exceed wall-clock time.
type EvalStats struct {
	Evals       int64 // strategy evaluations requested
	CacheHits   int64 // served from the strategy cache without simulating
	LayerHits   int64 // per-layer base memo hits
	LayerMisses int64
	SimTime     time.Duration
}

// HitRate returns the strategy-cache hit fraction in [0,1].
func (s EvalStats) HitRate() float64 {
	if s.Evals == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Evals)
}

// Sub returns the counter deltas s − o; use it to scope stats to one search
// when several share an evaluator.
func (s EvalStats) Sub(o EvalStats) EvalStats {
	return EvalStats{
		Evals:       s.Evals - o.Evals,
		CacheHits:   s.CacheHits - o.CacheHits,
		LayerHits:   s.LayerHits - o.LayerHits,
		LayerMisses: s.LayerMisses - o.LayerMisses,
		SimTime:     s.SimTime - o.SimTime,
	}
}

// layerKey identifies one memoized per-layer pricing: a layer of the env's
// model under a crossbar shape and weight precision. Everything else a
// strategy decides reaches the layer only through its tile count, which
// FinishLayer applies per evaluation.
type layerKey struct {
	layer int
	shape xbar.Shape
	bits  int
}

// Evaluator is the concurrency-safe memoizing evaluation engine all
// searchers share (via Env.Evaluator). Two cache levels back it: a
// strategy-level cache keyed on the strategy fingerprint (exact repeats,
// e.g. an annealer revisiting a state or GA elites), and a per-layer
// LayerResult memo keyed on (layer, shape, precision) that makes even a
// never-seen strategy cost only O(layers) cheap aggregation instead of a
// full tile materialization. Results coming from the fast path carry
// Plan == nil; call Materialize on a result that needs the concrete plan.
type Evaluator struct {
	env *Env

	mu         sync.RWMutex
	strategies map[string]*sim.Result
	layers     map[layerKey]sim.LayerResult

	poolOnce sync.Once
	poolPJ   float64

	evals       atomic.Int64
	hits        atomic.Int64
	layerHits   atomic.Int64
	layerMisses atomic.Int64
	simNS       atomic.Int64
}

// Stats returns a snapshot of the engine's counters.
func (v *Evaluator) Stats() EvalStats {
	return EvalStats{
		Evals:       v.evals.Load(),
		CacheHits:   v.hits.Load(),
		LayerHits:   v.layerHits.Load(),
		LayerMisses: v.layerMisses.Load(),
		SimTime:     time.Duration(v.simNS.Load()),
	}
}

// EvalIndices evaluates a strategy given as candidate indices.
func (v *Evaluator) EvalIndices(indices []int) (*sim.Result, error) {
	st, err := accel.FromIndices(v.env.Candidates, indices)
	if err != nil {
		return nil, err
	}
	return v.eval(st, nil)
}

// EvalStrategy evaluates a strategy.
func (v *Evaluator) EvalStrategy(st accel.Strategy) (*sim.Result, error) {
	return v.eval(st, nil)
}

// EvalSpec evaluates a strategy given as candidate indices plus per-layer
// weight bit-widths (nil bits means full precision).
func (v *Evaluator) EvalSpec(indices []int, bits accel.Precision) (*sim.Result, error) {
	st, err := accel.FromIndices(v.env.Candidates, indices)
	if err != nil {
		return nil, err
	}
	return v.eval(st, bits)
}

// fingerprint keys the strategy cache: the per-layer shapes plus, when
// mixed precision is in play, the per-layer bit-widths. Env-level facts
// (model, config, sharing) need no encoding — each Env owns its Evaluator.
func fingerprint(st accel.Strategy, bits accel.Precision) string {
	b := make([]byte, 0, 8*len(st))
	for _, s := range st {
		b = strconv.AppendInt(b, int64(s.R), 10)
		b = append(b, 'x')
		b = strconv.AppendInt(b, int64(s.C), 10)
		b = append(b, ',')
	}
	if bits != nil {
		b = append(b, '|')
		for _, w := range bits {
			b = strconv.AppendInt(b, int64(w), 10)
			b = append(b, ',')
		}
	}
	return string(b)
}

func (v *Evaluator) eval(st accel.Strategy, bits accel.Precision) (*sim.Result, error) {
	v.evals.Add(1)
	if v.env.NoCache {
		start := time.Now()
		r, err := v.env.evalDirect(st, bits)
		v.simNS.Add(int64(time.Since(start)))
		return r, err
	}
	key := fingerprint(st, bits)
	v.mu.RLock()
	r, ok := v.strategies[key]
	v.mu.RUnlock()
	if ok {
		v.hits.Add(1)
		return r, nil
	}
	start := time.Now()
	r, err := v.simulate(st, bits)
	v.simNS.Add(int64(time.Since(start)))
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	// Concurrent misses on the same key both simulate (the results are
	// bit-identical); keep the first stored pointer so equal strategies
	// always share one *Result.
	if prev, ok := v.strategies[key]; ok {
		r = prev
	} else {
		v.strategies[key] = r
	}
	v.mu.Unlock()
	return r, nil
}

// simulate prices a strategy on the fast path: plan-free aggregates from
// accel.Summarize, memoized per-layer bases, per-strategy tile counts
// applied by FinishLayer. Validation order mirrors accel.Build so error
// behavior matches the uncached path.
func (v *Evaluator) simulate(st accel.Strategy, bits accel.Precision) (*sim.Result, error) {
	env := v.env
	m := env.Model
	if err := st.Validate(m); err != nil {
		return nil, err
	}
	if err := bits.Validate(m, env.Cfg.WeightBits); err != nil {
		return nil, err
	}
	sum, err := accel.Summarize(env.Cfg, m, st, env.Shared)
	if err != nil {
		return nil, err
	}
	mappable := m.Mappable()
	layers := make([]sim.LayerResult, len(mappable))
	for i, l := range mappable {
		b := env.Cfg.WeightBits
		if bits != nil {
			b = bits[l.Index]
		}
		base := v.layerBase(l.Index, st[l.Index], b)
		layers[i] = sim.FinishLayer(env.Cfg, base, sum.LayerTiles[i], 1)
	}
	v.poolOnce.Do(func() { v.poolPJ = sim.PoolEnergyPJ(m) })
	return sim.Assemble(sim.Aggregates{
		Utilization:   sum.Utilization,
		AreaUM2:       sum.AreaUM2,
		OccupiedTiles: sum.OccupiedTiles,
		PoolEnergyPJ:  v.poolPJ,
	}, layers), nil
}

// layerBase returns the memoized placement-independent pricing of one layer
// under a shape and precision.
func (v *Evaluator) layerBase(layerIndex int, shape xbar.Shape, bits int) sim.LayerResult {
	key := layerKey{layer: layerIndex, shape: shape, bits: bits}
	v.mu.RLock()
	lr, ok := v.layers[key]
	v.mu.RUnlock()
	if ok {
		v.layerHits.Add(1)
		return lr
	}
	v.layerMisses.Add(1)
	lr = sim.LayerBase(v.env.Cfg, v.env.Model.Mappable()[layerIndex], shape, bits)
	v.mu.Lock()
	v.layers[key] = lr
	v.mu.Unlock()
	return lr
}

// Materialize upgrades a fast-path result (Plan == nil) to one carrying the
// concrete tile plan, re-evaluated through the uncached path — bit-identical
// metrics, plus the Plan consumers like programming-cost accounting need.
// The upgraded result replaces the cached one, so later hits on the same
// strategy get the plan for free. Results that already have a plan pass
// through untouched.
func (v *Evaluator) Materialize(r *sim.Result, st accel.Strategy, bits accel.Precision) (*sim.Result, error) {
	if r == nil || r.Plan != nil {
		return r, nil
	}
	start := time.Now()
	full, err := v.env.evalDirect(st, bits)
	v.simNS.Add(int64(time.Since(start)))
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	v.strategies[fingerprint(st, bits)] = full
	v.mu.Unlock()
	return full, nil
}
