package search

import (
	"testing"

	"autohet/internal/xbar"
)

func TestMixedPrecisionBeatsFullPrecision(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	// Full-precision baseline: best homogeneous at 8 bits.
	ref := bestHomoRUE(t, env)
	opts := DefaultMPOptions()
	opts.Rounds = 120
	res, err := MixedPrecision(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Narrower weights cut conversions, so feasible mixed precision must
	// strictly improve RUE over the 8-bit best homogeneous.
	if res.Result.RUE() <= ref {
		t.Fatalf("mixed precision %v did not beat 8-bit best homogeneous %v", res.Result.RUE(), ref)
	}
	if res.MeanBits < opts.MinMeanBits {
		t.Fatalf("mean bits %v below floor %v", res.MeanBits, opts.MinMeanBits)
	}
	for i, b := range res.Precision {
		if b != 4 && b != 6 && b != 8 {
			t.Fatalf("layer %d assigned bits %d outside choices", i, b)
		}
	}
	if err := res.Strategy.Validate(env.Model); err != nil {
		t.Fatal(err)
	}
}

func TestMixedPrecisionHonorsBudget(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:2], false)
	opts := DefaultMPOptions()
	opts.Rounds = 60
	opts.MinMeanBits = 8 // only uniform 8-bit is feasible
	res, err := MixedPrecision(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range res.Precision {
		if b != 8 {
			t.Fatalf("layer %d bits %d despite 8-bit floor", i, b)
		}
	}
	if res.MeanBits != 8 {
		t.Fatalf("mean bits %v", res.MeanBits)
	}
}

func TestMixedPrecisionDeterministic(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:2], false)
	opts := DefaultMPOptions()
	opts.Rounds = 40
	a, err := MixedPrecision(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MixedPrecision(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.RUE() != b.Result.RUE() || a.MeanBits != b.MeanBits {
		t.Fatal("mixed-precision search not deterministic per seed")
	}
}

func TestMixedPrecisionValidation(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:2], false)
	bad := []MPOptions{
		{Rounds: 0, T0: 1, Alpha: 0.9, BitChoices: []int{8}},
		{Rounds: 10, T0: 0, Alpha: 0.9, BitChoices: []int{8}},
		{Rounds: 10, T0: 1, Alpha: 1.2, BitChoices: []int{8}},
		{Rounds: 10, T0: 1, Alpha: 0.9},                                       // no choices
		{Rounds: 10, T0: 1, Alpha: 0.9, BitChoices: []int{9}},                 // over WeightBits
		{Rounds: 10, T0: 1, Alpha: 0.9, BitChoices: []int{0}},                 // under 1
		{Rounds: 10, T0: 1, Alpha: 0.9, BitChoices: []int{4}, MinMeanBits: 6}, // unreachable floor
	}
	for _, o := range bad {
		if _, err := MixedPrecision(env, o); err == nil {
			t.Errorf("options %+v must error", o)
		}
	}
}

func TestEvalSpecPrecisionScalesEnergy(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:2], false)
	n := env.NumLayers()
	indices := make([]int, n)
	full, err := env.EvalSpec(indices, nil)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]int, n)
	for i := range bits {
		bits[i] = 4
	}
	half, err := env.EvalSpec(indices, bits)
	if err != nil {
		t.Fatal(err)
	}
	// 4-bit weights activate half the bit planes → about half the ADC
	// energy (non-plane components shift the ratio a little).
	ratio := half.EnergyNJ / full.EnergyNJ
	if ratio < 0.4 || ratio > 0.7 {
		t.Fatalf("4-bit energy ratio %v, want ≈0.5", ratio)
	}
	if half.ADCConversions*2 != full.ADCConversions {
		t.Fatalf("ADC conversions %d vs %d, want exactly half", half.ADCConversions, full.ADCConversions)
	}
	// Utilization and area are bit-width independent (cells still hold the
	// full PE).
	if half.Utilization != full.Utilization {
		t.Fatal("precision changed utilization")
	}
}
