package search

import (
	"fmt"
	"time"

	"autohet/internal/obs"
)

// Search instrumentation on the shared obs registry. The evaluation engine
// is the search hot path (a cached eval is sub-microsecond), so it is never
// asked to touch extra counters: its existing atomics are published through
// CounterFuncs, which cost nothing until a scrape or snapshot reads them.
// Per-searcher totals and the sim/agent time split are recorded once per
// finished search from the result's deltas.

const (
	evalHelp   = "Strategy evaluations requested from the shared evaluation engine."
	cacheHelp  = "Evaluation-engine cache lookups by cache level and outcome."
	simNSHelp  = "Cumulative time inside actual simulation in nanoseconds (cache hits bill nothing; parallel workers sum)."
	byNameHelp = "Strategy evaluations per searcher (deltas recorded as each search finishes)."
	phaseHelp  = "Search wall time split between simulator feedback and agent work, in nanoseconds."
	stageHelp  = "AutoHet per-round stage time (decide/simulate/learn) in nanoseconds."
)

// publish exposes the evaluator's counters on obs.Default. Re-publishing
// from a newer evaluator rebinds the series (latest env wins), matching the
// fleet convention.
func (v *Evaluator) publish() {
	reg := obs.Default
	reg.CounterFunc("autohet_search_evals_total", evalHelp, v.evals.Load)
	reg.CounterFunc(`autohet_search_cache_events_total{cache="strategy",event="hit"}`, cacheHelp, v.hits.Load)
	reg.CounterFunc(`autohet_search_cache_events_total{cache="layer",event="hit"}`, cacheHelp, v.layerHits.Load)
	reg.CounterFunc(`autohet_search_cache_events_total{cache="layer",event="miss"}`, cacheHelp, v.layerMisses.Load)
	reg.CounterFunc("autohet_search_sim_ns_total", simNSHelp, v.simNS.Load)
}

// trackSearch snapshots the evaluator's counters and returns a function
// that records the deltas against the named searcher — deferred at each
// searcher's entry so even failed searches bill the work they did.
func trackSearch(searcher string, v *Evaluator) func() {
	startStats, startT := v.Stats(), time.Now()
	return func() { recordSearch(searcher, v.Stats().Sub(startStats), time.Since(startT)) }
}

// recordSearch adds one finished search's evaluation count and sim/agent
// time split to the registry. Agent time is everything not spent waiting on
// the simulator, clamped at zero because parallel evaluation phases can sum
// more worker-seconds of sim time than wall time.
func recordSearch(searcher string, stats EvalStats, total time.Duration) {
	reg := obs.Default
	reg.Counter(fmt.Sprintf("autohet_search_searcher_evals_total{searcher=%q}", searcher), byNameHelp).
		Add(stats.Evals)
	reg.Counter(fmt.Sprintf("autohet_search_time_ns_total{searcher=%q,phase=%q}", searcher, "sim"), phaseHelp).
		Add(int64(stats.SimTime))
	if agentNS := int64(total - stats.SimTime); agentNS > 0 {
		reg.Counter(fmt.Sprintf("autohet_search_time_ns_total{searcher=%q,phase=%q}", searcher, "agent"), phaseHelp).
			Add(agentNS)
	}
}
