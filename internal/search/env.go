// Package search wires the DDPG agent to the accelerator simulator,
// implementing the paper's Fig. 6 workflow: the agent walks the model's
// layers emitting one crossbar-type action per layer (decision stage), the
// heterogeneous accelerator is built and simulated to produce the reward
// R = u/e (Eq. 2), and the experience pool feeds minibatch updates
// (learning stage). It also provides the evaluation baselines: homogeneous
// accelerators, the Fig. 3 manual heterogeneous strategy, greedy
// utilization-first search (Zhu et al. style), random search, and
// exhaustive enumeration for small models.
package search

import (
	"fmt"
	"math"
	"sync"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// StateDim is the paper's 10-dimensional state vector (Table 1).
const StateDim = 10

// Env binds a model, a hardware config, and a crossbar candidate set into
// an RL environment.
type Env struct {
	Cfg        hw.Config
	Model      *dnn.Model
	Candidates []xbar.Shape
	// Shared enables the tile-shared allocation scheme during evaluation.
	Shared bool
	// NoCache makes the Evaluator fall through to the uncached
	// build-and-simulate path on every call — the honest baseline for
	// benchmarking the evaluation engine. Set it before searching.
	NoCache bool

	evalOnce  sync.Once
	evaluator *Evaluator
}

// NewEnv validates and constructs an environment.
func NewEnv(cfg hw.Config, m *dnn.Model, candidates []xbar.Shape, shared bool) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("search: no crossbar candidates")
	}
	for _, s := range candidates {
		if !s.Valid() {
			return nil, fmt.Errorf("search: invalid candidate %v", s)
		}
	}
	return &Env{Cfg: cfg, Model: m, Candidates: candidates, Shared: shared}, nil
}

// log2n compresses a positive count to roughly [0,1] for network input.
func log2n(v, maxBits float64) float64 {
	if v < 1 {
		v = 1
	}
	return math.Log2(v) / maxBits
}

// State builds the normalized state vector for layer k (Table 1):
// (k, t, inc, outc, ks, s, w, ins, a_k, u_k). The two dynamic features are
// the previous decision's action value and its Eq.-4 utilization, matching
// the paper's "obtained from the decision stage" semantics.
func (e *Env) State(k int, prevAction, prevUtil float64) []float64 {
	layers := e.Model.Mappable()
	if k < 0 || k >= len(layers) {
		panic(fmt.Sprintf("search: layer index %d out of %d", k, len(layers)))
	}
	l := layers[k]
	t := 0.0
	if l.Kind == dnn.Conv {
		t = 1
	}
	return []float64{
		float64(k) / float64(len(layers)), // 1: layer index
		t,                                 // 2: layer type
		log2n(float64(l.InC), 12),         // 3: input channels
		log2n(float64(l.OutC), 12),        // 4: output channels
		float64(l.KernelElems()) / 49,     // 5: kernel elements (k ≤ 7)
		float64(l.Stride) / 2,             // 6: stride
		log2n(float64(l.Weights()), 25),   // 7: weight count
		log2n(float64(l.InputSize()), 16), // 8: input feature-map size
		prevAction,                        // 9: previous action
		prevUtil,                          // 10: previous utilization
	}
}

// DecodeAction maps a continuous action in [0,1] onto a candidate index by
// uniform binning.
func (e *Env) DecodeAction(a float64) int {
	idx := int(a * float64(len(e.Candidates)))
	if idx >= len(e.Candidates) {
		idx = len(e.Candidates) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// LayerUtilization returns the Eq.-4 crossbar-array utilization of layer k
// under candidate idx — the u_k dynamic state feature.
func (e *Env) LayerUtilization(k, idx int) float64 {
	return xbar.Utilization(e.Model.Mappable()[k], e.Candidates[idx])
}

// EvalIndices builds and simulates the accelerator for a strategy given as
// candidate indices, returning the hardware feedback.
func (e *Env) EvalIndices(indices []int) (*sim.Result, error) {
	st, err := accel.FromIndices(e.Candidates, indices)
	if err != nil {
		return nil, err
	}
	return e.EvalStrategy(st)
}

// EvalStrategy builds and simulates the accelerator for a strategy.
func (e *Env) EvalStrategy(st accel.Strategy) (*sim.Result, error) {
	return e.evalDirect(st, nil)
}

// EvalSpec builds and simulates the accelerator for a strategy given as
// candidate indices plus per-layer weight bit-widths (the mixed-precision
// extension; nil bits means full precision).
func (e *Env) EvalSpec(indices []int, bits accel.Precision) (*sim.Result, error) {
	st, err := accel.FromIndices(e.Candidates, indices)
	if err != nil {
		return nil, err
	}
	return e.evalDirect(st, bits)
}

// evalDirect is the uncached evaluation path: materialize the full tile
// plan and simulate it. The Evaluator's fast path must stay bit-identical
// to this (asserted in tests).
func (e *Env) evalDirect(st accel.Strategy, bits accel.Precision) (*sim.Result, error) {
	p, err := accel.Build(e.Cfg, e.Model, accel.PlanSpec{
		Strategy:  st,
		Precision: bits,
		Shared:    e.Shared,
	})
	if err != nil {
		return nil, err
	}
	return sim.Simulate(p)
}

// Evaluator returns the env's shared memoizing evaluation engine, creating
// it on first use. All searchers over the same env share one engine, so a
// GA can warm the caches an annealer then profits from.
func (e *Env) Evaluator() *Evaluator {
	e.evalOnce.Do(func() {
		e.evaluator = &Evaluator{
			env:        e,
			strategies: map[string]*sim.Result{},
			layers:     map[layerKey]sim.LayerResult{},
		}
		e.evaluator.publish()
	})
	return e.evaluator
}

// NumLayers returns the number of decisions per episode.
func (e *Env) NumLayers() int { return e.Model.NumMappable() }
