package search

import (
	"fmt"
	"math"
	"math/rand"

	"autohet/internal/accel"
	"autohet/internal/sim"
)

// Mixed-precision co-search: jointly choose each layer's crossbar shape AND
// weight bit-width. Fewer bit-planes cut conversions (energy) roughly
// linearly, so the RUE objective rewards narrow weights; the weighted-mean
// bit floor stands in for an accuracy constraint (this repo has no trained
// models to re-validate — see DESIGN.md substitutions — so the constraint
// plays the role HAQ's accuracy evaluator plays). Simulated annealing
// handles the composite discrete space directly.

// MPOptions configures MixedPrecision.
type MPOptions struct {
	Rounds int
	Seed   int64
	T0     float64 // initial temperature on the normalized-RUE scale
	Alpha  float64 // geometric cooling factor
	// BitChoices are the allowed per-layer widths, e.g. {4, 6, 8}.
	BitChoices []int
	// MinMeanBits is the feasibility floor on the weight-count-weighted
	// mean bit-width (the quantization "budget").
	MinMeanBits float64
}

// DefaultMPOptions allows 4/6/8-bit layers with a mean of at least 6 bits.
func DefaultMPOptions() MPOptions {
	return MPOptions{Rounds: 300, Seed: 1, T0: 0.3, Alpha: 0.99,
		BitChoices: []int{4, 6, 8}, MinMeanBits: 6}
}

// MPResult is the outcome of a mixed-precision search.
type MPResult struct {
	Strategy  accel.Strategy
	Precision accel.Precision
	Result    *sim.Result
	// MeanBits is the weight-count-weighted mean bit-width.
	MeanBits float64
}

// MixedPrecision runs the joint shape × bit-width annealing search.
func MixedPrecision(env *Env, opts MPOptions) (*MPResult, error) {
	switch {
	case opts.Rounds <= 0:
		return nil, fmt.Errorf("search: MP rounds %d", opts.Rounds)
	case opts.T0 <= 0 || opts.Alpha <= 0 || opts.Alpha > 1:
		return nil, fmt.Errorf("search: MP schedule T0=%v alpha=%v", opts.T0, opts.Alpha)
	case len(opts.BitChoices) == 0:
		return nil, fmt.Errorf("search: MP needs bit choices")
	}
	maxBits := 0
	for _, b := range opts.BitChoices {
		if b < 1 || b > env.Cfg.WeightBits {
			return nil, fmt.Errorf("search: MP bit choice %d outside [1,%d]", b, env.Cfg.WeightBits)
		}
		if b > maxBits {
			maxBits = b
		}
	}
	if float64(maxBits) < opts.MinMeanBits {
		return nil, fmt.Errorf("search: MinMeanBits %v unreachable with choices %v", opts.MinMeanBits, opts.BitChoices)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	n := env.NumLayers()
	c := len(env.Candidates)
	weights := make([]float64, n)
	var totalW float64
	for i, l := range env.Model.Mappable() {
		weights[i] = float64(l.Weights())
		totalW += weights[i]
	}
	meanBits := func(bits accel.Precision) float64 {
		var sum float64
		for i, b := range bits {
			sum += weights[i] * float64(b)
		}
		return sum / totalW
	}

	// Start: best homogeneous shape at full available precision (the
	// candidates evaluate in parallel; selection stays in candidate order).
	engine := env.Evaluator()
	defer trackSearch("mixed", engine)()
	indices := make([]int, n)
	bits := make(accel.Precision, n)
	for i := range bits {
		bits[i] = maxBits
	}
	homos := make([]*sim.Result, c)
	if err := ParallelFor(c, func(i int) error {
		homoIdx := make([]int, n)
		for j := range homoIdx {
			homoIdx[j] = i
		}
		r, err := engine.EvalSpec(homoIdx, bits)
		homos[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	refRUE := 0.0
	bestIdx := 0
	var cur *sim.Result
	for i, r := range homos {
		if r.RUE() > refRUE {
			refRUE = r.RUE()
			cur = r
			bestIdx = i
		}
	}
	if cur == nil || refRUE == 0 {
		return nil, fmt.Errorf("search: MP reference RUE is zero")
	}
	for j := range indices {
		indices[j] = bestIdx
	}

	best := &MPResult{
		Strategy:  mustStrategy(env, indices),
		Precision: append(accel.Precision(nil), bits...),
		Result:    cur,
		MeanBits:  meanBits(bits),
	}

	temp := opts.T0
	candIdx := make([]int, n)
	candBits := make(accel.Precision, n)
	for round := 0; round < opts.Rounds; round++ {
		copy(candIdx, indices)
		copy(candBits, bits)
		k := rng.Intn(n)
		if c > 1 && rng.Intn(2) == 0 {
			candIdx[k] = (candIdx[k] + 1 + rng.Intn(c-1)) % c
		} else {
			candBits[k] = opts.BitChoices[rng.Intn(len(opts.BitChoices))]
		}
		if meanBits(candBits) < opts.MinMeanBits {
			temp *= opts.Alpha
			continue // infeasible: rejected without evaluation
		}
		r, err := engine.EvalSpec(candIdx, candBits)
		if err != nil {
			return nil, err
		}
		delta := (r.RUE() - cur.RUE()) / refRUE
		if delta >= 0 || rng.Float64() < math.Exp(delta/temp) {
			copy(indices, candIdx)
			copy(bits, candBits)
			cur = r
			if r.RUE() > best.Result.RUE() {
				best = &MPResult{
					Strategy:  mustStrategy(env, indices),
					Precision: append(accel.Precision(nil), bits...),
					Result:    r,
					MeanBits:  meanBits(bits),
				}
			}
		}
		temp *= opts.Alpha
	}
	r, err := engine.Materialize(best.Result, best.Strategy, best.Precision)
	if err != nil {
		return nil, err
	}
	best.Result = r
	return best, nil
}

func mustStrategy(env *Env, indices []int) accel.Strategy {
	st, err := accel.FromIndices(env.Candidates, indices)
	if err != nil {
		panic(err) // indices are always produced in range
	}
	return st
}
