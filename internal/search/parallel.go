package search

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(0) … fn(n-1) across a bounded worker pool of
// min(runtime.NumCPU(), n) goroutines. Callers get deterministic results by
// writing into index-addressed slots from fn; the pool imposes no ordering
// of its own. The returned error is the lowest-index one, regardless of
// which worker hit it first, so error reporting is schedule-independent.
// Unlike a sequential loop, fn may still be called for indices after a
// failing one (workers drain the index stream independently).
func ParallelFor(n int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
