package search

import (
	"fmt"
	"math/rand"
	"sort"

	"autohet/internal/accel"
)

// GAOptions configures Genetic.
type GAOptions struct {
	Generations  int
	Population   int
	Elite        int     // individuals copied unchanged each generation
	MutationRate float64 // per-gene mutation probability
	Seed         int64
}

// DefaultGAOptions gives a budget comparable to 300 RL rounds
// (15 generations × 20 individuals).
func DefaultGAOptions() GAOptions {
	return GAOptions{Generations: 15, Population: 20, Elite: 2, MutationRate: 0.1, Seed: 1}
}

// Genetic is an evolutionary baseline over the C^N strategy space:
// tournament selection, uniform crossover, per-gene mutation, elitism. The
// initial population mixes the homogeneous strategies with random ones, so
// like the other searchers it can only improve on the best homogeneous
// accelerator.
func Genetic(env *Env, opts GAOptions) (Evaluation, error) {
	switch {
	case opts.Generations <= 0 || opts.Population <= 1:
		return Evaluation{}, fmt.Errorf("search: GA generations=%d population=%d", opts.Generations, opts.Population)
	case opts.Elite < 0 || opts.Elite >= opts.Population:
		return Evaluation{}, fmt.Errorf("search: GA elite %d of %d", opts.Elite, opts.Population)
	case opts.MutationRate < 0 || opts.MutationRate > 1:
		return Evaluation{}, fmt.Errorf("search: GA mutation rate %v", opts.MutationRate)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := env.NumLayers()
	c := len(env.Candidates)
	ev := env.Evaluator()
	defer trackSearch("ga", ev)()

	type individual struct {
		genes   []int
		fitness float64
		result  *Evaluation
	}
	// scoreBatch evaluates a cohort of genomes through the shared engine in
	// parallel. Genome generation (the only RNG consumer) happens before the
	// batch call, so parallel evaluation leaves the per-seed RNG stream —
	// and thus the search trajectory — identical to a sequential run.
	scoreBatch := func(genomes [][]int) ([]individual, error) {
		out := make([]individual, len(genomes))
		err := ParallelFor(len(genomes), func(i int) error {
			r, err := ev.EvalIndices(genomes[i])
			if err != nil {
				return err
			}
			st, _ := accel.FromIndices(env.Candidates, genomes[i])
			e := Evaluation{Strategy: st, Result: r}
			out[i] = individual{genes: genomes[i], fitness: r.RUE(), result: &e}
			return nil
		})
		return out, err
	}

	// Initial population: homogeneous seeds first, random fill after.
	seeds := make([][]int, 0, opts.Population)
	for i := 0; i < c && len(seeds) < opts.Population; i++ {
		genes := make([]int, n)
		for j := range genes {
			genes[j] = i
		}
		seeds = append(seeds, genes)
	}
	for len(seeds) < opts.Population {
		genes := make([]int, n)
		for j := range genes {
			genes[j] = rng.Intn(c)
		}
		seeds = append(seeds, genes)
	}
	pop, err := scoreBatch(seeds)
	if err != nil {
		return Evaluation{}, err
	}

	byFitness := func() {
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].fitness > pop[j].fitness })
	}
	tournament := func() individual {
		a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
		if a.fitness >= b.fitness {
			return a
		}
		return b
	}

	byFitness()
	best := pop[0]
	for g := 0; g < opts.Generations; g++ {
		// Breed the whole offspring cohort first (sequential RNG draws),
		// then evaluate it in parallel.
		offspring := make([][]int, 0, opts.Population-opts.Elite)
		for len(offspring) < opts.Population-opts.Elite {
			p1, p2 := tournament(), tournament()
			genes := make([]int, n)
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					genes[j] = p1.genes[j]
				} else {
					genes[j] = p2.genes[j]
				}
				if rng.Float64() < opts.MutationRate {
					genes[j] = rng.Intn(c)
				}
			}
			offspring = append(offspring, genes)
		}
		scored, err := scoreBatch(offspring)
		if err != nil {
			return Evaluation{}, err
		}
		next := make([]individual, 0, opts.Population)
		next = append(next, pop[:opts.Elite]...)
		next = append(next, scored...)
		pop = next
		byFitness()
		if pop[0].fitness > best.fitness {
			best = pop[0]
		}
	}
	r, err := ev.Materialize(best.result.Result, best.result.Strategy, nil)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{Strategy: best.result.Strategy, Result: r}, nil
}
