package search

import (
	"fmt"
	"math/rand"
	"sort"

	"autohet/internal/accel"
)

// GAOptions configures Genetic.
type GAOptions struct {
	Generations  int
	Population   int
	Elite        int     // individuals copied unchanged each generation
	MutationRate float64 // per-gene mutation probability
	Seed         int64
}

// DefaultGAOptions gives a budget comparable to 300 RL rounds
// (15 generations × 20 individuals).
func DefaultGAOptions() GAOptions {
	return GAOptions{Generations: 15, Population: 20, Elite: 2, MutationRate: 0.1, Seed: 1}
}

// Genetic is an evolutionary baseline over the C^N strategy space:
// tournament selection, uniform crossover, per-gene mutation, elitism. The
// initial population mixes the homogeneous strategies with random ones, so
// like the other searchers it can only improve on the best homogeneous
// accelerator.
func Genetic(env *Env, opts GAOptions) (Evaluation, error) {
	switch {
	case opts.Generations <= 0 || opts.Population <= 1:
		return Evaluation{}, fmt.Errorf("search: GA generations=%d population=%d", opts.Generations, opts.Population)
	case opts.Elite < 0 || opts.Elite >= opts.Population:
		return Evaluation{}, fmt.Errorf("search: GA elite %d of %d", opts.Elite, opts.Population)
	case opts.MutationRate < 0 || opts.MutationRate > 1:
		return Evaluation{}, fmt.Errorf("search: GA mutation rate %v", opts.MutationRate)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := env.NumLayers()
	c := len(env.Candidates)

	type individual struct {
		genes   []int
		fitness float64
		result  *Evaluation
	}
	score := func(genes []int) (individual, error) {
		r, err := env.EvalIndices(genes)
		if err != nil {
			return individual{}, err
		}
		st, _ := accel.FromIndices(env.Candidates, genes)
		ev := Evaluation{Strategy: st, Result: r}
		return individual{genes: append([]int(nil), genes...), fitness: r.RUE(), result: &ev}, nil
	}

	pop := make([]individual, 0, opts.Population)
	// Homogeneous seeds first, random fill after.
	for i := 0; i < c && len(pop) < opts.Population; i++ {
		genes := make([]int, n)
		for j := range genes {
			genes[j] = i
		}
		ind, err := score(genes)
		if err != nil {
			return Evaluation{}, err
		}
		pop = append(pop, ind)
	}
	for len(pop) < opts.Population {
		genes := make([]int, n)
		for j := range genes {
			genes[j] = rng.Intn(c)
		}
		ind, err := score(genes)
		if err != nil {
			return Evaluation{}, err
		}
		pop = append(pop, ind)
	}

	byFitness := func() {
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].fitness > pop[j].fitness })
	}
	tournament := func() individual {
		a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
		if a.fitness >= b.fitness {
			return a
		}
		return b
	}

	byFitness()
	best := pop[0]
	genes := make([]int, n)
	for g := 0; g < opts.Generations; g++ {
		next := make([]individual, 0, opts.Population)
		next = append(next, pop[:opts.Elite]...)
		for len(next) < opts.Population {
			p1, p2 := tournament(), tournament()
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					genes[j] = p1.genes[j]
				} else {
					genes[j] = p2.genes[j]
				}
				if rng.Float64() < opts.MutationRate {
					genes[j] = rng.Intn(c)
				}
			}
			ind, err := score(genes)
			if err != nil {
				return Evaluation{}, err
			}
			next = append(next, ind)
		}
		pop = next
		byFitness()
		if pop[0].fitness > best.fitness {
			best = pop[0]
		}
	}
	return *best.result, nil
}
