package search

import (
	"testing"

	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/xbar"
)

func TestPruneSearchImprovesRUEWithinBudget(t *testing.T) {
	cfg := hw.DefaultConfig()
	m := dnn.AlexNet()
	cands := xbar.DefaultCandidates()[:3]
	opts := DefaultPruneOptions()
	opts.Rounds = 80
	res, err := PruneSearch(cfg, m, cands, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.KeptWeights < opts.MinKeptWeights {
		t.Fatalf("kept weights %v below floor %v", res.KeptWeights, opts.MinKeptWeights)
	}
	// Dense best-homogeneous reference.
	env := testEnv(t, m, cands, true)
	ref := bestHomoRUE(t, env)
	if res.Result.RUE() < ref {
		t.Fatalf("prune search %v below dense best homogeneous %v", res.Result.RUE(), ref)
	}
	// Final layer stays dense.
	if res.Keep[len(res.Keep)-1] != 1 {
		t.Fatalf("logits pruned: %v", res.Keep)
	}
	for i, k := range res.Keep {
		if k != 0.5 && k != 0.75 && k != 1.0 {
			t.Fatalf("layer %d keep %v outside choices", i, k)
		}
	}
}

func TestPruneSearchDeterministic(t *testing.T) {
	cfg := hw.DefaultConfig()
	m := dnn.AlexNet()
	cands := xbar.DefaultCandidates()[:2]
	opts := DefaultPruneOptions()
	opts.Rounds = 40
	a, err := PruneSearch(cfg, m, cands, false, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PruneSearch(cfg, m, cands, false, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.RUE() != b.Result.RUE() || a.KeptWeights != b.KeptWeights {
		t.Fatal("prune search not deterministic per seed")
	}
}

func TestPruneSearchValidation(t *testing.T) {
	cfg := hw.DefaultConfig()
	m := dnn.AlexNet()
	cands := xbar.DefaultCandidates()[:2]
	bad := []PruneOptions{
		{Rounds: 0, T0: 1, Alpha: 0.9, KeepChoices: []float64{1}},
		{Rounds: 10, T0: 0, Alpha: 0.9, KeepChoices: []float64{1}},
		{Rounds: 10, T0: 1, Alpha: 2, KeepChoices: []float64{1}},
		{Rounds: 10, T0: 1, Alpha: 0.9},                              // no choices
		{Rounds: 10, T0: 1, Alpha: 0.9, KeepChoices: []float64{0}},   // invalid ratio
		{Rounds: 10, T0: 1, Alpha: 0.9, KeepChoices: []float64{0.5}}, // missing 1.0
		{Rounds: 10, T0: 1, Alpha: 0.9, KeepChoices: []float64{1}, MinKeptWeights: 2},
	}
	for _, o := range bad {
		if _, err := PruneSearch(cfg, m, cands, false, o); err == nil {
			t.Errorf("options %+v must error", o)
		}
	}
	if _, err := PruneSearch(cfg, m, nil, false, DefaultPruneOptions()); err == nil {
		t.Error("empty candidates must error")
	}
}

func TestPruningShrinksEnergyAndTiles(t *testing.T) {
	// A half-pruned AlexNet on the same strategy must cost less.
	m := dnn.AlexNet()
	keep := make([]float64, m.NumMappable())
	for i := range keep {
		keep[i] = 0.5
	}
	keep[len(keep)-1] = 1
	pruned, err := dnn.PruneChannels(m, keep)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(t, m, xbar.DefaultCandidates()[:1], true)
	prunedEnv := testEnv(t, pruned, xbar.DefaultCandidates()[:1], true)
	dense, err := env.EvalIndices([]int{0, 0, 0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	slim, err := prunedEnv.EvalIndices([]int{0, 0, 0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if slim.EnergyNJ >= dense.EnergyNJ {
		t.Fatalf("pruning did not cut energy: %v vs %v", slim.EnergyNJ, dense.EnergyNJ)
	}
	if slim.OccupiedTiles > dense.OccupiedTiles {
		t.Fatalf("pruning grew tiles: %d vs %d", slim.OccupiedTiles, dense.OccupiedTiles)
	}
}
