package search

import (
	"fmt"
	"math"
	"math/rand"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// Structured-pruning co-search (AUTO-PRUNE-style, the paper's reference
// [27], by the same research group): jointly choose each layer's crossbar
// shape and output-channel keep ratio. Pruning shrinks crossbar grids — and
// thus energy and tiles — so RUE rewards it; a retained-weight floor stands
// in for the accuracy constraint a trained model would provide (DESIGN.md
// substitutions).

// PruneOptions configures PruneSearch.
type PruneOptions struct {
	Rounds int
	Seed   int64
	T0     float64
	Alpha  float64
	// KeepChoices are the allowed per-layer keep ratios (each in (0,1]).
	KeepChoices []float64
	// MinKeptWeights is the feasibility floor on the fraction of original
	// weights retained.
	MinKeptWeights float64
}

// DefaultPruneOptions allows 50/75/100% channel retention with at least
// 70% of the original weights kept overall.
func DefaultPruneOptions() PruneOptions {
	return PruneOptions{Rounds: 300, Seed: 1, T0: 0.3, Alpha: 0.99,
		KeepChoices: []float64{0.5, 0.75, 1.0}, MinKeptWeights: 0.7}
}

// PruneResult is the outcome of a pruning co-search.
type PruneResult struct {
	Keep     []float64
	Strategy accel.Strategy
	Result   *sim.Result
	// KeptWeights is the fraction of original weights retained.
	KeptWeights float64
}

// PruneSearch anneals over the joint shape × keep-ratio space for a
// chain-structured model. Each evaluation derives the pruned architecture
// (dnn.PruneChannels), maps it under the candidate strategy, and simulates.
func PruneSearch(cfg hw.Config, m *dnn.Model, candidates []xbar.Shape, shared bool, opts PruneOptions) (*PruneResult, error) {
	switch {
	case opts.Rounds <= 0:
		return nil, fmt.Errorf("search: prune rounds %d", opts.Rounds)
	case opts.T0 <= 0 || opts.Alpha <= 0 || opts.Alpha > 1:
		return nil, fmt.Errorf("search: prune schedule T0=%v alpha=%v", opts.T0, opts.Alpha)
	case len(opts.KeepChoices) == 0:
		return nil, fmt.Errorf("search: prune needs keep choices")
	case len(candidates) == 0:
		return nil, fmt.Errorf("search: prune needs candidates")
	case opts.MinKeptWeights < 0 || opts.MinKeptWeights > 1:
		return nil, fmt.Errorf("search: MinKeptWeights %v outside [0,1]", opts.MinKeptWeights)
	}
	hasFull := false
	for _, k := range opts.KeepChoices {
		if k <= 0 || k > 1 {
			return nil, fmt.Errorf("search: keep choice %v outside (0,1]", k)
		}
		if k == 1 {
			hasFull = true
		}
	}
	if !hasFull {
		// The final layer must stay unpruned, so 1.0 must be available.
		return nil, fmt.Errorf("search: keep choices must include 1.0")
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	n := m.NumMappable()
	c := len(candidates)

	evaluate := func(indices []int, keep []float64) (*sim.Result, float64, error) {
		pruned, err := dnn.PruneChannels(m, keep)
		if err != nil {
			return nil, 0, err
		}
		st, err := accel.FromIndices(candidates, indices)
		if err != nil {
			return nil, 0, err
		}
		p, err := accel.BuildPlan(cfg, pruned, st, shared)
		if err != nil {
			return nil, 0, err
		}
		r, err := sim.Simulate(p)
		if err != nil {
			return nil, 0, err
		}
		kept := float64(pruned.TotalWeights()) / float64(m.TotalWeights())
		return r, kept, nil
	}

	// Start: best homogeneous shape, fully dense. Pruning evaluations build
	// per-variant models, so they bypass the env-level evaluation cache —
	// but the homogeneous sweep's points are independent and run in
	// parallel (selection stays in candidate order).
	indices := make([]int, n)
	keep := make([]float64, n)
	for i := range keep {
		keep[i] = 1
	}
	homos := make([]*sim.Result, c)
	if err := ParallelFor(c, func(i int) error {
		homoIdx := make([]int, n)
		for j := range homoIdx {
			homoIdx[j] = i
		}
		r, _, err := evaluate(homoIdx, keep)
		homos[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	refRUE := 0.0
	bestIdx := 0
	var cur *sim.Result
	for i, r := range homos {
		if r.RUE() > refRUE {
			refRUE, cur, bestIdx = r.RUE(), r, i
		}
	}
	if cur == nil || refRUE == 0 {
		return nil, fmt.Errorf("search: prune reference RUE is zero")
	}
	for j := range indices {
		indices[j] = bestIdx
	}

	best := &PruneResult{
		Keep:        append([]float64(nil), keep...),
		Strategy:    mustStrategy(&Env{Candidates: candidates}, indices),
		Result:      cur,
		KeptWeights: 1,
	}

	temp := opts.T0
	candIdx := make([]int, n)
	candKeep := make([]float64, n)
	for round := 0; round < opts.Rounds; round++ {
		copy(candIdx, indices)
		copy(candKeep, keep)
		k := rng.Intn(n)
		if c > 1 && rng.Intn(2) == 0 {
			candIdx[k] = (candIdx[k] + 1 + rng.Intn(c-1)) % c
		} else if k < n-1 { // the final layer's logits stay dense
			candKeep[k] = opts.KeepChoices[rng.Intn(len(opts.KeepChoices))]
		}
		r, kept, err := evaluate(candIdx, candKeep)
		if err != nil {
			return nil, err
		}
		if kept < opts.MinKeptWeights {
			temp *= opts.Alpha
			continue // infeasible
		}
		delta := (r.RUE() - cur.RUE()) / refRUE
		if delta >= 0 || rng.Float64() < math.Exp(delta/temp) {
			copy(indices, candIdx)
			copy(keep, candKeep)
			cur = r
			if r.RUE() > best.Result.RUE() {
				best = &PruneResult{
					Keep:        append([]float64(nil), keep...),
					Strategy:    mustStrategy(&Env{Candidates: candidates}, indices),
					Result:      r,
					KeptWeights: kept,
				}
			}
		}
		temp *= opts.Alpha
	}
	return best, nil
}
