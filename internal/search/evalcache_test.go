package search

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// requireIdentical asserts two results carry bit-identical metrics, layer
// by layer and in aggregate (exact float equality — the evaluation engine's
// contract, not an approximation).
func requireIdentical(t *testing.T, tag string, got, want *sim.Result) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil result (got %v, want %v)", tag, got, want)
	}
	checks := []struct {
		name       string
		got, wantV float64
	}{
		{"RUE", got.RUE(), want.RUE()},
		{"Utilization", got.Utilization, want.Utilization},
		{"EnergyNJ", got.EnergyNJ, want.EnergyNJ},
		{"LatencyNS", got.LatencyNS, want.LatencyNS},
		{"AreaUM2", got.AreaUM2, want.AreaUM2},
		{"Energy.ADC", got.Energy.ADC, want.Energy.ADC},
		{"Energy.DAC", got.Energy.DAC, want.Energy.DAC},
		{"Energy.Cell", got.Energy.Cell, want.Energy.Cell},
		{"Energy.ShiftAdd", got.Energy.ShiftAdd, want.Energy.ShiftAdd},
		{"Energy.Buffer", got.Energy.Buffer, want.Energy.Buffer},
		{"Energy.Bus", got.Energy.Bus, want.Energy.Bus},
		{"Energy.Pool", got.Energy.Pool, want.Energy.Pool},
	}
	for _, c := range checks {
		if c.got != c.wantV {
			t.Errorf("%s: %s cached %v != uncached %v", tag, c.name, c.got, c.wantV)
		}
	}
	if got.OccupiedTiles != want.OccupiedTiles {
		t.Errorf("%s: OccupiedTiles %d != %d", tag, got.OccupiedTiles, want.OccupiedTiles)
	}
	if got.ADCConversions != want.ADCConversions {
		t.Errorf("%s: ADCConversions %d != %d", tag, got.ADCConversions, want.ADCConversions)
	}
	if len(got.Layers) != len(want.Layers) {
		t.Fatalf("%s: %d layers != %d", tag, len(got.Layers), len(want.Layers))
	}
	for i := range got.Layers {
		g, w := got.Layers[i], want.Layers[i]
		switch {
		case g.MVMs != w.MVMs, g.ADCConversions != w.ADCConversions,
			g.DACConversions != w.DACConversions, g.CellReads != w.CellReads,
			g.Tiles != w.Tiles, g.GridRows != w.GridRows,
			g.EnergyPJ != w.EnergyPJ, g.LatencyNS != w.LatencyNS,
			g.Energy != w.Energy, g.Shape != w.Shape:
			t.Errorf("%s: layer %d diverges: cached %+v, uncached %+v", tag, i, g, w)
		}
	}
}

// TestEvaluatorBitIdentical sweeps SXB-only, RXB-heavy, and random mixed
// strategies on VGG16 under both allocation schemes and asserts the cached
// engine reproduces Env.EvalIndices bit-identically.
func TestEvaluatorBitIdentical(t *testing.T) {
	m := dnn.VGG16()
	cands := xbar.DefaultCandidates() // SXBs + RXBs
	n := m.NumMappable()
	rng := rand.New(rand.NewSource(7))
	var cases [][]int
	for i := range cands {
		homo := make([]int, n)
		for j := range homo {
			homo[j] = i
		}
		cases = append(cases, homo)
	}
	for i := 0; i < 8; i++ {
		mixed := make([]int, n)
		for j := range mixed {
			mixed[j] = rng.Intn(len(cands))
		}
		cases = append(cases, mixed)
	}
	for _, shared := range []bool{false, true} {
		env := testEnv(t, m, cands, shared)
		ev := env.Evaluator()
		for ci, indices := range cases {
			tag := fmt.Sprintf("shared=%t case=%d", shared, ci)
			want, err := env.EvalIndices(indices)
			if err != nil {
				t.Fatalf("%s: uncached: %v", tag, err)
			}
			got, err := ev.EvalIndices(indices)
			if err != nil {
				t.Fatalf("%s: cached: %v", tag, err)
			}
			if got.Plan != nil {
				t.Errorf("%s: fast-path result unexpectedly carries a plan", tag)
			}
			requireIdentical(t, tag, got, want)
		}
	}
}

// TestEvaluatorMixedPrecisionBitIdentical covers the EvalSpec path: random
// shape choices combined with random per-layer bit-widths.
func TestEvaluatorMixedPrecisionBitIdentical(t *testing.T) {
	m := dnn.VGG16()
	cands := xbar.DefaultCandidates()
	env := testEnv(t, m, cands, true)
	ev := env.Evaluator()
	n := m.NumMappable()
	rng := rand.New(rand.NewSource(11))
	choices := []int{4, 6, 8}
	for ci := 0; ci < 6; ci++ {
		indices := make([]int, n)
		bits := make(accel.Precision, n)
		for j := range indices {
			indices[j] = rng.Intn(len(cands))
			bits[j] = choices[rng.Intn(len(choices))]
		}
		tag := fmt.Sprintf("mp case=%d", ci)
		want, err := env.EvalSpec(indices, bits)
		if err != nil {
			t.Fatalf("%s: uncached: %v", tag, err)
		}
		got, err := ev.EvalSpec(indices, bits)
		if err != nil {
			t.Fatalf("%s: cached: %v", tag, err)
		}
		requireIdentical(t, tag, got, want)
	}
}

// TestEvaluatorCacheHits asserts repeats are served from the strategy cache
// (same pointer, no extra simulator time) and stats add up.
func TestEvaluatorCacheHits(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	ev := env.Evaluator()
	indices := []int{0, 1, 2, 1}
	first, err := ev.EvalIndices(indices)
	if err != nil {
		t.Fatal(err)
	}
	afterMiss := ev.Stats()
	if afterMiss.Evals != 1 || afterMiss.CacheHits != 0 {
		t.Fatalf("after miss: %+v", afterMiss)
	}
	if afterMiss.SimTime <= 0 {
		t.Fatalf("miss did not accumulate simulator time: %+v", afterMiss)
	}
	second, err := ev.EvalIndices(indices)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("cache hit returned a different result pointer")
	}
	afterHit := ev.Stats()
	if afterHit.Evals != 2 || afterHit.CacheHits != 1 {
		t.Fatalf("after hit: %+v", afterHit)
	}
	if afterHit.SimTime != afterMiss.SimTime {
		t.Fatalf("cache hit billed simulator time: %v -> %v", afterMiss.SimTime, afterHit.SimTime)
	}
	if got := afterHit.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", got)
	}
}

// TestEvaluatorOutOfRange asserts index validation matches the uncached path.
func TestEvaluatorOutOfRange(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	ev := env.Evaluator()
	for _, indices := range [][]int{{0, 1, 99, 0}, {-1, 0, 0, 0}} {
		_, wantErr := env.EvalIndices(indices)
		_, gotErr := ev.EvalIndices(indices)
		if wantErr == nil || gotErr == nil {
			t.Fatalf("indices %v: want errors, got %v / %v", indices, wantErr, gotErr)
		}
		if wantErr.Error() != gotErr.Error() {
			t.Errorf("indices %v: error mismatch: cached %q, uncached %q", indices, gotErr, wantErr)
		}
	}
	// Short strategies are rejected too.
	if _, err := ev.EvalIndices([]int{0}); err == nil {
		t.Fatal("short index vector must error")
	}
}

// TestEvaluatorNoCache asserts the NoCache escape hatch bypasses both cache
// levels and still returns correct (plan-carrying) results.
func TestEvaluatorNoCache(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	env.NoCache = true
	ev := env.Evaluator()
	indices := []int{0, 1, 2, 1}
	a, err := ev.EvalIndices(indices)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.EvalIndices(indices)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("NoCache returned a cached pointer")
	}
	if a.Plan == nil || b.Plan == nil {
		t.Fatal("NoCache results must carry plans")
	}
	st := ev.Stats()
	if st.Evals != 2 || st.CacheHits != 0 {
		t.Fatalf("NoCache stats: %+v", st)
	}
	requireIdentical(t, "nocache", a, b)
}

// TestEvaluatorMaterialize asserts Materialize upgrades a fast-path result
// to a plan-carrying one with identical metrics and updates the cache.
func TestEvaluatorMaterialize(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	ev := env.Evaluator()
	indices := []int{2, 0, 1, 0}
	fast, err := ev.EvalIndices(indices)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := accel.FromIndices(env.Candidates, indices)
	full, err := ev.Materialize(fast, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Plan == nil {
		t.Fatal("materialized result has no plan")
	}
	requireIdentical(t, "materialize", fast, full)
	// The cache now serves the plan-carrying result.
	again, err := ev.EvalIndices(indices)
	if err != nil {
		t.Fatal(err)
	}
	if again != full {
		t.Fatal("cache was not upgraded to the materialized result")
	}
}

// TestEvaluatorConcurrent hammers one evaluator from the worker pool with
// overlapping strategies and checks every result against the uncached path.
// Run under -race this is the engine's thread-safety proof.
func TestEvaluatorConcurrent(t *testing.T) {
	m := tinyModel(t)
	cands := xbar.DefaultCandidates()[:4]
	env := testEnv(t, m, cands, true)
	ev := env.Evaluator()
	n := m.NumMappable()
	const tasks = 64
	genomes := make([][]int, tasks)
	rng := rand.New(rand.NewSource(3))
	for i := range genomes {
		genes := make([]int, n)
		for j := range genes {
			genes[j] = rng.Intn(len(cands))
		}
		genomes[i] = genes
	}
	results := make([]*sim.Result, tasks)
	if err := ParallelFor(tasks, func(i int) error {
		r, err := ev.EvalIndices(genomes[i])
		results[i] = r
		return err
	}); err != nil {
		t.Fatal(err)
	}
	refEnv := testEnv(t, m, cands, true)
	for i, genes := range genomes {
		want, err := refEnv.EvalIndices(genes)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("task %d", i), results[i], want)
	}
	st := ev.Stats()
	if st.Evals != tasks {
		t.Fatalf("evals %d, want %d", st.Evals, tasks)
	}
}

// TestParallelFor covers the pool's contract: full coverage, deterministic
// lowest-index error, and the degenerate sizes.
func TestParallelFor(t *testing.T) {
	if err := ParallelFor(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	var sum atomic.Int64
	if err := ParallelFor(100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum %d, want 4950", sum.Load())
	}
	err3 := errors.New("err3")
	err7 := errors.New("err7")
	got := ParallelFor(16, func(i int) error {
		switch i {
		case 3:
			return err3
		case 7:
			return err7
		}
		return nil
	})
	if !errors.Is(got, err3) {
		t.Fatalf("got %v, want lowest-index error %v", got, err3)
	}
}

// TestAutoHetStatsAndPlan asserts the search result accounts its
// evaluations, does not bill cache hits as simulator time, and materializes
// the winning strategy's plan.
func TestAutoHetStatsAndPlan(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	opts := DefaultOptions()
	opts.Rounds = 30
	res, err := AutoHet(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestResult.Plan == nil {
		t.Fatal("best result has no plan")
	}
	wantEvals := int64(opts.Rounds + len(env.Candidates))
	if res.Stats.Evals != wantEvals {
		t.Fatalf("evals %d, want %d", res.Stats.Evals, wantEvals)
	}
	if res.Stats.CacheHits == 0 {
		t.Fatal("a 30-round search on a 3^4 space must revisit strategies")
	}
	if res.SimTime != res.Stats.SimTime {
		t.Fatalf("SimTime %v != Stats.SimTime %v", res.SimTime, res.Stats.SimTime)
	}
	if res.Stats.SimTime <= 0 {
		t.Fatal("no simulator time accumulated")
	}
	// A second search over the same env shares the evaluator; its stats
	// must be deltas, not cumulative counters.
	res2, err := AutoHet(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Evals != wantEvals {
		t.Fatalf("second search evals %d, want %d", res2.Stats.Evals, wantEvals)
	}
	if res2.Stats.CacheHits < int64(len(env.Candidates)) {
		t.Fatalf("second search should hit the warm cache, stats %+v", res2.Stats)
	}
}

// TestSearchersReturnPlans asserts every searcher's winner carries a
// concrete plan (downstream consumers dereference it).
func TestSearchersReturnPlans(t *testing.T) {
	env := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	ga, err := Genetic(env, GAOptions{Generations: 3, Population: 6, Elite: 1, MutationRate: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := SimulatedAnnealing(env, SAOptions{Rounds: 20, Seed: 1, T0: 0.3, Alpha: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RandomSearch(env, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Greedy(env)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Exhaustive(env)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*sim.Result{
		"genetic": ga.Result, "anneal": sa.Result, "random": rs.Result,
		"greedy": gr.Result, "exhaustive": ex.Result,
	} {
		if r == nil || r.Plan == nil {
			t.Errorf("%s: winner carries no plan", name)
		}
	}
}

// TestGeneticDeterministicWithParallelEval pins the GA's per-seed
// determinism: batch-parallel evaluation must not perturb the RNG stream.
func TestGeneticDeterministicWithParallelEval(t *testing.T) {
	opts := GAOptions{Generations: 4, Population: 8, Elite: 2, MutationRate: 0.15, Seed: 42}
	envA := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	a, err := Genetic(envA, opts)
	if err != nil {
		t.Fatal(err)
	}
	envB := testEnv(t, tinyModel(t), xbar.DefaultCandidates()[:3], true)
	b, err := Genetic(envB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.RUE() != b.Result.RUE() || a.Strategy.String() != b.Strategy.String() {
		t.Fatalf("GA not deterministic: %v %v vs %v %v",
			a.Strategy, a.Result.RUE(), b.Strategy, b.Result.RUE())
	}
}
