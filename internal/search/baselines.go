package search

import (
	"fmt"
	"math/rand"

	"autohet/internal/accel"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// Baseline searchers the evaluation compares AutoHet against.

// Evaluation pairs a strategy with its simulated result.
type Evaluation struct {
	Strategy accel.Strategy
	Result   *sim.Result
}

// BestHomogeneous evaluates one homogeneous accelerator per shape (in
// parallel — the shapes are independent) and returns them all plus the index
// of the RUE-best (the paper's Best-Homo). The results carry concrete plans,
// as callers inspect them (Pareto fronts, per-layer tables).
func BestHomogeneous(env *Env, shapes []xbar.Shape) ([]Evaluation, int, error) {
	if len(shapes) == 0 {
		return nil, -1, fmt.Errorf("search: no shapes")
	}
	n := env.NumLayers()
	engine := env.Evaluator()
	evals := make([]Evaluation, len(shapes))
	if err := ParallelFor(len(shapes), func(i int) error {
		st := accel.Homogeneous(n, shapes[i])
		r, err := engine.EvalStrategy(st)
		if err == nil {
			r, err = engine.Materialize(r, st, nil)
		}
		if err != nil {
			return fmt.Errorf("search: homogeneous %v: %w", shapes[i], err)
		}
		evals[i] = Evaluation{Strategy: st, Result: r}
		return nil
	}); err != nil {
		return nil, -1, err
	}
	best := -1
	for i := range evals {
		if best == -1 || evals[i].Result.RUE() > evals[best].Result.RUE() {
			best = i
		}
	}
	return evals, best, nil
}

// Greedy implements the utilization-first mixed-size baseline in the spirit
// of Zhu et al. (ICCAD'18, paper §5): each layer independently takes the
// candidate maximizing its Eq.-4 crossbar utilization, ignoring energy.
// Ties go to the smaller crossbar (fewer wasted cells).
func Greedy(env *Env) (Evaluation, error) {
	n := env.NumLayers()
	indices := make([]int, n)
	for k := 0; k < n; k++ {
		bestIdx, bestU := 0, -1.0
		for i := range env.Candidates {
			u := env.LayerUtilization(k, i)
			cells := env.Candidates[i].Cells()
			better := u > bestU+1e-12 ||
				(u > bestU-1e-12 && cells < env.Candidates[bestIdx].Cells())
			if better {
				bestIdx, bestU = i, u
			}
		}
		indices[k] = bestIdx
	}
	engine := env.Evaluator()
	defer trackSearch("greedy", engine)()
	r, err := engine.EvalIndices(indices)
	if err != nil {
		return Evaluation{}, err
	}
	st, _ := accel.FromIndices(env.Candidates, indices)
	r, err = engine.Materialize(r, st, nil)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{Strategy: st, Result: r}, nil
}

// RandomSearch samples uniform strategies and keeps the RUE-best. It is the
// sample-efficiency control for the RL agent.
func RandomSearch(env *Env, rounds int, seed int64) (Evaluation, error) {
	if rounds <= 0 {
		return Evaluation{}, fmt.Errorf("search: rounds %d", rounds)
	}
	rng := rand.New(rand.NewSource(seed))
	n := env.NumLayers()
	engine := env.Evaluator()
	defer trackSearch("random", engine)()
	var best Evaluation
	indices := make([]int, n)
	for round := 0; round < rounds; round++ {
		for k := range indices {
			indices[k] = rng.Intn(len(env.Candidates))
		}
		r, err := engine.EvalIndices(indices)
		if err != nil {
			return Evaluation{}, err
		}
		if best.Result == nil || r.RUE() > best.Result.RUE() {
			st, _ := accel.FromIndices(env.Candidates, indices)
			best = Evaluation{Strategy: st, Result: r}
		}
	}
	r, err := engine.Materialize(best.Result, best.Strategy, nil)
	if err != nil {
		return Evaluation{}, err
	}
	best.Result = r
	return best, nil
}

// maxExhaustive bounds C^N enumeration to keep Exhaustive usable only for
// the small verification models it exists for.
const maxExhaustive = 1 << 20

// Exhaustive enumerates every strategy in the C^N space and returns the
// RUE-optimal one. It errors when the space exceeds maxExhaustive — the
// paper's point is precisely that this is infeasible for real models.
func Exhaustive(env *Env) (Evaluation, error) {
	n := env.NumLayers()
	c := len(env.Candidates)
	space := 1
	for i := 0; i < n; i++ {
		space *= c
		if space > maxExhaustive {
			return Evaluation{}, fmt.Errorf("search: exhaustive space %d^%d exceeds %d", c, n, maxExhaustive)
		}
	}
	indices := make([]int, n)
	engine := env.Evaluator()
	var best Evaluation
	for {
		r, err := engine.EvalIndices(indices)
		if err != nil {
			return Evaluation{}, err
		}
		if best.Result == nil || r.RUE() > best.Result.RUE() {
			st, _ := accel.FromIndices(env.Candidates, indices)
			best = Evaluation{Strategy: st, Result: r}
		}
		// Odometer increment.
		k := 0
		for ; k < n; k++ {
			indices[k]++
			if indices[k] < c {
				break
			}
			indices[k] = 0
		}
		if k == n {
			r, err := engine.Materialize(best.Result, best.Strategy, nil)
			if err != nil {
				return Evaluation{}, err
			}
			best.Result = r
			return best, nil
		}
	}
}
