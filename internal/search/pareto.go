package search

import (
	"sort"

	"autohet/internal/sim"
)

// Pareto-front extraction over candidate accelerator designs. RUE collapses
// utilization and energy into one scalar; deployments that also care about
// latency or area want the non-dominated set instead. A design dominates
// another when it is no worse on every objective and strictly better on at
// least one (all objectives minimized after transformation).

// ParetoObjective extracts one minimized objective value from a result.
type ParetoObjective func(*sim.Result) float64

// Standard objectives (all minimized).
var (
	ObjEnergy  ParetoObjective = func(r *sim.Result) float64 { return r.EnergyNJ }
	ObjLatency ParetoObjective = func(r *sim.Result) float64 { return r.LatencyNS }
	ObjArea    ParetoObjective = func(r *sim.Result) float64 { return r.AreaUM2 }
	ObjNegUtil ParetoObjective = func(r *sim.Result) float64 { return -r.Utilization }
	ObjNegRUE  ParetoObjective = func(r *sim.Result) float64 { return -r.RUE() }
	ObjTiles   ParetoObjective = func(r *sim.Result) float64 { return float64(r.OccupiedTiles) }
)

// ParetoFront returns the indices of the non-dominated evaluations under
// the given objectives, sorted by the first objective ascending. Duplicate
// points (equal on all objectives) keep only the first occurrence.
func ParetoFront(evals []Evaluation, objectives ...ParetoObjective) []int {
	if len(objectives) == 0 || len(evals) == 0 {
		return nil
	}
	vals := make([][]float64, len(evals))
	for i, e := range evals {
		v := make([]float64, len(objectives))
		for j, obj := range objectives {
			v[j] = obj(e.Result)
		}
		vals[i] = v
	}
	dominates := func(a, b []float64) bool {
		better := false
		for j := range a {
			if a[j] > b[j] {
				return false
			}
			if a[j] < b[j] {
				better = true
			}
		}
		return better
	}
	equal := func(a, b []float64) bool {
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
		return true
	}
	var front []int
	for i := range evals {
		dominated := false
		for j := range evals {
			if i == j {
				continue
			}
			if dominates(vals[j], vals[i]) {
				dominated = true
				break
			}
			if j < i && equal(vals[j], vals[i]) {
				dominated = true // deduplicate, keep first
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	sort.Slice(front, func(a, b int) bool { return vals[front[a]][0] < vals[front[b]][0] })
	return front
}
