package search

import (
	"fmt"
	"time"

	"autohet/internal/accel"
	"autohet/internal/obs"
	"autohet/internal/rl"
	"autohet/internal/sim"
)

// Options configures the AutoHet RL search.
type Options struct {
	Rounds int // search episodes (the paper runs 300)
	Agent  rl.AgentConfig
	// UpdateStride runs one minibatch update every UpdateStride layer
	// decisions (1 = every decision). Deep models (ResNet152's 156 layers)
	// use a larger stride to bound per-round cost.
	UpdateStride int
	// Progress, when non-nil, receives each round's stats as it finishes.
	Progress func(RoundStats)
	// Objective scores a simulated accelerator; the search maximizes it.
	// Nil means the paper's Eq. 2, R = u/e (RUE). Alternatives let the
	// reward-shaping ablation (DESIGN.md §5) and custom deployments (e.g.
	// latency- or area-aware objectives) reuse the same search.
	Objective func(*sim.Result) float64
	// WarmStart, when non-nil, continues from a previously trained agent
	// (e.g. loaded with rl.LoadAgent) instead of a fresh one — useful for
	// transferring a policy to a related model or resuming a search. The
	// Agent config field is ignored in that case.
	WarmStart *rl.Agent
}

// DefaultOptions returns the paper's search configuration (300 rounds) with
// agent defaults.
func DefaultOptions() Options {
	return Options{
		Rounds:       300,
		Agent:        rl.DefaultAgentConfig(StateDim),
		UpdateStride: 1,
	}
}

// RoundStats records one search episode.
type RoundStats struct {
	Round    int
	RUE      float64
	Reward   float64 // normalized reward fed to the agent
	Strategy accel.Strategy
	Best     bool // whether this round improved on all previous
}

// Result is the outcome of an AutoHet search.
type Result struct {
	Best       accel.Strategy
	BestResult *sim.Result
	History    []RoundStats
	// RefRUE is the best homogeneous-candidate RUE used to normalize
	// rewards (reward = RUE/RefRUE, keeping the learning signal O(1)
	// while Eq. 2's R = u/e stays the reported metric).
	RefRUE float64
	// TotalTime is the wall-clock search time; SimTime is the portion
	// spent waiting for accelerator feedback (the paper reports 97% of
	// its 49.2-minute search inside the simulator, §4.5). SimTime counts
	// only actual simulation — evaluation-cache hits cost nothing and are
	// not billed (parallel phases sum worker time, so SimTime can exceed
	// TotalTime on multicore runs).
	TotalTime time.Duration
	SimTime   time.Duration
	// Stats are this search's evaluation-engine counters (deltas when the
	// env's evaluator is shared across searches).
	Stats EvalStats
	// Agent is the trained DDPG agent, exposed so callers can persist it
	// (rl.Agent.Save) or warm-start related searches.
	Agent *rl.Agent
}

// AutoHet runs the paper's RL search (§3.2): each round the agent assigns a
// crossbar type to every layer in order, the accelerator is simulated, and
// the resulting R = u/e becomes the shared reward of every transition in
// the episode (Eq. 3). Rounds alternate decision and learning stages; the
// best strategy ever simulated is returned.
func AutoHet(env *Env, opts Options) (*Result, error) {
	if opts.Rounds <= 0 {
		return nil, fmt.Errorf("search: rounds %d", opts.Rounds)
	}
	if opts.UpdateStride <= 0 {
		opts.UpdateStride = 1
	}
	score := opts.Objective
	if score == nil {
		score = func(r *sim.Result) float64 { return r.RUE() }
	}
	var agent *rl.Agent
	if opts.WarmStart != nil {
		if got := opts.WarmStart.Actor.InputSize(); got != StateDim {
			return nil, fmt.Errorf("search: warm-start agent state dim %d, want %d", got, StateDim)
		}
		agent = opts.WarmStart
	} else {
		if opts.Agent.StateDim != StateDim {
			return nil, fmt.Errorf("search: agent state dim %d, want %d", opts.Agent.StateDim, StateDim)
		}
		agent = rl.NewAgent(opts.Agent)
	}
	n := env.NumLayers()
	ev := env.Evaluator()
	startStats := ev.Stats()
	start := time.Now()

	// Reward normalization reference: the best homogeneous build over the
	// env's own candidates. Homogeneous strategies are points of the C^N
	// search space, so the best of them also seeds the best-so-far — the
	// search can then only improve on it. The candidates are independent,
	// so they evaluate in parallel; the selection scan below stays in
	// candidate order, keeping the result deterministic.
	res := &Result{}
	states := make([][]float64, n+1)
	actions := make([]float64, n)
	indices := make([]int, n)

	type homoEval struct {
		result *sim.Result
		action float64
	}
	homos := make([]homoEval, len(env.Candidates))
	if err := ParallelFor(len(env.Candidates), func(i int) error {
		homoIdx := make([]int, n)
		for j := range homoIdx {
			homoIdx[j] = i
		}
		r, err := ev.EvalIndices(homoIdx)
		if err != nil {
			return fmt.Errorf("search: homogeneous reference %v: %w", env.Candidates[i], err)
		}
		homos[i] = homoEval{result: r, action: (float64(i) + 0.5) / float64(len(env.Candidates))}
		return nil
	}); err != nil {
		return nil, err
	}
	refRUE := 0.0
	for i, h := range homos {
		if score(h.result) > refRUE {
			refRUE = score(h.result)
			res.Best = accel.Homogeneous(n, env.Candidates[i])
			res.BestResult = h.result
		}
	}
	if refRUE == 0 {
		return nil, fmt.Errorf("search: reference RUE is zero")
	}
	res.RefRUE = refRUE

	// Warm-start the experience pool with the homogeneous episodes so the
	// critic sees the reward landscape's anchors before exploration
	// begins. (Homogeneous strategies are points of the C^N space, so the
	// best of them also seeded the best-so-far above.)
	for i, h := range homos {
		prevA, prevU := 0.0, 0.0
		for k := 0; k < n; k++ {
			states[k] = env.State(k, prevA, prevU)
			prevA = h.action
			prevU = env.LayerUtilization(k, i)
		}
		states[n] = states[n-1]
		for k := 0; k < n; k++ {
			agent.Remember(rl.Transition{
				State:     states[k],
				Action:    h.action,
				Reward:    score(h.result) / refRUE,
				NextState: states[k+1],
				Done:      k == n-1,
			})
		}
	}

	span := obs.StartSpan("search")
	for round := 0; round < opts.Rounds; round++ {
		// Decision stage: walk the layers. Episode hygiene: the OU noise
		// must start each episode from its mean — EndEpisode resets it
		// between rounds, but a warm-started agent can arrive carrying
		// residual state from its previous life.
		agent.StartEpisode()
		stage := span.Child("decide")
		prevA, prevU := 0.0, 0.0
		for k := 0; k < n; k++ {
			states[k] = env.State(k, prevA, prevU)
			a := agent.ActNoisy(states[k])
			actions[k] = a
			indices[k] = env.DecodeAction(a)
			prevA = a
			prevU = env.LayerUtilization(k, indices[k])
		}
		// Terminal next-state: reuse the last state (done masks it out).
		states[n] = states[n-1]
		stage.End()

		// Hardware feedback.
		stage = span.Child("simulate")
		evalRes, err := ev.EvalIndices(indices)
		stage.End()
		if err != nil {
			return nil, err
		}
		rue := score(evalRes)
		reward := rue / refRUE

		// Learning stage: pool the episode, then minibatch updates.
		stage = span.Child("learn")
		for k := 0; k < n; k++ {
			agent.Remember(rl.Transition{
				State:     states[k],
				Action:    actions[k],
				Reward:    reward,
				NextState: states[k+1],
				Done:      k == n-1,
			})
			if k%opts.UpdateStride == 0 {
				agent.Update()
			}
		}
		agent.EndEpisode()
		stage.End()

		stats := RoundStats{Round: round, RUE: rue, Reward: reward}
		if res.BestResult == nil || rue > score(res.BestResult) {
			st, _ := accel.FromIndices(env.Candidates, indices)
			res.Best = st
			res.BestResult = evalRes
			stats.Best = true
			stats.Strategy = st
		}
		res.History = append(res.History, stats)
		if opts.Progress != nil {
			opts.Progress(stats)
		}
	}
	// Fast-path results carry no tile plan; give the winner a concrete one
	// (consumers like the programming-cost table need it). Metrics are
	// unchanged — the cached and uncached paths are bit-identical.
	best, err := ev.Materialize(res.BestResult, res.Best, nil)
	if err != nil {
		return nil, err
	}
	res.BestResult = best
	res.TotalTime = time.Since(start)
	res.Stats = ev.Stats().Sub(startStats)
	res.SimTime = res.Stats.SimTime
	res.Agent = agent
	span.End()
	span.Record(obs.Default, "autohet_search_stage_ns_total", stageHelp)
	recordSearch("autohet", res.Stats, res.TotalTime)
	return res, nil
}
