package search

import (
	"fmt"
	"math"
	"math/rand"

	"autohet/internal/accel"
	"autohet/internal/sim"
)

// SAOptions configures SimulatedAnnealing.
type SAOptions struct {
	Rounds int     // evaluation budget
	Seed   int64   // RNG seed
	T0     float64 // initial temperature on the normalized-RUE scale
	Alpha  float64 // geometric cooling factor per round
}

// DefaultSAOptions matches the RL search's 300-evaluation budget.
func DefaultSAOptions() SAOptions {
	return SAOptions{Rounds: 300, Seed: 1, T0: 0.3, Alpha: 0.99}
}

// SimulatedAnnealing is a classical design-space-exploration baseline: it
// starts from the best homogeneous strategy, mutates one layer's crossbar
// type per round, and accepts worse strategies with Metropolis probability
// under a geometrically cooled temperature. Like the RL search, its
// acceptance scale is normalized by the best homogeneous RUE.
func SimulatedAnnealing(env *Env, opts SAOptions) (Evaluation, error) {
	if opts.Rounds <= 0 {
		return Evaluation{}, fmt.Errorf("search: SA rounds %d", opts.Rounds)
	}
	if opts.T0 <= 0 || opts.Alpha <= 0 || opts.Alpha > 1 {
		return Evaluation{}, fmt.Errorf("search: SA schedule T0=%v alpha=%v", opts.T0, opts.Alpha)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := env.NumLayers()
	c := len(env.Candidates)
	engine := env.Evaluator()
	defer trackSearch("sa", engine)()

	// Seed from the best homogeneous strategy (evaluated in parallel,
	// selected in candidate order).
	homos := make([]*sim.Result, c)
	if err := ParallelFor(c, func(i int) error {
		indices := make([]int, n)
		for j := range indices {
			indices[j] = i
		}
		r, err := engine.EvalIndices(indices)
		homos[i] = r
		return err
	}); err != nil {
		return Evaluation{}, err
	}
	cur := make([]int, n)
	var curRes, bestRes *Evaluation
	refRUE := 0.0
	for i, r := range homos {
		if r.RUE() > refRUE {
			refRUE = r.RUE()
			for j := range cur {
				cur[j] = i
			}
			ev := Evaluation{Strategy: accel.Homogeneous(n, env.Candidates[i]), Result: r}
			curRes, bestRes = &ev, &ev
		}
	}
	if refRUE == 0 {
		return Evaluation{}, fmt.Errorf("search: SA reference RUE is zero")
	}
	finish := func(best *Evaluation) (Evaluation, error) {
		r, err := engine.Materialize(best.Result, best.Strategy, nil)
		if err != nil {
			return Evaluation{}, err
		}
		return Evaluation{Strategy: best.Strategy, Result: r}, nil
	}
	if c == 1 {
		// Nothing to mutate: the single homogeneous strategy is the space.
		return finish(bestRes)
	}

	temp := opts.T0
	cand := make([]int, n)
	for round := 0; round < opts.Rounds; round++ {
		copy(cand, cur)
		k := rng.Intn(n)
		// Mutate to a different candidate.
		cand[k] = (cand[k] + 1 + rng.Intn(c-1)) % c
		r, err := engine.EvalIndices(cand)
		if err != nil {
			return Evaluation{}, err
		}
		delta := (r.RUE() - curRes.Result.RUE()) / refRUE
		if delta >= 0 || rng.Float64() < math.Exp(delta/temp) {
			copy(cur, cand)
			st, _ := accel.FromIndices(env.Candidates, cand)
			ev := Evaluation{Strategy: st, Result: r}
			curRes = &ev
			if r.RUE() > bestRes.Result.RUE() {
				bestRes = &ev
			}
		}
		temp *= opts.Alpha
	}
	return finish(bestRes)
}
