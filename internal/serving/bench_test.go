package serving

import (
	"fmt"
	"testing"

	"autohet/internal/sim"
)

// BenchmarkServeOverload exercises the backlog accounting in the regime
// that made the old per-arrival pending-slice rebuild quadratic: a 2×
// overloaded stream whose queue grows in proportion to the request count.
// With the advancing-pointer scan, ns/op must grow linearly in the request
// count (the sort dominates); the O(n²) version grows quadratically.
func BenchmarkServeOverload(b *testing.B) {
	pr := &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}
	for _, n := range []int{5_000, 20_000, 80_000} {
		b.Run(fmt.Sprintf("requests_%d", n), func(b *testing.B) {
			w := Workload{ArrivalRate: 2 * 1e9 / pr.IntervalNS, Requests: n, Seed: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := Serve(pr, w)
				if err != nil {
					b.Fatal(err)
				}
				if st.Stable {
					b.Fatal("overload benchmark must be in the unstable regime")
				}
			}
		})
	}
}

// BenchmarkServeStable covers the light-load path for contrast.
func BenchmarkServeStable(b *testing.B) {
	pr := &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}
	w := Workload{ArrivalRate: 0.5 * 1e9 / pr.IntervalNS, Requests: 20_000, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Serve(pr, w); err != nil {
			b.Fatal(err)
		}
	}
}
