package serving

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"autohet/internal/sim"
)

// Closed-loop workload: a fixed population of clients, each reissuing its
// next request an exponentially distributed think time after the previous
// one completes. Unlike the open Poisson stream, a closed system cannot be
// overloaded — concurrency self-limits — so the interesting outputs are the
// achieved throughput and where latency saturates as clients grow.

// ClosedLoop describes the client population.
type ClosedLoop struct {
	Clients     int
	Requests    int     // total requests across all clients
	ThinkTimeNS float64 // mean think time (exponential); 0 = back-to-back
	// Seed seeds the think-time process; 0 selects DefaultSeed (the same
	// contract as Workload.Seed).
	Seed int64
}

// ClosedStats summarizes a closed-loop run.
type ClosedStats struct {
	Completed           int
	MeanNS              float64
	P50NS, P95NS, P99NS float64
	MakespanNS          float64
	// ThroughputRPS is the achieved completion rate.
	ThroughputRPS float64
	// Utilization is the pipeline's busy fraction.
	Utilization float64
}

// clientHeap orders clients by their next arrival time.
type clientHeap []clientState

type clientState struct {
	next float64
	id   int
}

func (h clientHeap) Len() int            { return len(h) }
func (h clientHeap) Less(i, j int) bool  { return h[i].next < h[j].next }
func (h clientHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *clientHeap) Push(x interface{}) { *h = append(*h, x.(clientState)) }
func (h *clientHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// ServeClosed simulates the closed-loop workload against a pipelined
// accelerator.
func ServeClosed(pr *sim.PipelineResult, w ClosedLoop) (*ClosedStats, error) {
	switch {
	case w.Clients <= 0:
		return nil, fmt.Errorf("serving: clients %d", w.Clients)
	case w.Requests <= 0:
		return nil, fmt.Errorf("serving: requests %d", w.Requests)
	case w.ThinkTimeNS < 0:
		return nil, fmt.Errorf("serving: negative think time %v", w.ThinkTimeNS)
	case pr.IntervalNS <= 0 || pr.FillNS <= 0:
		return nil, fmt.Errorf("serving: degenerate pipeline (interval %v, fill %v)", pr.IntervalNS, pr.FillNS)
	}
	seed := w.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	rng := rand.New(rand.NewSource(seed))
	think := func() float64 {
		if w.ThinkTimeNS == 0 {
			return 0
		}
		return rng.ExpFloat64() * w.ThinkTimeNS
	}

	h := make(clientHeap, w.Clients)
	for i := range h {
		h[i] = clientState{next: think(), id: i}
	}
	heap.Init(&h)

	latencies := make([]float64, 0, w.Requests)
	lastEntry := -pr.IntervalNS
	var makespan float64
	for i := 0; i < w.Requests; i++ {
		c := heap.Pop(&h).(clientState)
		arrival := c.next
		entry := arrival
		if e := lastEntry + pr.IntervalNS; e > entry {
			entry = e
		}
		lastEntry = entry
		completion := entry + pr.FillNS
		latencies = append(latencies, completion-arrival)
		if completion > makespan {
			makespan = completion
		}
		c.next = completion + think()
		heap.Push(&h, c)
	}

	servingRunsClosed.Inc()
	servingRequests.Add(int64(len(latencies)))
	sort.Float64s(latencies)
	st := &ClosedStats{Completed: len(latencies), MakespanNS: makespan}
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	st.MeanNS = sum / float64(len(latencies))
	st.P50NS = percentile(latencies, 0.50)
	st.P95NS = percentile(latencies, 0.95)
	st.P99NS = percentile(latencies, 0.99)
	if makespan > 0 {
		st.ThroughputRPS = float64(len(latencies)) / makespan * 1e9
		busy := float64(len(latencies)) * pr.IntervalNS
		if busy > makespan {
			busy = makespan
		}
		st.Utilization = busy / makespan
	}
	return st, nil
}

// String summarizes the run.
func (s *ClosedStats) String() string {
	return fmt.Sprintf("%d requests: mean %.4g ns, p99 %.4g ns, %.4g req/s, util %.0f%%",
		s.Completed, s.MeanNS, s.P99NS, s.ThroughputRPS, 100*s.Utilization)
}
