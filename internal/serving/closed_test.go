package serving

import (
	"math"
	"testing"

	"autohet/internal/sim"
)

func fixedPipeline() *sim.PipelineResult {
	return &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}
}

func TestServeClosedSingleClientNoThink(t *testing.T) {
	st, err := ServeClosed(fixedPipeline(), ClosedLoop{Clients: 1, Requests: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One client back-to-back: every request enters immediately after the
	// previous completes, so latency is exactly the fill time.
	if math.Abs(st.MeanNS-1000) > 1e-9 || math.Abs(st.P99NS-1000) > 1e-9 {
		t.Fatalf("single-client latency mean %v p99 %v, want 1000", st.MeanNS, st.P99NS)
	}
	// Throughput = 1 / fill.
	want := 1e9 / 1000.0
	if math.Abs(st.ThroughputRPS-want) > 0.05*want {
		t.Fatalf("throughput %v, want ≈%v", st.ThroughputRPS, want)
	}
}

func TestServeClosedSaturation(t *testing.T) {
	pr := fixedPipeline()
	// With far more clients than pipeline depth (fill/interval = 10), the
	// pipeline saturates: throughput → 1/interval, utilization → 1.
	st, err := ServeClosed(pr, ClosedLoop{Clients: 100, Requests: 5000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	capacity := 1e9 / pr.IntervalNS
	if st.ThroughputRPS < 0.95*capacity {
		t.Fatalf("saturated throughput %v below capacity %v", st.ThroughputRPS, capacity)
	}
	if st.Utilization < 0.95 {
		t.Fatalf("saturated utilization %v", st.Utilization)
	}
	// Latency stretches: ~clients × interval queueing.
	if st.MeanNS < 5*pr.FillNS {
		t.Fatalf("saturated latency %v suspiciously low", st.MeanNS)
	}
}

func TestServeClosedThroughputGrowsWithClientsThenSaturates(t *testing.T) {
	pr := fixedPipeline()
	var prev float64
	for _, clients := range []int{1, 2, 5, 10, 50} {
		st, err := ServeClosed(pr, ClosedLoop{Clients: clients, Requests: 3000, ThinkTimeNS: 500, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if st.ThroughputRPS+1 < prev {
			t.Fatalf("throughput regressed at %d clients: %v after %v", clients, st.ThroughputRPS, prev)
		}
		prev = st.ThroughputRPS
	}
	if capacity := 1e9 / pr.IntervalNS; prev > capacity*1.01 {
		t.Fatalf("throughput %v exceeds capacity %v", prev, capacity)
	}
}

func TestServeClosedDeterministicAndOrdered(t *testing.T) {
	pr := fixedPipeline()
	w := ClosedLoop{Clients: 8, Requests: 1000, ThinkTimeNS: 200, Seed: 4}
	a, err := ServeClosed(pr, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServeClosed(pr, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanNS != b.MeanNS || a.P99NS != b.P99NS {
		t.Fatal("closed-loop serving not deterministic")
	}
	if !(a.P50NS <= a.P95NS && a.P95NS <= a.P99NS) {
		t.Fatal("percentiles out of order")
	}
	if a.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestServeClosedValidation(t *testing.T) {
	pr := fixedPipeline()
	bad := []ClosedLoop{
		{Clients: 0, Requests: 10},
		{Clients: 1, Requests: 0},
		{Clients: 1, Requests: 10, ThinkTimeNS: -1},
	}
	for _, w := range bad {
		if _, err := ServeClosed(pr, w); err == nil {
			t.Errorf("workload %+v must error", w)
		}
	}
	if _, err := ServeClosed(&sim.PipelineResult{}, ClosedLoop{Clients: 1, Requests: 1}); err == nil {
		t.Error("degenerate pipeline must error")
	}
}
