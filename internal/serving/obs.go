package serving

import "autohet/internal/obs"

// Serving-level metrics on the shared registry. The discrete-event
// simulations run in virtual time, so only event counts are published —
// virtual-nanosecond latencies would be meaningless on a wall-clock
// histogram (the fleet runtime, which does pace wall time, owns those).
var (
	servingRunsOpen = obs.Default.Counter(
		`autohet_serving_runs_total{mode="open"}`,
		"serving simulations run, by workload mode")
	servingRunsClosed = obs.Default.Counter(
		`autohet_serving_runs_total{mode="closed"}`,
		"serving simulations run, by workload mode")
	servingRequests = obs.Default.Counter(
		"autohet_serving_requests_total",
		"requests completed across all serving simulations")
)
