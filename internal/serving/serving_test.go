package serving

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

func pipeline(t *testing.T) *sim.PipelineResult {
	t.Helper()
	p, err := accel.BuildPlan(hw.DefaultConfig(), dnn.AlexNet(),
		accel.Homogeneous(8, xbar.Square(128)), true)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := sim.SimulateBatch(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestServeLightLoad(t *testing.T) {
	pr := pipeline(t)
	// 10% of capacity: requests almost never queue.
	w := Workload{ArrivalRate: 0.1 * 1e9 / pr.IntervalNS, Requests: 500, Seed: 1}
	st, err := Serve(pr, w)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Stable {
		t.Fatal("light load flagged unstable")
	}
	if st.Completed != 500 {
		t.Fatalf("completed %d", st.Completed)
	}
	// Most requests see close to the bare pipeline fill latency.
	if st.P50NS > pr.FillNS*1.5 {
		t.Fatalf("p50 %v far above fill %v under light load", st.P50NS, pr.FillNS)
	}
	if st.Utilization > 0.3 {
		t.Fatalf("light-load utilization %v too high", st.Utilization)
	}
}

func TestServeOverload(t *testing.T) {
	pr := pipeline(t)
	// 3× capacity: unstable, queue grows, tail latencies blow up.
	w := Workload{ArrivalRate: 3 * 1e9 / pr.IntervalNS, Requests: 800, Seed: 2}
	st, err := Serve(pr, w)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stable {
		t.Fatal("overload flagged stable")
	}
	if st.MaxQueue < 10 {
		t.Fatalf("overload max queue %d suspiciously small", st.MaxQueue)
	}
	if st.P99NS < 10*pr.FillNS {
		t.Fatalf("overload p99 %v did not blow up (fill %v)", st.P99NS, pr.FillNS)
	}
	if st.Utilization < 0.9 {
		t.Fatalf("overload utilization %v below 90%%", st.Utilization)
	}
	if !strings.Contains(st.String(), "OVERLOADED") {
		t.Fatal("summary must flag overload")
	}
}

func TestServePercentileOrdering(t *testing.T) {
	pr := pipeline(t)
	w := Workload{ArrivalRate: 0.8 * 1e9 / pr.IntervalNS, Requests: 2000, Seed: 3}
	st, err := Serve(pr, w)
	if err != nil {
		t.Fatal(err)
	}
	if !(st.P50NS <= st.P95NS && st.P95NS <= st.P99NS && st.P99NS <= st.MaxNS) {
		t.Fatalf("percentiles out of order: %v %v %v %v", st.P50NS, st.P95NS, st.P99NS, st.MaxNS)
	}
	if st.MeanNS < pr.FillNS {
		t.Fatalf("mean %v below minimum possible %v", st.MeanNS, pr.FillNS)
	}
	if st.Utilization < 0 || st.Utilization > 1 {
		t.Fatalf("utilization %v out of range", st.Utilization)
	}
}

func TestServeDeterministicPerSeed(t *testing.T) {
	pr := pipeline(t)
	w := Workload{ArrivalRate: 1e9 / pr.IntervalNS, Requests: 300, Seed: 4}
	a, err := Serve(pr, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Serve(pr, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanNS != b.MeanNS || a.P99NS != b.P99NS || a.MaxQueue != b.MaxQueue {
		t.Fatal("serving not deterministic per seed")
	}
}

func TestServeValidation(t *testing.T) {
	pr := pipeline(t)
	cases := []Workload{
		{ArrivalRate: 0, Requests: 10},
		{ArrivalRate: -1, Requests: 10},
		{ArrivalRate: 100, Requests: 0},
	}
	for _, w := range cases {
		if _, err := Serve(pr, w); err == nil {
			t.Errorf("workload %+v must error", w)
		}
	}
	bad := &sim.PipelineResult{}
	if _, err := Serve(bad, Workload{ArrivalRate: 1, Requests: 1}); err == nil {
		t.Error("degenerate pipeline must error")
	}
}

// TestMaxQueueMatchesNaiveScan pins the advancing-pointer backlog
// accounting to the original per-arrival rebuild semantics: replay the
// same arrival trace and filter the full pending set at every arrival.
func TestMaxQueueMatchesNaiveScan(t *testing.T) {
	pr := &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}
	for _, frac := range []float64{0.5, 0.95, 2.0} {
		w := Workload{ArrivalRate: frac * 1e9 / pr.IntervalNS, Requests: 2000, Seed: 7}
		st, err := Serve(pr, w)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(w.Seed))
		meanGap := 1e9 / w.ArrivalRate
		arrival, prevEntry := 0.0, math.Inf(-1)
		var pending []float64
		naive := 0
		for i := 0; i < w.Requests; i++ {
			arrival += rng.ExpFloat64() * meanGap
			entry := arrival
			if e := prevEntry + pr.IntervalNS; e > entry {
				entry = e
			}
			prevEntry = entry
			pending = append(pending, entry)
			keep := pending[:0]
			for _, e := range pending {
				if e > arrival {
					keep = append(keep, e)
				}
			}
			pending = keep
			if len(pending) > naive {
				naive = len(pending)
			}
		}
		if st.MaxQueue != naive {
			t.Fatalf("load %.0f%%: MaxQueue %d, naive scan %d", 100*frac, st.MaxQueue, naive)
		}
	}
}

// TestSeedZeroSelectsDefault documents the seeding contract: Seed 0 is the
// DefaultSeed stream, not rand.NewSource(0).
func TestSeedZeroSelectsDefault(t *testing.T) {
	pr := &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}
	w := Workload{ArrivalRate: 0.8 * 1e9 / pr.IntervalNS, Requests: 500}
	zero, err := Serve(pr, w)
	if err != nil {
		t.Fatal(err)
	}
	w.Seed = DefaultSeed
	def, err := Serve(pr, w)
	if err != nil {
		t.Fatal(err)
	}
	if zero.MeanNS != def.MeanNS || zero.MaxQueue != def.MaxQueue {
		t.Fatal("Seed 0 must behave as DefaultSeed")
	}
	cw := ClosedLoop{Clients: 8, Requests: 500, ThinkTimeNS: 300}
	czero, err := ServeClosed(pr, cw)
	if err != nil {
		t.Fatal(err)
	}
	cw.Seed = DefaultSeed
	cdef, err := ServeClosed(pr, cw)
	if err != nil {
		t.Fatal(err)
	}
	if czero.MeanNS != cdef.MeanNS {
		t.Fatal("closed-loop Seed 0 must behave as DefaultSeed")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if percentile(vals, 0.5) != 5 {
		t.Fatalf("p50 = %v", percentile(vals, 0.5))
	}
	if percentile(vals, 0.99) != 10 {
		t.Fatalf("p99 = %v", percentile(vals, 0.99))
	}
	if percentile(vals, 0.01) != 1 {
		t.Fatalf("p1 = %v", percentile(vals, 0.01))
	}
	if percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile != 0")
	}
}
