// Package serving runs a request-level discrete-event simulation of DNN
// inference serving on the pipelined accelerator: Poisson arrivals enter
// the layer pipeline at its initiation interval, and the simulation reports
// the latency distribution, queueing, and stability — the metrics an edge
// deployment (the paper's motivating setting, §2.2) actually provisions
// against.
package serving

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"autohet/internal/sim"
)

// DefaultSeed seeds the arrival process when a workload leaves Seed at 0,
// so the zero value drives a fixed, documented stream instead of silently
// using rand.NewSource(0). Every arrival-process consumer (Serve,
// ServeClosed, the fleet runtime's load generator) shares this contract.
const DefaultSeed int64 = 42

// Workload describes an open-loop request stream.
type Workload struct {
	ArrivalRate float64 // mean requests per second (Poisson process)
	Requests    int     // number of requests to simulate
	// Seed seeds the arrival process; 0 selects DefaultSeed. Runs are
	// deterministic per seed.
	Seed int64
}

// Stats summarizes a serving run. Latencies are end-to-end (arrival →
// completion) in nanoseconds.
type Stats struct {
	Completed           int
	MeanNS              float64
	P50NS, P95NS, P99NS float64
	MaxNS               float64
	MakespanNS          float64
	// Utilization is the fraction of the makespan during which the
	// pipeline was accepting work at its full initiation rate.
	Utilization float64
	// MaxQueue is the deepest backlog of arrived-but-not-started requests.
	MaxQueue int
	// Stable reports whether the arrival rate is below the pipeline's
	// service capacity; an unstable system's queue grows without bound.
	Stable bool
	// CapacityRPS is the pipeline's maximum service rate.
	CapacityRPS float64
}

// Serve simulates the workload against a pipelined accelerator.
func Serve(pr *sim.PipelineResult, w Workload) (*Stats, error) {
	if w.ArrivalRate <= 0 {
		return nil, fmt.Errorf("serving: arrival rate %v", w.ArrivalRate)
	}
	if w.Requests <= 0 {
		return nil, fmt.Errorf("serving: request count %d", w.Requests)
	}
	if pr.IntervalNS <= 0 || pr.FillNS <= 0 {
		return nil, fmt.Errorf("serving: degenerate pipeline (interval %v, fill %v)", pr.IntervalNS, pr.FillNS)
	}
	seed := w.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	rng := rand.New(rand.NewSource(seed))
	meanGapNS := 1e9 / w.ArrivalRate

	latencies := make([]float64, 0, w.Requests)
	arrival := 0.0
	prevEntry := math.Inf(-1)
	var makespan float64
	maxQueue := 0

	// Entry times form a renewal process: a request enters the pipeline at
	// max(its arrival, previous entry + initiation interval) and completes
	// one pipeline-fill later.
	//
	// Entry times are monotone nondecreasing, so the backlog at each
	// arrival instant (earlier requests whose entry is still in the
	// future, plus this one if it must wait) is a contiguous suffix of the
	// entry sequence: a single pointer advancing past started entries
	// makes the scan O(n) overall instead of rebuilding a pending slice
	// per arrival (O(n²) in the overload regime, where the backlog is
	// proportional to n).
	entries := make([]float64, 0, w.Requests)
	head := 0 // entries[:head] had started by the latest arrival
	for i := 0; i < w.Requests; i++ {
		arrival += rng.ExpFloat64() * meanGapNS
		entry := arrival
		if e := prevEntry + pr.IntervalNS; e > entry {
			entry = e
		}
		prevEntry = entry
		completion := entry + pr.FillNS
		latencies = append(latencies, completion-arrival)
		if completion > makespan {
			makespan = completion
		}
		entries = append(entries, entry)
		for head < len(entries) && entries[head] <= arrival {
			head++
		}
		if q := len(entries) - head; q > maxQueue {
			maxQueue = q
		}
	}

	servingRunsOpen.Inc()
	servingRequests.Add(int64(len(latencies)))
	sort.Float64s(latencies)
	st := &Stats{
		Completed:   len(latencies),
		MakespanNS:  makespan,
		MaxQueue:    maxQueue,
		CapacityRPS: 1e9 / pr.IntervalNS,
	}
	st.Stable = w.ArrivalRate < st.CapacityRPS
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	st.MeanNS = sum / float64(len(latencies))
	st.P50NS = percentile(latencies, 0.50)
	st.P95NS = percentile(latencies, 0.95)
	st.P99NS = percentile(latencies, 0.99)
	st.MaxNS = latencies[len(latencies)-1]
	if makespan > 0 {
		busy := float64(w.Requests) * pr.IntervalNS
		st.Utilization = math.Min(1, busy/makespan)
	}
	return st, nil
}

// percentile returns the p-quantile of sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String summarizes the run.
func (s *Stats) String() string {
	state := "stable"
	if !s.Stable {
		state = "OVERLOADED"
	}
	return fmt.Sprintf("%d requests (%s): mean %.4g ns, p50 %.4g, p99 %.4g, max queue %d, util %.0f%%",
		s.Completed, state, s.MeanNS, s.P50NS, s.P99NS, s.MaxQueue, 100*s.Utilization)
}
