package des

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autohet/internal/chaos"
	"autohet/internal/des/trace"
	"autohet/internal/fleet"
)

// Parallel lane execution (Config.Workers > 1). Clusters are nearly
// independent between routing decisions, so the fleet shards into W lanes
// of contiguous clusters, each advanced by its own engine on its own
// goroutine. The only cross-lane couplings are (a) the cluster-routing
// decision per arrival and (b) the autoscaler control tick; both are
// handled by a coordinator that replays the serial fleet's exact decision
// procedure against a shadow model:
//
//   - Arrival routing: with round-robin cluster policy the pick depends
//     only on which clusters have a dispatchable replica, and
//     dispatchability changes only through chaos events (known times,
//     deterministic effects) and scaler flips (applied at tick barriers).
//     The coordinator replays both in virtual-time order and assigns every
//     arrival to its lane before the lanes run — identical to the serial
//     pick, without running the simulation.
//   - Control ticks: lanes run under conservative time-window barriers at
//     the tick times. At each barrier every lane has fired all events
//     strictly before the tick, so the coordinator can sum the lanes'
//     queued/in-flight state into the exact Signal the serial controlTick
//     would observe, apply the Scaler decision to the shadow active set,
//     and push the flips into the lanes before the next window.
//
// Anything the shadow model cannot predict exactly aborts the parallel
// attempt and reruns the whole workload serially from a recorded copy of
// the trace — exactness is never traded for speed. Abort triggers:
// whole-cluster backpressure (the serial fleet would scan other clusters),
// and exact virtual-time ties between a barrier and a lane event, arrival,
// or chaos event (the serial interleaving at an exact tie depends on event
// sequence numbers the lanes cannot observe).
//
// Logging: each lane records structured log entries (time, class, chaos
// index, emission order). The merged log orders entries by (time, class,
// chaos index, lane, emission order), where class 0 = chaos-origin lines,
// 1 = coordinator/control lines, 2 = normal lines — reproducing the serial
// log byte for byte (chaos setup events hold the smallest sequence numbers,
// so they fire first at an instant; remaining same-instant cross-lane
// collisions of normal events are detected at merge and rerun serially).

// Merged-log entry classes, in serial tie-break order at one instant:
// chaos events hold setup-time sequence numbers (smallest), control/
// coordinator lines come next, dynamically scheduled events last.
const (
	classChaos  uint8 = 0
	classCoord  uint8 = 1
	classNormal uint8 = 2
)

// logLine formats one log line for a structured sink.
func logLine(format string, args ...any) []byte {
	return []byte(fmt.Sprintf(format, args...))
}

// laneArrival is one precomputed arrival routed to a lane: the request id,
// its arrival time from the shared trace, and the lane-local cluster index
// the coordinator's round-robin pick selected.
type laneArrival struct {
	id int
	at float64
	cl int32
}

// laneEntry is one structured log line: the sort key plus the byte range in
// the lane's buffer.
type laneEntry struct {
	at         float64
	class      uint8
	tie        int32 // global chaos schedule index for class 0
	lane       int32
	start, end int32
}

// laneLog accumulates structured log lines for the canonical merge.
type laneLog struct {
	lane     int32
	curClass uint8
	curTie   int32
	buf      []byte
	entries  []laneEntry
}

func (l *laneLog) add(at float64, line []byte) {
	start := int32(len(l.buf))
	l.buf = append(l.buf, line...)
	l.entries = append(l.entries, laneEntry{
		at: at, class: l.curClass, tie: l.curTie, lane: l.lane,
		start: start, end: int32(len(l.buf)),
	})
}

// fireLaneArrival handles one evLaneArrival event on a lane sub-fleet: the
// serial arrive() minus the coordinator-owned steps (brownout, cluster
// pick, admission — all precomputed or ineligible in parallel mode).
func (f *Fleet) fireLaneArrival(i int) {
	a := f.laneArrivals[i]
	f.submitted.Add(1)
	f.arrivalsTick++
	f.window(a.at).Arrived++
	if f.logging {
		f.logf("A t=%.3f id=%d\n", a.at, a.id)
	}
	cl := f.clusters[a.cl]
	r := f.pickInCluster(cl)
	if r == nil {
		// Shadow model promised a dispatchable replica; a miss means a
		// modeling gap — abort and rerun serially rather than diverge.
		f.laneAbort = true
		f.eng.Halt()
		return
	}
	if r.queue.n >= f.cfg.QueueDepth {
		r = f.laneFallback(r)
		if r == nil {
			// Whole cluster full: the serial fleet would scan other
			// clusters — a cross-lane interaction. Abort.
			f.laneAbort = true
			f.eng.Halt()
			return
		}
	}
	f.enqueue(r, simReq{id: a.id, arrival: a.at, budget: f.budgetNS, enqueued: a.at})
}

// laneFallback is the in-cluster half of the serial fallback scan (the
// cross-cluster half aborts the lane instead). Breakers are off in parallel
// mode, so the predicate matches the serial ok() exactly.
func (f *Fleet) laneFallback(full *simReplica) *simReplica {
	for _, r := range full.cl.replicas {
		if r != full && r.dispatchable() && r.queue.n < f.cfg.QueueDepth {
			return r
		}
	}
	return nil
}

// parallelEligible reports whether this configuration's cross-lane
// interactions are precomputable. PowerOfTwo consumes a fleet-global random
// stream per pick; JSQ/least-outstanding cluster routing reads live queue
// state across lanes; admission and the resilience stack (brownout, hedges
// re-picking clusters, breakers, retries) couple lanes per arrival.
func (f *Fleet) parallelEligible() bool {
	return f.cfg.Workers > 1 &&
		f.cfg.Shards <= 1 &&
		f.cfg.Clusters >= 2 &&
		f.cfg.ClusterPolicy == fleet.RoundRobin &&
		f.cfg.Policy != fleet.PowerOfTwo &&
		f.cfg.Admit == nil &&
		!f.cfg.Resilience.Enabled()
}

// replayGen replays a recorded gap sequence, so an aborted parallel attempt
// can rerun the identical trace serially.
type replayGen struct {
	gaps []float64
	i    int
}

func (g *replayGen) Name() string { return "replay" }

func (g *replayGen) NextGapNS() float64 {
	v := g.gaps[g.i]
	g.i++
	return v
}

// lane is one worker's shard: a sub-fleet over a contiguous cluster range.
type lane struct {
	f        *Fleet
	cLo, cHi int // global cluster range [cLo, cHi)
	rLo      int // global index of the lane's first replica
}

// runBefore fires every lane event strictly before horizon T. A pending
// event exactly at a finite T is an exact barrier tie the serial ordering
// of which depends on sequence numbers — reported for abort.
func (ln *lane) runBefore(T float64) (tie bool) {
	e := ln.f.eng
	for {
		at, ok := e.PeekAt()
		if !ok || at > T {
			return false
		}
		if at == T && !math.IsInf(T, 1) {
			return true
		}
		e.Step()
		if ln.f.laneAbort {
			return false
		}
	}
}

// shadow is the coordinator's replica-state model: exactly the fields the
// serial fleet's routing and control decisions read.
type shadow struct {
	cfg      *Config
	cluster  []int32   // replica -> global cluster
	capRPS   []float64 // per-replica capacity
	health   []float64
	active   []bool
	crashed  []bool
	byName   map[string]int
	disp     []int // per-cluster dispatchable count
	capacity float64
	activeN  int
	rr       uint64
	actions  int64
	cands    []int
}

// recount mirrors refreshDispatch + recountSignal: same iteration order, so
// the float capacity sum is bit-identical to the serial fleet's.
func (s *shadow) recount() {
	for ci := range s.disp {
		s.disp[ci] = 0
	}
	s.capacity, s.activeN = 0, 0
	for i := range s.active {
		if s.active[i] && s.health[i] > 0 && !s.crashed[i] {
			s.disp[s.cluster[i]]++
		}
		if s.active[i] {
			s.activeN++
			if s.health[i] > 0 {
				s.capacity += s.capRPS[i]
			}
		}
	}
}

// apply replays one chaos event's effect on routing state (Slow/Link leave
// dispatchability untouched; the guards mirror applyChaos).
func (s *shadow) apply(ev chaos.Event) {
	i, ok := s.byName[ev.Target]
	if !ok {
		return
	}
	switch ev.Kind {
	case chaos.Crash:
		if s.crashed[i] {
			return
		}
		s.crashed[i] = true
		s.recount()
	case chaos.Restart:
		if !s.crashed[i] {
			return
		}
		s.crashed[i] = false
		s.recount()
	case chaos.Faults:
		if ev.Value <= 0 {
			s.health[i] = 1
		} else {
			s.health[i] = 1 - ev.Value/s.cfg.DegradeThreshold
			if s.health[i] < 0 {
				s.health[i] = 0
			}
		}
		s.recount()
	}
}

// pickCluster replays the serial round-robin cluster pick against the
// shadow dispatch counts. Returns -1 when no cluster is dispatchable.
func (s *shadow) pickCluster() int {
	cands := s.cands[:0]
	for ci := range s.disp {
		if s.disp[ci] > 0 {
			cands = append(cands, ci)
		}
	}
	s.cands = cands[:0]
	switch len(cands) {
	case 0:
		return -1
	case 1:
		return cands[0] // single candidate: no RR state consumed (serial parity)
	}
	s.rr++
	return cands[s.rr%uint64(len(cands))]
}

// setActive replays the serial setActive on the shadow arrays: activate
// from the front, deactivate from the back, then recount.
func (s *shadow) setActive(desired int) {
	if desired > s.activeN {
		for i := range s.active {
			if s.activeN == desired {
				break
			}
			if !s.active[i] {
				s.active[i] = true
				s.activeN++
				s.actions++
			}
		}
	} else {
		for i := len(s.active) - 1; i >= 0 && s.activeN > desired; i-- {
			if s.active[i] {
				s.active[i] = false
				s.activeN--
				s.actions++
			}
		}
	}
	s.recount()
}

// runParallel is the coordinator. It either completes the sharded run and
// returns the exact serial Result, or aborts and reruns the recorded trace
// serially — the return is always exact.
func (f *Fleet) runParallel(gen trace.Generator, requests int, budgetNS float64, wallStart time.Time) *Result {
	cfg := f.cfg
	W := cfg.Workers
	if W > cfg.Clusters {
		W = cfg.Clusters
	}
	n := len(f.replicas)

	// Record the whole trace first: the coordinator needs arrival times to
	// route ahead of the lanes, and an abort needs to replay the identical
	// trace. Absolute times accumulate gap by gap — the serial float sum.
	gaps := make([]float64, requests)
	times := make([]float64, requests)
	arrival := 0.0
	for i := range gaps {
		g := gen.NextGapNS()
		gaps[i] = g
		arrival += g
		times[i] = arrival
	}
	serial := func() *Result {
		return f.runSerial(&replayGen{gaps: gaps}, requests, budgetNS, wallStart)
	}

	// Build lanes: contiguous cluster ranges, cluster boundaries copied
	// from the parent split, replica names pre-resolved so lane-local logs
	// match the serial log bytes.
	clusterBound := make([]int, cfg.Clusters+1)
	for ci := 0; ci <= cfg.Clusters; ci++ {
		clusterBound[ci] = ci * n / cfg.Clusters
	}
	laneOf := make([]int, cfg.Clusters) // global cluster -> lane
	lanes := make([]*lane, W)
	for l := 0; l < W; l++ {
		cLo := l * cfg.Clusters / W
		cHi := (l + 1) * cfg.Clusters / W
		rLo, rHi := clusterBound[cLo], clusterBound[cHi]
		for ci := cLo; ci < cHi; ci++ {
			laneOf[ci] = l
		}
		laneSpecs := make([]fleet.ReplicaSpec, rHi-rLo)
		for i := range laneSpecs {
			laneSpecs[i] = f.specs[rLo+i]
			laneSpecs[i].Name = f.replicas[rLo+i].name
		}
		bounds := make([]int, cHi-cLo+1)
		for ci := cLo; ci <= cHi; ci++ {
			bounds[ci-cLo] = clusterBound[ci] - rLo
		}
		laneCfg := cfg
		laneCfg.Workers = 1
		laneCfg.Clusters = cHi - cLo
		laneCfg.Scaler = nil
		laneCfg.Chaos = nil
		laneCfg.Log = nil
		laneCfg.lane = true
		laneCfg.laneBounds = bounds
		lf, err := NewFleet(laneCfg, laneSpecs...)
		if err != nil {
			return serial()
		}
		lf.ran = true
		lf.budgetNS = budgetNS
		lf.latencies = make([]float64, 0, requests/W+1)
		if f.log != nil {
			lf.laneSink = &laneLog{lane: int32(l), curClass: classNormal}
			lf.logging = true
		}
		lanes[l] = &lane{f: lf, cLo: cLo, cHi: cHi, rLo: rLo}
	}

	// Partition the chaos schedule by target lane (unknown targets fire in
	// lane 0, where they log and fall through exactly as in serial), keeping
	// global schedule indices for the merged-log sort key, and schedule each
	// lane's events up front — chaos setup precedes arrivals in the serial
	// sequence order, and lane engines preserve that.
	var chaosEvents []chaos.Event
	if cfg.Chaos != nil {
		chaosEvents = cfg.Chaos.Events
	}
	for gi := range chaosEvents {
		ev := chaosEvents[gi]
		l := 0
		if r := f.replicaByName(ev.Target); r != nil {
			l = laneOf[f.clusterOf(r)]
		}
		lf := lanes[l].f
		li := len(lf.laneChaosIdx)
		if lf.cfg.Chaos == nil {
			lf.cfg.Chaos = &chaos.Schedule{}
		}
		lf.cfg.Chaos.Events = append(lf.cfg.Chaos.Events, ev)
		lf.laneChaosIdx = append(lf.laneChaosIdx, gi)
		lf.eng.AtEvent(ev.AtNS, evChaos, int64(li), 0, nil)
	}

	// Shadow model seeded from the parent's build-time state.
	sh := &shadow{
		cfg:     &f.cfg,
		cluster: make([]int32, n),
		capRPS:  make([]float64, n),
		health:  make([]float64, n),
		active:  make([]bool, n),
		crashed: make([]bool, n),
		byName:  make(map[string]int, n),
		disp:    make([]int, cfg.Clusters),
	}
	for i, r := range f.replicas {
		sh.cluster[i] = int32(f.clusterOf(r))
		sh.capRPS[i] = r.capacityRPS
		sh.health[i] = r.health
		sh.active[i] = r.active
		sh.byName[r.name] = i
	}
	sh.recount()

	var coordLog *laneLog
	if f.log != nil {
		coordLog = &laneLog{lane: -1, curClass: classCoord}
	}
	coordWindows := []WindowStats{}
	cwindow := func(t float64) *WindowStats {
		w := cfg.StatsWindowNS
		if w <= 0 {
			return &f.winDiscard
		}
		idx := int(t / w)
		if idx < 0 {
			idx = 0
		}
		for len(coordWindows) <= idx {
			coordWindows = append(coordWindows, WindowStats{StartNS: float64(len(coordWindows)) * w})
		}
		return &coordWindows[idx]
	}

	period := cfg.ControlPeriodNS
	nextTick := math.Inf(1)
	if cfg.Scaler != nil {
		nextTick = period
	}
	var (
		arrIdx, chaosIdx        int
		ticks                   int64
		lastTickAt              float64
		arrivalsTick            int64
		traceDone               bool
		coordShed, coordArrived int64
	)

	for {
		T := nextTick
		// Route every arrival strictly before the barrier, replaying chaos
		// effects on dispatchability in time order (equal-time chaos fires
		// first: its setup sequence numbers precede every arrival's).
		for arrIdx < requests && times[arrIdx] < T {
			t := times[arrIdx]
			for chaosIdx < len(chaosEvents) && chaosEvents[chaosIdx].AtNS <= t {
				sh.apply(chaosEvents[chaosIdx])
				chaosIdx++
			}
			arrivalsTick++
			ci := sh.pickCluster()
			if ci < 0 {
				coordArrived++
				coordShed++
				cw := cwindow(t)
				cw.Arrived++
				cw.Unroutable++
				if coordLog != nil {
					coordLog.curClass = classNormal
					coordLog.add(t, logLine("A t=%.3f id=%d\n", t, arrIdx))
					coordLog.add(t, logLine("H t=%.3f id=%d reason=noreplica\n", t, arrIdx))
					coordLog.curClass = classCoord
				}
			} else {
				lf := lanes[laneOf[ci]].f
				lf.laneArrivals = append(lf.laneArrivals,
					laneArrival{id: arrIdx, at: t, cl: int32(ci - lanes[laneOf[ci]].cLo)})
			}
			arrIdx++
		}
		traceDone = arrIdx == requests
		// Remaining pre-barrier chaos only matters to future routing.
		for chaosIdx < len(chaosEvents) && chaosEvents[chaosIdx].AtNS < T {
			sh.apply(chaosEvents[chaosIdx])
			chaosIdx++
		}
		// Exact barrier ties: the serial interleaving depends on sequence
		// numbers the shadow cannot see. Rerun serially.
		if chaosIdx < len(chaosEvents) && chaosEvents[chaosIdx].AtNS == T {
			return serial()
		}
		if arrIdx < requests && times[arrIdx] == T {
			return serial()
		}

		// Run every lane to the barrier concurrently.
		var wg sync.WaitGroup
		var abort atomic.Bool
		for _, ln := range lanes {
			wg.Add(1)
			go func(ln *lane) {
				defer wg.Done()
				lf := ln.f
				for ; lf.laneSched < len(lf.laneArrivals); lf.laneSched++ {
					a := lf.laneArrivals[lf.laneSched]
					lf.eng.AtEvent(a.at, evLaneArrival, int64(lf.laneSched), 0, nil)
				}
				if ln.runBefore(T) || lf.laneAbort {
					abort.Store(true)
				}
			}(ln)
		}
		wg.Wait()
		if abort.Load() {
			return serial()
		}
		if math.IsInf(T, 1) {
			break // final window: every lane drained
		}

		// Control tick at the barrier: the exact serial controlTick against
		// summed lane state.
		ticks++
		lastTickAt = T
		rate := float64(arrivalsTick) / period * 1e9
		arrivalsTick = 0
		queued, inFlight := 0, 0
		for _, ln := range lanes {
			queued += ln.f.queued
			inFlight += ln.f.inFlight
		}
		desired := cfg.Scaler.Decide(Signal{
			NowNS: T, Active: sh.activeN, Total: n,
			Queued: queued, InFlight: inFlight,
			ArrivalRate: rate, CapacityRPS: sh.capacity,
		})
		if desired < 1 {
			desired = 1
		}
		if desired > n {
			desired = n
		}
		if desired != sh.activeN {
			sh.setActive(desired)
			for _, ln := range lanes {
				changed := false
				for g := ln.rLo; g < clusterBound[ln.cHi]; g++ {
					lr := ln.f.replicas[g-ln.rLo]
					if lr.active != sh.active[g] {
						lr.active = sh.active[g]
						changed = true
					}
				}
				if changed {
					ln.f.refreshDispatch()
				}
			}
			if coordLog != nil {
				coordLog.add(T, logLine("C t=%.3f active=%d rate=%.0f\n", T, sh.activeN, rate))
			}
		}
		if !traceDone || queued+inFlight > 0 {
			nextTick = T + period
		} else {
			nextTick = math.Inf(1)
		}
	}

	// Merge the canonical log (cross-lane normal-class ties at one instant
	// cannot be ordered without serial sequence numbers — rerun serially;
	// continuous event times make this a measure-zero path).
	if f.log != nil {
		logs := make([]*laneLog, 0, W+1)
		for _, ln := range lanes {
			logs = append(logs, ln.f.laneSink)
		}
		if coordLog != nil {
			logs = append(logs, coordLog)
		}
		merged, ok := mergeLaneLogs(logs)
		if !ok {
			return serial()
		}
		if _, err := f.log.Write(merged); err != nil {
			// io.Writer contract: surface nothing here; serial logf ignores
			// write errors the same way (fmt.Fprintf result discarded).
			_ = err
		}
	}

	// Fold lane state back into the parent fleet and compile the Result
	// with the serial arithmetic (identical iteration orders throughout).
	for _, ln := range lanes {
		for j, lr := range ln.f.replicas {
			pr := f.replicas[ln.rLo+j]
			pr.active = lr.active
			pr.crashed = lr.crashed
			pr.slow = lr.slow
			pr.link = lr.link
			pr.health = lr.health
			pr.served = lr.served
			pr.expired = lr.expired
			pr.batches = lr.batches
			pr.batchSum = lr.batchSum
			pr.busyNS = lr.busyNS
		}
		for j, lcl := range ln.f.clusters {
			pcl := f.clusters[ln.cLo+j]
			pcl.served = lcl.served
			pcl.peakQueued = lcl.peakQueued
			pcl.queued.Store(lcl.queued.Load())
		}
	}
	var events int64 = ticks + coordShed
	endNow := lastTickAt
	total := int(coordArrived)
	for _, ln := range lanes {
		lf := ln.f
		events += lf.eng.Events()
		if now := lf.eng.Now(); now > endNow {
			endNow = now
		}
		total += int(lf.submitted.Load())
		f.latencies = append(f.latencies, lf.latencies...)
		if lf.makespan > f.makespan {
			f.makespan = lf.makespan
		}
		f.completed.Add(lf.completed.Load())
		f.shed.Add(lf.shed.Load())
		f.unroutable.Add(lf.unroutable.Load())
		f.expired.Add(lf.expired.Load())
		f.failed.Add(lf.failed.Load())
		f.chaosEvents.Add(lf.chaosEvents.Load())
		for wi := range lf.windows {
			for len(f.windows) <= wi {
				f.windows = append(f.windows, WindowStats{StartNS: float64(len(f.windows)) * cfg.StatsWindowNS})
			}
			w := &f.windows[wi]
			lw := &lf.windows[wi]
			w.Arrived += lw.Arrived
			w.Completed += lw.Completed
			w.Expired += lw.Expired
			w.Failed += lw.Failed
			w.Shed += lw.Shed
			w.Unroutable += lw.Unroutable
		}
	}
	for wi := range coordWindows {
		for len(f.windows) <= wi {
			f.windows = append(f.windows, WindowStats{StartNS: float64(len(f.windows)) * cfg.StatsWindowNS})
		}
		f.windows[wi].Arrived += coordWindows[wi].Arrived
		f.windows[wi].Unroutable += coordWindows[wi].Unroutable
	}
	f.submitted.Store(int64(total))
	f.unroutable.Add(coordShed)
	f.scaleActions = sh.actions
	f.lastArrival = times[requests-1]
	f.eng.setNow(endNow)

	res := f.compileResult(requests, events, time.Since(wallStart))
	res.Lanes = W
	return res
}

// clusterOf returns a replica's global cluster index on the parent fleet.
func (f *Fleet) clusterOf(r *simReplica) int { return r.cl.id }

// mergeLaneLogs sorts every structured entry into canonical serial order
// and concatenates the bytes. ok is false when two normal-class entries
// from different sources share an exact virtual time — the unorderable tie.
func mergeLaneLogs(logs []*laneLog) (merged []byte, ok bool) {
	type ref struct {
		log *laneLog
		i   int
	}
	var refs []ref
	size := 0
	for _, l := range logs {
		for i := range l.entries {
			refs = append(refs, ref{l, i})
		}
		size += len(l.buf)
	}
	sort.SliceStable(refs, func(a, b int) bool {
		ea, eb := &refs[a].log.entries[refs[a].i], &refs[b].log.entries[refs[b].i]
		if ea.at != eb.at {
			return ea.at < eb.at
		}
		if ea.class != eb.class {
			return ea.class < eb.class
		}
		if ea.tie != eb.tie {
			return ea.tie < eb.tie
		}
		return ea.lane < eb.lane
	})
	merged = make([]byte, 0, size)
	for k, r := range refs {
		e := &r.log.entries[r.i]
		if k > 0 {
			p := &refs[k-1].log.entries[refs[k-1].i]
			if p.at == e.at && p.class == classNormal && e.class == classNormal && p.lane != e.lane {
				return nil, false
			}
		}
		merged = append(merged, r.log.buf[e.start:e.end]...)
	}
	return merged, true
}
