package des

import (
	"reflect"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	if want := []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	if e.Now() != 30 {
		t.Fatalf("Now %v after run, want 30", e.Now())
	}
}

// Equal-time events fire in schedule (FIFO) order, including events
// scheduled from inside a handler at the current instant.
func TestEqualTimeFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.At(100, func() { e.Schedule(0, func() { got = append(got, 99) }) })
	e.Run()
	if want := []int{0, 1, 2, 3, 4, 99}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
}

func TestScheduleRelative(t *testing.T) {
	e := New()
	var at float64
	e.At(50, func() {
		e.Schedule(25, func() { at = e.Now() })
	})
	e.Run()
	if at != 75 {
		t.Fatalf("relative event fired at %v, want 75", at)
	}
}

// Scheduling in the past clamps to Now: virtual time never runs backwards.
func TestPastSchedulesClamp(t *testing.T) {
	e := New()
	var at float64
	e.At(100, func() {
		e.At(10, func() { at = e.Now() })
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamp to 100", at)
	}
	e2 := New()
	fired := false
	e2.Schedule(-5, func() { fired = true })
	e2.Run()
	if !fired || e2.Now() != 0 {
		t.Fatalf("negative delay: fired=%t now=%v, want immediate at 0", fired, e2.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	tm := e.At(10, func() { fired = true })
	if !e.Active(tm) {
		t.Fatal("timer not active after schedule")
	}
	if !e.Cancel(tm) {
		t.Fatal("first Cancel returned false")
	}
	if e.Cancel(tm) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	// Cancelling after firing reports false.
	tm2 := e.At(20, func() {})
	e.Run()
	if e.Active(tm2) || e.Cancel(tm2) {
		t.Fatal("fired timer still active / cancellable")
	}
	// The zero Handle is inert.
	var zero Handle
	if e.Active(zero) || e.Cancel(zero) {
		t.Fatal("zero Handle active / cancellable")
	}
}

// A stale handle must not resurrect or cancel a later event that reuses its
// arena slot — the generation check.
func TestStaleHandleCannotTouchReusedSlot(t *testing.T) {
	e := New()
	h1 := e.At(10, func() {})
	if !e.Cancel(h1) {
		t.Fatal("cancel failed")
	}
	fired := false
	h2 := e.At(20, func() { fired = true }) // reuses h1's slot
	if e.Active(h1) {
		t.Fatal("stale handle reports active after slot reuse")
	}
	if e.Cancel(h1) {
		t.Fatal("stale handle cancelled the reused slot's event")
	}
	if !e.Active(h2) {
		t.Fatal("fresh handle inactive")
	}
	e.Run()
	if !fired {
		t.Fatal("event on reused slot did not fire")
	}
}

// Cancelling an interior event must not disturb the firing order of the
// rest — the heap removal restores the invariant.
func TestCancelKeepsOrder(t *testing.T) {
	e := New()
	var got []int
	timers := make([]Handle, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		timers = append(timers, e.At(float64(10-i), func() { got = append(got, 10-i) }))
	}
	e.Cancel(timers[3]) // event at time 7
	e.Cancel(timers[8]) // event at time 2
	e.Run()
	if want := []int{1, 3, 4, 5, 6, 8, 9, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []int
	for _, at := range []float64{10, 20, 30, 40} {
		at := at
		e.At(at, func() { got = append(got, int(at)) })
	}
	if n := e.RunUntil(25); n != 2 {
		t.Fatalf("RunUntil fired %d, want 2", n)
	}
	if e.Now() != 25 {
		t.Fatalf("Now %v after RunUntil(25), want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("%d pending, want 2", e.Pending())
	}
	e.Run()
	if want := []int{10, 20, 30, 40}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
}

func TestHalt(t *testing.T) {
	e := New()
	var got []int
	e.At(10, func() { got = append(got, 1); e.Halt() })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if want := []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v before halt, want %v", got, want)
	}
	// Resuming picks up the pending events.
	e.Run()
	if want := []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v after resume, want %v", got, want)
	}
	if e.Events() != 2 {
		t.Fatalf("Events %d, want 2", e.Events())
	}
}

// An open-loop chain (each event schedules its successor) keeps the heap
// tiny no matter how many events flow through.
func TestChainedEventsBoundedHeap(t *testing.T) {
	e := New()
	const n = 100000
	count := 0
	var next func()
	next = func() {
		count++
		if count < n {
			e.Schedule(1, next)
		}
		if p := e.Pending(); p > 1 {
			t.Fatalf("heap grew to %d entries on a chained workload", p)
		}
	}
	e.Schedule(1, next)
	e.Run()
	if count != n || e.Now() != float64(n) {
		t.Fatalf("ran %d events to t=%v, want %d to %d", count, e.Now(), n, n)
	}
}

func TestSubSeed(t *testing.T) {
	a, b := SubSeed(7, "arrivals"), SubSeed(7, "dispatch")
	if a == b {
		t.Fatal("distinct stream names produced the same seed")
	}
	if a != SubSeed(7, "arrivals") {
		t.Fatal("SubSeed not stable")
	}
	if SubSeed(0, "") == 0 {
		t.Fatal("SubSeed produced the degenerate 0 seed")
	}
}
