package des

import "autohet/internal/chaos"

// Chaos injection and client-side resilience on the event heap. Fault
// events (Config.Chaos) fire at their virtual timestamps: a crash
// fail-stops a replica at its next batch boundary (queued copies fail and
// may retry; the in-flight batch, already committed to the pipeline,
// completes), a restart returns it with its pipeline free no earlier than
// now, fail-slow multiplies the service recurrence, a degraded link adds
// per-batch transfer cost, and a fault storm rewrites the static health
// score the way a fresh ReplicaSpec.Faults would.
//
// Resilience (Config.Resilience) wraps requests in a shared reqState so a
// request can have several copies in flight: the primary, a hedge launched
// after a latency-quantile delay, and retries re-dispatched with jittered
// exponential backoff after a copy is lost. The first copy to complete
// wins (st.done); every other copy is cancelled where it sits — skipped at
// queue pop without consuming a pipeline slot, or counted wasted when its
// completion event fires late. Because a winner must be *known* before a
// loser can be skipped, resilient completions resolve at their virtual
// completion time via deferred events rather than instantly at batch
// pricing — the legacy instant-pricing path (st == nil) is untouched, which
// is what keeps the crosschecks against the goroutine fleet bit-identical.
//
// Everything here is single-goroutine on the DES event loop; determinism
// (same config + seeds + schedule → byte-identical event log) is asserted
// in tests and CI.

// reqState is the shared fate of one resilient request across its copies.
type reqState struct {
	id      int
	arrival float64
	budget  float64

	attempts     int  // dispatches so far (primary = 1, hedge and retries add)
	live         int  // copies sitting in admission queues
	pending      int  // completion events scheduled but not yet fired
	retryPending bool // a backoff timer will re-dispatch
	done         bool // resolved: a copy completed
	failed       bool // resolved: every avenue exhausted
	expired      bool // some copy missed the budget (final loss counts as Expired)

	hedge   Handle // pending hedge launch (zero once fired or cancelled)
	primary *simReplica
}

// newState wraps an arrival when any resilience policy is on.
func (f *Fleet) newState(id int, arrival, budget float64) *reqState {
	if !f.res.Enabled() {
		return nil
	}
	return &reqState{id: id, arrival: arrival, budget: budget}
}

// applyChaos executes one schedule event at the current virtual time.
// Events naming unknown replicas log and fall through — a schedule may name
// replicas a particular fleet does not have.
func (f *Fleet) applyChaos(ev chaos.Event) {
	now := f.eng.Now()
	f.chaosEvents.Add(1)
	if f.logging {
		f.logf("K t=%.3f kind=%s target=%s v=%g\n", now, ev.Kind, ev.Target, ev.Value)
	}
	r := f.replicaByName(ev.Target)
	if r == nil {
		return
	}
	switch ev.Kind {
	case chaos.Crash:
		if r.crashed {
			return
		}
		r.crashed = true
		f.refreshDispatch()
		if r.collecting {
			f.eng.Cancel(r.collect)
			r.collecting = false
			r.collect = Handle{}
		}
		for r.queue.n > 0 {
			rq := r.queue.pop()
			f.queued--
			r.cl.queued.Add(-1)
			f.failCopy(rq, r, "crash")
		}
	case chaos.Restart:
		if !r.crashed {
			return
		}
		r.crashed = false
		if r.nextFree < now {
			r.nextFree = now
		}
		f.refreshDispatch()
	case chaos.Slow:
		if ev.Value <= 1 {
			r.slow = 1
		} else {
			r.slow = ev.Value
		}
	case chaos.Link:
		if ev.Value <= 0 {
			r.link = 0
		} else {
			r.link = ev.Value
		}
	case chaos.Faults:
		// The DES health model is static (no online repair loop), so a
		// fault storm lands as the health score a fresh build would compute.
		if ev.Value <= 0 {
			r.health = 1
		} else {
			r.health = 1 - ev.Value/f.cfg.DegradeThreshold
			if r.health < 0 {
				r.health = 0
			}
		}
		f.refreshDispatch()
	}
}

func (f *Fleet) replicaByName(name string) *simReplica {
	for _, r := range f.replicas {
		if r.name == name {
			return r
		}
	}
	return nil
}

// refreshDispatch rebuilds per-cluster dispatchable counts and the O(1)
// signal aggregates after chaos flips a replica's routability.
func (f *Fleet) refreshDispatch() {
	for _, cl := range f.clusters {
		cl.dispatchable = 0
		for _, r := range cl.replicas {
			if r.dispatchable() {
				cl.dispatchable++
			}
		}
	}
	f.recountSignal()
}

// route commits the final placement to r's breaker (probe claiming).
func (f *Fleet) route(r *simReplica) {
	if r.breaker != nil {
		r.breaker.OnRoute(f.eng.Now())
	}
}

// anyRoutable scans the whole fleet for a breaker-admitting replica with
// queue space — the last-resort fallback when breakers filtered every
// candidate the policy offered.
func (f *Fleet) anyRoutable() *simReplica {
	now := f.eng.Now()
	for _, r := range f.replicas {
		if r.dispatchable() && r.canRoute(now) && r.queue.n < f.cfg.QueueDepth {
			return r
		}
	}
	return nil
}

// failCopy handles a copy lost before service (crash drain, dead-end
// routes). Legacy requests fail outright; resilient ones consult retry.
func (f *Fleet) failCopy(rq simReq, r *simReplica, reason string) {
	now := f.eng.Now()
	if r.breaker != nil {
		r.breaker.Record(now, false)
	}
	st := rq.st
	if st == nil {
		f.failed.Add(1)
		f.window(now).Failed++
		if f.logging {
			f.logf("X t=%.3f id=%d r=%s reason=%s\n", now, rq.id, r.name, reason)
		}
		return
	}
	if st.done || st.failed {
		return // cancelled copy swept out with the queue
	}
	st.live--
	if f.logging {
		f.logf("E t=%.3f id=%d r=%s reason=%s\n", now, rq.id, r.name, reason)
	}
	f.tryRetry(st)
}

// tryRetry schedules a backoff re-dispatch when the policy, attempt count,
// and token budget allow; otherwise it settles the request if nothing else
// is in flight.
func (f *Fleet) tryRetry(st *reqState) {
	if rp := f.res.Retry; rp != nil && st.attempts < rp.MaxAttempts && f.retryBudget.Spend() {
		st.retryPending = true
		st.attempts++
		delay := rp.BackoffNS(st.attempts-1, f.retryRng)
		f.retried.Add(1)
		if f.logging {
			f.logf("R t=%.3f id=%d attempt=%d wait=%.3f\n", f.eng.Now(), st.id, st.attempts, delay)
		}
		f.eng.ScheduleEvent(delay, evRetry, 0, 0, st)
		return
	}
	f.settle(st)
}

// redispatch is the backoff timer firing: route a fresh copy, or settle
// when no route exists.
func (f *Fleet) redispatch(st *reqState) {
	st.retryPending = false
	if st.done || st.failed {
		return
	}
	r := f.pickReplica()
	if r != nil && r.queue.n >= f.cfg.QueueDepth {
		r = f.fallback(r)
	}
	if r == nil && f.breakersOn {
		r = f.anyRoutable()
	}
	if r == nil {
		f.settle(st)
		return
	}
	st.live++
	f.route(r)
	f.enqueue(r, simReq{id: st.id, arrival: st.arrival, budget: st.budget, enqueued: f.eng.Now(), st: st})
}

// settle finalizes a resilient request once no copy, completion event, or
// retry timer remains. A budget miss anywhere makes the loss an expiry;
// otherwise it is a failure (crash losses with retries exhausted).
func (f *Fleet) settle(st *reqState) {
	if st.done || st.failed || st.retryPending || st.live+st.pending > 0 {
		return
	}
	st.failed = true
	f.eng.Cancel(st.hedge)
	st.hedge = Handle{}
	now := f.eng.Now()
	if st.expired {
		f.expired.Add(1)
		f.window(now).Expired++
		if f.logging {
			f.logf("X t=%.3f id=%d reason=budget\n", now, st.id)
		}
	} else {
		f.failed.Add(1)
		f.window(now).Failed++
		if f.logging {
			f.logf("X t=%.3f id=%d reason=failed\n", now, st.id)
		}
	}
}

// armHedge schedules the backup launch for a fresh primary dispatch: after
// the observed latency quantile (floored until enough samples), a still-
// unresolved request gets a second copy on another replica.
func (f *Fleet) armHedge(st *reqState) {
	hp := f.res.Hedge
	if hp == nil || st == nil {
		return
	}
	d := hp.DelayNS(f.hedgeHist.Count(), f.hedgeHist.Quantile(hp.Quantile))
	st.hedge = f.eng.ScheduleEvent(d, evHedge, 0, 0, st)
}

// fireHedge launches the backup copy (first-wins with the primary).
func (f *Fleet) fireHedge(st *reqState) {
	st.hedge = Handle{}
	if st.done || st.failed {
		return
	}
	r := f.pickReplica()
	if r == st.primary && r != nil {
		// A hedge on the replica already serving the primary buys nothing;
		// prefer any other replica with queue space.
		if alt := f.fallback(r); alt != nil {
			r = alt
		}
	}
	if r != nil && r.queue.n >= f.cfg.QueueDepth {
		r = f.fallback(r)
	}
	if r == nil && f.breakersOn {
		r = f.anyRoutable()
	}
	if r == nil {
		return // primary still live; nothing to hedge onto
	}
	st.attempts++
	st.live++
	f.hedged.Add(1)
	f.route(r)
	now := f.eng.Now()
	if f.logging {
		f.logf("G t=%.3f id=%d r=%s\n", now, st.id, r.name)
	}
	f.enqueue(r, simReq{id: st.id, arrival: st.arrival, budget: st.budget, enqueued: now, st: st})
}

// resolveCopy fires at a resilient copy's virtual completion time: the
// first copy wins the request, later ones count as wasted hedges.
func (f *Fleet) resolveCopy(st *reqState, r *simReplica, completion float64) {
	st.pending--
	now := f.eng.Now()
	if st.done || st.failed {
		f.hedgeWasted.Add(1)
		if f.logging {
			f.logf("W t=%.3f id=%d r=%s\n", now, st.id, r.name)
		}
		return
	}
	st.done = true
	f.eng.Cancel(st.hedge)
	st.hedge = Handle{}
	latency := completion - st.arrival
	f.latencies = append(f.latencies, latency)
	f.completed.Add(1)
	f.hedgeHist.Observe(latency)
	if f.retryBudget != nil {
		f.retryBudget.Earn()
	}
	r.served++
	r.cl.served++
	f.window(completion).Completed++
	if completion > f.makespan {
		f.makespan = completion
	}
	if f.logging {
		f.logf("S t=%.3f id=%d r=%s c=%.3f\n", now, st.id, r.name, completion)
	}
}

// window returns the stats bucket for virtual time t, or a discard sink
// when windowing is off.
func (f *Fleet) window(t float64) *WindowStats {
	w := f.cfg.StatsWindowNS
	if w <= 0 {
		return &f.winDiscard
	}
	idx := int(t / w)
	if idx < 0 {
		idx = 0
	}
	for len(f.windows) <= idx {
		f.windows = append(f.windows, WindowStats{StartNS: float64(len(f.windows)) * w})
	}
	return &f.windows[idx]
}
