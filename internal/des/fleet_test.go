package des

import (
	"bytes"
	"testing"

	"autohet/internal/des/trace"
	"autohet/internal/fault"
	"autohet/internal/fleet"
	"autohet/internal/obs"
	"autohet/internal/sim"
)

func homogeneous(n int, fillNS, intervalNS float64) []fleet.ReplicaSpec {
	specs := make([]fleet.ReplicaSpec, n)
	for i := range specs {
		specs[i] = fleet.ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: fillNS, IntervalNS: intervalNS}}
	}
	return specs
}

// conserve asserts the request conservation invariant every run must hold.
func conserve(t *testing.T, r *Result) {
	t.Helper()
	if r.Completed+r.Shed+r.Unroutable+r.Expired+r.Failed != r.Offered {
		t.Fatalf("conservation: %d completed + %d shed + %d unroutable + %d expired + %d failed != %d offered",
			r.Completed, r.Shed, r.Unroutable, r.Expired, r.Failed, r.Offered)
	}
	if len(r.LatenciesNS) != r.Completed {
		t.Fatalf("%d latencies for %d completions", len(r.LatenciesNS), r.Completed)
	}
}

// Same config, same seeds → byte-identical event log. This is the
// determinism contract on the full simulation (dispatch sampler, batching,
// autoscaler, admission, shedding all in play), not just the engine.
func TestDeterministicEventLog(t *testing.T) {
	run := func(seed int64) *bytes.Buffer {
		var buf bytes.Buffer
		cfg := DefaultConfig()
		cfg.Policy = fleet.PowerOfTwo
		cfg.ClusterPolicy = fleet.JoinShortestQueue
		cfg.Clusters = 4
		cfg.MaxBatch = 4
		cfg.QueueDepth = 8
		cfg.Scaler = TargetUtilization{Target: 0.7, Min: 2}
		cfg.ControlPeriodNS = 1e6
		cfg.Admit = QueueCap{MaxQueuedPerActive: 6}
		cfg.Log = &buf
		f, err := NewFleet(cfg, homogeneous(16, 2000, 100)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.RunTrace(trace.Bursty(1.2e8, 1.9, 5e5, seed), 20000, 50000)
		if err != nil {
			t.Fatal(err)
		}
		conserve(t, res)
		return &buf
	}
	a, b := run(11), run(11)
	if a.Len() == 0 {
		t.Fatal("empty event log")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same seed produced different event logs (%d vs %d bytes)", a.Len(), b.Len())
	}
	if c := run(12); bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different trace seeds produced identical event logs")
	}
}

// An overprovisioned fleet under light load shrinks; the scaler's actions
// show up in the result and the active set lands near the utilization
// target rather than the provisioned size.
func TestAutoscalerShrinksIdleFleet(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 4
	cfg.Scaler = TargetUtilization{Target: 0.7, Min: 2}
	cfg.ControlPeriodNS = 1e6
	cfg.QueueDepth = 1 << 14
	// 32 replicas of 1e7 rps each, offered 2e7 rps: utilization 1/16.
	f, err := NewFleet(cfg, homogeneous(32, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunTrace(trace.Poisson(2e7, 3), 50000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if res.ScaleActions == 0 {
		t.Fatal("no scale actions under 16x overprovisioning")
	}
	active := 0
	for _, cl := range res.Clusters {
		active += cl.Active
	}
	if active >= 32 || active < 2 {
		t.Fatalf("final active set %d, want shrunk into [2, 32)", active)
	}
}

// Admission control sheds when the backlog cap trips, and those sheds are
// attributed to the hook.
func TestAdmissionControlSheds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 1 << 14
	cfg.Admit = QueueCap{MaxQueuedPerActive: 4}
	// One 1e7-rps replica offered 4e7 rps: the backlog crosses 4 fast.
	f, err := NewFleet(cfg, homogeneous(1, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunTrace(trace.Poisson(4e7, 5), 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if res.AdmissionShed == 0 || int64(res.Shed) != res.AdmissionShed {
		t.Fatalf("admission shed %d of %d total sheds, want all sheds from the hook",
			res.AdmissionShed, res.Shed)
	}
	if res.Completed == 0 {
		t.Fatal("admission control shed everything")
	}
}

// Latency budgets expire requests whose completion would overshoot, and
// expired members don't consume pipeline slots.
func TestBudgetExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 1 << 14
	f, err := NewFleet(cfg, homogeneous(1, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	// Overloaded 1.5x with a budget little above the no-wait latency: the
	// growing backlog pushes later requests past it.
	res, err := f.RunTrace(trace.Poisson(1.5e7, 7), 5000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if res.Expired == 0 {
		t.Fatal("no expirations under overload with a tight budget")
	}
	for _, l := range res.LatenciesNS {
		if l > 3000 {
			t.Fatalf("completed request latency %.1f ns exceeds 3000 ns budget", l)
		}
	}
}

// Bounded queues shed overload once full (no Admit hook involved).
func TestQueueFullSheds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 4
	f, err := NewFleet(cfg, homogeneous(2, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunTrace(trace.Poisson(8e7, 9), 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if res.Shed == 0 {
		t.Fatal("no sheds with depth-4 queues at 4x overload")
	}
	if res.AdmissionShed != 0 {
		t.Fatal("admission sheds counted without an Admit hook")
	}
}

// Faulted replicas above the degrade threshold take no traffic; the healthy
// remainder serves everything.
func TestDegradedReplicaRoutesAround(t *testing.T) {
	specs := homogeneous(4, 1000, 100)
	specs[0].Name = "bad"
	specs[0].Faults = &fault.Model{StuckAtZero: 0.05, Seed: 1} // 5x the 0.01 threshold
	cfg := DefaultConfig()
	cfg.Policy = fleet.JoinShortestQueue
	cfg.QueueDepth = 1 << 14
	f, err := NewFleet(cfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	f.log = &buf
	res, err := f.RunTrace(trace.Poisson(1e7, 3), 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if res.Shed != 0 || res.Completed != 3000 {
		t.Fatalf("healthy remainder should absorb the load: %+v", res.Result)
	}
	if bytes.Contains(buf.Bytes(), []byte("r=bad")) {
		t.Fatal("traffic routed to a replica degraded past the threshold")
	}
}

// Cluster partitioning is contiguous and near-equal, and per-cluster served
// counts sum to the fleet total.
func TestClusterPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 3
	cfg.Policy = fleet.RoundRobin
	cfg.QueueDepth = 1 << 14
	f, err := NewFleet(cfg, homogeneous(10, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{len(f.clusters[0].replicas), len(f.clusters[1].replicas), len(f.clusters[2].replicas)}
	if sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Fatalf("cluster sizes %v don't partition 10 replicas", sizes)
	}
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Fatalf("cluster sizes %v, want near-equal (3 or 4)", sizes)
		}
	}
	res, err := f.RunTrace(trace.Poisson(5e7, 5), 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	var served int64
	for _, cl := range res.Clusters {
		served += cl.Served
	}
	if served != int64(res.Completed) {
		t.Fatalf("cluster served sum %d != completed %d", served, res.Completed)
	}
}

// A Fleet is single-use.
func TestFleetSingleUse(t *testing.T) {
	f, err := NewFleet(DefaultConfig(), homogeneous(1, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTrace(trace.Poisson(1e6, 1), 10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTrace(trace.Poisson(1e6, 1), 10, 0); err == nil {
		t.Fatal("second RunTrace accepted")
	}
}

// The obs families the CI smoke and dashboards depend on exist after a run.
func TestMetricsRegistered(t *testing.T) {
	f, err := NewFleet(DefaultConfig(), homogeneous(2, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTrace(trace.Poisson(1e6, 1), 100, 0); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"autohet_des_events_total":        false,
		"autohet_des_requests_total":      false,
		"autohet_des_speedup":             false,
		"autohet_des_cluster_queue_depth": false,
	}
	for _, fam := range obs.Default.Families() {
		if _, ok := want[fam]; ok {
			want[fam] = true
		}
	}
	for fam, seen := range want {
		if !seen {
			t.Errorf("metric family %s not registered", fam)
		}
	}
}

// A 1k-replica fleet under a heavy-tail trace completes quickly and reports
// a large virtual-over-wall speedup — the engine's reason to exist. (The
// 10k-replica × 1M-request recipe runs in the benchmark and CI smoke.)
func TestClusterScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-scale smoke skipped in -short")
	}
	cfg := DefaultConfig()
	cfg.Clusters = 32
	cfg.Policy = fleet.JoinShortestQueue
	cfg.ClusterPolicy = fleet.JoinShortestQueue
	cfg.QueueDepth = 64
	// Serving-scale replicas: 50 ms fill, 100 rps capacity each — the
	// regime where simulated seconds dwarf the wall cost of simulating them.
	f, err := NewFleet(cfg, homogeneous(1000, 5e7, 1e7)...)
	if err != nil {
		t.Fatal(err)
	}
	// 70% of the 1e5 rps aggregate capacity, heavy-tail gaps.
	res, err := f.RunTrace(trace.Pareto(7e4, 1.5, 13), 200000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if res.Completed < 190000 {
		t.Fatalf("only %d of 200000 completed at 70%% load", res.Completed)
	}
	if !raceEnabled && res.SpeedupVsWall < 1 {
		t.Fatalf("virtual/wall speedup %.2f, want > 1", res.SpeedupVsWall)
	}
	if res.Events < int64(res.Offered) {
		t.Fatalf("%d events for %d requests", res.Events, res.Offered)
	}
}
