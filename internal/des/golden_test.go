package des

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"autohet/internal/chaos"
	"autohet/internal/des/trace"
	"autohet/internal/fleet"
	"autohet/internal/sim"
)

// Golden event-log regression: the scenarios below were captured on the
// pre-arena engine (PR 6-8 era, pointer-heap *Timer engine) and frozen as
// SHA-256 hashes in testdata/golden_logs.json. Any engine or fleet change
// that shifts a single byte of a serial (workers=1) event log fails here —
// this is the "workers=1 remains bit-identical to the old engine" leg of
// the determinism contract.
//
// Regenerating (only when a determinism-breaking change is intentional):
//
//	AUTOHET_WRITE_GOLDENS=1 go test -run TestWriteGoldenEventLogs ./internal/des

// goldenScenario is one frozen simulation recipe. Configs here must never
// change; add new scenarios instead of editing existing ones.
type goldenScenario struct {
	name     string
	requests int
	budgetNS float64
	cfg      func() Config
	specs    func() []fleet.ReplicaSpec
	gen      func() trace.Generator
}

// hetSpecs builds a heterogeneous fleet from four pipeline shapes.
func hetSpecs(n int) []fleet.ReplicaSpec {
	shapes := []sim.PipelineResult{
		{FillNS: 1000, IntervalNS: 100},
		{FillNS: 2500, IntervalNS: 160},
		{FillNS: 600, IntervalNS: 80},
		{FillNS: 4000, IntervalNS: 250},
	}
	specs := make([]fleet.ReplicaSpec, n)
	for i := range specs {
		pr := shapes[i%len(shapes)]
		specs[i] = fleet.ReplicaSpec{Pipeline: &pr}
	}
	return specs
}

func goldenScenarios() []goldenScenario {
	return []goldenScenario{
		{
			// The full serial feature set: p2c dispatch sampling, jsq cluster
			// routing, batching, autoscaling, admission control.
			name:     "mixed",
			requests: 20000,
			budgetNS: 50000,
			cfg: func() Config {
				cfg := DefaultConfig()
				cfg.Policy = fleet.PowerOfTwo
				cfg.ClusterPolicy = fleet.JoinShortestQueue
				cfg.Clusters = 4
				cfg.MaxBatch = 4
				cfg.QueueDepth = 8
				cfg.Scaler = TargetUtilization{Target: 0.7, Min: 2}
				cfg.ControlPeriodNS = 1e6
				cfg.Admit = QueueCap{MaxQueuedPerActive: 6}
				return cfg
			},
			specs: func() []fleet.ReplicaSpec { return homogeneous(16, 2000, 100) },
			gen:   func() trace.Generator { return trace.Bursty(1.2e8, 1.9, 5e5, 11) },
		},
		{
			// Chaos storm with the full resilience stack (retry, hedge,
			// breakers, brownout) — serial-only features.
			name:     "resilience_storm",
			requests: 20000,
			budgetNS: 50000,
			cfg: func() Config {
				cfg := DefaultConfig()
				cfg.Policy = fleet.PowerOfTwo
				cfg.ClusterPolicy = fleet.JoinShortestQueue
				cfg.Clusters = 4
				cfg.MaxBatch = 4
				cfg.QueueDepth = 16
				cfg.StatsWindowNS = 1e5
				cfg.Resilience = chaos.DefaultResilience()
				cfg.Chaos = chaos.Merge(
					chaos.CrashStorm(2e5, 2e5, names(16), 0.25, 21),
					chaos.SlowStorm(3e5, 2e5, names(16), 0.125, 20, 21),
				)
				return cfg
			},
			specs: func() []fleet.ReplicaSpec { return homogeneous(16, 2000, 100) },
			gen:   func() trace.Generator { return trace.Bursty(1e8, 1.9, 5e5, 17) },
		},
		{
			// Shardable recipe: round-robin cluster routing, jsq within the
			// cluster, heterogeneous replicas, batching, budgets.
			name:     "shard_plain",
			requests: 20000,
			budgetNS: 60000,
			cfg: func() Config {
				cfg := DefaultConfig()
				cfg.Policy = fleet.JoinShortestQueue
				cfg.ClusterPolicy = fleet.RoundRobin
				cfg.Clusters = 8
				cfg.MaxBatch = 4
				cfg.QueueDepth = 32
				return cfg
			},
			specs: func() []fleet.ReplicaSpec { return hetSpecs(32) },
			gen:   func() trace.Generator { return trace.Bursty(1.5e8, 1.8, 4e5, 23) },
		},
		{
			// Shardable recipe under a crash + fail-slow storm with windowed
			// stats: the chaos-mid-storm parallel determinism anchor.
			name:     "shard_storm",
			requests: 20000,
			budgetNS: 80000,
			cfg: func() Config {
				cfg := DefaultConfig()
				cfg.Policy = fleet.LeastOutstanding
				cfg.ClusterPolicy = fleet.RoundRobin
				cfg.Clusters = 8
				cfg.MaxBatch = 2
				cfg.QueueDepth = 64
				cfg.StatsWindowNS = 2e5
				cfg.Chaos = chaos.Merge(
					chaos.CrashStorm(3e5, 3e5, names(32), 0.25, 7),
					chaos.SlowStorm(4e5, 2e5, names(32), 0.25, 15, 7),
				)
				return cfg
			},
			specs: func() []fleet.ReplicaSpec { return hetSpecs(32) },
			gen:   func() trace.Generator { return trace.Poisson(1.4e8, 29) },
		},
		{
			// Shardable recipe with the autoscaler in the loop: control ticks
			// are the cross-lane synchronization points.
			name:     "shard_scaler",
			requests: 20000,
			budgetNS: 0,
			cfg: func() Config {
				cfg := DefaultConfig()
				cfg.Policy = fleet.JoinShortestQueue
				cfg.ClusterPolicy = fleet.RoundRobin
				cfg.Clusters = 8
				cfg.QueueDepth = 1 << 14
				cfg.Scaler = TargetUtilization{Target: 0.7, Min: 4}
				cfg.ControlPeriodNS = 5e4
				return cfg
			},
			specs: func() []fleet.ReplicaSpec { return homogeneous(32, 2000, 100) },
			gen:   func() trace.Generator { return trace.Diurnal(1.5e8, 0.8, 2e6, 37) },
		},
		{
			// Pure round-robin at both levels under a heavy-tail trace.
			name:     "shard_rr",
			requests: 20000,
			budgetNS: 0,
			cfg: func() Config {
				cfg := DefaultConfig()
				cfg.Policy = fleet.RoundRobin
				cfg.ClusterPolicy = fleet.RoundRobin
				cfg.Clusters = 6
				cfg.QueueDepth = 128
				return cfg
			},
			specs: func() []fleet.ReplicaSpec { return hetSpecs(24) },
			gen:   func() trace.Generator { return trace.Pareto(1.2e8, 1.5, 41) },
		},
	}
}

// runGoldenScenario executes one scenario with logging on and returns the
// event log.
func runGoldenScenario(t *testing.T, sc goldenScenario) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	cfg := sc.cfg()
	cfg.Log = &buf
	f, err := NewFleet(cfg, sc.specs()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunTrace(sc.gen(), sc.requests, sc.budgetNS)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if buf.Len() == 0 {
		t.Fatalf("%s: empty event log", sc.name)
	}
	return &buf
}

// goldenEntry is one frozen log fingerprint.
type goldenEntry struct {
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

const goldenPath = "testdata/golden_logs.json"

func readGoldens(t *testing.T) map[string]goldenEntry {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (capture with AUTOHET_WRITE_GOLDENS=1): %v", err)
	}
	var m map[string]goldenEntry
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func logDigest(buf *bytes.Buffer) goldenEntry {
	sum := sha256.Sum256(buf.Bytes())
	return goldenEntry{SHA256: hex.EncodeToString(sum[:]), Bytes: buf.Len()}
}

// TestWriteGoldenEventLogs regenerates the golden file. Gated behind an env
// var so a routine test run can never silently rewrite the contract.
func TestWriteGoldenEventLogs(t *testing.T) {
	if os.Getenv("AUTOHET_WRITE_GOLDENS") == "" {
		t.Skip("set AUTOHET_WRITE_GOLDENS=1 to regenerate golden logs")
	}
	m := map[string]goldenEntry{}
	for _, sc := range goldenScenarios() {
		m[sc.name] = logDigest(runGoldenScenario(t, sc))
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenEventLogs asserts every scenario's serial event log still hashes
// to its pre-arena-engine capture.
func TestGoldenEventLogs(t *testing.T) {
	goldens := readGoldens(t)
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			want, ok := goldens[sc.name]
			if !ok {
				t.Fatalf("no golden for %s (capture with AUTOHET_WRITE_GOLDENS=1)", sc.name)
			}
			got := logDigest(runGoldenScenario(t, sc))
			if got != want {
				t.Fatalf("event log diverged from the pre-arena engine: got %d bytes %s, want %d bytes %s",
					got.Bytes, got.SHA256, want.Bytes, want.SHA256)
			}
		})
	}
}
