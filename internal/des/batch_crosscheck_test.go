package des

import (
	"math"
	"testing"

	"autohet/internal/fleet"
	"autohet/internal/sim"
)

// TestCrossCheckBatchedService: the batched-kernel service model
// (fleet.BatchService, derived from sim.PipelineResult.BatchCost) must
// price identically in the goroutine runtime and the DES engine — a formed
// batch of B requests is charged BaseNS + B·PerInputNS of engine
// occupancy, with member i completing at entry + BaseNS + (i+1)·PerInputNS.
//
// Design for determinism: one replica, MaxBatch 32, a queue deep enough
// for the whole trace, and arrivals ~10⁶× denser than service so every
// batch closes by count with a full backlog behind it. The goroutine
// runtime gets a batch timeout far longer than the submission burst (so
// its wall-clock collect loop never truncates a batch); the DES gets a
// 1 ns virtual collect window (so its first, timeout-closed window opens
// with the full backlog already queued and enters within 1 ns of the
// goroutine's count-closed first batch). Every batch in both engines is
// then exactly MaxBatch, and throughput/mean-batch/latency statistics
// agree to ≤1e-6 relative.
func TestCrossCheckBatchedService(t *testing.T) {
	// Measured batched-kernel shape: fill = base + per, interval = per.
	pr := &sim.PipelineResult{FillNS: 110_000, IntervalNS: 10_000}
	baseNS, perNS := pr.BatchCost()
	svc := &fleet.BatchService{BaseNS: baseNS, PerInputNS: perNS}
	const maxBatch = 32
	w := fleet.Workload{ArrivalRate: 1e12, Requests: 64 * maxBatch, Seed: 11}

	gcfg := fleet.DefaultConfig()
	gcfg.TimeScale = 1e-3
	gcfg.MaxBatch = maxBatch
	gcfg.BatchTimeoutNS = 1e9
	gcfg.QueueDepth = w.Requests
	gf, err := fleet.New(gcfg, fleet.ReplicaSpec{Name: "batch", Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fleet.Run(gf, w)
	gf.Close()
	if err != nil {
		t.Fatal(err)
	}

	dcfg := DefaultConfig()
	dcfg.MaxBatch = maxBatch
	dcfg.BatchTimeoutNS = 1
	dcfg.QueueDepth = w.Requests
	df, err := NewFleet(dcfg, fleet.ReplicaSpec{Name: "batch", Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	got, err := df.Run(w)
	if err != nil {
		t.Fatal(err)
	}

	if want.Completed != w.Requests || got.Completed != w.Requests {
		t.Fatalf("completed: goroutine %d, des %d, want %d", want.Completed, got.Completed, w.Requests)
	}
	// Every batch full: the saturated fleet maps requests onto
	// batched-kernel invocations of exactly MaxBatch inputs.
	if want.MeanBatch != maxBatch || got.MeanBatch != maxBatch {
		t.Fatalf("mean batch: goroutine %.6f (%d batches), des %.6f (%d batches), want exactly %d",
			want.MeanBatch, want.Batches, got.MeanBatch, got.Batches, maxBatch)
	}
	for _, p := range []struct {
		name      string
		got, want float64
	}{
		{"throughput", got.ThroughputRPS, want.ThroughputRPS},
		{"mean batch", got.MeanBatch, want.MeanBatch},
		{"mean latency", got.MeanNS, want.MeanNS},
		{"p99 latency", got.P99NS, want.P99NS},
	} {
		if math.Abs(p.got-p.want) > 1e-6*math.Max(1, math.Abs(p.want)) {
			t.Errorf("%s: des %.6f, goroutine %.6f (rel %.3g)", p.name, p.got, p.want,
				math.Abs(p.got-p.want)/math.Max(1, math.Abs(p.want)))
		}
	}
	// The throughput itself must be the batched-kernel rate: a full batch
	// of B inputs every BaseNS + B·PerInputNS of occupancy.
	kernelRPS := maxBatch / (baseNS + maxBatch*perNS) * 1e9
	if rel := math.Abs(got.ThroughputRPS-kernelRPS) / kernelRPS; rel > 0.02 {
		t.Errorf("des throughput %.1f rps, batched-kernel rate %.1f rps (rel %.3g)",
			got.ThroughputRPS, kernelRPS, rel)
	}
}
