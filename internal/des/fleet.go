package des

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"autohet/internal/chaos"
	"autohet/internal/des/trace"
	"autohet/internal/fleet"
	"autohet/internal/obs"
	"autohet/internal/serving"
)

// This file is the DES-backed fleet mode: the same replica service-time
// model, dispatch policies, bounded admission queues, shedding, dynamic
// batching, and latency budgets as the goroutine runtime in internal/fleet,
// but advanced by popping events off the virtual-time heap instead of
// pacing wall-clock sleeps. A 10k-replica fleet under a million-request
// trace completes in seconds of wall time, and on small configurations the
// per-request virtual latencies cross-check against the goroutine fleet and
// serving.Serve's exact pipelined recurrence (see crosscheck_test.go).
//
// Differences from the goroutine runtime, by design:
//
//   - Queue depths are virtual: a request occupies its admission queue from
//     its arrival until the batch containing it enters the pipeline, so the
//     queue-aware policies see the virtual backlog rather than a wall-clock
//     race between submitter and replica loops. This is the signal a paced
//     (TimeScale ≈ 1) goroutine fleet approximates.
//   - Replica health is static, derived from ReplicaSpec.Faults against
//     DegradeThreshold at build time; the online detect/repair loop (and
//     with it retry routing and RepairSpec) stays in the goroutine runtime.
//   - Routing is hierarchical: replicas are grouped into clusters, the
//     cluster policy picks a cluster, the replica policy picks within it —
//     O(#clusters + #replicas/cluster) per dispatch instead of O(#replicas),
//     which is what keeps 10k-replica JSQ affordable.
type Config struct {
	// Policy dispatches within a cluster (default RoundRobin); ClusterPolicy
	// picks the cluster (default: same as Policy).
	Policy        fleet.Policy
	ClusterPolicy fleet.Policy
	// Clusters splits the replicas into this many contiguous clusters
	// (default 1 = flat routing).
	Clusters int
	// MaxBatch, BatchTimeoutNS, QueueDepth, and DegradeThreshold carry the
	// goroutine runtime's semantics (fleet.Config).
	MaxBatch         int
	BatchTimeoutNS   float64
	QueueDepth       int
	DegradeThreshold float64
	// Shards splits the replicas into that many contiguous pipeline-parallel
	// stages (default 1 = every replica hosts the whole model), mirroring
	// fleet.Config.Shards: arrivals dispatch into stage 0, each stage's
	// completion schedules a stage-hop event that re-queues the request at
	// the next stage after the priced transfer, and only the final stage
	// records the request's latency (measured from its original arrival, so
	// budgets span the whole chain). Sharding requires flat routing
	// (Clusters == 1) and no resilience stack, and always runs on the serial
	// engine — Workers > 1 falls back, keeping the byte-identical-log
	// contract trivially intact.
	Shards int
	// StageTransferNS prices the Shards−1 inter-stage activation handoffs
	// (fleet.Config.StageTransferNS semantics: nil = free, else entry s is
	// added between completion on stage s and arrival at stage s+1).
	StageTransferNS []float64
	// Seed drives the dispatch sampler (PowerOfTwo), default 1.
	Seed int64
	// Scaler, when set, is consulted every ControlPeriodNS of virtual time
	// and may grow or shrink the active replica set (see scale.go).
	Scaler Scaler
	// ControlPeriodNS is the autoscaling control-loop period (default 10 ms
	// virtual).
	ControlPeriodNS float64
	// Admit, when set, is consulted per arrival before dispatch; a rejected
	// request is shed (admission control).
	Admit Admitter
	// Chaos, when set, is a fault-injection schedule replayed on the event
	// heap: each event fires at its virtual timestamp (crash/restart,
	// fail-slow, degraded link, fault storms — see internal/chaos). The
	// schedule participates in the determinism contract: same config, same
	// seeds, same schedule → byte-identical event log.
	Chaos *chaos.Schedule
	// Resilience enables client-side failure handling (retry with backoff,
	// hedged requests, per-replica circuit breakers, brownout). The zero
	// value disables everything and preserves the legacy engine behavior
	// bit for bit — the crosscheck anchor.
	Resilience chaos.Resilience
	// StatsWindowNS, when positive, buckets arrivals/completions/losses
	// into fixed windows of virtual time (Result.Windows) — the recovery
	// currency of the chaos experiment.
	StatsWindowNS float64
	// Log, when set, receives one line per simulation event. Identical
	// configs and seeds produce byte-identical logs — the determinism
	// anchor asserted in tests. Logging a million-request run is large;
	// leave nil outside tests and small experiments. With Workers > 1 the
	// canonical virtual-time-ordered merged log is written (byte-identical
	// to the workers=1 log).
	Log io.Writer
	// Workers > 1 shards the clusters into that many lanes, each advanced
	// by its own engine on its own goroutine under conservative time-window
	// barriers (see parallel.go). Results are exact: workers=N equals
	// workers=1 bit for bit. Parallelism engages only for configurations
	// whose cross-lane interactions are precomputable (Clusters >= workers,
	// round-robin cluster routing, no PowerOfTwo sampling, no admission
	// hook, no resilience stack); anything else — and any run that develops
	// a cross-cluster interaction such as whole-cluster backpressure —
	// falls back to the serial engine, still exact. Default 1.
	Workers int

	// lane marks a sub-fleet built by the parallel coordinator: skips
	// global metric registration (the parent owns the series) and uses
	// laneBounds for the cluster split so lane cluster boundaries match the
	// parent's exactly.
	lane       bool
	laneBounds []int
}

// DefaultConfig mirrors fleet.DefaultConfig for the fields the DES mode
// shares.
func DefaultConfig() Config {
	return Config{
		Policy:           fleet.RoundRobin,
		Clusters:         1,
		MaxBatch:         1,
		BatchTimeoutNS:   100_000,
		QueueDepth:       256,
		DegradeThreshold: 0.01,
		Seed:             1,
		ControlPeriodNS:  10e6,
	}
}

func (c *Config) normalize() error {
	if c.Policy == "" {
		c.Policy = fleet.RoundRobin
	}
	if _, err := fleet.ParsePolicy(string(c.Policy)); err != nil {
		return err
	}
	if c.ClusterPolicy == "" {
		c.ClusterPolicy = c.Policy
	}
	if _, err := fleet.ParsePolicy(string(c.ClusterPolicy)); err != nil {
		return err
	}
	if c.Clusters == 0 {
		c.Clusters = 1
	}
	if c.Clusters < 1 {
		return fmt.Errorf("des: cluster count %d", c.Clusters)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 1
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("des: max batch %d", c.MaxBatch)
	}
	if c.BatchTimeoutNS == 0 {
		c.BatchTimeoutNS = 100_000
	}
	if c.BatchTimeoutNS < 0 {
		return fmt.Errorf("des: batch timeout %v ns", c.BatchTimeoutNS)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("des: queue depth %d", c.QueueDepth)
	}
	if c.DegradeThreshold == 0 {
		c.DegradeThreshold = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ControlPeriodNS == 0 {
		c.ControlPeriodNS = 10e6
	}
	if c.ControlPeriodNS < 0 {
		return fmt.Errorf("des: control period %v ns", c.ControlPeriodNS)
	}
	if c.StatsWindowNS < 0 {
		return fmt.Errorf("des: stats window %v ns", c.StatsWindowNS)
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Workers < 1 {
		return fmt.Errorf("des: worker count %d", c.Workers)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 || c.Shards >= 1<<16 {
		return fmt.Errorf("des: %d shard stages", c.Shards)
	}
	if c.Shards > 1 {
		if c.Clusters != 1 {
			return fmt.Errorf("des: sharding requires flat routing, have %d clusters", c.Clusters)
		}
		if c.Resilience.Enabled() {
			return fmt.Errorf("des: sharding and the resilience stack are mutually exclusive")
		}
	}
	if c.StageTransferNS != nil && len(c.StageTransferNS) != c.Shards-1 {
		return fmt.Errorf("des: %d stage transfers for %d shard stages", len(c.StageTransferNS), c.Shards)
	}
	for i, t := range c.StageTransferNS {
		if t < 0 || math.IsNaN(t) {
			return fmt.Errorf("des: stage %d transfer %v ns", i, t)
		}
	}
	if p := c.Resilience.Retry; p != nil {
		d := p.WithDefaults()
		c.Resilience.Retry = &d
	}
	if p := c.Resilience.Hedge; p != nil {
		d := p.WithDefaults()
		c.Resilience.Hedge = &d
	}
	if p := c.Resilience.Brownout; p != nil {
		d := p.WithDefaults()
		c.Resilience.Brownout = &d
	}
	return nil
}

// Typed event kinds for the fleet's hot events: the steady-state loop
// (arrival → dispatch → batch → free) schedules zero closures and zero
// per-event allocations. Payload conventions are documented per kind.
const (
	evArrival     uint16 = iota + 1 // serial arrival chain; i = request id
	evLaneArrival                   // lane-mode arrival; i = index into lane.arrivals
	evFree                          // pipeline free; i = replica index
	evCollect                       // batch collect timeout; i = replica index
	evControl                       // autoscaler control tick
	evChaos                         // chaos schedule event; i = index into cfg.Chaos.Events
	evResolve                       // resilient copy completion; i = replica index, x = completion, p = *reqState
	evRetry                         // retry backoff expiry; p = *reqState
	evHedge                         // hedge launch; p = *reqState
	evStageHop                      // sharded stage handoff; i = id<<16|stage, x = original arrival
)

// handle dispatches typed events from the engine to the fleet's handlers.
func (f *Fleet) handle(kind uint16, i int64, x float64, p any) {
	switch kind {
	case evArrival:
		f.fireArrival(int(i))
	case evLaneArrival:
		f.fireLaneArrival(int(i))
	case evFree:
		f.onFree(f.replicas[i])
	case evCollect:
		f.onCollectTimeout(f.replicas[i])
	case evControl:
		f.controlTick()
	case evChaos:
		if s := f.laneSink; s != nil {
			// Chaos-origin log lines carry the global schedule index so the
			// merged log can reproduce the serial equal-time order.
			s.curClass, s.curTie = classChaos, int32(f.laneChaosIdx[i])
			f.applyChaos(f.cfg.Chaos.Events[i])
			s.curClass, s.curTie = classNormal, 0
		} else {
			f.applyChaos(f.cfg.Chaos.Events[i])
		}
	case evResolve:
		f.resolveCopy(p.(*reqState), f.replicas[i], x)
	case evRetry:
		f.redispatch(p.(*reqState))
	case evHedge:
		f.fireHedge(p.(*reqState))
	case evStageHop:
		f.onStageHop(int(i>>16), int(i&0xffff), x)
	}
}

// simReq is one queued request copy. enqueued is the virtual time it joined
// its current queue (== arrival for primary dispatches, so the legacy entry
// recurrence is unchanged; retry and hedge copies carry their re-dispatch
// time). st is nil on the legacy path; resilient requests share one reqState
// across all their copies (see chaos.go).
type simReq struct {
	id       int
	arrival  float64
	budget   float64
	enqueued float64
	st       *reqState
}

// reqRing is a growable FIFO ring buffer of requests — per-replica
// admission queues allocate lazily and reuse storage across batches.
type reqRing struct {
	buf  []simReq
	head int
	n    int
}

func (r *reqRing) push(q simReq) {
	if r.n == len(r.buf) {
		grown := make([]simReq, 2*len(r.buf)+8)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = q
	r.n++
}

func (r *reqRing) pop() simReq {
	q := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return q
}

func (r *reqRing) peek() simReq { return r.buf[r.head] }

// simReplica is one accelerator's virtual-time service state.
type simReplica struct {
	id          int
	name        string
	stage       int // pipeline stage served (0 without sharding)
	fill        float64
	interval    float64
	occBase     float64 // extra engine occupancy per batch (fleet.BatchService.BaseNS; 0 = pipelined)
	capacityRPS float64
	health      float64
	area        float64
	cl          *simCluster

	active     bool
	queue      reqRing
	nextFree   float64 // virtual time the pipeline accepts its next batch
	busy       bool    // a batch occupies the pipeline until nextFree
	inFlight   int     // kept members of the executing batch
	collecting bool
	collect    Handle

	// Chaos state: crashed fail-stops the replica, slow multiplies fill and
	// interval (1 = healthy), link adds degraded-NoC transfer cost per batch
	// (0 = healthy), breaker is the per-replica circuit breaker (nil = off).
	crashed bool
	slow    float64
	link    float64
	breaker *chaos.Breaker

	served   int64
	expired  int64
	batches  int64
	batchSum int64
	busyNS   float64 // cumulative pipeline occupancy (bubble-fraction currency)
}

func (r *simReplica) healthy() bool { return r.health > 0 }

// dispatchable reports whether new traffic may route here.
func (r *simReplica) dispatchable() bool { return r.active && r.healthy() && !r.crashed }

// canRoute consults the circuit breaker without mutating it (nil = always).
func (r *simReplica) canRoute(nowNS float64) bool {
	return r.breaker == nil || r.breaker.CanRoute(nowNS)
}

// queueScore and loadScore carry the goroutine runtime's health weighting
// (fleet.replica): a half-health replica looks twice as loaded.
func (r *simReplica) queueScore() float64 { return float64(r.queue.n+1) / r.health }
func (r *simReplica) loadScore() float64 {
	return float64(r.queue.n+r.inFlight+1) / r.health
}

// simCluster groups replicas for two-level routing.
type simCluster struct {
	id       int
	name     string
	replicas []*simReplica

	// queued is atomic only so metric exposition can read it while a run
	// is in flight; the simulation itself is single-goroutine.
	queued        atomic.Int64
	peakQueued    int64
	dispatchable  int // replicas accepting traffic (active && healthy && !crashed)
	rrNext        uint64
	served        int64
	admissionShed int64 // admission-hook rejections attributed to this cluster
}

// queueScore is the cluster-level JSQ signal: waiting requests per
// dispatchable replica.
func (c *simCluster) queueScore() float64 {
	return (float64(c.queued.Load()) + 1) / float64(c.dispatchable)
}

// loadScore adds in-flight work (cluster-level least-outstanding signal).
func (c *simCluster) loadScore() float64 {
	var inFlight int
	for _, r := range c.replicas {
		inFlight += r.inFlight
	}
	return (float64(c.queued.Load())+float64(inFlight))/float64(c.dispatchable) + 1
}

// Fleet is the DES-backed fleet simulator. Build with NewFleet, run one
// workload with RunTrace (or Run), then read the Result; a Fleet is
// single-use and single-goroutine.
type Fleet struct {
	cfg      Config
	eng      *Engine
	clusters []*simCluster
	replicas []*simReplica
	rng      *rand.Rand
	log      io.Writer
	// logging gates every logf call site: the variadic args would otherwise
	// box to the heap per event even with logging off, which alone costs
	// ~6 allocs/event on the steady-state path.
	logging bool

	clusterRR uint64

	// Pipeline-stage bounds over replicas (Config.Shards > 1): stage s is
	// replicas[stageLo[s]:stageLo[s+1]], the same contiguous near-equal split
	// formula as the cluster bounds and the goroutine fleet's stages. stageRR
	// holds one round-robin cursor per stage.
	stageLo []int
	stageRR []uint64

	// O(1) fleet-wide dispatch/signal state, maintained incrementally.
	queued      int
	inFlight    int
	active      int
	capacityRPS float64
	arrivalRate float64
	allClean    bool // every replica dispatchable — enables index-arithmetic picks

	submitted  atomic.Int64
	completed  atomic.Int64
	shed       atomic.Int64
	unroutable atomic.Int64
	expired    atomic.Int64
	failed     atomic.Int64

	latencies    []float64
	makespan     float64
	lastArrival  float64
	arrivalsTick int64 // arrivals since the last control tick
	traceDone    bool

	// Arrival-chain state for the typed evArrival event (the closure-free
	// replacement for the old self-scheduling arrival closure).
	traceGen      trace.Generator
	budgetNS      float64
	totalRequests int
	nextArrivalAt float64

	// Parallel-lane state (see parallel.go). specs is retained on parent
	// fleets so the coordinator can build lane sub-fleets; the lane* fields
	// are live only when this fleet runs as one lane of a parallel run.
	specs         []fleet.ReplicaSpec
	laneArrivals  []laneArrival
	laneSched     int // laneArrivals already scheduled as events
	laneAbort     bool
	laneSink      *laneLog
	laneChaosIdx  []int // lane chaos event index -> global schedule index
	speedupGauge  *gaugeHandle
	ran           bool
	clusterBuf    []*simCluster // reusable scratch for degraded-path picks
	replicaBuf    []*simReplica
	scaleActions  int64
	admissionShed int64

	// Chaos + resilience state (see chaos.go). res is the normalized copy
	// of Config.Resilience; breakersOn short-circuits breaker checks off
	// the legacy dispatch fast path.
	res         chaos.Resilience
	breakersOn  bool
	retryRng    *rand.Rand
	retryBudget *chaos.RetryBudget
	hedgeHist   obs.Histogram
	// Atomic like the outcome counters: CounterFunc exposition may read
	// them while a run is in flight.
	retried      atomic.Int64
	hedged       atomic.Int64
	hedgeWasted  atomic.Int64
	brownoutShed atomic.Int64
	chaosEvents  atomic.Int64
	windows      []WindowStats
	winDiscard   WindowStats // sink when StatsWindowNS is off
}

// NewFleet builds the simulator from the same ReplicaSpec values the
// goroutine runtime takes. ReplicaSpec.Faults sets a static health score
// (1 − cellRate/DegradeThreshold, clamped); ReplicaSpec.Repair is ignored —
// online self-repair lives in the goroutine runtime.
func NewFleet(cfg Config, specs ...fleet.ReplicaSpec) (*Fleet, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("des: no replicas")
	}
	if cfg.Clusters > len(specs) {
		return nil, fmt.Errorf("des: %d clusters over %d replicas", cfg.Clusters, len(specs))
	}
	f := &Fleet{
		cfg: cfg,
		eng: New(),
		rng: rand.New(rand.NewSource(cfg.Seed)),
		log: cfg.Log,
	}
	f.logging = cfg.Log != nil
	f.eng.SetHandler(f.handle)
	names := map[string]bool{}
	for i, spec := range specs {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("r%d", i)
		}
		if names[name] {
			return nil, fmt.Errorf("des: duplicate replica name %q", name)
		}
		names[name] = true
		if spec.Service == nil && (spec.Pipeline == nil || spec.Pipeline.IntervalNS <= 0 || spec.Pipeline.FillNS <= 0) {
			return nil, fmt.Errorf("des: replica %q has a degenerate pipeline", name)
		}
		if err := spec.Service.Validate(); err != nil {
			return nil, fmt.Errorf("des: replica %q: %w", name, err)
		}
		if err := spec.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("des: replica %q: %w", name, err)
		}
		health := 1.0
		if spec.Faults != nil {
			health = 1 - spec.Faults.CellFaultRate()/cfg.DegradeThreshold
			if health < 0 {
				health = 0
			}
		}
		r := &simReplica{
			id:     i,
			name:   name,
			health: health,
			active: true,
			slow:   1,
		}
		// The same spec→timing resolution as fleet.newReplica: a batch
		// service holds the engine for BaseNS + kept·PerInputNS, a
		// pipeline overlaps drain with the next batch (occBase 0).
		if s := spec.Service; s != nil {
			r.fill = s.BaseNS + s.PerInputNS
			r.interval = s.PerInputNS
			r.occBase = s.BaseNS
		} else {
			r.fill = spec.Pipeline.FillNS
			r.interval = spec.Pipeline.IntervalNS
		}
		r.capacityRPS = 1e9 / r.interval
		if cfg.Resilience.Breaker != nil {
			r.breaker = chaos.NewBreaker(*cfg.Resilience.Breaker)
		}
		if spec.Plan != nil {
			r.area = spec.Plan.Area()
		}
		f.replicas = append(f.replicas, r)
	}
	// Contiguous, near-equal cluster split. A lane sub-fleet uses the
	// parent-supplied boundaries instead so its clusters match the parent's
	// split of the same replicas exactly.
	n := len(f.replicas)
	bounds := cfg.laneBounds
	if bounds == nil {
		bounds = make([]int, cfg.Clusters+1)
		for ci := 0; ci <= cfg.Clusters; ci++ {
			bounds[ci] = ci * n / cfg.Clusters
		}
	}
	for ci := 0; ci < cfg.Clusters; ci++ {
		lo := bounds[ci]
		hi := bounds[ci+1]
		cl := &simCluster{id: ci, name: fmt.Sprintf("c%d", ci), replicas: f.replicas[lo:hi]}
		for _, r := range cl.replicas {
			r.cl = cl
			if r.dispatchable() {
				cl.dispatchable++
			}
		}
		f.clusters = append(f.clusters, cl)
	}
	if cfg.Shards > len(f.replicas) {
		return nil, fmt.Errorf("des: %d shard stages need at least as many replicas, have %d", cfg.Shards, len(f.replicas))
	}
	f.stageLo = make([]int, cfg.Shards+1)
	f.stageRR = make([]uint64, cfg.Shards)
	for s := 0; s <= cfg.Shards; s++ {
		f.stageLo[s] = s * n / cfg.Shards
	}
	for s := 0; s < cfg.Shards; s++ {
		for _, r := range f.replicas[f.stageLo[s]:f.stageLo[s+1]] {
			r.stage = s
		}
	}
	f.res = cfg.Resilience
	f.breakersOn = cfg.Resilience.Breaker != nil
	if cfg.Resilience.Retry != nil {
		f.retryRng = rand.New(rand.NewSource(SubSeed(cfg.Seed, "chaos/retry")))
		f.retryBudget = chaos.NewRetryBudget(*cfg.Resilience.Retry)
	}
	f.recountSignal()
	if !cfg.lane {
		f.specs = append([]fleet.ReplicaSpec(nil), specs...)
		f.registerMetrics()
	}
	return f, nil
}

// recountSignal rebuilds the O(1) signal aggregates from scratch (build
// time and after scale actions).
func (f *Fleet) recountSignal() {
	f.active, f.capacityRPS, f.allClean = 0, 0, true
	for _, r := range f.replicas {
		if r.active {
			f.active++
			if r.healthy() {
				f.capacityRPS += r.capacityRPS
			}
		}
		if !r.dispatchable() {
			f.allClean = false
		}
	}
}

// Engine exposes the underlying event engine (virtual clock, event count).
func (f *Fleet) Engine() *Engine { return f.eng }

// Run offers a fleet.Workload (open-loop Poisson, serving.Serve's arrival
// construction: same seed, same trace) and returns the result — the DES
// counterpart of fleet.Run.
func (f *Fleet) Run(w fleet.Workload) (*Result, error) {
	if w.ArrivalRate <= 0 {
		return nil, fmt.Errorf("des: arrival rate %v", w.ArrivalRate)
	}
	seed := w.Seed
	if seed == 0 {
		seed = serving.DefaultSeed
	}
	return f.RunTrace(trace.Poisson(w.ArrivalRate, seed), w.Requests, w.BudgetNS)
}

// RunTrace offers requests arrivals drawn from gen and runs the simulation
// to completion. One call per Fleet.
func (f *Fleet) RunTrace(gen trace.Generator, requests int, budgetNS float64) (*Result, error) {
	if requests <= 0 {
		return nil, fmt.Errorf("des: request count %d", requests)
	}
	if f.ran {
		return nil, fmt.Errorf("des: fleet already ran; build a new one per workload")
	}
	f.ran = true
	wallStart := time.Now()
	if f.parallelEligible() {
		return f.runParallel(gen, requests, budgetNS, wallStart), nil
	}
	return f.runSerial(gen, requests, budgetNS, wallStart), nil
}

// runSerial is the classic single-engine run: the reference semantics every
// parallel run must reproduce bit for bit.
func (f *Fleet) runSerial(gen trace.Generator, requests int, budgetNS float64, wallStart time.Time) *Result {
	f.latencies = make([]float64, 0, requests)
	if f.cfg.Scaler != nil {
		f.eng.ScheduleEvent(f.cfg.ControlPeriodNS, evControl, 0, 0, nil)
	}
	if f.cfg.Chaos != nil {
		for i := range f.cfg.Chaos.Events {
			f.eng.AtEvent(f.cfg.Chaos.Events[i].AtNS, evChaos, int64(i), 0, nil)
		}
	}
	f.traceGen, f.totalRequests, f.budgetNS = gen, requests, budgetNS
	f.nextArrivalAt = gen.NextGapNS()
	f.lastArrival = f.nextArrivalAt
	f.eng.AtEvent(f.nextArrivalAt, evArrival, 0, 0, nil)
	events := f.eng.Run()

	res := f.compileResult(requests, events, time.Since(wallStart))
	res.Lanes = 1
	return res
}

// fireArrival handles one evArrival event: admit request id at the current
// virtual time, then schedule the next arrival — the allocation-free
// replacement for the old self-scheduling arrival closure, with the exact
// same float accumulation (nextArrivalAt += gap) so schedules are
// bit-identical.
func (f *Fleet) fireArrival(id int) {
	f.arrive(id, f.nextArrivalAt, f.budgetNS)
	id++
	if id < f.totalRequests {
		f.nextArrivalAt += f.traceGen.NextGapNS()
		f.lastArrival = f.nextArrivalAt
		f.eng.AtEvent(f.nextArrivalAt, evArrival, int64(id), 0, nil)
	} else {
		f.traceDone = true
	}
}

// Result is a DES run summary: the goroutine runtime's fleet.Result fields
// plus engine-level speed metrics and per-cluster stats.
type Result struct {
	fleet.Result
	// LatenciesNS holds every completed request's virtual latency, sorted
	// ascending — the cross-check currency against the goroutine fleet.
	LatenciesNS []float64
	// Events is the number of simulation events fired.
	Events int64
	// Lanes is the number of parallel lanes that actually ran: Config.Workers
	// when the sharded path engaged, 1 for serial runs — including parallel
	// attempts that fell back mid-run (the exactness escape hatch).
	Lanes int
	// VirtualNS is the simulated span (last completion or arrival).
	VirtualNS float64
	// WallSeconds is the wall-clock cost of the run; SpeedupVsWall is
	// virtual seconds simulated per wall second — the DES engine's reason
	// to exist (a TimeScale-1 goroutine fleet holds this at ~1).
	WallSeconds   float64
	SpeedupVsWall float64
	EventsPerSec  float64
	// AdmissionShed counts sheds decided by the Admit hook (a subset of
	// Result.Shed); ScaleActions counts autoscaler activate/deactivate
	// steps.
	AdmissionShed int64
	ScaleActions  int64
	// Chaos and resilience accounting: ChaosEvents counts schedule events
	// applied; Hedged counts backup dispatches launched, HedgeWasted the
	// copies that lost the first-wins race (or were cancelled in queue);
	// BrownoutShed counts arrivals shed by priority under backlog (a subset
	// of Result.Shed). Retried lives on the embedded fleet.Result.
	ChaosEvents  int64
	Hedged       int64
	HedgeWasted  int64
	BrownoutShed int64
	// Windows buckets the run into Config.StatsWindowNS spans of virtual
	// time (nil when windowing is off).
	Windows  []WindowStats
	Clusters []ClusterStats
}

// WindowStats is one fixed window of virtual time: arrivals bucketed by
// arrival time, completions by completion time, losses by decision time.
type WindowStats struct {
	StartNS    float64
	Arrived    int64
	Completed  int64
	Expired    int64
	Failed     int64
	Shed       int64
	Unroutable int64
}

// GoodputRPS is the window's completion rate in requests per virtual second.
func (w WindowStats) GoodputRPS(windowNS float64) float64 {
	if windowNS <= 0 {
		return 0
	}
	return float64(w.Completed) / windowNS * 1e9
}

// ClusterStats summarizes one cluster after a run.
type ClusterStats struct {
	Name       string
	Replicas   int
	Active     int
	Served     int64
	PeakQueued int64
	// AdmissionShed counts admission-hook rejections attributed to this
	// cluster (the cluster routing had picked before the hook refused).
	AdmissionShed int64
}

func (f *Fleet) compileResult(requests int, events int64, wall time.Duration) *Result {
	res := &Result{
		Result: fleet.Result{
			Offered:    requests,
			Completed:  int(f.completed.Load()),
			Shed:       int(f.shed.Load()),
			Unroutable: int(f.unroutable.Load()),
			Expired:    int(f.expired.Load()),
			Failed:     int(f.failed.Load()),
			Retried:    int(f.retried.Load()),
		},
		Events:        events,
		WallSeconds:   wall.Seconds(),
		AdmissionShed: f.admissionShed,
		ScaleActions:  f.scaleActions,
		ChaosEvents:   f.chaosEvents.Load(),
		Hedged:        f.hedged.Load(),
		HedgeWasted:   f.hedgeWasted.Load(),
		BrownoutShed:  f.brownoutShed.Load(),
		Windows:       f.windows,
	}
	var busy float64
	for _, r := range f.replicas {
		res.Batches += r.batches
		res.MeanBatch += float64(r.batchSum) // members for now; divided below
		busy += r.busyNS
	}
	if res.Batches > 0 {
		res.MeanBatch /= float64(res.Batches)
	} else {
		res.MeanBatch = 0
	}
	sort.Float64s(f.latencies)
	res.LatenciesNS = f.latencies
	if n := len(f.latencies); n > 0 {
		var sum float64
		for _, l := range f.latencies {
			sum += l
		}
		res.MeanNS = sum / float64(n)
		res.P50NS = percentile(f.latencies, 0.50)
		res.P95NS = percentile(f.latencies, 0.95)
		res.P99NS = percentile(f.latencies, 0.99)
		res.MaxNS = f.latencies[n-1]
	}
	res.MakespanNS = math.Max(f.makespan, f.lastArrival)
	res.VirtualNS = math.Max(res.MakespanNS, f.eng.Now())
	if res.MakespanNS > 0 {
		res.ThroughputRPS = float64(res.Completed) / res.MakespanNS * 1e9
		idle := 1 - busy/(float64(len(f.replicas))*res.MakespanNS)
		res.BubbleFraction = math.Min(1, math.Max(0, idle))
	}
	if res.WallSeconds > 0 {
		res.SpeedupVsWall = res.VirtualNS / 1e9 / res.WallSeconds
		res.EventsPerSec = float64(events) / res.WallSeconds
	}
	f.speedupGauge.set(res.SpeedupVsWall)
	for _, cl := range f.clusters {
		active := 0
		for _, r := range cl.replicas {
			if r.active {
				active++
			}
		}
		res.Clusters = append(res.Clusters, ClusterStats{
			Name:          cl.name,
			Replicas:      len(cl.replicas),
			Active:        active,
			Served:        cl.served,
			PeakQueued:    cl.peakQueued,
			AdmissionShed: cl.admissionShed,
		})
	}
	return res
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%d offered: %d completed, %d shed, %d expired; p50 %.4g ns, p99 %.4g ns, %.4g req/s; %d events (%.3gM ev/s), virtual/wall speedup %.3gx",
		r.Offered, r.Completed, r.Shed, r.Expired, r.P50NS, r.P99NS, r.ThroughputRPS,
		r.Events, r.EventsPerSec/1e6, r.SpeedupVsWall)
}

// percentile is the repo's nearest-rank convention (serving, fleet), so
// cross-checks compare like for like.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
