// Package des is a deterministic discrete-event virtual-time engine: a
// pooled event arena indexed by a cache-friendly 4-ary heap, a virtual clock
// read with Now(), and cancellable generation-checked event handles.
// Simulations built on it advance time by popping events instead of
// sleeping, so a model that would take minutes of wall-clock pacing under
// internal/fleet's TimeScale runs in however long its event handlers take —
// cluster-scale fleets (des.Fleet) simulate 100k replicas under
// ten-million-request traces in seconds.
//
// Hot path: events live in a free-list-reused arena (no per-event heap
// allocation), the heap stores plain (time, sequence, slot) values rather
// than pointers, and hot event types are scheduled as typed kinds
// (ScheduleEvent/AtEvent dispatching through a single handler) so the
// steady-state loop schedules zero closures. Closure events (Schedule/At
// with a func) remain available for cold paths and setup.
//
// Determinism: the engine has no hidden randomness and no wall-clock
// dependence. Events at equal virtual times fire in FIFO schedule order
// (a strictly increasing sequence number breaks ties), and handlers run on
// the single goroutine driving Run/Step, so a simulation fed identical
// inputs and seeds replays an identical event sequence — des.Fleet asserts
// this with a byte-identical event log. Seeds for independent random
// streams are derived with SubSeed.
//
// Time is float64 virtual nanoseconds, matching the repo's timing
// convention (sim.PipelineResult, fleet accounting): identical inputs
// produce identical floating-point schedules, so float time keys do not
// weaken determinism.
package des

import (
	"math"
	"sync/atomic"
)

// KindFunc is the reserved event kind for closure events scheduled with
// Schedule/At. Typed kinds passed to ScheduleEvent/AtEvent must be >= 1.
const KindFunc uint16 = 0

// Handler receives typed events when they fire. i, x, and p are the payload
// words given at schedule time; the event's virtual timestamp is Now().
type Handler func(kind uint16, i int64, x float64, p any)

// Handle identifies one scheduled event. The zero Handle is invalid (never
// Active, Cancel is a no-op), and a Handle goes stale the moment its event
// fires or is cancelled: the arena slot's generation counter advances on
// every release, so a stale Handle can never cancel or observe a later
// event that happens to reuse the slot.
type Handle struct {
	slot int32 // arena index + 1; 0 = invalid
	gen  uint32
}

// event is one arena slot. Slots are reused through a free list; gen counts
// releases so stale handles and stale heap nodes are detectable.
type event struct {
	fn   func() // closure payload (KindFunc only)
	p    any    // pointer payload for typed events
	x    float64
	i    int64
	gen  uint32
	kind uint16
	live bool
}

// heapNode is one 4-ary heap entry: the ordering key plus the arena slot it
// resolves to. Nodes are plain values — no pointers to chase during sift.
type heapNode struct {
	at  float64
	seq uint64
	idx int32
	gen uint32
}

// Engine is the event loop. The zero value is not usable; create with New.
// All scheduling and stepping must happen on one goroutine (the one driving
// Run/Step); Now, Events, and Pending are genuinely safe to read from other
// goroutines (each is a single atomic load) for metric exposition while a
// run is in flight.
type Engine struct {
	heap    []heapNode
	arena   []event
	free    []int32
	nowBits atomic.Uint64
	seq     uint64
	events  atomic.Int64
	pending atomic.Int64
	halted  bool
	handler Handler
}

// New returns an empty engine with the virtual clock at 0.
func New() *Engine { return &Engine{} }

// SetHandler installs the typed-event dispatcher. Must be set before any
// ScheduleEvent/AtEvent event fires.
func (e *Engine) SetHandler(h Handler) { e.handler = h }

// Now returns the current virtual time in nanoseconds: the timestamp of the
// most recently fired event (0 before any fires, or the RunUntil horizon
// after one returns). Safe to read concurrently with a run.
func (e *Engine) Now() float64 { return math.Float64frombits(e.nowBits.Load()) }

func (e *Engine) setNow(t float64) { e.nowBits.Store(math.Float64bits(t)) }

// Events returns the number of events fired so far. Safe to read
// concurrently with a run (metric exposition).
func (e *Engine) Events() int64 { return e.events.Load() }

// Pending returns the number of scheduled, uncancelled events. Safe to read
// concurrently with a run.
func (e *Engine) Pending() int { return int(e.pending.Load()) }

// Schedule fires fn delayNS virtual nanoseconds from Now. Non-positive or
// NaN delays clamp to zero — the event fires on the next Step, after events
// already queued at the current instant (FIFO tie order).
func (e *Engine) Schedule(delayNS float64, fn func()) Handle {
	if !(delayNS > 0) { // also catches NaN
		delayNS = 0
	}
	return e.At(e.Now()+delayNS, fn)
}

// At fires fn at virtual time atNS. Times in the past clamp to Now (virtual
// time never runs backwards); equal-time events fire in schedule order.
func (e *Engine) At(atNS float64, fn func()) Handle {
	if fn == nil {
		panic("des: At with nil event func")
	}
	return e.alloc(atNS, KindFunc, fn, 0, 0, nil)
}

// ScheduleEvent fires a typed event delayNS from Now, carrying the payload
// words (i, x, p) to the installed Handler. Typed events are the
// allocation-free hot path: no closure, no per-event heap object.
func (e *Engine) ScheduleEvent(delayNS float64, kind uint16, i int64, x float64, p any) Handle {
	if !(delayNS > 0) {
		delayNS = 0
	}
	return e.AtEvent(e.Now()+delayNS, kind, i, x, p)
}

// AtEvent fires a typed event at virtual time atNS (clamped to Now).
func (e *Engine) AtEvent(atNS float64, kind uint16, i int64, x float64, p any) Handle {
	if kind == KindFunc {
		panic("des: AtEvent with the reserved KindFunc kind")
	}
	return e.alloc(atNS, kind, nil, i, x, p)
}

// alloc claims an arena slot (reusing the free list) and pushes its heap
// node. Steady-state cost is zero allocations: both the arena and the heap
// retain their grown storage across events.
func (e *Engine) alloc(atNS float64, kind uint16, fn func(), i int64, x float64, p any) Handle {
	if now := e.Now(); !(atNS >= now) { // also catches NaN
		atNS = now
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, event{})
		idx = int32(len(e.arena) - 1)
	}
	ev := &e.arena[idx]
	ev.fn, ev.p, ev.x, ev.i, ev.kind, ev.live = fn, p, x, i, kind, true
	e.heap = append(e.heap, heapNode{at: atNS, seq: e.seq, idx: idx, gen: ev.gen})
	e.seq++
	e.up(len(e.heap) - 1)
	e.pending.Add(1)
	return Handle{slot: idx + 1, gen: ev.gen}
}

// release returns a slot to the free list, advancing its generation so
// every outstanding Handle and heap node for it goes stale.
func (e *Engine) release(idx int32) {
	ev := &e.arena[idx]
	ev.gen++
	ev.live = false
	ev.fn, ev.p = nil, nil // drop references for GC
	e.free = append(e.free, idx)
}

// valid reports whether a heap node still refers to the event it was pushed
// for (the slot has not been released since).
func (e *Engine) valid(n heapNode) bool {
	ev := &e.arena[n.idx]
	return ev.live && ev.gen == n.gen
}

// Active reports whether the event behind h is still pending (not fired,
// not cancelled). The zero Handle is never active.
func (e *Engine) Active(h Handle) bool {
	if h.slot <= 0 || int(h.slot) > len(e.arena) {
		return false
	}
	ev := &e.arena[h.slot-1]
	return ev.live && ev.gen == h.gen
}

// Cancel removes a pending event. It returns false when the event already
// fired, was already cancelled, or h is the zero Handle. Cancellation is
// lazy: the arena slot is released immediately (and may be reused), while
// the heap node is skipped when it surfaces — cancel is O(1).
func (e *Engine) Cancel(h Handle) bool {
	if !e.Active(h) {
		return false
	}
	e.release(h.slot - 1)
	e.pending.Add(-1)
	return true
}

// PeekAt returns the virtual time of the earliest pending event. ok is
// false when nothing is pending. Stale (cancelled) heap nodes surfacing at
// the root are discarded on the way.
func (e *Engine) PeekAt() (at float64, ok bool) {
	for len(e.heap) > 0 {
		n := e.heap[0]
		if !e.valid(n) {
			e.popHead()
			continue
		}
		return n.at, true
	}
	return 0, false
}

// Step pops and fires the earliest event, advancing the virtual clock to
// its timestamp. It returns false when no events are pending.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		n := e.heap[0]
		e.popHead()
		ev := &e.arena[n.idx]
		if !ev.live || ev.gen != n.gen {
			continue // lazily-cancelled node
		}
		kind, fn, i, x, p := ev.kind, ev.fn, ev.i, ev.x, ev.p
		e.release(n.idx)
		e.pending.Add(-1)
		e.setNow(n.at)
		e.events.Add(1)
		if kind == KindFunc {
			fn()
		} else {
			e.handler(kind, i, x, p)
		}
		return true
	}
	return false
}

// Run fires events in virtual-time order until none are pending (or Halt
// is called from a handler) and returns the number fired by this call.
func (e *Engine) Run() int64 {
	e.halted = false
	start := e.events.Load()
	for !e.halted && e.Step() {
	}
	return e.events.Load() - start
}

// RunUntil fires every event scheduled at or before horizonNS, then
// advances the clock to the horizon, and returns the number fired. Events
// scheduled beyond the horizon stay pending.
func (e *Engine) RunUntil(horizonNS float64) int64 {
	e.halted = false
	start := e.events.Load()
	for !e.halted {
		at, ok := e.PeekAt()
		if !ok || at > horizonNS {
			break
		}
		e.Step()
	}
	if e.Now() < horizonNS {
		e.setNow(horizonNS)
	}
	return e.events.Load() - start
}

// Halt stops the innermost Run/RunUntil after the current handler returns.
// Pending events stay scheduled; a subsequent Run resumes them.
func (e *Engine) Halt() { e.halted = true }

// less orders heap nodes by (time, schedule sequence) — the FIFO tie-break
// that makes equal-time event order deterministic.
func less(a, b heapNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// up sifts the node at index i toward the root of the 4-ary heap.
func (e *Engine) up(i int) {
	n := e.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !less(n, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		i = parent
	}
	e.heap[i] = n
}

// popHead removes the root, moving the last node into place and sifting it
// down. With four children per node the tree is half as deep as a binary
// heap, trading a wider min-of-children scan (over adjacent cache lines)
// for fewer levels — the classic d-ary win for pop-heavy workloads.
func (e *Engine) popHead() {
	last := len(e.heap) - 1
	n := e.heap[last]
	e.heap = e.heap[:last]
	if last == 0 {
		return
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= last {
			break
		}
		min := c
		end := c + 4
		if end > last {
			end = last
		}
		for j := c + 1; j < end; j++ {
			if less(e.heap[j], e.heap[min]) {
				min = j
			}
		}
		if !less(e.heap[min], n) {
			break
		}
		e.heap[i] = e.heap[min]
		i = min
	}
	e.heap[i] = n
}

// SubSeed derives a stable seed for a named random stream from a base seed
// (FNV-1a over the name, XORed in), so one user-facing seed can drive many
// independent deterministic streams — the same idiom internal/fleet uses
// for per-replica fault maps.
func SubSeed(seed int64, name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	s := seed ^ int64(h)
	if s == 0 { // rand.NewSource(0) is a degenerate-looking stream; avoid it
		s = int64(h)
	}
	return s
}
