// Package des is a deterministic discrete-event virtual-time engine: a
// single binary event heap keyed on (virtual time, schedule order), a
// virtual clock read with Now(), and cancellable timers. Simulations built
// on it advance time by popping events instead of sleeping, so a model that
// would take minutes of wall-clock pacing under internal/fleet's TimeScale
// runs in however long its event handlers take — cluster-scale fleets
// (des.Fleet) simulate 10k replicas under million-request traces in seconds.
//
// Determinism: the engine has no hidden randomness and no wall-clock
// dependence. Events at equal virtual times fire in FIFO schedule order
// (a strictly increasing sequence number breaks ties), and handlers run on
// the single goroutine driving Run/Step, so a simulation fed identical
// inputs and seeds replays an identical event sequence — des.Fleet asserts
// this with a byte-identical event log. Seeds for independent random
// streams are derived with SubSeed.
//
// Time is float64 virtual nanoseconds, matching the repo's timing
// convention (sim.PipelineResult, fleet accounting): identical inputs
// produce identical floating-point schedules, so float time keys do not
// weaken determinism.
package des

import (
	"sync/atomic"
)

// Timer is a handle to one scheduled event. It is single-goroutine like the
// engine: Cancel must be called from the goroutine driving the engine
// (typically from inside another event handler).
type Timer struct {
	at  float64
	seq uint64
	fn  func()
	eng *Engine
	idx int // position in the heap; -1 once fired, cancelled, or popped
}

// At returns the virtual time the timer is scheduled for.
func (t *Timer) At() float64 { return t.at }

// Active reports whether the timer is still pending (not fired, not
// cancelled).
func (t *Timer) Active() bool { return t.idx >= 0 }

// Cancel removes a pending timer from the heap. It returns false when the
// timer already fired or was already cancelled.
func (t *Timer) Cancel() bool {
	if t.idx < 0 {
		return false
	}
	t.eng.remove(t.idx)
	return true
}

// Engine is the event loop. The zero value is not usable; create with New.
// All methods must be called from one goroutine (the one driving Run/Step);
// only Now, Events, and Pending are safe to read concurrently (Events via
// an atomic, for metric exposition while a run is in flight).
type Engine struct {
	heap   []*Timer
	now    float64
	seq    uint64
	events atomic.Int64
	halted bool
}

// New returns an empty engine with the virtual clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in nanoseconds: the timestamp of the
// most recently fired event (0 before any fires, or the RunUntil horizon
// after one returns).
func (e *Engine) Now() float64 { return e.now }

// Events returns the number of events fired so far. It is safe to read
// concurrently with a run (metric exposition).
func (e *Engine) Events() int64 { return e.events.Load() }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule fires fn delayNS virtual nanoseconds from Now. Non-positive or
// NaN delays clamp to zero — the event fires on the next Step, after events
// already queued at the current instant (FIFO tie order).
func (e *Engine) Schedule(delayNS float64, fn func()) *Timer {
	if !(delayNS > 0) { // also catches NaN
		delayNS = 0
	}
	return e.At(e.now+delayNS, fn)
}

// At fires fn at virtual time atNS. Times in the past clamp to Now (virtual
// time never runs backwards); equal-time events fire in schedule order.
func (e *Engine) At(atNS float64, fn func()) *Timer {
	if fn == nil {
		panic("des: At with nil event func")
	}
	if !(atNS >= e.now) { // also catches NaN
		atNS = e.now
	}
	t := &Timer{at: atNS, seq: e.seq, fn: fn, eng: e, idx: len(e.heap)}
	e.seq++
	e.heap = append(e.heap, t)
	e.up(t.idx)
	return t
}

// Step pops and fires the earliest event, advancing the virtual clock to
// its timestamp. It returns false when no events are pending.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	t := e.heap[0]
	e.remove(0)
	e.now = t.at
	e.events.Add(1)
	t.fn()
	return true
}

// Run fires events in virtual-time order until the heap is empty (or Halt
// is called from a handler) and returns the number fired by this call.
func (e *Engine) Run() int64 {
	e.halted = false
	start := e.events.Load()
	for !e.halted && e.Step() {
	}
	return e.events.Load() - start
}

// RunUntil fires every event scheduled at or before horizonNS, then
// advances the clock to the horizon, and returns the number fired. Events
// scheduled beyond the horizon stay pending.
func (e *Engine) RunUntil(horizonNS float64) int64 {
	e.halted = false
	start := e.events.Load()
	for !e.halted && len(e.heap) > 0 && e.heap[0].at <= horizonNS {
		e.Step()
	}
	if e.now < horizonNS {
		e.now = horizonNS
	}
	return e.events.Load() - start
}

// Halt stops the innermost Run/RunUntil after the current handler returns.
// Pending events stay scheduled; a subsequent Run resumes them.
func (e *Engine) Halt() { e.halted = true }

// less orders the heap by (time, schedule sequence) — the FIFO tie-break
// that makes equal-time event order deterministic.
func (e *Engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].idx = i
	e.heap[j].idx = j
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			return
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && e.less(l, min) {
			min = l
		}
		if r < n && e.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		e.swap(i, min)
		i = min
	}
}

// remove detaches the timer at heap index i, restoring the heap invariant.
func (e *Engine) remove(i int) {
	t := e.heap[i]
	last := len(e.heap) - 1
	if i != last {
		e.swap(i, last)
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i < last {
		e.up(i)
		e.down(i)
	}
	t.idx = -1
}

// SubSeed derives a stable seed for a named random stream from a base seed
// (FNV-1a over the name, XORed in), so one user-facing seed can drive many
// independent deterministic streams — the same idiom internal/fleet uses
// for per-replica fault maps.
func SubSeed(seed int64, name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	s := seed ^ int64(h)
	if s == 0 { // rand.NewSource(0) is a degenerate-looking stream; avoid it
		s = int64(h)
	}
	return s
}
