package des

import "math"

// Autoscaling and admission-control hooks. Both observe the same O(1)
// Signal; the scaler runs on the virtual-time control loop (every
// Config.ControlPeriodNS), the admitter runs per arrival before dispatch.
// Policies are plain deterministic functions of the signal, so runs stay
// replayable.

// Signal is the fleet-wide state a Scaler or Admitter decides on.
type Signal struct {
	// NowNS is the virtual time of the observation.
	NowNS float64
	// Active and Total count activated vs provisioned replicas.
	Active, Total int
	// Queued is the fleet-wide admission backlog; InFlight counts batch
	// members currently occupying pipelines.
	Queued, InFlight int
	// ArrivalRate is the arrival rate measured over the last control
	// period in requests per virtual second (0 before the first tick, and
	// always 0 when no Scaler is configured — the control loop is what
	// measures it).
	ArrivalRate float64
	// CapacityRPS is the aggregate service capacity of active healthy
	// replicas.
	CapacityRPS float64
}

// Utilization is ArrivalRate over CapacityRPS (0 when capacity is 0).
func (s Signal) Utilization() float64 {
	if s.CapacityRPS <= 0 {
		return 0
	}
	return s.ArrivalRate / s.CapacityRPS
}

// Scaler decides the desired number of active replicas each control tick.
// The fleet clamps the decision to [1, Total] and applies it by activating
// replicas in construction order / deactivating from the end (deactivated
// replicas drain their queues but take no new traffic).
type Scaler interface {
	Decide(sig Signal) int
}

// TargetUtilization scales the active set so measured utilization tracks
// Target: desired = ceil(active · utilization / Target), clamped to
// [Min, Max] (Max 0 means no cap). With Target 0.7, a burst that pushes
// utilization to 1.4 doubles the active set on the next tick.
type TargetUtilization struct {
	Target   float64
	Min, Max int
}

// Decide implements Scaler.
func (t TargetUtilization) Decide(sig Signal) int {
	target := t.Target
	if target <= 0 || target > 1 {
		target = 0.7
	}
	desired := sig.Active
	if u := sig.Utilization(); u > 0 {
		desired = int(math.Ceil(float64(sig.Active) * u / target))
	}
	if t.Min > 0 && desired < t.Min {
		desired = t.Min
	}
	if t.Max > 0 && desired > t.Max {
		desired = t.Max
	}
	return desired
}

// Admitter gates each arrival before dispatch; a false verdict sheds the
// request (admission control).
type Admitter interface {
	Admit(sig Signal) bool
}

// QueueCap admits while the fleet-wide backlog stays under
// MaxQueuedPerActive waiting requests per active replica — a load-shedding
// valve that keeps queue delay bounded under heavy-tail bursts.
type QueueCap struct {
	MaxQueuedPerActive float64
}

// Admit implements Admitter.
func (q QueueCap) Admit(sig Signal) bool {
	if q.MaxQueuedPerActive <= 0 || sig.Active == 0 {
		return true
	}
	return float64(sig.Queued) <= q.MaxQueuedPerActive*float64(sig.Active)
}

// signal builds the current Signal from the incrementally maintained
// aggregates (O(1) per call).
func (f *Fleet) signal() Signal {
	return Signal{
		NowNS:       f.eng.Now(),
		Active:      f.active,
		Total:       len(f.replicas),
		Queued:      f.queued,
		InFlight:    f.inFlight,
		ArrivalRate: f.arrivalRate,
		CapacityRPS: f.capacityRPS,
	}
}

// controlTick is the autoscaling control loop: measure the last period's
// arrival rate, ask the scaler for a desired active count, and apply it.
// The loop re-arms while the trace is still arriving or work remains, so
// the event heap drains (and Run returns) once the system is idle.
func (f *Fleet) controlTick() {
	f.arrivalRate = float64(f.arrivalsTick) / f.cfg.ControlPeriodNS * 1e9
	f.arrivalsTick = 0
	desired := f.cfg.Scaler.Decide(f.signal())
	if desired < 1 {
		desired = 1
	}
	if desired > len(f.replicas) {
		desired = len(f.replicas)
	}
	if desired != f.active {
		f.setActive(desired)
		if f.logging {
			f.logf("C t=%.3f active=%d rate=%.0f\n", f.eng.Now(), f.active, f.arrivalRate)
		}
	}
	if !f.traceDone || f.queued+f.inFlight > 0 {
		f.eng.ScheduleEvent(f.cfg.ControlPeriodNS, evControl, 0, 0, nil)
	}
}

// setActive grows the active set from the front of the provisioned pool
// and shrinks it from the back, keeping cluster dispatch counts and the
// O(1) signal aggregates current.
func (f *Fleet) setActive(desired int) {
	if desired > f.active {
		for _, r := range f.replicas {
			if f.active == desired {
				break
			}
			if !r.active {
				r.active = true
				f.active++
				f.scaleActions++
				if r.healthy() {
					r.cl.dispatchable++
					f.capacityRPS += r.capacityRPS
				}
			}
		}
	} else {
		for i := len(f.replicas) - 1; i >= 0 && f.active > desired; i-- {
			r := f.replicas[i]
			if r.active {
				r.active = false
				f.active--
				f.scaleActions++
				if r.healthy() {
					r.cl.dispatchable--
					f.capacityRPS -= r.capacityRPS
				}
			}
		}
	}
	f.recountSignal()
}
