package trace

import (
	"math"
	"math/rand"
	"testing"
)

// gaps draws n gaps from a fresh generator.
func gaps(t *testing.T, name string, rate float64, seed int64, n int) []float64 {
	t.Helper()
	g, err := Parse(name, rate, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = g.NextGapNS()
		if !(out[i] > 0) || math.IsInf(out[i], 0) {
			t.Fatalf("%s gap %d = %v", name, i, out[i])
		}
	}
	return out
}

// Same seed, same trace — the determinism contract every DES replay rests on.
func TestDeterministicPerSeed(t *testing.T) {
	for _, name := range Names {
		a := gaps(t, name, 1e6, 7, 2000)
		b := gaps(t, name, 1e6, 7, 2000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: gap %d differs across replays: %v vs %v", name, i, a[i], b[i])
			}
		}
		c := gaps(t, name, 1e6, 8, 2000)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced an identical trace", name)
		}
	}
}

// Every generator is normalized to the requested mean rate. Bursty is
// built with a short dwell here so the sample spans many phases (the Parse
// default's 50 ms phases mix too slowly for a 200k-sample mean), and the
// infinite-variance Pareto gets a wider band.
func TestMeanRate(t *testing.T) {
	const rate, n = 1e6, 200000
	cases := []struct {
		gen Generator
		tol float64
	}{
		{Poisson(rate, 3), 0.05},
		{Diurnal(rate, 0.7, 10e9, 3), 0.05},
		{Bursty(rate, 1.8, 5e4, 3), 0.05},
		{Pareto(rate, 1.5, 3), 0.25},
	}
	for _, c := range cases {
		var sum float64
		for i := 0; i < n; i++ {
			sum += c.gen.NextGapNS()
		}
		got := float64(n) / sum * 1e9
		if math.Abs(got-rate)/rate > c.tol {
			t.Errorf("%s: empirical rate %.0f, want %.0f ± %.0f%%", c.gen.Name(), got, rate, 100*c.tol)
		}
	}
}

// Bursty and Pareto arrivals are overdispersed relative to Poisson: counts
// in fixed windows have a variance-to-mean ratio (index of dispersion)
// well above 1, which is what stresses queues and admission control.
func TestDispersionOrdering(t *testing.T) {
	const rate = 1e6
	dispersion := func(name string) float64 {
		g, err := Parse(name, rate, 5)
		if err != nil {
			t.Fatal(err)
		}
		// Count arrivals in 2000 windows of 100 expected arrivals each.
		const windows, windowNS = 2000, 100 * 1000.0
		counts := make([]float64, windows)
		now, w := 0.0, 0
		for w < windows {
			now += g.NextGapNS()
			w = int(now / windowNS)
			if w < windows {
				counts[w]++
			}
		}
		var mean float64
		for _, c := range counts {
			mean += c
		}
		mean /= windows
		var varc float64
		for _, c := range counts {
			varc += (c - mean) * (c - mean)
		}
		varc /= windows
		return varc / mean
	}
	poisson := dispersion("poisson")
	if poisson < 0.7 || poisson > 1.3 {
		t.Fatalf("poisson index of dispersion %.2f, want ~1", poisson)
	}
	for _, name := range []string{"bursty", "pareto"} {
		if d := dispersion(name); d < 1.5 {
			t.Errorf("%s index of dispersion %.2f, want overdispersed (> 1.5)", name, d)
		}
	}
}

// The diurnal process actually modulates: the peak-phase window rate beats
// the trough-phase rate by roughly (1+amp)/(1-amp).
func TestDiurnalModulation(t *testing.T) {
	const rate, period = 1e6, 10e9
	g := Diurnal(rate, 0.7, period, 9)
	// First quarter of the cycle is near peak, third quarter near trough.
	var peak, trough int
	now := 0.0
	for now < 3*period {
		now += g.NextGapNS()
		phase := math.Mod(now, period) / period
		switch {
		case phase < 0.5:
			peak++
		default:
			trough++
		}
	}
	ratio := float64(peak) / float64(trough)
	if ratio < 1.5 {
		t.Fatalf("peak/trough arrival ratio %.2f, want clear modulation (> 1.5)", ratio)
	}
}

func TestParseRejects(t *testing.T) {
	if _, err := Parse("uniform", 1e6, 1); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := Parse("poisson", 0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
}

// Poisson gaps match the serving.Serve arrival construction bit for bit:
// rand.New(NewSource(seed)).ExpFloat64() * meanGap. This identity is what
// the DES-vs-serving cross-check rides on.
func TestPoissonMatchesServingConvention(t *testing.T) {
	const rate = 2e6
	g := Poisson(rate, 42)
	rng := rand.New(rand.NewSource(42))
	meanGap := 1e9 / rate
	for i := 0; i < 100; i++ {
		want := rng.ExpFloat64() * meanGap
		if got := g.NextGapNS(); got != want {
			t.Fatalf("gap %d: %v, want %v", i, got, want)
		}
	}
}
