package des

// Performance contracts for the pooled typed-event engine. Three properties
// are load-bearing enough to assert in the tier-1 suite:
//
//  1. The steady-state fleet loop is allocation-free per event. Typed events
//     carry their operands in the pooled arena, logf call sites are gated
//     behind f.logging (varargs boxing alone used to cost ~6 allocs/event),
//     and the scratch buffers amortize — so a 100k-request run must stay
//     under a small allocs/event ceiling regardless of GOGC timing.
//  2. Engine.Now/Events/Pending are safe to read from other goroutines
//     while a run is in flight (metrics exposition does exactly that); the
//     hammer test makes `go test -race` the enforcement.
//  3. The 4-ary pooled heap with generation-checked cancellation pops in
//     exactly (time, FIFO-seq) order — fuzzed against a sorted-slice model.

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	"autohet/internal/des/trace"
)

// steadyScenario is the fixed workload the allocation ceiling and the
// throughput benchmark are measured on: 100 replicas in 8 clusters under a
// bursty trace at ~0.7 utilization, queue-aware policies both levels.
func steadyScenario(tb testing.TB, requests int) (*Fleet, trace.Generator) {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.Policy = "jsq"
	cfg.ClusterPolicy = "jsq"
	cfg.Clusters = 8
	cfg.QueueDepth = 64
	f, err := NewFleet(cfg, homogeneous(100, 5e7, 1e7)...)
	if err != nil {
		tb.Fatal(err)
	}
	return f, trace.Bursty(1000*0.7*100/5, 1.8, 50e6, 7)
}

// TestSteadyStateAllocsPerEvent pins the tentpole's allocation contract:
// ~0 allocs/event in steady state. The ceiling of 0.05 leaves room for the
// amortized growth of latencies/windows/queue rings (measured: ~0.002).
func TestSteadyStateAllocsPerEvent(t *testing.T) {
	f, gen := steadyScenario(t, 100000)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	res, err := f.RunTrace(gen, 100000, 0)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(res.Events)
	t.Logf("events=%d mallocs=%d allocs/event=%.4f", res.Events, m1.Mallocs-m0.Mallocs, allocs)
	if allocs > 0.05 {
		t.Fatalf("steady-state loop allocates: %.4f allocs/event (ceiling 0.05)", allocs)
	}
}

// BenchmarkFleetSteadyState is the end-to-end hot path: full dispatch +
// batching + service recurrence, reported in events/sec.
func BenchmarkFleetSteadyState(b *testing.B) {
	const requests = 20000
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		f, gen := steadyScenario(b, requests)
		res, err := f.RunTrace(gen, requests, 0)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineRaw is the bare arena/heap cycle: schedule one typed event,
// pop it, re-arm — the floor every fleet event pays.
func BenchmarkEngineRaw(b *testing.B) {
	e := New()
	remaining := b.N
	lcg := uint64(0x9e3779b97f4a7c15)
	e.SetHandler(func(kind uint16, i int64, x float64, p any) {
		if remaining == 0 {
			return
		}
		remaining--
		lcg = lcg*6364136223846793005 + 1442695040888963407
		e.ScheduleEvent(float64(lcg>>40), 1, 0, 0, nil)
	})
	b.ReportAllocs()
	b.ResetTimer()
	// Seed a small pending set so the heap has real depth to sift.
	for i := 0; i < 64 && remaining > 0; i++ {
		remaining--
		e.ScheduleEvent(float64(i), 1, 0, 0, nil)
	}
	e.Run()
	b.ReportMetric(float64(e.Events())/b.Elapsed().Seconds(), "events/sec")
}

// TestEngineConcurrentReads hammers the read-side API from other goroutines
// while the event loop runs. Run under -race this enforces that Now, Events
// and Pending are genuinely atomic — the contract metrics exposition relies
// on when it samples a fleet mid-run.
func TestEngineConcurrentReads(t *testing.T) {
	e := New()
	const total = 200000
	fired := 0
	e.SetHandler(func(kind uint16, i int64, x float64, p any) {
		fired++
		if fired < total {
			e.ScheduleEvent(1+float64(fired%17), 1, 0, 0, nil)
		}
	})
	e.ScheduleEvent(1, 1, 0, 0, nil)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastNow float64
			var lastEvents int64
			for {
				select {
				case <-done:
					return
				default:
				}
				if now := e.Now(); now < lastNow {
					t.Errorf("Now went backwards: %g after %g", now, lastNow)
					return
				} else {
					lastNow = now
				}
				if ev := e.Events(); ev < lastEvents {
					t.Errorf("Events went backwards: %d after %d", ev, lastEvents)
					return
				} else {
					lastEvents = ev
				}
				_ = e.Pending()
			}
		}()
	}
	e.Run()
	close(done)
	wg.Wait()
	if fired != total {
		t.Fatalf("fired %d events, want %d", fired, total)
	}
}

// FuzzEventHeap drives the pooled 4-ary heap + free-list + generation
// machinery with arbitrary schedule/cancel sequences and checks the pop
// order against a naive sorted-slice model: stable sort by time, FIFO among
// ties. Cancels recycle arena slots mid-sequence, so stale-handle reuse is
// exercised on every input that mixes the two ops.
func FuzzEventHeap(f *testing.F) {
	f.Add([]byte{0, 10, 1, 10, 2, 5, 3, 0, 0, 7}, int64(1))
	f.Add([]byte{0, 1, 0, 1, 0, 1, 3, 0, 3, 0}, int64(42))
	f.Add([]byte{2, 255, 1, 0, 3, 3, 2, 128, 0, 128}, int64(7))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		type ref struct {
			at float64
			id int64
		}
		e := New()
		var got []int64
		e.SetHandler(func(kind uint16, i int64, x float64, p any) {
			got = append(got, i)
		})
		rng := rand.New(rand.NewSource(seed))
		var model []ref
		handles := map[int64]Handle{}
		var nextID int64
		for k := 0; k+1 < len(data); k += 2 {
			if data[k]%4 == 3 {
				// Cancel a random live event (no-op on an empty model).
				if len(model) > 0 {
					j := rng.Intn(len(model))
					victim := model[j]
					if !e.Cancel(handles[victim.id]) {
						t.Fatalf("cancel of live event %d failed", victim.id)
					}
					delete(handles, victim.id)
					model = append(model[:j], model[j+1:]...)
				}
				continue
			}
			// Coarse times (half-ns grid over a 128ns span) force plenty of
			// exact ties, which is where FIFO order earns its keep.
			at := float64(data[k+1]) * 0.5
			handles[nextID] = e.AtEvent(at, 1, nextID, 0, nil)
			model = append(model, ref{at: at, id: nextID})
			nextID++
		}
		e.Run()
		sort.SliceStable(model, func(a, b int) bool { return model[a].at < model[b].at })
		if len(got) != len(model) {
			t.Fatalf("popped %d events, model has %d", len(got), len(model))
		}
		for i := range model {
			if got[i] != model[i].id {
				t.Fatalf("pop %d: got event %d, model says %d", i, got[i], model[i].id)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("%d events still pending after drain", e.Pending())
		}
	})
}
