package des

import (
	"autohet/internal/chaos"
	"autohet/internal/obs"
)

// Observability. The simulation loop is single-goroutine and allocation-
// sensitive, so nothing on the event path records into the registry
// directly: counters publish the fleet's existing atomics through
// CounterFunc (zero cost until a scrape), queue depths read the per-cluster
// atomic through GaugeFunc, and the speedup gauge is set once per run.
// Rebinding semantics (RegisterCounter/CounterFunc replace callbacks on
// re-registration) mean each new Fleet re-claims the series, matching the
// goroutine runtime's convention.

// gaugeHandle is a nil-safe wrapper so compileResult can set the speedup
// gauge without caring whether metrics registration happened.
type gaugeHandle struct{ g *obs.Gauge }

func (h *gaugeHandle) set(v float64) {
	if h == nil || h.g == nil {
		return
	}
	h.g.Set(v)
}

func (f *Fleet) registerMetrics() {
	reg := obs.Default
	reg.CounterFunc("autohet_des_events_total",
		"Simulation events fired by the DES engine.",
		f.eng.Events)
	reg.CounterFunc(`autohet_des_requests_total{outcome="completed"}`,
		"DES fleet requests by outcome.",
		f.completed.Load)
	reg.CounterFunc(`autohet_des_requests_total{outcome="shed"}`,
		"DES fleet requests by outcome.",
		f.shed.Load)
	reg.CounterFunc(`autohet_des_requests_total{outcome="expired"}`,
		"DES fleet requests by outcome.",
		f.expired.Load)
	reg.CounterFunc(`autohet_des_requests_total{outcome="unroutable"}`,
		"DES fleet requests by outcome.",
		f.unroutable.Load)
	reg.CounterFunc(`autohet_des_requests_total{outcome="failed"}`,
		"DES fleet requests by outcome.",
		f.failed.Load)
	reg.CounterFunc(`autohet_chaos_events_total{engine="des"}`,
		"Chaos fault events applied to the DES fleet.",
		f.chaosEvents.Load)
	reg.CounterFunc(`autohet_chaos_actions_total{action="retry"}`,
		"Resilience actions taken by the DES fleet.",
		f.retried.Load)
	reg.CounterFunc(`autohet_chaos_actions_total{action="hedge"}`,
		"Resilience actions taken by the DES fleet.",
		f.hedged.Load)
	reg.CounterFunc(`autohet_chaos_actions_total{action="hedge_wasted"}`,
		"Resilience actions taken by the DES fleet.",
		f.hedgeWasted.Load)
	reg.CounterFunc(`autohet_chaos_actions_total{action="brownout_shed"}`,
		"Resilience actions taken by the DES fleet.",
		f.brownoutShed.Load)
	if f.breakersOn {
		reg.GaugeFunc("autohet_chaos_breakers_open",
			"DES replicas whose circuit breaker is currently open.",
			func() float64 {
				open := 0.0
				for _, r := range f.replicas {
					if r.breaker != nil && r.breaker.State() == chaos.BreakerOpen {
						open++
					}
				}
				return open
			})
	}
	f.speedupGauge = &gaugeHandle{g: reg.Gauge("autohet_des_speedup",
		"Virtual seconds simulated per wall second in the last DES run.")}
	for _, cl := range f.clusters {
		cl := cl
		reg.GaugeFunc(`autohet_des_cluster_queue_depth{cluster="`+cl.name+`"}`,
			"Queued requests per DES cluster.",
			func() float64 { return float64(cl.queued.Load()) })
	}
}
