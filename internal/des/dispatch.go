package des

import (
	"fmt"

	"autohet/internal/fleet"
)

// Two-level dispatch: the cluster policy picks a cluster among those with
// at least one dispatchable replica, the replica policy picks within it,
// and a full queue falls back to scanning the cluster, then the fleet —
// mirroring the goroutine runtime's Submit/enqueue fallback. On the common
// all-dispatchable path the picks are pure index arithmetic (no per-arrival
// allocation); only fleets with degraded or deactivated replicas pay for a
// filtered candidate scan (into reusable scratch buffers).

// arrive admits and dispatches one request at the current virtual time.
// Order: brownout (cheapest — priority shedding under backlog), cluster
// pick, admission hook (after the pick so the rejection attributes to the
// cluster it would have loaded), replica pick with breaker filtering, then
// queue-full fallback. The cluster pick moving ahead of the Admit hook only
// changes behavior for admission-shed requests under a state-consuming
// cluster policy (round robin / power-of-two) — runs stay deterministic.
func (f *Fleet) arrive(id int, arrival, budget float64) {
	f.submitted.Add(1)
	f.arrivalsTick++
	f.window(arrival).Arrived++
	if f.logging {
		f.logf("A t=%.3f id=%d\n", arrival, id)
	}
	if bp := f.res.Brownout; bp != nil && bp.Shed(bp.Priority(id), f.queued, f.active) {
		f.brownoutShed.Add(1)
		f.shedReq(id, "brownout")
		return
	}
	cl := f.pickCluster()
	if cl == nil {
		f.shedReq(id, "noreplica")
		return
	}
	if f.cfg.Admit != nil && !f.cfg.Admit.Admit(f.signal()) {
		f.admissionShed++
		cl.admissionShed++
		f.shedReq(id, "admit")
		return
	}
	var r *simReplica
	if f.cfg.Shards > 1 {
		// Sharded admission dispatches into stage 0 only; the stage-hop
		// events route the later stages.
		r = f.pickStage(0)
	} else {
		r = f.pickInCluster(cl)
	}
	if r == nil && f.breakersOn {
		// Breakers filtered every candidate the policy offered; any
		// routable replica beats shedding.
		r = f.anyRoutable()
	}
	if r == nil {
		f.shedReq(id, "noreplica")
		return
	}
	if r.queue.n >= f.cfg.QueueDepth {
		if f.cfg.Shards > 1 {
			r = f.stageFallback(0, r)
		} else {
			r = f.fallback(r)
		}
		if r == nil {
			f.shedReq(id, "full")
			return
		}
	}
	st := f.newState(id, arrival, budget)
	if st != nil {
		st.primary = r
		st.attempts = 1
		st.live = 1
	}
	f.route(r)
	f.enqueue(r, simReq{id: id, arrival: arrival, budget: budget, enqueued: arrival, st: st})
	f.armHedge(st)
}

// shedReq refuses one arrival. The "noreplica" reason is an outage signal
// (no healthy routable replica) and counts as Unroutable; everything else
// is overload backpressure and counts as Shed — chaos experiments need the
// two apart to tell blast radius from load shedding.
func (f *Fleet) shedReq(id int, reason string) {
	now := f.eng.Now()
	if reason == "noreplica" {
		f.unroutable.Add(1)
		f.window(now).Unroutable++
	} else {
		f.shed.Add(1)
		f.window(now).Shed++
	}
	if f.logging {
		f.logf("H t=%.3f id=%d reason=%s\n", now, id, reason)
	}
}

// enqueue places the request on r's admission queue and starts service if
// the replica is idle.
func (f *Fleet) enqueue(r *simReplica, rq simReq) {
	r.queue.push(rq)
	f.queued++
	if q := r.cl.queued.Add(1); q > r.cl.peakQueued {
		r.cl.peakQueued = q
	}
	if f.logging {
		f.logf("D t=%.3f id=%d r=%s q=%d\n", f.eng.Now(), rq.id, r.name, r.queue.n)
	}
	if r.collecting {
		// A collecting batch fills early when the queue reaches MaxBatch.
		if r.queue.n >= f.cfg.MaxBatch {
			f.eng.Cancel(r.collect)
			r.collecting = false
			f.executeBatch(r, f.cfg.MaxBatch, false)
			f.maybeService(r)
		}
		return
	}
	f.maybeService(r)
}

// pickReplica applies the two-level policy. Returns nil when no
// dispatchable replica exists.
func (f *Fleet) pickReplica() *simReplica {
	cl := f.pickCluster()
	if cl == nil {
		return nil
	}
	return f.pickInCluster(cl)
}

// pickCluster selects among clusters with dispatchable replicas. A
// single-cluster fleet short-circuits without consuming policy state, so
// flat fleets consume the same sampler stream as the goroutine runtime.
func (f *Fleet) pickCluster() *simCluster {
	if len(f.clusters) == 1 {
		cl := f.clusters[0]
		if cl.dispatchable == 0 {
			return nil
		}
		return cl
	}
	cands := f.clusterBuf[:0]
	for _, cl := range f.clusters {
		if cl.dispatchable > 0 {
			cands = append(cands, cl)
		}
	}
	f.clusterBuf = cands[:0] // retain grown storage
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	switch f.cfg.ClusterPolicy {
	case fleet.LeastOutstanding:
		best, bestScore := cands[0], cands[0].loadScore()
		for _, cl := range cands[1:] {
			if s := cl.loadScore(); s < bestScore {
				best, bestScore = cl, s
			}
		}
		return best
	case fleet.JoinShortestQueue:
		best, bestScore := cands[0], cands[0].queueScore()
		for _, cl := range cands[1:] {
			if s := cl.queueScore(); s < bestScore {
				best, bestScore = cl, s
			}
		}
		return best
	case fleet.PowerOfTwo:
		i := f.rng.Intn(len(cands))
		j := f.rng.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		if b.queueScore() < a.queueScore() {
			return b
		}
		return a
	default: // RoundRobin
		f.clusterRR++
		return cands[f.clusterRR%uint64(len(cands))]
	}
}

// pickInCluster applies the replica policy inside cl, mirroring the
// goroutine runtime's pick: the single-candidate case short-circuits
// without touching policy state, and round robin / power-of-two index over
// the dispatchable set in construction order.
func (f *Fleet) pickInCluster(cl *simCluster) *simReplica {
	// Fast path: every replica dispatchable — index arithmetic only.
	// Breakers force the filtered path: an open breaker must drop its
	// replica from the candidate set even when all are dispatchable.
	if !f.breakersOn && cl.dispatchable == len(cl.replicas) {
		return f.pickAmong(&cl.rrNext, cl.replicas)
	}
	now := f.eng.Now()
	cands := f.replicaBuf[:0]
	for _, r := range cl.replicas {
		if r.dispatchable() && (!f.breakersOn || r.canRoute(now)) {
			cands = append(cands, r)
		}
	}
	f.replicaBuf = cands[:0]
	if len(cands) == 0 {
		return nil
	}
	return f.pickAmong(&cl.rrNext, cands)
}

// stageReplicas returns the replicas serving pipeline stage s.
func (f *Fleet) stageReplicas(s int) []*simReplica {
	return f.replicas[f.stageLo[s]:f.stageLo[s+1]]
}

// stageTransfer is the priced activation handoff between stages s and s+1.
func (f *Fleet) stageTransfer(s int) float64 {
	if f.cfg.StageTransferNS == nil {
		return 0
	}
	return f.cfg.StageTransferNS[s]
}

// pickStage applies the replica policy over stage s's dispatchable replicas,
// with a per-stage round-robin cursor — the DES mirror of the goroutine
// fleet's stage-scoped pick.
func (f *Fleet) pickStage(s int) *simReplica {
	cands := f.replicaBuf[:0]
	for _, r := range f.stageReplicas(s) {
		if r.dispatchable() {
			cands = append(cands, r)
		}
	}
	f.replicaBuf = cands[:0]
	if len(cands) == 0 {
		return nil
	}
	return f.pickAmong(&f.stageRR[s], cands)
}

// stageFallback scans stage s for any dispatchable replica with queue space
// after the picked one was full. Unlike the unsharded fallback it never
// leaves the stage: a request cannot skip ahead in the pipeline.
func (f *Fleet) stageFallback(s int, full *simReplica) *simReplica {
	for _, r := range f.stageReplicas(s) {
		if r != full && r.dispatchable() && r.queue.n < f.cfg.QueueDepth {
			return r
		}
	}
	return nil
}

// onStageHop lands one request at stage s after its priced transfer from
// stage s−1 (the event fires at the hop-arrival instant, which becomes the
// queue-join time; arrival stays the original admission time so budgets and
// latency span the whole chain). A dead end — no dispatchable stage replica
// with queue space — fails the request: it was admitted long ago, so this is
// a delivery failure, not backpressure shedding.
func (f *Fleet) onStageHop(id, s int, arrival float64) {
	r := f.pickStage(s)
	if r != nil && r.queue.n >= f.cfg.QueueDepth {
		r = f.stageFallback(s, r)
	}
	if r == nil {
		f.failed.Add(1)
		f.window(f.eng.Now()).Failed++
		if f.logging {
			f.logf("N t=%.3f id=%d s=%d reason=nostage\n", f.eng.Now(), id, s)
		}
		return
	}
	f.enqueue(r, simReq{id: id, arrival: arrival, budget: f.budgetNS, enqueued: f.eng.Now()})
}

func (f *Fleet) pickAmong(rr *uint64, cands []*simReplica) *simReplica {
	if len(cands) == 1 {
		return cands[0]
	}
	switch f.cfg.Policy {
	case fleet.LeastOutstanding:
		best, bestScore := cands[0], cands[0].loadScore()
		for _, r := range cands[1:] {
			if s := r.loadScore(); s < bestScore {
				best, bestScore = r, s
			}
		}
		return best
	case fleet.JoinShortestQueue:
		best, bestScore := cands[0], cands[0].queueScore()
		for _, r := range cands[1:] {
			if s := r.queueScore(); s < bestScore {
				best, bestScore = r, s
			}
		}
		return best
	case fleet.PowerOfTwo:
		i := f.rng.Intn(len(cands))
		j := f.rng.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		if b.queueScore() < a.queueScore() {
			return b
		}
		return a
	default: // RoundRobin
		*rr++
		return cands[*rr%uint64(len(cands))]
	}
}

// fallback scans for any dispatchable replica with queue space after the
// picked one was full: first the rest of its cluster, then the whole fleet
// in construction order (the goroutine runtime's backpressure scan).
func (f *Fleet) fallback(full *simReplica) *simReplica {
	now := f.eng.Now()
	ok := func(r *simReplica) bool {
		return r.dispatchable() && (!f.breakersOn || r.canRoute(now)) && r.queue.n < f.cfg.QueueDepth
	}
	for _, r := range full.cl.replicas {
		if r != full && ok(r) {
			return r
		}
	}
	for _, r := range f.replicas {
		if r != full && r.cl != full.cl && ok(r) {
			return r
		}
	}
	return nil
}

// logf appends one deterministic event-log line when logging is enabled.
// Lane sub-fleets record structured entries (keyed by the current event's
// virtual time and class) for the canonical merge instead of writing
// directly.
func (f *Fleet) logf(format string, args ...any) {
	if f.laneSink != nil {
		f.laneSink.add(f.eng.Now(), logLine(format, args...))
		return
	}
	if f.log == nil {
		return
	}
	fmt.Fprintf(f.log, format, args...)
}
