//go:build race

package des

// raceEnabled reports whether the race detector is instrumenting this test
// binary; wall-clock performance assertions are skipped under it.
const raceEnabled = true
