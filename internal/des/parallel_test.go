package des

import (
	"bytes"
	"reflect"
	"testing"
)

// shardableScenarios are the golden scenarios whose configs are eligible
// for lane sharding (round-robin cluster routing, no admission/resilience).
func shardableScenarios() []goldenScenario {
	var out []goldenScenario
	for _, sc := range goldenScenarios() {
		switch sc.name {
		case "shard_plain", "shard_storm", "shard_scaler", "shard_rr":
			out = append(out, sc)
		}
	}
	return out
}

// runWithWorkers executes one scenario at the given worker count with
// logging on.
func runWithWorkers(t *testing.T, sc goldenScenario, workers int) (*Result, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	cfg := sc.cfg()
	cfg.Workers = workers
	cfg.Log = &buf
	f, err := NewFleet(cfg, sc.specs()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunTrace(sc.gen(), sc.requests, sc.budgetNS)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	return res, &buf
}

// stripWall zeroes the wall-clock-dependent fields so exact Result
// comparison is meaningful across worker counts.
func stripWall(r *Result) *Result {
	c := *r
	c.WallSeconds, c.SpeedupVsWall, c.EventsPerSec, c.Lanes = 0, 0, 0, 0
	return &c
}

// TestParallelIdenticalToSerial is the workers=N exactness contract:
// identical Result structs (modulo wall-clock speed fields) and a merged
// event log byte-identical to the serial log, for every shardable scenario
// including mid-storm chaos and the autoscaler in the loop.
func TestParallelIdenticalToSerial(t *testing.T) {
	for _, sc := range shardableScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			serialRes, serialLog := runWithWorkers(t, sc, 1)
			if serialRes.Lanes != 1 {
				t.Fatalf("serial run reports %d lanes", serialRes.Lanes)
			}
			for _, w := range []int{2, 4, 8} {
				res, log := runWithWorkers(t, sc, w)
				if res.Lanes < 2 {
					t.Errorf("workers=%d: parallel path did not engage (lanes=%d)", w, res.Lanes)
				}
				if !reflect.DeepEqual(stripWall(res), stripWall(serialRes)) {
					t.Errorf("workers=%d: Result diverged from serial\nserial:   %+v\nparallel: %+v",
						w, stripWall(serialRes), stripWall(res))
				}
				if !bytes.Equal(log.Bytes(), serialLog.Bytes()) {
					t.Errorf("workers=%d: merged log diverged from serial (%d vs %d bytes); first diff at %d",
						w, log.Len(), serialLog.Len(), firstDiff(log.Bytes(), serialLog.Bytes()))
				}
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestParallelIneligibleFallsBack: configurations with cross-lane coupling
// run serially (and still exactly) even when Workers is set.
func TestParallelIneligibleFallsBack(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		switch sc.name {
		case "mixed", "resilience_storm": // jsq cluster routing, admit, resilience
		default:
			continue
		}
		t.Run(sc.name, func(t *testing.T) {
			serialRes, serialLog := runWithWorkers(t, sc, 1)
			res, log := runWithWorkers(t, sc, 4)
			if res.Lanes != 1 {
				t.Fatalf("ineligible config engaged %d lanes", res.Lanes)
			}
			if !reflect.DeepEqual(stripWall(res), stripWall(serialRes)) {
				t.Fatal("workers=4 fallback Result diverged from serial")
			}
			if !bytes.Equal(log.Bytes(), serialLog.Bytes()) {
				t.Fatal("workers=4 fallback log diverged from serial")
			}
		})
	}
}
