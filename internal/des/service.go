package des

// Replica service in virtual time. The recurrence is the goroutine
// runtime's (fleet.replica.execute), term for term: a batch enters the
// pipeline at
//
//	entry = max(pipeline free, latest member arrival,
//	            first arrival + batch timeout when the timeout closed it)
//
// member i completes at entry + fill + i·interval, requests whose
// completion would overshoot their budget are dropped without consuming
// pipeline time, and the pipeline is next free at entry + occBase +
// kept·interval (occBase is 0 for pipelined replicas, the batched-kernel
// base cost for fleet.BatchService replicas).
// The expressions are written in the same operation order so that, where
// the dispatch decisions coincide (single replica; round robin), per-request
// latencies match the goroutine fleet bit for bit.

// maybeService starts batches on r while it is idle and work is queued.
func (f *Fleet) maybeService(r *simReplica) {
	for !r.busy && !r.collecting && r.queue.n > 0 {
		if f.cfg.MaxBatch > 1 && r.queue.n < f.cfg.MaxBatch {
			// Partial batch: open a collect window, timed from pickup like
			// the goroutine loop's wall timer.
			r.collecting = true
			r.collect = f.eng.ScheduleEvent(f.cfg.BatchTimeoutNS, evCollect, int64(r.id), 0, nil)
			return
		}
		take := 1
		if f.cfg.MaxBatch > 1 {
			take = f.cfg.MaxBatch
		}
		f.executeBatch(r, take, false)
	}
}

func (f *Fleet) onCollectTimeout(r *simReplica) {
	r.collecting = false
	r.collect = Handle{}
	take := r.queue.n
	if take > f.cfg.MaxBatch {
		take = f.cfg.MaxBatch
	}
	if take > 0 {
		f.executeBatch(r, take, true)
	}
	f.maybeService(r)
}

// executeBatch prices a batch of take queued requests on the pipelined
// accelerator and schedules the pipeline-free event. It leaves further
// batch formation to the caller (maybeService loops while the replica is
// idle, e.g. after an all-expired batch).
//
// Chaos degradation applies here: fail-slow multiplies fill and interval,
// a degraded link adds per-batch transfer cost onto fill. Healthy values
// (slow 1, link 0) reproduce the original arithmetic exactly (x·1 == x,
// x+0 == x in IEEE), preserving the bit-identical crosschecks.
func (f *Fleet) executeBatch(r *simReplica, take int, timedOut bool) {
	fill := r.fill*r.slow + r.link
	interval := r.interval * r.slow
	entry := r.nextFree
	first := r.queue.peek()
	kept := 0
	// Two passes over the batch members mirror the goroutine execute: the
	// entry time closes over every member before any completion is priced.
	// Queue-join times (enqueued == arrival for primary dispatches) drive
	// the recurrence; budgets and latencies measure from true arrival.
	for i := 0; i < take; i++ {
		rq := r.queue.buf[(r.queue.head+i)%len(r.queue.buf)]
		if rq.enqueued > entry {
			entry = rq.enqueued
		}
	}
	if timedOut {
		if t := first.enqueued + f.cfg.BatchTimeoutNS; t > entry {
			entry = t
		}
	}
	for i := 0; i < take; i++ {
		rq := r.queue.pop()
		f.queued--
		r.cl.queued.Add(-1)
		if rq.st != nil && (rq.st.done || rq.st.failed) {
			// First-wins cancellation: a copy whose request already
			// resolved is dropped at pop without consuming a slot.
			f.hedgeWasted.Add(1)
			if f.logging {
				f.logf("W t=%.3f id=%d r=%s\n", f.eng.Now(), rq.id, r.name)
			}
			continue
		}
		completion := entry + fill + float64(kept)*interval
		if rq.budget > 0 && completion-rq.arrival > rq.budget {
			r.expired++
			if st := rq.st; st != nil {
				st.expired = true
				st.live--
				if r.breaker != nil {
					r.breaker.Record(f.eng.Now(), false)
				}
				if f.logging {
					f.logf("E t=%.3f id=%d r=%s reason=budget\n", f.eng.Now(), rq.id, r.name)
				}
				f.tryRetry(st)
			} else {
				f.expired.Add(1)
				f.window(f.eng.Now()).Expired++
				if f.logging {
					f.logf("X t=%.3f id=%d r=%s reason=budget\n", f.eng.Now(), rq.id, r.name)
				}
			}
			continue
		}
		if st := rq.st; st != nil {
			// Resilient copy: it occupies its pipeline slot now, but the
			// request resolves at the virtual completion time so a faster
			// hedge can still win (see chaos.go).
			st.live--
			st.pending++
			if r.breaker != nil {
				r.breaker.Record(f.eng.Now(), true)
			}
			f.eng.AtEvent(completion, evResolve, int64(r.id), completion, st)
		} else if r.stage < f.cfg.Shards-1 {
			// Sharded chain: this stage's completion hands the request to the
			// next stage after the priced transfer. The hop event carries the
			// original arrival so budgets and latency stay anchored there,
			// while the hop time becomes the next queue-join (enqueued) time —
			// the same recurrence as the goroutine fleet's
			// rq.ArrivalNS = completion + transfer.
			hop := completion + f.stageTransfer(r.stage)
			r.served++
			if f.logging {
				f.logf("P t=%.3f id=%d r=%s c=%.3f hop=%.3f\n", f.eng.Now(), rq.id, r.name, completion, hop)
			}
			f.eng.AtEvent(hop, evStageHop, int64(rq.id)<<16|int64(r.stage+1), rq.arrival, nil)
		} else {
			latency := completion - rq.arrival
			f.latencies = append(f.latencies, latency)
			f.completed.Add(1)
			r.served++
			r.cl.served++
			f.window(completion).Completed++
			if completion > f.makespan {
				f.makespan = completion
			}
			if f.logging {
				f.logf("S t=%.3f id=%d r=%s e=%.3f c=%.3f\n", f.eng.Now(), rq.id, r.name, entry, completion)
			}
		}
		kept++
	}
	if kept == 0 {
		return
	}
	r.batches++
	r.batchSum += int64(kept)
	// Same operation order as fleet.replica.execute: with occBase 0 the
	// pipelined arithmetic is preserved bit for bit.
	r.nextFree = entry + r.occBase*r.slow + float64(kept)*interval
	r.busyNS += r.nextFree - entry
	r.busy = true
	r.inFlight = kept
	f.inFlight += kept
	f.eng.AtEvent(r.nextFree, evFree, int64(r.id), 0, nil)
}

// onFree fires when the pipeline can accept its next batch.
func (f *Fleet) onFree(r *simReplica) {
	r.busy = false
	f.inFlight -= r.inFlight
	r.inFlight = 0
	if f.logging {
		f.logf("F t=%.3f r=%s\n", f.eng.Now(), r.name)
	}
	f.maybeService(r)
}
