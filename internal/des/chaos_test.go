package des

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"autohet/internal/chaos"
	"autohet/internal/des/trace"
	"autohet/internal/fleet"
	"autohet/internal/sim"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("r%d", i)
	}
	return out
}

// Same config, same seeds, same chaos schedule, full resilience stack →
// byte-identical event log. This extends the determinism contract over
// fault injection, retry timers, hedges, and breakers.
func TestChaosDeterministicEventLog(t *testing.T) {
	run := func(chaosSeed int64) *bytes.Buffer {
		var buf bytes.Buffer
		cfg := DefaultConfig()
		cfg.Policy = fleet.PowerOfTwo
		cfg.ClusterPolicy = fleet.JoinShortestQueue
		cfg.Clusters = 4
		cfg.MaxBatch = 4
		cfg.QueueDepth = 16
		cfg.StatsWindowNS = 1e5
		cfg.Resilience = chaos.DefaultResilience()
		cfg.Chaos = chaos.Merge(
			chaos.CrashStorm(2e5, 2e5, names(16), 0.25, chaosSeed),
			chaos.SlowStorm(3e5, 2e5, names(16), 0.125, 20, chaosSeed),
		)
		cfg.Log = &buf
		f, err := NewFleet(cfg, homogeneous(16, 2000, 100)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.RunTrace(trace.Bursty(1e8, 1.9, 5e5, 17), 20000, 50000)
		if err != nil {
			t.Fatal(err)
		}
		conserve(t, res)
		if res.ChaosEvents == 0 {
			t.Fatal("no chaos events applied")
		}
		return &buf
	}
	a, b := run(21), run(21)
	if a.Len() == 0 {
		t.Fatal("empty event log")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same chaos seed produced different event logs (%d vs %d bytes)", a.Len(), b.Len())
	}
	if c := run(22); bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different chaos seeds produced identical event logs")
	}
}

// Legacy engine (no resilience) under a crash: queued copies fail, arrivals
// during a full outage are unroutable, and the fleet recovers after restart.
func TestCrashFailsQueueAndOutageIsUnroutable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 1 << 14
	cfg.Chaos = chaos.Scripted(
		chaos.Event{AtNS: 60000, Kind: chaos.Crash, Target: "r0"},
		chaos.Event{AtNS: 60000, Kind: chaos.Crash, Target: "r1"},
		chaos.Event{AtNS: 120000, Kind: chaos.Restart, Target: "r0"},
		chaos.Event{AtNS: 120000, Kind: chaos.Restart, Target: "r1"},
	)
	// 1.25x overload builds a backlog before the crash drains it.
	f, err := NewFleet(cfg, homogeneous(2, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunTrace(trace.Poisson(2.5e7, 3), 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if res.Failed == 0 {
		t.Fatal("crash drained no queued requests")
	}
	if res.Unroutable == 0 {
		t.Fatal("no unroutable arrivals during the full outage")
	}
	if res.Shed != 0 {
		t.Fatalf("%d overload sheds counted; outage losses must be unroutable", res.Shed)
	}
	if res.ChaosEvents != 4 {
		t.Fatalf("%d chaos events applied, want 4", res.ChaosEvents)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed around the outage")
	}
}

// Retry with backoff recovers crash-drained copies onto the surviving
// replica instead of failing them.
func TestRetryRecoversCrashLosses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 1 << 14
	cfg.Resilience = chaos.Resilience{
		Retry: &chaos.RetryPolicy{BudgetFrac: 1, BudgetBurst: 1e6},
	}
	cfg.Chaos = chaos.Scripted(
		chaos.Event{AtNS: 60000, Kind: chaos.Crash, Target: "r0"},
	)
	// 1.25x overload so a backlog exists for the crash to drain.
	f, err := NewFleet(cfg, homogeneous(2, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunTrace(trace.Poisson(2.5e7, 3), 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if res.Retried == 0 {
		t.Fatal("crash drained a backlog but nothing retried")
	}
	if res.Failed != 0 {
		t.Fatalf("%d requests failed despite retries and a surviving replica", res.Failed)
	}
	if res.Completed != res.Offered {
		t.Fatalf("%d of %d completed", res.Completed, res.Offered)
	}
}

// Hedged requests rescue the tail a fail-slow replica creates: the backup
// copy on the healthy replica wins first, so the hedged run's p99 beats the
// plain run's.
func TestHedgingCutsFailSlowTail(t *testing.T) {
	run := func(hedge bool) *Result {
		cfg := DefaultConfig()
		cfg.QueueDepth = 64
		cfg.Chaos = chaos.Scripted(
			chaos.Event{AtNS: 0, Kind: chaos.Slow, Target: "r0", Value: 100},
		)
		if hedge {
			cfg.Resilience = chaos.Resilience{
				Hedge: &chaos.HedgePolicy{MinDelayNS: 5000, MaxDelayNS: 5000, MinSamples: 1 << 30},
			}
		}
		f, err := NewFleet(cfg, homogeneous(2, 1000, 100)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.RunTrace(trace.Poisson(1e6, 7), 500, 0)
		if err != nil {
			t.Fatal(err)
		}
		conserve(t, res)
		return res
	}
	plain, hedged := run(false), run(true)
	if hedged.Hedged == 0 {
		t.Fatal("no hedges launched")
	}
	if hedged.HedgeWasted == 0 {
		t.Fatal("no wasted hedge copies — first-wins cancellation untested")
	}
	if hedged.Completed != hedged.Offered {
		t.Fatalf("%d of %d completed with hedging", hedged.Completed, hedged.Offered)
	}
	if hedged.P99NS >= plain.P99NS {
		t.Fatalf("hedged p99 %.0f ns not below plain p99 %.0f ns", hedged.P99NS, plain.P99NS)
	}
}

// Brownout sheds only non-top-priority arrivals once the backlog crosses
// the threshold.
func TestBrownoutShedsLowPriorityOnly(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultConfig()
	cfg.QueueDepth = 1 << 14
	cfg.Resilience = chaos.Resilience{
		Brownout: &chaos.BrownoutPolicy{MaxQueuedPerActive: 4, Levels: 4},
	}
	cfg.Log = &buf
	f, err := NewFleet(cfg, homogeneous(1, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunTrace(trace.Poisson(4e7, 5), 4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if res.BrownoutShed == 0 {
		t.Fatal("no brownout sheds at 4x overload")
	}
	if int64(res.Shed) != res.BrownoutShed {
		t.Fatalf("shed %d != brownout shed %d (deep queues should shed only via brownout)",
			res.Shed, res.BrownoutShed)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.Contains(line, "reason=brownout") {
			continue
		}
		var tt float64
		var id int
		if _, err := fmt.Sscanf(line, "H t=%f id=%d", &tt, &id); err != nil {
			t.Fatalf("unparseable brownout line %q: %v", line, err)
		}
		if id%4 == 0 {
			t.Fatalf("top-priority request %d brownout-shed", id)
		}
	}
}

// A fail-slow replica blows its requests' budgets; the circuit breaker
// catches the failure streak and routes traffic away from it.
func TestBreakerIsolatesFailSlowReplica(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 1 << 14
	cfg.Resilience = chaos.Resilience{
		Breaker: &chaos.BreakerConfig{FailureThreshold: 5, OpenNS: 50000},
		Retry:   &chaos.RetryPolicy{BudgetFrac: 1, BudgetBurst: 1e6},
	}
	cfg.Chaos = chaos.Scripted(
		chaos.Event{AtNS: 0, Kind: chaos.Slow, Target: "r0", Value: 50},
	)
	f, err := NewFleet(cfg, homogeneous(2, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 3000 ns: r0's 50x-slow fill (50000 ns) can never make it.
	res, err := f.RunTrace(trace.Poisson(5e6, 9), 3000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	r0, r1 := f.replicas[0], f.replicas[1]
	if r0.breaker.State() == chaos.BreakerClosed {
		t.Fatal("breaker still closed on a replica that failed every request")
	}
	if r0.served != 0 {
		t.Fatalf("fail-slow replica served %d requests within a 3000 ns budget", r0.served)
	}
	if r1.served == 0 {
		t.Fatal("healthy replica served nothing")
	}
	// The breaker caps r0's blast radius: once open, only cooldown probes
	// reach it, so nearly everything completes on r1.
	if frac := float64(res.Completed) / float64(res.Offered); frac < 0.9 {
		t.Fatalf("only %.0f%% completed with the breaker isolating the bad replica", 100*frac)
	}
}

// Windowed stats partition the run and surface the crash-storm goodput dip.
func TestWindowedStatsPartitionRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = fleet.JoinShortestQueue
	cfg.Clusters = 2
	cfg.QueueDepth = 1 << 14
	cfg.StatsWindowNS = 1e7
	cfg.Resilience = chaos.DefaultResilience()
	cfg.Chaos = chaos.Merge(
		chaos.CrashStorm(3e7, 2e7, names(8), 0.5, 11),
	)
	f, err := NewFleet(cfg, homogeneous(8, 5e5, 1e5)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunTrace(trace.Poisson(4e4, 13), 4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if len(res.Windows) == 0 {
		t.Fatal("no windows with StatsWindowNS set")
	}
	var arrived, completed, expired, failed, shed, unroutable int64
	for _, w := range res.Windows {
		arrived += w.Arrived
		completed += w.Completed
		expired += w.Expired
		failed += w.Failed
		shed += w.Shed
		unroutable += w.Unroutable
	}
	if arrived != int64(res.Offered) {
		t.Fatalf("windowed arrivals %d != offered %d", arrived, res.Offered)
	}
	if completed != int64(res.Completed) || expired != int64(res.Expired) ||
		failed != int64(res.Failed) || shed != int64(res.Shed) || unroutable != int64(res.Unroutable) {
		t.Fatalf("windowed outcomes (%d,%d,%d,%d,%d) != result (%d,%d,%d,%d,%d)",
			completed, expired, failed, shed, unroutable,
			res.Completed, res.Expired, res.Failed, res.Shed, res.Unroutable)
	}
}

// Per-cluster admission-rejection counts sum to the fleet total.
func TestAdmissionShedPerClusterSums(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 4
	cfg.Policy = fleet.JoinShortestQueue
	cfg.ClusterPolicy = fleet.JoinShortestQueue
	cfg.QueueDepth = 1 << 14
	cfg.Admit = QueueCap{MaxQueuedPerActive: 4}
	f, err := NewFleet(cfg, homogeneous(8, 1000, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunTrace(trace.Poisson(3e8, 5), 8000, 0)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, res)
	if res.AdmissionShed == 0 {
		t.Fatal("no admission sheds under ~4x overload")
	}
	var sum int64
	for _, cl := range res.Clusters {
		sum += cl.AdmissionShed
	}
	if sum != res.AdmissionShed {
		t.Fatalf("per-cluster admission sheds sum %d != fleet total %d", sum, res.AdmissionShed)
	}
}

// Rejection parity between the engines: at the same overload with the same
// bounded queues, the goroutine fleet's wall-clock sheds and the DES
// fleet's virtual-time sheds must agree to a few percent of offered load.
func TestShedParityGoroutineVsDES(t *testing.T) {
	pr := sim.PipelineResult{FillNS: 5e5, IntervalNS: 1e5}
	const (
		replicas = 4
		requests = 1500
		rate     = 8e4 // 2x the 4e4 rps aggregate capacity
	)
	specs := make([]fleet.ReplicaSpec, replicas)
	for i := range specs {
		p := pr
		specs[i] = fleet.ReplicaSpec{Pipeline: &p}
	}
	w := fleet.Workload{ArrivalRate: rate, Requests: requests, Seed: 31}

	gcfg := fleet.DefaultConfig()
	gcfg.Policy = fleet.JoinShortestQueue
	gcfg.QueueDepth = 8
	gcfg.TimeScale = 40 // paced: virtual backlog is what queue-aware dispatch must see
	gf, err := fleet.New(gcfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fleet.Run(gf, w)
	gf.Close()
	if err != nil {
		t.Fatal(err)
	}

	dcfg := DefaultConfig()
	dcfg.Policy = fleet.JoinShortestQueue
	dcfg.QueueDepth = 8
	df, err := NewFleet(dcfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := df.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, got)

	rejG := want.Shed + want.Unroutable
	rejD := got.Shed + got.Unroutable
	if rejG == 0 || rejD == 0 {
		t.Fatalf("expected rejections at 2x overload: goroutine %d, des %d", rejG, rejD)
	}
	diff := rejG - rejD
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.03*float64(requests) {
		t.Fatalf("rejections disagree: goroutine %d vs des %d (>3%% of %d offered)",
			rejG, rejD, requests)
	}
}
