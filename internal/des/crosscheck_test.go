package des

import (
	"math"
	"testing"

	"autohet/internal/fleet"
	"autohet/internal/serving"
	"autohet/internal/sim"
)

// The DES fleet must not be a second opinion on service timing — it must be
// the same model, advanced differently. Three rungs, in decreasing
// strictness:
//
//  1. A solo replica applies serving.Serve's pipelined recurrence with a
//     bit-identical arrival trace, so every latency statistic matches to
//     float noise.
//  2. Round-robin dispatch is a pure function of submission order, which
//     both runtimes share, so a 16-replica heterogeneous fleet matches the
//     goroutine runtime request for request.
//  3. Queue-aware policies (jsq/lo/p2c) read racy wall-clock queue lengths
//     in the goroutine runtime but exact virtual backlogs here, so the
//     assignments differ; with fill dominating the latency (100× interval)
//     the distributions still have to agree to a few percent.

func statPairs(got *Result, meanNS, p50, p95, p99, maxNS float64) []struct {
	name      string
	got, want float64
} {
	return []struct {
		name      string
		got, want float64
	}{
		{"mean", got.MeanNS, meanNS},
		{"p50", got.P50NS, p50},
		{"p95", got.P95NS, p95},
		{"p99", got.P99NS, p99},
		{"max", got.MaxNS, maxNS},
	}
}

// TestCrossCheckServingSolo: rung 1.
func TestCrossCheckServingSolo(t *testing.T) {
	pr := &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}
	for _, load := range []float64{0.3, 0.8, 1.5} {
		w := serving.Workload{ArrivalRate: load * 1e9 / pr.IntervalNS, Requests: 3000, Seed: 9}
		want, err := serving.Serve(pr, w)
		if err != nil {
			t.Fatal(err)
		}

		cfg := DefaultConfig()
		cfg.QueueDepth = w.Requests
		f, err := NewFleet(cfg, fleet.ReplicaSpec{Name: "solo", Pipeline: pr})
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Run(fleet.Workload{ArrivalRate: w.ArrivalRate, Requests: w.Requests, Seed: w.Seed})
		if err != nil {
			t.Fatal(err)
		}
		if got.Completed != want.Completed || got.Shed != 0 {
			t.Fatalf("load %.0f%%: des completed %d (shed %d), serving completed %d",
				100*load, got.Completed, got.Shed, want.Completed)
		}
		for _, p := range statPairs(got, want.MeanNS, want.P50NS, want.P95NS, want.P99NS, want.MaxNS) {
			if math.Abs(p.got-p.want) > 1e-9*math.Max(1, p.want) {
				t.Errorf("load %.0f%% %s: des %.6f ns, serving %.6f ns", 100*load, p.name, p.got, p.want)
			}
		}
	}
}

// specs16 is a heterogeneous 16-replica fleet: four pipeline shapes with
// distinct fill/interval ratios.
func specs16() []fleet.ReplicaSpec {
	shapes := []sim.PipelineResult{
		{FillNS: 1000, IntervalNS: 100},
		{FillNS: 2500, IntervalNS: 160},
		{FillNS: 600, IntervalNS: 80},
		{FillNS: 4000, IntervalNS: 250},
	}
	specs := make([]fleet.ReplicaSpec, 16)
	for i := range specs {
		pr := shapes[i%len(shapes)]
		specs[i] = fleet.ReplicaSpec{Pipeline: &pr}
	}
	return specs
}

// runBoth drives the goroutine fleet (free-running TimeScale) and the DES
// fleet over the same workload and policy.
func runBoth(t *testing.T, policy fleet.Policy, specs []fleet.ReplicaSpec, w fleet.Workload) (*fleet.Result, *Result) {
	t.Helper()
	gcfg := fleet.DefaultConfig()
	gcfg.TimeScale = 1e-9
	gcfg.QueueDepth = w.Requests
	gcfg.Policy = policy
	gf, err := fleet.New(gcfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fleet.Run(gf, w)
	gf.Close()
	if err != nil {
		t.Fatal(err)
	}

	dcfg := DefaultConfig()
	dcfg.QueueDepth = w.Requests
	dcfg.Policy = policy
	df, err := NewFleet(dcfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := df.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return want, got
}

// TestCrossCheckGoroutineRoundRobin: rung 2 — exact distribution parity.
func TestCrossCheckGoroutineRoundRobin(t *testing.T) {
	w := fleet.Workload{ArrivalRate: 4e7, Requests: 4000, Seed: 5}
	want, got := runBoth(t, fleet.RoundRobin, specs16(), w)
	if got.Completed != want.Completed || got.Shed != want.Shed {
		t.Fatalf("des %d completed %d shed, goroutine %d completed %d shed",
			got.Completed, got.Shed, want.Completed, want.Shed)
	}
	for _, p := range statPairs(got, want.MeanNS, want.P50NS, want.P95NS, want.P99NS, want.MaxNS) {
		if math.Abs(p.got-p.want) > 1e-6*math.Max(1, p.want) {
			t.Errorf("%s: des %.6f ns, goroutine %.6f ns", p.name, p.got, p.want)
		}
	}
}

// TestCrossCheckGoroutineQueueAware: rung 3 — statistical parity for the
// queue-aware policies on a homogeneous fleet at moderate load, where the
// fill term dominates whatever the assignment noise contributes.
func TestCrossCheckGoroutineQueueAware(t *testing.T) {
	pr := sim.PipelineResult{FillNS: 10000, IntervalNS: 100}
	specs := make([]fleet.ReplicaSpec, 8)
	for i := range specs {
		p := pr
		specs[i] = fleet.ReplicaSpec{Pipeline: &p}
	}
	// Half the aggregate capacity of 8 × 1e7 rps.
	w := fleet.Workload{ArrivalRate: 4e7, Requests: 4000, Seed: 7}
	for _, policy := range []fleet.Policy{fleet.JoinShortestQueue, fleet.LeastOutstanding, fleet.PowerOfTwo} {
		want, got := runBoth(t, policy, specs, w)
		if got.Completed != want.Completed {
			t.Fatalf("%s: des completed %d, goroutine %d", policy, got.Completed, want.Completed)
		}
		for _, p := range []struct {
			name      string
			got, want float64
		}{
			{"mean", got.MeanNS, want.MeanNS},
			{"p50", got.P50NS, want.P50NS},
		} {
			if math.Abs(p.got-p.want) > 0.03*p.want {
				t.Errorf("%s %s: des %.1f ns, goroutine %.1f ns (>3%%)", policy, p.name, p.got, p.want)
			}
		}
	}
}
