package des

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"autohet/internal/fleet"
	"autohet/internal/sim"
)

// fixedGaps replays a constant inter-arrival gap — deterministic arrivals
// for recurrence pins.
type fixedGaps struct{ gap float64 }

func (g fixedGaps) Name() string       { return "fixed" }
func (g fixedGaps) NextGapNS() float64 { return g.gap }

// TestShardChainRecurrenceDES pins the exact two-stage chain against a FIFO
// model: request i enters stage 0 at max(arrival, stage-0 free), completes
// one fill later, hops after the transfer, and resolves at stage 1 with
// latency measured from its original arrival — the same recurrence the
// goroutine fleet pins in its TestShardedChainRecurrence.
func TestShardChainRecurrenceDES(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.StageTransferNS = []float64{10}
	cfg.QueueDepth = 4096
	f, err := NewFleet(cfg,
		fleet.ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}},
		fleet.ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 600, IntervalNS: 200}},
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	res, err := f.RunTrace(fixedGaps{gap: 50}, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed %d of %d: %v", res.Completed, n, res)
	}
	free0, free1 := 0.0, 0.0
	want := make([]float64, 0, n)
	for i := 1; i <= n; i++ {
		a := float64(i) * 50
		e0 := math.Max(free0, a)
		c0 := e0 + 1000
		free0 = e0 + 100
		hop := c0 + 10
		e1 := math.Max(free1, hop)
		c1 := e1 + 600
		free1 = e1 + 200
		want = append(want, c1-a)
	}
	got := append([]float64(nil), res.LatenciesNS...)
	sort.Float64s(want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("latency[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// The chain always has exactly one stage busy per request-slot; two
	// replicas sharing the work leaves a real bubble.
	if res.BubbleFraction <= 0 || res.BubbleFraction >= 1 {
		t.Fatalf("bubble fraction %v outside (0,1)", res.BubbleFraction)
	}
}

// TestShardCrossCheckGoroutine is the sharded rung-2 crosscheck: a 4-stage
// chain with one replica per stage and priced transfers must agree with the
// goroutine fleet's sharded runtime to float noise — same model, advanced
// differently.
func TestShardCrossCheckGoroutine(t *testing.T) {
	shapes := []sim.PipelineResult{
		{FillNS: 1000, IntervalNS: 100},
		{FillNS: 2500, IntervalNS: 160},
		{FillNS: 600, IntervalNS: 80},
		{FillNS: 4000, IntervalNS: 250},
	}
	specs := make([]fleet.ReplicaSpec, len(shapes))
	for i := range shapes {
		pr := shapes[i]
		specs[i] = fleet.ReplicaSpec{Pipeline: &pr}
	}
	transfers := []float64{15, 40, 25}
	w := fleet.Workload{ArrivalRate: 2e6, Requests: 3000, Seed: 11}

	gcfg := fleet.DefaultConfig()
	gcfg.TimeScale = 1e-9
	gcfg.QueueDepth = w.Requests
	gcfg.Shards = 4
	gcfg.StageTransferNS = transfers
	gf, err := fleet.New(gcfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fleet.Run(gf, w)
	gf.Close()
	if err != nil {
		t.Fatal(err)
	}

	dcfg := DefaultConfig()
	dcfg.QueueDepth = w.Requests
	dcfg.Shards = 4
	dcfg.StageTransferNS = transfers
	df, err := NewFleet(dcfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := df.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != want.Completed || got.Shed != want.Shed || got.Failed != want.Failed {
		t.Fatalf("des %d completed %d shed %d failed, goroutine %d completed %d shed %d failed",
			got.Completed, got.Shed, got.Failed, want.Completed, want.Shed, want.Failed)
	}
	for _, p := range statPairs(got, want.MeanNS, want.P50NS, want.P95NS, want.P99NS, want.MaxNS) {
		if math.Abs(p.got-p.want) > 1e-6*math.Max(1, p.want) {
			t.Errorf("%s: des %.6f ns, goroutine %.6f ns", p.name, p.got, p.want)
		}
	}
}

// TestShardBudgetSpansStagesDES: budgets anchor at the original arrival, so
// a request that clears stage 0 comfortably still expires when the chain
// overruns.
func TestShardBudgetSpansStagesDES(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 2
	f, err := NewFleet(cfg,
		fleet.ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}},
		fleet.ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Chain completion is 2000 per isolated request; a 1500 budget clears
	// stage 0 but expires at stage 1.
	res, err := f.RunTrace(fixedGaps{gap: 10_000}, 5, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired != 5 || res.Completed != 0 {
		t.Fatalf("expired %d completed %d, want all 5 expired: %v", res.Expired, res.Completed, res)
	}
}

// TestShardWorkersLogByteIdentical: sharded runs always take the serial
// engine (parallelEligible excludes them), so a Workers=4 sharded run must
// produce the byte-identical event log of the Workers=1 run — the log
// contract survives sharding by construction.
func TestShardWorkersLogByteIdentical(t *testing.T) {
	build := func(workers int, log *bytes.Buffer) *Result {
		cfg := DefaultConfig()
		cfg.Shards = 2
		cfg.StageTransferNS = []float64{20}
		cfg.Workers = workers
		cfg.QueueDepth = 4096
		cfg.Log = log
		specs := []fleet.ReplicaSpec{
			{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}},
			{Pipeline: &sim.PipelineResult{FillNS: 1200, IntervalNS: 150}},
			{Pipeline: &sim.PipelineResult{FillNS: 800, IntervalNS: 120}},
			{Pipeline: &sim.PipelineResult{FillNS: 900, IntervalNS: 110}},
		}
		f, err := NewFleet(cfg, specs...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(fleet.Workload{ArrivalRate: 3e6, Requests: 800, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var serial, parallel bytes.Buffer
	r1 := build(1, &serial)
	r4 := build(4, &parallel)
	if r1.Lanes != 1 || r4.Lanes != 1 {
		t.Fatalf("lanes %d/%d, want sharded runs pinned to the serial engine", r1.Lanes, r4.Lanes)
	}
	if serial.Len() == 0 {
		t.Fatal("empty event log")
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("workers=4 sharded log diverges from workers=1 (%d vs %d bytes)", parallel.Len(), serial.Len())
	}
}

// Sharded routing splits replicas across stages round-robin within each
// stage, and only the final stage resolves requests.
func TestShardStageRouting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.QueueDepth = 4096
	pr := sim.PipelineResult{FillNS: 1000, IntervalNS: 100}
	specs := make([]fleet.ReplicaSpec, 4)
	for i := range specs {
		p := pr
		specs[i] = fleet.ReplicaSpec{Pipeline: &p}
	}
	f, err := NewFleet(cfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	if f.replicas[0].stage != 0 || f.replicas[1].stage != 0 || f.replicas[2].stage != 1 || f.replicas[3].stage != 1 {
		t.Fatalf("stage split %d,%d,%d,%d", f.replicas[0].stage, f.replicas[1].stage, f.replicas[2].stage, f.replicas[3].stage)
	}
	const n = 400
	res, err := f.Run(fleet.Workload{ArrivalRate: 2e6, Requests: n, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed %d of %d: %v", res.Completed, n, res)
	}
	for _, r := range f.replicas {
		if r.served == 0 {
			t.Fatalf("replica %s served nothing", r.name)
		}
	}
	if f.replicas[0].served+f.replicas[1].served != n || f.replicas[2].served+f.replicas[3].served != n {
		t.Fatalf("per-stage served %d+%d, %d+%d; want %d each stage",
			f.replicas[0].served, f.replicas[1].served, f.replicas[2].served, f.replicas[3].served, n)
	}
}

func TestShardValidationDES(t *testing.T) {
	pr := func() *sim.PipelineResult { return &sim.PipelineResult{FillNS: 1000, IntervalNS: 100} }
	cases := []func(*Config){
		func(c *Config) { c.Shards = 3 },                                      // more stages than replicas
		func(c *Config) { c.Shards = -1 },                                     // negative
		func(c *Config) { c.Shards = 2; c.StageTransferNS = []float64{1, 2} }, // wrong transfer length
		func(c *Config) { c.Shards = 2; c.StageTransferNS = []float64{-4} },   // negative transfer
		func(c *Config) { c.Shards = 2; c.Clusters = 2 },                      // clustered routing
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := NewFleet(cfg, fleet.ReplicaSpec{Pipeline: pr()}, fleet.ReplicaSpec{Pipeline: pr()}); err == nil {
			t.Fatalf("case %d: config must be rejected", i)
		}
	}
}
