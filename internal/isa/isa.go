// Package isa implements the accelerator's Global Controller interface
// (paper §3.1): "a global controller (GC) decodes CPU instructions and
// controls the heterogeneous DNN mapping and inference. The GC receives
// instructions and signals the input/output buffer and tiles through the
// bus." A compiled allocation plan becomes a binary instruction stream; the
// controller validates and executes it against the functional simulator.
//
// Instructions are layer-granular macro-operations — one FIRE signals a
// tile to sweep all of a layer's output positions — matching the GC's role
// of sequencing tiles rather than micromanaging crossbar cycles.
package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Opcode identifies a Global Controller instruction.
type Opcode uint8

// The instruction set. Operand use per opcode:
//
//	LDW   A=layer B=tile C=slots   program C slots of tile B with layer A's weights
//	SETIN A=layer                  latch layer A's input feature map into the input buffer
//	FIRE  A=layer B=tile           sweep all of layer A's MVM positions on tile B
//	MERGE A=layer                  accumulate partial sums across layer A's tiles/bands
//	ACT   A=layer                  apply ReLU to layer A's output buffer
//	POOL  A=model-layer index      run the pooling module for pool layer A
//	STORE A=layer                  commit layer A's output feature map
//	HALT                           end of program
const (
	OpLDW Opcode = iota + 1
	OpSETIN
	OpFIRE
	OpMERGE
	OpACT
	OpPOOL
	OpSTORE
	OpHALT
)

// String returns the mnemonic.
func (o Opcode) String() string {
	switch o {
	case OpLDW:
		return "LDW"
	case OpSETIN:
		return "SETIN"
	case OpFIRE:
		return "FIRE"
	case OpMERGE:
		return "MERGE"
	case OpACT:
		return "ACT"
	case OpPOOL:
		return "POOL"
	case OpSTORE:
		return "STORE"
	case OpHALT:
		return "HALT"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// Instr is one fixed-width instruction: opcode plus three operands.
type Instr struct {
	Op      Opcode
	A, B, C int32
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpLDW:
		return fmt.Sprintf("LDW   L%d tile=%d slots=%d", i.A+1, i.B, i.C)
	case OpFIRE:
		return fmt.Sprintf("FIRE  L%d tile=%d", i.A+1, i.B)
	case OpSETIN, OpMERGE, OpACT, OpSTORE:
		return fmt.Sprintf("%-5s L%d", i.Op, i.A+1)
	case OpPOOL:
		return fmt.Sprintf("POOL  layer=%d", i.A)
	case OpHALT:
		return "HALT"
	default:
		return fmt.Sprintf("%v %d %d %d", i.Op, i.A, i.B, i.C)
	}
}

// Program is a GC instruction stream.
type Program struct {
	Instrs []Instr
}

// magic identifies serialized programs ("AHGC" = AutoHet Global Controller).
var magic = [4]byte{'A', 'H', 'G', 'C'}

const version uint16 = 1

// Encode serializes the program to its binary wire format: a magic/version
// header, an instruction count, and fixed 13-byte instructions.
func (p *Program) Encode(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, magic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, version); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Instrs))); err != nil {
		return err
	}
	for _, in := range p.Instrs {
		if err := binary.Write(w, binary.LittleEndian, in.Op); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, [3]int32{in.A, in.B, in.C}); err != nil {
			return err
		}
	}
	return nil
}

// Decode parses a binary program, rejecting bad magic or version.
func Decode(r io.Reader) (*Program, error) {
	var m [4]byte
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("isa: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("isa: bad magic %q", m)
	}
	var v uint16
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("isa: unsupported version %d", v)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	const maxInstrs = 1 << 24
	if n > maxInstrs {
		return nil, fmt.Errorf("isa: instruction count %d exceeds limit", n)
	}
	p := &Program{Instrs: make([]Instr, n)}
	for i := range p.Instrs {
		if err := binary.Read(r, binary.LittleEndian, &p.Instrs[i].Op); err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		var ops [3]int32
		if err := binary.Read(r, binary.LittleEndian, &ops); err != nil {
			return nil, fmt.Errorf("isa: instruction %d operands: %w", i, err)
		}
		p.Instrs[i].A, p.Instrs[i].B, p.Instrs[i].C = ops[0], ops[1], ops[2]
	}
	return p, nil
}

// Bytes encodes the program into a byte slice.
func (p *Program) Bytes() []byte {
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return buf.Bytes()
}

// Disassemble renders one instruction per line.
func (p *Program) Disassemble(w io.Writer) error {
	for pc, in := range p.Instrs {
		if _, err := fmt.Fprintf(w, "%04d  %s\n", pc, in); err != nil {
			return err
		}
	}
	return nil
}
