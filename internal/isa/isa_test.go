package isa

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

func tinyPlan(t *testing.T) *accel.Plan {
	t.Helper()
	m, err := dnn.NewModel("tinycnn", 6, 6, 1, []*dnn.Layer{
		{Name: "c1", Kind: dnn.Conv, K: 3, InC: 1, OutC: 4, Stride: 1, Pad: 1},
		{Name: "p1", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "c2", Kind: dnn.Conv, K: 3, InC: 4, OutC: 8, Stride: 1, Pad: 1},
		{Name: "p2", Kind: dnn.Pool, K: 3, Stride: 3},
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 8, OutC: 5, Stride: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := accel.BuildPlan(hw.DefaultConfig(), m, accel.Homogeneous(3, xbar.Square(32)), true)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOpcodeStrings(t *testing.T) {
	ops := map[Opcode]string{
		OpLDW: "LDW", OpSETIN: "SETIN", OpFIRE: "FIRE", OpMERGE: "MERGE",
		OpACT: "ACT", OpPOOL: "POOL", OpSTORE: "STORE", OpHALT: "HALT",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if !strings.Contains(Opcode(99).String(), "99") {
		t.Error("unknown opcode string wrong")
	}
}

func TestCompileStructure(t *testing.T) {
	p := tinyPlan(t)
	prog, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Instrs[len(prog.Instrs)-1].Op != OpHALT {
		t.Fatal("program must end with HALT")
	}
	// One LDW per placement.
	var ldw, fire, merge, store, pool, act int
	for _, in := range prog.Instrs {
		switch in.Op {
		case OpLDW:
			ldw++
		case OpFIRE:
			fire++
		case OpMERGE:
			merge++
		case OpSTORE:
			store++
		case OpPOOL:
			pool++
		case OpACT:
			act++
		}
	}
	placements := 0
	for _, la := range p.Layers {
		placements += len(la.Placements)
	}
	if ldw != placements || fire != placements {
		t.Fatalf("LDW=%d FIRE=%d, placements=%d", ldw, fire, placements)
	}
	if merge != 3 || store != 3 || pool != 2 {
		t.Fatalf("MERGE=%d STORE=%d POOL=%d", merge, store, pool)
	}
	if act != 2 { // all mappable layers but the last
		t.Fatalf("ACT=%d, want 2", act)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := tinyPlan(t)
	prog, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	data := prog.Bytes()
	back, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Instrs) != len(prog.Instrs) {
		t.Fatalf("round trip %d instrs, want %d", len(back.Instrs), len(prog.Instrs))
	}
	for i := range prog.Instrs {
		if back.Instrs[i] != prog.Instrs[i] {
			t.Fatalf("instr %d: %v vs %v", i, back.Instrs[i], prog.Instrs[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("AHGC"),                           // truncated after magic
		append([]byte("AHGC"), 9, 0, 1, 0, 0, 0), // bad version
		append([]byte("AHGC"), 1, 0, 255, 255, 255, 255), // absurd count
	}
	for i, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d decoded but should not", i)
		}
	}
}

func TestDisassemble(t *testing.T) {
	p := tinyPlan(t)
	prog, _ := Compile(p)
	var buf bytes.Buffer
	if err := prog.Disassemble(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LDW", "SETIN", "FIRE", "MERGE", "ACT", "POOL", "STORE", "HALT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("disassembly missing %s:\n%s", want, out)
		}
	}
}

// The controller executing a compiled program must produce exactly what the
// direct functional pipeline produces.
func TestControllerMatchesRunInference(t *testing.T) {
	p := tinyPlan(t)
	prog, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	input := dnn.SyntheticTensor(1, 6, 6, 17)
	ctl := NewController(p, 17)
	got, err := ctl.Run(prog, input)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sim.RunInference(p, input, sim.InferenceOptions{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("output len %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("output %d: controller %v, pipeline %v", i, got[i], want[i])
		}
	}
}

func TestControllerProtocolViolations(t *testing.T) {
	p := tinyPlan(t)
	good, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	input := dnn.SyntheticTensor(1, 6, 6, 1)

	mutate := func(f func([]Instr) []Instr) *Program {
		cp := append([]Instr(nil), good.Instrs...)
		return &Program{Instrs: f(cp)}
	}
	find := func(op Opcode) int {
		for i, in := range good.Instrs {
			if in.Op == op {
				return i
			}
		}
		t.Fatalf("no %v in program", op)
		return -1
	}

	cases := map[string]*Program{
		"missing HALT": mutate(func(is []Instr) []Instr { return is[:len(is)-1] }),
		"fire before load": mutate(func(is []Instr) []Instr {
			// Drop every LDW.
			out := is[:0]
			for _, in := range is {
				if in.Op != OpLDW {
					out = append(out, in)
				}
			}
			return out
		}),
		"fire before setin": mutate(func(is []Instr) []Instr {
			i := find(OpSETIN)
			is[i], is[i+1] = is[i+1], is[i]
			return is
		}),
		"merge before fire": mutate(func(is []Instr) []Instr {
			i := find(OpFIRE)
			is[i] = Instr{Op: OpMERGE, A: is[i].A}
			return is
		}),
		"instruction after halt": mutate(func(is []Instr) []Instr {
			return append(is, Instr{Op: OpSETIN})
		}),
		"bad layer operand": mutate(func(is []Instr) []Instr {
			is[0].A = 99
			return is
		}),
		"unknown opcode": mutate(func(is []Instr) []Instr {
			is[0].Op = Opcode(77)
			return is
		}),
	}
	ctl := NewController(p, 1)
	for name, prog := range cases {
		if _, err := ctl.Run(prog, input); err == nil {
			t.Errorf("%s: expected protocol error", name)
		}
	}
	// Wrong input shape.
	if _, err := ctl.Run(good, dnn.NewTensor(1, 5, 5)); err == nil {
		t.Error("wrong input shape must error")
	}
}

func TestCompileRejectsInvalidPlan(t *testing.T) {
	p := tinyPlan(t)
	p.Layers[0].Placements = nil
	if _, err := Compile(p); err == nil {
		t.Fatal("invalid plan must not compile")
	}
}

func TestLDWValidatesAgainstPlan(t *testing.T) {
	p := tinyPlan(t)
	good, _ := Compile(p)
	input := dnn.SyntheticTensor(1, 6, 6, 1)
	// Corrupt the first LDW's slot count.
	bad := &Program{Instrs: append([]Instr(nil), good.Instrs...)}
	bad.Instrs[0].C++
	if _, err := NewController(p, 1).Run(bad, input); err == nil {
		t.Fatal("LDW slot mismatch must error")
	}
	// Point the LDW at a foreign tile.
	bad2 := &Program{Instrs: append([]Instr(nil), good.Instrs...)}
	bad2.Instrs[0].B = 9999
	if _, err := NewController(p, 1).Run(bad2, input); err == nil {
		t.Fatal("LDW to foreign tile must error")
	}
}
