package isa

import (
	"math"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

func TestTimeTracksPlanLatency(t *testing.T) {
	// The GC-level estimate's FIRE+MERGE portion must equal the plan-level
	// simulator latency (same model, different decomposition).
	m := dnn.VGG16()
	p, err := accel.BuildPlan(hw.DefaultConfig(), m, accel.Homogeneous(16, xbar.Square(128)), true)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Time(prog, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	var fireMerge float64
	for _, c := range tp.Costs {
		if !c.Overlapped && (c.Instr.Op == OpFIRE || c.Instr.Op == OpMERGE) {
			fireMerge += c.Latency
		}
	}
	if math.Abs(fireMerge-r.LatencyNS) > 1e-6*r.LatencyNS {
		t.Fatalf("FIRE+MERGE %v != simulator latency %v", fireMerge, r.LatencyNS)
	}
	// The full GC estimate adds buffer/pool overheads on top.
	if tp.InferenceNS <= r.LatencyNS {
		t.Fatalf("GC inference %v should exceed bare crossbar latency %v", tp.InferenceNS, r.LatencyNS)
	}
	if tp.ProgramNS <= 0 {
		t.Fatal("prologue time missing")
	}
}

func TestTimeOverlapsSameLayerFires(t *testing.T) {
	m := dnn.VGG16()
	p, err := accel.BuildPlan(hw.DefaultConfig(), m, accel.Homogeneous(16, xbar.Square(64)), false)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := Compile(p)
	tp, err := Time(prog, p)
	if err != nil {
		t.Fatal(err)
	}
	perLayerOnPath := map[int32]int{}
	for _, c := range tp.Costs {
		if c.Instr.Op == OpFIRE && !c.Overlapped {
			perLayerOnPath[c.Instr.A]++
		}
	}
	for layer, n := range perLayerOnPath {
		if n != 1 {
			t.Fatalf("layer %d has %d on-path FIREs, want 1", layer, n)
		}
	}
	// Critical path excludes all overlapped instructions.
	for _, c := range tp.CriticalPath() {
		if c.Overlapped {
			t.Fatal("critical path contains overlapped instruction")
		}
	}
}

func TestTimeRejectsBadPrograms(t *testing.T) {
	p := tinyPlan(t)
	good, _ := Compile(p)
	bad := &Program{Instrs: append([]Instr(nil), good.Instrs...)}
	bad.Instrs[0].A = 99
	if _, err := Time(bad, p); err == nil {
		t.Fatal("bad layer operand must error")
	}
	bad2 := &Program{Instrs: []Instr{{Op: Opcode(77)}}}
	if _, err := Time(bad2, p); err == nil {
		t.Fatal("unknown opcode must error")
	}
	p.Layers[0].Placements = nil
	if _, err := Time(good, p); err == nil {
		t.Fatal("invalid plan must error")
	}
}
