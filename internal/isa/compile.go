package isa

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/dnn"
)

// Compile lowers an allocation plan to a Global Controller program:
//
//  1. a weight-programming prologue — one LDW per (layer, tile) placement;
//  2. per model layer, in execution order: SETIN, one FIRE per tile holding
//     the layer, MERGE, ACT (except after the final mappable layer), STORE;
//     POOL for pooling layers.
func Compile(p *accel.Plan) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	prog := &Program{}
	emit := func(op Opcode, a, b, c int32) {
		prog.Instrs = append(prog.Instrs, Instr{Op: op, A: a, B: b, C: c})
	}

	// Weight-programming prologue.
	for _, la := range p.Layers {
		for _, pl := range la.Placements {
			emit(OpLDW, int32(la.Layer.Index), int32(pl.TileID), int32(pl.Slots))
		}
	}

	// Inference body.
	last := p.Model.Mappable()[p.Model.NumMappable()-1]
	for mi, l := range p.Model.Layers {
		switch {
		case l.Kind == dnn.Pool:
			emit(OpPOOL, int32(mi), 0, 0)
		case l.Mappable():
			la := p.Layers[l.Index]
			emit(OpSETIN, int32(l.Index), 0, 0)
			for _, pl := range la.Placements {
				emit(OpFIRE, int32(l.Index), int32(pl.TileID), 0)
			}
			emit(OpMERGE, int32(l.Index), 0, 0)
			if l != last {
				emit(OpACT, int32(l.Index), 0, 0)
			}
			emit(OpSTORE, int32(l.Index), 0, 0)
		default:
			return nil, fmt.Errorf("isa: cannot compile layer kind %v", l.Kind)
		}
	}
	emit(OpHALT, 0, 0, 0)
	return prog, nil
}
