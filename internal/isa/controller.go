package isa

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/quant"
	"autohet/internal/sim"
)

// Controller is the Global Controller: it decodes a program and drives the
// accelerator's buffers and tiles, enforcing the hardware protocol —
// weights programmed before firing, inputs latched before MVMs, all of a
// layer's tiles fired before merging, layers executed in model order.
type Controller struct {
	plan *accel.Plan
	seed int64
}

// NewController binds a controller to an allocation plan. seed selects the
// synthetic weights (as in sim.RunInference).
func NewController(plan *accel.Plan, seed int64) *Controller {
	return &Controller{plan: plan, seed: seed}
}

// layerState tracks one mappable layer's execution protocol.
type layerState struct {
	loadedSlots map[int]int // tile → slots programmed
	inputSet    bool
	fired       map[int]bool
	merged      bool
	stored      bool
	input       []float64 // latched flat input (FC) — conv latches the tensor
	inputTensor *dnn.Tensor
	output      []float64
	outTensor   *dnn.Tensor
}

// Run executes the program on the given input and returns the final output
// vector. Any protocol violation aborts with a descriptive error.
func (c *Controller) Run(prog *Program, input *dnn.Tensor) ([]float64, error) {
	m := c.plan.Model
	if input.C != m.InC || input.H != m.InH || input.W != m.InW {
		return nil, fmt.Errorf("isa: input %dx%dx%d, model %q wants %dx%dx%d",
			input.C, input.H, input.W, m.Name, m.InC, m.InH, m.InW)
	}
	states := make([]*layerState, m.NumMappable())
	for i := range states {
		states[i] = &layerState{loadedSlots: map[int]int{}, fired: map[int]bool{}}
	}
	qw := make([]*quant.Matrix, m.NumMappable())
	weights := func(l *dnn.Layer) *quant.Matrix {
		if qw[l.Index] == nil {
			qw[l.Index] = quant.QuantizeWeights(dnn.SyntheticWeights(l, c.seed))
		}
		return qw[l.Index]
	}

	cur := input // current feature map flowing through the model
	var flat []float64
	nextModelLayer := 0 // cursor into m.Layers for execution ordering
	halted := false

	advance := func(mi int) error {
		if nextModelLayer != mi {
			return fmt.Errorf("layer %d executed out of order (expected %d)", mi, nextModelLayer)
		}
		return nil
	}

	for pc, in := range prog.Instrs {
		if halted {
			return nil, fmt.Errorf("isa: pc %d: instruction after HALT", pc)
		}
		switch in.Op {
		case OpLDW:
			st, la, err := c.layer(states, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", pc, err)
			}
			want := 0
			for _, pl := range la.Placements {
				if pl.TileID == int(in.B) {
					want = pl.Slots
				}
			}
			if want == 0 {
				return nil, fmt.Errorf("isa: pc %d: LDW L%d into tile %d which holds none of its slots", pc, in.A+1, in.B)
			}
			if int(in.C) != want {
				return nil, fmt.Errorf("isa: pc %d: LDW L%d tile %d slots %d, plan says %d", pc, in.A+1, in.B, in.C, want)
			}
			st.loadedSlots[int(in.B)] = int(in.C)

		case OpSETIN:
			st, la, err := c.layer(states, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", pc, err)
			}
			mi := c.modelIndex(la.Layer)
			if err := advance(mi); err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", pc, err)
			}
			if la.Layer.Kind == dnn.FC {
				if flat == nil {
					flat = cur.Flatten()
				}
				st.input = flat
			} else {
				st.inputTensor = cur
			}
			st.inputSet = true

		case OpFIRE:
			st, la, err := c.layer(states, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", pc, err)
			}
			if !st.inputSet {
				return nil, fmt.Errorf("isa: pc %d: FIRE L%d before SETIN", pc, in.A+1)
			}
			if st.loadedSlots[int(in.B)] == 0 {
				return nil, fmt.Errorf("isa: pc %d: FIRE L%d on unprogrammed tile %d", pc, in.A+1, in.B)
			}
			_ = la
			st.fired[int(in.B)] = true

		case OpMERGE:
			st, la, err := c.layer(states, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", pc, err)
			}
			for _, pl := range la.Placements {
				if !st.fired[pl.TileID] {
					return nil, fmt.Errorf("isa: pc %d: MERGE L%d before tile %d fired", pc, in.A+1, pl.TileID)
				}
			}
			if err := c.executeLayer(st, la, weights(la.Layer)); err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", pc, err)
			}
			st.merged = true

		case OpACT:
			st, _, err := c.layer(states, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", pc, err)
			}
			if !st.merged {
				return nil, fmt.Errorf("isa: pc %d: ACT L%d before MERGE", pc, in.A+1)
			}
			if st.outTensor != nil {
				dnn.ReLU(st.outTensor.Data)
			} else {
				dnn.ReLU(st.output)
			}

		case OpSTORE:
			st, la, err := c.layer(states, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", pc, err)
			}
			if !st.merged {
				return nil, fmt.Errorf("isa: pc %d: STORE L%d before MERGE", pc, in.A+1)
			}
			if la.Layer.Kind == dnn.FC {
				flat = st.output
			} else {
				cur = st.outTensor
			}
			st.stored = true
			nextModelLayer = c.modelIndex(la.Layer) + 1

		case OpPOOL:
			mi := int(in.A)
			if mi < 0 || mi >= len(m.Layers) || m.Layers[mi].Kind != dnn.Pool {
				return nil, fmt.Errorf("isa: pc %d: POOL on non-pool layer %d", pc, mi)
			}
			if err := advance(mi); err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", pc, err)
			}
			cur = dnn.PoolMaxRef(m.Layers[mi], cur)
			nextModelLayer = mi + 1

		case OpHALT:
			halted = true

		default:
			return nil, fmt.Errorf("isa: pc %d: unknown opcode %d", pc, in.Op)
		}
	}
	if !halted {
		return nil, fmt.Errorf("isa: program did not HALT")
	}
	lastState := states[len(states)-1]
	if !lastState.stored {
		return nil, fmt.Errorf("isa: final layer never stored")
	}
	if flat == nil {
		flat = cur.Flatten()
	}
	return flat, nil
}

// layer resolves an instruction's layer operand.
func (c *Controller) layer(states []*layerState, a int32) (*layerState, *accel.LayerAlloc, error) {
	if a < 0 || int(a) >= len(states) {
		return nil, nil, fmt.Errorf("layer operand %d out of range [0,%d)", a, len(states))
	}
	return states[int(a)], c.plan.Layers[int(a)], nil
}

// modelIndex finds the layer's position in Model.Layers (execution order).
func (c *Controller) modelIndex(l *dnn.Layer) int {
	for i, ml := range c.plan.Model.Layers {
		if ml == l {
			return i
		}
	}
	return -1
}

// executeLayer computes the layer's outputs from its latched input via the
// functional crossbar pipeline.
func (c *Controller) executeLayer(st *layerState, la *accel.LayerAlloc, w *quant.Matrix) error {
	l := la.Layer
	if l.Kind == dnn.FC {
		out, err := sim.LayerMVM(c.plan, la, w, st.input)
		if err != nil {
			return err
		}
		st.output = out
		return nil
	}
	out := dnn.NewTensor(l.OutC, l.OutH, l.OutW)
	for oy := 0; oy < l.OutH; oy++ {
		for ox := 0; ox < l.OutW; ox++ {
			y, err := sim.LayerMVM(c.plan, la, w, st.inputTensor.Patch(l, oy, ox))
			if err != nil {
				return err
			}
			for ch, v := range y {
				out.Set(ch, oy, ox, v)
			}
		}
	}
	st.outTensor = out
	return nil
}
