package isa

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
)

// Instruction-level timing: price a Global Controller program without
// executing it functionally. LDW costs follow the programming model
// (write pulses, per-tile parallel); FIRE covers a layer's bit-serial
// crossbar sweeps on one tile (tiles of one layer overlap, so a layer's
// fire phase is bounded by its slowest tile); MERGE adds the adder-tree and
// inter-tile gather time; POOL/ACT/STORE are buffer-rate bound. The
// estimate decomposes the plan-level latency (sim.Simulate) by instruction,
// which is what a GC trace viewer needs.

// InstrCost is one instruction's priced latency contribution in ns.
type InstrCost struct {
	PC      int
	Instr   Instr
	Latency float64
	// Overlapped marks instructions that run concurrently with a sibling
	// (FIREs of the same layer) and so do not add to the critical path.
	Overlapped bool
}

// TimedProgram is a priced program.
type TimedProgram struct {
	Costs []InstrCost
	// ProgramNS is the weight-loading prologue (one-time).
	ProgramNS float64
	// InferenceNS is the critical-path latency of the inference body.
	InferenceNS float64
}

// Time prices prog against plan. The program must be structurally valid
// (Compile output or equivalent); protocol errors surface as pricing
// errors.
func Time(prog *Program, plan *accel.Plan) (*TimedProgram, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	cfg := plan.Cfg
	tp := &TimedProgram{}
	firesSeen := map[int]bool{}

	for i, in := range prog.Instrs {
		cost := InstrCost{PC: i, Instr: in}
		switch in.Op {
		case OpLDW:
			// Tiles program in parallel: apportion the parallel write time
			// by this placement's slot share, marking all but the longest
			// as overlapped. Simplification: every LDW shows its own
			// tile-local time; the prologue total is the max (parallel).
			la, err := layerOf(plan, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", i, err)
			}
			bits := la.WeightBits
			if bits < 1 {
				bits = cfg.WeightBits
			}
			cells := la.Mapping.UsedCells * int64(bits) * int64(la.Copies) *
				int64(in.C) / int64(la.SlotsNeeded())
			cost.Latency = float64(cells) * hw.WriteVerifyRetries * hw.CellWriteTime / hw.WriteParallelism
			cost.Overlapped = true // prologue is max-parallel
			if cost.Latency > tp.ProgramNS {
				tp.ProgramNS = cost.Latency
			}
		case OpSETIN:
			la, err := layerOf(plan, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", i, err)
			}
			// Stream the input feature map into the buffer, one byte/ns.
			cost.Latency = float64(la.Layer.InputSize()*la.Layer.InC) * 0.001
			tp.InferenceNS += cost.Latency
		case OpFIRE:
			la, err := layerOf(plan, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", i, err)
			}
			copies := la.Copies
			if copies < 1 {
				copies = 1
			}
			mvms := float64(la.Layer.OutputPositions())
			cost.Latency = mvms * float64(cfg.InputBits) * cfg.XBReadLatency(la.Shape) / float64(copies)
			// All FIREs of one layer overlap; only the first adds to the
			// critical path.
			if firesSeen[int(in.A)] {
				cost.Overlapped = true
			} else {
				firesSeen[int(in.A)] = true
				tp.InferenceNS += cost.Latency
			}
		case OpMERGE:
			la, err := layerOf(plan, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", i, err)
			}
			tiles := plan.LayerTiles(la.Layer.Index)
			mvms := float64(la.Layer.OutputPositions())
			copies := la.Copies
			if copies < 1 {
				copies = 1
			}
			cost.Latency = mvms * cfg.MergeLatency(la.Mapping.GridRows, tiles) / float64(copies)
			tp.InferenceNS += cost.Latency
		case OpACT, OpSTORE:
			la, err := layerOf(plan, in.A)
			if err != nil {
				return nil, fmt.Errorf("isa: pc %d: %w", i, err)
			}
			cost.Latency = float64(la.Layer.OutC*la.Layer.OutputPositions()) * 0.0005
			tp.InferenceNS += cost.Latency
		case OpPOOL:
			mi := int(in.A)
			if mi < 0 || mi >= len(plan.Model.Layers) || plan.Model.Layers[mi].Kind != dnn.Pool {
				return nil, fmt.Errorf("isa: pc %d: POOL on non-pool layer %d", i, mi)
			}
			l := plan.Model.Layers[mi]
			cost.Latency = float64(l.OutputPositions()*l.K*l.K*l.InC) * 0.0002
			tp.InferenceNS += cost.Latency
		case OpHALT:
			// free
		default:
			return nil, fmt.Errorf("isa: pc %d: cannot price opcode %d", i, in.Op)
		}
		tp.Costs = append(tp.Costs, cost)
	}
	return tp, nil
}

// layerOf resolves a layer operand against the plan.
func layerOf(plan *accel.Plan, a int32) (*accel.LayerAlloc, error) {
	if a < 0 || int(a) >= len(plan.Layers) {
		return nil, fmt.Errorf("layer operand %d out of range [0,%d)", a, len(plan.Layers))
	}
	return plan.Layers[int(a)], nil
}

// CriticalPath returns the costs on the inference critical path (not
// overlapped), in program order.
func (tp *TimedProgram) CriticalPath() []InstrCost {
	var out []InstrCost
	for _, c := range tp.Costs {
		if !c.Overlapped && c.Latency > 0 {
			out = append(out, c)
		}
	}
	return out
}
