package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestReplayRing(t *testing.T) {
	r := NewReplay(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("cap %d len %d", r.Cap(), r.Len())
	}
	for i := 0; i < 5; i++ {
		r.Add(Transition{Reward: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	// Oldest (0, 1) evicted: rewards present must be {2,3,4}.
	seen := map[float64]bool{}
	for _, tr := range r.buf {
		seen[tr.Reward] = true
	}
	for _, want := range []float64{2, 3, 4} {
		if !seen[want] {
			t.Fatalf("reward %v missing after eviction: %v", want, seen)
		}
	}
}

func TestReplaySample(t *testing.T) {
	r := NewReplay(4)
	r.Add(Transition{Reward: 7})
	rng := rand.New(rand.NewSource(1))
	s := r.Sample(rng, 10)
	if len(s) != 10 {
		t.Fatalf("sample len %d", len(s))
	}
	for _, tr := range s {
		if tr.Reward != 7 {
			t.Fatal("sample returned foreign transition")
		}
	}
}

func TestReplayPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero capacity did not panic")
			}
		}()
		NewReplay(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty sample did not panic")
			}
		}()
		NewReplay(1).Sample(rand.New(rand.NewSource(1)), 1)
	}()
}

func TestOUNoiseMeanReversion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewOUNoise(rng, 0.3)
	var sum float64
	const steps = 20000
	for i := 0; i < steps; i++ {
		sum += n.Sample()
	}
	mean := sum / steps
	if math.Abs(mean) > 0.1 {
		t.Fatalf("OU mean %v too far from 0", mean)
	}
}

func TestOUNoiseResetAndDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NewOUNoise(rng, 0.4)
	n.Sample()
	n.Reset()
	if n.state != 0 {
		t.Fatal("Reset did not return to mu")
	}
	n.Decay(0.5, 0.1)
	if n.Sigma != 0.2 {
		t.Fatalf("Sigma = %v, want 0.2", n.Sigma)
	}
	n.Decay(0.1, 0.1)
	if n.Sigma != 0.1 {
		t.Fatalf("Sigma floor = %v, want 0.1", n.Sigma)
	}
}

func TestAgentActRange(t *testing.T) {
	cfg := DefaultAgentConfig(4)
	a := NewAgent(cfg)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		act := a.Act(s)
		if act <= 0 || act >= 1 {
			t.Fatalf("Act = %v outside (0,1)", act)
		}
		noisy := a.ActNoisy(s)
		if noisy < 0 || noisy > 1 {
			t.Fatalf("ActNoisy = %v outside [0,1]", noisy)
		}
	}
}

func TestAgentDeterministicGivenSeed(t *testing.T) {
	s := []float64{0.1, 0.2, 0.3, 0.4}
	a1 := NewAgent(DefaultAgentConfig(4))
	a2 := NewAgent(DefaultAgentConfig(4))
	if a1.Act(s) != a2.Act(s) {
		t.Fatal("same seed must give same policy")
	}
}

func TestUpdateNoopUntilBatchFull(t *testing.T) {
	cfg := DefaultAgentConfig(2)
	cfg.Batch = 8
	a := NewAgent(cfg)
	a.Remember(Transition{State: []float64{0, 0}, NextState: []float64{0, 0}})
	if td := a.Update(); td != 0 || a.Updates() != 0 {
		t.Fatalf("premature update: td %v updates %d", td, a.Updates())
	}
}

// Bandit sanity check: state s ∈ {0.25, 0.75}; reward 1 when the action
// lands on the same side as the state, else 0. DDPG must learn the state-
// conditional policy.
func TestAgentLearnsStateConditionalBandit(t *testing.T) {
	cfg := DefaultAgentConfig(1)
	cfg.Batch = 32
	cfg.Seed = 5
	a := NewAgent(cfg)
	rng := rand.New(rand.NewSource(6))
	for ep := 0; ep < 600; ep++ {
		s := 0.25
		if rng.Intn(2) == 1 {
			s = 0.75
		}
		act := a.ActNoisy([]float64{s})
		reward := 0.0
		if (s < 0.5) == (act < 0.5) {
			reward = 1
		}
		a.Remember(Transition{State: []float64{s}, Action: act, Reward: reward, NextState: []float64{s}, Done: true})
		a.Update()
		a.EndEpisode()
	}
	low := a.Act([]float64{0.25})
	high := a.Act([]float64{0.75})
	if low >= 0.5 {
		t.Fatalf("policy(0.25) = %v, want < 0.5", low)
	}
	if high <= 0.5 {
		t.Fatalf("policy(0.75) = %v, want > 0.5", high)
	}
}

// The critic must regress toward the bandit's value function: TD error
// shrinks over training.
func TestCriticTDErrorDecreases(t *testing.T) {
	cfg := DefaultAgentConfig(1)
	cfg.Batch = 16
	cfg.Seed = 7
	a := NewAgent(cfg)
	rng := rand.New(rand.NewSource(8))
	var early, late float64
	const rounds = 400
	for ep := 0; ep < rounds; ep++ {
		s := rng.Float64()
		act := a.ActNoisy([]float64{s})
		a.Remember(Transition{State: []float64{s}, Action: act, Reward: act * s, NextState: []float64{s}, Done: true})
		td := a.Update()
		if ep >= 50 && ep < 100 {
			early += td
		}
		if ep >= rounds-50 {
			late += td
		}
	}
	if late >= early {
		t.Fatalf("TD error did not decrease: early %v late %v", early, late)
	}
}

func TestEndEpisodeDecaysNoise(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(2))
	before := a.Noise.Sigma
	a.EndEpisode()
	if a.Noise.Sigma >= before {
		t.Fatal("EndEpisode must decay sigma")
	}
}

// TestEpisodeNoiseHygiene is the regression test for OU episode hygiene:
// two consecutive episodes must each start with the noise process at its
// mean, even when actions between them perturbed the state, and even for an
// agent that arrives mid-life (warm start) — StartEpisode clears residual
// state that EndEpisode alone cannot reach.
func TestEpisodeNoiseHygiene(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(2))
	s := []float64{0.3, 0.7}
	runEpisode := func() {
		a.StartEpisode()
		if got := a.Noise.State(); got != a.Noise.Mu {
			t.Fatalf("episode started with noise state %v, want mean %v", got, a.Noise.Mu)
		}
		for i := 0; i < 10; i++ {
			a.ActNoisy(s)
		}
		a.EndEpisode()
	}
	runEpisode()
	runEpisode() // second consecutive episode also starts from the mean

	// Warm-start shape: an agent whose noise carries residual state from a
	// previous life (Sample without EndEpisode) must still start clean.
	for i := 0; i < 5; i++ {
		a.Noise.Sample()
	}
	if a.Noise.State() == a.Noise.Mu {
		t.Fatal("sampling should have perturbed the noise state")
	}
	a.StartEpisode()
	if got := a.Noise.State(); got != a.Noise.Mu {
		t.Fatalf("warm-started episode began at %v, want mean %v", got, a.Noise.Mu)
	}
}

// TestSigmaScheduleConfigurable pins the sigma decay schedule to the
// config: explicit values are honored, and zero values normalize to the
// paper schedule (×0.99 per episode, floored at 0.02) — including configs
// gob-decoded from saves that predate the fields.
func TestSigmaScheduleConfigurable(t *testing.T) {
	cfg := DefaultAgentConfig(2)
	if cfg.SigmaDecay != 0.99 || cfg.SigmaMin != 0.02 {
		t.Fatalf("default schedule %v/%v, want 0.99/0.02", cfg.SigmaDecay, cfg.SigmaMin)
	}
	cfg.SigmaDecay = 0.5
	cfg.SigmaMin = 0.1
	a := NewAgent(cfg)
	a.EndEpisode()
	if a.Noise.Sigma != 0.2 {
		t.Fatalf("sigma after one episode = %v, want 0.4×0.5 = 0.2", a.Noise.Sigma)
	}
	a.EndEpisode()
	a.EndEpisode()
	if a.Noise.Sigma != 0.1 {
		t.Fatalf("sigma floor = %v, want 0.1", a.Noise.Sigma)
	}
	// Zero-value schedule (legacy saves) normalizes to the paper defaults.
	legacy := AgentConfig{StateDim: 2, Hidden: 8, Sigma: 0.4, Capacity: 16, Batch: 4, Seed: 1}
	b := NewAgent(legacy)
	b.EndEpisode()
	if want := 0.4 * 0.99; math.Abs(b.Noise.Sigma-want) > 1e-12 {
		t.Fatalf("legacy-config sigma after one episode = %v, want %v", b.Noise.Sigma, want)
	}
}

func TestNewAgentPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StateDim 0 did not panic")
		}
	}()
	NewAgent(AgentConfig{StateDim: 0})
}
