// Package rl implements the paper's reinforcement-learning machinery from
// scratch: the DDPG agent (deterministic actor + Q critic with soft target
// networks, §3.2), the experience pool (replay buffer), and Ornstein–
// Uhlenbeck exploration noise. The action space is one continuous scalar in
// [0,1] that the search layer decodes into a crossbar-candidate index.
package rl

import (
	"fmt"
	"math/rand"
)

// Transition is one experience-pool entry, the paper's Eq. 3:
// E_k = (S_k, S_{k+1}, a_k, R). Done marks the episode's final layer.
type Transition struct {
	State     []float64
	Action    float64
	Reward    float64
	NextState []float64
	Done      bool
}

// Replay is a fixed-capacity ring buffer of transitions (the experience
// pool in Fig. 6).
type Replay struct {
	buf  []Transition
	next int
	full bool
}

// NewReplay returns an empty pool with the given capacity.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: replay capacity %d", capacity))
	}
	return &Replay{buf: make([]Transition, 0, capacity)}
}

// Add stores a transition, evicting the oldest once full.
func (r *Replay) Add(t Transition) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
		return
	}
	r.full = true
	r.buf[r.next] = t
	r.next = (r.next + 1) % cap(r.buf)
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int { return len(r.buf) }

// Cap returns the pool capacity.
func (r *Replay) Cap() int { return cap(r.buf) }

// Sample draws n transitions uniformly with replacement. It panics if the
// pool is empty.
func (r *Replay) Sample(rng *rand.Rand, n int) []Transition {
	if len(r.buf) == 0 {
		panic("rl: sampling from empty replay")
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(len(r.buf))]
	}
	return out
}
