package rl

import "math/rand"

// OUNoise is an Ornstein–Uhlenbeck process, DDPG's conventional temporally
// correlated exploration noise (Lillicrap et al.). Sigma can be decayed
// between episodes so exploration anneals as the search converges.
type OUNoise struct {
	Mu    float64 // long-run mean
	Theta float64 // mean-reversion rate
	Sigma float64 // diffusion scale

	state float64
	rng   *rand.Rand
}

// NewOUNoise returns a process with the usual DDPG defaults
// (mu 0, theta 0.15, sigma as given) seeded from rng.
func NewOUNoise(rng *rand.Rand, sigma float64) *OUNoise {
	n := &OUNoise{Mu: 0, Theta: 0.15, Sigma: sigma, rng: rng}
	n.Reset()
	return n
}

// Reset returns the process to its mean; call between episodes.
func (n *OUNoise) Reset() { n.state = n.Mu }

// State returns the process's current value without advancing it — episode
// hygiene tests assert it sits at the mean when an episode starts.
func (n *OUNoise) State() float64 { return n.state }

// Sample advances the process one step and returns the new value.
func (n *OUNoise) Sample() float64 {
	n.state += n.Theta*(n.Mu-n.state) + n.Sigma*n.rng.NormFloat64()
	return n.state
}

// Decay multiplies sigma by factor, flooring at minSigma.
func (n *OUNoise) Decay(factor, minSigma float64) {
	n.Sigma *= factor
	if n.Sigma < minSigma {
		n.Sigma = minSigma
	}
}
