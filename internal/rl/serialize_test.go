package rl

import (
	"bytes"
	"strings"
	"testing"
)

func TestAgentSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultAgentConfig(4)
	cfg.Seed = 41
	a := NewAgent(cfg)
	// Perturb the agent so it differs from a fresh one.
	for i := 0; i < 80; i++ {
		s := []float64{0.1, 0.2, 0.3, 0.4}
		act := a.ActNoisy(s)
		a.Remember(Transition{State: s, Action: act, Reward: act, NextState: s, Done: true})
		a.Update()
	}
	a.EndEpisode()

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := []float64{0.5, 0.5, 0.5, 0.5}
	if a.Act(s) != back.Act(s) {
		t.Fatalf("policy diverged after round trip: %v vs %v", a.Act(s), back.Act(s))
	}
	if back.Noise.Sigma != a.Noise.Sigma {
		t.Fatalf("noise sigma %v vs %v", back.Noise.Sigma, a.Noise.Sigma)
	}
	if back.Updates() != a.Updates() {
		t.Fatalf("update count %d vs %d", back.Updates(), a.Updates())
	}
	// Loaded agent can keep training.
	back.Remember(Transition{State: s, Action: 0.5, Reward: 1, NextState: s, Done: true})
	for i := 0; i < back.cfg.Batch; i++ {
		back.Remember(Transition{State: s, Action: 0.5, Reward: 1, NextState: s, Done: true})
	}
	if back.Update() < 0 {
		t.Fatal("loaded agent failed to update")
	}
}

func TestLoadAgentRejectsGarbage(t *testing.T) {
	if _, err := LoadAgent(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage must not decode")
	}
	// A valid header followed by nothing must also fail.
	a := NewAgent(DefaultAgentConfig(3))
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/4]
	if _, err := LoadAgent(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated agent must not decode")
	}
}
