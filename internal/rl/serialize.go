package rl

import (
	"encoding/gob"
	"fmt"
	"io"

	"autohet/internal/nn"
)

// Agent persistence: the paper's workflow trains the RL agent once offline
// and reuses the resulting strategy many times (§4.5); saving the agent
// additionally allows warm-starting searches for related models.

type agentHeader struct {
	Cfg   AgentConfig
	Sigma float64
	Steps int
}

// Save writes the agent's configuration, exploration state, and all four
// networks (actor, critic, and their targets) to w. The experience pool is
// not persisted.
func (a *Agent) Save(w io.Writer) error {
	hdr := agentHeader{Cfg: a.cfg, Sigma: a.Noise.Sigma, Steps: a.updates}
	if err := gob.NewEncoder(w).Encode(hdr); err != nil {
		return fmt.Errorf("rl: encoding agent header: %w", err)
	}
	nets := []*nn.Network{a.Actor, a.Critic, a.ActorTarget, a.CriticTarget}
	if a.cfg.TwinCritics {
		nets = append(nets, a.Critic2, a.Critic2Target)
	}
	for _, net := range nets {
		if err := net.Save(w); err != nil {
			return fmt.Errorf("rl: encoding network: %w", err)
		}
	}
	return nil
}

// LoadAgent reads an agent saved by Save. Its optimizers restart fresh
// (Adam moments are not persisted), which matters only if training resumes.
func LoadAgent(r io.Reader) (*Agent, error) {
	var hdr agentHeader
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("rl: decoding agent header: %w", err)
	}
	if hdr.Cfg.StateDim <= 0 {
		return nil, fmt.Errorf("rl: corrupt agent header: %+v", hdr)
	}
	a := NewAgent(hdr.Cfg)
	nets := []**nn.Network{&a.Actor, &a.Critic, &a.ActorTarget, &a.CriticTarget}
	if hdr.Cfg.TwinCritics {
		nets = append(nets, &a.Critic2, &a.Critic2Target)
	}
	for i, slot := range nets {
		net, err := nn.LoadNetwork(r)
		if err != nil {
			return nil, fmt.Errorf("rl: decoding network %d: %w", i, err)
		}
		if net.InputSize() != (*slot).InputSize() || net.OutputSize() != (*slot).OutputSize() {
			return nil, fmt.Errorf("rl: network %d shape %d→%d does not match config %d→%d",
				i, net.InputSize(), net.OutputSize(), (*slot).InputSize(), (*slot).OutputSize())
		}
		*slot = net
	}
	// Rebind the optimizers to the loaded networks.
	a.actorOpt = nn.NewAdam(a.Actor, hdr.Cfg.ActorLR)
	a.criticOpt = nn.NewAdam(a.Critic, hdr.Cfg.CriticLR)
	if hdr.Cfg.TwinCritics {
		a.critic2Opt = nn.NewAdam(a.Critic2, hdr.Cfg.CriticLR)
	}
	a.Noise.Sigma = hdr.Sigma
	a.updates = hdr.Steps
	return a, nil
}
