package rl

import (
	"bytes"
	"math/rand"
	"testing"
)

func td3Config(stateDim int) AgentConfig {
	cfg := DefaultAgentConfig(stateDim)
	cfg.TwinCritics = true
	cfg.TargetNoise = 0.1
	return cfg
}

func TestTD3AgentConstruction(t *testing.T) {
	a := NewAgent(td3Config(3))
	if a.Critic2 == nil || a.Critic2Target == nil {
		t.Fatal("twin critics missing")
	}
	if a.cfg.PolicyDelay != 2 {
		t.Fatalf("policy delay = %d, want default 2", a.cfg.PolicyDelay)
	}
	// Plain DDPG has no second critic.
	d := NewAgent(DefaultAgentConfig(3))
	if d.Critic2 != nil {
		t.Fatal("DDPG agent has a second critic")
	}
}

func TestTD3LearnsBandit(t *testing.T) {
	cfg := td3Config(1)
	cfg.Batch = 32
	cfg.Seed = 15
	a := NewAgent(cfg)
	rng := rand.New(rand.NewSource(16))
	for ep := 0; ep < 700; ep++ {
		s := 0.25
		if rng.Intn(2) == 1 {
			s = 0.75
		}
		act := a.ActNoisy([]float64{s})
		reward := 0.0
		if (s < 0.5) == (act < 0.5) {
			reward = 1
		}
		a.Remember(Transition{State: []float64{s}, Action: act, Reward: reward, NextState: []float64{s}, Done: true})
		a.Update()
		a.EndEpisode()
	}
	if low := a.Act([]float64{0.25}); low >= 0.5 {
		t.Fatalf("TD3 policy(0.25) = %v, want < 0.5", low)
	}
	if high := a.Act([]float64{0.75}); high <= 0.5 {
		t.Fatalf("TD3 policy(0.75) = %v, want > 0.5", high)
	}
}

// Clipped double-Q must not over-estimate: on a bandit with constant reward
// 0.5 and γ bootstrapping, the twin-critic target Q stays at or below the
// single-critic one (statistically).
func TestTD3TargetsBelowDDPG(t *testing.T) {
	run := func(twin bool) float64 {
		cfg := DefaultAgentConfig(1)
		cfg.Batch = 16
		cfg.Seed = 17
		cfg.TwinCritics = twin
		a := NewAgent(cfg)
		rng := rand.New(rand.NewSource(18))
		for ep := 0; ep < 300; ep++ {
			s := rng.Float64()
			act := a.ActNoisy([]float64{s})
			// Non-terminal transitions force bootstrapping.
			a.Remember(Transition{State: []float64{s}, Action: act, Reward: 0.5, NextState: []float64{rng.Float64()}})
			a.Update()
		}
		// Average Q over a probe grid.
		var sum float64
		n := 0
		for s := 0.05; s < 1; s += 0.1 {
			in := []float64{s, a.Act([]float64{s})}
			sum += a.Critic.Forward(in)[0]
			n++
		}
		return sum / float64(n)
	}
	ddpg := run(false)
	td3 := run(true)
	if td3 > ddpg+0.2 {
		t.Fatalf("TD3 mean Q %v well above DDPG %v — double-Q clipping ineffective", td3, ddpg)
	}
}

func TestTD3SaveLoadRoundTrip(t *testing.T) {
	a := NewAgent(td3Config(2))
	// Train a little so all six networks diverge from initialization.
	for i := 0; i < 80; i++ {
		s := []float64{0.3, 0.7}
		act := a.ActNoisy(s)
		a.Remember(Transition{State: s, Action: act, Reward: act, NextState: s, Done: true})
		a.Update()
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Critic2 == nil || back.Critic2Target == nil {
		t.Fatal("twin critics lost in round trip")
	}
	s := []float64{0.3, 0.7}
	if a.Act(s) != back.Act(s) {
		t.Fatal("TD3 policy diverged after round trip")
	}
	probe := []float64{0.3, 0.7, 0.5}
	if a.Critic2.Forward(probe)[0] != back.Critic2.Forward(probe)[0] {
		t.Fatal("Critic2 diverged after round trip")
	}
	// Loaded TD3 agent keeps training.
	for i := 0; i <= back.cfg.Batch; i++ {
		back.Remember(Transition{State: s, Action: 0.5, Reward: 1, NextState: s, Done: true})
	}
	back.Update()
}
