package rl

import (
	"fmt"
	"math/rand"

	"autohet/internal/mat"
	"autohet/internal/nn"
)

// AgentConfig collects the DDPG hyperparameters.
type AgentConfig struct {
	StateDim int
	Hidden   int     // width of the two hidden layers in actor and critic
	ActorLR  float64 // Adam step size for the actor
	CriticLR float64 // Adam step size for the critic
	Gamma    float64 // discount
	Tau      float64 // soft target-update rate
	Sigma    float64 // initial OU exploration sigma
	// SigmaDecay multiplies sigma once per episode (EndEpisode) and
	// SigmaMin floors it, so exploration anneals as the search converges.
	// Zero values select the paper schedule (0.99 decay to a 0.02 floor).
	SigmaDecay float64
	SigmaMin   float64
	Capacity   int // experience-pool capacity
	Batch      int // minibatch size per update
	Seed       int64

	// TD3 extensions (Fujimoto et al., 2018), opt-in. TwinCritics enables
	// clipped double-Q targets: two critics trained on the same batches,
	// targets take min(Q1', Q2'); the actor updates only every PolicyDelay
	// steps against Critic 1; target actions get clipped Gaussian noise of
	// scale TargetNoise (smoothing). All zero values keep plain DDPG.
	TwinCritics bool
	PolicyDelay int
	TargetNoise float64
}

// DefaultAgentConfig returns hyperparameters that converge on all the paper
// workloads within a few hundred episodes.
func DefaultAgentConfig(stateDim int) AgentConfig {
	return AgentConfig{
		StateDim:   stateDim,
		Hidden:     64,
		ActorLR:    1e-3,
		CriticLR:   1e-2,
		Gamma:      0.6,
		Tau:        0.01,
		Sigma:      0.4,
		SigmaDecay: 0.99,
		SigmaMin:   0.02,
		Capacity:   8192,
		Batch:      64,
		Seed:       1,
	}
}

// Agent is the DDPG actor-critic pair with target networks (paper §3.2).
// The actor maps a state to one deterministic action in (0,1); the critic
// estimates Q(s, a). Not safe for concurrent use.
type Agent struct {
	cfg AgentConfig
	rng *rand.Rand

	Actor        *nn.Network
	ActorTarget  *nn.Network
	Critic       *nn.Network
	CriticTarget *nn.Network
	// Critic2/Critic2Target exist only with cfg.TwinCritics.
	Critic2       *nn.Network
	Critic2Target *nn.Network

	actorOpt   *nn.Adam
	criticOpt  *nn.Adam
	critic2Opt *nn.Adam
	Noise      *OUNoise
	Pool       *Replay

	criticIn []float64 // scratch: state ++ action
	updates  int
}

// NewAgent builds a DDPG agent. Targets start as copies of the online
// networks.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.StateDim <= 0 {
		panic(fmt.Sprintf("rl: state dim %d", cfg.StateDim))
	}
	// Zero-value sigma schedule selects the paper defaults; this also
	// normalizes configs gob-decoded from saves that predate the fields.
	if cfg.SigmaDecay == 0 {
		cfg.SigmaDecay = 0.99
	}
	if cfg.SigmaMin == 0 {
		cfg.SigmaMin = 0.02
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	actor := nn.NewNetwork(rng, cfg.StateDim,
		nn.LayerSpec{Out: cfg.Hidden, Act: nn.ReLU},
		nn.LayerSpec{Out: cfg.Hidden, Act: nn.ReLU},
		nn.LayerSpec{Out: 1, Act: nn.Sigmoid},
	)
	critic := nn.NewNetwork(rng, cfg.StateDim+1,
		nn.LayerSpec{Out: cfg.Hidden, Act: nn.ReLU},
		nn.LayerSpec{Out: cfg.Hidden, Act: nn.ReLU},
		nn.LayerSpec{Out: 1, Act: nn.Linear},
	)
	a := &Agent{
		cfg:          cfg,
		rng:          rng,
		Actor:        actor,
		ActorTarget:  actor.Clone(),
		Critic:       critic,
		CriticTarget: critic.Clone(),
		actorOpt:     nn.NewAdam(actor, cfg.ActorLR),
		criticOpt:    nn.NewAdam(critic, cfg.CriticLR),
		Noise:        NewOUNoise(rng, cfg.Sigma),
		Pool:         NewReplay(cfg.Capacity),
		criticIn:     make([]float64, cfg.StateDim+1),
	}
	if cfg.TwinCritics {
		critic2 := nn.NewNetwork(rng, cfg.StateDim+1,
			nn.LayerSpec{Out: cfg.Hidden, Act: nn.ReLU},
			nn.LayerSpec{Out: cfg.Hidden, Act: nn.ReLU},
			nn.LayerSpec{Out: 1, Act: nn.Linear},
		)
		a.Critic2 = critic2
		a.Critic2Target = critic2.Clone()
		a.critic2Opt = nn.NewAdam(critic2, cfg.CriticLR)
		if a.cfg.PolicyDelay < 1 {
			a.cfg.PolicyDelay = 2
		}
	}
	return a
}

// Act returns the deterministic policy action for state, in (0,1).
func (a *Agent) Act(state []float64) float64 {
	return a.Actor.Forward(state)[0]
}

// ActNoisy returns the policy action perturbed by OU exploration noise,
// clamped to [0,1].
func (a *Agent) ActNoisy(state []float64) float64 {
	return mat.Clamp(a.Act(state)+a.Noise.Sample(), 0, 1)
}

// Remember stores a transition in the experience pool.
func (a *Agent) Remember(t Transition) { a.Pool.Add(t) }

// qTarget computes r + γ(1−done)·Q'(s', μ'(s')). With twin critics the
// target is the clipped-double-Q minimum over both target critics, and the
// target action carries clipped smoothing noise.
func (a *Agent) qTarget(t Transition) float64 {
	if t.Done {
		return t.Reward
	}
	na := a.ActorTarget.Forward(t.NextState)[0]
	if a.cfg.TwinCritics && a.cfg.TargetNoise > 0 {
		noise := mat.Clamp(a.rng.NormFloat64()*a.cfg.TargetNoise, -2*a.cfg.TargetNoise, 2*a.cfg.TargetNoise)
		na = mat.Clamp(na+noise, 0, 1)
	}
	copy(a.criticIn, t.NextState)
	a.criticIn[a.cfg.StateDim] = na
	q := a.CriticTarget.Forward(a.criticIn)[0]
	if a.cfg.TwinCritics {
		if q2 := a.Critic2Target.Forward(a.criticIn)[0]; q2 < q {
			q = q2
		}
	}
	return t.Reward + a.cfg.Gamma*q
}

// Update samples one minibatch from the pool and performs one critic step,
// one actor step, and a soft target update. It returns the critic's mean
// squared TD error over the batch. It is a no-op returning 0 until the pool
// holds at least one batch of experience.
func (a *Agent) Update() float64 {
	if a.Pool.Len() < a.cfg.Batch {
		return 0
	}
	batch := a.Pool.Sample(a.rng, a.cfg.Batch)

	// Critics: minimize (Q(s,a) − y)² (both critics see the same targets).
	a.Critic.ZeroGrad()
	if a.Critic2 != nil {
		a.Critic2.ZeroGrad()
	}
	var tdSum float64
	for _, t := range batch {
		y := a.qTarget(t)
		copy(a.criticIn, t.State)
		a.criticIn[a.cfg.StateDim] = t.Action
		q := a.Critic.Forward(a.criticIn)[0]
		td := q - y
		tdSum += td * td
		a.Critic.Backward([]float64{td})
		if a.Critic2 != nil {
			q2 := a.Critic2.Forward(a.criticIn)[0]
			a.Critic2.Backward([]float64{q2 - y})
		}
	}
	a.criticOpt.Step(a.Critic, a.cfg.Batch)
	if a.Critic2 != nil {
		a.critic2Opt.Step(a.Critic2, a.cfg.Batch)
	}
	a.updates++

	// Actor (delayed with twin critics): ascend ∇_a Q1(s, μ(s))·∇_θ μ(s).
	if a.Critic2 == nil || a.updates%a.cfg.PolicyDelay == 0 {
		a.Actor.ZeroGrad()
		for _, t := range batch {
			act := a.Actor.Forward(t.State)[0]
			copy(a.criticIn, t.State)
			a.criticIn[a.cfg.StateDim] = act
			a.Critic.ZeroGrad() // gradients here are only probes for dQ/da
			a.Critic.Forward(a.criticIn)
			dIn := a.Critic.Backward([]float64{1})
			dQda := dIn[a.cfg.StateDim]
			a.Actor.Backward([]float64{-dQda}) // minimize −Q
		}
		a.Critic.ZeroGrad()
		a.actorOpt.Step(a.Actor, a.cfg.Batch)

		// Soft target tracking, on the actor's cadence.
		a.ActorTarget.SoftUpdate(a.Actor, a.cfg.Tau)
		a.CriticTarget.SoftUpdate(a.Critic, a.cfg.Tau)
		if a.Critic2 != nil {
			a.Critic2Target.SoftUpdate(a.Critic2, a.cfg.Tau)
		}
	}
	return tdSum / float64(a.cfg.Batch)
}

// Updates reports how many minibatch updates have run.
func (a *Agent) Updates() int { return a.updates }

// StartEpisode resets the exploration noise to its mean so the episode's
// first action is not biased by residual state — from the previous episode
// of this search, or from a warm-started agent's earlier life. Search loops
// call it at the top of every episode; it is idempotent.
func (a *Agent) StartEpisode() { a.Noise.Reset() }

// EndEpisode decays the exploration magnitude on the configured schedule
// (paper default: ×0.99 per episode, floored at 0.02) and resets the noise
// state for the next episode.
func (a *Agent) EndEpisode() {
	a.Noise.Decay(a.cfg.SigmaDecay, a.cfg.SigmaMin)
	a.Noise.Reset()
}
