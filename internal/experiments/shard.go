package experiments

import (
	"fmt"
	"math"

	"autohet/internal/accel"
	"autohet/internal/des"
	"autohet/internal/dnn"
	"autohet/internal/fleet"
	"autohet/internal/noc"
	"autohet/internal/report"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// Shard experiment — pipeline-parallel model sharding vs replicated serving.
// Each zoo model is cut into shardStages latency-balanced contiguous stages
// (sim.ShardPlan, mesh-priced), and the chain of one-replica-per-stage is
// offered the same load as a single whole-model replica of (near-)equal
// total silicon. Both fleets have the same steady-state capacity — a
// whole-model replica is already layer-pipelined at the bottleneck layer's
// interval, and the slowest stage of the cut contains that same layer — so
// the comparison isolates what sharding buys (a ~K× smaller largest chip)
// and what it costs (NoC transfer latency, per-stage queueing, and the
// pipeline bubble from stage imbalance).

// shardStages is the pipeline depth the experiment cuts each model into.
const shardStages = 4

// shardLoad offers this fraction of the chain's steady-state capacity.
const shardLoad = 0.8

// Shard generates the sharded-vs-replicated serving table and cross-checks
// every sharded goroutine run against the DES engine.
func (s *Suite) Shard() (*report.Table, error) {
	mesh, err := noc.NewMeshFor(s.Cfg.TilesPerBank)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: fmt.Sprintf("Extension — pipeline-parallel sharding vs replication (%d stages, %.0f%% load, mesh-priced transfers)",
			shardStages, 100*shardLoad),
		Header: []string{"Model", "Serving", "Replicas", "Total (mm²)", "Max chip (mm²)",
			"Transfer (µs)", "Throughput (req/s)", "p50 (µs)", "p99 (µs)", "Bubble"},
	}
	maxDev := 0.0
	for _, m := range []*dnn.Model{dnn.AlexNet(), dnn.VGG11(), dnn.VGG16()} {
		p, err := accel.BuildPlan(s.Cfg, m, accel.Homogeneous(m.NumMappable(), xbar.Square(128)), true)
		if err != nil {
			return nil, err
		}
		sr, err := sim.ShardPlan(p, mesh, shardStages)
		if err != nil {
			return nil, err
		}
		w := fleet.Workload{
			ArrivalRate: shardLoad * 1e9 / sr.IntervalNS(),
			Requests:    3000,
			Seed:        s.Seed,
		}

		// Replicated baseline: one whole-model replica at the mesh-priced
		// latencies the cuts were balanced on.
		rep, err := runShardedFleet(w, 1, nil, s.Seed,
			fleet.ReplicaSpec{Name: m.Name, Pipeline: sim.PipelineFromResult(sr.Result, 1)})
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Name, "replicated", report.I(1),
			fmt.Sprintf("%.1f", p.Area()/1e6), fmt.Sprintf("%.1f", p.Area()/1e6), "-",
			report.F(rep.ThroughputRPS),
			fmt.Sprintf("%.1f", rep.P50NS/1000), fmt.Sprintf("%.1f", rep.P99NS/1000),
			fmt.Sprintf("%.3f", rep.BubbleFraction))

		// Sharded chain: one replica per stage, transfers priced on the mesh.
		specs := make([]fleet.ReplicaSpec, len(sr.Stages))
		transfers := make([]float64, len(sr.Stages)-1)
		var total, maxChip float64
		for i := range sr.Stages {
			st := &sr.Stages[i]
			specs[i] = fleet.ReplicaSpec{
				Name:     fmt.Sprintf("%s-s%d", m.Name, i),
				Pipeline: &sim.PipelineResult{FillNS: st.FillNS, IntervalNS: st.IntervalNS},
			}
			total += st.AreaUM2
			maxChip = math.Max(maxChip, st.AreaUM2)
			if i < len(transfers) {
				transfers[i] = st.TransferNS
			}
		}
		sh, err := runShardedFleet(w, len(sr.Stages), transfers, s.Seed, specs...)
		if err != nil {
			return nil, err
		}
		dev, err := desShardCheck(w, transfers, sh, specs...)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		maxDev = math.Max(maxDev, dev)
		t.AddRow(m.Name, "sharded", report.I(len(sr.Stages)),
			fmt.Sprintf("%.1f", total/1e6), fmt.Sprintf("%.1f", maxChip/1e6),
			fmt.Sprintf("%.2f", sr.TransferNS/1000),
			report.F(sh.ThroughputRPS),
			fmt.Sprintf("%.1f", sh.P50NS/1000), fmt.Sprintf("%.1f", sh.P99NS/1000),
			fmt.Sprintf("%.3f", sh.BubbleFraction))
	}
	t.Note = fmt.Sprintf("Equal capacity by construction (the bottleneck layer bounds both intervals); "+
		"sharding pays transfer latency, per-stage queueing, and the stage-imbalance bubble for a smaller "+
		"largest chip — modest here, because latency-balanced cuts leave the area-heavy FC layers in one "+
		"stage. Goroutine-vs-DES crosscheck max relative deviation %.2g (tolerance 1e-6).", maxDev)
	return t, nil
}

// runShardedFleet runs one free-running goroutine-fleet workload. Round-robin
// dispatch over single-replica stages is pacing-independent, so a free clock
// keeps the sweep fast and the run bit-reproducible against the DES engine.
func runShardedFleet(w fleet.Workload, shards int, transfers []float64, seed int64, specs ...fleet.ReplicaSpec) (*fleet.Result, error) {
	cfg := fleet.DefaultConfig()
	cfg.TimeScale = 1e-9
	cfg.QueueDepth = w.Requests
	cfg.Seed = seed
	cfg.Shards = shards
	cfg.StageTransferNS = transfers
	f, err := fleet.New(cfg, specs...)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fleet.Run(f, w)
}

// desShardCheck replays the sharded workload on the discrete-event engine and
// returns the worst relative deviation across the latency statistics. One
// replica per stage makes every dispatch decision forced, so the two engines
// must agree to float noise; a deviation beyond 1e-6 fails the experiment.
func desShardCheck(w fleet.Workload, transfers []float64, want *fleet.Result, specs ...fleet.ReplicaSpec) (float64, error) {
	cfg := des.DefaultConfig()
	cfg.QueueDepth = w.Requests
	cfg.Shards = len(specs)
	cfg.StageTransferNS = transfers
	f, err := des.NewFleet(cfg, specs...)
	if err != nil {
		return 0, err
	}
	got, err := f.Run(w)
	if err != nil {
		return 0, err
	}
	if got.Completed != want.Completed || got.Shed != want.Shed || got.Failed != want.Failed {
		return 0, fmt.Errorf("des crosscheck: %d/%d/%d completed/shed/failed, goroutine %d/%d/%d",
			got.Completed, got.Shed, got.Failed, want.Completed, want.Shed, want.Failed)
	}
	dev := 0.0
	for _, p := range [][2]float64{
		{got.MeanNS, want.MeanNS}, {got.P50NS, want.P50NS},
		{got.P95NS, want.P95NS}, {got.P99NS, want.P99NS}, {got.MaxNS, want.MaxNS},
	} {
		dev = math.Max(dev, math.Abs(p[0]-p[1])/math.Max(1, p[1]))
	}
	if dev > 1e-6 {
		return dev, fmt.Errorf("des crosscheck deviation %v exceeds 1e-6", dev)
	}
	return dev, nil
}
