package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// MVMKernelLeg records the packed-vs-scalar kernel comparison on the paper's
// Fig. 5 layer (3×3×12 → 128 on a 2×2 grid of 64×64 crossbars). This is the
// original single-vector leg, kept unchanged for comparison across benchmark
// revisions.
type MVMKernelLeg struct {
	ScalarNsPerMVM float64 `json:"scalar_ns_per_mvm"`
	PackedNsPerMVM float64 `json:"packed_ns_per_mvm"`
	Speedup        float64 `json:"speedup"`
	// BitExact confirms the two kernels produced `==`-identical outputs and
	// stats on this layer before timing.
	BitExact bool `json:"bit_exact"`
}

// MVMKernelBatchLeg records the engine's fast serving pipeline at one kernel
// batch size on the same Fig. 5 layer. The B=1 leg times the unbatched
// per-patch pipeline (per-patch quantization + single-vector integer kernel —
// the serving path before kernel batching); batched legs time the batch
// pipeline (one-pass codes-only batch quantization + the blocked/pair batched
// kernel hierarchy). speedup_vs_b1 therefore reads as the per-patch
// amortization a formed batch of B buys over one-at-a-time processing.
type MVMKernelBatchLeg struct {
	Batch      int     `json:"batch"`
	NsPerMVM   float64 `json:"ns_per_mvm"`
	MVMsPerSec float64 `json:"mvms_per_sec"`
	// SpeedupVsB1 is ns/MVM at B=1 divided by ns/MVM at this batch size.
	SpeedupVsB1 float64 `json:"speedup_vs_b1"`
	// BitExact confirms every batch member matched the bit-serial crossbar
	// reference (single-vector and batched plane-sweep) `==`-exactly before
	// timing.
	BitExact bool `json:"bit_exact"`
}

// MVMServeLeg records end-to-end inference throughput on the serving path
// (Engine.RunBatch, fast integer kernels) at one batch size.
type MVMServeLeg struct {
	Batch             int     `json:"batch"`
	WallSecondsPerInf float64 `json:"wall_seconds_per_inference"`
	InferencesPerSec  float64 `json:"inferences_per_sec"`
}

// MVMEndToEndLeg records whole-network inference throughput. The headline
// wall_seconds_per_inference / inferences_per_sec measure the serving path
// (fast integer kernels, batch 1) — the path a deployed engine runs per
// request. The bit_exact_* fields time the per-crossbar bit-serial pipeline
// that earlier benchmark revisions reported as the headline; it is kept so
// the trajectory across revisions stays comparable. serve_batch sweeps the
// serving path over batch sizes.
type MVMEndToEndLeg struct {
	Model             string  `json:"model"`
	MVMsPerInference  int64   `json:"mvms_per_inference"`
	WallSecondsPerInf float64 `json:"wall_seconds_per_inference"`
	InferencesPerSec  float64 `json:"inferences_per_sec"`
	// AllocsPerPatch is heap allocations per sliding-window MVM on the warm
	// serving path; batch quantization and persistent scratch hold it at ~0.
	AllocsPerPatch     float64       `json:"allocs_per_patch"`
	BitExactSecsPerInf float64       `json:"bit_exact_seconds_per_inference"`
	BitExactInfPerSec  float64       `json:"bit_exact_inferences_per_sec"`
	ScalarEstimateSecs float64       `json:"scalar_estimate_seconds_per_inference"`
	EstimatedSpeedup   float64       `json:"estimated_speedup"`
	ServeBatch         []MVMServeLeg `json:"serve_batch"`
	// BitExactMatchesFast confirms the fast serving path reproduced the
	// bit-exact pipeline's outputs `==`-identically before timing.
	BitExactMatchesFast bool `json:"bit_exact_matches_fast"`
}

// MVMBench is the JSON document cmd/experiments -bench mvm writes: the packed
// popcount engine measured against the byte-per-cell scalar reference it
// replaced, at kernel granularity (single-vector and batched) and end to end.
type MVMBench struct {
	Workers     int                 `json:"workers"`
	Seed        int64               `json:"seed"`
	Kernel      MVMKernelLeg        `json:"kernel"`
	KernelBatch []MVMKernelBatchLeg `json:"kernel_batch"`
	EndToEnd    MVMEndToEndLeg      `json:"end_to_end"`
}

// KernelBatchLeg returns the kernel-batch leg for batch size b, or nil.
func (b *MVMBench) KernelBatchLeg(batch int) *MVMKernelBatchLeg {
	for i := range b.KernelBatch {
		if b.KernelBatch[i].Batch == batch {
			return &b.KernelBatch[i]
		}
	}
	return nil
}

// BenchMVM measures the packed MVM engine: the Fig. 5 kernel comparison, the
// batched-kernel amortization sweep, and an AlexNet-scale end-to-end leg.
func BenchMVM(seed int64) (*MVMBench, error) {
	return benchMVMModel(dnn.AlexNet(), seed, 200)
}

func benchMVMModel(m *dnn.Model, seed int64, kernelReps int) (*MVMBench, error) {
	b := &MVMBench{Workers: runtime.GOMAXPROCS(0), Seed: seed}
	var err error
	if b.Kernel, err = benchMVMKernel(seed, kernelReps); err != nil {
		return nil, err
	}
	if b.KernelBatch, err = benchMVMKernelBatch(seed, kernelReps); err != nil {
		return nil, err
	}
	if b.EndToEnd, err = benchMVMEndToEnd(m, seed); err != nil {
		return nil, err
	}
	return b, nil
}

// fig5Layer builds the Fig. 5 kernel-benchmark layer and its crossbar plan.
func fig5Layer(cfg hw.Config) (*accel.LayerAlloc, error) {
	l := &dnn.Layer{Name: "fig5", Kind: dnn.Conv, K: 3, InC: 12, OutC: 128, Stride: 1, Pad: 0, InH: 8, InW: 8}
	m, err := dnn.NewFlatModel("fig5", 8, 8, 12, []*dnn.Layer{l})
	if err != nil {
		return nil, err
	}
	p, err := accel.BuildPlan(cfg, m, accel.Homogeneous(1, xbar.Square(64)), false)
	if err != nil {
		return nil, err
	}
	return p.Layers[0], nil
}

// benchMVMKernel times ExecuteMVM against ExecuteMVMScalar on the Fig. 5
// layer, asserting bit-exact agreement first.
func benchMVMKernel(seed int64, reps int) (MVMKernelLeg, error) {
	cfg := hw.DefaultConfig()
	la, err := fig5Layer(cfg)
	if err != nil {
		return MVMKernelLeg{}, err
	}
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, seed+1))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, seed+2))

	packed, ps, err := sim.ExecuteMVM(cfg, la, w, in)
	if err != nil {
		return MVMKernelLeg{}, err
	}
	scalar, ss, err := sim.ExecuteMVMScalar(cfg, la, w, in)
	if err != nil {
		return MVMKernelLeg{}, err
	}
	leg := MVMKernelLeg{BitExact: ps == ss}
	for j := range packed {
		if packed[j] != scalar[j] {
			leg.BitExact = false
		}
	}
	if !leg.BitExact {
		return leg, fmt.Errorf("experiments: packed and scalar kernels disagree on the Fig. 5 layer")
	}

	leg.PackedNsPerMVM = timePerOp(reps, func() error {
		_, _, err := sim.ExecuteMVM(cfg, la, w, in)
		return err
	})
	// The scalar kernel is orders of magnitude slower; a handful of reps is
	// enough resolution.
	scalarReps := reps/50 + 1
	leg.ScalarNsPerMVM = timePerOp(scalarReps, func() error {
		_, _, err := sim.ExecuteMVMScalar(cfg, la, w, in)
		return err
	})
	if leg.PackedNsPerMVM > 0 {
		leg.Speedup = leg.ScalarNsPerMVM / leg.PackedNsPerMVM
	}
	return leg, nil
}

// benchMVMKernelBatch sweeps the fast serving pipeline over kernel batch
// sizes on the Fig. 5 layer via sim.FastKernels. Each leg first verifies
// both fast pipelines against the bit-serial crossbar oracle (single-vector
// ExecuteMVM per member, and the batched plane-sweep ExecuteMVMBatch), then
// times the warm pipeline: B=1 is the unbatched per-patch path, B>1 the
// batch-quantize + batched-kernel path, patch extraction outside the timed
// loop in both cases.
func benchMVMKernelBatch(seed int64, reps int) ([]MVMKernelBatchLeg, error) {
	cfg := hw.DefaultConfig()
	la, err := fig5Layer(cfg)
	if err != nil {
		return nil, err
	}
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, seed+1))
	fk := sim.NewFastKernels(w)
	n := w.Rows

	legs := make([]MVMKernelBatchLeg, 0, 4)
	for _, B := range []int{1, 8, 32, 128} {
		xs := make([][]float64, B)
		flat := make([]float64, B*n)
		ins := make([]*quant.Input, B)
		for k := range xs {
			xs[k] = dnn.SyntheticInput(la.Layer, seed+2+int64(k))
			copy(flat[k*n:(k+1)*n], xs[k])
			ins[k] = quant.QuantizeInput(xs[k])
		}
		bref, _, err := sim.ExecuteMVMBatch(cfg, la, w, quant.PackInputs(ins))
		if err != nil {
			return nil, err
		}
		leg := MVMKernelBatchLeg{Batch: B, BitExact: true}
		got := fk.Batch(flat, n, B)
		batched := make([]float64, len(got))
		copy(batched, got)
		for k, in := range ins {
			ref, _, err := sim.ExecuteMVM(cfg, la, w, in)
			if err != nil {
				return nil, err
			}
			single := fk.Single(xs[k])
			for j := range ref {
				want := w.ScaleFor(j) * in.Scale * ref[j]
				if batched[k*w.Cols+j] != want || single[j] != want || bref[k*w.Cols+j] != ref[j] {
					leg.BitExact = false
				}
			}
		}
		if !leg.BitExact {
			return nil, fmt.Errorf("experiments: fast kernel pipelines diverged from the bit-serial reference at B=%d", B)
		}
		if B == 1 {
			leg.NsPerMVM = timePerOp(reps+3, func() error {
				fk.Single(xs[0])
				return nil
			})
		} else {
			nsPerBatch := timePerOp(reps/B+3, func() error {
				fk.Batch(flat, n, B)
				return nil
			})
			leg.NsPerMVM = nsPerBatch / float64(B)
		}
		if leg.NsPerMVM > 0 {
			leg.MVMsPerSec = 1e9 / leg.NsPerMVM
		}
		legs = append(legs, leg)
	}
	base := legs[0].NsPerMVM
	for i := range legs {
		if legs[i].NsPerMVM > 0 {
			legs[i].SpeedupVsB1 = base / legs[i].NsPerMVM
		}
	}
	return legs, nil
}

// benchMVMEndToEnd runs whole-network inference through a warm Engine. It
// verifies fast == bit-exact outputs, times the bit-exact pipeline (the
// historical headline), then sweeps the serving path over batch sizes,
// counting allocations per sliding-window MVM on the batch-1 leg. The scalar
// engine's cost is estimated per layer and scaled by patch counts — running
// it outright takes minutes.
func benchMVMEndToEnd(m *dnn.Model, seed int64) (MVMEndToEndLeg, error) {
	cfg := hw.DefaultConfig()
	p, err := accel.BuildPlan(cfg, m, accel.Homogeneous(m.NumMappable(), xbar.Square(128)), true)
	if err != nil {
		return MVMEndToEndLeg{}, err
	}
	leg := MVMEndToEndLeg{Model: m.Name}
	input := dnn.SyntheticTensor(m.InC, m.InH, m.InW, seed+3)
	eng := sim.NewEngine(p)
	exactOpts := sim.InferenceOptions{Seed: seed, BitExact: true}
	fastOpts := sim.InferenceOptions{Seed: seed}
	ref, stats, err := eng.Run(input, exactOpts) // warm the caches
	if err != nil {
		return leg, err
	}
	leg.MVMsPerInference = stats.MVMs
	fast, _, err := eng.Run(input, fastOpts)
	if err != nil {
		return leg, err
	}
	leg.BitExactMatchesFast = len(fast) == len(ref)
	for j := range ref {
		if fast[j] != ref[j] {
			leg.BitExactMatchesFast = false
		}
	}
	if !leg.BitExactMatchesFast {
		return leg, fmt.Errorf("experiments: bit-exact and fast inference paths diverged on %s", m.Name)
	}

	const exactRuns = 3
	start := time.Now()
	for r := 0; r < exactRuns; r++ {
		if _, _, err := eng.Run(input, exactOpts); err != nil {
			return leg, err
		}
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		leg.BitExactSecsPerInf = wall / exactRuns
		leg.BitExactInfPerSec = exactRuns / wall
	}

	for _, B := range []int{1, 8, 32} {
		inputs := make([]*dnn.Tensor, B)
		for k := range inputs {
			inputs[k] = dnn.SyntheticTensor(m.InC, m.InH, m.InW, seed+3+int64(k))
		}
		if _, _, err := eng.RunBatch(inputs, fastOpts); err != nil { // warm
			return leg, err
		}
		const runs = 5
		var ms0, ms1 runtime.MemStats
		if B == 1 {
			runtime.ReadMemStats(&ms0)
		}
		start := time.Now()
		for r := 0; r < runs; r++ {
			if _, _, err := eng.RunBatch(inputs, fastOpts); err != nil {
				return leg, err
			}
		}
		wall := time.Since(start).Seconds()
		sl := MVMServeLeg{Batch: B, WallSecondsPerInf: wall / float64(runs*B)}
		if wall > 0 {
			sl.InferencesPerSec = float64(runs*B) / wall
		}
		leg.ServeBatch = append(leg.ServeBatch, sl)
		if B == 1 {
			runtime.ReadMemStats(&ms1)
			leg.WallSecondsPerInf = sl.WallSecondsPerInf
			leg.InferencesPerSec = sl.InferencesPerSec
			if stats.MVMs > 0 {
				leg.AllocsPerPatch = float64(ms1.Mallocs-ms0.Mallocs) / float64(runs*stats.MVMs)
			}
		}
	}

	// Scalar estimate: one scalar MVM per mappable layer, scaled by the
	// layer's sliding-window position count.
	for _, l := range m.Mappable() {
		la := p.Layers[l.Index]
		w := quant.QuantizeWeights(dnn.SyntheticWeights(l, seed))
		in := quant.QuantizeInput(dnn.SyntheticInput(l, seed+4))
		ns := timePerOp(1, func() error {
			_, _, err := sim.ExecuteMVMScalar(cfg, la, w, in)
			return err
		})
		leg.ScalarEstimateSecs += ns * 1e-9 * float64(l.OutputPositions())
	}
	if leg.WallSecondsPerInf > 0 {
		leg.EstimatedSpeedup = leg.ScalarEstimateSecs / leg.WallSecondsPerInf
	}
	return leg, nil
}

// timePerOp returns the mean ns per call of fn over reps calls.
func timePerOp(reps int, fn func() error) float64 {
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return 0
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// WriteJSON writes the benchmark document to path (indented, trailing
// newline) so CI and EXPERIMENTS.md recipes can archive it.
func (b *MVMBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
