package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// MVMKernelLeg records the packed-vs-scalar kernel comparison on the paper's
// Fig. 5 layer (3×3×12 → 128 on a 2×2 grid of 64×64 crossbars).
type MVMKernelLeg struct {
	ScalarNsPerMVM float64 `json:"scalar_ns_per_mvm"`
	PackedNsPerMVM float64 `json:"packed_ns_per_mvm"`
	Speedup        float64 `json:"speedup"`
	// BitExact confirms the two kernels produced `==`-identical outputs and
	// stats on this layer before timing.
	BitExact bool `json:"bit_exact"`
}

// MVMEndToEndLeg records whole-network functional inference through the
// packed engine: measured throughput, the O(1)-scratch allocation budget, and
// the scalar engine's estimated cost for the same workload (measured per
// layer, scaled by patch counts — running it outright takes minutes).
type MVMEndToEndLeg struct {
	Model               string  `json:"model"`
	MVMsPerInference    int64   `json:"mvms_per_inference"`
	WallSecondsPerInf   float64 `json:"wall_seconds_per_inference"`
	InferencesPerSec    float64 `json:"inferences_per_sec"`
	AllocsPerPatch      float64 `json:"allocs_per_patch"`
	ScalarEstimateSecs  float64 `json:"scalar_estimate_seconds_per_inference"`
	EstimatedSpeedup    float64 `json:"estimated_speedup"`
	BitExactMatchesFast bool    `json:"bit_exact_matches_fast"`
}

// MVMBench is the JSON document cmd/experiments -bench mvm writes: the packed
// popcount engine measured against the byte-per-cell scalar reference it
// replaced, at kernel granularity and end to end.
type MVMBench struct {
	Workers  int            `json:"workers"`
	Seed     int64          `json:"seed"`
	Kernel   MVMKernelLeg   `json:"kernel"`
	EndToEnd MVMEndToEndLeg `json:"end_to_end"`
}

// BenchMVM measures the packed MVM engine: the Fig. 5 kernel comparison plus
// an AlexNet-scale end-to-end inference leg.
func BenchMVM(seed int64) (*MVMBench, error) {
	return benchMVMModel(dnn.AlexNet(), seed, 200)
}

func benchMVMModel(m *dnn.Model, seed int64, kernelReps int) (*MVMBench, error) {
	b := &MVMBench{Workers: runtime.GOMAXPROCS(0), Seed: seed}
	var err error
	if b.Kernel, err = benchMVMKernel(seed, kernelReps); err != nil {
		return nil, err
	}
	if b.EndToEnd, err = benchMVMEndToEnd(m, seed); err != nil {
		return nil, err
	}
	return b, nil
}

// benchMVMKernel times ExecuteMVM against ExecuteMVMScalar on the Fig. 5
// layer, asserting bit-exact agreement first.
func benchMVMKernel(seed int64, reps int) (MVMKernelLeg, error) {
	cfg := hw.DefaultConfig()
	l := &dnn.Layer{Name: "fig5", Kind: dnn.Conv, K: 3, InC: 12, OutC: 128, Stride: 1, Pad: 0, InH: 8, InW: 8}
	m, err := dnn.NewFlatModel("fig5", 8, 8, 12, []*dnn.Layer{l})
	if err != nil {
		return MVMKernelLeg{}, err
	}
	p, err := accel.BuildPlan(cfg, m, accel.Homogeneous(1, xbar.Square(64)), false)
	if err != nil {
		return MVMKernelLeg{}, err
	}
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, seed+1))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, seed+2))

	packed, ps, err := sim.ExecuteMVM(cfg, la, w, in)
	if err != nil {
		return MVMKernelLeg{}, err
	}
	scalar, ss, err := sim.ExecuteMVMScalar(cfg, la, w, in)
	if err != nil {
		return MVMKernelLeg{}, err
	}
	leg := MVMKernelLeg{BitExact: ps == ss}
	for j := range packed {
		if packed[j] != scalar[j] {
			leg.BitExact = false
		}
	}
	if !leg.BitExact {
		return leg, fmt.Errorf("experiments: packed and scalar kernels disagree on the Fig. 5 layer")
	}

	leg.PackedNsPerMVM = timePerOp(reps, func() error {
		_, _, err := sim.ExecuteMVM(cfg, la, w, in)
		return err
	})
	// The scalar kernel is orders of magnitude slower; a handful of reps is
	// enough resolution.
	scalarReps := reps/50 + 1
	leg.ScalarNsPerMVM = timePerOp(scalarReps, func() error {
		_, _, err := sim.ExecuteMVMScalar(cfg, la, w, in)
		return err
	})
	if leg.PackedNsPerMVM > 0 {
		leg.Speedup = leg.ScalarNsPerMVM / leg.PackedNsPerMVM
	}
	return leg, nil
}

// benchMVMEndToEnd runs full bit-exact inferences through a warm Engine,
// counting allocations per sliding-window MVM, and estimates the scalar
// engine's cost for the same workload from per-layer scalar MVM timings.
func benchMVMEndToEnd(m *dnn.Model, seed int64) (MVMEndToEndLeg, error) {
	cfg := hw.DefaultConfig()
	p, err := accel.BuildPlan(cfg, m, accel.Homogeneous(m.NumMappable(), xbar.Square(128)), true)
	if err != nil {
		return MVMEndToEndLeg{}, err
	}
	leg := MVMEndToEndLeg{Model: m.Name}
	input := dnn.SyntheticTensor(m.InC, m.InH, m.InW, seed+3)
	eng := sim.NewEngine(p)
	opts := sim.InferenceOptions{Seed: seed, BitExact: true}
	ref, stats, err := eng.Run(input, opts) // warm the caches
	if err != nil {
		return leg, err
	}
	leg.MVMsPerInference = stats.MVMs
	fast, _, err := eng.Run(input, sim.InferenceOptions{Seed: seed})
	if err != nil {
		return leg, err
	}
	leg.BitExactMatchesFast = len(fast) == len(ref)
	for j := range ref {
		if fast[j] != ref[j] {
			leg.BitExactMatchesFast = false
		}
	}
	if !leg.BitExactMatchesFast {
		return leg, fmt.Errorf("experiments: bit-exact and fast inference paths diverged on %s", m.Name)
	}

	const runs = 3
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for r := 0; r < runs; r++ {
		if _, _, err := eng.Run(input, opts); err != nil {
			return leg, err
		}
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	leg.WallSecondsPerInf = wall / runs
	if wall > 0 {
		leg.InferencesPerSec = runs / wall
	}
	if stats.MVMs > 0 {
		leg.AllocsPerPatch = float64(ms1.Mallocs-ms0.Mallocs) / float64(runs*stats.MVMs)
	}

	// Scalar estimate: one scalar MVM per mappable layer, scaled by the
	// layer's sliding-window position count.
	for _, l := range m.Mappable() {
		la := p.Layers[l.Index]
		w := quant.QuantizeWeights(dnn.SyntheticWeights(l, seed))
		in := quant.QuantizeInput(dnn.SyntheticInput(l, seed+4))
		ns := timePerOp(1, func() error {
			_, _, err := sim.ExecuteMVMScalar(cfg, la, w, in)
			return err
		})
		leg.ScalarEstimateSecs += ns * 1e-9 * float64(l.OutputPositions())
	}
	if leg.WallSecondsPerInf > 0 {
		leg.EstimatedSpeedup = leg.ScalarEstimateSecs / leg.WallSecondsPerInf
	}
	return leg, nil
}

// timePerOp returns the mean ns per call of fn over reps calls.
func timePerOp(reps int, fn func() error) float64 {
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return 0
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// WriteJSON writes the benchmark document to path (indented, trailing
// newline) so CI and EXPERIMENTS.md recipes can archive it.
func (b *MVMBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
