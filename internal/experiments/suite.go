// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each generator returns a report.Table whose note states
// the paper's reported shape so measured rows can be compared directly;
// EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/report"
	"autohet/internal/rl"
	"autohet/internal/search"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// Variant names an ablation stage (paper §4.3).
type Variant string

// Ablation stages: Base is the RUE-best homogeneous SXB accelerator; +He
// adds RL-chosen heterogeneous SXBs; +Hy adds rectangular candidates; All
// adds the tile-shared allocation scheme.
const (
	Base Variant = "Base"
	He   Variant = "+He"
	Hy   Variant = "+Hy"
	All  Variant = "All"
)

// Suite runs the experiments with shared, cached search results so related
// figures reuse the same RL runs. The caches are mutex-guarded: generators
// fan out across models/variants/shapes with search.ParallelFor, and the
// parallel units are chosen so concurrent tasks use distinct cache keys
// (a duplicated concurrent miss is deterministic, so at worst it costs a
// redundant evaluation, never a wrong row).
type Suite struct {
	Cfg    hw.Config
	Rounds int   // RL episodes per search (paper: 300)
	Seed   int64 // base RNG seed

	mu          sync.Mutex
	searchCache map[string]*search.Result
	evalCache   map[string]*sim.Result
}

// NewSuite returns a suite with the paper's §4.1 configuration.
func NewSuite(rounds int, seed int64) *Suite {
	return &Suite{
		Cfg:         hw.DefaultConfig(),
		Rounds:      rounds,
		Seed:        seed,
		searchCache: map[string]*search.Result{},
		evalCache:   map[string]*sim.Result{},
	}
}

// env builds a search environment, failing fast on config errors.
func (s *Suite) env(m *dnn.Model, cands []xbar.Shape, shared bool) (*search.Env, error) {
	return search.NewEnv(s.Cfg, m, cands, shared)
}

// evalKey builds a cache key for a concrete strategy evaluation.
func evalKey(m *dnn.Model, st accel.Strategy, shared bool) string {
	return fmt.Sprintf("%s|%v|%t", m.Name, st.String(), shared)
}

// evaluate simulates a strategy with caching. Simulation runs outside the
// lock; on a concurrent duplicate miss the first stored result wins so every
// caller sees one stable pointer per key.
func (s *Suite) evaluate(m *dnn.Model, st accel.Strategy, shared bool) (*sim.Result, error) {
	key := evalKey(m, st, shared)
	s.mu.Lock()
	r, ok := s.evalCache[key]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	p, err := accel.BuildPlan(s.Cfg, m, st, shared)
	if err != nil {
		return nil, err
	}
	r, err = sim.Simulate(p)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.evalCache[key]; ok {
		return prev, nil
	}
	s.evalCache[key] = r
	return r, nil
}

// runSearch runs (or fetches) one RL search. Parallel generators fan out
// over distinct (model, tag) pairs, so concurrent callers never duplicate a
// search; the lock only protects the map itself.
func (s *Suite) runSearch(m *dnn.Model, cands []xbar.Shape, shared bool, tag string) (*search.Result, error) {
	key := fmt.Sprintf("%s|%s|%v|%t|%d", m.Name, tag, xbar.ShapeNames(cands), shared, s.Rounds)
	s.mu.Lock()
	r, ok := s.searchCache[key]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	env, err := s.env(m, cands, shared)
	if err != nil {
		return nil, err
	}
	opts := search.DefaultOptions()
	opts.Rounds = s.Rounds
	opts.Agent = rl.DefaultAgentConfig(search.StateDim)
	opts.Agent.Seed = s.Seed
	// Bound per-round learning cost on deep models (ResNet152: 156 layers).
	opts.UpdateStride = m.NumMappable()/16 + 1
	res, err := search.AutoHet(env, opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.searchCache[key]; ok {
		return prev, nil
	}
	s.searchCache[key] = res
	return res, nil
}

// bestHomogeneous returns the RUE-best homogeneous SXB build for m.
func (s *Suite) bestHomogeneous(m *dnn.Model) (xbar.Shape, *sim.Result, error) {
	bestShape := xbar.Shape{}
	var best *sim.Result
	for _, shape := range xbar.SquareCandidates() {
		r, err := s.evaluate(m, accel.Homogeneous(m.NumMappable(), shape), false)
		if err != nil {
			return xbar.Shape{}, nil, err
		}
		if best == nil || r.RUE() > best.RUE() {
			best, bestShape = r, shape
		}
	}
	return bestShape, best, nil
}

// variantResult produces the strategy and result of one ablation stage.
func (s *Suite) variantResult(m *dnn.Model, v Variant) (accel.Strategy, *sim.Result, error) {
	switch v {
	case Base:
		shape, r, err := s.bestHomogeneous(m)
		if err != nil {
			return nil, nil, err
		}
		return accel.Homogeneous(m.NumMappable(), shape), r, nil
	case He:
		res, err := s.runSearch(m, xbar.SquareCandidates(), false, "he")
		if err != nil {
			return nil, nil, err
		}
		return res.Best, res.BestResult, nil
	case Hy:
		res, err := s.runSearch(m, xbar.DefaultCandidates(), false, "hy")
		if err != nil {
			return nil, nil, err
		}
		return res.Best, res.BestResult, nil
	case All:
		res, err := s.runSearch(m, xbar.DefaultCandidates(), true, "all")
		if err != nil {
			return nil, nil, err
		}
		return res.Best, res.BestResult, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown variant %q", v)
	}
}

// Experiment names, in paper order.
var Names = []string{
	"fig3", "fig4", "fig5", "fig9", "fig10",
	"table3", "table4", "fig11a", "fig11b", "fig11c",
	"table5", "searchtime",
}

// Run generates the named experiment's tables.
func (s *Suite) Run(name string) ([]*report.Table, error) {
	switch name {
	case "fig3":
		t, err := s.Fig3()
		return wrap(t, err)
	case "fig4":
		t, err := s.Fig4()
		return wrap(t, err)
	case "fig5":
		t, err := s.Fig5()
		return wrap(t, err)
	case "fig9":
		return s.Fig9()
	case "fig10":
		return s.Fig10()
	case "table3":
		t, err := s.Table3()
		return wrap(t, err)
	case "table4":
		t, err := s.Table4()
		return wrap(t, err)
	case "fig11a":
		t, err := s.Fig11a()
		return wrap(t, err)
	case "fig11b":
		t, err := s.Fig11b()
		return wrap(t, err)
	case "fig11c":
		t, err := s.Fig11c()
		return wrap(t, err)
	case "table5":
		t, err := s.Table5()
		return wrap(t, err)
	case "searchtime":
		t, err := s.SearchTime()
		return wrap(t, err)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names)
	}
}

func wrap(t *report.Table, err error) ([]*report.Table, error) {
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}

// sortedShapes returns map keys in deterministic size order.
func sortedShapes(m map[xbar.Shape]int) []xbar.Shape {
	out := make([]xbar.Shape, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].R != out[j].R {
			return out[i].R < out[j].R
		}
		return out[i].C < out[j].C
	})
	return out
}
