package experiments

import (
	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/report"
	"autohet/internal/search"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// Fig9 reproduces the overall comparison (paper Fig. 9a–c): RUE, crossbar
// utilization, and normalized energy of the five homogeneous accelerators
// and AutoHet across AlexNet/MNIST, VGG16/CIFAR-10, and ResNet152/ImageNet.
// Energy is normalized to the lowest homogeneous energy per model, as in
// the paper.
func (s *Suite) Fig9() ([]*report.Table, error) {
	rue := &report.Table{
		Title: "Fig. 9(a) — RUE",
		Note: "Paper shape: AutoHet highest on every model (avg 5.1x over homogeneous; " +
			"1.3x/2.2x/1.4x over the best homogeneous for AlexNet/VGG16/ResNet152).",
		Header: []string{"Accelerator", "AlexNet", "VGG16", "ResNet152"},
	}
	util := &report.Table{
		Title:  "Fig. 9(b) — crossbar utilization",
		Note:   "Paper shape: small SXBs lead; AutoHet may trail slightly (−14% vs 64x64 on VGG16) but wins RUE.",
		Header: []string{"Accelerator", "AlexNet", "VGG16", "ResNet152"},
	}
	energy := &report.Table{
		Title:  "Fig. 9(c) — energy normalized to the lowest homogeneous",
		Note:   "Paper shape: 32x32 worst (≈12x on VGG16); AutoHet at or below 1.0 (−8.4x vs 64x64 on VGG16).",
		Header: []string{"Accelerator", "AlexNet", "VGG16", "ResNet152"},
	}

	models := dnn.Zoo()
	shapes := xbar.SquareCandidates()
	type cell struct{ rue, util, energy float64 }
	// One column of cells per model (row order: homogeneous shapes, then
	// AutoHet). The models are independent — each owns one RL search plus a
	// homogeneous sweep — so they evaluate concurrently; rows assemble
	// deterministically afterwards.
	cols := make([][]cell, len(models))
	minHomoEnergy := make([]float64, len(models))
	if err := search.ParallelFor(len(models), func(mi int) error {
		m := models[mi]
		col := make([]cell, 0, len(shapes)+1)
		for _, shape := range shapes {
			r, err := s.evaluate(m, accel.Homogeneous(m.NumMappable(), shape), false)
			if err != nil {
				return err
			}
			if minHomoEnergy[mi] == 0 || r.EnergyNJ < minHomoEnergy[mi] {
				minHomoEnergy[mi] = r.EnergyNJ
			}
			col = append(col, cell{r.RUE(), r.Utilization, r.EnergyNJ})
		}
		_, autoRes, err := s.variantResult(m, All)
		if err != nil {
			return err
		}
		cols[mi] = append(col, cell{autoRes.RUE(), autoRes.Utilization, autoRes.EnergyNJ})
		return nil
	}); err != nil {
		return nil, err
	}

	for ri := 0; ri <= len(shapes); ri++ {
		name := "AutoHet"
		if ri < len(shapes) {
			name = shapes[ri].String()
		}
		rueRow := []string{name}
		utilRow := []string{name}
		energyRow := []string{name}
		for mi := range models {
			c := cols[mi][ri]
			rueRow = append(rueRow, report.E(c.rue))
			utilRow = append(utilRow, report.Pct(c.util))
			energyRow = append(energyRow, report.F(c.energy/minHomoEnergy[mi]))
		}
		rue.AddRow(rueRow...)
		util.AddRow(utilRow...)
		energy.AddRow(energyRow...)
	}
	return []*report.Table{rue, util, energy}, nil
}

// Fig10 reproduces the ablation (paper Fig. 10): RUE, utilization, and
// energy as each AutoHet technique is enabled — Base (best homogeneous
// SXB), +He (heterogeneous SXBs via RL), +Hy (square + rectangular
// candidates), All (+ tile-shared allocation) — for all three models.
func (s *Suite) Fig10() ([]*report.Table, error) {
	models := dnn.Zoo()
	variants := []Variant{Base, He, Hy, All}
	// Flatten model × variant into one task list: every pair is an
	// independent search (distinct cache keys), so the whole grid runs
	// concurrently and tables assemble in order afterwards.
	results := make([]*sim.Result, len(models)*len(variants))
	if err := search.ParallelFor(len(results), func(i int) error {
		_, r, err := s.variantResult(models[i/len(variants)], variants[i%len(variants)])
		results[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	var tables []*report.Table
	for mi, m := range models {
		t := &report.Table{
			Title: "Fig. 10 — ablation on " + m.Name,
			Note: "Paper shape: each stage improves or maintains RUE " +
				"(+Hy cuts energy via RXBs; All lifts utilization via tile sharing).",
			Header: []string{"Variant", "RUE", "Utilization", "Energy (nJ)", "Tiles"},
		}
		for vi, v := range variants {
			r := results[mi*len(variants)+vi]
			t.AddRow(string(v), report.E(r.RUE()), report.Pct(r.Utilization),
				report.E(r.EnergyNJ), report.I(r.OccupiedTiles))
		}
		tables = append(tables, t)
	}
	return tables, nil
}
