package experiments

import (
	"fmt"
	"time"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/fleet"
	"autohet/internal/report"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// Fleet experiments — the serving runtime at deployment scale. Replicas wrap
// mapped VGG16 designs (the paper's Table 3 search result next to its
// homogeneous baselines), so the single-chip RUE story becomes a fleet
// provisioning story: dispatch policy, equal-area replica choice, and fault
// tolerance via retry routing.

// fleetTimeScale paces fleet experiment runs at a fifth of real time: fast
// enough for an experiment sweep, slow enough that admission-queue depths —
// the signal JSQ and P2C route on — evolve as they would live.
const fleetTimeScale = 0.2

// fleetDesign is one mapped design replicas are cloned from.
type fleetDesign struct {
	name string
	pr   *sim.PipelineResult
	plan *accel.Plan
}

// fleetDesigns builds the two VGG16 designs the fleet experiments mix: the
// best homogeneous SXB accelerator and the paper-searched AutoHet strategy.
func (s *Suite) fleetDesigns() (homo, het fleetDesign, err error) {
	m := dnn.VGG16()
	build := func(name string, st accel.Strategy) (fleetDesign, error) {
		p, err := accel.BuildPlan(s.Cfg, m, st, true)
		if err != nil {
			return fleetDesign{}, err
		}
		pr, err := sim.SimulateBatch(p, 64)
		if err != nil {
			return fleetDesign{}, err
		}
		return fleetDesign{name: name, pr: pr, plan: p}, nil
	}
	homo, err = build("homo-128", accel.Homogeneous(m.NumMappable(), xbar.Square(128)))
	if err != nil {
		return
	}
	st, err := accel.ParseStrategy("L1:72x64 L2-L16:576x512")
	if err != nil {
		return
	}
	het, err = build("autohet", st)
	return
}

func (d fleetDesign) spec(suffix string) fleet.ReplicaSpec {
	return fleet.ReplicaSpec{Name: d.name + suffix, Pipeline: d.pr, Plan: d.plan}
}

// Fleet generates the fleet-serving extension tables: dispatch-policy
// comparison on a heterogeneous fleet, homogeneous vs AutoHet replicas at
// equal silicon area, and retry routing around a replica that degrades
// mid-run.
func (s *Suite) Fleet() ([]*report.Table, error) {
	homo, het, err := s.fleetDesigns()
	if err != nil {
		return nil, err
	}
	policies, err := s.fleetPolicies(homo, het)
	if err != nil {
		return nil, err
	}
	area, err := s.fleetEqualArea(homo, het)
	if err != nil {
		return nil, err
	}
	faults, err := s.fleetFaults(homo)
	if err != nil {
		return nil, err
	}
	return []*report.Table{policies, area, faults}, nil
}

// fleetPolicies offers 98% of aggregate capacity to a mixed fleet (two
// homogeneous replicas, two AutoHet ones) under each dispatch policy. Round
// robin splits traffic evenly, which structurally overloads the
// lower-capacity AutoHet replicas; queue-aware policies shift the excess to
// the faster replicas and keep the tail flat.
func (s *Suite) fleetPolicies(homo, het fleetDesign) (*report.Table, error) {
	specs := []fleet.ReplicaSpec{
		homo.spec("-1"), homo.spec("-2"), het.spec("-1"), het.spec("-2"),
	}
	aggregate := 2*(1e9/homo.pr.IntervalNS) + 2*(1e9/het.pr.IntervalNS)
	t := &report.Table{
		Title: "Extension — dispatch policy vs tail latency (2x homo-128 + 2x AutoHet, 98% load)",
		Note: fmt.Sprintf("Aggregate capacity %.0f req/s; per-replica capacities differ, so round robin "+
			"overloads the slower replicas while queue-aware policies stay stable.", aggregate),
		Header: []string{"Policy", "Completed", "Shed", "p50 (µs)", "p99 (µs)", "Throughput (req/s)"},
	}
	for _, policy := range fleet.Policies {
		cfg := fleet.DefaultConfig()
		cfg.Policy = policy
		cfg.TimeScale = fleetTimeScale
		cfg.Seed = s.Seed
		f, err := fleet.New(cfg, specs...)
		if err != nil {
			return nil, err
		}
		res, err := fleet.Run(f, fleet.Workload{
			ArrivalRate: 0.98 * aggregate,
			Requests:    4000,
			Seed:        s.Seed,
		})
		f.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(string(policy), report.I(res.Completed), report.I(res.Shed),
			fmt.Sprintf("%.1f", res.P50NS/1000), fmt.Sprintf("%.1f", res.P99NS/1000),
			report.F(res.ThroughputRPS))
	}
	return t, nil
}

// fleetEqualArea compares one homogeneous 128x128 replica against four
// AutoHet replicas of (near-)equal total silicon area, offered the same
// stream at twice the homogeneous replica's capacity: the single chip sheds
// and saturates while the AutoHet fleet absorbs the load — the paper's RUE
// gain converted into fleet throughput.
func (s *Suite) fleetEqualArea(homo, het fleetDesign) (*report.Table, error) {
	homoCap := 1e9 / homo.pr.IntervalNS
	rate := 2 * homoCap
	t := &report.Table{
		Title: "Extension — equal-area fleets: 1x homo-128 vs 4x AutoHet (same offered load)",
		Note: fmt.Sprintf("Both fleets receive %.0f req/s — 2x the homogeneous replica's capacity. "+
			"Equal area buys ~4 AutoHet replicas and with them the headroom to serve it.", rate),
		Header: []string{"Fleet", "Area (mm²)", "Capacity (req/s)", "Completed", "Shed", "p99 (µs)", "Throughput (req/s)"},
	}
	cases := []struct {
		name  string
		specs []fleet.ReplicaSpec
	}{
		{"1x homo-128", []fleet.ReplicaSpec{homo.spec("")}},
		{"4x AutoHet", []fleet.ReplicaSpec{het.spec("-1"), het.spec("-2"), het.spec("-3"), het.spec("-4")}},
	}
	for _, c := range cases {
		cfg := fleet.DefaultConfig()
		cfg.Policy = fleet.JoinShortestQueue
		cfg.TimeScale = fleetTimeScale
		cfg.Seed = s.Seed
		f, err := fleet.New(cfg, c.specs...)
		if err != nil {
			return nil, err
		}
		res, err := fleet.Run(f, fleet.Workload{ArrivalRate: rate, Requests: 4000, Seed: s.Seed})
		snap := f.Snapshot()
		f.Close()
		if err != nil {
			return nil, err
		}
		var area, capacity float64
		for _, r := range snap.Replicas {
			area += r.AreaUM2
			capacity += r.CapacityRPS
		}
		t.AddRow(c.name, fmt.Sprintf("%.1f", area/1e6), report.F(capacity),
			report.I(res.Completed), report.I(res.Shed),
			fmt.Sprintf("%.1f", res.P99NS/1000), report.F(res.ThroughputRPS))
	}
	return t, nil
}

// fleetFaults degrades one of three replicas mid-run with stuck-at faults
// above the degrade threshold. Requests already queued there bounce to the
// healthy replicas (retry routing), which have the headroom to absorb the
// re-offered traffic: every admitted request still completes.
func (s *Suite) fleetFaults(homo fleetDesign) (*report.Table, error) {
	specs := []fleet.ReplicaSpec{homo.spec("-1"), homo.spec("-2"), homo.spec("-3")}
	aggregate := 3 * (1e9 / homo.pr.IntervalNS)
	const requests = 4000
	// 60% aggregate load: the two survivors absorb 90% load after the
	// degradation — strained but stable. Batching with a 2 ms collect
	// window means the replica is almost always holding a partial batch
	// when the fault lands, so the retry path visibly moves in-flight
	// requests to the survivors.
	w := fleet.Workload{ArrivalRate: 0.6 * aggregate, Requests: requests, Seed: s.Seed}

	cfg := fleet.DefaultConfig()
	cfg.Policy = fleet.RoundRobin
	cfg.MaxBatch = 16
	cfg.BatchTimeoutNS = 2e6
	cfg.TimeScale = fleetTimeScale
	cfg.Seed = s.Seed
	f, err := fleet.New(cfg, specs...)
	if err != nil {
		return nil, err
	}
	// Degrade the first replica ~30% into the run (wall clock tracks the
	// virtual span through the pacing TimeScale).
	spanNS := float64(requests) / w.ArrivalRate * 1e9
	stuck := &fault.Model{StuckAtZero: 0.03, StuckAtOne: 0.02, Seed: s.Seed}
	timer := time.AfterFunc(time.Duration(0.3*spanNS*fleetTimeScale), func() {
		_ = f.InjectFault(specs[0].Name, stuck)
	})
	res, err := fleet.Run(f, w)
	timer.Stop()
	snap := f.Snapshot()
	f.Close()
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title: "Extension — retry routing around a mid-run fault (3x homo-128, 60% load, batch 16)",
		Note: fmt.Sprintf("Replica %s degrades (%.0f%% stuck-at cells) a third into the run; "+
			"its queued requests are re-dispatched and every admitted request completes: "+
			"%d offered = %d completed + %d shed, %d failed, %d retried.",
			specs[0].Name, 100*stuck.CellFaultRate(), res.Offered, res.Completed,
			res.Shed, res.Failed, res.Retried),
		Header: []string{"Replica", "Degraded", "Served", "p99 (µs)"},
	}
	for _, r := range snap.Replicas {
		t.AddRow(r.Name, fmt.Sprintf("%t", r.Degraded), report.I(int(r.Served)),
			fmt.Sprintf("%.1f", r.P99NS/1000))
	}
	t.AddRow("fleet", "-", report.I(res.Completed), fmt.Sprintf("%.1f", res.P99NS/1000))
	return t, nil
}
