package experiments

import (
	"os"
	"runtime"
	"testing"

	"autohet/internal/des"
	"autohet/internal/des/trace"
	"autohet/internal/fleet"
)

// desFloorRun drives one moderate-scale DES leg (4k replicas, 64 clusters,
// 400k requests, the shardable jsq-under-rr policy pair) at the given worker
// count and returns the result plus allocs/event.
func desFloorRun(t *testing.T, workers int) (*des.Result, float64) {
	t.Helper()
	cfg := des.DefaultConfig()
	cfg.Policy = fleet.JoinShortestQueue
	cfg.ClusterPolicy = fleet.RoundRobin
	cfg.Clusters = 64
	cfg.QueueDepth = 64
	cfg.Seed = 1
	cfg.Workers = workers
	f, err := des.NewFleet(cfg, desSpecs(4000)...)
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.7 * 4000 * 100 // 70% of aggregate capacity at 100 req/s per replica
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	res, err := f.RunTrace(trace.Bursty(rate, 1.8, 50e6, 1), 400_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	return res, float64(m1.Mallocs-m0.Mallocs) / float64(res.Events)
}

// TestDESParallelFloorSmoke is the CI bench-floor gate for the DES engine:
// the serial leg must stay near allocation-free per event, and on a machine
// with at least 4 CPUs the sharded-lane run must clear 2x the serial leg's
// events/sec (the regenerated BENCH_fleet.json tracks the full scaling
// curve; this is the floor that fails the build). Timing-sensitive, so it
// only runs when asked for explicitly (AUTOHET_BENCH_SMOKE=1).
func TestDESParallelFloorSmoke(t *testing.T) {
	if os.Getenv("AUTOHET_BENCH_SMOKE") == "" {
		t.Skip("set AUTOHET_BENCH_SMOKE=1 to run the timing-sensitive bench smoke")
	}
	serial, allocs := desFloorRun(t, 1)
	t.Logf("serial: %.0f ev/s, %.4f allocs/event", serial.EventsPerSec, allocs)
	if allocs > 0.05 {
		t.Fatalf("serial leg allocates %.4f allocs/event, ceiling 0.05", allocs)
	}
	ncpu := runtime.NumCPU()
	if ncpu < 4 {
		t.Logf("skipping parallel floor: %d CPUs (need >= 4 for a meaningful speedup bound)", ncpu)
		return
	}
	par, _ := desFloorRun(t, ncpu)
	if par.Lanes < 2 {
		t.Fatalf("workers=%d engaged only %d lanes", ncpu, par.Lanes)
	}
	t.Logf("parallel (%d lanes): %.0f ev/s (%.2fx serial)",
		par.Lanes, par.EventsPerSec, par.EventsPerSec/serial.EventsPerSec)
	if par.EventsPerSec < 2*serial.EventsPerSec {
		t.Fatalf("parallel leg %.0f ev/s < 2x serial %.0f ev/s",
			par.EventsPerSec, serial.EventsPerSec)
	}
	// The exactness contract rides along for free: same virtual outcome.
	if par.Completed != serial.Completed || par.VirtualNS != serial.VirtualNS || par.P99NS != serial.P99NS {
		t.Fatalf("parallel run diverged from serial: completed %d/%d, virtual %g/%g, p99 %g/%g",
			par.Completed, serial.Completed, par.VirtualNS, serial.VirtualNS, par.P99NS, serial.P99NS)
	}
}
