package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"autohet/internal/report"
	"autohet/internal/xbar"
)

// quickSuite keeps RL budgets small: experiment *shapes* must already hold
// at low round counts.
func quickSuite() *Suite { return NewSuite(40, 7) }

func renderOK(t *testing.T, tables []*report.Table) {
	t.Helper()
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("table %q has no rows", tab.Title)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), tab.Title) {
			t.Fatalf("render missing title %q", tab.Title)
		}
	}
}

// cellFloat parses table cells like "83.7%", "1.23E+05", "27".
func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(strings.TrimSuffix(cell, "x"), "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", cell, err)
	}
	return v
}

func TestFig3ManualHeteroWinsRUE(t *testing.T) {
	s := quickSuite()
	tab, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	manual := tab.Rows[5]
	if manual[0] != "Manual-Hetero" {
		t.Fatalf("last row %q", manual[0])
	}
	best := cellFloat(t, manual[3])
	for _, row := range tab.Rows[:5] {
		if cellFloat(t, row[3]) > best {
			t.Fatalf("homogeneous %s RUE beats manual-hetero", row[0])
		}
	}
	// 32x32 has the highest utilization; 512x512 the lowest energy.
	if cellFloat(t, tab.Rows[0][1]) < cellFloat(t, tab.Rows[4][1]) {
		t.Fatal("32x32 should out-utilize 512x512")
	}
	if cellFloat(t, tab.Rows[0][2]) < cellFloat(t, tab.Rows[4][2]) {
		t.Fatal("32x32 should out-consume 512x512")
	}
}

func TestFig4MatchesPaperAverages(t *testing.T) {
	s := quickSuite()
	tab, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	avg := tab.Rows[len(tab.Rows)-1]
	if avg[0] != "Average" {
		t.Fatalf("last row %q", avg[0])
	}
	// Paper: ≈24% at 4 XBs/tile, ≈60% at 32.
	if v := cellFloat(t, avg[1]); v < 20 || v > 28 {
		t.Fatalf("avg empty @4 = %v, paper ≈24", v)
	}
	if v := cellFloat(t, avg[4]); v < 55 || v > 66 {
		t.Fatalf("avg empty @32 = %v, paper ≈60", v)
	}
}

func TestFig5MatchesPaperFractions(t *testing.T) {
	s := quickSuite()
	tab, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	if !strings.Contains(tab.Rows[0][1], "(27/32)") {
		t.Fatalf("XB64 utilization cell %q, want 27/32", tab.Rows[0][1])
	}
	if !strings.Contains(tab.Rows[1][1], "(27/128)") {
		t.Fatalf("XB128 utilization cell %q, want 27/128", tab.Rows[1][1])
	}
	if tab.Rows[0][2] != "256" || tab.Rows[1][2] != "128" {
		t.Fatalf("ADC cells %q/%q, want 256/128", tab.Rows[0][2], tab.Rows[1][2])
	}
}

func TestFig9AutoHetWinsEveryModel(t *testing.T) {
	if testing.Short() {
		t.Skip("RL searches in -short mode")
	}
	s := quickSuite()
	tables, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tables)
	rue := tables[0]
	if len(rue.Rows) != 6 {
		t.Fatalf("RUE rows = %d", len(rue.Rows))
	}
	autoRow := rue.Rows[5]
	if autoRow[0] != "AutoHet" {
		t.Fatalf("last row %q", autoRow[0])
	}
	for col := 1; col <= 3; col++ {
		auto := cellFloat(t, autoRow[col])
		for _, row := range rue.Rows[:5] {
			if cellFloat(t, row[col]) > auto {
				t.Errorf("model col %d: homogeneous %s RUE %v beats AutoHet %v",
					col, row[0], cellFloat(t, row[col]), auto)
			}
		}
	}
	// Energy table: normalized minimum homogeneous = 1.0; AutoHet ≤ ~1.
	energy := tables[2]
	for col := 1; col <= 3; col++ {
		minHomo := 1e18
		for _, row := range energy.Rows[:5] {
			if v := cellFloat(t, row[col]); v < minHomo {
				minHomo = v
			}
		}
		if minHomo != 1 {
			t.Errorf("col %d: normalized min homogeneous %v != 1", col, minHomo)
		}
		// Paper: AutoHet at or below 1.0; the quick suite's short searches
		// can land slightly above on ResNet152, so allow headroom.
		if auto := cellFloat(t, energy.Rows[5][col]); auto > 1.4 {
			t.Errorf("col %d: AutoHet normalized energy %v > 1.4", col, auto)
		}
	}
}

func TestFig10AblationMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("RL searches in -short mode")
	}
	s := quickSuite()
	tables, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tables)
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != 4 {
			t.Fatalf("%s rows = %d", tab.Title, len(tab.Rows))
		}
		// RUE must not regress across Base → +He → +Hy → All (allowing
		// tiny numeric slack from the stochastic search).
		prev := 0.0
		for _, row := range tab.Rows {
			rue := cellFloat(t, row[1])
			if rue < prev*0.98 {
				t.Errorf("%s: %s RUE %v regressed from %v", tab.Title, row[0], rue, prev)
			}
			if rue > prev {
				prev = rue
			}
		}
	}
}

func TestTable3PerLayerShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("RL searches in -short mode")
	}
	s := quickSuite()
	tab, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	// Base column is one uniform SXB.
	base := tab.Rows[0][1]
	for _, row := range tab.Rows {
		if row[1] != base {
			t.Fatalf("Base not homogeneous: %q vs %q", row[1], base)
		}
	}
	// +He column only contains square candidates.
	for _, row := range tab.Rows {
		sh, err := xbar.ParseShape(row[2])
		if err != nil || !sh.IsSquare() {
			t.Fatalf("+He assigned non-square %q", row[2])
		}
	}
}

func TestTable4SharingReducesTiles(t *testing.T) {
	if testing.Short() {
		t.Skip("RL searches in -short mode")
	}
	s := quickSuite()
	tab, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		hy := cellFloat(t, row[1])
		all := cellFloat(t, row[2])
		if all > hy {
			t.Errorf("%s: sharing increased tiles %v → %v", row[0], hy, all)
		}
	}
}

func TestTable5AreaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("RL searches in -short mode")
	}
	s := quickSuite()
	tab, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Area decreases monotonically across SXB sizes; AutoHet is smallest.
	prev := 1e30
	for _, row := range tab.Rows[:5] {
		a := cellFloat(t, row[1])
		if a >= prev {
			t.Errorf("area not decreasing at %s: %v >= %v", row[0], a, prev)
		}
		prev = a
	}
	autoArea := cellFloat(t, tab.Rows[5][1])
	if autoArea >= prev {
		t.Errorf("AutoHet area %v not the smallest (%v)", autoArea, prev)
	}
	// Latency stays within a modest band.
	minLat, maxLat := 1e30, 0.0
	for _, row := range tab.Rows {
		l := cellFloat(t, row[2])
		if l < minLat {
			minLat = l
		}
		if l > maxLat {
			maxLat = l
		}
	}
	if maxLat/minLat > 2.2 {
		t.Errorf("latency band %vx too wide (paper ≈1.3x)", maxLat/minLat)
	}
}

func TestFig11SensitivityGains(t *testing.T) {
	if testing.Short() {
		t.Skip("RL searches in -short mode")
	}
	s := quickSuite()
	for _, name := range []string{"fig11a", "fig11b", "fig11c"} {
		tables, err := s.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		renderOK(t, tables)
		for _, row := range tables[0].Rows {
			if gain := cellFloat(t, row[3]); gain < 1.0 {
				t.Errorf("%s %s: AutoHet gain %vx < 1", name, row[0], gain)
			}
		}
	}
}

func TestSearchTimeReport(t *testing.T) {
	if testing.Short() {
		t.Skip("RL search in -short mode")
	}
	s := quickSuite()
	tab, err := s.SearchTime()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	share := cellFloat(t, tab.Rows[0][3])
	if share <= 0 || share > 100 {
		t.Fatalf("simulator share %v%%", share)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := quickSuite().Run("fig99"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestNamesCoverAllRunners(t *testing.T) {
	if len(Names) != 12 {
		t.Fatalf("Names = %d entries", len(Names))
	}
}

func TestSpread(t *testing.T) {
	sq := xbar.SquareCandidates()
	got := spread(sq, 3)
	want := []xbar.Shape{xbar.Square(32), xbar.Square(128), xbar.Square(512)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spread(SXB,3) = %v", got)
		}
	}
	if one := spread(sq, 1); one[0] != xbar.Square(512) {
		t.Fatalf("spread(SXB,1) = %v", one)
	}
	if n := len(spread(sizeOrderedPool(), 8)); n != 8 {
		t.Fatalf("spread pool 8 = %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("spread over-length did not panic")
		}
	}()
	spread(sq, 6)
}

func TestSizeOrderedPool(t *testing.T) {
	pool := sizeOrderedPool()
	if len(pool) != 10 {
		t.Fatalf("pool = %d", len(pool))
	}
	for i := 1; i < len(pool); i++ {
		if pool[i].Cells() < pool[i-1].Cells() {
			t.Fatalf("pool not size-ordered at %d: %v < %v", i, pool[i], pool[i-1])
		}
	}
}
