package experiments

import (
	"fmt"

	"autohet/internal/dnn"
	"autohet/internal/report"
	"autohet/internal/xbar"
)

// Sensitivity analysis (paper §4.4, Fig. 11) on VGG16: AutoHet vs the
// RUE-best homogeneous accelerator (Best-Homo) while varying (a) the
// SXB:RXB candidate ratio, (b) the number of candidates, and (c) the PEs
// per tile. The paper does not list the exact subsets drawn from the
// ten-shape pool, so subsets are taken evenly spaced across each size-
// ordered list (documented in EXPERIMENTS.md).

// spread picks k elements evenly spaced over list (k=1 picks the largest).
func spread(list []xbar.Shape, k int) []xbar.Shape {
	if k <= 0 || k > len(list) {
		panic(fmt.Sprintf("experiments: spread k=%d over %d", k, len(list)))
	}
	if k == 1 {
		return []xbar.Shape{list[len(list)-1]}
	}
	out := make([]xbar.Shape, 0, k)
	for i := 0; i < k; i++ {
		idx := (i*(len(list)-1) + (k-1)/2) / (k - 1)
		out = append(out, list[idx])
	}
	return out
}

// sizeOrderedPool interleaves SXBs and RXBs by ascending cell count.
func sizeOrderedPool() []xbar.Shape {
	sq := xbar.SquareCandidates()
	rx := xbar.RectCandidates()
	out := make([]xbar.Shape, 0, len(sq)+len(rx))
	for i := range sq {
		out = append(out, sq[i], rx[i])
	}
	return out
}

// autoHetVsBestHomo evaluates one sensitivity point: AutoHet searched over
// cands (with sharing) against the best homogeneous SXB accelerator.
func (s *Suite) autoHetVsBestHomo(m *dnn.Model, cands []xbar.Shape, tag string) (auto, homo float64, err error) {
	res, err := s.runSearch(m, cands, true, tag)
	if err != nil {
		return 0, 0, err
	}
	_, best, err := s.bestHomogeneous(m)
	if err != nil {
		return 0, 0, err
	}
	return res.BestResult.RUE(), best.RUE(), nil
}

// Fig11a varies the ratio of square to rectangular candidates (2S3R, 3S2R,
// 4S1R) with the total fixed at five.
func (s *Suite) Fig11a() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title: "Fig. 11(a) — RUE vs SXB:RXB candidate ratio (VGG16)",
		Note: "Paper shape: AutoHet beats Best-Homo at every ratio (1.03x–1.27x), " +
			"and more RXBs give larger RUE.",
		Header: []string{"Ratio", "Best-Homo RUE", "AutoHet RUE", "Gain"},
	}
	for _, mix := range []struct{ sxb, rxb int }{{2, 3}, {3, 2}, {4, 1}} {
		cands := append(spread(xbar.SquareCandidates(), mix.sxb), spread(xbar.RectCandidates(), mix.rxb)...)
		tag := fmt.Sprintf("11a-%dS%dR", mix.sxb, mix.rxb)
		auto, homo, err := s.autoHetVsBestHomo(m, cands, tag)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dS%dR", mix.sxb, mix.rxb),
			report.E(homo), report.E(auto), fmt.Sprintf("%.2fx", auto/homo))
	}
	return t, nil
}

// Fig11b varies the number of crossbar candidates (2, 4, 8) drawn evenly
// from the ten-shape mixed pool.
func (s *Suite) Fig11b() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title: "Fig. 11(b) — RUE vs number of candidates (VGG16)",
		Note: "Paper shape: AutoHet beats Best-Homo regardless of candidate count " +
			"(1.15x average), with larger gains from more candidates.",
		Header: []string{"Candidates", "Best-Homo RUE", "AutoHet RUE", "Gain"},
	}
	pool := sizeOrderedPool()
	for _, n := range []int{2, 4, 8} {
		cands := spread(pool, n)
		auto, homo, err := s.autoHetVsBestHomo(m, cands, fmt.Sprintf("11b-%d", n))
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(n), report.E(homo), report.E(auto), fmt.Sprintf("%.2fx", auto/homo))
	}
	return t, nil
}

// Fig11c varies the PEs per tile (8, 16, 32) with the default candidates.
func (s *Suite) Fig11c() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title: "Fig. 11(c) — RUE vs PEs per tile (VGG16)",
		Note: "Paper shape: AutoHet's advantage widens with bigger tiles " +
			"(2.24x–4.38x) because tile-based wastage grows and sharing reclaims it.",
		Header: []string{"PEs/tile", "Best-Homo RUE", "AutoHet RUE", "Gain"},
	}
	for _, pes := range []int{8, 16, 32} {
		sub := NewSuite(s.Rounds, s.Seed)
		sub.Cfg.PEsPerTile = pes
		auto, homo, err := sub.autoHetVsBestHomo(m, xbar.DefaultCandidates(), fmt.Sprintf("11c-%d", pes))
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(pes), report.E(homo), report.E(auto), fmt.Sprintf("%.2fx", auto/homo))
	}
	return t, nil
}
