package experiments

import (
	"testing"

	"autohet/internal/report"
)

func TestBreakdownSharesSumTo100(t *testing.T) {
	s := quickSuite()
	tab, err := s.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	for _, row := range tab.Rows {
		var sum float64
		for _, cell := range row[1:8] {
			sum += cellFloat(t, cell)
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s: component shares sum to %v%%", row[0], sum)
		}
		// ADC dominance (the literature's observation).
		if adc := cellFloat(t, row[1]); adc < 50 {
			t.Errorf("%s: ADC share %v%% below 50%%", row[0], adc)
		}
	}
}

func TestFaultSensitivityMonotone(t *testing.T) {
	s := quickSuite()
	tab, err := s.FaultSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	prev := -1.0
	for _, row := range tab.Rows {
		quiet := cellFloat(t, row[1])
		noisy := cellFloat(t, row[2])
		if quiet < prev {
			t.Errorf("stuck-at error not monotone: %v after %v", quiet, prev)
		}
		prev = quiet
		if noisy < quiet {
			t.Errorf("read noise reduced error: %v vs %v", noisy, quiet)
		}
	}
}

func TestPipelineExtension(t *testing.T) {
	s := quickSuite()
	tab, err := s.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if sp := cellFloat(t, row[4]); sp <= 1 {
			t.Errorf("%s: pipelining speedup %v not > 1", row[0], sp)
		}
	}
}

func TestLLMExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("RL search in -short mode")
	}
	s := quickSuite()
	tab, err := s.LLM()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	auto := cellFloat(t, tab.Rows[len(tab.Rows)-1][3])
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		if cellFloat(t, row[3]) > auto {
			t.Errorf("homogeneous %s RUE beats AutoHet on BERT-Base", row[0])
		}
	}
}

func TestRunExtensionDispatch(t *testing.T) {
	s := quickSuite()
	if _, err := s.RunExtension("nope"); err == nil {
		t.Fatal("unknown extension must error")
	}
	tables, err := s.RunExtension("faults")
	if err != nil || len(tables) != 1 {
		t.Fatalf("RunExtension(faults) = %v, %v", tables, err)
	}
	if len(Extensions) != 15 {
		t.Fatalf("Extensions = %v", Extensions)
	}
}

func TestPrecisionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing search in -short mode")
	}
	s := quickSuite()
	tab, err := s.PrecisionSweep()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Uniform rows: energy and probe error fall/rise monotonically with bits.
	prevEnergy, prevErr := -1.0, -1.0
	for _, row := range tab.Rows[:3] {
		e := cellFloat(t, row[2])
		pe := cellFloat(t, row[4])
		if prevEnergy > 0 && e >= prevEnergy {
			t.Errorf("energy not decreasing with fewer bits: %v after %v", e, prevEnergy)
		}
		if pe < prevErr {
			t.Errorf("probe error not increasing with fewer bits: %v after %v", pe, prevErr)
		}
		prevEnergy, prevErr = e, pe
	}
	// Mixed search: mean bits within [6, 8] and RUE ≥ uniform 8-bit.
	mixed := tab.Rows[3]
	mean := cellFloat(t, mixed[1])
	if mean < 6 || mean > 8 {
		t.Fatalf("mixed mean bits %v outside [6,8]", mean)
	}
	if cellFloat(t, mixed[3]) < cellFloat(t, tab.Rows[0][3]) {
		t.Fatal("mixed RUE below uniform 8-bit")
	}
}

func TestADCSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("RL searches in -short mode")
	}
	s := quickSuite()
	tab, err := s.ADCSweep()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	// RUE falls as ADC bits rise (energy scales 2^bits); gains stay >= 1.
	prevHomo := 1e18
	for _, row := range tab.Rows {
		homo := cellFloat(t, row[1])
		if homo >= prevHomo {
			t.Errorf("Best-Homo RUE not decreasing with ADC bits: %v after %v", homo, prevHomo)
		}
		prevHomo = homo
		if gain := cellFloat(t, row[3]); gain < 1 {
			t.Errorf("AutoHet gain %v < 1 at %s bits", gain, row[0])
		}
	}
}

func TestNoCExperiment(t *testing.T) {
	s := quickSuite()
	tab, err := s.NoC()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, []*report.Table{tab})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The mesh/flat ratio falls as crossbars grow (layers spread over
	// fewer tiles).
	prev := 1e18
	for _, row := range tab.Rows {
		ratio := cellFloat(t, row[4])
		if ratio >= prev {
			t.Errorf("mesh/flat ratio not decreasing: %v after %v", ratio, prev)
		}
		prev = ratio
	}
}

func TestShardExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("three sharded fleet runs skipped in -short")
	}
	s := quickSuite()
	tab, err := s.Shard()
	if err != nil {
		t.Fatal(err) // includes a goroutine-vs-DES deviation beyond 1e-6
	}
	renderOK(t, []*report.Table{tab})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		rep, sh := tab.Rows[i], tab.Rows[i+1]
		if rep[1] != "replicated" || sh[1] != "sharded" {
			t.Fatalf("row pair %d: %v / %v", i, rep, sh)
		}
		// Sharding's win: the largest single chip shrinks.
		if repChip, shChip := cellFloat(t, rep[4]), cellFloat(t, sh[4]); shChip >= repChip {
			t.Errorf("%s: sharded max chip %v mm² not below replicated %v mm²", rep[0], shChip, repChip)
		}
		// Its cost: end-to-end p50 grows (transfers + per-stage queueing).
		if repP50, shP50 := cellFloat(t, rep[7]), cellFloat(t, sh[7]); shP50 <= repP50 {
			t.Errorf("%s: sharded p50 %v µs not above replicated %v µs", rep[0], shP50, repP50)
		}
	}
}
