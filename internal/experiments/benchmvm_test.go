package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"autohet/internal/dnn"
)

func TestBenchMVMTinyModel(t *testing.T) {
	m, err := dnn.NewModel("tiny", 8, 8, 3, []*dnn.Layer{
		{Name: "c1", Kind: dnn.Conv, K: 3, InC: 3, OutC: 8, Stride: 1, Pad: 1},
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 8 * 8 * 8, OutC: 4, Stride: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchMVMModel(m, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Kernel.BitExact {
		t.Fatal("kernel leg must verify bit-exactness before timing")
	}
	if b.Kernel.PackedNsPerMVM <= 0 || b.Kernel.ScalarNsPerMVM <= 0 {
		t.Fatalf("kernel timings missing: %+v", b.Kernel)
	}
	if b.Kernel.Speedup <= 1 {
		t.Fatalf("packed kernel slower than scalar: %+v", b.Kernel)
	}
	e := b.EndToEnd
	if !e.BitExactMatchesFast {
		t.Fatal("end-to-end leg must verify bit-exact == fast")
	}
	if e.MVMsPerInference != int64(8*8+1) {
		t.Fatalf("MVMs per inference %d, want %d", e.MVMsPerInference, 8*8+1)
	}
	if e.InferencesPerSec <= 0 || e.WallSecondsPerInf <= 0 || e.ScalarEstimateSecs <= 0 {
		t.Fatalf("end-to-end timings missing: %+v", e)
	}

	path := filepath.Join(t.TempDir(), "BENCH_mvm.json")
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back MVMBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kernel.Speedup != b.Kernel.Speedup || back.EndToEnd.Model != "tiny" {
		t.Fatalf("JSON round trip lost fields: %+v", back)
	}
}
