package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"autohet/internal/dnn"
)

func TestBenchMVMTinyModel(t *testing.T) {
	m, err := dnn.NewModel("tiny", 8, 8, 3, []*dnn.Layer{
		{Name: "c1", Kind: dnn.Conv, K: 3, InC: 3, OutC: 8, Stride: 1, Pad: 1},
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 8 * 8 * 8, OutC: 4, Stride: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchMVMModel(m, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Kernel.BitExact {
		t.Fatal("kernel leg must verify bit-exactness before timing")
	}
	if b.Kernel.PackedNsPerMVM <= 0 || b.Kernel.ScalarNsPerMVM <= 0 {
		t.Fatalf("kernel timings missing: %+v", b.Kernel)
	}
	if b.Kernel.Speedup <= 1 {
		t.Fatalf("packed kernel slower than scalar: %+v", b.Kernel)
	}
	if len(b.KernelBatch) != 4 {
		t.Fatalf("kernel batch sweep has %d legs, want 4", len(b.KernelBatch))
	}
	for i, B := range []int{1, 8, 32, 128} {
		kl := b.KernelBatch[i]
		if kl.Batch != B {
			t.Fatalf("kernel batch leg %d has batch %d, want %d", i, kl.Batch, B)
		}
		if !kl.BitExact {
			t.Fatalf("kernel batch leg B=%d not verified bit-exact", B)
		}
		if kl.NsPerMVM <= 0 || kl.MVMsPerSec <= 0 || kl.SpeedupVsB1 <= 0 {
			t.Fatalf("kernel batch leg B=%d timings missing: %+v", B, kl)
		}
	}
	e := b.EndToEnd
	if !e.BitExactMatchesFast {
		t.Fatal("end-to-end leg must verify bit-exact == fast")
	}
	if e.MVMsPerInference != int64(8*8+1) {
		t.Fatalf("MVMs per inference %d, want %d", e.MVMsPerInference, 8*8+1)
	}
	if e.InferencesPerSec <= 0 || e.WallSecondsPerInf <= 0 || e.ScalarEstimateSecs <= 0 {
		t.Fatalf("end-to-end timings missing: %+v", e)
	}
	if e.BitExactInfPerSec <= 0 || e.BitExactSecsPerInf <= 0 {
		t.Fatalf("bit-exact end-to-end timings missing: %+v", e)
	}
	if len(e.ServeBatch) != 3 {
		t.Fatalf("serve sweep has %d legs, want 3", len(e.ServeBatch))
	}
	for i, B := range []int{1, 8, 32} {
		sl := e.ServeBatch[i]
		if sl.Batch != B || sl.InferencesPerSec <= 0 {
			t.Fatalf("serve leg %d malformed: %+v", i, sl)
		}
	}
	if e.ServeBatch[0].InferencesPerSec != e.InferencesPerSec {
		t.Fatalf("headline throughput %.3f must be the batch-1 serve leg %.3f",
			e.InferencesPerSec, e.ServeBatch[0].InferencesPerSec)
	}

	path := filepath.Join(t.TempDir(), "BENCH_mvm.json")
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back MVMBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kernel.Speedup != b.Kernel.Speedup || back.EndToEnd.Model != "tiny" {
		t.Fatalf("JSON round trip lost fields: %+v", back)
	}
	if len(back.KernelBatch) != len(b.KernelBatch) || back.KernelBatchLeg(32) == nil {
		t.Fatalf("JSON round trip lost kernel batch legs: %+v", back.KernelBatch)
	}
}

// TestKernelBatchAmortizationSmoke is the CI bench smoke: on a quiet machine
// the batched kernel at B=32 must amortize the per-MVM plane walk at least
// 4x over B=1. Timing-sensitive, so it only runs when asked for explicitly
// (AUTOHET_BENCH_SMOKE=1).
func TestKernelBatchAmortizationSmoke(t *testing.T) {
	if os.Getenv("AUTOHET_BENCH_SMOKE") == "" {
		t.Skip("set AUTOHET_BENCH_SMOKE=1 to run the timing-sensitive bench smoke")
	}
	legs, err := benchMVMKernelBatch(1, 400)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b32 *MVMKernelBatchLeg
	for i := range legs {
		switch legs[i].Batch {
		case 1:
			b1 = &legs[i]
		case 32:
			b32 = &legs[i]
		}
	}
	if b1 == nil || b32 == nil {
		t.Fatalf("sweep missing B=1 or B=32 leg: %+v", legs)
	}
	t.Logf("kernel amortization: B=1 %.0f ns/MVM, B=32 %.0f ns/MVM (%.1fx)",
		b1.NsPerMVM, b32.NsPerMVM, b32.SpeedupVsB1)
	if b32.SpeedupVsB1 < 4 {
		t.Fatalf("B=32 kernel leg amortizes only %.2fx over B=1, want >= 4x", b32.SpeedupVsB1)
	}
}
