package experiments

import "testing"

// The ISSUE acceptance criteria for the chaos experiment, asserted on the
// exact recipe and seed the committed table is generated with: resilient
// goodput recovers to ≥90% of pre-storm within the window, resilient p99
// stays within 2x the calm baseline, and the resilience-off leg is
// measurably worse on both goodput and SLO losses.
func TestChaosRecoveryCriteria(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos recovery experiment skipped in -short")
	}
	s := NewSuite(1, 1) // rounds are irrelevant; seed 1 matches -run chaos
	runs, err := s.ChaosRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("%d legs, want 3", len(runs))
	}
	base, off, resil := runs[0], runs[1], runs[2]

	if base.Res.Completed != base.Res.Offered {
		t.Fatalf("calm baseline lost requests: %+v", base.Res.Result)
	}
	if off.Res.Expired+off.Res.Failed+off.Res.Unroutable == 0 {
		t.Fatal("storm without resilience lost nothing — storm too mild to mean anything")
	}

	if resil.Recovery < 0.9 {
		t.Fatalf("resilient post-storm goodput recovered to %.1f%% of pre-storm, want >= 90%%", 100*resil.Recovery)
	}
	if limit := 2 * base.Res.P99NS; resil.Res.P99NS > limit {
		t.Fatalf("resilient p99 %.1f ms exceeds 2x baseline (%.1f ms)", resil.Res.P99NS/1e6, limit/1e6)
	}

	// Resilience off must be measurably worse: goodput through the storm
	// and total SLO losses (lost + expired).
	if off.StormRPS >= 0.5*resil.StormRPS {
		t.Fatalf("storm goodput without resilience %.0f req/s, with %.0f — not measurably worse", off.StormRPS, resil.StormRPS)
	}
	offLoss := off.Res.Expired + off.Res.Failed + off.Res.Unroutable
	resilLoss := resil.Res.Expired + resil.Res.Failed + resil.Res.Unroutable
	if resilLoss >= offLoss {
		t.Fatalf("SLO losses: %d with resilience vs %d without", resilLoss, offLoss)
	}
	if resil.Res.Completed <= off.Res.Completed {
		t.Fatalf("completions: %d with resilience vs %d without", resil.Res.Completed, off.Res.Completed)
	}
	if resil.Res.Retried == 0 || resil.Res.Hedged == 0 || resil.Res.BrownoutShed == 0 {
		t.Fatalf("resilience machinery idle: retried %d, hedged %d, brownout %d",
			resil.Res.Retried, resil.Res.Hedged, resil.Res.BrownoutShed)
	}
}
