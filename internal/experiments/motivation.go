package experiments

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/report"
	"autohet/internal/xbar"
)

// Fig3 reproduces the motivation study (paper Fig. 3): VGG16 mapped onto
// five homogeneous SXB accelerators versus the hand-tuned heterogeneous
// strategy (512×512 for the first ten layers, 256×256 for the last six),
// comparing utilization, energy, and RUE.
func (s *Suite) Fig3() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title: "Fig. 3 — homogeneous vs manual-heterogeneous crossbars (VGG16)",
		Note: "Paper shape: homogeneous gets high utilization (32x32) OR low energy (512x512), " +
			"never both; Manual-Hetero attains the highest RUE.",
		Header: []string{"Accelerator", "Utilization", "Energy (nJ)", "RUE"},
	}
	for _, shape := range xbar.SquareCandidates() {
		r, err := s.evaluate(m, accel.Homogeneous(16, shape), false)
		if err != nil {
			return nil, err
		}
		t.AddRow(shape.String(), report.Pct(r.Utilization), report.E(r.EnergyNJ), report.E(r.RUE()))
	}
	r, err := s.evaluate(m, accel.ManualHetero(16), false)
	if err != nil {
		return nil, err
	}
	t.AddRow("Manual-Hetero", report.Pct(r.Utilization), report.E(r.EnergyNJ), report.E(r.RUE()))
	return t, nil
}

// Fig4 reproduces the tile-wastage study (paper Fig. 4): the proportion of
// empty crossbars when VGG16's first four layers map onto 64×64 crossbars,
// as the slots per tile grow from 4 to 32.
func (s *Suite) Fig4() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title: "Fig. 4 — empty-crossbar proportion vs tile size (VGG16 L1–L4, 64x64 XBs)",
		Note: "Paper shape: ~24% average empty at 4 XBs/tile rising to ~60% at 32; " +
			"only ~58% of crossbars utilized on average.",
		Header: []string{"Layer", "4/tile", "8/tile", "16/tile", "32/tile"},
	}
	tileSizes := []int{4, 8, 16, 32}
	sums := make([]float64, len(tileSizes))
	for li, l := range m.Mappable()[:4] {
		row := []string{fmt.Sprintf("Layer %d", li+1)}
		for ti, slots := range tileSizes {
			cfg := s.Cfg
			cfg.PEsPerTile = slots
			single, err := singleLayerModel(l)
			if err != nil {
				return nil, err
			}
			p, err := accel.BuildPlan(cfg, single, accel.Homogeneous(1, xbar.Square(64)), false)
			if err != nil {
				return nil, err
			}
			empty := p.EmptySlotFraction()
			sums[ti] += empty
			row = append(row, report.Pct(100*empty))
		}
		t.AddRow(row...)
	}
	avg := []string{"Average"}
	for _, v := range sums {
		avg = append(avg, report.Pct(100*v/4))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig5 reproduces the utilization/ADC trade-off example (paper Fig. 5):
// 128 kernels of 3×3×12 mapped onto 64×64 and 128×128 crossbars in 4-slot
// tiles. The paper reports utilization 27/32 vs 27/128 and 256 vs 128
// activated ADC bitlines.
func (s *Suite) Fig5() (*report.Table, error) {
	t := &report.Table{
		Title:  "Fig. 5 — one layer (128 kernels of 3x3x12) on 64x64 vs 128x128",
		Note:   "Paper: XB64 utilization 27/32, 256 ADCs; XB128 utilization 27/128, 128 ADCs.",
		Header: []string{"Crossbar", "Tile utilization", "Active ADC bitlines", "Slots used", "Energy (nJ)"},
	}
	layer := &dnn.Layer{Name: "fig5", Kind: dnn.Conv, K: 3, InC: 12, OutC: 128, Stride: 1, Pad: 0, InH: 8, InW: 8}
	m, err := singleLayerModel(layer)
	if err != nil {
		return nil, err
	}
	for _, shape := range []xbar.Shape{xbar.Square(64), xbar.Square(128)} {
		r, err := s.evaluate(m, accel.Homogeneous(1, shape), false)
		if err != nil {
			return nil, err
		}
		la := r.Plan.Layers[0]
		used, alloc := la.Mapping.UsedCells, r.Plan.AllocatedCells()
		g := gcd64(used, alloc)
		t.AddRow(
			shape.String(),
			fmt.Sprintf("%s (%d/%d)", report.Pct(r.Utilization), used/g, alloc/g),
			report.I(la.Mapping.ActiveCols),
			report.I(la.SlotsNeeded()),
			report.E(r.EnergyNJ),
		)
	}
	return t, nil
}

// gcd64 reduces the utilization fraction to the paper's 27/32 form.
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// singleLayerModel wraps one mappable layer in a standalone flat model so it
// can be allocated and simulated in isolation.
func singleLayerModel(l *dnn.Layer) (*dnn.Model, error) {
	clone := &dnn.Layer{
		Name: l.Name, Kind: l.Kind, K: l.K, InC: l.InC, OutC: l.OutC,
		Stride: l.Stride, Pad: l.Pad, InH: l.InH, InW: l.InW,
	}
	if clone.InH == 0 {
		clone.InH, clone.InW = 8, 8
	}
	return dnn.NewFlatModel("layer:"+l.Name, clone.InH, clone.InW, clone.InC, []*dnn.Layer{clone})
}
