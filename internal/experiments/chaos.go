package experiments

import (
	"fmt"

	"autohet/internal/chaos"
	"autohet/internal/des"
	"autohet/internal/des/trace"
	"autohet/internal/fleet"
	"autohet/internal/report"
)

// Chaos experiment — fault injection against the DES fleet with the
// client-side resilience stack on and off. One storm recipe, three runs:
// a calm baseline, the storm with legacy dispatch, and the storm with
// retry + hedging + breakers + brownout. Goodput is windowed so the table
// shows the collapse and the recovery, not just end-of-run totals.
//
// The storm is sized to overload the survivors: an eighth of the fleet
// turns 20x slow at 6s (capacity ~4880 vs 4800 offered — balanced on a
// knife edge), then a quarter crashes at 9s (capacity ~3280 — deep
// overload) and restarts at 13s; the slowdown lifts at 16s. The 400 ms
// latency budget is the SLO: without resilience the backlog burns it for
// everyone, with resilience breakers route around the stragglers, brownout
// sheds the lowest priority classes first, and retries re-home the copies
// the crashes drained.
const (
	chaosReplicas = 64
	chaosClusters = 8
	chaosRequests = 150_000
	chaosLoad     = 0.75
	chaosBudgetNS = 400e6

	chaosWindowNS     = 2e9
	chaosStormStartNS = 6e9
	chaosStormEndNS   = 16e9
	chaosCrashAtNS    = 9e9
	chaosCrashMTTRNS  = 4e9
	chaosCrashFrac    = 0.25
	chaosSlowFrac     = 0.125
	chaosSlowFactor   = 20
)

// ChaosRun is one measured leg of the chaos experiment.
type ChaosRun struct {
	Name string
	Res  *des.Result
	// PreRPS / StormRPS / PostRPS are mean windowed goodput before the
	// storm starts, while it rages, and after it ends (partial and warmup
	// windows excluded); Recovery is post over pre.
	PreRPS, StormRPS, PostRPS, Recovery float64
}

// chaosStorm builds the storm schedule over the fleet's replica names.
func chaosStorm(seed int64) *chaos.Schedule {
	rnames := make([]string, chaosReplicas)
	for i := range rnames {
		rnames[i] = fmt.Sprintf("r%d", i)
	}
	return chaos.Merge(
		chaos.SlowStorm(chaosStormStartNS, chaosStormEndNS-chaosStormStartNS, rnames,
			chaosSlowFrac, chaosSlowFactor, seed),
		chaos.CrashStorm(chaosCrashAtNS, chaosCrashMTTRNS, rnames, chaosCrashFrac, seed),
	)
}

// chaosResilience is the stack the resilient leg runs: stock retry, hedge,
// and breaker policies, with brownout sized to the service model. A
// fill/interval-5 pipeline holds a natural standing backlog of ~3.75
// queued per active replica at this load, so the sheddable class's
// threshold (MaxQueuedPerActive/Levels per active) must clear that; two
// levels at 8 put it at 4 per active — quiet in steady state, tripped
// within a second of the storm opening a capacity hole, and ~40 ms of
// queue wait at the pinned backlog (the single threshold stops the backlog
// riding up a ladder of per-class shed points). The hedge delay is capped
// at 100 ms so backups stay aggressive while the storm drags the observed
// p95 up.
func chaosResilience() chaos.Resilience {
	return chaos.Resilience{
		Retry:    &chaos.RetryPolicy{},
		Hedge:    &chaos.HedgePolicy{MaxDelayNS: 100e6},
		Breaker:  &chaos.BreakerConfig{},
		Brownout: &chaos.BrownoutPolicy{MaxQueuedPerActive: 8, Levels: 2},
	}
}

// ChaosRuns executes the three legs. Exported so the acceptance test can
// assert the recovery criteria on exactly the numbers the table prints.
func (s *Suite) ChaosRuns() ([]ChaosRun, error) {
	rate := chaosLoad * float64(chaosReplicas) * 100 // 100 req/s per replica
	legs := []struct {
		name  string
		storm bool
		res   chaos.Resilience
	}{
		{"baseline (no faults)", false, chaos.Resilience{}},
		{"storm, resilience off", true, chaos.Resilience{}},
		{"storm + resilience", true, chaosResilience()},
	}
	var runs []ChaosRun
	for _, leg := range legs {
		cfg := des.DefaultConfig()
		cfg.Policy = fleet.JoinShortestQueue
		cfg.ClusterPolicy = fleet.JoinShortestQueue
		cfg.Clusters = chaosClusters
		cfg.QueueDepth = 64
		cfg.Seed = s.Seed
		cfg.StatsWindowNS = chaosWindowNS
		cfg.Resilience = leg.res
		if leg.storm {
			cfg.Chaos = chaosStorm(s.Seed)
		}
		f, err := des.NewFleet(cfg, desSpecs(chaosReplicas)...)
		if err != nil {
			return nil, err
		}
		res, err := f.RunTrace(trace.Poisson(rate, s.Seed), chaosRequests, chaosBudgetNS)
		if err != nil {
			return nil, err
		}
		r := ChaosRun{
			Name:     leg.name,
			Res:      res,
			PreRPS:   meanGoodput(res.Windows, chaosWindowNS, chaosWindowNS, chaosStormStartNS),
			StormRPS: meanGoodput(res.Windows, chaosWindowNS, chaosStormStartNS, chaosStormEndNS),
			PostRPS:  meanGoodput(res.Windows, chaosWindowNS, chaosStormEndNS+chaosWindowNS, lastFullWindowNS(res.Windows)),
		}
		if r.PreRPS > 0 {
			r.Recovery = r.PostRPS / r.PreRPS
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// meanGoodput averages GoodputRPS over the windows lying fully inside
// [fromNS, toNS).
func meanGoodput(ws []des.WindowStats, windowNS, fromNS, toNS float64) float64 {
	var sum float64
	n := 0
	for _, w := range ws {
		if w.StartNS >= fromNS && w.StartNS+windowNS <= toNS {
			sum += w.GoodputRPS(windowNS)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// lastFullWindowNS is the start of the final window — everything before it
// is complete; the final window itself is cut short by the end of arrivals.
func lastFullWindowNS(ws []des.WindowStats) float64 {
	if len(ws) == 0 {
		return 0
	}
	return ws[len(ws)-1].StartNS
}

// Chaos renders the chaos experiment table.
func (s *Suite) Chaos() (*report.Table, error) {
	runs, err := s.ChaosRuns()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: fmt.Sprintf("Extension — chaos: fault storm vs client-side resilience (%d replicas, %.0f%% load, %.0f ms SLO, jsq)",
			chaosReplicas, 100*chaosLoad, chaosBudgetNS/1e6),
		Note: fmt.Sprintf("An eighth of the fleet runs %dx slow from 6s to 16s; a quarter crashes at 9s and restarts at 13s. "+
			"Lost = crash losses + dead-end routes (failed + unroutable); Expired = requests that burned the %.0f ms budget. "+
			"Resilience (retry + hedging + breakers + brownout) sheds the lowest priority classes to keep the rest inside "+
			"the SLO; recovery compares post-storm windowed goodput (%gs windows) to pre-storm.",
			chaosSlowFactor, chaosBudgetNS/1e6, chaosWindowNS/1e9),
		Header: []string{"Scenario", "Completed", "Lost", "Expired", "Shed", "Retried", "Hedged",
			"p50 (ms)", "p99 (ms)", "Goodput storm", "Goodput post", "Recovery"},
	}
	for _, r := range runs {
		res := r.Res
		t.AddRow(r.Name, report.I(res.Completed), report.I(res.Failed+res.Unroutable),
			report.I(res.Expired), report.I(res.Shed), report.I(res.Retried), report.I(int(res.Hedged)),
			fmt.Sprintf("%.1f", res.P50NS/1e6), fmt.Sprintf("%.1f", res.P99NS/1e6),
			fmt.Sprintf("%.0f", r.StormRPS), fmt.Sprintf("%.0f", r.PostRPS),
			fmt.Sprintf("%.1f%%", 100*r.Recovery))
	}
	return t, nil
}
