package experiments

import (
	"fmt"
	"time"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/report"
	"autohet/internal/search"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// Table3 reproduces the per-layer strategy table (paper Table 3): the
// crossbar size each ablation stage assigns to every VGG16 layer.
func (s *Suite) Table3() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title: "Table 3 — crossbar size per VGG16 layer",
		Note: "Paper shape: Base is uniform 512x512; +He demotes some late layers to 256x256; " +
			"+Hy assigns 288x256 to L1 and 576x512 elsewhere (RXBs dominate SXBs).",
		Header: []string{"Layer", string(Base), string(He), string(Hy)},
	}
	var strategies []accel.Strategy
	for _, v := range []Variant{Base, He, Hy} {
		st, _, err := s.variantResult(m, v)
		if err != nil {
			return nil, err
		}
		strategies = append(strategies, st)
	}
	for k := 0; k < m.NumMappable(); k++ {
		row := []string{fmt.Sprintf("L%d", k+1)}
		for _, st := range strategies {
			row = append(row, st[k].String())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table4 reproduces the occupied-tile comparison (paper Table 4): the total
// number of occupied tiles under +Hy (no sharing) and All (tile-shared) for
// each model. The paper reports reductions of 6.1%, 10%, and 5.7%.
func (s *Suite) Table4() (*report.Table, error) {
	t := &report.Table{
		Title:  "Table 4 — occupied tiles, +Hy vs All",
		Note:   "Paper shape: tile sharing cuts occupied tiles by ~5–10% on every model.",
		Header: []string{"Model", string(Hy), string(All), "Reduction"},
	}
	models := dnn.Zoo()
	type pair struct{ plain, shared *sim.Result }
	pairs := make([]pair, len(models))
	if err := search.ParallelFor(len(models), func(mi int) error {
		// Isolate the tile-sharing effect: evaluate the same +Hy strategy
		// with sharing off and on (the paper's All column additionally
		// re-searches; the sharing gain is what the table demonstrates).
		m := models[mi]
		st, _, err := s.variantResult(m, Hy)
		if err != nil {
			return err
		}
		plain, err := s.evaluate(m, st, false)
		if err != nil {
			return err
		}
		shared, err := s.evaluate(m, st, true)
		if err != nil {
			return err
		}
		pairs[mi] = pair{plain, shared}
		return nil
	}); err != nil {
		return nil, err
	}
	for mi, m := range models {
		plain, shared := pairs[mi].plain, pairs[mi].shared
		red := 100 * float64(plain.OccupiedTiles-shared.OccupiedTiles) / float64(plain.OccupiedTiles)
		t.AddRow(m.Name, report.I(plain.OccupiedTiles), report.I(shared.OccupiedTiles),
			fmt.Sprintf("%.1f%%", red))
	}
	return t, nil
}

// Table5 reproduces the area/latency discussion table (paper Table 5, §4.5)
// for VGG16: the silicon area and per-inference latency of each homogeneous
// SXB accelerator and of AutoHet.
func (s *Suite) Table5() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title: "Table 5 — area and latency (VGG16)",
		Note: "Paper shape: area falls monotonically 32x32→512x512 and AutoHet is smallest " +
			"(−92% vs 512x512 in the paper); latency stays within a ~1.3x band with AutoHet near the bottom.",
		Header: []string{"Accelerator", "Area (µm²)", "Latency (ns)"},
	}
	shapes := xbar.SquareCandidates()
	rows := make([]*sim.Result, len(shapes)+1)
	if err := search.ParallelFor(len(rows), func(i int) error {
		var r *sim.Result
		var err error
		if i < len(shapes) {
			r, err = s.evaluate(m, accel.Homogeneous(16, shapes[i]), false)
		} else {
			_, r, err = s.variantResult(m, All)
		}
		rows[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	for i, shape := range shapes {
		t.AddRow("SXB"+fmt.Sprint(shape.R), report.E(rows[i].AreaUM2), report.E(rows[i].LatencyNS))
	}
	r := rows[len(shapes)]
	t.AddRow("AutoHet", report.E(r.AreaUM2), report.E(r.LatencyNS))
	return t, nil
}

// SearchTime reproduces the §4.5 search-cost discussion: wall-clock time of
// the VGG16 RL search and the fraction spent waiting on simulator feedback
// (the paper: 49.2 minutes for 300 rounds, 97% in the simulator; this
// repo's simulator is far cheaper, so absolute times shrink accordingly).
func (s *Suite) SearchTime() (*report.Table, error) {
	m := dnn.VGG16()
	res, err := s.runSearch(m, xbar.DefaultCandidates(), true, "all")
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: "§4.5 — RL search cost (VGG16)",
		Note: "Paper shape: search is offline and dominated by simulator feedback " +
			"(97% in the paper; here the evaluation engine collapses it — cache hits are free).",
		Header: []string{"Rounds", "Total", "Simulator", "Simulator share", "Evals", "Cache hits"},
	}
	share := 0.0
	if res.TotalTime > 0 {
		share = 100 * float64(res.SimTime) / float64(res.TotalTime)
	}
	t.AddRow(report.I(s.Rounds), res.TotalTime.Round(time.Millisecond).String(),
		res.SimTime.Round(time.Microsecond).String(), fmt.Sprintf("%.3g%%", share),
		report.I(int(res.Stats.Evals)), report.I(int(res.Stats.CacheHits)))
	return t, nil
}
