package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchSearch smoke-tests the cached-vs-uncached search benchmark at a
// reduced budget: legs must converge to the same winner (BenchSearch errors
// otherwise), the cached leg must actually hit its cache, and the JSON
// document must round-trip.
func TestBenchSearch(t *testing.T) {
	b, err := BenchSearch(25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if b.Uncached.HitRate != 0 {
		t.Fatalf("uncached leg reports hits: %+v", b.Uncached)
	}
	if b.Cached.CacheHits == 0 {
		t.Fatalf("cached leg never hit: %+v", b.Cached)
	}
	if b.Uncached.Evals != b.Cached.Evals {
		t.Fatalf("legs diverged: %d vs %d evals", b.Uncached.Evals, b.Cached.Evals)
	}
	if b.Speedup <= 0 {
		t.Fatalf("speedup %v", b.Speedup)
	}
	path := filepath.Join(t.TempDir(), "BENCH_search.json")
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SearchBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Model != b.Model || back.Cached.Evals != b.Cached.Evals {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, b)
	}
}
