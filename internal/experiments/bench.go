package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"autohet/internal/dnn"
	"autohet/internal/rl"
	"autohet/internal/search"
	"autohet/internal/xbar"
)

// BenchLeg records one measured search configuration of the benchmark.
type BenchLeg struct {
	Cached       bool    `json:"cached"`
	WallSeconds  float64 `json:"wall_seconds"`
	SimSeconds   float64 `json:"sim_seconds"` // summed worker time, can exceed wall
	RoundsPerSec float64 `json:"rounds_per_sec"`
	Evals        int64   `json:"evals"`
	CacheHits    int64   `json:"cache_hits"`
	HitRate      float64 `json:"hit_rate"`
	RUE          float64 `json:"rue"` // winner's RUE, to confirm identical outcomes
}

// SearchBench is the JSON document cmd/experiments -bench-json writes: the
// paper's §4.5 search-cost experiment re-run through the memoized + parallel
// evaluation engine, cached vs uncached on the same model and seed.
type SearchBench struct {
	Model      string   `json:"model"`
	Rounds     int      `json:"rounds"`
	Seed       int64    `json:"seed"`
	Workers    int      `json:"workers"` // GOMAXPROCS during the run
	Candidates string   `json:"candidates"`
	Uncached   BenchLeg `json:"uncached"`
	Cached     BenchLeg `json:"cached"`
	// Speedup is uncached wall time over cached wall time for the same
	// search trajectory.
	Speedup float64 `json:"speedup"`
}

// benchLeg runs one full AutoHet search on a fresh env and measures it.
func (s *Suite) benchLeg(m *dnn.Model, cands []xbar.Shape, cached bool) (BenchLeg, error) {
	env, err := s.env(m, cands, true)
	if err != nil {
		return BenchLeg{}, err
	}
	env.NoCache = !cached
	opts := search.DefaultOptions()
	opts.Rounds = s.Rounds
	opts.Agent = rl.DefaultAgentConfig(search.StateDim)
	opts.Agent.Seed = s.Seed
	opts.UpdateStride = m.NumMappable()/16 + 1
	start := time.Now()
	res, err := search.AutoHet(env, opts)
	if err != nil {
		return BenchLeg{}, err
	}
	wall := time.Since(start).Seconds()
	leg := BenchLeg{
		Cached:      cached,
		WallSeconds: wall,
		SimSeconds:  res.Stats.SimTime.Seconds(),
		Evals:       res.Stats.Evals,
		CacheHits:   res.Stats.CacheHits,
		HitRate:     res.Stats.HitRate(),
		RUE:         res.BestResult.RUE(),
	}
	if wall > 0 {
		leg.RoundsPerSec = float64(s.Rounds) / wall
	}
	return leg, nil
}

// BenchSearch measures the evaluation engine's effect on search cost: the
// same VGG16 RL search (same seed, same trajectory) once with the engine's
// caches disabled and once enabled. The uncached leg reproduces the paper's
// observation that simulator feedback dominates search time (97%, §4.5);
// the cached leg is this repo's answer to it.
func BenchSearch(rounds int, seed int64) (*SearchBench, error) {
	s := NewSuite(rounds, seed)
	m := dnn.VGG16()
	cands := xbar.DefaultCandidates()
	b := &SearchBench{
		Model:      m.Name,
		Rounds:     rounds,
		Seed:       seed,
		Workers:    runtime.GOMAXPROCS(0),
		Candidates: xbar.ShapeNames(cands),
	}
	var err error
	if b.Uncached, err = s.benchLeg(m, cands, false); err != nil {
		return nil, err
	}
	if b.Cached, err = s.benchLeg(m, cands, true); err != nil {
		return nil, err
	}
	if b.Cached.WallSeconds > 0 {
		b.Speedup = b.Uncached.WallSeconds / b.Cached.WallSeconds
	}
	if b.Uncached.RUE != b.Cached.RUE {
		return nil, fmt.Errorf("experiments: bench legs diverged: uncached RUE %v, cached RUE %v",
			b.Uncached.RUE, b.Cached.RUE)
	}
	return b, nil
}

// WriteJSON writes the benchmark document to path (indented, trailing
// newline) so CI and EXPERIMENTS.md recipes can archive it.
func (b *SearchBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
