package experiments

import (
	"encoding/json"
	"os"
	"runtime"

	"autohet/internal/des"
	"autohet/internal/des/trace"
	"autohet/internal/fleet"
)

// FleetBenchLeg is one measured DES fleet size.
type FleetBenchLeg struct {
	Replicas  int   `json:"replicas"`
	Clusters  int   `json:"clusters"`
	Requests  int   `json:"requests"`
	Completed int   `json:"completed"`
	Shed      int   `json:"shed"`
	Events    int64 `json:"events"`
	// VirtualSeconds is the simulated span; WallSeconds what it cost.
	VirtualSeconds float64 `json:"virtual_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	// SpeedupVsWall is virtual over wall — the engine's headline (a
	// wall-paced goroutine fleet holds this at its TimeScale).
	SpeedupVsWall float64 `json:"speedup_vs_wall"`
	EventsPerSec  float64 `json:"events_per_sec"`
	// RequestsPerSec is simulated requests resolved per wall second.
	RequestsPerSec float64 `json:"requests_per_sec"`
	P99US          float64 `json:"p99_us"`
}

// FleetBench is the JSON document cmd/experiments -bench fleet writes:
// the DES engine driven at three fleet sizes up to the cluster-scale
// 10k-replica / 1M-request recipe, all under a bursty MMPP trace with
// two-level jsq routing.
type FleetBench struct {
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"` // GOMAXPROCS during the run (engine is single-threaded)
	Trace   string `json:"trace"`
	Policy  string `json:"policy"`
	// FillNS/IntervalNS describe the per-replica service model (100 req/s
	// serving-scale replicas).
	FillNS     float64         `json:"fill_ns"`
	IntervalNS float64         `json:"interval_ns"`
	Load       float64         `json:"load"`
	Legs       []FleetBenchLeg `json:"legs"`
}

// BenchFleet measures DES fleet simulation cost at 100, 1k, and 10k
// replicas (100k, 300k, 1M requests) at 70% load.
func BenchFleet(seed int64) (*FleetBench, error) {
	b := &FleetBench{
		Seed:       seed,
		Workers:    runtime.GOMAXPROCS(0),
		Trace:      "bursty",
		Policy:     string(fleet.JoinShortestQueue),
		FillNS:     5e7,
		IntervalNS: 1e7,
		Load:       0.7,
	}
	legs := []struct {
		replicas, clusters, requests int
	}{
		{100, 4, 100_000},
		{1_000, 32, 300_000},
		{10_000, 100, 1_000_000},
	}
	for _, l := range legs {
		cfg := des.DefaultConfig()
		cfg.Policy = fleet.JoinShortestQueue
		cfg.ClusterPolicy = fleet.JoinShortestQueue
		cfg.Clusters = l.clusters
		cfg.QueueDepth = 64
		cfg.Seed = seed
		f, err := des.NewFleet(cfg, desSpecs(l.replicas)...)
		if err != nil {
			return nil, err
		}
		rate := b.Load * float64(l.replicas) * (1e9 / b.IntervalNS)
		res, err := f.RunTrace(trace.Bursty(rate, 1.8, 50e6, seed), l.requests, 0)
		if err != nil {
			return nil, err
		}
		leg := FleetBenchLeg{
			Replicas:       l.replicas,
			Clusters:       l.clusters,
			Requests:       l.requests,
			Completed:      res.Completed,
			Shed:           res.Shed,
			Events:         res.Events,
			VirtualSeconds: res.VirtualNS / 1e9,
			WallSeconds:    res.WallSeconds,
			SpeedupVsWall:  res.SpeedupVsWall,
			EventsPerSec:   res.EventsPerSec,
			P99US:          res.P99NS / 1000,
		}
		if res.WallSeconds > 0 {
			leg.RequestsPerSec = float64(l.requests) / res.WallSeconds
		}
		b.Legs = append(b.Legs, leg)
	}
	return b, nil
}

// WriteJSON writes the benchmark document to path (indented, trailing
// newline), matching the other BENCH_*.json artifacts.
func (b *FleetBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
