package experiments

import (
	"encoding/json"
	"os"
	"runtime"

	"autohet/internal/des"
	"autohet/internal/des/trace"
	"autohet/internal/fleet"
)

// FleetBenchLeg is one measured DES fleet configuration.
type FleetBenchLeg struct {
	Replicas int `json:"replicas"`
	Clusters int `json:"clusters"`
	Requests int `json:"requests"`
	// Workers is des.Config.Workers for this leg; Lanes is how many
	// parallel lanes the run actually used (1 when the sharded path was
	// ineligible or not worthwhile).
	Workers int `json:"workers"`
	Lanes   int `json:"lanes"`
	// Shards is the pipeline-parallel stage count (1 = whole-model
	// replicas). Sharded legs run flat (one cluster) and serial — the
	// engine pins sharded runs to the serial path for log determinism — so
	// they measure the per-hop event cost of chained serving.
	Shards    int   `json:"shards"`
	Completed int   `json:"completed"`
	Shed      int   `json:"shed"`
	Events    int64 `json:"events"`
	// VirtualSeconds is the simulated span; WallSeconds what it cost.
	VirtualSeconds float64 `json:"virtual_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	// SpeedupVsWall is virtual over wall — the engine's headline (a
	// wall-paced goroutine fleet holds this at its TimeScale).
	SpeedupVsWall float64 `json:"speedup_vs_wall"`
	EventsPerSec  float64 `json:"events_per_sec"`
	// RequestsPerSec is simulated requests resolved per wall second.
	RequestsPerSec float64 `json:"requests_per_sec"`
	// AllocsPerEvent is heap allocations per processed event over the whole
	// run (process-wide malloc delta, so build cost amortizes in). The
	// steady-state contract (~0, asserted in internal/des tests) holds on
	// the serial legs; parallel legs pay lane setup up front.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	P99US          float64 `json:"p99_us"`
}

// FleetBench is the JSON document cmd/experiments -bench fleet writes: the
// DES engine driven from laptop scale to the cluster-scale 100k-replica /
// 10M-request recipe, under a bursty MMPP trace with jsq replica routing
// below round-robin cluster routing (the shardable two-level combination),
// sweeping Config.Workers at the 10k-replica size.
type FleetBench struct {
	Seed int64 `json:"seed"`
	// CPUs is GOMAXPROCS during the run — the ceiling on useful Workers.
	CPUs          int    `json:"cpus"`
	Trace         string `json:"trace"`
	Policy        string `json:"policy"`
	ClusterPolicy string `json:"cluster_policy"`
	// FillNS/IntervalNS describe the per-replica service model (100 req/s
	// serving-scale replicas).
	FillNS     float64         `json:"fill_ns"`
	IntervalNS float64         `json:"interval_ns"`
	Load       float64         `json:"load"`
	Legs       []FleetBenchLeg `json:"legs"`
}

// BenchFleet measures DES fleet simulation cost at 100, 1k, 10k, and 100k
// replicas at 70% load. The 10k-replica / 1M-request size is re-run at
// workers 1, 2, 4, and NumCPU to expose the sharded-lane scaling curve; the
// 100k-replica / 10M-request leg runs at NumCPU.
func BenchFleet(seed int64) (*FleetBench, error) {
	ncpu := runtime.GOMAXPROCS(0)
	b := &FleetBench{
		Seed:          seed,
		CPUs:          ncpu,
		Trace:         "bursty",
		Policy:        string(fleet.JoinShortestQueue),
		ClusterPolicy: string(fleet.RoundRobin),
		FillNS:        5e7,
		IntervalNS:    1e7,
		Load:          0.7,
	}
	type legSpec struct {
		replicas, clusters, requests, workers, shards int
	}
	legs := []legSpec{
		{100, 4, 100_000, 1, 1},
		{1_000, 32, 300_000, 1, 1},
	}
	// Sharded serving legs: the same 1k-replica fleet cut into 1, 2, and 4
	// pipeline stages (flat routing, as sharding requires). Each extra stage
	// adds one hop event per request and divides chain capacity by the stage
	// count, so these legs expose the marginal cost of chained dispatch.
	for _, k := range []int{1, 2, 4} {
		legs = append(legs, legSpec{1_000, 1, 300_000, 1, k})
	}
	seen := map[int]bool{}
	for _, w := range []int{1, 2, 4, ncpu} {
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		legs = append(legs, legSpec{10_000, 100, 1_000_000, w, 1})
	}
	legs = append(legs, legSpec{100_000, 1_000, 10_000_000, ncpu, 1})
	for _, l := range legs {
		cfg := des.DefaultConfig()
		cfg.Policy = fleet.JoinShortestQueue
		cfg.ClusterPolicy = fleet.RoundRobin
		cfg.Clusters = l.clusters
		cfg.QueueDepth = 64
		cfg.Seed = seed
		cfg.Workers = l.workers
		capacity := float64(l.replicas) * (1e9 / b.IntervalNS)
		if l.shards > 1 {
			cfg.Shards = l.shards
			// A nominal 0.1 ms NoC hop per stage boundary; the chain's
			// capacity is the slowest stage's, replicas/shards of the total.
			cfg.StageTransferNS = make([]float64, l.shards-1)
			for i := range cfg.StageTransferNS {
				cfg.StageTransferNS[i] = 1e5
			}
			capacity /= float64(l.shards)
		}
		f, err := des.NewFleet(cfg, desSpecs(l.replicas)...)
		if err != nil {
			return nil, err
		}
		rate := b.Load * capacity
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		res, err := f.RunTrace(trace.Bursty(rate, 1.8, 50e6, seed), l.requests, 0)
		if err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&m1)
		leg := FleetBenchLeg{
			Replicas:       l.replicas,
			Clusters:       l.clusters,
			Requests:       l.requests,
			Workers:        l.workers,
			Lanes:          res.Lanes,
			Shards:         l.shards,
			Completed:      res.Completed,
			Shed:           res.Shed,
			Events:         res.Events,
			VirtualSeconds: res.VirtualNS / 1e9,
			WallSeconds:    res.WallSeconds,
			SpeedupVsWall:  res.SpeedupVsWall,
			EventsPerSec:   res.EventsPerSec,
			P99US:          res.P99NS / 1000,
		}
		if res.Events > 0 {
			leg.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(res.Events)
		}
		if res.WallSeconds > 0 {
			leg.RequestsPerSec = float64(l.requests) / res.WallSeconds
		}
		b.Legs = append(b.Legs, leg)
	}
	return b, nil
}

// WriteJSON writes the benchmark document to path (indented, trailing
// newline), matching the other BENCH_*.json artifacts.
func (b *FleetBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
