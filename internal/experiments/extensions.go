package experiments

import (
	"fmt"
	"math"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/hw"
	"autohet/internal/noc"
	"autohet/internal/report"
	"autohet/internal/search"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// Extension experiments — beyond the paper's evaluation, exercising the
// extra capabilities this repo implements (DESIGN.md §5 and the paper's
// §4.5 outlook): per-component energy breakdowns, device-variability
// sensitivity, inter-layer pipelining, and the LLM-domain workload.

// Extensions lists the extension experiment names.
var Extensions = []string{"breakdown", "faults", "repair", "pipeline", "llm", "stability", "programming", "precision", "pruning", "noc", "adc", "fleet", "des", "chaos", "shard"}

// RunExtension generates the named extension experiment.
func (s *Suite) RunExtension(name string) ([]*report.Table, error) {
	switch name {
	case "breakdown":
		t, err := s.Breakdown()
		return wrap(t, err)
	case "faults":
		t, err := s.FaultSensitivity()
		return wrap(t, err)
	case "repair":
		return s.Repair()
	case "pipeline":
		t, err := s.Pipeline()
		return wrap(t, err)
	case "llm":
		t, err := s.LLM()
		return wrap(t, err)
	case "stability":
		t, err := s.Stability()
		return wrap(t, err)
	case "programming":
		t, err := s.Programming()
		return wrap(t, err)
	case "precision":
		t, err := s.PrecisionSweep()
		return wrap(t, err)
	case "pruning":
		t, err := s.Pruning()
		return wrap(t, err)
	case "noc":
		t, err := s.NoC()
		return wrap(t, err)
	case "adc":
		t, err := s.ADCSweep()
		return wrap(t, err)
	case "fleet":
		return s.Fleet()
	case "des":
		return s.Des()
	case "chaos":
		t, err := s.Chaos()
		return wrap(t, err)
	case "shard":
		t, err := s.Shard()
		return wrap(t, err)
	default:
		return nil, fmt.Errorf("experiments: unknown extension %q (have %v)", name, Extensions)
	}
}

// Breakdown reports the per-component energy split of each VGG16
// accelerator — the mechanism behind the paper's energy trends (ADCs
// dominate; small crossbars multiply activated bitlines).
func (s *Suite) Breakdown() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title:  "Extension — energy breakdown by component (VGG16)",
		Note:   "ADC conversions dominate; the 32x32 design activates ~10x the bitlines of 512x512.",
		Header: []string{"Accelerator", "ADC", "DAC", "Cell", "Shift+Add", "Buffer", "Bus", "Pool", "Total (nJ)"},
	}
	add := func(name string, r *sim.Result) {
		b := r.Energy
		tot := b.Total()
		pct := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v/tot) }
		t.AddRow(name, pct(b.ADC), pct(b.DAC), pct(b.Cell), pct(b.ShiftAdd),
			pct(b.Buffer), pct(b.Bus), pct(b.Pool), report.E(r.EnergyNJ))
	}
	for _, shape := range xbar.SquareCandidates() {
		r, err := s.evaluate(m, accel.Homogeneous(16, shape), false)
		if err != nil {
			return nil, err
		}
		add(shape.String(), r)
	}
	_, r, err := s.variantResult(m, All)
	if err != nil {
		return nil, err
	}
	add("AutoHet", r)
	return t, nil
}

// FaultSensitivity runs functional inference on a small CNN under rising
// stuck-at fault rates and reports the output perturbation — how gracefully
// the mapped computation degrades with device defects.
func (s *Suite) FaultSensitivity() (*report.Table, error) {
	m, err := dnn.NewModel("probe-cnn", 8, 8, 1, []*dnn.Layer{
		{Name: "c1", Kind: dnn.Conv, K: 3, InC: 1, OutC: 8, Stride: 1, Pad: 1},
		{Name: "p1", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "c2", Kind: dnn.Conv, K: 3, InC: 8, OutC: 16, Stride: 1, Pad: 1},
		{Name: "p2", Kind: dnn.Pool, K: 4, Stride: 4},
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 16, OutC: 10, Stride: 1},
	})
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: "Extension — functional accuracy vs ReRAM device faults (64x64 crossbars)",
		Note: "Relative output error of the crossbar pipeline vs the float reference; " +
			"grows with the stuck-at defect rate, and analog read noise adds on top.",
		Header: []string{"Stuck-at rate", "stuck-at only", "+ read noise (σ=0.5)"},
	}
	input := dnn.SyntheticTensor(1, 8, 8, s.Seed)
	ref, err := dnn.RunReference(m, input, s.Seed)
	if err != nil {
		return nil, err
	}
	p, err := accel.BuildPlan(s.Cfg, m, accel.Homogeneous(3, xbar.Square(64)), true)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(p) // weights quantized once across every fault model
	relErr := func(fm *fault.Model) (float64, error) {
		got, _, err := eng.Run(input, sim.InferenceOptions{Seed: s.Seed, Faults: fm})
		if err != nil {
			return 0, err
		}
		var e, n float64
		for i := range ref {
			d := got[i] - ref[i]
			e += d * d
			n += ref[i] * ref[i]
		}
		return math.Sqrt(e / n), nil
	}
	for _, rate := range []float64{0, 0.001, 0.01, 0.05} {
		var stuck *fault.Model
		if rate > 0 {
			stuck = &fault.Model{StuckAtZero: rate / 2, StuckAtOne: rate / 2, Seed: s.Seed}
		}
		quiet, err := relErr(stuck)
		if err != nil {
			return nil, err
		}
		noisy, err := relErr(&fault.Model{
			StuckAtZero: rate / 2, StuckAtOne: rate / 2, ReadNoiseSigma: 0.5, Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f%%", 100*rate), fmt.Sprintf("%.3f", quiet), fmt.Sprintf("%.3f", noisy))
	}
	return t, nil
}

// Pipeline reports batched, pipelined throughput of each VGG16 accelerator
// (PipeLayer-style inter-layer pipelining, the paper's reference [21]).
func (s *Suite) Pipeline() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title:  "Extension — pipelined batch execution (VGG16, batch 64)",
		Note:   "Throughput is bottleneck-bound; pipelining speedup ≈ fill/interval.",
		Header: []string{"Accelerator", "Interval (ns)", "Bottleneck", "Throughput (inf/s)", "Speedup vs sequential"},
	}
	row := func(name string, r *sim.Result) {
		pr := sim.PipelineFromResult(r, 64)
		t.AddRow(name, report.E(pr.IntervalNS), pr.Bottleneck.Layer.Name,
			report.F(pr.Throughput), fmt.Sprintf("%.2fx", pr.Speedup))
	}
	for _, shape := range xbar.SquareCandidates() {
		r, err := s.evaluate(m, accel.Homogeneous(16, shape), false)
		if err != nil {
			return nil, err
		}
		row(shape.String(), r)
	}
	_, r, err := s.variantResult(m, All)
	if err != nil {
		return nil, err
	}
	row("AutoHet", r)
	return t, nil
}

// Stability quantifies the RL search's seed sensitivity: best RUE across
// independent seeds on VGG16, relative to the best homogeneous accelerator.
// The warm-started search can never fall below 1.00x; the spread above it
// shows how reliably exploration finds the heterogeneous optimum.
func (s *Suite) Stability() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title:  "Extension — RL search stability across seeds (VGG16)",
		Note:   "Gain over the best homogeneous candidate; never below 1.00x by construction.",
		Header: []string{"Seed", "Best RUE", "Gain vs Best-Homo"},
	}
	minGain, maxGain, sumGain := math.Inf(1), 0.0, 0.0
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		sub := NewSuite(s.Rounds, seed)
		res, err := sub.runSearch(m, xbar.DefaultCandidates(), true, "stability")
		if err != nil {
			return nil, err
		}
		gain := res.BestResult.RUE() / res.RefRUE
		sumGain += gain
		if gain < minGain {
			minGain = gain
		}
		if gain > maxGain {
			maxGain = gain
		}
		t.AddRow(fmt.Sprintf("%d", seed), report.E(res.BestResult.RUE()), fmt.Sprintf("%.3fx", gain))
	}
	t.AddRow("min/mean/max", "",
		fmt.Sprintf("%.3fx / %.3fx / %.3fx", minGain, sumGain/float64(len(seeds)), maxGain))
	return t, nil
}

// Programming reports the one-time weight-write cost of each accelerator
// and the inference count at which it amortizes below 1% of total energy.
func (s *Suite) Programming() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title:  "Extension — weight-programming cost (VGG16)",
		Note:   "One-time ReRAM write cost; break-even is inferences until programming is <1% of lifetime energy.",
		Header: []string{"Accelerator", "Programmed cells", "Write energy (nJ)", "Write time (ns)", "Break-even (inferences)"},
	}
	add := func(name string, p *accel.Plan, perInf float64) error {
		pc, err := sim.SimulateProgramming(p)
		if err != nil {
			return err
		}
		t.AddRow(name, fmt.Sprintf("%d", pc.Cells), report.E(pc.EnergyNJ), report.E(pc.LatencyNS),
			fmt.Sprintf("%d", pc.BreakEvenInferences(perInf, 0.01)))
		return nil
	}
	for _, shape := range []xbar.Shape{xbar.Square(64), xbar.Square(512)} {
		r, err := s.evaluate(m, accel.Homogeneous(16, shape), false)
		if err != nil {
			return nil, err
		}
		if err := add(shape.String(), r.Plan, r.EnergyNJ); err != nil {
			return nil, err
		}
	}
	_, r, err := s.variantResult(m, All)
	if err != nil {
		return nil, err
	}
	if err := add("AutoHet", r.Plan, r.EnergyNJ); err != nil {
		return nil, err
	}
	return t, nil
}

// PrecisionSweep contrasts uniform weight precisions with the joint
// shape×bits annealing search (HAQ-style mixed precision, related to the
// paper's §5 AutoML-quantization citations). The probe column measures the
// *functional* output error of a small CNN at that uniform precision.
func (s *Suite) PrecisionSweep() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title: "Extension — weight precision: uniform vs searched mixed (VGG16)",
		Note: "Fewer bit planes cut conversions ~linearly; the mixed search keeps a " +
			"weighted-mean-6-bit budget while maximizing RUE.",
		Header: []string{"Precision", "Mean bits", "Energy (nJ)", "RUE", "Probe rel. error"},
	}
	env, err := s.env(m, xbar.DefaultCandidates(), true)
	if err != nil {
		return nil, err
	}
	// Uniform rows use the best homogeneous shape over the candidates.
	_, bestShape, err := bestShapeOverCandidates(env)
	if err != nil {
		return nil, err
	}
	for _, bits := range []int{8, 6, 4} {
		prec := make(accel.Precision, m.NumMappable())
		indices := make([]int, m.NumMappable())
		for i := range prec {
			prec[i] = bits
			indices[i] = bestShape
		}
		r, err := env.EvalSpec(indices, prec)
		if err != nil {
			return nil, err
		}
		probe, err := probeError(s.Cfg, bits, s.Seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("uniform %d-bit", bits), fmt.Sprintf("%d.0", bits),
			report.E(r.EnergyNJ), report.E(r.RUE()), fmt.Sprintf("%.3f", probe))
	}
	opts := search.DefaultMPOptions()
	opts.Rounds = s.Rounds
	opts.Seed = s.Seed
	res, err := search.MixedPrecision(env, opts)
	if err != nil {
		return nil, err
	}
	t.AddRow("searched mixed", fmt.Sprintf("%.1f", res.MeanBits),
		report.E(res.Result.EnergyNJ), report.E(res.Result.RUE()), "-")
	return t, nil
}

// Pruning contrasts uniform structured channel pruning with the joint
// shape×keep annealing search (AUTO-PRUNE-style, paper ref [27]) on
// AlexNet (a chain-structured model).
func (s *Suite) Pruning() (*report.Table, error) {
	m := dnn.AlexNet()
	t := &report.Table{
		Title: "Extension — structured channel pruning (AlexNet)",
		Note: "Pruned channels remove whole crossbar columns; the searched row keeps " +
			"≥70% of the weights while maximizing RUE.",
		Header: []string{"Pruning", "Kept weights", "Energy (nJ)", "RUE", "Tiles"},
	}
	cands := xbar.DefaultCandidates()
	for _, keepRatio := range []float64{1.0, 0.75, 0.5} {
		keep := make([]float64, m.NumMappable())
		for i := range keep {
			keep[i] = keepRatio
		}
		keep[len(keep)-1] = 1
		pruned, err := dnn.PruneChannels(m, keep)
		if err != nil {
			return nil, err
		}
		env, err := s.env(pruned, cands, true)
		if err != nil {
			return nil, err
		}
		evals, best, err := search.BestHomogeneous(env, cands)
		if err != nil {
			return nil, err
		}
		r := evals[best].Result
		kept := float64(pruned.TotalWeights()) / float64(m.TotalWeights())
		t.AddRow(fmt.Sprintf("uniform keep %.0f%%", 100*keepRatio),
			fmt.Sprintf("%.0f%%", 100*kept), report.E(r.EnergyNJ), report.E(r.RUE()),
			report.I(r.OccupiedTiles))
	}
	opts := search.DefaultPruneOptions()
	opts.Rounds = s.Rounds
	opts.Seed = s.Seed
	res, err := search.PruneSearch(s.Cfg, m, cands, true, opts)
	if err != nil {
		return nil, err
	}
	t.AddRow("searched (≥70% kept)", fmt.Sprintf("%.0f%%", 100*res.KeptWeights),
		report.E(res.Result.EnergyNJ), report.E(res.Result.RUE()),
		report.I(res.Result.OccupiedTiles))
	return t, nil
}

// NoC re-prices inter-tile traffic on a 2-D mesh with XY routing instead of
// the flat bus constant, showing that the tile-shared scheme also reduces
// placement-dependent interconnect cost.
func (s *Suite) NoC() (*report.Table, error) {
	m := dnn.VGG16()
	// Size the mesh from the configured bank capacity rather than hardcoding
	// the default bank's 256 width, so non-default TilesPerBank configs get a
	// mesh that actually covers every placed tile.
	mesh, err := noc.NewMeshFor(s.Cfg.TilesPerBank)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: "Extension — mesh NoC vs flat bus interconnect accounting (VGG16)",
		Note: "Per MVM each replicated copy scatters its input patch from the root tile and " +
			"gathers partial outputs back, both priced on the copy's own tile subset; small " +
			"crossbars spread layers over many tiles and pay the most. Tile sharing never increases it.",
		Header: []string{"Accelerator", "Tiles", "Bus flat (nJ)", "Bus mesh (nJ)", "Mesh/flat", "Latency mesh (ns)"},
	}
	for _, shape := range []xbar.Shape{xbar.Square(64), xbar.Square(256), xbar.Rect(576, 512)} {
		st := accel.Homogeneous(16, shape)
		p, err := accel.BuildPlan(s.Cfg, m, st, true)
		if err != nil {
			return nil, err
		}
		flat, err := sim.Simulate(p)
		if err != nil {
			return nil, err
		}
		meshed, err := sim.SimulateNoC(p, mesh)
		if err != nil {
			return nil, err
		}
		ratio := "-"
		if flat.Energy.Bus > 0 {
			ratio = fmt.Sprintf("%.1fx", meshed.Energy.Bus/flat.Energy.Bus)
		}
		t.AddRow(shape.String(), report.I(meshed.OccupiedTiles),
			report.E(flat.Energy.Bus/1000), report.E(meshed.Energy.Bus/1000),
			ratio, report.E(meshed.LatencyNS))
	}
	return t, nil
}

// ADCSweep varies the ADC resolution (the dominant energy term scales
// 2^bits) and reports Best-Homo vs AutoHet RUE at each — a hardware knob
// the paper fixes at 10 bits (§4.1).
func (s *Suite) ADCSweep() (*report.Table, error) {
	m := dnn.VGG16()
	t := &report.Table{
		Title: "Extension — RUE vs ADC resolution (VGG16)",
		Note: "ADC energy scales 2^bits, so RUE rises as resolution drops; AutoHet's " +
			"advantage holds at every resolution.",
		Header: []string{"ADC bits", "Best-Homo RUE", "AutoHet RUE", "Gain"},
	}
	for _, bits := range []int{8, 10, 12} {
		sub := NewSuite(s.Rounds, s.Seed)
		sub.Cfg.ADCBits = bits
		auto, homo, err := sub.autoHetVsBestHomo(m, xbar.DefaultCandidates(), fmt.Sprintf("adc-%d", bits))
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(bits), report.E(homo), report.E(auto), fmt.Sprintf("%.2fx", auto/homo))
	}
	return t, nil
}

// bestShapeOverCandidates returns the RUE-best homogeneous candidate index.
func bestShapeOverCandidates(env *search.Env) (*sim.Result, int, error) {
	evals, best, err := search.BestHomogeneous(env, env.Candidates)
	if err != nil {
		return nil, 0, err
	}
	return evals[best].Result, best, nil
}

// probeError measures the functional output error of a small CNN at a
// uniform weight precision against the float reference.
func probeError(cfg hw.Config, bits int, seed int64) (float64, error) {
	m, err := dnn.NewModel("probe-cnn", 8, 8, 1, []*dnn.Layer{
		{Name: "c1", Kind: dnn.Conv, K: 3, InC: 1, OutC: 8, Stride: 1, Pad: 1},
		{Name: "p1", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "c2", Kind: dnn.Conv, K: 3, InC: 8, OutC: 16, Stride: 1, Pad: 1},
		{Name: "p2", Kind: dnn.Pool, K: 4, Stride: 4},
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 16, OutC: 10, Stride: 1},
	})
	if err != nil {
		return 0, err
	}
	prec := make(accel.Precision, m.NumMappable())
	for i := range prec {
		prec[i] = bits
	}
	p, err := accel.Build(cfg, m, accel.PlanSpec{
		Strategy:  accel.Homogeneous(m.NumMappable(), xbar.Square(64)),
		Precision: prec,
		Shared:    true,
	})
	if err != nil {
		return 0, err
	}
	input := dnn.SyntheticTensor(1, 8, 8, seed)
	ref, err := dnn.RunReference(m, input, seed)
	if err != nil {
		return 0, err
	}
	got, _, err := sim.RunInference(p, input, sim.InferenceOptions{Seed: seed})
	if err != nil {
		return 0, err
	}
	var e, n float64
	for i := range ref {
		d := got[i] - ref[i]
		e += d * d
		n += ref[i] * ref[i]
	}
	return math.Sqrt(e / n), nil
}

// LLM maps the §4.5 outlook onto a concrete workload: the AutoHet search on
// a BERT-Base-shaped encoder versus its homogeneous baselines.
func (s *Suite) LLM() (*report.Table, error) {
	m := dnn.BERTBase()
	cands := []xbar.Shape{
		xbar.Square(128), xbar.Square(256), xbar.Square(512),
		xbar.Rect(288, 256), xbar.Rect(576, 512),
	}
	t := &report.Table{
		Title:  "Extension — §4.5 LLM domain: BERT-Base encoder (85M mapped weights)",
		Note:   "AutoHet ≥ the best homogeneous candidate; k=1 projections favor power-of-two heights.",
		Header: []string{"Accelerator", "Utilization", "Energy (nJ)", "RUE"},
	}
	for _, shape := range cands {
		r, err := s.evaluate(m, accel.Homogeneous(m.NumMappable(), shape), false)
		if err != nil {
			return nil, err
		}
		t.AddRow(shape.String(), report.Pct(r.Utilization), report.E(r.EnergyNJ), report.E(r.RUE()))
	}
	res, err := s.runSearch(m, cands, true, "llm")
	if err != nil {
		return nil, err
	}
	r := res.BestResult
	t.AddRow("AutoHet", report.Pct(r.Utilization), report.E(r.EnergyNJ), report.E(r.RUE()))
	return t, nil
}
