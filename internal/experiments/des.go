package experiments

import (
	"fmt"

	"autohet/internal/des"
	"autohet/internal/des/trace"
	"autohet/internal/fleet"
	"autohet/internal/report"
	"autohet/internal/sim"
)

// DES experiments — the fleet-serving story at cluster scale on the
// discrete-event virtual-time engine. Where the goroutine fleet experiments
// pace a handful of replicas at a fifth of real time, these sweep arrival
// processes and autoscaling policies over hundreds of replicas in
// milliseconds of wall time.

// desSpecs builds n serving-scale replicas (100 req/s capacity, 50 ms fill
// — an LLM-serving-like regime where the simulated span dwarfs the wall
// cost of simulating it).
func desSpecs(n int) []fleet.ReplicaSpec {
	pr := &sim.PipelineResult{FillNS: 5e7, IntervalNS: 1e7}
	specs := make([]fleet.ReplicaSpec, n)
	for i := range specs {
		specs[i] = fleet.ReplicaSpec{Pipeline: pr}
	}
	return specs
}

// Des generates the DES extension tables: arrival-process shape vs tail
// latency at fixed load, and the autoscaler tracking a diurnal cycle.
func (s *Suite) Des() ([]*report.Table, error) {
	traces, err := s.desTraces()
	if err != nil {
		return nil, err
	}
	scale, err := s.desAutoscale()
	if err != nil {
		return nil, err
	}
	return []*report.Table{traces, scale}, nil
}

// desTraces offers the same mean rate under each arrival process to an
// identical 256-replica fleet: burstiness, not average load, is what moves
// the tail and trips shedding.
func (s *Suite) desTraces() (*report.Table, error) {
	const replicas, requests = 256, 100000
	rate := 0.8 * float64(replicas) * 100 // 80% of aggregate capacity
	t := &report.Table{
		Title: fmt.Sprintf("Extension — virtual-time fleet: arrival process vs tail latency (%d replicas, 80%% load, jsq)", replicas),
		Note: fmt.Sprintf("Same mean rate (%.0f req/s) under every process; overdispersed arrivals "+
			"(bursty MMPP, heavy-tail Pareto) inflate the tail and force sheds that Poisson never sees. "+
			"Each run simulates ~%d requests of virtual time in milliseconds of wall time.", rate, requests),
		Header: []string{"Trace", "Completed", "Shed", "p50 (ms)", "p99 (ms)", "Virtual (s)", "Wall (s)", "Speedup"},
	}
	for _, name := range trace.Names {
		gen, err := trace.Parse(name, rate, s.Seed)
		if err != nil {
			return nil, err
		}
		cfg := des.DefaultConfig()
		cfg.Policy = fleet.JoinShortestQueue
		cfg.ClusterPolicy = fleet.JoinShortestQueue
		cfg.Clusters = 8
		cfg.QueueDepth = 16
		cfg.Seed = s.Seed
		f, err := des.NewFleet(cfg, desSpecs(replicas)...)
		if err != nil {
			return nil, err
		}
		res, err := f.RunTrace(gen, requests, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, report.I(res.Completed), report.I(res.Shed),
			fmt.Sprintf("%.1f", res.P50NS/1e6), fmt.Sprintf("%.1f", res.P99NS/1e6),
			fmt.Sprintf("%.2f", res.VirtualNS/1e9), fmt.Sprintf("%.3f", res.WallSeconds),
			fmt.Sprintf("%.0fx", res.SpeedupVsWall))
	}
	return t, nil
}

// desAutoscale runs a diurnal day-night cycle against a target-utilization
// autoscaler with and without admission control: the scaler sheds capacity
// in the trough and recovers it for the peak, and the admission valve
// converts unbounded queueing into bounded sheds.
func (s *Suite) desAutoscale() (*report.Table, error) {
	const replicas, requests = 256, 100000
	rate := 0.6 * float64(replicas) * 100
	t := &report.Table{
		Title: "Extension — autoscaling a diurnal cycle (256 provisioned replicas, 60% mean load)",
		Note: "TargetUtilization(0.7) resizes the active set every 2 virtual seconds of a " +
			"20-second day-night cycle; QueueCap admission keeps the backlog bounded through the peaks.",
		Header: []string{"Policy", "Completed", "Shed", "p99 (ms)", "Scale actions", "Final active"},
	}
	cases := []struct {
		name   string
		scaler des.Scaler
		admit  des.Admitter
	}{
		{"static (no scaler)", nil, nil},
		{"target-util 0.7", des.TargetUtilization{Target: 0.7, Min: 8}, nil},
		{"target-util 0.7 + queue cap", des.TargetUtilization{Target: 0.7, Min: 8}, des.QueueCap{MaxQueuedPerActive: 8}},
	}
	for _, c := range cases {
		cfg := des.DefaultConfig()
		cfg.Policy = fleet.JoinShortestQueue
		cfg.ClusterPolicy = fleet.JoinShortestQueue
		cfg.Clusters = 8
		cfg.QueueDepth = 64
		cfg.Seed = s.Seed
		cfg.Scaler = c.scaler
		cfg.Admit = c.admit
		cfg.ControlPeriodNS = 2e9
		f, err := des.NewFleet(cfg, desSpecs(replicas)...)
		if err != nil {
			return nil, err
		}
		res, err := f.RunTrace(trace.Diurnal(rate, 0.7, 20e9, s.Seed), requests, 0)
		if err != nil {
			return nil, err
		}
		active := 0
		for _, cl := range res.Clusters {
			active += cl.Active
		}
		t.AddRow(c.name, report.I(res.Completed), report.I(res.Shed),
			fmt.Sprintf("%.1f", res.P99NS/1e6), report.I(int(res.ScaleActions)), report.I(active))
	}
	return t, nil
}
