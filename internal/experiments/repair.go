package experiments

import (
	"fmt"
	"math"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/fleet"
	"autohet/internal/repair"
	"autohet/internal/report"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// Repair experiments — the fault-tolerance half of the fault story. The
// "faults" extension measures damage; these tables measure the cure:
// functional accuracy with detection + spare remapping + masking, and the
// fleet's online health loop absorbing a mid-run fault storm.

// Repair generates the repair extension tables.
func (s *Suite) Repair() ([]*report.Table, error) {
	acc, err := s.repairAccuracy()
	if err != nil {
		return nil, err
	}
	storm, err := s.repairStorm()
	if err != nil {
		return nil, err
	}
	return []*report.Table{acc, storm}, nil
}

// repairAccuracy runs functional inference on a small CNN under rising
// stuck-at rates, with no repair, with mask-only degradation (no spares),
// and with provisioned spares — the accuracy-vs-fault-rate story with and
// without the repair subsystem.
func (s *Suite) repairAccuracy() (*report.Table, error) {
	m, err := dnn.NewModel("probe-cnn", 8, 8, 1, []*dnn.Layer{
		{Name: "c1", Kind: dnn.Conv, K: 3, InC: 1, OutC: 8, Stride: 1, Pad: 1},
		{Name: "p1", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "c2", Kind: dnn.Conv, K: 3, InC: 8, OutC: 16, Stride: 1, Pad: 1},
		{Name: "p2", Kind: dnn.Pool, K: 4, Stride: 4},
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 16, OutC: 10, Stride: 1},
	})
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: "Extension — functional accuracy vs fault rate, with and without repair (64x64 crossbars)",
		Note: "Relative output error vs the float reference. Masking reprograms known-bad cells toward " +
			"the ideal weight (bounded error, no spares needed); spare columns + spare PEs repair " +
			"outright — bit-exact with the fault-free accelerator while coverage lasts.",
		Header: []string{"Stuck-at rate", "unrepaired", "mask-only", "spares (8 cols + 1 PE)"},
	}
	input := dnn.SyntheticTensor(1, 8, 8, s.Seed)
	ref, err := dnn.RunReference(m, input, s.Seed)
	if err != nil {
		return nil, err
	}
	bare, err := accel.BuildPlan(s.Cfg, m, accel.Homogeneous(3, xbar.Square(64)), true)
	if err != nil {
		return nil, err
	}
	spared, err := accel.Build(s.Cfg, m, accel.PlanSpec{
		Strategy: accel.Homogeneous(3, xbar.Square(64)),
		Shared:   true,
		Spares:   repair.Provision{SpareCols: 8, SpareXBs: 1},
	})
	if err != nil {
		return nil, err
	}
	// One engine per plan: weights are quantized and planes packed once,
	// then every (fault rate, repair mode) combination reuses them.
	engines := map[*accel.Plan]*sim.Engine{bare: sim.NewEngine(bare), spared: sim.NewEngine(spared)}
	relErr := func(p *accel.Plan, opts sim.InferenceOptions) (float64, error) {
		got, _, err := engines[p].Run(input, opts)
		if err != nil {
			return 0, err
		}
		var e, n float64
		for i := range ref {
			d := got[i] - ref[i]
			e += d * d
			n += ref[i] * ref[i]
		}
		return math.Sqrt(e / n), nil
	}
	for _, rate := range []float64{0.001, 0.005, 0.02, 0.05} {
		fm := &fault.Model{StuckAtZero: rate / 2, StuckAtOne: rate / 2, Seed: s.Seed}
		raw, err := relErr(bare, sim.InferenceOptions{Seed: s.Seed, Faults: fm})
		if err != nil {
			return nil, err
		}
		masked, err := relErr(bare, sim.InferenceOptions{Seed: s.Seed, Faults: fm, Repair: &repair.Policy{}})
		if err != nil {
			return nil, err
		}
		rep, err := relErr(spared, sim.InferenceOptions{Seed: s.Seed, Faults: fm, Repair: &repair.Policy{}})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f%%", 100*rate), fmt.Sprintf("%.4f", raw),
			fmt.Sprintf("%.4f", masked), fmt.Sprintf("%.4f", rep))
	}
	return t, nil
}

// repairStorm serves a paced workload across three replicas, injects a
// fault storm into one mid-life, and lets detection sweeps repair it —
// the fleet self-healing while serving, with post-repair throughput
// recovering to the pre-fault steady state.
func (s *Suite) repairStorm() (*report.Table, error) {
	cfg := fleet.DefaultConfig()
	cfg.Policy = fleet.JoinShortestQueue
	cfg.TimeScale = 1
	cfg.HealthSweepNS = -1 // sweeps stepped explicitly between phases
	cfg.Seed = s.Seed
	pr := func() *sim.PipelineResult {
		return &sim.PipelineResult{FillNS: 1e6, IntervalNS: 200_000}
	}
	rs := &fleet.RepairSpec{Capacity: 0.05, MissRate: 0.5}
	f, err := fleet.New(cfg,
		fleet.ReplicaSpec{Name: "a", Pipeline: pr(), Repair: rs},
		fleet.ReplicaSpec{Name: "b", Pipeline: pr(), Repair: rs},
		fleet.ReplicaSpec{Name: "c", Pipeline: pr(), Repair: rs})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	t := &report.Table{
		Title: "Extension — fleet fault storm with online self-repair (3 replicas, 90% load)",
		Note: "Replica b takes a 2% stuck-at storm (2x the degrade threshold) mid-life. Each " +
			"detection sweep catches half the pending faults and repairs them from spare capacity, " +
			"so health recovers geometrically and throughput returns to the pre-fault steady state.",
		Header: []string{"Phase", "health(b)", "Completed", "Shed", "p99 (ms)", "Throughput (req/s)"},
	}
	w := fleet.Workload{ArrivalRate: 13.5e3, Requests: 1200, Seed: s.Seed}
	phase := func(name string) error {
		res, err := fleet.Run(f, w)
		if err != nil {
			return err
		}
		h := f.Snapshot().Replicas[1].Health
		t.AddRow(name, fmt.Sprintf("%.3f", h), report.I(res.Completed), report.I(res.Shed),
			fmt.Sprintf("%.1f", res.P99NS/1e6), report.F(res.ThroughputRPS))
		return nil
	}
	if err := phase("pre-storm"); err != nil {
		return nil, err
	}
	if err := f.InjectFault("b", &fault.Model{StuckAtZero: 0.02, Seed: s.Seed}); err != nil {
		return nil, err
	}
	if err := phase("storm (b degraded)"); err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		f.Sweep()
	}
	if err := phase("post-repair (8 sweeps)"); err != nil {
		return nil, err
	}
	return t, nil
}
