package sim

import (
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/xbar"
)

func TestReplicationReducesLatencyNotEnergy(t *testing.T) {
	m := dnn.VGG16()
	st := accel.Homogeneous(16, xbar.Square(128))
	repl := make(accel.Replication, 16)
	for i := range repl {
		repl[i] = 1
	}
	repl[0], repl[1] = 4, 4 // replicate the two big early convs

	plain, err := accel.BuildPlan(cfg(), m, st, true)
	if err != nil {
		t.Fatal(err)
	}
	replicated, err := accel.BuildPlanReplicated(cfg(), m, st, repl, true)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Simulate(plain)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Simulate(replicated)
	if err != nil {
		t.Fatal(err)
	}
	if rr.LatencyNS >= rp.LatencyNS {
		t.Fatalf("replication did not cut latency: %v vs %v", rr.LatencyNS, rp.LatencyNS)
	}
	// Work (and thus energy) is unchanged — it just runs wider.
	if rr.ADCConversions != rp.ADCConversions {
		t.Fatalf("replication changed ADC work: %d vs %d", rr.ADCConversions, rp.ADCConversions)
	}
	if rr.OccupiedTiles <= rp.OccupiedTiles {
		t.Fatal("replication must cost tiles")
	}
	// The replicated layers hold more cells.
	if rr.Plan.UsedCells() <= rp.Plan.UsedCells() {
		t.Fatal("replication must duplicate weight cells")
	}
	if err := replicated.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationValidation(t *testing.T) {
	m := dnn.VGG16()
	st := accel.Homogeneous(16, xbar.Square(128))
	if _, err := accel.BuildPlanReplicated(cfg(), m, st, accel.Replication{1, 2}, false); err == nil {
		t.Fatal("short replication must error")
	}
	bad := make(accel.Replication, 16)
	if _, err := accel.BuildPlanReplicated(cfg(), m, st, bad, false); err == nil {
		t.Fatal("zero replication factor must error")
	}
}

func TestBalancePipelineImprovesThroughput(t *testing.T) {
	m := dnn.VGG16()
	st := accel.Homogeneous(16, xbar.Square(128))
	br, err := BalancePipeline(cfg(), m, st, true, 100)
	if err != nil {
		t.Fatal(err)
	}
	if br.Speedup() <= 1 {
		t.Fatalf("balancing produced no speedup: %v", br.Speedup())
	}
	if br.ExtraTiles > 100 {
		t.Fatalf("budget exceeded: %d extra tiles", br.ExtraTiles)
	}
	// The early conv layers (most MVMs) should be the ones replicated.
	if br.Replication[0] < 2 && br.Replication[1] < 2 {
		t.Fatalf("expected early-layer replication, got %v", br.Replication[:4])
	}
	// Deep layers should remain unreplicated.
	if br.Replication[15] != 1 {
		t.Fatalf("final FC replicated: %v", br.Replication)
	}
	if err := br.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancePipelineZeroBudgetCostsNoTiles(t *testing.T) {
	m := dnn.AlexNet()
	st := accel.Homogeneous(8, xbar.Square(128))
	br, err := BalancePipeline(cfg(), m, st, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Replication may still happen into slots the tile-based round-up had
	// already wasted — but it must not occupy any additional tiles.
	if br.ExtraTiles != 0 {
		t.Fatalf("zero budget used %d extra tiles", br.ExtraTiles)
	}
	if br.Speedup() < 1 {
		t.Fatalf("speedup %v < 1", br.Speedup())
	}
	if _, err := BalancePipeline(cfg(), m, st, false, -1); err == nil {
		t.Fatal("negative budget must error")
	}
}
