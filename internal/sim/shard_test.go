package sim

import (
	"math"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/noc"
	"autohet/internal/xbar"
)

func vggShards(t *testing.T, k int) (*accel.Plan, *noc.Mesh, *ShardResult) {
	t.Helper()
	m := dnn.VGG16()
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(16, xbar.Square(64)), true)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := noc.NewMeshFor(cfg().TilesPerBank)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := ShardPlan(p, mesh, k)
	if err != nil {
		t.Fatal(err)
	}
	return p, mesh, sr
}

func TestShardPlanCoversAndPrices(t *testing.T) {
	_, _, sr := vggShards(t, 4)
	if len(sr.Stages) != 4 {
		t.Fatalf("got %d stages", len(sr.Stages))
	}
	next := 0
	var fillSum float64
	for i, ss := range sr.Stages {
		if ss.Stage.Lo != next || ss.Stage.Hi <= ss.Stage.Lo {
			t.Fatalf("stage %d range [%d,%d) breaks coverage at %d", i, ss.Stage.Lo, ss.Stage.Hi, next)
		}
		next = ss.Stage.Hi
		fillSum += ss.FillNS
		if ss.IntervalNS <= 0 || ss.IntervalNS > ss.FillNS {
			t.Fatalf("stage %d interval %v outside (0, fill %v]", i, ss.IntervalNS, ss.FillNS)
		}
		if ss.AreaUM2 <= hw.GlobalCtrlArea {
			t.Fatalf("stage %d area %v holds no tiles", i, ss.AreaUM2)
		}
		if ss.RootTile < 0 {
			t.Fatalf("stage %d has no root tile", i)
		}
		last := i == len(sr.Stages)-1
		if last && (ss.TransferBytes != 0 || ss.TransferNS != 0 || ss.TransferPJ != 0) {
			t.Fatalf("final stage has an outgoing transfer: %+v", ss)
		}
		if !last && ss.TransferBytes <= 0 {
			t.Fatalf("stage %d transfers no bytes", i)
		}
	}
	if next != len(sr.Result.Layers) {
		t.Fatalf("stages end at layer %d of %d", next, len(sr.Result.Layers))
	}
	// Stage fills sum to the whole-model latency; the pipeline fill adds
	// the transfers on top.
	if math.Abs(fillSum-sr.Result.LatencyNS) > 1e-6*sr.Result.LatencyNS {
		t.Fatalf("stage fills %v != model latency %v", fillSum, sr.Result.LatencyNS)
	}
	if got := sr.FillNS(); math.Abs(got-(fillSum+sr.TransferNS)) > 1e-6*got {
		t.Fatalf("pipeline fill %v != stages+transfers %v", got, fillSum+sr.TransferNS)
	}
	if sr.IntervalNS() <= 0 || sr.IntervalNS() > fillSum {
		t.Fatalf("pipeline interval %v", sr.IntervalNS())
	}
}

// More stages never slow the bottleneck: the K+1-way optimum can always
// replicate the K-way cut with one stage split, so the worst stage is
// non-increasing in K.
func TestShardPlanBottleneckMonotone(t *testing.T) {
	prev := math.Inf(1)
	for k := 1; k <= 8; k++ {
		_, _, sr := vggShards(t, k)
		iv := sr.IntervalNS()
		if iv > prev+1e-9 {
			t.Fatalf("k=%d bottleneck %v worse than k-1's %v", k, iv, prev)
		}
		prev = iv
	}
}

func TestShardPlanSingleStageMatchesWhole(t *testing.T) {
	_, _, sr := vggShards(t, 1)
	if sr.TransferNS != 0 || sr.TransferPJ != 0 {
		t.Fatalf("single stage pays transfers: %v ns %v pJ", sr.TransferNS, sr.TransferPJ)
	}
	if math.Abs(sr.FillNS()-sr.Result.LatencyNS) > 1e-9*sr.Result.LatencyNS {
		t.Fatalf("single-stage fill %v != model latency %v", sr.FillNS(), sr.Result.LatencyNS)
	}
}

func TestShardPlanValidation(t *testing.T) {
	m := dnn.VGG16()
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(16, xbar.Square(64)), true)
	if err != nil {
		t.Fatal(err)
	}
	mesh, _ := noc.NewMeshFor(cfg().TilesPerBank)
	if _, err := ShardPlan(p, mesh, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := ShardPlan(p, mesh, 17); err == nil {
		t.Fatal("more stages than layers must error")
	}
}
