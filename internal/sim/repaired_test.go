package sim

import (
	"math"
	"math/rand"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/quant"
	"autohet/internal/repair"
	"autohet/internal/xbar"
)

func l2Rel(got, ref []float64) float64 {
	var errNorm, refNorm float64
	for j := range ref {
		d := got[j] - ref[j]
		errNorm += d * d
		refNorm += ref[j] * ref[j]
	}
	if refNorm == 0 {
		return math.Sqrt(errNorm)
	}
	return math.Sqrt(errNorm / refNorm)
}

// Property: over random layer geometries, fault rates, and spare budgets,
// (a) whenever the pass reports FullyRepaired the repaired output is
// bit-exact with ideal ExecuteMVM, and (b) whenever spares ran short the
// masked-degraded output error is strictly below the unrepaired
// ExecuteMVMFaulty error.
func TestExecuteMVMRepairedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	shapes := []xbar.Shape{xbar.Square(32), xbar.Square(64), xbar.Rect(36, 32), xbar.Rect(72, 64)}
	sawExact, sawDegraded := 0, 0
	for trial := 0; trial < 25; trial++ {
		shape := shapes[rng.Intn(len(shapes))]
		k := 1 + 2*rng.Intn(2) // 1 or 3
		inC := 2 + rng.Intn(10)
		outC := 8 + rng.Intn(56)
		p := singleLayerPlan(t, k, inC, outC, shape)
		la := p.Layers[0]
		w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, int64(trial)))
		in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, int64(trial)+100))
		ideal, _, err := ExecuteMVM(cfg(), la, w, in)
		if err != nil {
			t.Fatal(err)
		}
		rate := []float64{0.001, 0.005, 0.02, 0.08}[rng.Intn(4)]
		fm := &fault.Model{StuckAtZero: rate / 2, StuckAtOne: rate / 2, Seed: int64(trial) * 13}
		pol := repair.Policy{Provision: repair.Provision{
			SpareCols: rng.Intn(shape.C + 1),
			SpareXBs:  rng.Intn(3),
		}}
		got, _, st, err := ExecuteMVMRepaired(cfg(), la, w, in, fm, pol)
		if err != nil {
			t.Fatal(err)
		}
		if st.FullyRepaired {
			sawExact++
			for j := range ideal {
				if got[j] != ideal[j] {
					t.Fatalf("trial %d (%v spares %+v rate %v): FullyRepaired but out[%d] = %v, ideal %v",
						trial, shape, pol.Provision, rate, j, got[j], ideal[j])
				}
			}
			continue
		}
		sawDegraded++
		unrepaired, _, err := ExecuteMVMFaulty(cfg(), la, w, in, fm)
		if err != nil {
			t.Fatal(err)
		}
		repairedErr, faultyErr := l2Rel(got, ideal), l2Rel(unrepaired, ideal)
		if repairedErr >= faultyErr {
			t.Fatalf("trial %d (%v spares %+v rate %v): masked error %v not below unrepaired %v (stats %v)",
				trial, shape, pol.Provision, rate, repairedErr, faultyErr, st)
		}
	}
	if sawExact == 0 || sawDegraded == 0 {
		t.Fatalf("property test must exercise both regimes: %d exact, %d degraded", sawExact, sawDegraded)
	}
}

// Full spare columns cover any fault map: bit-exact with ideal even at a
// brutal 20% cell fault rate.
func TestExecuteMVMRepairedFullCoverageBitExact(t *testing.T) {
	shape := xbar.Rect(36, 32)
	p := singleLayerPlan(t, 3, 7, 40, shape)
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 1))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 2))
	ideal, _, err := ExecuteMVM(cfg(), la, w, in)
	if err != nil {
		t.Fatal(err)
	}
	fm := &fault.Model{StuckAtZero: 0.1, StuckAtOne: 0.1, Seed: 5}
	pol := repair.Policy{Provision: repair.Provision{SpareCols: shape.C}}
	got, _, st, err := ExecuteMVMRepaired(cfg(), la, w, in, fm, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullyRepaired {
		t.Fatalf("full spare columns must fully repair: %v", st)
	}
	for j := range ideal {
		if got[j] != ideal[j] {
			t.Fatalf("out[%d] = %v, ideal %v", j, got[j], ideal[j])
		}
	}
	// Zero model short-circuits to the ideal planes.
	got, _, st, err = ExecuteMVMRepaired(cfg(), la, w, in, nil, repair.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullyRepaired {
		t.Fatal("nil model must report fully repaired")
	}
	for j := range ideal {
		if got[j] != ideal[j] {
			t.Fatalf("nil model out[%d] = %v, ideal %v", j, got[j], ideal[j])
		}
	}
}

// The fast repaired path is bit-identical to the bit-serial engine when
// read noise is off, and the noisy variants agree in distribution (same
// repaired planes, same correction).
func TestRepairedIntegerMVMMatchesBitSerial(t *testing.T) {
	p := singleLayerPlan(t, 3, 6, 24, xbar.Square(32))
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 3))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 4))
	fm := &fault.Model{StuckAtZero: 0.02, StuckAtOne: 0.02, Seed: 11}
	pol := repair.Policy{Provision: repair.Provision{SpareCols: 2}}
	bitSerial, _, _, err := ExecuteMVMRepaired(cfg(), la, w, in, fm, pol)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := RepairLayer(la, w, fm, pol)
	if err != nil {
		t.Fatal(err)
	}
	fast := repairedIntegerMVM(cfg(), int64(la.Layer.Index+1), rl, w, in, fm)
	for j := range bitSerial {
		if fast[j] != bitSerial[j] {
			t.Fatalf("fast path diverged at %d: %v vs %v", j, fast[j], bitSerial[j])
		}
	}
}

func TestExecuteMVMRepairedRejectsBadInputs(t *testing.T) {
	p := singleLayerPlan(t, 3, 4, 8, xbar.Square(32))
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 1))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 1))
	if _, _, _, err := ExecuteMVMRepaired(cfg(), la, w, in, &fault.Model{StuckAtZero: 2}, repair.Policy{}); err == nil {
		t.Fatal("invalid fault model must error")
	}
	if _, _, _, err := ExecuteMVMRepaired(cfg(), la, w, in, nil, repair.Policy{DetectMissRate: 1}); err == nil {
		t.Fatal("invalid policy must error")
	}
	bad := quant.QuantizeInput(make([]float64, 3))
	if _, _, _, err := ExecuteMVMRepaired(cfg(), la, w, bad, nil, repair.Policy{}); err == nil {
		t.Fatal("wrong input length must error")
	}
}

// End-to-end: a plan provisioned with full spare columns serves a faulty
// network with exactly the fault-free outputs; with no spares the repaired
// run still degrades less than the unrepaired one.
func TestRunInferenceWithRepair(t *testing.T) {
	m := tinyCNN(t)
	st := accel.Homogeneous(m.NumMappable(), xbar.Square(32))
	in := dnn.SyntheticTensor(1, 6, 6, 5)
	fm := &fault.Model{StuckAtZero: 0.02, StuckAtOne: 0.02, Seed: 3}

	clean, err := accel.BuildPlan(cfg(), m, st, false)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := RunInference(clean, in, InferenceOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	faulty, _, err := RunInference(clean, in, InferenceOptions{Seed: 5, Faults: fm})
	if err != nil {
		t.Fatal(err)
	}

	// Plan-provisioned spares: policy with zero provision draws the plan's
	// full spare-column budget and restores fault-free outputs exactly.
	spared, err := accel.Build(cfg(), m, accel.PlanSpec{
		Strategy: st, Spares: repair.Provision{SpareCols: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	repaired, _, err := RunInference(spared, in, InferenceOptions{Seed: 5, Faults: fm, Repair: &repair.Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	for j := range ref {
		if repaired[j] != ref[j] {
			t.Fatalf("full spares: output %d = %v, fault-free %v", j, repaired[j], ref[j])
		}
	}

	// No spares at all: masking alone must still beat raw faults.
	masked, _, err := RunInference(clean, in, InferenceOptions{Seed: 5, Faults: fm, Repair: &repair.Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	if got, raw := l2Rel(masked, ref), l2Rel(faulty, ref); got >= raw {
		t.Fatalf("masking error %v not below unrepaired %v", got, raw)
	}
}
