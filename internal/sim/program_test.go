package sim

import (
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/xbar"
)

func TestProgramCostCells(t *testing.T) {
	// One layer, known weights: 12·9·128 = 13824 logical cells × 8 planes.
	p := singleLayerPlan(t, 3, 12, 128, xbar.Square(64))
	pc, err := SimulateProgramming(p)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Cells != 13824*8 {
		t.Fatalf("cells = %d, want %d", pc.Cells, 13824*8)
	}
	if pc.EnergyNJ <= 0 || pc.LatencyNS <= 0 {
		t.Fatalf("degenerate cost %+v", pc)
	}
	if pc.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestProgramCostScalesWithReplication(t *testing.T) {
	m := dnn.VGG16()
	st := accel.Homogeneous(16, xbar.Square(128))
	repl := make(accel.Replication, 16)
	for i := range repl {
		repl[i] = 1
	}
	plain, _ := accel.BuildPlan(cfg(), m, st, false)
	base, err := SimulateProgramming(plain)
	if err != nil {
		t.Fatal(err)
	}
	repl[0] = 3
	replicated, err := accel.BuildPlanReplicated(cfg(), m, st, repl, false)
	if err != nil {
		t.Fatal(err)
	}
	more, err := SimulateProgramming(replicated)
	if err != nil {
		t.Fatal(err)
	}
	if more.Cells <= base.Cells {
		t.Fatal("replication must add programmed cells")
	}
	extra := more.Cells - base.Cells
	want := 2 * plain.Layers[0].Mapping.UsedCells * 8
	if extra != want {
		t.Fatalf("extra cells = %d, want %d", extra, want)
	}
}

func TestProgramCostParallelAcrossTiles(t *testing.T) {
	// Programming time is the max over tiles, not the sum: a model spread
	// over many tiles programs faster than its total cell count suggests.
	m := dnn.VGG16()
	p, _ := accel.BuildPlan(cfg(), m, accel.Homogeneous(16, xbar.Square(64)), false)
	pc, err := SimulateProgramming(p)
	if err != nil {
		t.Fatal(err)
	}
	serialNS := float64(pc.Cells) * 2 * 50 / 32
	if pc.LatencyNS >= serialNS {
		t.Fatalf("latency %v not parallel (serial bound %v)", pc.LatencyNS, serialNS)
	}
}

func TestBreakEvenInferences(t *testing.T) {
	pc := &ProgramCost{EnergyNJ: 1000}
	if got := pc.BreakEvenInferences(10, 0.01); got != 10000 {
		t.Fatalf("break-even = %d, want 10000", got)
	}
	if pc.BreakEvenInferences(0, 0.01) != 0 || pc.BreakEvenInferences(10, 0) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

func TestProgramCostRejectsBrokenPlan(t *testing.T) {
	p := singleLayerPlan(t, 3, 4, 8, xbar.Square(32))
	p.Layers[0].Placements = nil
	if _, err := SimulateProgramming(p); err == nil {
		t.Fatal("broken plan must error")
	}
}
