package sim

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
)

// Pipeline balancing by weight replication (PipeLayer, the paper's
// reference [21]): early convolutional layers execute orders of magnitude
// more sliding-window MVMs than deep ones, so they bottleneck the
// inter-layer pipeline. Duplicating a bottleneck layer's crossbar grid lets
// it process several output positions in parallel, trading crossbars (and
// tiles) for initiation interval.

// BalanceResult reports a balancing run.
type BalanceResult struct {
	Plan        *accel.Plan
	Replication accel.Replication
	Pipeline    *PipelineResult
	// BaselineIntervalNS is the unreplicated initiation interval.
	BaselineIntervalNS float64
	// ExtraTiles is the tile cost of the replication.
	ExtraTiles int
}

// BalancePipeline greedily replicates the current bottleneck layer until
// the extra-tile budget is exhausted or replication stops helping. The
// returned plan uses the discovered replication vector.
func BalancePipeline(cfg hw.Config, m *dnn.Model, st accel.Strategy, shared bool, extraTileBudget int) (*BalanceResult, error) {
	if extraTileBudget < 0 {
		return nil, fmt.Errorf("sim: negative tile budget %d", extraTileBudget)
	}
	repl := make(accel.Replication, m.NumMappable())
	for i := range repl {
		repl[i] = 1
	}
	build := func() (*accel.Plan, *Result, error) {
		p, err := accel.BuildPlanReplicated(cfg, m, st, repl, shared)
		if err != nil {
			return nil, nil, err
		}
		r, err := Simulate(p)
		if err != nil {
			return nil, nil, err
		}
		return p, r, nil
	}

	plan, res, err := build()
	if err != nil {
		return nil, err
	}
	baseTiles := plan.OccupiedTiles()
	basePipe := PipelineFromResult(res, 1)
	bestPlan, bestRes := plan, res
	bestInterval := basePipe.IntervalNS

	for {
		pipe := PipelineFromResult(bestRes, 1)
		bottleneck := pipe.Bottleneck
		if bottleneck == nil {
			break
		}
		idx := bottleneck.Layer.Index
		repl[idx]++
		candPlan, candRes, err := build()
		if err != nil {
			// Bank exhausted (or another hard limit): revert and stop.
			repl[idx]--
			break
		}
		candPipe := PipelineFromResult(candRes, 1)
		overBudget := candPlan.OccupiedTiles()-baseTiles > extraTileBudget
		noGain := candPipe.IntervalNS >= bestInterval-1e-9
		if overBudget || noGain {
			repl[idx]--
			break
		}
		bestPlan, bestRes = candPlan, candRes
		bestInterval = candPipe.IntervalNS
	}

	return &BalanceResult{
		Plan:               bestPlan,
		Replication:        repl,
		Pipeline:           PipelineFromResult(bestRes, 1),
		BaselineIntervalNS: basePipe.IntervalNS,
		ExtraTiles:         bestPlan.OccupiedTiles() - baseTiles,
	}, nil
}

// Speedup returns the initiation-interval improvement over the
// unreplicated pipeline.
func (b *BalanceResult) Speedup() float64 {
	if b.Pipeline.IntervalNS == 0 {
		return 1
	}
	return b.BaselineIntervalNS / b.Pipeline.IntervalNS
}
