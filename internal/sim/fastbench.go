package sim

import (
	"autohet/internal/quant"
)

// FastKernels exposes the engine's two fast-path MVM pipelines for one
// weight matrix as standalone calls, for benchmarks and cross-checks.
//
// Single is the unbatched per-patch pipeline — layerExec.apply's modeFast
// arm: per-patch quantization (including the bit-serial digit slab the
// single-vector path packs) followed by the single-vector integer kernel.
// This was the serving engine's only fast path before kernel batching, so
// it is the baseline batched legs are compared against.
//
// Batch is the batched pipeline — layerExec.applyBatch's modeFast arm:
// one-pass codes-only batch quantization followed by the blocked/pair/
// scalar batched kernel hierarchy, with the same dispatch rules the engine
// uses.
//
// Both return dequantized outputs bit-identical to the bit-serial crossbar
// reference followed by the engine's dequantization (asserted in tests and
// by the benchmark legs before timing). Scratch is reused across calls, so
// warm calls allocate nothing; a FastKernels is not safe for concurrent
// use.
type FastKernels struct {
	w  *quant.Matrix
	bw *quant.BlockedMatrix
	pw *quant.PairMatrix
	ss mvmScratch
	bs batchScratch
}

// NewFastKernels prepares the fast pipelines for w, building the same
// kernel representations the engine's prepareLayer builds.
func NewFastKernels(w *quant.Matrix) *FastKernels {
	return &FastKernels{w: w, bw: w.Blocked(), pw: w.Pairs()}
}

// Single runs one patch through the unbatched per-patch pipeline and
// returns its dequantized outputs (valid until the next call).
func (fk *FastKernels) Single(patch []float64) []float64 {
	in := quant.QuantizeInputInto(fk.ss.in, patch)
	fk.ss.in = in
	out := fk.ss.outFor(fk.w.Cols)
	integerMVMInto(out, fk.ss.accFor(fk.w.Cols), fk.w, in.U)
	for j := range out {
		out[j] = fk.w.ScaleFor(j) * in.Scale * out[j]
	}
	return out
}

// Batch runs b member-major patches of length n (flat, like the engine's
// patch slab) through the batched pipeline and returns member-major
// dequantized outputs (valid until the next call).
func (fk *FastKernels) Batch(flat []float64, n, b int) []float64 {
	pb := quant.QuantizeBatchFlatCodesInto(fk.bs.pb, flat, n, b)
	fk.bs.pb = pb
	cols := fk.w.Cols
	out := fk.bs.outFor(b * cols)
	clear(out)
	switch {
	case fk.bw != nil:
		// Signed product directly — no offset correction term.
		fk.bw.MulBatch(pb, out, fk.bs.u16For(b*pb.N))
	case fk.pw != nil && b >= pairMinBatch:
		fk.pw.MulBatchFloat(pb, out, fk.bs.paccFor(b*fk.pw.Pairs))
		applyCorrectionBatch(out, fk.w, pb)
	default:
		integerMVMBatch(out, fk.bs.accFor(max(cols, b)), fk.w, pb)
	}
	for k := 0; k < b; k++ {
		f := pb.Scales[k]
		o := out[k*cols : (k+1)*cols]
		for j := range o {
			o[j] = fk.w.ScaleFor(j) * f * o[j]
		}
	}
	return out
}
