package sim

import (
	"fmt"
	"math"

	"autohet/internal/accel"
	"autohet/internal/fault"
	"autohet/internal/hw"
	"autohet/internal/quant"
)

// Batched functional execution: the bit-serial crossbar pipeline of exec.go
// evaluated for a whole quant.PackedBatch of input vectors at once. Every
// packed weight word is loaded once per batch and reused B·InputBits times
// (quant.PackedPlane.ColSumCycles), so the per-MVM cost of walking the plane
// stack amortizes across the batch exactly like the serving fleet amortizes
// per-request overhead via dynamic batching. All partial sums are exact
// integers, so the batched kernels are bit-identical to B independent
// single-vector MVMs — asserted per member against the scalar reference in
// tests, never within a tolerance.
//
// Noise ordering: the noisy paths draw each member's read-noise samples from
// that member's own stream in the exact (band, grid-col, cycle, plane,
// column) order the single-vector kernel uses, so faulted/repaired batched
// results stay bit-identical to the unbatched engine too. The ideal kernels
// are free to fuse all InputBits cycles per weight word because exact
// integer accumulation is order-independent.

// ExecuteMVMBatch computes the layer's MVM for a packed batch of B input
// patches on the mapped crossbar grid of la. out is member-major with
// length B·w.Cols (member k's outputs at out[k*w.Cols:(k+1)*w.Cols]), in
// integer product units like ExecuteMVM. Stats are per batch: exactly B
// times AnalyticExecStats, since the crossbar performs every (cycle, plane,
// bitline) conversion once per batch member regardless of how the digital
// kernel amortizes the weight walk.
func ExecuteMVMBatch(cfg hw.Config, la *accel.LayerAlloc, w *quant.Matrix, pb *quant.PackedBatch) ([]float64, ExecStats, error) {
	if err := checkBatchShapes(la, w, pb); err != nil {
		return nil, ExecStats{}, err
	}
	out := make([]float64, pb.B*w.Cols)
	var stats ExecStats
	execPackedGridBatch(cfg, la, w.Packed(), pb, make([]int64, pb.B), out, w.Cols, &stats)
	applyCorrectionBatch(out, w, pb)
	return out, stats, nil
}

// checkBatchShapes validates la/w/pb agreement for one batched MVM.
func checkBatchShapes(la *accel.LayerAlloc, w *quant.Matrix, pb *quant.PackedBatch) error {
	l := la.Layer
	if l.GroupCount() > 1 {
		return fmt.Errorf("sim: functional execution of grouped convolutions is not supported (layer %s)", l.Name)
	}
	rows, cols := l.UnfoldedRows(), l.UnfoldedCols()
	if w.Rows != rows || w.Cols != cols {
		return shapeErr(w.Rows, w.Cols, rows, cols)
	}
	if pb.N != rows {
		return lengthErr(pb.N, rows)
	}
	return nil
}

// execPackedGridBatch runs the ideal batched bit-serial pipeline over the
// layer's whole crossbar grid, accumulating shifted partial sums for every
// batch member into the member-major out (which must be zeroed). acc is
// kernel scratch of length ≥ pb.B. Exact integer accumulation makes both the
// cycle order and the crossbar band splits invisible — a column's band sums
// add to its full-height sum, `==` (fuzz-asserted) — so the digital kernel
// fuses all quant.InputBits cycles AND all row bands into one sweep per
// (plane, column). The crossbar still performs every per-band conversion,
// so DAC/ADC work is priced analytically, which equals the per-band
// accounting exactly (ActiveRows/ActiveCols sum over the grid).
// (The bit-serial engines require cfg.InputBits == quant.InputBits.)
func execPackedGridBatch(cfg hw.Config, la *accel.LayerAlloc, pm *quant.PackedMatrix, pb *quant.PackedBatch, acc []int64, out []float64, cols int, stats *ExecStats) {
	B := pb.B
	acc = acc[:B]
	an := AnalyticExecStats(cfg, la, len(pm.Planes))
	stats.Crossbars += an.Crossbars * B
	stats.DACConversions += an.DACConversions * int64(B)
	stats.ADCConversions += an.ADCConversions * int64(B)
	for _, p := range pm.Planes {
		shift := float64(int64(1) << uint(p.Bit))
		for j := 0; j < cols; j++ {
			clear(acc)
			p.ColSumCycles(j, pb, acc)
			for k, s := range acc {
				out[k*cols+j] += shift * float64(s)
			}
		}
	}
}

// execPackedGridBatchNoisy is execPackedGridBatch with one read-noise sample
// per digitized bitline per member, drawn from noise[k] in the exact
// (band, grid-col, cycle, plane, column) order the single-vector kernel
// uses — so each member is bit-identical to execPackedGrid with its own
// stream. It cannot fuse cycles (noise order is per cycle), but still loads
// each weight word once per batch per cycle via ColRangeSumBatch. sums is
// kernel scratch of length ≥ pb.B.
func execPackedGridBatchNoisy(cfg hw.Config, la *accel.LayerAlloc, pm *quant.PackedMatrix, pb *quant.PackedBatch, noise []func() float64, sums []int64, out []float64, cols int, stats *ExecStats) {
	B := pb.B
	sums = sums[:B]
	forEachCrossbar(la, func(r0, r1, c0, c1 int) {
		stats.Crossbars += B
		for ib := 0; ib < cfg.InputBits; ib++ {
			stats.DACConversions += int64(r1-r0) * int64(len(pm.Planes)) * int64(B)
			for _, p := range pm.Planes {
				shift := float64(int64(1) << uint(ib+p.Bit))
				for j := c0; j < c1; j++ {
					p.ColRangeSumBatch(j, r0, r1, ib, pb, sums)
					for k, s := range sums {
						out[k*cols+j] += shift * (float64(s) + noise[k]())
					}
				}
				stats.ADCConversions += int64(c1-c0) * int64(B)
			}
		}
	})
}

// packedAggregateMVMBatch is the batched form of packedAggregateMVM: the
// fast noisy path with read noise folded into one distribution-equivalent
// aggregate sample per (plane, column) per member, drawn from each member's
// own stream in the (plane, column) order the single-vector path uses. acc
// is kernel scratch of length ≥ pb.B; out is member-major and zeroed.
func packedAggregateMVMBatch(cfg hw.Config, pm *quant.PackedMatrix, w *quant.Matrix, pb *quant.PackedBatch, fm *fault.Model, noise []func() float64, acc []int64, out []float64) {
	noisy := fm != nil && fm.ReadNoiseSigma > 0
	aggSigma := math.Sqrt(aggregateNoiseVar(cfg))
	B := pb.B
	cols := w.Cols
	acc = acc[:B]
	for _, p := range pm.Planes {
		shift := float64(int64(1) << uint(p.Bit))
		noiseScale := shift * aggSigma
		for j := 0; j < cols; j++ {
			clear(acc)
			p.ColSumCycles(j, pb, acc)
			for k, s := range acc {
				out[k*cols+j] += shift * float64(s)
				if noisy {
					out[k*cols+j] += noiseScale * noise[k]()
				}
			}
		}
	}
	applyCorrectionBatch(out, w, pb)
}

// integerMVMBatch is the fast path over a batch: the exact integer product
// qᵀ·u_k per member, written member-major into out. acc is scratch of
// length ≥ w.Cols (re-zeroed per member).
func integerMVMBatch(out []float64, acc []int64, w *quant.Matrix, pb *quant.PackedBatch) {
	cols := w.Cols
	for k := 0; k < pb.B; k++ {
		acc = acc[:cols]
		clear(acc)
		integerMVMInto(out[k*cols:(k+1)*cols], acc, w, pb.Member(k))
	}
}

// applyCorrectionBatch subtracts each member's offset-binary bias from its
// output columns, using the batch's cached code sums.
func applyCorrectionBatch(out []float64, w *quant.Matrix, pb *quant.PackedBatch) {
	off := float64(w.Offset())
	for k := 0; k < pb.B; k++ {
		corr := off * pb.USums[k]
		o := out[k*w.Cols : (k+1)*w.Cols]
		for j := range o {
			o[j] -= corr
		}
	}
}
