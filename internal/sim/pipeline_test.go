package sim

import (
	"math"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/xbar"
)

func vggPlan(t *testing.T) *accel.Plan {
	t.Helper()
	p, err := accel.BuildPlan(cfg(), dnn.VGG16(), accel.Homogeneous(16, xbar.Square(128)), true)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSimulateBatchSingleEqualsSequential(t *testing.T) {
	p := vggPlan(t)
	r, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := SimulateBatch(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr.BatchLatencyNS-r.LatencyNS) > 1e-6 {
		t.Fatalf("batch=1 latency %v != sequential %v", pr.BatchLatencyNS, r.LatencyNS)
	}
	if pr.Speedup != 1 {
		t.Fatalf("batch=1 speedup %v", pr.Speedup)
	}
}

func TestSimulateBatchAsymptotics(t *testing.T) {
	p := vggPlan(t)
	pr, err := SimulateBatch(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Large batches approach the bottleneck-bound: fill + (n−1)·interval.
	want := pr.FillNS + 999*pr.IntervalNS
	if math.Abs(pr.BatchLatencyNS-want) > 1e-6 {
		t.Fatalf("batch latency %v != %v", pr.BatchLatencyNS, want)
	}
	// Pipelining must beat sequential execution on a multi-layer model.
	if pr.Speedup <= 1 {
		t.Fatalf("speedup %v not > 1", pr.Speedup)
	}
	// Speedup is bounded by fill/interval (the layer count effect).
	if pr.Speedup > pr.FillNS/pr.IntervalNS+1 {
		t.Fatalf("speedup %v exceeds bound", pr.Speedup)
	}
	// Throughput consistency: 1e9/interval.
	if math.Abs(pr.Throughput-1e9/pr.IntervalNS) > 1e-6 {
		t.Fatalf("throughput %v", pr.Throughput)
	}
}

func TestBottleneckIsSlowestLayer(t *testing.T) {
	p := vggPlan(t)
	pr, err := SimulateBatch(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := Simulate(p)
	for _, lr := range r.Layers {
		if lr.LatencyNS > pr.IntervalNS {
			t.Fatalf("layer %s latency %v exceeds bottleneck %v", lr.Layer.Name, lr.LatencyNS, pr.IntervalNS)
		}
	}
	if pr.Bottleneck == nil {
		t.Fatal("no bottleneck identified")
	}
	if pr.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestSimulateBatchErrors(t *testing.T) {
	p := vggPlan(t)
	if _, err := SimulateBatch(p, 0); err == nil {
		t.Fatal("batch 0 must error")
	}
	p.Layers[0].Placements = nil
	if _, err := SimulateBatch(p, 2); err == nil {
		t.Fatal("broken plan must error")
	}
}
