package sim

import (
	"math"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/xbar"
)

func cfg() hw.Config { return hw.DefaultConfig() }

func singleLayerPlan(t *testing.T, k, inC, outC int, shape xbar.Shape) *accel.Plan {
	t.Helper()
	l := &dnn.Layer{Name: "c", Kind: dnn.Conv, K: k, InC: inC, OutC: outC, Stride: 1, Pad: 0, InH: 8, InW: 8}
	m, err := dnn.NewFlatModel("one", 8, 8, inC, []*dnn.Layer{l})
	if err != nil {
		t.Fatal(err)
	}
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(1, shape), false)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Paper Fig. 5: the 64×64 mapping activates 256 ADC columns, the 128×128
// mapping 128. Per cycle and plane, conversions must scale exactly 2:1.
func TestSimulateFig5ADCRatio(t *testing.T) {
	p64 := singleLayerPlan(t, 3, 12, 128, xbar.Square(64))
	p128 := singleLayerPlan(t, 3, 12, 128, xbar.Square(128))
	r64, err := Simulate(p64)
	if err != nil {
		t.Fatal(err)
	}
	r128, err := Simulate(p128)
	if err != nil {
		t.Fatal(err)
	}
	if r64.ADCConversions != 2*r128.ADCConversions {
		t.Fatalf("ADC conversions %d vs %d, want 2:1", r64.ADCConversions, r128.ADCConversions)
	}
	// Same layer, same MVM count: per-MVM ADC count is ActiveCols×planes×bits.
	l := p64.Model.Mappable()[0]
	perMVM := r64.ADCConversions / int64(l.OutputPositions())
	if perMVM != 256*8*8 {
		t.Fatalf("per-MVM conversions = %d, want 256·8·8", perMVM)
	}
	// More ADC activity must cost more energy.
	if r64.EnergyNJ <= r128.EnergyNJ {
		t.Fatalf("64x64 energy %v must exceed 128x128 %v", r64.EnergyNJ, r128.EnergyNJ)
	}
}

func TestSimulateEnergyUtilizationTradeoff(t *testing.T) {
	// §2.2.1: on VGG16, small crossbars win utilization, large crossbars
	// win energy.
	m := dnn.VGG16()
	small, _ := accel.BuildPlan(cfg(), m, accel.Homogeneous(16, xbar.Square(32)), false)
	large, _ := accel.BuildPlan(cfg(), m, accel.Homogeneous(16, xbar.Square(512)), false)
	rs, err := Simulate(small)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Simulate(large)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Utilization <= rl.Utilization {
		t.Fatalf("32x32 util %v must exceed 512x512 %v", rs.Utilization, rl.Utilization)
	}
	if rs.EnergyNJ <= rl.EnergyNJ {
		t.Fatalf("32x32 energy %v must exceed 512x512 %v", rs.EnergyNJ, rl.EnergyNJ)
	}
}

func TestRewardWithinUnitInterval(t *testing.T) {
	// Eq. 2: R = u/e stays in [0,1] for the paper workloads.
	for _, m := range dnn.Zoo() {
		for _, s := range xbar.SquareCandidates() {
			p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(m.NumMappable(), s), true)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Simulate(p)
			if err != nil {
				t.Fatal(err)
			}
			if rw := r.Reward(); rw <= 0 || rw > 1 {
				t.Errorf("%s/%v: reward %v outside (0,1]", m.Name, s, rw)
			}
		}
	}
}

func TestSimulatePoolEnergyCounted(t *testing.T) {
	withPool := dnn.AlexNet() // has pool layers
	p, _ := accel.BuildPlan(cfg(), withPool, accel.Homogeneous(withPool.NumMappable(), xbar.Square(64)), false)
	r, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	var layerPJ float64
	for _, lr := range r.Layers {
		layerPJ += lr.EnergyPJ
	}
	if r.EnergyNJ*1000 <= layerPJ {
		t.Fatal("pool energy missing from total")
	}
}

func TestSimulateLatencyPositiveAndSequential(t *testing.T) {
	m := dnn.VGG16()
	p, _ := accel.BuildPlan(cfg(), m, accel.Homogeneous(16, xbar.Square(64)), false)
	r, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, lr := range r.Layers {
		if lr.LatencyNS <= 0 {
			t.Fatalf("layer %s latency %v", lr.Layer.Name, lr.LatencyNS)
		}
		sum += lr.LatencyNS
	}
	if math.Abs(sum-r.LatencyNS) > 1e-6 {
		t.Fatalf("latency %v != layer sum %v", r.LatencyNS, sum)
	}
}

func TestSimulateRejectsBrokenPlan(t *testing.T) {
	p := singleLayerPlan(t, 3, 12, 128, xbar.Square(64))
	// Corrupt: drop a placement so validation fails.
	p.Layers[0].Placements = nil
	if _, err := Simulate(p); err == nil {
		t.Fatal("Simulate must reject invalid plans")
	}
}

// Functional execution: the bit-sliced, bit-serial crossbar computation must
// reproduce the integer MVM exactly, for square, rectangular, multi-band,
// multi-column and split-kernel mappings.
func TestExecuteMVMExact(t *testing.T) {
	cases := []struct {
		k, inC, outC int
		shape        xbar.Shape
	}{
		{3, 12, 128, xbar.Square(64)},  // Fig. 5, 2×2 grid
		{3, 12, 128, xbar.Square(128)}, // Fig. 5, single crossbar
		{3, 7, 40, xbar.Rect(36, 32)},  // rectangular, partial bands
		{1, 70, 50, xbar.Square(32)},   // FC-like, 3 bands
		{7, 3, 20, xbar.Square(32)},    // split kernel (49 rows > 32)
	}
	for _, c := range cases {
		p := singleLayerPlan(t, c.k, c.inC, c.outC, c.shape)
		la := p.Layers[0]
		l := la.Layer
		w := quant.QuantizeWeights(dnn.SyntheticWeights(l, 11))
		in := quant.QuantizeInput(dnn.SyntheticInput(l, 12))
		out, stats, err := ExecuteMVM(cfg(), la, w, in)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		for j := 0; j < l.OutC; j++ {
			var want float64
			for i := 0; i < l.UnfoldedRows(); i++ {
				want += float64(w.At(i, j)) * float64(in.U[i])
			}
			if math.Abs(out[j]-want) > 1e-6 {
				t.Fatalf("%v col %d: got %v want %v", c, j, out[j], want)
			}
		}
		if stats.Crossbars != la.Mapping.Crossbars() {
			t.Fatalf("%v: executed %d crossbars, mapping has %d", c, stats.Crossbars, la.Mapping.Crossbars())
		}
	}
}

// The analytic per-MVM activation counts used by Simulate must equal what
// functional execution actually performs.
func TestAnalyticCountsMatchExecution(t *testing.T) {
	for _, shape := range []xbar.Shape{xbar.Square(64), xbar.Rect(36, 32), xbar.Square(32)} {
		p := singleLayerPlan(t, 3, 12, 40, shape)
		la := p.Layers[0]
		l := la.Layer
		w := quant.QuantizeWeights(dnn.SyntheticWeights(l, 3))
		in := quant.QuantizeInput(dnn.SyntheticInput(l, 4))
		_, stats, err := ExecuteMVM(cfg(), la, w, in)
		if err != nil {
			t.Fatal(err)
		}
		wantADC := int64(la.Mapping.ActiveCols) * 8 * 8
		if stats.ADCConversions != wantADC {
			t.Fatalf("%v: executed %d ADC conversions, analytic %d", shape, stats.ADCConversions, wantADC)
		}
		wantDAC := int64(la.Mapping.ActiveRows) * 8 * 8
		if stats.DACConversions != wantDAC {
			t.Fatalf("%v: executed %d DAC conversions, analytic %d", shape, stats.DACConversions, wantDAC)
		}
	}
}

func TestExecuteMVMShapeErrors(t *testing.T) {
	p := singleLayerPlan(t, 3, 4, 8, xbar.Square(32))
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 1))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 1))
	badW := quant.QuantizeWeights(dnn.SyntheticWeights(p.Model.Mappable()[0], 1))
	badW.Rows++ // corrupt shape
	if _, _, err := ExecuteMVM(cfg(), la, badW, in); err == nil {
		t.Fatal("wrong weight shape must error")
	}
	in.N++ // corrupt length
	if _, _, err := ExecuteMVM(cfg(), la, w, in); err == nil {
		t.Fatal("wrong input length must error")
	}
}

func TestResultString(t *testing.T) {
	p := singleLayerPlan(t, 3, 12, 128, xbar.Square(64))
	r, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.String() == "" {
		t.Fatal("empty result string")
	}
}

// Tile sharing must not change energy (same crossbars active) but must
// raise utilization and shrink area.
func TestSharingEffectOnMetrics(t *testing.T) {
	m := dnn.VGG16()
	st := accel.Homogeneous(16, xbar.Square(64))
	plain, _ := accel.BuildPlan(cfg(), m, st, false)
	shared, _ := accel.BuildPlan(cfg(), m, st, true)
	rp, err := Simulate(plain)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Simulate(shared)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Utilization < rp.Utilization {
		t.Fatalf("sharing reduced utilization %v → %v", rp.Utilization, rs.Utilization)
	}
	if rs.AreaUM2 > rp.AreaUM2 {
		t.Fatalf("sharing grew area %v → %v", rp.AreaUM2, rs.AreaUM2)
	}
	// Energy may shift slightly (fewer inter-tile hops) but never up.
	if rs.EnergyNJ > rp.EnergyNJ+1e-9 {
		t.Fatalf("sharing grew energy %v → %v", rp.EnergyNJ, rs.EnergyNJ)
	}
}
