package sim

import (
	"math"
	"strings"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/quant"
	"autohet/internal/xbar"
)

func TestExecuteMVMFaultyZeroModelMatchesIdeal(t *testing.T) {
	p := singleLayerPlan(t, 3, 7, 40, xbar.Rect(36, 32))
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 1))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 2))
	ideal, _, err := ExecuteMVM(cfg(), la, w, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, fm := range []*fault.Model{nil, {}} {
		got, _, err := ExecuteMVMFaulty(cfg(), la, w, in, fm)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ideal {
			if math.Abs(got[j]-ideal[j]) > 1e-9 {
				t.Fatalf("zero fault model diverged at %d: %v vs %v", j, got[j], ideal[j])
			}
		}
	}
}

func TestExecuteMVMFaultyRejectsBadModel(t *testing.T) {
	p := singleLayerPlan(t, 3, 4, 8, xbar.Square(32))
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 1))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 1))
	if _, _, err := ExecuteMVMFaulty(cfg(), la, w, in, &fault.Model{StuckAtZero: -1}); err == nil {
		t.Fatal("invalid fault model must error")
	}
}

func TestStuckAtFaultsPerturbOutputs(t *testing.T) {
	p := singleLayerPlan(t, 3, 12, 64, xbar.Square(64))
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 3))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 4))
	ideal, _, err := ExecuteMVM(cfg(), la, w, in)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := 0.0
	for _, rate := range []float64{0.001, 0.01, 0.1} {
		fm := &fault.Model{StuckAtZero: rate / 2, StuckAtOne: rate / 2, Seed: 9}
		got, _, err := ExecuteMVMFaulty(cfg(), la, w, in, fm)
		if err != nil {
			t.Fatal(err)
		}
		var errNorm, refNorm float64
		for j := range ideal {
			d := got[j] - ideal[j]
			errNorm += d * d
			refNorm += ideal[j] * ideal[j]
		}
		rel := math.Sqrt(errNorm / refNorm)
		if rel == 0 {
			t.Fatalf("rate %v produced no perturbation", rate)
		}
		if rel < prevErr {
			t.Fatalf("error did not grow with fault rate: %v after %v", rel, prevErr)
		}
		prevErr = rel
	}
}

// The fast path's stuck-at handling is bit-identical to the bit-serial
// engine when read noise is off.
func TestFaultyFastPathMatchesBitExact(t *testing.T) {
	p := singleLayerPlan(t, 3, 7, 24, xbar.Square(32))
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 5))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 6))
	fm := &fault.Model{StuckAtZero: 0.05, StuckAtOne: 0.02, Seed: 11}
	exact, _, err := ExecuteMVMFaulty(cfg(), la, w, in, fm)
	if err != nil {
		t.Fatal(err)
	}
	fast := faultyIntegerMVM(cfg(), int64(la.Layer.Index+1), w, in, fm)
	for j := range exact {
		if math.Abs(exact[j]-fast[j]) > 1e-9 {
			t.Fatalf("col %d: exact %v fast %v", j, exact[j], fast[j])
		}
	}
}

func TestReadNoisePerturbsButCentersOnIdeal(t *testing.T) {
	p := singleLayerPlan(t, 1, 32, 16, xbar.Square(32))
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 7))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 8))
	ideal, _, err := ExecuteMVM(cfg(), la, w, in)
	if err != nil {
		t.Fatal(err)
	}
	// Average many noisy runs: the mean must approach the ideal output.
	sum := make([]float64, len(ideal))
	const runs = 200
	for r := 0; r < runs; r++ {
		fm := &fault.Model{ReadNoiseSigma: 0.5, Seed: int64(r)}
		got, _, err := ExecuteMVMFaulty(cfg(), la, w, in, fm)
		if err != nil {
			t.Fatal(err)
		}
		diff := false
		for j := range got {
			sum[j] += got[j]
			if got[j] != ideal[j] {
				diff = true
			}
		}
		if !diff {
			t.Fatal("noise produced identical output")
		}
	}
	for j := range sum {
		mean := sum[j] / runs
		// Noise per conversion is ±0.5 over 64 conversions with shifts up
		// to 2^14; allow a generous absolute band relative to magnitude.
		if math.Abs(mean-ideal[j]) > 0.02*math.Abs(ideal[j])+2000 {
			t.Fatalf("col %d: noisy mean %v far from ideal %v", j, mean, ideal[j])
		}
	}
}

// Whole-network fault injection: accuracy degrades gracefully with rate.
func TestRunInferenceWithFaults(t *testing.T) {
	m := tinyCNN(t)
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(m.NumMappable(), xbar.Square(32)), false)
	if err != nil {
		t.Fatal(err)
	}
	input := dnn.SyntheticTensor(1, 6, 6, 13)
	clean, _, err := RunInference(p, input, InferenceOptions{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	relErr := func(rate float64) float64 {
		fm := &fault.Model{StuckAtZero: rate / 2, StuckAtOne: rate / 2, Seed: 21}
		got, _, err := RunInference(p, input, InferenceOptions{Seed: 13, Faults: fm})
		if err != nil {
			t.Fatal(err)
		}
		var e, n float64
		for i := range clean {
			d := got[i] - clean[i]
			e += d * d
			n += clean[i] * clean[i]
		}
		return math.Sqrt(e / n)
	}
	small := relErr(0.001)
	large := relErr(0.2)
	if small <= 0 {
		t.Fatal("small fault rate produced no error")
	}
	if large <= small {
		t.Fatalf("error did not grow: %v at 0.1%% vs %v at 20%%", small, large)
	}
	// Invalid model is rejected on the fast path too.
	if _, _, err := RunInference(p, input, InferenceOptions{Seed: 13, Faults: &fault.Model{StuckAtOne: 2}}); err == nil {
		t.Fatal("invalid fault model must error")
	}
}

// Zero-model equivalence must hold on rectangular (RXB) candidates too,
// including geometries where a band splits the convolution kernel across
// crossbar rows — the paths where the faulty engine's per-plane copies
// could diverge from the ideal one.
func TestExecuteMVMFaultyZeroModelRectangularShapes(t *testing.T) {
	cases := []struct {
		k, inC, outC int
		shape        xbar.Shape
	}{
		{3, 16, 40, xbar.Rect(72, 64)},   // 144 rows needed: split-kernel bands
		{5, 3, 20, xbar.Rect(36, 32)},    // 75 rows over 36-row bands
		{1, 80, 24, xbar.Rect(288, 256)}, // FC-style on a wide RXB
	}
	for _, c := range cases {
		p := singleLayerPlan(t, c.k, c.inC, c.outC, c.shape)
		la := p.Layers[0]
		w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 1))
		in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 2))
		ideal, idealStats, err := ExecuteMVM(cfg(), la, w, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, fm := range []*fault.Model{nil, {}} {
			got, stats, err := ExecuteMVMFaulty(cfg(), la, w, in, fm)
			if err != nil {
				t.Fatal(err)
			}
			if stats.ADCConversions != idealStats.ADCConversions {
				t.Fatalf("%v: conversions %d vs ideal %d", c.shape, stats.ADCConversions, idealStats.ADCConversions)
			}
			for j := range ideal {
				if math.Abs(got[j]-ideal[j]) > 1e-9 {
					t.Fatalf("%v: zero fault model diverged at %d: %v vs %v", c.shape, j, got[j], ideal[j])
				}
			}
		}
	}
}

// Grouped convolutions take the same unsupported-path error as the ideal
// engine instead of silently computing a dense result.
func TestExecuteMVMFaultyGroupedConvRejected(t *testing.T) {
	l := &dnn.Layer{Name: "dw", Kind: dnn.Conv, K: 3, InC: 8, OutC: 8, Groups: 8, Stride: 1, Pad: 1, InH: 8, InW: 8}
	m, err := dnn.NewFlatModel("grouped", 8, 8, 8, []*dnn.Layer{l})
	if err != nil {
		t.Fatal(err)
	}
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(1, xbar.Square(32)), false)
	if err != nil {
		t.Fatal(err)
	}
	la := p.Layers[0]
	w := quant.QuantizeWeights(dnn.SyntheticWeights(la.Layer, 1))
	in := quant.QuantizeInput(dnn.SyntheticInput(la.Layer, 1))
	if _, _, err := ExecuteMVMFaulty(cfg(), la, w, in, &fault.Model{StuckAtZero: 0.1}); err == nil {
		t.Fatal("grouped convolution must be rejected")
	} else if !strings.Contains(err.Error(), "grouped") {
		t.Fatalf("unexpected error: %v", err)
	}
}
