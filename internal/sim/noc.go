package sim

import (
	"fmt"
	"math"

	"autohet/internal/accel"
	"autohet/internal/noc"
)

// NoC-aware accounting: SimulateNoC re-prices each layer's inter-tile
// traffic on a 2-D mesh instead of the flat bus constant, making the cost
// placement-dependent. Everything else (ADC/DAC/cell/…) is unchanged.

// copyTileSets splits a layer's placements into per-copy tile sets: copy c
// owns the next Mapping.Crossbars() slots in placement order (Build and the
// sharing pass both lay copies out consecutively), and within each copy the
// tile IDs are deduplicated — a tile holding several of the copy's crossbars
// still sends its partial outputs once per MVM, not once per crossbar.
func copyTileSets(la *accel.LayerAlloc) [][]int {
	per := la.Mapping.Crossbars()
	if per <= 0 {
		per = la.SlotsNeeded()
	}
	copies := la.Copies
	if copies < 1 {
		copies = 1
	}
	sets := make([][]int, 0, copies)
	seen := map[int]bool{}
	var cur []int
	remaining := per
	for _, pl := range la.Placements {
		slots := pl.Slots
		for slots > 0 {
			take := slots
			if take > remaining {
				take = remaining
			}
			if !seen[pl.TileID] {
				seen[pl.TileID] = true
				cur = append(cur, pl.TileID)
			}
			slots -= take
			remaining -= take
			if remaining == 0 {
				sets = append(sets, cur)
				cur = nil
				seen = map[int]bool{}
				remaining = per
			}
		}
	}
	if len(cur) > 0 {
		sets = append(sets, cur)
	}
	return sets
}

// SimulateNoC simulates the plan with mesh-based interconnect pricing. The
// mesh must be at least as wide as the plan's tile count requires.
//
// Per MVM each replicated copy of a layer pays two mesh phases over the
// tiles that copy occupies: a scatter of the input patch (UnfoldedRows
// bytes, the same volume LayerBase charges the input buffer for) from the
// copy's root tile, and a gather of partial outputs (2 bytes per output
// channel) back to it. Copies run concurrently on disjoint tile sets, so
// latency is the worst copy's critical path — not the single-grid path
// divided by the replication factor.
func SimulateNoC(p *accel.Plan, mesh *noc.Mesh) (*Result, error) {
	res, err := Simulate(p)
	if err != nil {
		return nil, err
	}
	maxID := 0
	for _, t := range p.Tiles {
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	if maxID >= mesh.Width*mesh.Width {
		return nil, fmt.Errorf("sim: plan uses tile id %d, mesh holds %d tiles", maxID, mesh.Width*mesh.Width)
	}

	var totalPJDelta, totalNSDelta float64
	for i := range res.Layers {
		lr := &res.Layers[i]
		la := p.Layers[lr.Layer.Index]
		copies := la.Copies
		if copies < 1 {
			copies = 1
		}
		inBytes := float64(lr.Layer.UnfoldedRows())
		outBytes := 2 * float64(lr.Layer.OutC)
		mvmsPerCopy := float64(lr.MVMs) / float64(copies)

		var meshPJ, maxCopyNS float64
		for _, tiles := range copyTileSets(la) {
			scatterPJ, scatterNS, err := mesh.ScatterCost(tiles, inBytes)
			if err != nil {
				return nil, err
			}
			gatherPJ, gatherNS, err := mesh.GatherCost(tiles, outBytes)
			if err != nil {
				return nil, err
			}
			meshPJ += mvmsPerCopy * (scatterPJ + gatherPJ)
			if ns := scatterNS + gatherNS; ns > maxCopyNS {
				maxCopyNS = ns
			}
		}
		newLatency := lr.LatencyNS + mvmsPerCopy*maxCopyNS

		totalPJDelta += meshPJ - lr.Energy.Bus
		totalNSDelta += newLatency - lr.LatencyNS
		lr.Energy.Bus = meshPJ
		lr.EnergyPJ = lr.Energy.Total()
		lr.LatencyNS = newLatency
	}
	res.Energy.Bus = math.Max(0, res.Energy.Bus+totalPJDelta)
	res.EnergyNJ = res.Energy.Total() / 1000
	res.LatencyNS += totalNSDelta
	return res, nil
}
