package sim

import (
	"fmt"
	"math"

	"autohet/internal/accel"
	"autohet/internal/noc"
)

// NoC-aware accounting: SimulateNoC re-prices each layer's inter-tile
// traffic on a 2-D mesh instead of the flat bus constant, making the cost
// placement-dependent. Everything else (ADC/DAC/cell/…) is unchanged.

// SimulateNoC simulates the plan with mesh-based interconnect pricing. The
// mesh must be at least as wide as the plan's tile count requires.
func SimulateNoC(p *accel.Plan, mesh *noc.Mesh) (*Result, error) {
	res, err := Simulate(p)
	if err != nil {
		return nil, err
	}
	maxID := 0
	for _, t := range p.Tiles {
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	if maxID >= mesh.Width*mesh.Width {
		return nil, fmt.Errorf("sim: plan uses tile id %d, mesh holds %d tiles", maxID, mesh.Width*mesh.Width)
	}

	var totalPJDelta, totalNSDelta float64
	for i := range res.Layers {
		lr := &res.Layers[i]
		la := p.Layers[lr.Layer.Index]
		tiles := make([]int, 0, len(la.Placements))
		for _, pl := range la.Placements {
			tiles = append(tiles, pl.TileID)
		}
		// Per MVM, each tile contributes partial outputs (2 bytes per
		// output channel) gathered at the layer's root tile.
		bytesPerTile := 2 * float64(lr.Layer.OutC)
		gatherPJ, gatherNS, err := mesh.GatherCost(tiles, bytesPerTile)
		if err != nil {
			return nil, err
		}
		mvms := float64(lr.MVMs)
		newBus := mvms * gatherPJ
		copies := la.Copies
		if copies < 1 {
			copies = 1
		}
		newLatency := lr.LatencyNS + mvms*gatherNS/float64(copies)

		totalPJDelta += newBus - lr.Energy.Bus
		totalNSDelta += newLatency - lr.LatencyNS
		lr.Energy.Bus = newBus
		lr.EnergyPJ = lr.Energy.Total()
		lr.LatencyNS = newLatency
	}
	res.Energy.Bus = math.Max(0, res.Energy.Bus+totalPJDelta)
	res.EnergyNJ = res.Energy.Total() / 1000
	res.LatencyNS += totalNSDelta
	return res, nil
}
