package sim

import (
	"math"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/xbar"
)

func TestBreakdownSumsToTotal(t *testing.T) {
	m := dnn.VGG16()
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(16, xbar.Square(128)), false)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Energy.Total()/1000-r.EnergyNJ) > 1e-9*r.EnergyNJ {
		t.Fatalf("breakdown total %v nJ != EnergyNJ %v", r.Energy.Total()/1000, r.EnergyNJ)
	}
	var layers Breakdown
	for _, lr := range r.Layers {
		layers.Add(lr.Energy)
		if math.Abs(lr.Energy.Total()-lr.EnergyPJ) > 1e-6 {
			t.Fatalf("layer %s breakdown total %v != EnergyPJ %v", lr.Layer.Name, lr.Energy.Total(), lr.EnergyPJ)
		}
		if lr.Energy.Pool != 0 {
			t.Fatal("mappable layers carry no pooling energy")
		}
	}
	// Whole-model breakdown = layer breakdowns + pooling.
	layers.Pool = r.Energy.Pool
	if math.Abs(layers.Total()-r.Energy.Total()) > 1e-6 {
		t.Fatalf("layer sum %v != model total %v", layers.Total(), r.Energy.Total())
	}
}

// The literature's central observation (and the driver of every energy
// trend in the paper): ADCs dominate crossbar inference energy.
func TestADCDominatesEnergy(t *testing.T) {
	for _, m := range []*dnn.Model{dnn.AlexNet(), dnn.VGG16()} {
		for _, s := range []xbar.Shape{xbar.Square(32), xbar.Square(512), xbar.Rect(576, 512)} {
			p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(m.NumMappable(), s), false)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Simulate(p)
			if err != nil {
				t.Fatal(err)
			}
			share := r.Energy.ADC / r.Energy.Total()
			if share < 0.5 {
				t.Errorf("%s/%v: ADC share %.1f%% below 50%%", m.Name, s, 100*share)
			}
		}
	}
}

func TestPoolEnergyOnlyForPoolingModels(t *testing.T) {
	// The paper's AlexNet has pools; a pool-free FC model must have zero.
	m, err := dnn.NewModel("mlp", 1, 1, 64, []*dnn.Layer{
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 64, OutC: 32, Stride: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(1, xbar.Square(64)), false)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy.Pool != 0 {
		t.Fatalf("pool energy %v on pool-free model", r.Energy.Pool)
	}
	alex, _ := accel.BuildPlan(cfg(), dnn.AlexNet(), accel.Homogeneous(8, xbar.Square(64)), false)
	ra, err := Simulate(alex)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Energy.Pool <= 0 {
		t.Fatal("AlexNet must record pooling energy")
	}
}

func TestBusEnergyOnlyWhenLayerSpansTiles(t *testing.T) {
	// One slot → one tile → no bus traffic.
	p1 := singleLayerPlan(t, 3, 3, 16, xbar.Square(64))
	r1, err := Simulate(p1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Layers[0].Energy.Bus != 0 {
		t.Fatalf("single-tile layer has bus energy %v", r1.Layers[0].Energy.Bus)
	}
	// A big layer spans tiles → bus traffic appears.
	p2 := singleLayerPlan(t, 3, 128, 512, xbar.Square(64))
	r2, err := Simulate(p2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Layers[0].Tiles <= 1 {
		t.Fatal("test layer should span multiple tiles")
	}
	if r2.Layers[0].Energy.Bus <= 0 {
		t.Fatal("multi-tile layer must record bus energy")
	}
}

func TestPowerW(t *testing.T) {
	m := dnn.VGG16()
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(16, xbar.Square(128)), false)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	want := r.EnergyNJ / r.LatencyNS
	if math.Abs(r.PowerW()-want) > 1e-12 {
		t.Fatalf("PowerW = %v, want %v", r.PowerW(), want)
	}
	if r.PowerW() <= 0 || r.PowerW() > 100 {
		t.Fatalf("implausible power %v W", r.PowerW())
	}
	if (&Result{}).PowerW() != 0 {
		t.Fatal("zero-latency power must be 0")
	}
}
