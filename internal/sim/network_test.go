package sim

import (
	"math"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/xbar"
)

func tinyCNN(t *testing.T) *dnn.Model {
	t.Helper()
	m, err := dnn.NewModel("tinycnn", 6, 6, 1, []*dnn.Layer{
		{Name: "c1", Kind: dnn.Conv, K: 3, InC: 1, OutC: 4, Stride: 1, Pad: 1},
		{Name: "p1", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "c2", Kind: dnn.Conv, K: 3, InC: 4, OutC: 8, Stride: 1, Pad: 1},
		{Name: "p2", Kind: dnn.Pool, K: 3, Stride: 3},
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 8, OutC: 5, Stride: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// End-to-end: the quantized crossbar pipeline must track the float
// reference within the error budget of two 8-bit quantizations per layer.
func TestRunInferenceTracksReference(t *testing.T) {
	m := tinyCNN(t)
	for _, shape := range []xbar.Shape{xbar.Square(32), xbar.Rect(36, 32)} {
		p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(m.NumMappable(), shape), true)
		if err != nil {
			t.Fatal(err)
		}
		in := dnn.SyntheticTensor(1, 6, 6, 5)
		ref, err := dnn.RunReference(m, in, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := RunInference(p, in, InferenceOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("output len %d vs %d", len(got), len(ref))
		}
		var refNorm, errNorm float64
		for i := range ref {
			refNorm += ref[i] * ref[i]
			d := got[i] - ref[i]
			errNorm += d * d
		}
		rel := math.Sqrt(errNorm / refNorm)
		if rel > 0.05 {
			t.Fatalf("%v: relative error %.3f exceeds 5%%", shape, rel)
		}
		// Work accounting: one MVM per conv output position plus one per FC.
		wantMVMs := int64(6*6 + 3*3 + 1)
		if stats.MVMs != wantMVMs {
			t.Fatalf("MVMs = %d, want %d", stats.MVMs, wantMVMs)
		}
		if stats.ADCConversions <= 0 {
			t.Fatal("no ADC conversions recorded")
		}
	}
}

// The fast integer path and the bit-exact crossbar path must agree
// *exactly* — same integers, just a 64× cheaper reconstruction.
func TestRunInferenceBitExactEqualsFast(t *testing.T) {
	m := tinyCNN(t)
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(m.NumMappable(), xbar.Square(32)), false)
	if err != nil {
		t.Fatal(err)
	}
	in := dnn.SyntheticTensor(1, 6, 6, 6)
	fast, fastStats, err := RunInference(p, in, InferenceOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	exact, exactStats, err := RunInference(p, in, InferenceOptions{Seed: 6, BitExact: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if math.Abs(fast[i]-exact[i]) > 1e-9 {
			t.Fatalf("output %d: fast %v, bit-exact %v", i, fast[i], exact[i])
		}
	}
	if fastStats.ADCConversions != exactStats.ADCConversions {
		t.Fatalf("ADC accounting diverged: %d vs %d", fastStats.ADCConversions, exactStats.ADCConversions)
	}
}

func TestRunInferenceHeterogeneousStrategy(t *testing.T) {
	// Mixing shapes across layers must not change results.
	m := tinyCNN(t)
	st := accel.Strategy{xbar.Square(32), xbar.Rect(36, 32), xbar.Square(64)}
	p, err := accel.BuildPlan(cfg(), m, st, true)
	if err != nil {
		t.Fatal(err)
	}
	in := dnn.SyntheticTensor(1, 6, 6, 7)
	het, _, err := RunInference(p, in, InferenceOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	homo, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(3, xbar.Square(128)), false)
	if err != nil {
		t.Fatal(err)
	}
	hres, _, err := RunInference(homo, in, InferenceOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range het {
		if math.Abs(het[i]-hres[i]) > 1e-9 {
			t.Fatalf("strategy changed functional result: %v vs %v", het[i], hres[i])
		}
	}
}

func TestRunInferenceRejectsWrongInput(t *testing.T) {
	m := tinyCNN(t)
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(3, xbar.Square(32)), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunInference(p, dnn.NewTensor(1, 5, 5), InferenceOptions{}); err == nil {
		t.Fatal("wrong input shape must error")
	}
}

func TestRunInferenceFCOnlyModel(t *testing.T) {
	m, err := dnn.NewModel("mlp", 1, 1, 8, []*dnn.Layer{
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 8, OutC: 16, Stride: 1},
		{Name: "f2", Kind: dnn.FC, K: 1, InC: 16, OutC: 4, Stride: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(2, xbar.Square(32)), false)
	if err != nil {
		t.Fatal(err)
	}
	in := dnn.SyntheticTensor(8, 1, 1, 8)
	got, _, err := RunInference(p, in, InferenceOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dnn.RunReference(m, in, 8)
	if err != nil {
		t.Fatal(err)
	}
	var refNorm, errNorm float64
	for i := range ref {
		refNorm += ref[i] * ref[i]
		d := got[i] - ref[i]
		errNorm += d * d
	}
	if rel := math.Sqrt(errNorm / refNorm); rel > 0.08 {
		t.Fatalf("relative error %.3f exceeds 8%% (small sums amplify 8-bit noise)", rel)
	}
}

// Mixed precision end to end: a 4-bit plan still tracks the reference, with
// more quantization error than 8-bit, and its fast path stays bit-identical
// to the bit-serial engine.
func TestRunInferenceMixedPrecision(t *testing.T) {
	m := tinyCNN(t)
	prec := accel.Precision{4, 6, 8}
	p, err := accel.Build(cfg(), m, accel.PlanSpec{
		Strategy:  accel.Homogeneous(3, xbar.Square(32)),
		Precision: prec,
		Shared:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := dnn.SyntheticTensor(1, 6, 6, 9)
	ref, err := dnn.RunReference(m, in, 9)
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := RunInference(p, in, InferenceOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	exact, _, err := RunInference(p, in, InferenceOptions{Seed: 9, BitExact: true})
	if err != nil {
		t.Fatal(err)
	}
	var refNorm, errNorm float64
	for i := range ref {
		if math.Abs(fast[i]-exact[i]) > 1e-9 {
			t.Fatalf("output %d: fast %v vs bit-exact %v", i, fast[i], exact[i])
		}
		refNorm += ref[i] * ref[i]
		d := fast[i] - ref[i]
		errNorm += d * d
	}
	mixedErr := math.Sqrt(errNorm / refNorm)
	if mixedErr > 0.25 {
		t.Fatalf("mixed-precision error %v too large", mixedErr)
	}
	// 8-bit plan must be more accurate.
	p8, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(3, xbar.Square(32)), true)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := RunInference(p8, in, InferenceOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var e8 float64
	for i := range ref {
		d := full[i] - ref[i]
		e8 += d * d
	}
	if math.Sqrt(e8/refNorm) >= mixedErr {
		t.Fatal("8-bit plan should be more accurate than mixed 4/6/8")
	}
}

// Per-column scales must not hurt end-to-end accuracy and typically help.
func TestPerColumnScalesAccuracy(t *testing.T) {
	m := tinyCNN(t)
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(3, xbar.Square(32)), true)
	if err != nil {
		t.Fatal(err)
	}
	in := dnn.SyntheticTensor(1, 6, 6, 23)
	ref, err := dnn.RunReference(m, in, 23)
	if err != nil {
		t.Fatal(err)
	}
	relErr := func(perCol bool) float64 {
		got, _, err := RunInference(p, in, InferenceOptions{Seed: 23, PerColumnScales: perCol})
		if err != nil {
			t.Fatal(err)
		}
		var e, n float64
		for i := range ref {
			d := got[i] - ref[i]
			e += d * d
			n += ref[i] * ref[i]
		}
		return math.Sqrt(e / n)
	}
	tensor := relErr(false)
	perCol := relErr(true)
	// Synthetic weights have uniform per-kernel magnitudes, so per-column
	// scales buy little here (their win on magnitude-skewed kernels is
	// covered by the quant unit test); both paths must stay in the same
	// small-error regime.
	if perCol > 2*tensor || perCol > 0.05 {
		t.Fatalf("per-column error %v out of regime (per-tensor %v)", perCol, tensor)
	}
}
