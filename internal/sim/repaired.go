package sim

import (
	"fmt"
	"math"

	"autohet/internal/accel"
	"autohet/internal/fault"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/repair"
)

// Repaired execution: the fault-aware pipeline of ExecuteMVMFaulty preceded
// by a detect-and-repair pass (package repair). The controller march-tests
// the layer's crossbars, remaps detected faulty columns onto the plan's
// provisioned spares, masks what it cannot remap, and only then serves MVMs
// from the repaired arrays. When spare capacity covers the fault map the
// result is bit-exact with the ideal ExecuteMVM (read noise aside).

// RepairedLayer is the outcome of one detect-and-repair pass over a layer:
// the bit planes actually stored after remapping/masking, and the pass
// statistics. It is valid until the fault model changes, so callers serving
// many MVMs compute it once.
type RepairedLayer struct {
	Planes []*quant.BitPlane
	Stats  repair.Stats
}

// LayerRegions returns the per-crossbar windows of the layer's unfolded
// weight matrix under its mapping — the repair granularity: one spare-column
// budget per window, whole-window relocation onto a spare crossbar.
func LayerRegions(la *accel.LayerAlloc) []repair.Region {
	m := la.Mapping
	cols := la.Layer.UnfoldedCols()
	var regions []repair.Region
	for band := 0; band < m.GridRows; band++ {
		r0, r1 := bandRows(m, band)
		if r0 >= r1 {
			continue
		}
		for cg := 0; cg < m.GridCols; cg++ {
			c0 := cg * la.Shape.C
			c1 := min(c0+la.Shape.C, cols)
			regions = append(regions, repair.Region{R0: r0, R1: r1, C0: c0, C1: c1})
		}
	}
	return regions
}

// RepairLayer runs one detect-and-repair pass for the layer under the fault
// model: march-test detection (with the policy's miss rate), spare-column
// and spare-crossbar remapping within the policy's provision, best-effort
// masking of the remainder.
func RepairLayer(la *accel.LayerAlloc, w *quant.Matrix, fm *fault.Model, pol repair.Policy) (*RepairedLayer, error) {
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	key := int64(la.Layer.Index + 1)
	ideal := w.Slices()
	if fm.CellFaultRate() == 0 {
		return &RepairedLayer{Planes: ideal, Stats: repair.Stats{FullyRepaired: true}}, nil
	}
	faulted := fm.ApplyStuckAt(ideal, key)
	truth, detected := pol.Detect(fm, key, w.Rows, w.Cols, len(ideal))
	planes, stats, err := repair.Apply(ideal, faulted, detected, truth, LayerRegions(la), pol.Provision)
	if err != nil {
		return nil, err
	}
	return &RepairedLayer{Planes: planes, Stats: stats}, nil
}

// ExecuteMVMRepaired runs one MVM on the mapped grid under a fault model
// after a detect-and-repair pass. A nil or zero model reproduces ExecuteMVM
// exactly; so does any fault map the policy's spares fully cover (asserted
// by property test).
func ExecuteMVMRepaired(cfg hw.Config, la *accel.LayerAlloc, w *quant.Matrix, in *quant.Input, fm *fault.Model, pol repair.Policy) ([]float64, ExecStats, repair.Stats, error) {
	l := la.Layer
	if l.GroupCount() > 1 {
		return nil, ExecStats{}, repair.Stats{}, fmt.Errorf("sim: functional execution of grouped convolutions is not supported (layer %s)", l.Name)
	}
	rows, cols := l.UnfoldedRows(), l.UnfoldedCols()
	if w.Rows != rows || w.Cols != cols {
		return nil, ExecStats{}, repair.Stats{}, shapeErr(w.Rows, w.Cols, rows, cols)
	}
	if in.N != rows {
		return nil, ExecStats{}, repair.Stats{}, lengthErr(in.N, rows)
	}
	rl, err := RepairLayer(la, w, fm, pol)
	if err != nil {
		return nil, ExecStats{}, repair.Stats{}, err
	}
	out, stats := execRepairedBitSerial(cfg, la, rl, w, in, fm)
	return out, stats, rl.Stats, nil
}

// execRepairedBitSerial runs the bit-serial, bit-sliced pipeline over
// already-repaired planes, with the fault model contributing only read noise
// (its stuck-at half is baked into the planes).
func execRepairedBitSerial(cfg hw.Config, la *accel.LayerAlloc, rl *RepairedLayer, w *quant.Matrix, in *quant.Input, fm *fault.Model) ([]float64, ExecStats) {
	m := la.Mapping
	cols := la.Layer.UnfoldedCols()
	noise := fm.Noise(int64(la.Layer.Index + 1))
	out := make([]float64, cols)
	var stats ExecStats
	for band := 0; band < m.GridRows; band++ {
		r0, r1 := bandRows(m, band)
		if r0 >= r1 {
			continue
		}
		for cg := 0; cg < m.GridCols; cg++ {
			c0 := cg * la.Shape.C
			c1 := min(c0+la.Shape.C, cols)
			stats.Crossbars++
			execCrossbarNoisy(cfg, rl.Planes, in, r0, r1, c0, c1, out, noise, &stats)
		}
	}
	corr := w.Correction(in)
	for j := range out {
		out[j] -= corr
	}
	return out, stats
}

// repairedIntegerMVM is the fast repaired path: the repaired planes served
// through the integer engine, read noise folded in as one aggregate sample
// per (plane, column) — bit-identical to ExecuteMVMRepaired when
// ReadNoiseSigma is 0.
func repairedIntegerMVM(cfg hw.Config, layerKey int64, rl *RepairedLayer, w *quant.Matrix, in *quant.Input, fm *fault.Model) []float64 {
	noise := fm.Noise(layerKey)
	var inputBitsVar float64
	for ib := 0; ib < cfg.InputBits; ib++ {
		inputBitsVar += math.Pow(4, float64(ib))
	}

	out := make([]float64, w.Cols)
	tmp := make([]float64, w.Cols)
	xf := make([]float64, w.Rows)
	for i, u := range in.U {
		xf[i] = float64(u)
	}
	for _, p := range rl.Planes {
		p.MulVec(tmp, xf)
		shift := float64(int64(1) << uint(p.Bit))
		noiseScale := shift * math.Sqrt(inputBitsVar)
		for j := range out {
			out[j] += shift * tmp[j]
			if fm != nil && fm.ReadNoiseSigma > 0 {
				out[j] += noiseScale * noise()
			}
		}
	}
	corr := w.Correction(in)
	for j := range out {
		out[j] -= corr
	}
	return out
}
