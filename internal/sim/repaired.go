package sim

import (
	"autohet/internal/accel"
	"autohet/internal/fault"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/repair"
)

// Repaired execution: the fault-aware pipeline of ExecuteMVMFaulty preceded
// by a detect-and-repair pass (package repair). The controller march-tests
// the layer's crossbars, remaps detected faulty columns onto the plan's
// provisioned spares, masks what it cannot remap, and only then serves MVMs
// from the repaired arrays. When spare capacity covers the fault map the
// result is bit-exact with the ideal ExecuteMVM (read noise aside).

// RepairedLayer is the outcome of one detect-and-repair pass over a layer:
// the bit planes actually stored after remapping/masking (in both byte and
// word-packed form), and the pass statistics. It is valid until the fault
// model changes, so callers serving many MVMs compute it once.
type RepairedLayer struct {
	Planes []*quant.BitPlane
	Packed *quant.PackedMatrix
	Stats  repair.Stats
}

// LayerRegions returns the per-crossbar windows of the layer's unfolded
// weight matrix under its mapping — the repair granularity: one spare-column
// budget per window, whole-window relocation onto a spare crossbar.
func LayerRegions(la *accel.LayerAlloc) []repair.Region {
	var regions []repair.Region
	forEachCrossbar(la, func(r0, r1, c0, c1 int) {
		regions = append(regions, repair.Region{R0: r0, R1: r1, C0: c0, C1: c1})
	})
	return regions
}

// RepairLayer runs one detect-and-repair pass for the layer under the fault
// model: march-test detection (with the policy's miss rate), spare-column
// and spare-crossbar remapping within the policy's provision, best-effort
// masking of the remainder.
func RepairLayer(la *accel.LayerAlloc, w *quant.Matrix, fm *fault.Model, pol repair.Policy) (*RepairedLayer, error) {
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	key := int64(la.Layer.Index + 1)
	ideal := w.Planes()
	if fm.CellFaultRate() == 0 {
		return &RepairedLayer{Planes: ideal, Packed: w.Packed(),
			Stats: repair.Stats{FullyRepaired: true}}, nil
	}
	faulted := fm.ApplyStuckAt(ideal, key)
	truth, detected := pol.Detect(fm, key, w.Rows, w.Cols, len(ideal))
	planes, stats, err := repair.Apply(ideal, faulted, detected, truth, LayerRegions(la), pol.Provision)
	if err != nil {
		return nil, err
	}
	return &RepairedLayer{Planes: planes, Packed: quant.PackPlanes(planes), Stats: stats}, nil
}

// ExecuteMVMRepaired runs one MVM on the mapped grid under a fault model
// after a detect-and-repair pass. A nil or zero model reproduces ExecuteMVM
// exactly; so does any fault map the policy's spares fully cover (asserted
// by property test).
func ExecuteMVMRepaired(cfg hw.Config, la *accel.LayerAlloc, w *quant.Matrix, in *quant.Input, fm *fault.Model, pol repair.Policy) ([]float64, ExecStats, repair.Stats, error) {
	if err := checkMVMShapes(la, w, in); err != nil {
		return nil, ExecStats{}, repair.Stats{}, err
	}
	rl, err := RepairLayer(la, w, fm, pol)
	if err != nil {
		return nil, ExecStats{}, repair.Stats{}, err
	}
	out, stats := execRepairedBitSerial(cfg, la, rl, w, in, fm)
	return out, stats, rl.Stats, nil
}

// execRepairedBitSerial runs the packed bit-serial pipeline over
// already-repaired planes, with the fault model contributing only read noise
// (its stuck-at half is baked into the planes).
func execRepairedBitSerial(cfg hw.Config, la *accel.LayerAlloc, rl *RepairedLayer, w *quant.Matrix, in *quant.Input, fm *fault.Model) ([]float64, ExecStats) {
	noise := fm.Noise(int64(la.Layer.Index + 1))
	out := make([]float64, la.Layer.UnfoldedCols())
	var stats ExecStats
	execPackedGrid(cfg, la, rl.Packed, in, noise, out, &stats)
	applyCorrection(out, w, in)
	return out, stats
}

// repairedIntegerMVM is the fast repaired path: the repaired planes served
// through the packed integer engine, read noise folded in as one aggregate
// sample per (plane, column) — bit-identical to ExecuteMVMRepaired when
// ReadNoiseSigma is 0.
func repairedIntegerMVM(cfg hw.Config, layerKey int64, rl *RepairedLayer, w *quant.Matrix, in *quant.Input, fm *fault.Model) []float64 {
	out := make([]float64, w.Cols)
	packedAggregateMVM(cfg, rl.Packed, w, in, fm, fm.Noise(layerKey), out)
	return out
}
