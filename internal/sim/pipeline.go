package sim

import (
	"fmt"

	"autohet/internal/accel"
)

// Inter-layer pipelining (PipeLayer, HPCA'17 — the paper's reference [21]):
// because every layer holds its weights in its own crossbars, consecutive
// inputs can flow through the accelerator with all layers busy at once.
// Steady-state throughput is then set by the slowest layer (the pipeline
// bottleneck), and a batch's latency is one pipeline fill plus one
// bottleneck interval per additional input.

// PipelineResult describes batched, pipelined execution of a plan.
type PipelineResult struct {
	Batch int
	// FillNS is the time for the first input to traverse all layers (the
	// sequential single-inference latency).
	FillNS float64
	// IntervalNS is the steady-state initiation interval — the bottleneck
	// layer's latency.
	IntervalNS float64
	// BatchLatencyNS is the time to complete the whole batch:
	// Fill + (Batch−1)·Interval.
	BatchLatencyNS float64
	// Throughput is the steady-state rate in inferences per second.
	Throughput float64
	// Bottleneck is the slowest layer.
	Bottleneck *LayerResult
	// Speedup is sequential batch time over pipelined batch time.
	Speedup float64
}

// SimulateBatch prices a pipelined batch of the given size on the plan.
func SimulateBatch(p *accel.Plan, batch int) (*PipelineResult, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("sim: batch %d", batch)
	}
	r, err := Simulate(p)
	if err != nil {
		return nil, err
	}
	return PipelineFromResult(r, batch), nil
}

// PipelineFromResult derives pipelined timing from an existing per-layer
// simulation (avoids re-simulating when the caller already has a Result).
func PipelineFromResult(r *Result, batch int) *PipelineResult {
	pr := &PipelineResult{Batch: batch, FillNS: r.LatencyNS}
	for i := range r.Layers {
		lr := &r.Layers[i]
		if pr.Bottleneck == nil || lr.LatencyNS > pr.Bottleneck.LatencyNS {
			pr.Bottleneck = lr
		}
	}
	if pr.Bottleneck != nil {
		pr.IntervalNS = pr.Bottleneck.LatencyNS
	}
	pr.BatchLatencyNS = pr.FillNS + float64(batch-1)*pr.IntervalNS
	if pr.IntervalNS > 0 {
		pr.Throughput = 1e9 / pr.IntervalNS
	}
	sequential := float64(batch) * r.LatencyNS
	if pr.BatchLatencyNS > 0 {
		pr.Speedup = sequential / pr.BatchLatencyNS
	}
	return pr
}

// BatchCost expresses the pipelined batch latency as the linear service
// model the serving layers charge for a formed batch of k inferences:
//
//	BatchLatency(k) = Fill + (k−1)·Interval = base + k·per
//
// with base = Fill − Interval and per = Interval. fleet.ReplicaSpec.Batch
// and the DES service model consume exactly this pair, so a replica's
// dynamic batch of size k is priced as one pipelined (batched-kernel) pass,
// not k independent inferences.
func (pr *PipelineResult) BatchCost() (baseNS, perInputNS float64) {
	return pr.FillNS - pr.IntervalNS, pr.IntervalNS
}

// String summarizes the pipelined run.
func (pr *PipelineResult) String() string {
	name := "?"
	if pr.Bottleneck != nil {
		name = pr.Bottleneck.Layer.Name
	}
	return fmt.Sprintf("batch %d: %.4g ns total (fill %.4g, interval %.4g via %s), %.4g inf/s, %.2fx over sequential",
		pr.Batch, pr.BatchLatencyNS, pr.FillNS, pr.IntervalNS, name, pr.Throughput, pr.Speedup)
}
