package sim

import (
	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/quant"
	"autohet/internal/repair"
)

// Whole-network functional inference: stream a feature map through the
// mapped accelerator layer by layer, quantizing activations, performing
// each sliding-window MVM on the layer's crossbar grid, and applying ReLU
// and pooling between layers. This is the end-to-end check that the
// heterogeneous mapping computes the same network the float reference
// (dnn.RunReference) defines, up to 8-bit quantization error.
//
// The execution machinery lives in Engine (engine.go): per-layer caches of
// quantized weights and packed/faulted/repaired planes, word-packed
// popcount kernels, and parallel patch streaming. RunInference wraps a
// transient Engine; callers serving many inferences over one plan should
// hold an Engine so the caches persist across calls.

// InferenceOptions configures RunInference.
type InferenceOptions struct {
	// Seed selects the synthetic weights; it must match the seed used for
	// the reference run being compared against.
	Seed int64
	// BitExact switches the per-MVM engine from the fast integer path to
	// the full bit-sliced, bit-serial crossbar execution (ExecuteMVM).
	// Both produce identical integers (asserted in tests); BitExact
	// additionally exercises the plane/cycle structure at the cost of one
	// popcount word per 64 rows per (cycle, plane, bitline).
	BitExact bool
	// Faults, when non-nil, injects ReRAM device non-idealities (stuck-at
	// cells, read noise) into every MVM. Stuck-at faults are exact on both
	// engines; read noise is per-conversion under BitExact and folded into
	// a distribution-equivalent aggregate on the fast path.
	Faults *fault.Model
	// PerColumnScales quantizes each layer's weights with one scale per
	// output column (per-kernel), tightening quantization error at no
	// hardware cost (the scale folds into the column's shift-and-add).
	PerColumnScales bool
	// Repair, when non-nil, runs a detect-and-repair pass (march-test
	// detection, spare remapping, bounded-error masking — package repair) over
	// every layer's stuck-at fault map before serving MVMs. A zero Provision
	// in the policy draws on the plan's provisioned spares
	// (accel.Plan.Spares) instead. Ignored when Faults injects no stuck-at
	// cells.
	Repair *repair.Policy
	// KernelBatch caps how many MVMs (conv patches, or FC members across a
	// RunBatch) are quantized, packed, and executed per batched-kernel call.
	// Zero selects DefaultKernelBatch. The choice never changes results —
	// batch members are independent and bit-exact — only how far each packed
	// weight-word load amortizes.
	KernelBatch int
}

// InferenceStats aggregates the work one inference (or RunBatch) performed.
type InferenceStats struct {
	MVMs           int64
	ADCConversions int64
	// KernelBatches counts batched-kernel invocations; MVMs/KernelBatches is
	// the realized mean kernel batch size.
	KernelBatches int64
	// MaxKernelBatch is the largest batch any single kernel call served.
	MaxKernelBatch int
}

// merge folds another accumulator (e.g. one worker's) into st.
func (st *InferenceStats) merge(o InferenceStats) {
	st.MVMs += o.MVMs
	st.ADCConversions += o.ADCConversions
	st.KernelBatches += o.KernelBatches
	if o.MaxKernelBatch > st.MaxKernelBatch {
		st.MaxKernelBatch = o.MaxKernelBatch
	}
}

// RunInference executes one input through the plan's model on the mapped
// crossbars and returns the output vector (logits for the zoo models).
// Each call builds a transient Engine; use NewEngine directly to keep the
// per-layer caches warm across many inferences.
func RunInference(p *accel.Plan, input *dnn.Tensor, opts InferenceOptions) ([]float64, InferenceStats, error) {
	return NewEngine(p).Run(input, opts)
}

// LayerMVM executes one quantized MVM for layer la on one input patch using
// the fast integer path and returns the dequantized outputs. It is the
// building block the Global Controller interpreter (package isa) drives.
func LayerMVM(p *accel.Plan, la *accel.LayerAlloc, w *quant.Matrix, patch []float64) ([]float64, error) {
	in := quant.QuantizeInput(patch)
	if in.N != w.Rows {
		return nil, lengthErr(in.N, w.Rows)
	}
	out := make([]float64, w.Cols)
	integerMVMInto(out, make([]int64, w.Cols), w, in.U)
	for j := range out {
		out[j] = w.ScaleFor(j) * in.Scale * out[j]
	}
	return out, nil
}

// integerMVM computes the exact integer product qᵀ·u — the scalar form the
// engines are asserted against in tests.
func integerMVM(w *quant.Matrix, in *quant.Input) []float64 {
	out := make([]float64, w.Cols)
	integerMVMInto(out, make([]int64, w.Cols), w, in.U)
	return out
}
