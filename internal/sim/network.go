package sim

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/quant"
	"autohet/internal/repair"
)

// Whole-network functional inference: stream a feature map through the
// mapped accelerator layer by layer, quantizing activations, performing
// each sliding-window MVM on the layer's crossbar grid, and applying ReLU
// and pooling between layers. This is the end-to-end check that the
// heterogeneous mapping computes the same network the float reference
// (dnn.RunReference) defines, up to 8-bit quantization error.

// InferenceOptions configures RunInference.
type InferenceOptions struct {
	// Seed selects the synthetic weights; it must match the seed used for
	// the reference run being compared against.
	Seed int64
	// BitExact switches the per-MVM engine from the fast integer path to
	// the full bit-sliced, bit-serial crossbar execution (ExecuteMVM).
	// Both produce identical integers (asserted in tests); BitExact
	// additionally exercises the plane/cycle structure and costs ~64× the
	// arithmetic.
	BitExact bool
	// Faults, when non-nil, injects ReRAM device non-idealities (stuck-at
	// cells, read noise) into every MVM. Stuck-at faults are exact on both
	// engines; read noise is per-conversion under BitExact and folded into
	// a distribution-equivalent aggregate on the fast path.
	Faults *fault.Model
	// PerColumnScales quantizes each layer's weights with one scale per
	// output column (per-kernel), tightening quantization error at no
	// hardware cost (the scale folds into the column's shift-and-add).
	PerColumnScales bool
	// Repair, when non-nil, runs a detect-and-repair pass (march-test
	// detection, spare remapping, bounded-error masking — package repair) over
	// every layer's stuck-at fault map before serving MVMs. A zero Provision
	// in the policy draws on the plan's provisioned spares
	// (accel.Plan.Spares) instead. Ignored when Faults injects no stuck-at
	// cells.
	Repair *repair.Policy
}

// InferenceStats aggregates the work one inference performed.
type InferenceStats struct {
	MVMs           int64
	ADCConversions int64
}

// repairCache memoizes per-layer detect-and-repair passes across the many
// MVMs of one RunInference: the fault map is fixed for the run, so the
// controller repairs each layer once, not once per sliding window.
type repairCache struct {
	layers map[int]*RepairedLayer
}

// repairFor resolves the effective policy (plan spares when the policy
// provisions none) and returns the layer's repaired planes, memoized.
func (c *repairCache) repairFor(p *accel.Plan, la *accel.LayerAlloc, w *quant.Matrix, opts InferenceOptions) (*RepairedLayer, error) {
	if c != nil {
		if rl, ok := c.layers[la.Layer.Index]; ok {
			return rl, nil
		}
	}
	pol := *opts.Repair
	if pol.Provision.Zero() {
		pol.Provision = p.RepairBudget(la)
	}
	rl, err := RepairLayer(la, w, opts.Faults, pol)
	if err != nil {
		return nil, err
	}
	if c != nil {
		if c.layers == nil {
			c.layers = map[int]*RepairedLayer{}
		}
		c.layers[la.Layer.Index] = rl
	}
	return rl, nil
}

// RunInference executes one input through the plan's model on the mapped
// crossbars and returns the output vector (logits for the zoo models).
func RunInference(p *accel.Plan, input *dnn.Tensor, opts InferenceOptions) ([]float64, InferenceStats, error) {
	m := p.Model
	if input.C != m.InC || input.H != m.InH || input.W != m.InW {
		return nil, InferenceStats{}, fmt.Errorf("sim: input %dx%dx%d, model %q wants %dx%dx%d",
			input.C, input.H, input.W, m.Name, m.InC, m.InH, m.InW)
	}
	var stats InferenceStats
	rc := &repairCache{}
	cur := input
	var flat []float64
	mappables := m.Mappable()
	for _, l := range mappables {
		if l.GroupCount() > 1 {
			return nil, stats, fmt.Errorf("sim: functional inference does not support grouped convolutions (layer %s); metrics via Simulate do", l.Name)
		}
	}
	last := mappables[len(mappables)-1]
	// Quantized weights per mappable layer, built on demand.
	qw := make([]*quant.Matrix, len(mappables))
	weightsFor := func(l *dnn.Layer) *quant.Matrix {
		if qw[l.Index] == nil {
			bits := p.Layers[l.Index].WeightBits
			if bits < 1 {
				bits = p.Cfg.WeightBits
			}
			raw := dnn.SyntheticWeights(l, opts.Seed)
			if opts.PerColumnScales {
				qw[l.Index] = quant.QuantizeWeightsPerColumn(raw, bits)
			} else {
				qw[l.Index] = quant.QuantizeWeightsN(raw, bits)
			}
		}
		return qw[l.Index]
	}

	for _, l := range m.Layers {
		switch l.Kind {
		case dnn.Conv:
			la := p.Layers[l.Index]
			w := weightsFor(l)
			out := dnn.NewTensor(l.OutC, l.OutH, l.OutW)
			for oy := 0; oy < l.OutH; oy++ {
				for ox := 0; ox < l.OutW; ox++ {
					y, err := mvm(p, la, w, cur.Patch(l, oy, ox), opts, &stats, rc)
					if err != nil {
						return nil, stats, err
					}
					for c, v := range y {
						out.Set(c, oy, ox, v)
					}
				}
			}
			cur = out
			if l != last {
				dnn.ReLU(cur.Data)
			}
		case dnn.Pool:
			cur = dnn.PoolMaxRef(l, cur)
		case dnn.FC:
			if flat == nil {
				flat = cur.Flatten()
			}
			la := p.Layers[l.Index]
			w := weightsFor(l)
			y, err := mvm(p, la, w, flat, opts, &stats, rc)
			if err != nil {
				return nil, stats, err
			}
			flat = y
			if l != last {
				dnn.ReLU(flat)
			}
		}
	}
	if flat == nil {
		flat = cur.Flatten()
	}
	return flat, stats, nil
}

// LayerMVM executes one quantized MVM for layer la on one input patch using
// the fast integer path and returns the dequantized outputs. It is the
// building block the Global Controller interpreter (package isa) drives.
func LayerMVM(p *accel.Plan, la *accel.LayerAlloc, w *quant.Matrix, patch []float64) ([]float64, error) {
	var stats InferenceStats
	return mvm(p, la, w, patch, InferenceOptions{}, &stats, nil)
}

// mvm quantizes one input patch, runs it through the layer's crossbar grid,
// and dequantizes the outputs back to float.
func mvm(p *accel.Plan, la *accel.LayerAlloc, w *quant.Matrix, patch []float64, opts InferenceOptions, stats *InferenceStats, rc *repairCache) ([]float64, error) {
	in := quant.QuantizeInput(patch)
	var ints []float64
	switch {
	case opts.Repair != nil && opts.Faults.CellFaultRate() > 0:
		rl, err := rc.repairFor(p, la, w, opts)
		if err != nil {
			return nil, err
		}
		if opts.BitExact {
			out, execStats := execRepairedBitSerial(p.Cfg, la, rl, w, in, opts.Faults)
			ints = out
			stats.ADCConversions += execStats.ADCConversions
		} else {
			ints = repairedIntegerMVM(p.Cfg, int64(la.Layer.Index+1), rl, w, in, opts.Faults)
			stats.ADCConversions += int64(la.Mapping.ActiveCols) *
				int64(w.PlaneCount()) * int64(p.Cfg.InputBits)
		}
	case opts.BitExact && !opts.Faults.Zero():
		out, execStats, err := ExecuteMVMFaulty(p.Cfg, la, w, in, opts.Faults)
		if err != nil {
			return nil, err
		}
		ints = out
		stats.ADCConversions += execStats.ADCConversions
	case opts.BitExact:
		out, execStats, err := ExecuteMVM(p.Cfg, la, w, in)
		if err != nil {
			return nil, err
		}
		ints = out
		stats.ADCConversions += execStats.ADCConversions
	case !opts.Faults.Zero():
		if err := opts.Faults.Validate(); err != nil {
			return nil, err
		}
		ints = faultyIntegerMVM(p.Cfg, int64(la.Layer.Index+1), w, in, opts.Faults)
		stats.ADCConversions += int64(la.Mapping.ActiveCols) *
			int64(w.PlaneCount()) * int64(p.Cfg.InputBits)
	default:
		ints = integerMVM(w, in)
		stats.ADCConversions += int64(la.Mapping.ActiveCols) *
			int64(w.PlaneCount()) * int64(p.Cfg.InputBits)
	}
	stats.MVMs++
	out := make([]float64, len(ints))
	for j, v := range ints {
		out[j] = w.ScaleFor(j) * in.Scale * v
	}
	return out, nil
}

// integerMVM is the fast path: the exact integer product qᵀ·u the analog
// pipeline reconstructs (proved equal to ExecuteMVM in tests).
func integerMVM(w *quant.Matrix, in *quant.Input) []float64 {
	out := make([]float64, w.Cols)
	for i := 0; i < w.Rows; i++ {
		u := float64(in.U[i])
		if u == 0 {
			continue
		}
		row := w.Q[i*w.Cols : (i+1)*w.Cols]
		for j, q := range row {
			out[j] += u * float64(q)
		}
	}
	return out
}
