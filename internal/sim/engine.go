package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/repair"
)

// Engine serves repeated functional inferences over one plan. It memoizes
// every per-layer derivation the per-patch loop used to redo — quantized
// weights per (seed, per-column) choice, packed bit planes (on the matrices
// themselves), stuck-at-faulted packed planes per fault model, and
// detect-and-repair passes per (fault model, policy) — and streams
// independent conv patches through a bounded worker pool. Results are
// bit-identical to the one-shot RunInference path (which is now a thin
// wrapper over a transient Engine): patches write disjoint output cells,
// each MVM's noise stream is keyed per layer exactly as before, and stats
// are aggregated race-free. Safe for concurrent use.
type Engine struct {
	p *accel.Plan

	mu       sync.Mutex
	weights  map[weightKey][]*quant.Matrix
	faulted  map[faultKey]*quant.PackedMatrix
	repaired map[repairKey]*RepairedLayer

	// scratchMu guards a free list of batch scratch buffers reused across
	// chunks, layers, and inferences — a plain list rather than sync.Pool so
	// the warm path's zero-allocation invariant cannot be voided by a GC
	// cycle emptying the pool mid-measurement.
	scratchMu   sync.Mutex
	scratchFree []*batchScratch
}

type weightKey struct {
	seed   int64
	perCol bool
}

type faultKey struct {
	layer int
	model fault.Model
}

type repairKey struct {
	layer  int
	model  fault.Model
	policy repair.Policy
}

// NewEngine binds an engine to a plan.
func NewEngine(p *accel.Plan) *Engine {
	return &Engine{
		p:        p,
		weights:  map[weightKey][]*quant.Matrix{},
		faulted:  map[faultKey]*quant.PackedMatrix{},
		repaired: map[repairKey]*RepairedLayer{},
	}
}

// minParallelPatches is the conv size below which patch streaming stays
// sequential — tiny layers finish before a worker pool spins up.
const minParallelPatches = 64

// DefaultKernelBatch is the kernel batch size used when
// InferenceOptions.KernelBatch is zero: big enough that the batched popcount
// kernels amortize each weight-word load ~32×8 ways, small enough that every
// AlexNet conv layer still splits into more chunks than typical core counts.
const DefaultKernelBatch = 32

// pairMinBatch is the kernel batch size at which modeFast switches from the
// zero-skipping scalar integer kernel to the paired-column word-packed
// kernel. Below it the pair matrix's 4-bytes-per-cell stream costs more than
// the two-MACs-per-multiply saves; at and above it each packed weight word
// amortizes across the batch.
const pairMinBatch = 4

// getScratch pops a warm batch scratch off the engine's free list (or
// allocates the first time). putScratch returns it.
func (e *Engine) getScratch() *batchScratch {
	e.scratchMu.Lock()
	defer e.scratchMu.Unlock()
	if n := len(e.scratchFree); n > 0 {
		s := e.scratchFree[n-1]
		e.scratchFree = e.scratchFree[:n-1]
		return s
	}
	return &batchScratch{pb: &quant.PackedBatch{}}
}

func (e *Engine) putScratch(s *batchScratch) {
	e.scratchMu.Lock()
	defer e.scratchMu.Unlock()
	e.scratchFree = append(e.scratchFree, s)
}

// weightsFor returns the layer's quantized weight matrix under opts,
// memoized across calls and inferences.
func (e *Engine) weightsFor(l *dnn.Layer, opts InferenceOptions) *quant.Matrix {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := weightKey{seed: opts.Seed, perCol: opts.PerColumnScales}
	qw := e.weights[k]
	if qw == nil {
		qw = make([]*quant.Matrix, len(e.p.Layers))
		e.weights[k] = qw
	}
	if qw[l.Index] == nil {
		simWeightsMiss.Inc()
		start := time.Now()
		bits := e.p.Layers[l.Index].WeightBits
		if bits < 1 {
			bits = e.p.Cfg.WeightBits
		}
		raw := dnn.SyntheticWeights(l, opts.Seed)
		if opts.PerColumnScales {
			qw[l.Index] = quant.QuantizeWeightsPerColumn(raw, bits)
		} else {
			qw[l.Index] = quant.QuantizeWeightsN(raw, bits)
		}
		simStageQuantize.AddSince(start)
	} else {
		simWeightsHit.Inc()
	}
	return qw[l.Index]
}

// faultedFor returns the layer's packed plane stack under the fault model's
// stuck-at map, memoized — the fault map is deterministic in (Seed, layer),
// so one injection pass serves every patch of every inference.
func (e *Engine) faultedFor(la *accel.LayerAlloc, w *quant.Matrix, fm *fault.Model) *quant.PackedMatrix {
	if fm.CellFaultRate() == 0 {
		return packedTimed(w)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := faultKey{layer: la.Layer.Index, model: *fm}
	if pm, ok := e.faulted[k]; ok {
		simFaultedHit.Inc()
		return pm
	}
	simFaultedMiss.Inc()
	start := time.Now()
	planes := fm.ApplyStuckAt(w.Planes(), int64(la.Layer.Index+1))
	simStageFault.AddSince(start)
	start = time.Now()
	pm := quant.PackPlanes(planes)
	simStagePack.AddSince(start)
	e.faulted[k] = pm
	return pm
}

// repairFor resolves the effective policy (plan spares when the policy
// provisions none) and returns the layer's repaired planes, memoized.
func (e *Engine) repairFor(la *accel.LayerAlloc, w *quant.Matrix, opts InferenceOptions) (*RepairedLayer, error) {
	pol := *opts.Repair
	if pol.Provision.Zero() {
		pol.Provision = e.p.RepairBudget(la)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := repairKey{layer: la.Layer.Index, model: *opts.Faults, policy: pol}
	if rl, ok := e.repaired[k]; ok {
		simRepairedHit.Inc()
		return rl, nil
	}
	simRepairedMiss.Inc()
	start := time.Now()
	rl, err := RepairLayer(la, w, opts.Faults, pol)
	if err != nil {
		return nil, err
	}
	simStageRepair.AddSince(start)
	e.repaired[k] = rl
	return rl, nil
}

// execMode selects which kernel one layer's MVMs run through. The mode
// split mirrors the option switch the per-patch mvm dispatcher used to
// re-evaluate for every sliding-window position.
type execMode int

const (
	modeFast          execMode = iota // int64-blocked integer MVM
	modeAggregate                     // packed planes + aggregate noise (faulty/repaired fast)
	modeBitExact                      // packed bit-serial pipeline, ideal planes
	modeBitExactNoisy                 // packed bit-serial pipeline + per-conversion noise
)

// layerExec is one layer's resolved execution state: every per-layer
// derivation done once, shared read-only by all patch workers.
type layerExec struct {
	cfg     hw.Config
	la      *accel.LayerAlloc
	w       *quant.Matrix
	mode    execMode
	pm      *quant.PackedMatrix  // planes served (ideal, faulted, or repaired)
	pw      *quant.PairMatrix    // paired-column packing for the fast batched path (nil → scalar)
	bw      *quant.BlockedMatrix // AVX2 blocked packing, preferred fast kernel (nil → pairs/scalar)
	fm      *fault.Model
	key     int64
	fastADC int64 // analytic ADC conversions per MVM on the fast paths
}

// prepareLayer resolves a layer's weights, planes, repair pass, and kernel
// mode for one inference's options.
func (e *Engine) prepareLayer(l *dnn.Layer, opts InferenceOptions) (*layerExec, error) {
	la := e.p.Layers[l.Index]
	w := e.weightsFor(l, opts)
	le := &layerExec{cfg: e.p.Cfg, la: la, w: w, fm: opts.Faults, key: int64(l.Index + 1)}
	le.fastADC = int64(la.Mapping.ActiveCols) * int64(w.PlaneCount()) * int64(e.p.Cfg.InputBits)
	switch {
	case opts.Repair != nil && opts.Faults.CellFaultRate() > 0:
		rl, err := e.repairFor(la, w, opts)
		if err != nil {
			return nil, err
		}
		le.pm = rl.Packed
		if opts.BitExact {
			le.mode = modeBitExactNoisy
		} else {
			le.mode = modeAggregate
		}
	case !opts.Faults.Zero():
		if err := opts.Faults.Validate(); err != nil {
			return nil, err
		}
		le.pm = e.faultedFor(la, w, opts.Faults)
		if opts.BitExact {
			le.mode = modeBitExactNoisy
		} else {
			le.mode = modeAggregate
		}
	case opts.BitExact:
		le.pm = packedTimed(w)
		le.mode = modeBitExact
	default:
		le.mode = modeFast
		le.bw = blockedTimed(w)
		le.pw = pairsTimed(w)
	}
	return le, nil
}

// packedTimed bills the matrix's pack step to the pack stage counter.
// Matrix.Packed memoizes, so warm calls contribute only the clock reads —
// and packedTimed runs once per layer per inference, never per patch.
func packedTimed(w *quant.Matrix) *quant.PackedMatrix {
	start := time.Now()
	pm := w.Packed()
	simStagePack.AddSince(start)
	return pm
}

// pairsTimed bills the paired-column packing (memoized on the matrix, may be
// nil for oversized row counts) to the pack stage counter.
func pairsTimed(w *quant.Matrix) *quant.PairMatrix {
	start := time.Now()
	pw := w.Pairs()
	simStagePack.AddSince(start)
	return pw
}

// blockedTimed bills the AVX2 blocked packing (memoized on the matrix; nil
// when the CPU lacks AVX2 or the shape doesn't fit) to the pack stage.
func blockedTimed(w *quant.Matrix) *quant.BlockedMatrix {
	start := time.Now()
	bw := w.Blocked()
	simStagePack.AddSince(start)
	return bw
}

// mvmScratch is one worker's reusable buffers: the quantized input (U +
// digit bytes + digit words), the extracted patch, and the integer/float
// output accumulators. With it, a sliding-window MVM allocates nothing.
type mvmScratch struct {
	in    *quant.Input
	patch []float64
	out   []float64
	acc   []int64
}

func (s *mvmScratch) patchFor(n int) []float64 {
	if cap(s.patch) < n {
		s.patch = make([]float64, n)
	}
	s.patch = s.patch[:n]
	return s.patch
}

func (s *mvmScratch) outFor(n int) []float64 {
	if cap(s.out) < n {
		s.out = make([]float64, n)
	}
	s.out = s.out[:n]
	clear(s.out)
	return s.out
}

func (s *mvmScratch) accFor(n int) []int64 {
	if cap(s.acc) < n {
		s.acc = make([]int64, n)
	}
	s.acc = s.acc[:n]
	clear(s.acc)
	return s.acc
}

// apply runs one MVM for the prepared layer on one input patch, returning
// the dequantized outputs in s.out (valid until the next apply on s).
func (le *layerExec) apply(s *mvmScratch, patch []float64, stats *InferenceStats) ([]float64, error) {
	in := quant.QuantizeInputInto(s.in, patch)
	s.in = in
	if in.N != le.w.Rows {
		return nil, lengthErr(in.N, le.w.Rows)
	}
	out := s.outFor(le.w.Cols)
	switch le.mode {
	case modeFast:
		integerMVMInto(out, s.accFor(le.w.Cols), le.w, in.U)
		stats.ADCConversions += le.fastADC
	case modeAggregate:
		packedAggregateMVM(le.cfg, le.pm, le.w, in, le.fm, le.fm.Noise(le.key), out)
		stats.ADCConversions += le.fastADC
	case modeBitExact:
		var es ExecStats
		execPackedGrid(le.cfg, le.la, le.pm, in, nil, out, &es)
		applyCorrection(out, le.w, in)
		stats.ADCConversions += es.ADCConversions
	case modeBitExactNoisy:
		var es ExecStats
		execPackedGrid(le.cfg, le.la, le.pm, in, le.fm.Noise(le.key), out, &es)
		applyCorrection(out, le.w, in)
		stats.ADCConversions += es.ADCConversions
	}
	stats.MVMs++
	for j := range out {
		out[j] = le.w.ScaleFor(j) * in.Scale * out[j]
	}
	return out, nil
}

// batchScratch is one worker's reusable batched buffers: the member-major
// flat patch slab, the packed quantized batch, the member-major output
// accumulator, the kernel's int64 scratch, and per-member noise streams.
// With it, a warm kernel batch allocates nothing on the ideal paths.
type batchScratch struct {
	flat  []float64
	pb    *quant.PackedBatch
	out   []float64
	acc   []int64
	pacc  []uint64
	u16   []uint16
	noise []func() float64
}

func (s *batchScratch) flatFor(n int) []float64 {
	if cap(s.flat) < n {
		s.flat = make([]float64, n)
	}
	s.flat = s.flat[:n]
	return s.flat
}

func (s *batchScratch) outFor(n int) []float64 {
	if cap(s.out) < n {
		s.out = make([]float64, n)
	}
	s.out = s.out[:n]
	return s.out
}

func (s *batchScratch) accFor(n int) []int64 {
	if cap(s.acc) < n {
		s.acc = make([]int64, n)
	}
	return s.acc[:n]
}

func (s *batchScratch) paccFor(n int) []uint64 {
	if cap(s.pacc) < n {
		s.pacc = make([]uint64, n)
	}
	return s.pacc[:n]
}

func (s *batchScratch) u16For(n int) []uint16 {
	if cap(s.u16) < n {
		s.u16 = make([]uint16, n)
	}
	return s.u16[:n]
}

// noiseFor returns b per-member read-noise streams, each freshly keyed
// exactly like the single-vector path keys its per-MVM stream — so member
// k's draws are bit-identical to running its MVM alone.
func (s *batchScratch) noiseFor(fm *fault.Model, key int64, b int) []func() float64 {
	if cap(s.noise) < b {
		s.noise = make([]func() float64, b)
	}
	s.noise = s.noise[:b]
	for k := range s.noise {
		s.noise[k] = fm.Noise(key)
	}
	return s.noise
}

// quantizeBatch packs one kernel batch for the layer's kernel. The fast
// mode's byte-code kernels (blocked/pair/scalar) never read the bit-serial
// digit slab, so packing it — the single largest non-kernel cost per batch
// — is skipped there; every bit-serial mode gets the full slab.
func (le *layerExec) quantizeBatch(pb *quant.PackedBatch, flat []float64, n, b int) *quant.PackedBatch {
	if le.mode == modeFast {
		return quant.QuantizeBatchFlatCodesInto(pb, flat, n, b)
	}
	return quant.QuantizeBatchFlatInto(pb, flat, n, b)
}

// applyBatch runs the prepared layer's kernel over the batch packed in
// s.pb, writing dequantized member-major outputs into out (length B·Cols,
// overwritten). Shape agreement is the caller's responsibility (checked
// once per layer, not per batch).
func (le *layerExec) applyBatch(s *batchScratch, out []float64, stats *InferenceStats) {
	pb := s.pb
	B := pb.B
	cols := le.w.Cols
	clear(out)
	switch le.mode {
	case modeFast:
		switch {
		case le.bw != nil:
			// Signed product directly — no offset correction term.
			le.bw.MulBatch(pb, out, s.u16For(B*pb.N))
		case le.pw != nil && B >= pairMinBatch:
			le.pw.MulBatchFloat(pb, out, s.paccFor(B*le.pw.Pairs))
			applyCorrectionBatch(out, le.w, pb)
		default:
			integerMVMBatch(out, s.accFor(max(cols, B)), le.w, pb)
		}
		stats.ADCConversions += le.fastADC * int64(B)
	case modeAggregate:
		packedAggregateMVMBatch(le.cfg, le.pm, le.w, pb, le.fm, s.noiseFor(le.fm, le.key, B), s.accFor(B), out)
		stats.ADCConversions += le.fastADC * int64(B)
	case modeBitExact:
		var es ExecStats
		execPackedGridBatch(le.cfg, le.la, le.pm, pb, s.accFor(B), out, cols, &es)
		applyCorrectionBatch(out, le.w, pb)
		stats.ADCConversions += es.ADCConversions
	case modeBitExactNoisy:
		var es ExecStats
		execPackedGridBatchNoisy(le.cfg, le.la, le.pm, pb, s.noiseFor(le.fm, le.key, B), s.accFor(B), out, cols, &es)
		applyCorrectionBatch(out, le.w, pb)
		stats.ADCConversions += es.ADCConversions
	}
	stats.MVMs += int64(B)
	stats.KernelBatches++
	if B > stats.MaxKernelBatch {
		stats.MaxKernelBatch = B
	}
	for k := 0; k < B; k++ {
		f := pb.Scales[k]
		o := out[k*cols : (k+1)*cols]
		for j := range o {
			o[j] = le.w.ScaleFor(j) * f * o[j]
		}
	}
}

// Run executes one input through the plan's model on the mapped crossbars
// and returns the output vector (logits for the zoo models). It is
// RunBatch of a single input: the sliding-window positions of each conv
// layer still stream through the batched kernels in kernel batches.
func (e *Engine) Run(input *dnn.Tensor, opts InferenceOptions) ([]float64, InferenceStats, error) {
	outs, stats, err := e.RunBatch([]*dnn.Tensor{input}, opts)
	if err != nil {
		return nil, stats, err
	}
	return outs[0], stats, nil
}

// RunBatch executes a batch of inputs through the plan's model, returning
// one output vector per input. Conv layers flatten (input, position) into
// one global MVM index space chunked into kernel batches of
// opts.KernelBatch patches; FC layers batch across the inputs themselves —
// so serving-side batches map directly onto kernel batches. Outputs are
// bit-identical to running each input alone: members of a batch never mix,
// and each member's noise stream is keyed per (layer, MVM) exactly as in
// the single-input path.
func (e *Engine) RunBatch(inputs []*dnn.Tensor, opts InferenceOptions) ([][]float64, InferenceStats, error) {
	m := e.p.Model
	if len(inputs) == 0 {
		return nil, InferenceStats{}, fmt.Errorf("sim: empty inference batch")
	}
	for _, input := range inputs {
		if input.C != m.InC || input.H != m.InH || input.W != m.InW {
			return nil, InferenceStats{}, fmt.Errorf("sim: input %dx%dx%d, model %q wants %dx%dx%d",
				input.C, input.H, input.W, m.Name, m.InC, m.InH, m.InW)
		}
	}
	var stats InferenceStats
	for _, l := range m.Mappable() {
		if l.GroupCount() > 1 {
			return nil, stats, fmt.Errorf("sim: functional inference does not support grouped convolutions (layer %s); metrics via Simulate do", l.Name)
		}
	}
	simInferences.Add(int64(len(inputs)))
	kb := opts.KernelBatch
	if kb <= 0 {
		kb = DefaultKernelBatch
	}
	mappables := m.Mappable()
	last := mappables[len(mappables)-1]
	curs := make([]*dnn.Tensor, len(inputs))
	copy(curs, inputs)
	var flats [][]float64
	for _, l := range m.Layers {
		switch l.Kind {
		case dnn.Conv:
			le, err := e.prepareLayer(l, opts)
			if err != nil {
				return nil, stats, err
			}
			outs := make([]*dnn.Tensor, len(curs))
			for i := range outs {
				outs[i] = dnn.NewTensor(l.OutC, l.OutH, l.OutW)
			}
			if err := e.streamPatchBatches(le, l, curs, outs, kb, &stats); err != nil {
				return nil, stats, err
			}
			curs = outs
			if l != last {
				for _, c := range curs {
					dnn.ReLU(c.Data)
				}
			}
		case dnn.Pool:
			for i := range curs {
				curs[i] = dnn.PoolMaxRef(l, curs[i])
			}
		case dnn.FC:
			if flats == nil {
				flats = make([][]float64, len(curs))
				for i := range curs {
					flats[i] = curs[i].Flatten()
				}
			}
			le, err := e.prepareLayer(l, opts)
			if err != nil {
				return nil, stats, err
			}
			if err := e.runFCBatches(le, flats, kb, &stats); err != nil {
				return nil, stats, err
			}
			if l != last {
				for _, f := range flats {
					dnn.ReLU(f)
				}
			}
		}
	}
	if flats == nil {
		flats = make([][]float64, len(curs))
		for i := range curs {
			flats[i] = curs[i].Flatten()
		}
	}
	return flats, stats, nil
}

// streamPatchBatches computes every sliding-window MVM of one conv layer
// for every input, chunking the global (input, position) index space into
// kernel batches of ≤ kb patches: each chunk is extracted, quantized, and
// packed in one pass, then run through the batched kernel. Chunks fan out
// across a bounded worker pool; chunk boundaries are deterministic and
// members never mix, so results are schedule-independent. kb shrinks
// toward n/workers so small layers still occupy the pool.
func (e *Engine) streamPatchBatches(le *layerExec, l *dnn.Layer, curs, outs []*dnn.Tensor, kb int, stats *InferenceStats) error {
	defer simStageStream.AddSince(time.Now())
	positions := l.OutH * l.OutW
	patchLen := curs[0].C * l.K * l.K
	if patchLen != le.w.Rows {
		return lengthErr(patchLen, le.w.Rows)
	}
	cols := le.w.Cols
	n := len(curs) * positions
	if per := n / runtime.NumCPU(); per < kb {
		kb = max(per, 1)
	}
	chunks := (n + kb - 1) / kb
	e.runChunks(chunks, n, stats, func(s *batchScratch, c int, st *InferenceStats) {
		lo := c * kb
		hi := min(lo+kb, n)
		bs := hi - lo
		start := time.Now()
		flat := s.flatFor(bs * patchLen)
		for i := 0; i < bs; i++ {
			idx := lo + i
			ii, pos := idx/positions, idx%positions
			curs[ii].PatchInto(flat[i*patchLen:(i+1)*patchLen], l, pos/l.OutW, pos%l.OutW)
		}
		s.pb = le.quantizeBatch(s.pb, flat, patchLen, bs)
		simStageInputPack.AddSince(start)
		out := s.outFor(bs * cols)
		start = time.Now()
		le.applyBatch(s, out, st)
		simStageKernel.AddSince(start)
		for i := 0; i < bs; i++ {
			idx := lo + i
			ii, pos := idx/positions, idx%positions
			oy, ox := pos/l.OutW, pos%l.OutW
			for ch, v := range out[i*cols : (i+1)*cols] {
				outs[ii].Set(ch, oy, ox, v)
			}
		}
	})
	return nil
}

// runFCBatches runs one FC layer over every input's flattened activations,
// batching across the inputs themselves in chunks of ≤ kb members and
// replacing each flats[i] with the layer's outputs.
func (e *Engine) runFCBatches(le *layerExec, flats [][]float64, kb int, stats *InferenceStats) error {
	rows, cols := le.w.Rows, le.w.Cols
	if len(flats[0]) != rows {
		return lengthErr(len(flats[0]), rows)
	}
	n := len(flats)
	if kb > n {
		kb = n
	}
	chunks := (n + kb - 1) / kb
	e.runChunks(chunks, n, stats, func(s *batchScratch, c int, st *InferenceStats) {
		lo := c * kb
		hi := min(lo+kb, n)
		bs := hi - lo
		start := time.Now()
		flat := s.flatFor(bs * rows)
		for i := 0; i < bs; i++ {
			copy(flat[i*rows:(i+1)*rows], flats[lo+i])
		}
		s.pb = le.quantizeBatch(s.pb, flat, rows, bs)
		simStageInputPack.AddSince(start)
		out := s.outFor(bs * cols)
		start = time.Now()
		le.applyBatch(s, out, st)
		simStageKernel.AddSince(start)
		for i := 0; i < bs; i++ {
			flats[lo+i] = append(flats[lo+i][:0], out[i*cols:(i+1)*cols]...)
		}
	})
	return nil
}

// runChunks fans chunk indices [0, chunks) across a bounded worker pool
// (sequentially when the layer performs fewer than minParallelPatches MVMs
// total). Each worker draws pooled scratch from the engine and accumulates
// stats privately; the merge after the barrier is order-independent, so
// aggregated stats are schedule-independent too.
func (e *Engine) runChunks(chunks, totalMVMs int, stats *InferenceStats, runChunk func(s *batchScratch, c int, st *InferenceStats)) {
	workers := runtime.NumCPU()
	if workers > chunks {
		workers = chunks
	}
	if totalMVMs < minParallelPatches || workers <= 1 {
		s := e.getScratch()
		defer e.putScratch(s)
		for c := 0; c < chunks; c++ {
			runChunk(s, c, stats)
		}
		return
	}
	parts := make([]InferenceStats, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(st *InferenceStats) {
			defer wg.Done()
			s := e.getScratch()
			defer e.putScratch(s)
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				runChunk(s, c, st)
			}
		}(&parts[w])
	}
	wg.Wait()
	for i := range parts {
		stats.merge(parts[i])
	}
}

// integerMVMInto is the fast path: the exact integer product qᵀ·u the
// analog pipeline reconstructs (proved equal to ExecuteMVM in tests),
// accumulated in int64 with a 4-row-blocked loop. u holds the input's
// quantized codes (one per weight row); acc must have length w.Cols and
// arrive zeroed; out receives the result.
func integerMVMInto(out []float64, acc []int64, w *quant.Matrix, u []uint8) {
	cols := w.Cols
	i := 0
	for ; i+3 < w.Rows; i += 4 {
		u0, u1 := int64(u[i]), int64(u[i+1])
		u2, u3 := int64(u[i+2]), int64(u[i+3])
		if u0|u1|u2|u3 == 0 {
			continue
		}
		r0 := w.Q[i*cols : (i+1)*cols]
		r1 := w.Q[(i+1)*cols : (i+2)*cols]
		r2 := w.Q[(i+2)*cols : (i+3)*cols]
		r3 := w.Q[(i+3)*cols : (i+4)*cols]
		for j := 0; j < cols; j++ {
			acc[j] += u0*int64(r0[j]) + u1*int64(r1[j]) + u2*int64(r2[j]) + u3*int64(r3[j])
		}
	}
	for ; i < w.Rows; i++ {
		uv := int64(u[i])
		if uv == 0 {
			continue
		}
		row := w.Q[i*cols : (i+1)*cols]
		for j, q := range row {
			acc[j] += uv * int64(q)
		}
	}
	for j, v := range acc {
		out[j] = float64(v)
	}
}
