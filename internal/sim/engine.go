package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/repair"
)

// Engine serves repeated functional inferences over one plan. It memoizes
// every per-layer derivation the per-patch loop used to redo — quantized
// weights per (seed, per-column) choice, packed bit planes (on the matrices
// themselves), stuck-at-faulted packed planes per fault model, and
// detect-and-repair passes per (fault model, policy) — and streams
// independent conv patches through a bounded worker pool. Results are
// bit-identical to the one-shot RunInference path (which is now a thin
// wrapper over a transient Engine): patches write disjoint output cells,
// each MVM's noise stream is keyed per layer exactly as before, and stats
// are aggregated race-free. Safe for concurrent use.
type Engine struct {
	p *accel.Plan

	mu       sync.Mutex
	weights  map[weightKey][]*quant.Matrix
	faulted  map[faultKey]*quant.PackedMatrix
	repaired map[repairKey]*RepairedLayer
}

type weightKey struct {
	seed   int64
	perCol bool
}

type faultKey struct {
	layer int
	model fault.Model
}

type repairKey struct {
	layer  int
	model  fault.Model
	policy repair.Policy
}

// NewEngine binds an engine to a plan.
func NewEngine(p *accel.Plan) *Engine {
	return &Engine{
		p:        p,
		weights:  map[weightKey][]*quant.Matrix{},
		faulted:  map[faultKey]*quant.PackedMatrix{},
		repaired: map[repairKey]*RepairedLayer{},
	}
}

// minParallelPatches is the conv size below which patch streaming stays
// sequential — tiny layers finish before a worker pool spins up.
const minParallelPatches = 64

// weightsFor returns the layer's quantized weight matrix under opts,
// memoized across calls and inferences.
func (e *Engine) weightsFor(l *dnn.Layer, opts InferenceOptions) *quant.Matrix {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := weightKey{seed: opts.Seed, perCol: opts.PerColumnScales}
	qw := e.weights[k]
	if qw == nil {
		qw = make([]*quant.Matrix, len(e.p.Layers))
		e.weights[k] = qw
	}
	if qw[l.Index] == nil {
		simWeightsMiss.Inc()
		start := time.Now()
		bits := e.p.Layers[l.Index].WeightBits
		if bits < 1 {
			bits = e.p.Cfg.WeightBits
		}
		raw := dnn.SyntheticWeights(l, opts.Seed)
		if opts.PerColumnScales {
			qw[l.Index] = quant.QuantizeWeightsPerColumn(raw, bits)
		} else {
			qw[l.Index] = quant.QuantizeWeightsN(raw, bits)
		}
		simStageQuantize.AddSince(start)
	} else {
		simWeightsHit.Inc()
	}
	return qw[l.Index]
}

// faultedFor returns the layer's packed plane stack under the fault model's
// stuck-at map, memoized — the fault map is deterministic in (Seed, layer),
// so one injection pass serves every patch of every inference.
func (e *Engine) faultedFor(la *accel.LayerAlloc, w *quant.Matrix, fm *fault.Model) *quant.PackedMatrix {
	if fm.CellFaultRate() == 0 {
		return packedTimed(w)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := faultKey{layer: la.Layer.Index, model: *fm}
	if pm, ok := e.faulted[k]; ok {
		simFaultedHit.Inc()
		return pm
	}
	simFaultedMiss.Inc()
	start := time.Now()
	planes := fm.ApplyStuckAt(w.Planes(), int64(la.Layer.Index+1))
	simStageFault.AddSince(start)
	start = time.Now()
	pm := quant.PackPlanes(planes)
	simStagePack.AddSince(start)
	e.faulted[k] = pm
	return pm
}

// repairFor resolves the effective policy (plan spares when the policy
// provisions none) and returns the layer's repaired planes, memoized.
func (e *Engine) repairFor(la *accel.LayerAlloc, w *quant.Matrix, opts InferenceOptions) (*RepairedLayer, error) {
	pol := *opts.Repair
	if pol.Provision.Zero() {
		pol.Provision = e.p.RepairBudget(la)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := repairKey{layer: la.Layer.Index, model: *opts.Faults, policy: pol}
	if rl, ok := e.repaired[k]; ok {
		simRepairedHit.Inc()
		return rl, nil
	}
	simRepairedMiss.Inc()
	start := time.Now()
	rl, err := RepairLayer(la, w, opts.Faults, pol)
	if err != nil {
		return nil, err
	}
	simStageRepair.AddSince(start)
	e.repaired[k] = rl
	return rl, nil
}

// execMode selects which kernel one layer's MVMs run through. The mode
// split mirrors the option switch the per-patch mvm dispatcher used to
// re-evaluate for every sliding-window position.
type execMode int

const (
	modeFast          execMode = iota // int64-blocked integer MVM
	modeAggregate                     // packed planes + aggregate noise (faulty/repaired fast)
	modeBitExact                      // packed bit-serial pipeline, ideal planes
	modeBitExactNoisy                 // packed bit-serial pipeline + per-conversion noise
)

// layerExec is one layer's resolved execution state: every per-layer
// derivation done once, shared read-only by all patch workers.
type layerExec struct {
	cfg     hw.Config
	la      *accel.LayerAlloc
	w       *quant.Matrix
	mode    execMode
	pm      *quant.PackedMatrix // planes served (ideal, faulted, or repaired)
	fm      *fault.Model
	key     int64
	fastADC int64 // analytic ADC conversions per MVM on the fast paths
}

// prepareLayer resolves a layer's weights, planes, repair pass, and kernel
// mode for one inference's options.
func (e *Engine) prepareLayer(l *dnn.Layer, opts InferenceOptions) (*layerExec, error) {
	la := e.p.Layers[l.Index]
	w := e.weightsFor(l, opts)
	le := &layerExec{cfg: e.p.Cfg, la: la, w: w, fm: opts.Faults, key: int64(l.Index + 1)}
	le.fastADC = int64(la.Mapping.ActiveCols) * int64(w.PlaneCount()) * int64(e.p.Cfg.InputBits)
	switch {
	case opts.Repair != nil && opts.Faults.CellFaultRate() > 0:
		rl, err := e.repairFor(la, w, opts)
		if err != nil {
			return nil, err
		}
		le.pm = rl.Packed
		if opts.BitExact {
			le.mode = modeBitExactNoisy
		} else {
			le.mode = modeAggregate
		}
	case !opts.Faults.Zero():
		if err := opts.Faults.Validate(); err != nil {
			return nil, err
		}
		le.pm = e.faultedFor(la, w, opts.Faults)
		if opts.BitExact {
			le.mode = modeBitExactNoisy
		} else {
			le.mode = modeAggregate
		}
	case opts.BitExact:
		le.pm = packedTimed(w)
		le.mode = modeBitExact
	default:
		le.mode = modeFast
	}
	return le, nil
}

// packedTimed bills the matrix's pack step to the pack stage counter.
// Matrix.Packed memoizes, so warm calls contribute only the clock reads —
// and packedTimed runs once per layer per inference, never per patch.
func packedTimed(w *quant.Matrix) *quant.PackedMatrix {
	start := time.Now()
	pm := w.Packed()
	simStagePack.AddSince(start)
	return pm
}

// mvmScratch is one worker's reusable buffers: the quantized input (U +
// digit bytes + digit words), the extracted patch, and the integer/float
// output accumulators. With it, a sliding-window MVM allocates nothing.
type mvmScratch struct {
	in    *quant.Input
	patch []float64
	out   []float64
	acc   []int64
}

func (s *mvmScratch) patchFor(n int) []float64 {
	if cap(s.patch) < n {
		s.patch = make([]float64, n)
	}
	s.patch = s.patch[:n]
	return s.patch
}

func (s *mvmScratch) outFor(n int) []float64 {
	if cap(s.out) < n {
		s.out = make([]float64, n)
	}
	s.out = s.out[:n]
	clear(s.out)
	return s.out
}

func (s *mvmScratch) accFor(n int) []int64 {
	if cap(s.acc) < n {
		s.acc = make([]int64, n)
	}
	s.acc = s.acc[:n]
	clear(s.acc)
	return s.acc
}

// apply runs one MVM for the prepared layer on one input patch, returning
// the dequantized outputs in s.out (valid until the next apply on s).
func (le *layerExec) apply(s *mvmScratch, patch []float64, stats *InferenceStats) ([]float64, error) {
	in := quant.QuantizeInputInto(s.in, patch)
	s.in = in
	if in.N != le.w.Rows {
		return nil, lengthErr(in.N, le.w.Rows)
	}
	out := s.outFor(le.w.Cols)
	switch le.mode {
	case modeFast:
		integerMVMInto(out, s.accFor(le.w.Cols), le.w, in)
		stats.ADCConversions += le.fastADC
	case modeAggregate:
		packedAggregateMVM(le.cfg, le.pm, le.w, in, le.fm, le.fm.Noise(le.key), out)
		stats.ADCConversions += le.fastADC
	case modeBitExact:
		var es ExecStats
		execPackedGrid(le.cfg, le.la, le.pm, in, nil, out, &es)
		applyCorrection(out, le.w, in)
		stats.ADCConversions += es.ADCConversions
	case modeBitExactNoisy:
		var es ExecStats
		execPackedGrid(le.cfg, le.la, le.pm, in, le.fm.Noise(le.key), out, &es)
		applyCorrection(out, le.w, in)
		stats.ADCConversions += es.ADCConversions
	}
	stats.MVMs++
	for j := range out {
		out[j] = le.w.ScaleFor(j) * in.Scale * out[j]
	}
	return out, nil
}

// Run executes one input through the plan's model on the mapped crossbars
// and returns the output vector (logits for the zoo models).
func (e *Engine) Run(input *dnn.Tensor, opts InferenceOptions) ([]float64, InferenceStats, error) {
	m := e.p.Model
	if input.C != m.InC || input.H != m.InH || input.W != m.InW {
		return nil, InferenceStats{}, fmt.Errorf("sim: input %dx%dx%d, model %q wants %dx%dx%d",
			input.C, input.H, input.W, m.Name, m.InC, m.InH, m.InW)
	}
	simInferences.Inc()
	var stats InferenceStats
	for _, l := range m.Mappable() {
		if l.GroupCount() > 1 {
			return nil, stats, fmt.Errorf("sim: functional inference does not support grouped convolutions (layer %s); metrics via Simulate do", l.Name)
		}
	}
	mappables := m.Mappable()
	last := mappables[len(mappables)-1]
	cur := input
	var flat []float64
	scratch := &mvmScratch{}
	for _, l := range m.Layers {
		switch l.Kind {
		case dnn.Conv:
			le, err := e.prepareLayer(l, opts)
			if err != nil {
				return nil, stats, err
			}
			out := dnn.NewTensor(l.OutC, l.OutH, l.OutW)
			if err := e.streamPatches(le, l, cur, out, &stats); err != nil {
				return nil, stats, err
			}
			cur = out
			if l != last {
				dnn.ReLU(cur.Data)
			}
		case dnn.Pool:
			cur = dnn.PoolMaxRef(l, cur)
		case dnn.FC:
			if flat == nil {
				flat = cur.Flatten()
			}
			le, err := e.prepareLayer(l, opts)
			if err != nil {
				return nil, stats, err
			}
			y, err := le.apply(scratch, flat, &stats)
			if err != nil {
				return nil, stats, err
			}
			flat = append(flat[:0:0], y...) // y aliases scratch; detach
			if l != last {
				dnn.ReLU(flat)
			}
		}
	}
	if flat == nil {
		flat = cur.Flatten()
	}
	return flat, stats, nil
}

// streamPatches computes every sliding-window MVM of one conv layer,
// fanning independent output positions across a bounded worker pool
// (sequentially below minParallelPatches). Each worker owns its scratch
// buffers and stats; patches write disjoint cells of out, so the result is
// deterministic regardless of schedule, and worker stats are summed after
// the barrier. The returned error is the lowest-index one, as in
// search.ParallelFor.
func (e *Engine) streamPatches(le *layerExec, l *dnn.Layer, cur, out *dnn.Tensor, stats *InferenceStats) error {
	defer simStageStream.AddSince(time.Now())
	n := l.OutH * l.OutW
	patchLen := cur.C * l.K * l.K
	runOne := func(s *mvmScratch, idx int, st *InferenceStats) error {
		oy, ox := idx/l.OutW, idx%l.OutW
		patch := cur.PatchInto(s.patchFor(patchLen), l, oy, ox)
		y, err := le.apply(s, patch, st)
		if err != nil {
			return err
		}
		for c, v := range y {
			out.Set(c, oy, ox, v)
		}
		return nil
	}
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if n < minParallelPatches || workers <= 1 {
		s := &mvmScratch{}
		for idx := 0; idx < n; idx++ {
			if err := runOne(s, idx, stats); err != nil {
				return err
			}
		}
		return nil
	}
	type workerState struct {
		stats  InferenceStats
		errIdx int
		err    error
	}
	states := make([]workerState, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			s := &mvmScratch{}
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				if err := runOne(s, idx, &ws.stats); err != nil {
					// Keep the lowest-index error this worker hit; the
					// cross-worker minimum is taken after the barrier so
					// error reporting is schedule-independent.
					if ws.err == nil || idx < ws.errIdx {
						ws.errIdx, ws.err = idx, err
					}
				}
			}
		}(&states[w])
	}
	wg.Wait()
	var firstErr error
	firstIdx := n
	for i := range states {
		stats.MVMs += states[i].stats.MVMs
		stats.ADCConversions += states[i].stats.ADCConversions
		if states[i].err != nil && states[i].errIdx < firstIdx {
			firstIdx, firstErr = states[i].errIdx, states[i].err
		}
	}
	return firstErr
}

// integerMVMInto is the fast path: the exact integer product qᵀ·u the
// analog pipeline reconstructs (proved equal to ExecuteMVM in tests),
// accumulated in int64 with a 4-row-blocked loop. acc must have length
// w.Cols and arrive zeroed; out receives the result.
func integerMVMInto(out []float64, acc []int64, w *quant.Matrix, in *quant.Input) {
	cols := w.Cols
	i := 0
	for ; i+3 < w.Rows; i += 4 {
		u0, u1 := int64(in.U[i]), int64(in.U[i+1])
		u2, u3 := int64(in.U[i+2]), int64(in.U[i+3])
		if u0|u1|u2|u3 == 0 {
			continue
		}
		r0 := w.Q[i*cols : (i+1)*cols]
		r1 := w.Q[(i+1)*cols : (i+2)*cols]
		r2 := w.Q[(i+2)*cols : (i+3)*cols]
		r3 := w.Q[(i+3)*cols : (i+4)*cols]
		for j := 0; j < cols; j++ {
			acc[j] += u0*int64(r0[j]) + u1*int64(r1[j]) + u2*int64(r2[j]) + u3*int64(r3[j])
		}
	}
	for ; i < w.Rows; i++ {
		u := int64(in.U[i])
		if u == 0 {
			continue
		}
		row := w.Q[i*cols : (i+1)*cols]
		for j, q := range row {
			acc[j] += u * int64(q)
		}
	}
	for j, v := range acc {
		out[j] = float64(v)
	}
}
