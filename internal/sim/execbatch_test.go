package sim

import (
	"testing"

	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/quant"
	"autohet/internal/repair"
	"autohet/internal/xbar"
)

// The batched grid kernel must be bit-identical, member for member, to B
// independent single-vector ExecuteMVM calls — for every mapping geometry
// and weight width — and its ExecStats must be exactly B times the
// single-vector (= analytic) stats.
func TestExecuteMVMBatchMatchesSingle(t *testing.T) {
	const B = 5
	for _, c := range mvmShapeCases {
		p := singleLayerPlan(t, c.k, c.inC, c.outC, c.shape)
		la := p.Layers[0]
		l := la.Layer
		ins := make([]*quant.Input, B)
		for k := range ins {
			ins[k] = quant.QuantizeInput(dnn.SyntheticInput(l, int64(12+k)))
		}
		pb := quant.PackInputs(ins)
		for _, bits := range []int{1, 4, 8} {
			w := quant.QuantizeWeightsN(dnn.SyntheticWeights(l, 11), bits)
			got, gotStats, err := ExecuteMVMBatch(cfg(), la, w, pb)
			if err != nil {
				t.Fatalf("%v bits=%d: %v", c, bits, err)
			}
			var sum ExecStats
			for k, in := range ins {
				want, wantStats, err := ExecuteMVM(cfg(), la, w, in)
				if err != nil {
					t.Fatalf("%v bits=%d member %d: %v", c, bits, k, err)
				}
				eqF64(t, "batched member", got[k*w.Cols:(k+1)*w.Cols], want)
				sum.Crossbars += wantStats.Crossbars
				sum.ADCConversions += wantStats.ADCConversions
				sum.DACConversions += wantStats.DACConversions
			}
			if gotStats != sum {
				t.Fatalf("%v bits=%d: batched stats %+v, B× single %+v", c, bits, gotStats, sum)
			}
		}
	}
}

// runScalarRef replays the pre-batching engine loop — one apply per sliding
// window, sequentially — as the bit-exact oracle for the batched engine.
// apply is the original per-patch kernel dispatcher, unchanged.
func runScalarRef(t *testing.T, e *Engine, input *dnn.Tensor, opts InferenceOptions) ([]float64, InferenceStats) {
	t.Helper()
	m := e.p.Model
	var stats InferenceStats
	mappables := m.Mappable()
	last := mappables[len(mappables)-1]
	cur := input
	var flat []float64
	s := &mvmScratch{}
	for _, l := range m.Layers {
		switch l.Kind {
		case dnn.Conv:
			le, err := e.prepareLayer(l, opts)
			if err != nil {
				t.Fatal(err)
			}
			out := dnn.NewTensor(l.OutC, l.OutH, l.OutW)
			patchLen := cur.C * l.K * l.K
			for idx := 0; idx < l.OutH*l.OutW; idx++ {
				oy, ox := idx/l.OutW, idx%l.OutW
				patch := cur.PatchInto(s.patchFor(patchLen), l, oy, ox)
				y, err := le.apply(s, patch, &stats)
				if err != nil {
					t.Fatal(err)
				}
				for c, v := range y {
					out.Set(c, oy, ox, v)
				}
			}
			cur = out
			if l != last {
				dnn.ReLU(cur.Data)
			}
		case dnn.Pool:
			cur = dnn.PoolMaxRef(l, cur)
		case dnn.FC:
			if flat == nil {
				flat = cur.Flatten()
			}
			le, err := e.prepareLayer(l, opts)
			if err != nil {
				t.Fatal(err)
			}
			y, err := le.apply(s, flat, &stats)
			if err != nil {
				t.Fatal(err)
			}
			flat = append(flat[:0:0], y...)
			if l != last {
				dnn.ReLU(flat)
			}
		}
	}
	if flat == nil {
		flat = cur.Flatten()
	}
	return flat, stats
}

// batchedOptSets covers every kernel mode: fast integer, bit-exact,
// aggregate-noise faulted, bit-exact noisy, per-column scales, and the
// repaired fast + bit-exact paths.
func batchedOptSets() []InferenceOptions {
	stuck := &fault.Model{Seed: 3, StuckAtZero: 0.01, StuckAtOne: 0.005, ReadNoiseSigma: 0.2}
	return []InferenceOptions{
		{Seed: 2},
		{Seed: 2, BitExact: true},
		{Seed: 2, PerColumnScales: true, BitExact: true},
		{Seed: 2, Faults: stuck},
		{Seed: 2, BitExact: true, Faults: stuck},
		{Seed: 2, Faults: stuck, Repair: &repair.Policy{}},
		{Seed: 2, BitExact: true, Faults: stuck, Repair: &repair.Policy{}},
	}
}

// The batched engine must reproduce the scalar per-patch engine bit-exactly
// — outputs and MVM/ADC accounting — for every kernel mode (including the
// faulted, noisy, and repaired paths) and every kernel batch size.
func TestEngineBatchedMatchesScalarReference(t *testing.T) {
	p := parallelCNN(t)
	input := dnn.SyntheticTensor(3, 16, 16, 4)
	for _, opts := range batchedOptSets() {
		eng := NewEngine(p)
		want, wantStats := runScalarRef(t, eng, input, opts)
		for _, kb := range []int{1, 8, 32, 0} {
			opts.KernelBatch = kb
			got, gotStats, err := eng.Run(input, opts)
			if err != nil {
				t.Fatalf("%+v: %v", opts, err)
			}
			eqF64(t, "batched vs scalar", got, want)
			if gotStats.MVMs != wantStats.MVMs || gotStats.ADCConversions != wantStats.ADCConversions {
				t.Fatalf("%+v: batched stats %+v, scalar %+v", opts, gotStats, wantStats)
			}
			if gotStats.KernelBatches == 0 || gotStats.MaxKernelBatch < 1 {
				t.Fatalf("%+v: no kernel batches recorded: %+v", opts, gotStats)
			}
			if kb > 0 && gotStats.MaxKernelBatch > kb {
				t.Fatalf("%+v: kernel batch %d exceeds cap %d", opts, gotStats.MaxKernelBatch, kb)
			}
		}
	}
}

// RunBatch of N inputs must equal N independent Runs, member for member,
// with additive MVM/ADC stats — members of a batch never mix.
func TestRunBatchMatchesIndividualRuns(t *testing.T) {
	p := parallelCNN(t)
	inputs := []*dnn.Tensor{
		dnn.SyntheticTensor(3, 16, 16, 4),
		dnn.SyntheticTensor(3, 16, 16, 5),
		dnn.SyntheticTensor(3, 16, 16, 6),
	}
	for _, opts := range batchedOptSets() {
		eng := NewEngine(p)
		outs, batchStats, err := eng.RunBatch(inputs, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if len(outs) != len(inputs) {
			t.Fatalf("%+v: %d outputs for %d inputs", opts, len(outs), len(inputs))
		}
		var sum InferenceStats
		for i, input := range inputs {
			want, stats, err := eng.Run(input, opts)
			if err != nil {
				t.Fatalf("%+v input %d: %v", opts, i, err)
			}
			eqF64(t, "batch member", outs[i], want)
			sum.MVMs += stats.MVMs
			sum.ADCConversions += stats.ADCConversions
		}
		if batchStats.MVMs != sum.MVMs || batchStats.ADCConversions != sum.ADCConversions {
			t.Fatalf("%+v: batch stats %+v, sum of singles %+v", opts, batchStats, sum)
		}
	}
}

// With warm scratch, a whole kernel batch — patch slab fill, batch
// quantize/pack, batched kernel, dequantize — allocates nothing on the fast
// and bit-exact paths. This is the per-patch-allocation invariant behind
// allocs_per_patch in BENCH_mvm.json, now asserted at batch granularity.
func TestApplyBatchZeroAllocsWarm(t *testing.T) {
	p := singleLayerPlan(t, 3, 12, 128, xbar.Square(64))
	l := p.Model.Mappable()[0]
	const B = 32
	patchLen := l.UnfoldedRows()
	eng := NewEngine(p)
	for _, opts := range []InferenceOptions{{Seed: 1}, {Seed: 1, BitExact: true}} {
		le, err := eng.prepareLayer(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		s := eng.getScratch()
		flat := s.flatFor(B * patchLen)
		for k := 0; k < B; k++ {
			copy(flat[k*patchLen:(k+1)*patchLen], dnn.SyntheticInput(l, int64(k)))
		}
		var stats InferenceStats
		run := func() {
			s.pb = quant.QuantizeBatchFlatInto(s.pb, s.flatFor(B*patchLen), patchLen, B)
			out := s.outFor(B * le.w.Cols)
			le.applyBatch(s, out, &stats)
		}
		run() // warm the buffers
		if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
			t.Fatalf("BitExact=%v: %v allocs per warm kernel batch, want 0", opts.BitExact, allocs)
		}
		eng.putScratch(s)
	}
}
