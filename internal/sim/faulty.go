package sim

import (
	"math"

	"autohet/internal/accel"
	"autohet/internal/fault"
	"autohet/internal/hw"
	"autohet/internal/quant"
)

// Fault-aware execution: the same bit-sliced crossbar pipeline as
// ExecuteMVM, but with stuck-at cells injected into the stored bit planes
// and Gaussian read noise added to every digitized bitline sum. Stuck-at
// faults compose with the packed representation for free: the faulted
// planes are packed once and the popcount kernel reads them unchanged (a
// stuck-at-one cell is a set bit, stuck-at-zero a cleared one).

// faultedPacked returns the layer's packed plane stack under the model's
// stuck-at faults. Fault-free models reuse the matrix's memoized packing.
func faultedPacked(w *quant.Matrix, fm *fault.Model, layerKey int64) *quant.PackedMatrix {
	if fm.CellFaultRate() == 0 {
		return w.Packed()
	}
	return quant.PackPlanes(fm.ApplyStuckAt(w.Planes(), layerKey))
}

// ExecuteMVMFaulty runs one MVM on the mapped grid under a fault model.
// A nil or zero model reproduces ExecuteMVM exactly.
func ExecuteMVMFaulty(cfg hw.Config, la *accel.LayerAlloc, w *quant.Matrix, in *quant.Input, fm *fault.Model) ([]float64, ExecStats, error) {
	if err := fm.Validate(); err != nil {
		return nil, ExecStats{}, err
	}
	if err := checkMVMShapes(la, w, in); err != nil {
		return nil, ExecStats{}, err
	}
	key := int64(la.Layer.Index + 1)
	pm := faultedPacked(w, fm, key)
	out := make([]float64, w.Cols)
	var stats ExecStats
	execPackedGrid(cfg, la, pm, in, fm.Noise(key), out, &stats)
	applyCorrection(out, w, in)
	return out, stats, nil
}

// executeMVMFaultyScalar is the byte-per-cell reference for the faulty
// pipeline, retained so tests can assert the packed kernel bit-identical
// under stuck-at faults and (order-preserved) read noise.
func executeMVMFaultyScalar(cfg hw.Config, la *accel.LayerAlloc, w *quant.Matrix, in *quant.Input, fm *fault.Model) ([]float64, ExecStats, error) {
	if err := fm.Validate(); err != nil {
		return nil, ExecStats{}, err
	}
	if err := checkMVMShapes(la, w, in); err != nil {
		return nil, ExecStats{}, err
	}
	key := int64(la.Layer.Index + 1)
	planes := fm.ApplyStuckAt(w.Planes(), key)
	noise := fm.Noise(key)
	out := make([]float64, w.Cols)
	var stats ExecStats
	forEachCrossbar(la, func(r0, r1, c0, c1 int) {
		stats.Crossbars++
		execCrossbarNoisyScalar(cfg, planes, in, r0, r1, c0, c1, out, noise, &stats)
	})
	applyCorrection(out, w, in)
	return out, stats, nil
}

// execCrossbarNoisyScalar mirrors execCrossbarScalar with a noise sample
// added to each bitline sum before digitization.
func execCrossbarNoisyScalar(cfg hw.Config, planes []*quant.BitPlane, in *quant.Input, r0, r1, c0, c1 int, out []float64, noise func() float64, stats *ExecStats) {
	nCols := c1 - c0
	for ib := 0; ib < cfg.InputBits; ib++ {
		digit := in.Digits[ib]
		stats.DACConversions += int64(r1-r0) * int64(len(planes))
		for _, p := range planes {
			shift := float64(int64(1) << uint(ib+p.Bit))
			for j := c0; j < c1; j++ {
				var sum float64
				for i := r0; i < r1; i++ {
					if p.Bits[i*p.Cols+j] != 0 && digit[i] != 0 {
						sum++
					}
				}
				out[j] += shift * (sum + noise())
			}
			stats.ADCConversions += int64(nCols)
		}
	}
}

// aggregateNoiseVar is Σ_ib 4^ib for ib < InputBits: the variance factor of
// folding the per-cycle noise samples of one (plane, column) bitline into a
// single distribution-equivalent aggregate sample.
func aggregateNoiseVar(cfg hw.Config) float64 {
	var v float64
	for ib := 0; ib < cfg.InputBits; ib++ {
		v += math.Pow(4, float64(ib))
	}
	return v
}

// packedAggregateMVM is the fast noisy path shared by the faulty and
// repaired integer engines: full-height packed popcounts per (plane, cycle,
// column) with read noise folded in as one aggregate sample per
// (plane, column), in the same order the byte-loop version drew them —
// bit-identical to the full bit-serial pipeline when ReadNoiseSigma is 0.
func packedAggregateMVM(cfg hw.Config, pm *quant.PackedMatrix, w *quant.Matrix, in *quant.Input, fm *fault.Model, noise func() float64, out []float64) {
	noisy := fm != nil && fm.ReadNoiseSigma > 0
	aggSigma := math.Sqrt(aggregateNoiseVar(cfg))
	for _, p := range pm.Planes {
		shift := float64(int64(1) << uint(p.Bit))
		noiseScale := shift * aggSigma
		for j := range out {
			var sum int64
			for ib := 0; ib < cfg.InputBits; ib++ {
				sum += int64(p.ColSum(j, in.DigitWords[ib])) << uint(ib)
			}
			out[j] += shift * float64(sum)
			if noisy {
				out[j] += noiseScale * noise()
			}
		}
	}
	applyCorrection(out, w, in)
}

// faultyIntegerMVM is the fast fault path: stuck-at faults applied exactly
// via the packed faulted planes, read noise folded in as one distribution-
// equivalent aggregate sample per (plane, column) — bit-identical to
// ExecuteMVMFaulty when ReadNoiseSigma is 0.
func faultyIntegerMVM(cfg hw.Config, layerKey int64, w *quant.Matrix, in *quant.Input, fm *fault.Model) []float64 {
	return faultyIntegerMVMPacked(cfg, faultedPacked(w, fm, layerKey), layerKey, w, in, fm)
}

// faultyIntegerMVMPacked is faultyIntegerMVM on an already-packed (and
// already-faulted) plane stack — the form Engine serves from its cache.
func faultyIntegerMVMPacked(cfg hw.Config, pm *quant.PackedMatrix, layerKey int64, w *quant.Matrix, in *quant.Input, fm *fault.Model) []float64 {
	out := make([]float64, w.Cols)
	packedAggregateMVM(cfg, pm, w, in, fm, fm.Noise(layerKey), out)
	return out
}
