package sim

import (
	"fmt"
	"math"

	"autohet/internal/accel"
	"autohet/internal/fault"
	"autohet/internal/hw"
	"autohet/internal/quant"
)

// Fault-aware execution: the same bit-sliced crossbar pipeline as
// ExecuteMVM, but with stuck-at cells injected into the stored bit planes
// and Gaussian read noise added to every digitized bitline sum.

// ExecuteMVMFaulty runs one MVM on the mapped grid under a fault model.
// A nil or zero model reproduces ExecuteMVM exactly.
func ExecuteMVMFaulty(cfg hw.Config, la *accel.LayerAlloc, w *quant.Matrix, in *quant.Input, fm *fault.Model) ([]float64, ExecStats, error) {
	if err := fm.Validate(); err != nil {
		return nil, ExecStats{}, err
	}
	l := la.Layer
	m := la.Mapping
	if l.GroupCount() > 1 {
		return nil, ExecStats{}, fmt.Errorf("sim: functional execution of grouped convolutions is not supported (layer %s)", l.Name)
	}
	rows, cols := l.UnfoldedRows(), l.UnfoldedCols()
	if w.Rows != rows || w.Cols != cols {
		return nil, ExecStats{}, shapeErr(w.Rows, w.Cols, rows, cols)
	}
	if in.N != rows {
		return nil, ExecStats{}, lengthErr(in.N, rows)
	}

	key := int64(l.Index + 1)
	planes := fm.ApplyStuckAt(w.Slices(), key)
	noise := fm.Noise(key)

	out := make([]float64, cols)
	var stats ExecStats
	for band := 0; band < m.GridRows; band++ {
		r0, r1 := bandRows(m, band)
		if r0 >= r1 {
			continue
		}
		for cg := 0; cg < m.GridCols; cg++ {
			c0 := cg * la.Shape.C
			c1 := min(c0+la.Shape.C, cols)
			stats.Crossbars++
			execCrossbarNoisy(cfg, planes, in, r0, r1, c0, c1, out, noise, &stats)
		}
	}
	corr := w.Correction(in)
	for j := range out {
		out[j] -= corr
	}
	return out, stats, nil
}

// execCrossbarNoisy mirrors execCrossbar with a noise sample added to each
// bitline sum before digitization.
func execCrossbarNoisy(cfg hw.Config, planes []*quant.BitPlane, in *quant.Input, r0, r1, c0, c1 int, out []float64, noise func() float64, stats *ExecStats) {
	nCols := c1 - c0
	for ib := 0; ib < cfg.InputBits; ib++ {
		digit := in.Digits[ib]
		stats.DACConversions += int64(r1-r0) * int64(len(planes))
		for _, p := range planes {
			shift := float64(int64(1) << uint(ib+p.Bit))
			for j := c0; j < c1; j++ {
				var sum float64
				for i := r0; i < r1; i++ {
					if p.Bits[i*p.Cols+j] != 0 && digit[i] != 0 {
						sum++
					}
				}
				out[j] += shift * (sum + noise())
			}
			stats.ADCConversions += int64(nCols)
		}
	}
}

// faultyIntegerMVM is the fast fault path: stuck-at faults applied exactly
// via the faulted planes, read noise folded in as one distribution-
// equivalent aggregate sample per (plane, column) — bit-identical to
// ExecuteMVMFaulty when ReadNoiseSigma is 0.
func faultyIntegerMVM(cfg hw.Config, layerKey int64, w *quant.Matrix, in *quant.Input, fm *fault.Model) []float64 {
	planes := fm.ApplyStuckAt(w.Slices(), layerKey)
	noise := fm.Noise(layerKey)
	// Aggregate noise scale per plane: Σ_ib 4^(ib+b) has standard
	// deviation factor sqrt of that sum.
	var inputBitsVar float64
	for ib := 0; ib < cfg.InputBits; ib++ {
		inputBitsVar += math.Pow(4, float64(ib))
	}

	out := make([]float64, w.Cols)
	tmp := make([]float64, w.Cols)
	xf := make([]float64, w.Rows)
	for i, u := range in.U {
		xf[i] = float64(u)
	}
	for _, p := range planes {
		p.MulVec(tmp, xf)
		shift := float64(int64(1) << uint(p.Bit))
		noiseScale := shift * math.Sqrt(inputBitsVar)
		for j := range out {
			out[j] += shift * tmp[j]
			if fm != nil && fm.ReadNoiseSigma > 0 {
				out[j] += noiseScale * noise()
			}
		}
	}
	corr := w.Correction(in)
	for j := range out {
		out[j] -= corr
	}
	return out
}
