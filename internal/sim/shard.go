package sim

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/hw"
	"autohet/internal/noc"
)

// Pipeline-parallel sharding: ShardPlan cuts a plan's layers into K
// contiguous stages balanced by per-stage latency (the mesh-priced
// latencies, so placement-dependent interconnect cost shapes the cuts) and
// prices the inter-stage activation handoffs on the same mesh. Each stage
// can then serve as its own replica: the fleet engines chain a request
// through one replica per stage, separated by the transfer latencies
// computed here.

// ShardStage is one priced pipeline stage.
type ShardStage struct {
	// Stage gives the layer range [Lo,Hi) into the plan's mappable layers.
	Stage accel.Stage
	// FillNS is the stage's per-inference latency (sum over its layers);
	// IntervalNS its internal pipelined initiation interval (worst layer).
	FillNS     float64
	IntervalNS float64
	// AreaUM2 is the silicon a replica hosting only this stage provisions:
	// the stage's occupied tiles plus its own global controller. With
	// tile-sharing a tile hosting layers of two stages is counted in both
	// (each stage replica instantiates the whole tile).
	AreaUM2 float64
	// RootTile is the stage's lowest occupied tile ID — the mesh endpoint
	// its activations leave from and arrive at.
	RootTile int
	// TransferBytes/TransferNS/TransferPJ price handing this stage's output
	// activations (2 bytes × OutC × spatial positions of the stage's last
	// layer) to the next stage's root tile. All zero for the final stage.
	TransferBytes float64
	TransferNS    float64
	TransferPJ    float64
}

// BatchCost expresses the stage's batched service time in the linear model
// the serving layers consume (see PipelineResult.BatchCost).
func (s *ShardStage) BatchCost() (baseNS, perInputNS float64) {
	return s.FillNS - s.IntervalNS, s.IntervalNS
}

// ShardResult is a plan cut into a priced K-stage pipeline.
type ShardResult struct {
	// Result is the mesh-priced whole-model simulation the cuts were
	// balanced on.
	Result *Result
	Stages []ShardStage
	// TransferNS/TransferPJ total the inter-stage activation handoffs per
	// inference.
	TransferNS float64
	TransferPJ float64
}

// FillNS is the sharded pipeline's end-to-end single-inference latency:
// every stage traversed once plus every inter-stage transfer.
func (sr *ShardResult) FillNS() float64 {
	total := sr.TransferNS
	for i := range sr.Stages {
		total += sr.Stages[i].FillNS
	}
	return total
}

// IntervalNS is the sharded pipeline's steady-state initiation interval —
// the slowest stage bounds throughput (transfers overlap with compute).
func (sr *ShardResult) IntervalNS() float64 {
	worst := 0.0
	for i := range sr.Stages {
		if sr.Stages[i].FillNS > worst {
			worst = sr.Stages[i].FillNS
		}
	}
	return worst
}

// ShardPlan cuts the plan into k latency-balanced contiguous stages and
// prices the inter-stage transfers on the mesh.
func ShardPlan(p *accel.Plan, mesh *noc.Mesh, k int) (*ShardResult, error) {
	res, err := SimulateNoC(p, mesh)
	if err != nil {
		return nil, err
	}
	lat := make([]float64, len(res.Layers))
	for i := range res.Layers {
		lat[i] = res.Layers[i].LatencyNS
	}
	stages, err := accel.ShardLayers(lat, k)
	if err != nil {
		return nil, err
	}
	sr := &ShardResult{Result: res, Stages: make([]ShardStage, len(stages))}
	for si, st := range stages {
		ss := &sr.Stages[si]
		ss.Stage = st
		ss.RootTile = -1
		tiles := map[int]bool{}
		for li := st.Lo; li < st.Hi; li++ {
			lr := &res.Layers[li]
			ss.FillNS += lr.LatencyNS
			if lr.LatencyNS > ss.IntervalNS {
				ss.IntervalNS = lr.LatencyNS
			}
			for _, pl := range p.Layers[lr.Layer.Index].Placements {
				tiles[pl.TileID] = true
				if ss.RootTile < 0 || pl.TileID < ss.RootTile {
					ss.RootTile = pl.TileID
				}
			}
		}
		ss.AreaUM2 = hw.GlobalCtrlArea
		for _, t := range p.Tiles {
			if t.Used() > 0 && tiles[t.ID] {
				s := t.Shape
				s.C += p.Spares.SpareCols
				ss.AreaUM2 += p.Cfg.TileArea(s) + float64(p.Spares.SpareXBs)*p.Cfg.PEArea(s)
			}
		}
	}
	for si := 0; si < len(sr.Stages)-1; si++ {
		ss, next := &sr.Stages[si], &sr.Stages[si+1]
		producer := res.Layers[ss.Stage.Hi-1].Layer
		ss.TransferBytes = 2 * float64(producer.OutC) * float64(producer.OutputPositions())
		pj, ns, err := mesh.TransferCost(ss.RootTile, next.RootTile, ss.TransferBytes)
		if err != nil {
			return nil, fmt.Errorf("sim: stage %d→%d transfer: %w", si, si+1, err)
		}
		ss.TransferPJ, ss.TransferNS = pj, ns
		sr.TransferNS += ns
		sr.TransferPJ += pj
	}
	return sr, nil
}
