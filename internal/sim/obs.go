package sim

import "autohet/internal/obs"

// Engine instrumentation on the shared obs registry. All hooks are at
// per-layer (not per-patch) granularity: cache lookups and stage timings
// happen once per layer per inference, so the warm MVM inner loop stays
// untouched and allocation-free. Stage counters accumulate nanoseconds;
// cache counters record hits and misses per memo.
var (
	simStageQuantize = obs.Default.Counter(`autohet_sim_stage_ns_total{stage="weight_quantize"}`,
		"Cumulative sim.Engine stage time in nanoseconds.")
	simStagePack = obs.Default.Counter(`autohet_sim_stage_ns_total{stage="pack"}`,
		"Cumulative sim.Engine stage time in nanoseconds.")
	simStageFault = obs.Default.Counter(`autohet_sim_stage_ns_total{stage="fault_compose"}`,
		"Cumulative sim.Engine stage time in nanoseconds.")
	simStageRepair = obs.Default.Counter(`autohet_sim_stage_ns_total{stage="repair"}`,
		"Cumulative sim.Engine stage time in nanoseconds.")
	simStageStream = obs.Default.Counter(`autohet_sim_stage_ns_total{stage="patch_stream"}`,
		"Cumulative sim.Engine stage time in nanoseconds.")
	simStageInputPack = obs.Default.Counter(`autohet_sim_stage_ns_total{stage="input_pack"}`,
		"Cumulative sim.Engine stage time in nanoseconds.")
	simStageKernel = obs.Default.Counter(`autohet_sim_stage_ns_total{stage="kernel"}`,
		"Cumulative sim.Engine stage time in nanoseconds.")

	simWeightsHit = obs.Default.Counter(`autohet_sim_cache_events_total{cache="weights",event="hit"}`,
		"sim.Engine per-layer memo lookups by cache and outcome.")
	simWeightsMiss = obs.Default.Counter(`autohet_sim_cache_events_total{cache="weights",event="miss"}`,
		"sim.Engine per-layer memo lookups by cache and outcome.")
	simFaultedHit = obs.Default.Counter(`autohet_sim_cache_events_total{cache="faulted",event="hit"}`,
		"sim.Engine per-layer memo lookups by cache and outcome.")
	simFaultedMiss = obs.Default.Counter(`autohet_sim_cache_events_total{cache="faulted",event="miss"}`,
		"sim.Engine per-layer memo lookups by cache and outcome.")
	simRepairedHit = obs.Default.Counter(`autohet_sim_cache_events_total{cache="repaired",event="hit"}`,
		"sim.Engine per-layer memo lookups by cache and outcome.")
	simRepairedMiss = obs.Default.Counter(`autohet_sim_cache_events_total{cache="repaired",event="miss"}`,
		"sim.Engine per-layer memo lookups by cache and outcome.")

	simInferences = obs.Default.Counter("autohet_sim_inferences_total",
		"Functional inferences served by sim.Engine (including RunInference wrappers).")
)
