// Package sim is the behavior-level inference simulator: given an
// allocation plan from package accel, it prices one full DNN inference by
// counting every activated component (cell reads, DAC/ADC conversions,
// shift-adds, buffer and bus traffic, pooling ops) against the hw cost
// model — the same accounting granularity as the MNSIM 2.0 simulator the
// paper instruments (§4.1). It also executes the mapped MVMs functionally
// (bit-sliced, bit-serial) to verify the mapping computes correct products.
package sim

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/xbar"
)

// Breakdown splits energy (pJ) by circuit component, ISAAC-style.
type Breakdown struct {
	ADC, DAC, Cell, ShiftAdd, Buffer, Bus, Pool float64
}

// Total returns the summed energy in pJ.
func (b Breakdown) Total() float64 {
	return b.ADC + b.DAC + b.Cell + b.ShiftAdd + b.Buffer + b.Bus + b.Pool
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.ADC += o.ADC
	b.DAC += o.DAC
	b.Cell += o.Cell
	b.ShiftAdd += o.ShiftAdd
	b.Buffer += o.Buffer
	b.Bus += o.Bus
	b.Pool += o.Pool
}

// LayerResult holds one layer's per-inference accounting.
type LayerResult struct {
	Layer *dnn.Layer
	Shape xbar.Shape

	MVMs           int64 // sliding-window positions
	ADCConversions int64
	DACConversions int64
	CellReads      int64

	EnergyPJ  float64
	Energy    Breakdown
	LatencyNS float64
	Tiles     int
	// GridRows is the layer's crossbar-grid height (vertically stacked
	// bands); FinishLayer needs it for the partial-sum merge latency.
	GridRows int
}

// Result aggregates a whole-model inference on a given plan.
type Result struct {
	Plan   *accel.Plan
	Layers []LayerResult

	// Utilization is the tile-level crossbar utilization in percent.
	Utilization float64
	// EnergyNJ is the per-inference energy in nanojoules.
	EnergyNJ float64
	// LatencyNS is the per-inference latency in nanoseconds (layers run
	// sequentially; output positions stream through each layer's array).
	LatencyNS float64
	// AreaUM2 is the provisioned silicon area in µm².
	AreaUM2 float64
	// OccupiedTiles is the number of tiles holding weights.
	OccupiedTiles int

	ADCConversions int64
	// Energy is the per-component breakdown (pJ); its Total equals
	// EnergyNJ·1000.
	Energy Breakdown
}

// RUE returns the paper's joint metric (§2.2): utilization over energy.
func (r *Result) RUE() float64 {
	if r.EnergyNJ == 0 {
		return 0
	}
	return r.Utilization / r.EnergyNJ
}

// PowerW returns the average power draw during one inference in watts
// (energy over latency; 1 nJ/ns = 1 W) — the number an edge battery budget
// is written against.
func (r *Result) PowerW() float64 {
	if r.LatencyNS == 0 {
		return 0
	}
	return r.EnergyNJ / r.LatencyNS
}

// Reward returns the RL reward (Eq. 2): R = u/e with u the utilization and
// e the energy. With utilization in percent and energy in nJ the magnitudes
// keep R within [0, 1] for all paper workloads, which the paper notes is
// conducive to DDPG convergence.
func (r *Result) Reward() float64 { return r.RUE() }

// Simulate prices one inference of the plan's model on its accelerator.
//
// It is the composition of the exported pieces LayerBase, FinishLayer,
// PoolEnergyPJ and Assemble — split out so the search stack's memoizing
// evaluation engine (search.Evaluator) can reuse cached per-layer bases and
// plan-free aggregates (accel.Summarize) while staying bit-identical to this
// path (asserted in tests).
func Simulate(p *accel.Plan) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := p.Cfg
	tiles := p.LayerTileCounts()
	layers := make([]LayerResult, len(p.Layers))
	for i, la := range p.Layers {
		base := LayerBase(cfg, la.Layer, la.Shape, la.WeightBits)
		layers[i] = FinishLayer(cfg, base, tiles[i], la.Copies)
	}
	res := Assemble(Aggregates{
		Utilization:   p.Utilization(),
		AreaUM2:       p.Area(),
		OccupiedTiles: p.OccupiedTiles(),
		PoolEnergyPJ:  PoolEnergyPJ(p.Model),
	}, layers)
	res.Plan = p
	return res, nil
}

// PoolEnergyPJ prices the model's pooling layers, per pooled output element
// over its window. Pooling is digital peripheral work, independent of the
// crossbar strategy, so the evaluation engine computes it once per model.
func PoolEnergyPJ(m *dnn.Model) float64 {
	var pool float64
	for _, l := range m.Layers {
		if l.Kind != dnn.Pool {
			continue
		}
		ops := int64(l.OutputPositions()) * int64(l.K*l.K) * int64(l.InC)
		pool += float64(ops) * hw.PoolEnergyPerOp
	}
	return pool
}

// Aggregates carries the plan-level metrics Assemble folds into a Result.
type Aggregates struct {
	Utilization   float64
	AreaUM2       float64
	OccupiedTiles int
	PoolEnergyPJ  float64
}

// Assemble combines finished per-layer results and plan-level aggregates
// into a whole-model Result. Accumulation order matches the model's layer
// order, so a Result assembled from cached pieces is bit-identical to one
// from Simulate.
func Assemble(agg Aggregates, layers []LayerResult) *Result {
	res := &Result{
		Utilization:   agg.Utilization,
		AreaUM2:       agg.AreaUM2,
		OccupiedTiles: agg.OccupiedTiles,
	}
	var totalNS float64
	for _, lr := range layers {
		res.Layers = append(res.Layers, lr)
		res.Energy.Add(lr.Energy)
		totalNS += lr.LatencyNS
		res.ADCConversions += lr.ADCConversions
	}
	res.Energy.Pool += agg.PoolEnergyPJ
	res.EnergyNJ = res.Energy.Total() / 1000
	res.LatencyNS = totalNS
	return res
}

// LayerBase prices the placement-independent part of one layer's inference
// work under a crossbar shape and weight precision. The returned LayerResult
// carries no tile-dependent terms yet (bus energy, EnergyPJ, latency, tile
// count); FinishLayer adds them. The split exists so the evaluation engine
// can memoize bases on (layer, shape, precision): the rest of the strategy
// can only affect a layer through its tile count.
//
// Per output position (MVM), the input vector is streamed bit-serially over
// InputBits cycles. In each cycle every one of the XBPerPE weight bit-plane
// crossbars performs an analog read: all active wordlines are driven by
// DACs, all active bitlines integrate currents, and each active bitline is
// digitized once by its (multiplexed) ADC. Partial sums from the GridRows
// vertically stacked bands are then shifted and added.
func LayerBase(cfg hw.Config, l *dnn.Layer, shape xbar.Shape, weightBits int) LayerResult {
	m := xbar.MapLayer(l, shape)
	planes := int64(weightBits)
	if planes < 1 {
		planes = int64(cfg.XBPerPE)
	}
	bits := int64(cfg.InputBits)
	mvms := int64(l.OutputPositions())

	lr := LayerResult{Layer: l, Shape: shape, MVMs: mvms, GridRows: m.GridRows}
	cyc := mvms * bits // analog read cycles per plane-crossbar set

	lr.ADCConversions = cyc * planes * int64(m.ActiveCols)
	lr.DACConversions = cyc * planes * int64(m.ActiveRows)
	lr.CellReads = cyc * planes * m.UsedCells

	lr.Energy.ADC = float64(lr.ADCConversions) * cfg.ADCEnergy()
	lr.Energy.DAC = float64(lr.DACConversions) * hw.DACEnergy
	lr.Energy.Cell = float64(lr.CellReads) * hw.CellReadEnergy
	// Shift-and-add: every digitized bitline value feeds one accumulate.
	lr.Energy.ShiftAdd = float64(lr.ADCConversions) * hw.ShiftAddEnergy
	// Buffers: the input patch is read once and the outputs written once
	// per MVM (2 bytes per partial output).
	bufBytes := float64(mvms) * (float64(l.UnfoldedRows()) + 2*float64(l.OutC))
	lr.Energy.Buffer = bufBytes * hw.BufferEnergyPerByte
	return lr
}

// FinishLayer completes a LayerBase with the placement-dependent terms: bus
// energy for partial-sum hops across the layer's tiles, total energy, and
// latency (divided by the weight-replication factor).
func FinishLayer(cfg hw.Config, base LayerResult, tiles, copies int) LayerResult {
	lr := base
	l := lr.Layer
	lr.Tiles = tiles
	// Bus: partial sums hop between tiles when a layer spans several.
	if tiles > 1 {
		lr.Energy.Bus = float64(lr.MVMs) * 2 * float64(l.OutC) * float64(tiles-1) * hw.TileBusEnergyPerByte
	}
	lr.EnergyPJ = lr.Energy.Total()

	// Latency: bit-serial cycles through the crossbar (all grid crossbars
	// operate in parallel) plus the per-MVM partial-sum merge. Weight
	// replication (copies > 1) processes that many output positions in
	// parallel, dividing the layer's serial latency.
	cycle := cfg.XBReadLatency(lr.Shape)
	merge := cfg.MergeLatency(lr.GridRows, tiles)
	if copies < 1 {
		copies = 1
	}
	lr.LatencyNS = float64(lr.MVMs) * (float64(int64(cfg.InputBits))*cycle + merge) / float64(copies)
	return lr
}

// String summarizes the result.
func (r *Result) String() string {
	name := "(no plan)"
	if r.Plan != nil {
		name = r.Plan.Model.Name
	}
	return fmt.Sprintf("%s: util %.1f%%, energy %.3g nJ, RUE %.3g, latency %.3g ns, area %.3g µm², %d tiles",
		name, r.Utilization, r.EnergyNJ, r.RUE(), r.LatencyNS, r.AreaUM2, r.OccupiedTiles)
}
