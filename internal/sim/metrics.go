// Package sim is the behavior-level inference simulator: given an
// allocation plan from package accel, it prices one full DNN inference by
// counting every activated component (cell reads, DAC/ADC conversions,
// shift-adds, buffer and bus traffic, pooling ops) against the hw cost
// model — the same accounting granularity as the MNSIM 2.0 simulator the
// paper instruments (§4.1). It also executes the mapped MVMs functionally
// (bit-sliced, bit-serial) to verify the mapping computes correct products.
package sim

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/xbar"
)

// Breakdown splits energy (pJ) by circuit component, ISAAC-style.
type Breakdown struct {
	ADC, DAC, Cell, ShiftAdd, Buffer, Bus, Pool float64
}

// Total returns the summed energy in pJ.
func (b Breakdown) Total() float64 {
	return b.ADC + b.DAC + b.Cell + b.ShiftAdd + b.Buffer + b.Bus + b.Pool
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.ADC += o.ADC
	b.DAC += o.DAC
	b.Cell += o.Cell
	b.ShiftAdd += o.ShiftAdd
	b.Buffer += o.Buffer
	b.Bus += o.Bus
	b.Pool += o.Pool
}

// LayerResult holds one layer's per-inference accounting.
type LayerResult struct {
	Layer *dnn.Layer
	Shape xbar.Shape

	MVMs           int64 // sliding-window positions
	ADCConversions int64
	DACConversions int64
	CellReads      int64

	EnergyPJ  float64
	Energy    Breakdown
	LatencyNS float64
	Tiles     int
}

// Result aggregates a whole-model inference on a given plan.
type Result struct {
	Plan   *accel.Plan
	Layers []LayerResult

	// Utilization is the tile-level crossbar utilization in percent.
	Utilization float64
	// EnergyNJ is the per-inference energy in nanojoules.
	EnergyNJ float64
	// LatencyNS is the per-inference latency in nanoseconds (layers run
	// sequentially; output positions stream through each layer's array).
	LatencyNS float64
	// AreaUM2 is the provisioned silicon area in µm².
	AreaUM2 float64
	// OccupiedTiles is the number of tiles holding weights.
	OccupiedTiles int

	ADCConversions int64
	// Energy is the per-component breakdown (pJ); its Total equals
	// EnergyNJ·1000.
	Energy Breakdown
}

// RUE returns the paper's joint metric (§2.2): utilization over energy.
func (r *Result) RUE() float64 {
	if r.EnergyNJ == 0 {
		return 0
	}
	return r.Utilization / r.EnergyNJ
}

// PowerW returns the average power draw during one inference in watts
// (energy over latency; 1 nJ/ns = 1 W) — the number an edge battery budget
// is written against.
func (r *Result) PowerW() float64 {
	if r.LatencyNS == 0 {
		return 0
	}
	return r.EnergyNJ / r.LatencyNS
}

// Reward returns the RL reward (Eq. 2): R = u/e with u the utilization and
// e the energy. With utilization in percent and energy in nJ the magnitudes
// keep R within [0, 1] for all paper workloads, which the paper notes is
// conducive to DDPG convergence.
func (r *Result) Reward() float64 { return r.RUE() }

// Simulate prices one inference of the plan's model on its accelerator.
func Simulate(p *accel.Plan) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := p.Cfg
	res := &Result{
		Plan:          p,
		Utilization:   p.Utilization(),
		AreaUM2:       p.Area(),
		OccupiedTiles: p.OccupiedTiles(),
	}
	var totalNS float64
	for _, la := range p.Layers {
		lr := simulateLayer(cfg, p, la)
		res.Layers = append(res.Layers, lr)
		res.Energy.Add(lr.Energy)
		totalNS += lr.LatencyNS
		res.ADCConversions += lr.ADCConversions
	}
	// Pooling layers: priced per pooled output element over its window.
	for _, l := range p.Model.Layers {
		if l.Kind != dnn.Pool {
			continue
		}
		ops := int64(l.OutputPositions()) * int64(l.K*l.K) * int64(l.InC)
		res.Energy.Pool += float64(ops) * hw.PoolEnergyPerOp
	}
	res.EnergyNJ = res.Energy.Total() / 1000
	res.LatencyNS = totalNS
	return res, nil
}

// simulateLayer prices one layer's inference work.
//
// Per output position (MVM), the input vector is streamed bit-serially over
// InputBits cycles. In each cycle every one of the XBPerPE weight bit-plane
// crossbars performs an analog read: all active wordlines are driven by
// DACs, all active bitlines integrate currents, and each active bitline is
// digitized once by its (multiplexed) ADC. Partial sums from the GridRows
// vertically stacked bands are then shifted and added.
func simulateLayer(cfg hw.Config, p *accel.Plan, la *accel.LayerAlloc) LayerResult {
	l := la.Layer
	m := la.Mapping
	planes := int64(la.WeightBits)
	if planes < 1 {
		planes = int64(cfg.XBPerPE)
	}
	bits := int64(cfg.InputBits)
	mvms := int64(l.OutputPositions())
	tiles := p.LayerTiles(l.Index)

	lr := LayerResult{Layer: l, Shape: la.Shape, MVMs: mvms, Tiles: tiles}
	cyc := mvms * bits // analog read cycles per plane-crossbar set

	lr.ADCConversions = cyc * planes * int64(m.ActiveCols)
	lr.DACConversions = cyc * planes * int64(m.ActiveRows)
	lr.CellReads = cyc * planes * m.UsedCells

	lr.Energy.ADC = float64(lr.ADCConversions) * cfg.ADCEnergy()
	lr.Energy.DAC = float64(lr.DACConversions) * hw.DACEnergy
	lr.Energy.Cell = float64(lr.CellReads) * hw.CellReadEnergy
	// Shift-and-add: every digitized bitline value feeds one accumulate.
	lr.Energy.ShiftAdd = float64(lr.ADCConversions) * hw.ShiftAddEnergy
	// Buffers: the input patch is read once and the outputs written once
	// per MVM (2 bytes per partial output).
	bufBytes := float64(mvms) * (float64(l.UnfoldedRows()) + 2*float64(l.OutC))
	lr.Energy.Buffer = bufBytes * hw.BufferEnergyPerByte
	// Bus: partial sums hop between tiles when a layer spans several.
	if tiles > 1 {
		lr.Energy.Bus = float64(mvms) * 2 * float64(l.OutC) * float64(tiles-1) * hw.TileBusEnergyPerByte
	}
	lr.EnergyPJ = lr.Energy.Total()

	// Latency: bit-serial cycles through the crossbar (all grid crossbars
	// operate in parallel) plus the per-MVM partial-sum merge. Weight
	// replication (la.Copies > 1) processes that many output positions in
	// parallel, dividing the layer's serial latency.
	cycle := cfg.XBReadLatency(la.Shape)
	merge := cfg.MergeLatency(m.GridRows, tiles)
	copies := la.Copies
	if copies < 1 {
		copies = 1
	}
	lr.LatencyNS = float64(mvms) * (float64(bits)*cycle + merge) / float64(copies)
	return lr
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s: util %.1f%%, energy %.3g nJ, RUE %.3g, latency %.3g ns, area %.3g µm², %d tiles",
		r.Plan.Model.Name, r.Utilization, r.EnergyNJ, r.RUE(), r.LatencyNS, r.AreaUM2, r.OccupiedTiles)
}
