package sim

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/hw"
)

// Weight-programming cost: the one-time energy and latency of writing a
// model's weights into the ReRAM cells before any inference runs (the LDW
// phase of a Global Controller program). ReRAM writes cost ~1000× a read,
// so deployments amortize this over many inferences — ProgramCost makes
// that break-even point computable.

// ProgramCost describes programming a plan's weights.
type ProgramCost struct {
	// Cells is the number of physical 1-bit cells programmed: logical
	// weight cells × weight bit-planes × replication.
	Cells int64
	// EnergyNJ is the total programming energy.
	EnergyNJ float64
	// LatencyNS is the programming time with tiles operating in parallel
	// and WriteParallelism cells written concurrently per tile.
	LatencyNS float64
}

// SimulateProgramming prices writing every weight of the plan.
func SimulateProgramming(p *accel.Plan) (*ProgramCost, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := p.Cfg
	pc := &ProgramCost{}
	var maxTileNS float64
	// Per-tile cell counts determine the parallel programming time.
	perTile := map[int]int64{}
	for _, la := range p.Layers {
		copies := la.Copies
		if copies < 1 {
			copies = 1
		}
		bits := la.WeightBits
		if bits < 1 {
			bits = cfg.XBPerPE
		}
		physCells := la.Mapping.UsedCells * int64(bits) * int64(copies)
		pc.Cells += physCells
		// Spread the layer's cells over its placements proportionally to
		// slot counts.
		totalSlots := la.SlotsNeeded()
		for _, pl := range la.Placements {
			share := physCells * int64(pl.Slots) / int64(totalSlots)
			perTile[pl.TileID] += share
		}
	}
	pulses := float64(pc.Cells) * hw.WriteVerifyRetries
	pc.EnergyNJ = pulses * hw.CellWriteEnergy / 1000
	for _, cells := range perTile {
		tileNS := float64(cells) * hw.WriteVerifyRetries * hw.CellWriteTime / hw.WriteParallelism
		if tileNS > maxTileNS {
			maxTileNS = tileNS
		}
	}
	pc.LatencyNS = maxTileNS
	return pc, nil
}

// BreakEvenInferences returns how many inferences amortize the programming
// energy below the given fraction of total energy (e.g. 0.01 → programming
// is under 1% of lifetime energy). Returns 0 if perInferenceNJ is not
// positive.
func (pc *ProgramCost) BreakEvenInferences(perInferenceNJ, fraction float64) int64 {
	if perInferenceNJ <= 0 || fraction <= 0 {
		return 0
	}
	return int64(pc.EnergyNJ / (perInferenceNJ * fraction))
}

// String summarizes the programming cost.
func (pc *ProgramCost) String() string {
	return fmt.Sprintf("program %d cells: %.4g nJ, %.4g ns", pc.Cells, pc.EnergyNJ, pc.LatencyNS)
}
