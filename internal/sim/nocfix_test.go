package sim

// Regression tests for the three NoC accounting fixes:
//  1. duplicate placements on one tile must not multiply gather traffic,
//  2. the scatter (input-distribution) phase is charged, not just gather,
//  3. replicated copies gather to different roots concurrently — latency is
//     the worst copy's path, not the union path divided by Copies.
// Each test pins behavior the pre-fix SimulateNoC got wrong.

import (
	"math"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/noc"
	"autohet/internal/xbar"
)

// multiTilePlan builds a one-layer plan whose layer spans several tiles:
// k=3, InC=16 → 144 unfolded rows (3 grid rows at 64), OutC=128 (2 grid
// cols) → 6 crossbars → 2 tiles at the default 4 PEs/tile.
func multiTilePlan(t *testing.T) *accel.Plan {
	t.Helper()
	l := &dnn.Layer{Name: "c", Kind: dnn.Conv, K: 3, InC: 16, OutC: 128, Stride: 1, Pad: 0, InH: 8, InW: 8}
	m, err := dnn.NewFlatModel("one", 8, 8, 16, []*dnn.Layer{l})
	if err != nil {
		t.Fatal(err)
	}
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(1, xbar.Square(64)), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Layers[0].Placements) < 2 {
		t.Fatalf("plan not multi-tile: %v", p.Layers[0].Placements)
	}
	return p
}

// Splitting one tile's placement entry into several entries on the same
// tile describes the identical physical layout, so the mesh cost must not
// change. The pre-fix code priced every placement entry as a distinct
// gather source, charging a 4-crossbar tile 4× for the same bytes.
func TestNoCDedupesSameTilePlacements(t *testing.T) {
	mesh, _ := noc.NewMesh(16)
	whole := multiTilePlan(t)
	want, err := SimulateNoC(whole, mesh)
	if err != nil {
		t.Fatal(err)
	}

	split := multiTilePlan(t)
	la := split.Layers[0]
	last := la.Placements[len(la.Placements)-1]
	if last.Slots < 2 {
		t.Fatalf("need a placement with >=2 slots to split, got %+v", last)
	}
	pls := la.Placements[:len(la.Placements)-1]
	for i := 0; i < last.Slots; i++ {
		pls = append(pls, accel.Placement{TileID: last.TileID, Slots: 1})
	}
	la.Placements = pls
	if err := split.Validate(); err != nil {
		t.Fatalf("split plan invalid: %v", err)
	}
	got, err := SimulateNoC(split, mesh)
	if err != nil {
		t.Fatal(err)
	}
	if got.Energy.Bus != want.Energy.Bus {
		t.Fatalf("same-tile placement split changed bus energy: %v vs %v", got.Energy.Bus, want.Energy.Bus)
	}
	if got.LatencyNS != want.LatencyNS {
		t.Fatalf("same-tile placement split changed latency: %v vs %v", got.LatencyNS, want.LatencyNS)
	}
}

// The mesh bus charge covers both phases: scatter of the input patch
// (UnfoldedRows bytes) plus gather of partial outputs (2·OutC bytes), each
// per MVM. The pre-fix code priced only the gather half.
func TestNoCChargesScatterAndGather(t *testing.T) {
	mesh, _ := noc.NewMesh(16)
	p := multiTilePlan(t)
	r, err := SimulateNoC(p, mesh)
	if err != nil {
		t.Fatal(err)
	}
	la := p.Layers[0]
	l := la.Layer
	tiles := make([]int, 0, len(la.Placements))
	for _, pl := range la.Placements {
		tiles = append(tiles, pl.TileID)
	}
	scatterPJ, scatterNS, err := mesh.ScatterCost(tiles, float64(l.UnfoldedRows()))
	if err != nil {
		t.Fatal(err)
	}
	gatherPJ, gatherNS, err := mesh.GatherCost(tiles, 2*float64(l.OutC))
	if err != nil {
		t.Fatal(err)
	}
	mvms := float64(l.OutputPositions())
	if want := mvms * (scatterPJ + gatherPJ); math.Abs(r.Energy.Bus-want) > 1e-9*want {
		t.Fatalf("bus energy %v, want scatter+gather %v", r.Energy.Bus, want)
	}
	flat, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := flat.LatencyNS + mvms*(scatterNS+gatherNS); math.Abs(r.LatencyNS-want) > 1e-9*want {
		t.Fatalf("latency %v, want base+scatter+gather %v", r.LatencyNS, want)
	}
	if gatherPJ >= scatterPJ+gatherPJ {
		t.Fatal("scatter phase priced at zero")
	}
}

// Property: mesh pricing with both phases charged never undercuts the flat
// bus constant on the zoo plans — the pre-fix gather-only accounting did
// (e.g. the 576x512 row of the -run noc table came out 0.7× flat).
func TestNoCAtLeastFlatBusOnZoo(t *testing.T) {
	for _, m := range []*dnn.Model{dnn.AlexNet(), dnn.VGG11(), dnn.VGG16()} {
		for _, shape := range []xbar.Shape{xbar.Square(64), xbar.Square(128)} {
			p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(m.NumMappable(), shape), true)
			if err != nil {
				t.Fatal(err)
			}
			mesh, err := noc.NewMeshFor(cfg().TilesPerBank)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := Simulate(p)
			if err != nil {
				t.Fatal(err)
			}
			meshed, err := SimulateNoC(p, mesh)
			if err != nil {
				t.Fatal(err)
			}
			if meshed.Energy.Bus < flat.Energy.Bus {
				t.Fatalf("%s %v: mesh bus %v undercuts flat bus %v",
					m.Name, shape, meshed.Energy.Bus, flat.Energy.Bus)
			}
		}
	}
}

// Replicated copies occupy disjoint tile sets and gather to their own roots
// concurrently. With asymmetric placements (one copy packed, one spread),
// latency follows the worst copy's own path — not the union of all copies'
// tiles divided by the replication factor, which both undercounts the far
// copy and pretends replication shortens a single gather tree.
func TestNoCCopiesGatherConcurrently(t *testing.T) {
	c := hw.DefaultConfig()
	c.PEsPerTile = 2 // force each copy across 2 tiles
	// 72 unfolded rows × 128 out channels at 64×64 → 2×2 grid = 4 crossbars
	// per copy; copies=2 → 8 slots → 4 tiles at 2 PEs/tile.
	l := &dnn.Layer{Name: "c", Kind: dnn.Conv, K: 3, InC: 8, OutC: 128, Stride: 1, Pad: 0, InH: 8, InW: 8}
	m, err := dnn.NewFlatModel("one", 8, 8, 8, []*dnn.Layer{l})
	if err != nil {
		t.Fatal(err)
	}
	p, err := accel.BuildPlanReplicated(c, m, accel.Homogeneous(1, xbar.Square(64)), accel.Replication{2}, false)
	if err != nil {
		t.Fatal(err)
	}
	la := p.Layers[0]
	if la.Copies != 2 || len(la.Placements) != 4 {
		t.Fatalf("unexpected layout: copies=%d placements=%v", la.Copies, la.Placements)
	}
	// Copy 1 keeps adjacent tiles 0,1; copy 2's second tile moves far away
	// (tile 40 = mesh coordinate (8,2) on a 16-wide mesh) so the two copies'
	// critical paths differ sharply.
	far := 40
	p.Tiles[3].ID = far
	la.Placements[3].TileID = far
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	mesh, _ := noc.NewMesh(16)
	r, err := SimulateNoC(p, mesh)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}

	inBytes := float64(l.UnfoldedRows())
	outBytes := 2 * float64(l.OutC)
	copy1, copy2 := []int{0, 1}, []int{2, far}
	var wantPJ float64
	var worstNS float64
	for _, tiles := range [][]int{copy1, copy2} {
		sPJ, sNS, err := mesh.ScatterCost(tiles, inBytes)
		if err != nil {
			t.Fatal(err)
		}
		gPJ, gNS, err := mesh.GatherCost(tiles, outBytes)
		if err != nil {
			t.Fatal(err)
		}
		wantPJ += sPJ + gPJ
		if ns := sNS + gNS; ns > worstNS {
			worstNS = ns
		}
	}
	mvmsPerCopy := float64(l.OutputPositions()) / 2
	if want := mvmsPerCopy * wantPJ; math.Abs(r.Energy.Bus-want) > 1e-9*want {
		t.Fatalf("bus energy %v, want per-copy sum %v", r.Energy.Bus, want)
	}
	wantNS := flat.LatencyNS + mvmsPerCopy*worstNS
	if math.Abs(r.LatencyNS-wantNS) > 1e-9*wantNS {
		t.Fatalf("latency %v, want worst-copy path %v", r.LatencyNS, wantNS)
	}
	// The old union-set/÷copies model yields a different (smaller) latency
	// adder: max hop over all four tiles halved by the replication factor.
	unionTiles := []int{0, 1, 2, far}
	_, unionNS, err := mesh.GatherCost(unionTiles, outBytes)
	if err != nil {
		t.Fatal(err)
	}
	old := flat.LatencyNS + float64(l.OutputPositions())*unionNS/2
	if math.Abs(r.LatencyNS-old) < 1e-9*old {
		t.Fatal("latency matches the pre-fix union/÷copies model")
	}
}
