package sim

import (
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/noc"
	"autohet/internal/xbar"
)

func TestSimulateNoCAdjustsOnlyBus(t *testing.T) {
	m := dnn.VGG16()
	p, err := accel.BuildPlan(cfg(), m, accel.Homogeneous(16, xbar.Square(64)), false)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := noc.NewMesh(256)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	meshed, err := SimulateNoC(p, mesh)
	if err != nil {
		t.Fatal(err)
	}
	// Non-interconnect components are untouched.
	if meshed.Energy.ADC != flat.Energy.ADC || meshed.Energy.DAC != flat.Energy.DAC ||
		meshed.Energy.Cell != flat.Energy.Cell {
		t.Fatal("NoC accounting changed non-bus components")
	}
	if meshed.ADCConversions != flat.ADCConversions {
		t.Fatal("NoC accounting changed work counts")
	}
	// Multi-tile layers exist here, so bus energy and latency both move.
	if meshed.Energy.Bus == flat.Energy.Bus {
		t.Fatal("mesh pricing identical to flat bus — suspicious")
	}
	if meshed.LatencyNS <= flat.LatencyNS {
		t.Fatal("mesh gather must add latency for multi-tile layers")
	}
	// The total is consistent with the breakdown.
	if got := meshed.Energy.Total() / 1000; got != meshed.EnergyNJ {
		t.Fatalf("EnergyNJ %v != breakdown %v", meshed.EnergyNJ, got)
	}
}

// Tile sharing packs layers into fewer, adjacent tiles, which must not
// increase the NoC traffic cost.
func TestNoCRewardsTileSharing(t *testing.T) {
	m := dnn.VGG16()
	mesh, _ := noc.NewMesh(256)
	st := accel.Homogeneous(16, xbar.Square(64))
	plain, _ := accel.BuildPlan(cfg(), m, st, false)
	shared, _ := accel.BuildPlan(cfg(), m, st, true)
	rp, err := SimulateNoC(plain, mesh)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SimulateNoC(shared, mesh)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Energy.Bus > rp.Energy.Bus*1.001 {
		t.Fatalf("sharing increased NoC traffic: %v vs %v", rs.Energy.Bus, rp.Energy.Bus)
	}
}

// TestNoCMeshCoversPlannedModel is the regression test for the mesh-sizing
// inconsistency: the mesh derived from the configured bank capacity
// (noc.NewMeshFor(cfg.TilesPerBank), as the experiments suite now builds
// it) must cover every tile the planner places — every placement's tile ID
// has valid mesh coordinates and the simulation succeeds.
func TestNoCMeshCoversPlannedModel(t *testing.T) {
	c := cfg()
	m := dnn.VGG16()
	p, err := accel.BuildPlan(c, m, accel.Homogeneous(16, xbar.Square(64)), true)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := noc.NewMeshFor(c.TilesPerBank)
	if err != nil {
		t.Fatal(err)
	}
	if cap := mesh.Width * mesh.Width; cap < c.TilesPerBank {
		t.Fatalf("mesh holds %d tiles, bank has %d", cap, c.TilesPerBank)
	}
	for _, la := range p.Layers {
		for _, pl := range la.Placements {
			if _, _, err := mesh.Coord(pl.TileID); err != nil {
				t.Fatalf("placed tile outside derived mesh: %v", err)
			}
		}
	}
	if _, err := SimulateNoC(p, mesh); err != nil {
		t.Fatalf("SimulateNoC on derived mesh: %v", err)
	}
}

func TestSimulateNoCMeshTooSmall(t *testing.T) {
	m := dnn.VGG16()
	p, _ := accel.BuildPlan(cfg(), m, accel.Homogeneous(16, xbar.Square(32)), false)
	mesh, _ := noc.NewMesh(4) // 16 tiles, plan needs thousands
	if _, err := SimulateNoC(p, mesh); err == nil {
		t.Fatal("undersized mesh must error")
	}
}

func TestSimulateNoCSingleTileLayersFree(t *testing.T) {
	// A model whose every layer fits one tile pays no NoC cost at all.
	p := singleLayerPlan(t, 3, 3, 16, xbar.Square(64))
	mesh, _ := noc.NewMesh(16)
	r, err := SimulateNoC(p, mesh)
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy.Bus != 0 {
		t.Fatalf("single-tile plan has NoC energy %v", r.Energy.Bus)
	}
}
