package sim

import (
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/fault"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/repair"
	"autohet/internal/xbar"
)

// mvmShapeCases are the mapping geometries the kernel equality tests sweep:
// multi-crossbar grids, single crossbars, partial bands, multi-band FC-like
// layers, and split kernels.
var mvmShapeCases = []struct {
	k, inC, outC int
	shape        xbar.Shape
}{
	{3, 12, 128, xbar.Square(64)},  // Fig. 5, 2×2 grid
	{3, 12, 128, xbar.Square(128)}, // Fig. 5, single crossbar
	{3, 7, 40, xbar.Rect(36, 32)},  // rectangular, partial bands
	{1, 70, 50, xbar.Square(32)},   // FC-like, 3 bands
	{7, 3, 20, xbar.Square(32)},    // split kernel (49 rows > 32)
}

func eqF64(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", tag, len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("%s col %d: packed %v scalar %v (must be ==, not close)", tag, j, got[j], want[j])
		}
	}
}

// The packed popcount kernel must be bit-identical to the byte-per-cell
// scalar reference — outputs and ExecStats — for every mapping geometry and
// every weight width 1..8, and both must match the analytic stats formula.
func TestPackedMatchesScalarAllShapesAndWidths(t *testing.T) {
	for _, c := range mvmShapeCases {
		p := singleLayerPlan(t, c.k, c.inC, c.outC, c.shape)
		la := p.Layers[0]
		l := la.Layer
		in := quant.QuantizeInput(dnn.SyntheticInput(l, 12))
		for bits := 1; bits <= 8; bits++ {
			w := quant.QuantizeWeightsN(dnn.SyntheticWeights(l, 11), bits)
			got, gotStats, err := ExecuteMVM(cfg(), la, w, in)
			if err != nil {
				t.Fatalf("%v bits=%d: %v", c, bits, err)
			}
			want, wantStats, err := ExecuteMVMScalar(cfg(), la, w, in)
			if err != nil {
				t.Fatalf("%v bits=%d: %v", c, bits, err)
			}
			eqF64(t, "ideal", got, want)
			if gotStats != wantStats {
				t.Fatalf("%v bits=%d: packed stats %+v scalar %+v", c, bits, gotStats, wantStats)
			}
			if an := AnalyticExecStats(cfg(), la, w.PlaneCount()); gotStats != an {
				t.Fatalf("%v bits=%d: executed stats %+v analytic %+v", c, bits, gotStats, an)
			}
		}
	}
}

// The faulty packed kernel must be bit-identical to the scalar faulty
// reference — both with stuck-at faults alone and with read noise, whose
// samples the packed kernel draws in the exact same order.
func TestFaultyPackedMatchesScalar(t *testing.T) {
	models := []*fault.Model{
		{Seed: 5, StuckAtZero: 0.02, StuckAtOne: 0.01},
		{Seed: 5, StuckAtZero: 0.02, StuckAtOne: 0.01, ReadNoiseSigma: 0.3},
		{Seed: 9, ReadNoiseSigma: 0.5},
	}
	for _, c := range mvmShapeCases {
		p := singleLayerPlan(t, c.k, c.inC, c.outC, c.shape)
		la := p.Layers[0]
		l := la.Layer
		w := quant.QuantizeWeights(dnn.SyntheticWeights(l, 11))
		in := quant.QuantizeInput(dnn.SyntheticInput(l, 12))
		for _, fm := range models {
			got, gotStats, err := ExecuteMVMFaulty(cfg(), la, w, in, fm)
			if err != nil {
				t.Fatalf("%v %+v: %v", c, fm, err)
			}
			want, wantStats, err := executeMVMFaultyScalar(cfg(), la, w, in, fm)
			if err != nil {
				t.Fatalf("%v %+v: %v", c, fm, err)
			}
			eqF64(t, "faulty", got, want)
			if gotStats != wantStats {
				t.Fatalf("%v %+v: stats %+v vs %+v", c, fm, gotStats, wantStats)
			}
		}
	}
}

// The repaired bit-serial path must be bit-identical to a scalar evaluation
// of the same repaired planes with the same noise stream.
func TestRepairedPackedMatchesScalar(t *testing.T) {
	fm := &fault.Model{Seed: 7, StuckAtZero: 0.02, StuckAtOne: 0.01, ReadNoiseSigma: 0.2}
	pol := repair.Policy{Provision: repair.Provision{SpareCols: 2}}
	for _, c := range mvmShapeCases {
		p := singleLayerPlan(t, c.k, c.inC, c.outC, c.shape)
		la := p.Layers[0]
		l := la.Layer
		w := quant.QuantizeWeights(dnn.SyntheticWeights(l, 11))
		in := quant.QuantizeInput(dnn.SyntheticInput(l, 12))
		rl, err := RepairLayer(la, w, fm, pol)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		got, gotStats := execRepairedBitSerial(cfg(), la, rl, w, in, fm)
		// Scalar reference: the same repaired byte planes through the noisy
		// byte-loop kernel with an identically keyed noise stream.
		noise := fm.Noise(int64(la.Layer.Index + 1))
		want := make([]float64, l.UnfoldedCols())
		var wantStats ExecStats
		forEachCrossbar(la, func(r0, r1, c0, c1 int) {
			wantStats.Crossbars++
			execCrossbarNoisyScalar(cfg(), rl.Planes, in, r0, r1, c0, c1, want, noise, &wantStats)
		})
		applyCorrection(want, w, in)
		eqF64(t, "repaired", got, want)
		if gotStats != wantStats {
			t.Fatalf("%v: stats %+v vs %+v", c, gotStats, wantStats)
		}
	}
}

// parallelCNN is a model whose first conv has 256 output positions — well
// above minParallelPatches, so Engine.Run streams its patches across the
// worker pool.
func parallelCNN(t testing.TB) *accel.Plan {
	t.Helper()
	m, err := dnn.NewModel("par-cnn", 16, 16, 3, []*dnn.Layer{
		{Name: "c1", Kind: dnn.Conv, K: 3, InC: 3, OutC: 24, Stride: 1, Pad: 1},
		{Name: "p1", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "c2", Kind: dnn.Conv, K: 3, InC: 24, OutC: 32, Stride: 1, Pad: 1},
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 32 * 8 * 8, OutC: 10, Stride: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := accel.BuildPlan(hw.DefaultConfig(), m, accel.Homogeneous(m.NumMappable(), xbar.Square(64)), true)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Parallel patch streaming must be deterministic: repeated runs — same
// engine, fresh engines, and the transient RunInference wrapper — produce
// `==`-identical outputs and stats, for the fast, bit-exact, faulty, and
// noisy option sets.
func TestEngineParallelDeterministic(t *testing.T) {
	p := parallelCNN(t)
	input := dnn.SyntheticTensor(3, 16, 16, 4)
	optSets := []InferenceOptions{
		{Seed: 2},
		{Seed: 2, BitExact: true},
		{Seed: 2, Faults: &fault.Model{Seed: 3, StuckAtZero: 0.01, ReadNoiseSigma: 0.2}},
		{Seed: 2, BitExact: true, Faults: &fault.Model{Seed: 3, StuckAtZero: 0.01, ReadNoiseSigma: 0.2}},
	}
	for _, opts := range optSets {
		eng := NewEngine(p)
		ref, refStats, err := eng.Run(input, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		again, againStats, err := eng.Run(input, opts) // warm caches
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		eqF64(t, "warm rerun", again, ref)
		fresh, freshStats, err := RunInference(p, input, opts) // cold engine
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		eqF64(t, "fresh engine", fresh, ref)
		if refStats != againStats || refStats != freshStats {
			t.Fatalf("%+v: stats diverge %+v / %+v / %+v", opts, refStats, againStats, freshStats)
		}
		if refStats.MVMs == 0 || refStats.ADCConversions == 0 {
			t.Fatalf("%+v: empty stats %+v", opts, refStats)
		}
	}
}

// The engine memoizes per-layer derivations: repeated prepareLayer calls must
// return the same weight matrix and plane stack pointers, including faulted
// and repaired stacks.
func TestEngineMemoizesDerivations(t *testing.T) {
	p := parallelCNN(t)
	l := p.Model.Mappable()[0]
	eng := NewEngine(p)
	for _, opts := range []InferenceOptions{
		{Seed: 2, BitExact: true},
		{Seed: 2, BitExact: true, Faults: &fault.Model{Seed: 3, StuckAtZero: 0.01}},
		{Seed: 2, Faults: &fault.Model{Seed: 3, StuckAtZero: 0.01}, Repair: &repair.Policy{}},
	} {
		a, err := eng.prepareLayer(l, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		b, err := eng.prepareLayer(l, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if a.w != b.w {
			t.Fatalf("%+v: weights re-quantized", opts)
		}
		if a.pm == nil || a.pm != b.pm {
			t.Fatalf("%+v: planes re-packed (%p vs %p)", opts, a.pm, b.pm)
		}
	}
	// Different seeds must NOT share weights.
	a, _ := eng.prepareLayer(l, InferenceOptions{Seed: 2, BitExact: true})
	c, err := eng.prepareLayer(l, InferenceOptions{Seed: 9, BitExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.w == c.w {
		t.Fatal("distinct seeds share a weight matrix")
	}
}

// With warm scratch, one sliding-window MVM allocates nothing on either the
// fast integer path or the packed bit-serial path — the O(1)-allocations
// invariant behind the allocs/patch budget in BENCH_mvm.json.
func TestApplyZeroAllocsWarm(t *testing.T) {
	p := singleLayerPlan(t, 3, 12, 128, xbar.Square(64))
	l := p.Model.Mappable()[0]
	patch := dnn.SyntheticInput(l, 5)
	eng := NewEngine(p)
	for _, opts := range []InferenceOptions{{Seed: 1}, {Seed: 1, BitExact: true}} {
		le, err := eng.prepareLayer(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		s := &mvmScratch{}
		var stats InferenceStats
		if _, err := le.apply(s, patch, &stats); err != nil { // warm the buffers
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := le.apply(s, patch, &stats); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("BitExact=%v: %v allocs per warm MVM, want 0", opts.BitExact, allocs)
		}
	}
}

// An engine held across inferences reuses its caches: the second run of the
// same options must not re-quantize, re-slice, or re-pack anything, so its
// allocation count stays far below the first run's.
func TestEngineRunAllocsBounded(t *testing.T) {
	p := parallelCNN(t)
	input := dnn.SyntheticTensor(3, 16, 16, 4)
	eng := NewEngine(p)
	opts := InferenceOptions{Seed: 2, BitExact: true}
	if _, _, err := eng.Run(input, opts); err != nil {
		t.Fatal(err)
	}
	patches := 0
	for _, l := range p.Model.Mappable() {
		patches += l.OutputPositions()
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, _, err := eng.Run(input, opts); err != nil {
			t.Fatal(err)
		}
	})
	// Warm runs allocate per layer and per worker (output tensors, worker
	// scratch), never per patch.
	if allocs > float64(patches) {
		t.Fatalf("warm run allocates %v (> %d patches); per-patch scratch is leaking", allocs, patches)
	}
}
