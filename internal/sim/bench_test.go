package sim

import (
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/xbar"
)

func BenchmarkSimulateVGG16(b *testing.B) {
	p, err := accel.BuildPlan(hw.DefaultConfig(), dnn.VGG16(),
		accel.Homogeneous(16, xbar.Square(128)), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateResNet152(b *testing.B) {
	m := dnn.ResNet152()
	p, err := accel.BuildPlan(hw.DefaultConfig(), m,
		accel.Homogeneous(m.NumMappable(), xbar.Rect(288, 256)), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteMVM(b *testing.B) {
	cfg := hw.DefaultConfig()
	l := &dnn.Layer{Name: "c", Kind: dnn.Conv, K: 3, InC: 12, OutC: 128, Stride: 1, Pad: 0, InH: 8, InW: 8}
	m, err := dnn.NewFlatModel("bench", 8, 8, 12, []*dnn.Layer{l})
	if err != nil {
		b.Fatal(err)
	}
	p, err := accel.BuildPlan(cfg, m, accel.Homogeneous(1, xbar.Square(64)), false)
	if err != nil {
		b.Fatal(err)
	}
	w := quant.QuantizeWeights(dnn.SyntheticWeights(m.Mappable()[0], 1))
	in := quant.QuantizeInput(dnn.SyntheticInput(m.Mappable()[0], 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExecuteMVM(cfg, p.Layers[0], w, in); err != nil {
			b.Fatal(err)
		}
	}
}
