package sim

import (
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/xbar"
)

func BenchmarkSimulateVGG16(b *testing.B) {
	p, err := accel.BuildPlan(hw.DefaultConfig(), dnn.VGG16(),
		accel.Homogeneous(16, xbar.Square(128)), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateResNet152(b *testing.B) {
	m := dnn.ResNet152()
	p, err := accel.BuildPlan(hw.DefaultConfig(), m,
		accel.Homogeneous(m.NumMappable(), xbar.Rect(288, 256)), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMVMSetup builds the Fig. 5 benchmark layer (3×3×12 → 128 on 64×64
// crossbars, a 2×2 grid) shared by the kernel benchmarks.
func benchMVMSetup(b *testing.B) (hw.Config, *accel.LayerAlloc, *quant.Matrix, *quant.Input) {
	b.Helper()
	cfg := hw.DefaultConfig()
	l := &dnn.Layer{Name: "c", Kind: dnn.Conv, K: 3, InC: 12, OutC: 128, Stride: 1, Pad: 0, InH: 8, InW: 8}
	m, err := dnn.NewFlatModel("bench", 8, 8, 12, []*dnn.Layer{l})
	if err != nil {
		b.Fatal(err)
	}
	p, err := accel.BuildPlan(cfg, m, accel.Homogeneous(1, xbar.Square(64)), false)
	if err != nil {
		b.Fatal(err)
	}
	w := quant.QuantizeWeights(dnn.SyntheticWeights(m.Mappable()[0], 1))
	in := quant.QuantizeInput(dnn.SyntheticInput(m.Mappable()[0], 2))
	return cfg, p.Layers[0], w, in
}

func BenchmarkExecuteMVM(b *testing.B) {
	cfg, la, w, in := benchMVMSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExecuteMVM(cfg, la, w, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteMVMScalar measures the byte-per-cell reference kernel the
// packed engine replaced; the ratio against BenchmarkExecuteMVM is the
// kernel speedup BENCH_mvm.json records.
func BenchmarkExecuteMVMScalar(b *testing.B) {
	cfg, la, w, in := benchMVMSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExecuteMVMScalar(cfg, la, w, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunInferenceBitExact is the end-to-end serving path: a CNN with
// conv layers large enough to stream patches in parallel, run through the
// full bit-sliced, bit-serial pipeline. ReportAllocs tracks the per-patch
// allocation budget (satellite: O(1) scratch per worker, not per patch).
func BenchmarkRunInferenceBitExact(b *testing.B) {
	m, err := dnn.NewModel("bench-cnn", 32, 32, 3, []*dnn.Layer{
		{Name: "c1", Kind: dnn.Conv, K: 3, InC: 3, OutC: 32, Stride: 1, Pad: 1},
		{Name: "p1", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "c2", Kind: dnn.Conv, K: 3, InC: 32, OutC: 64, Stride: 1, Pad: 1},
		{Name: "p2", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 4096, OutC: 10, Stride: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	p, err := accel.BuildPlan(hw.DefaultConfig(), m, accel.Homogeneous(m.NumMappable(), xbar.Square(128)), true)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(p)
	input := dnn.SyntheticTensor(3, 32, 32, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Run(input, InferenceOptions{Seed: 7, BitExact: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunInferenceFast is the same network through the int64-blocked
// integer path — the fleet/serving hot path.
func BenchmarkRunInferenceFast(b *testing.B) {
	m, err := dnn.NewModel("bench-cnn", 32, 32, 3, []*dnn.Layer{
		{Name: "c1", Kind: dnn.Conv, K: 3, InC: 3, OutC: 32, Stride: 1, Pad: 1},
		{Name: "p1", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "c2", Kind: dnn.Conv, K: 3, InC: 32, OutC: 64, Stride: 1, Pad: 1},
		{Name: "p2", Kind: dnn.Pool, K: 2, Stride: 2},
		{Name: "f1", Kind: dnn.FC, K: 1, InC: 4096, OutC: 10, Stride: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	p, err := accel.BuildPlan(hw.DefaultConfig(), m, accel.Homogeneous(m.NumMappable(), xbar.Square(128)), true)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(p)
	input := dnn.SyntheticTensor(3, 32, 32, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Run(input, InferenceOptions{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}
