package sim

import (
	"fmt"
	"math/bits"

	"autohet/internal/accel"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/xbar"
)

// Functional execution: run one MVM through the mapped crossbar grid exactly
// as the hardware would — weights bit-sliced over XBPerPE plane crossbars,
// inputs streamed bit-serially, one analog column sum per (cycle, plane,
// crossbar, active bitline), partial sums shifted and added across bands —
// and return the integer-exact result. Tests use this to prove the mapping
// geometry preserves MVM semantics and that the analytic activation counts
// in Simulate match what execution actually performs.
//
// The serving kernel is word-packed (quant.PackedMatrix): one read cycle per
// bitline is bits.OnesCount64(planeWord & digitWord) over ⌈rows/64⌉ words,
// exactly the analog population count the crossbar performs. The byte-loop
// kernel is kept as ExecuteMVMScalar, the reference both tests and the MVM
// benchmark compare against — the two are asserted `==`-identical, never
// within a tolerance. Every partial sum is an integer far below 2^53, so
// float64 accumulation is exact and summation order cannot perturb results.

// ExecStats counts the component activations one executed MVM performed.
type ExecStats struct {
	ADCConversions int64
	DACConversions int64
	Crossbars      int
}

// AnalyticExecStats computes, from the mapping geometry alone, the stats one
// executed MVM must produce: every active wordline is DAC-driven once per
// (cycle, plane) and every active bitline ADC-digitized once per
// (cycle, plane). Both functional kernels are asserted against it, so
// energy/latency attribution cannot drift with kernel rewrites.
func AnalyticExecStats(cfg hw.Config, la *accel.LayerAlloc, planes int) ExecStats {
	m := la.Mapping
	return ExecStats{
		Crossbars:      m.Crossbars(),
		DACConversions: int64(m.ActiveRows) * int64(planes) * int64(cfg.InputBits),
		ADCConversions: int64(m.ActiveCols) * int64(planes) * int64(cfg.InputBits),
	}
}

// ExecuteMVM computes the layer's MVM for one input patch on the mapped
// crossbar grid of la. w is the layer's quantized unfolded weight matrix
// (C_in·k² × C_out) and in the quantized input patch (length C_in·k²).
// The result is in integer product units: out[j] = Σ_i q[i][j]·u[i].
func ExecuteMVM(cfg hw.Config, la *accel.LayerAlloc, w *quant.Matrix, in *quant.Input) ([]float64, ExecStats, error) {
	if err := checkMVMShapes(la, w, in); err != nil {
		return nil, ExecStats{}, err
	}
	out := make([]float64, w.Cols)
	var stats ExecStats
	execPackedGrid(cfg, la, w.Packed(), in, nil, out, &stats)
	applyCorrection(out, w, in)
	return out, stats, nil
}

// ExecuteMVMScalar is the byte-per-cell reference engine: the same
// bit-serial, bit-sliced pipeline evaluated one cell at a time. It exists to
// prove the packed kernel exact (tests assert `==` equality of outputs and
// stats) and to measure its speedup (BenchmarkExecuteMVMScalar, BENCH_mvm).
func ExecuteMVMScalar(cfg hw.Config, la *accel.LayerAlloc, w *quant.Matrix, in *quant.Input) ([]float64, ExecStats, error) {
	if err := checkMVMShapes(la, w, in); err != nil {
		return nil, ExecStats{}, err
	}
	planes := w.Planes()
	out := make([]float64, w.Cols)
	var stats ExecStats
	forEachCrossbar(la, func(r0, r1, c0, c1 int) {
		stats.Crossbars++
		execCrossbarScalar(cfg, planes, in, r0, r1, c0, c1, out, &stats)
	})
	applyCorrection(out, w, in)
	return out, stats, nil
}

// checkMVMShapes validates la/w/in agreement for one functional MVM.
func checkMVMShapes(la *accel.LayerAlloc, w *quant.Matrix, in *quant.Input) error {
	l := la.Layer
	if l.GroupCount() > 1 {
		return fmt.Errorf("sim: functional execution of grouped convolutions is not supported (layer %s)", l.Name)
	}
	rows, cols := l.UnfoldedRows(), l.UnfoldedCols()
	if w.Rows != rows || w.Cols != cols {
		return shapeErr(w.Rows, w.Cols, rows, cols)
	}
	if in.N != rows {
		return lengthErr(in.N, rows)
	}
	return nil
}

// forEachCrossbar visits the non-empty (band, grid-column) windows of the
// layer's mapping in execution order.
func forEachCrossbar(la *accel.LayerAlloc, fn func(r0, r1, c0, c1 int)) {
	m := la.Mapping
	cols := la.Layer.UnfoldedCols()
	for band := 0; band < m.GridRows; band++ {
		r0, r1 := bandRows(m, band)
		if r0 >= r1 {
			continue
		}
		for cg := 0; cg < m.GridCols; cg++ {
			c0 := cg * la.Shape.C
			c1 := min(c0+la.Shape.C, cols)
			fn(r0, r1, c0, c1)
		}
	}
}

// applyCorrection subtracts the offset-binary bias, once per output column.
func applyCorrection(out []float64, w *quant.Matrix, in *quant.Input) {
	corr := w.Correction(in)
	for j := range out {
		out[j] -= corr
	}
}

// bandRows returns the unfolded-matrix row range [r0, r1) stored by band.
func bandRows(m xbar.Mapping, band int) (int, int) {
	rows := m.Layer.UnfoldedRows()
	if m.SplitKernel {
		r0 := band * m.Shape.R
		return r0, min(r0+m.Shape.R, rows)
	}
	k2 := m.Layer.KernelElems()
	ch0 := band * m.KernelsPerBand
	ch1 := min(ch0+m.KernelsPerBand, m.Layer.InC)
	return ch0 * k2, ch1 * k2
}

// execPackedGrid runs the packed bit-serial pipeline over the layer's whole
// crossbar grid, accumulating shifted partial sums into out (which must be
// zeroed). A nil noise source selects the ideal kernel; otherwise one noise
// sample is added to every digitized bitline sum, in the same
// (band, grid-col, cycle, plane, column) order as the scalar reference so
// noisy results stay bit-identical to it.
func execPackedGrid(cfg hw.Config, la *accel.LayerAlloc, pm *quant.PackedMatrix, in *quant.Input, noise func() float64, out []float64, stats *ExecStats) {
	forEachCrossbar(la, func(r0, r1, c0, c1 int) {
		stats.Crossbars++
		execCrossbarPacked(cfg, pm, in, r0, r1, c0, c1, out, noise, stats)
	})
}

// execCrossbarPacked performs the bit-serial, bit-sliced reads of one
// crossbar holding weight rows [r0,r1) × columns [c0,c1) with word-packed
// popcounts: each (cycle, plane, bitline) read is OnesCount64 over the
// band's words instead of a byte loop over its rows.
func execCrossbarPacked(cfg hw.Config, pm *quant.PackedMatrix, in *quant.Input, r0, r1, c0, c1 int, out []float64, noise func() float64, stats *ExecStats) {
	nRows, nCols := r1-r0, c1-c0
	// Row-band word window and boundary masks, hoisted out of the per-
	// bitline loop (same masking ColRangeSum applies per call).
	w0, w1 := r0>>6, (r1-1)>>6
	first := ^uint64(0) << uint(r0&63)
	last := ^uint64(0) >> uint(63-(r1-1)&63)
	if w0 == w1 {
		first &= last
	}
	for ib := 0; ib < cfg.InputBits; ib++ {
		digits := in.DigitWords[ib]
		// Every cycle drives the crossbar's active wordlines through the
		// 1-bit DACs, on each of the weight-bit plane crossbars.
		stats.DACConversions += int64(nRows) * int64(len(pm.Planes))
		for _, p := range pm.Planes {
			shift := float64(int64(1) << uint(ib+p.Bit))
			wpc := p.WordsPerCol
			for j := c0; j < c1; j++ {
				col := p.Words[j*wpc : (j+1)*wpc]
				// One popcount word per 64 rows reads this bitline.
				sum := bits.OnesCount64(col[w0] & digits[w0] & first)
				if w0 != w1 {
					for w := w0 + 1; w < w1; w++ {
						sum += bits.OnesCount64(col[w] & digits[w])
					}
					sum += bits.OnesCount64(col[w1] & digits[w1] & last)
				}
				if noise == nil {
					out[j] += shift * float64(sum)
				} else {
					// One ADC conversion digitizes this bitline's current.
					out[j] += shift * (float64(sum) + noise())
				}
			}
			stats.ADCConversions += int64(nCols)
		}
	}
}

// execCrossbarScalar is the byte-per-cell crossbar read the packed kernel
// replaces, retained as the equality reference.
func execCrossbarScalar(cfg hw.Config, planes []*quant.BitPlane, in *quant.Input, r0, r1, c0, c1 int, out []float64, stats *ExecStats) {
	nCols := c1 - c0
	for ib := 0; ib < cfg.InputBits; ib++ {
		digit := in.Digits[ib]
		stats.DACConversions += int64(r1-r0) * int64(len(planes))
		for _, p := range planes {
			shift := float64(int64(1) << uint(ib+p.Bit))
			for j := c0; j < c1; j++ {
				var sum float64
				for i := r0; i < r1; i++ {
					if p.Bits[i*p.Cols+j] != 0 && digit[i] != 0 {
						sum++
					}
				}
				out[j] += shift * sum
			}
			stats.ADCConversions += int64(nCols)
		}
	}
}

func shapeErr(gotR, gotC, wantR, wantC int) error {
	return fmt.Errorf("sim: weight matrix %dx%d, layer unfolds to %dx%d", gotR, gotC, wantR, wantC)
}

func lengthErr(got, want int) error {
	return fmt.Errorf("sim: input length %d, want %d", got, want)
}
