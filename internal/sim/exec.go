package sim

import (
	"fmt"

	"autohet/internal/accel"
	"autohet/internal/hw"
	"autohet/internal/quant"
	"autohet/internal/xbar"
)

// Functional execution: run one MVM through the mapped crossbar grid exactly
// as the hardware would — weights bit-sliced over XBPerPE plane crossbars,
// inputs streamed bit-serially, one analog column sum per (cycle, plane,
// crossbar, active bitline), partial sums shifted and added across bands —
// and return the integer-exact result. Tests use this to prove the mapping
// geometry preserves MVM semantics and that the analytic activation counts
// in Simulate match what execution actually performs.

// ExecStats counts the component activations one executed MVM performed.
type ExecStats struct {
	ADCConversions int64
	DACConversions int64
	Crossbars      int
}

// ExecuteMVM computes the layer's MVM for one input patch on the mapped
// crossbar grid of la. w is the layer's quantized unfolded weight matrix
// (C_in·k² × C_out) and in the quantized input patch (length C_in·k²).
// The result is in integer product units: out[j] = Σ_i q[i][j]·u[i].
func ExecuteMVM(cfg hw.Config, la *accel.LayerAlloc, w *quant.Matrix, in *quant.Input) ([]float64, ExecStats, error) {
	l := la.Layer
	m := la.Mapping
	if l.GroupCount() > 1 {
		return nil, ExecStats{}, fmt.Errorf("sim: functional execution of grouped convolutions is not supported (layer %s)", l.Name)
	}
	rows, cols := l.UnfoldedRows(), l.UnfoldedCols()
	if w.Rows != rows || w.Cols != cols {
		return nil, ExecStats{}, shapeErr(w.Rows, w.Cols, rows, cols)
	}
	if in.N != rows {
		return nil, ExecStats{}, lengthErr(in.N, rows)
	}

	planes := w.Slices()
	out := make([]float64, cols)
	var stats ExecStats

	for band := 0; band < m.GridRows; band++ {
		r0, r1 := bandRows(m, band)
		if r0 >= r1 {
			continue
		}
		for cg := 0; cg < m.GridCols; cg++ {
			c0 := cg * la.Shape.C
			c1 := min(c0+la.Shape.C, cols)
			stats.Crossbars++
			execCrossbar(cfg, planes, in, r0, r1, c0, c1, out, &stats)
		}
	}
	// Offset-binary correction, once per output column.
	corr := w.Correction(in)
	for j := range out {
		out[j] -= corr
	}
	return out, stats, nil
}

// bandRows returns the unfolded-matrix row range [r0, r1) stored by band.
func bandRows(m xbar.Mapping, band int) (int, int) {
	rows := m.Layer.UnfoldedRows()
	if m.SplitKernel {
		r0 := band * m.Shape.R
		return r0, min(r0+m.Shape.R, rows)
	}
	k2 := m.Layer.KernelElems()
	ch0 := band * m.KernelsPerBand
	ch1 := min(ch0+m.KernelsPerBand, m.Layer.InC)
	return ch0 * k2, ch1 * k2
}

// execCrossbar performs the bit-serial, bit-sliced reads of one crossbar
// holding weight rows [r0,r1) × columns [c0,c1), accumulating shifted
// partial sums into out.
func execCrossbar(cfg hw.Config, planes []*quant.BitPlane, in *quant.Input, r0, r1, c0, c1 int, out []float64, stats *ExecStats) {
	nCols := c1 - c0
	for ib := 0; ib < cfg.InputBits; ib++ {
		digit := in.Digits[ib]
		// Every cycle drives the crossbar's active wordlines through the
		// 1-bit DACs, on each of the weight-bit plane crossbars.
		stats.DACConversions += int64(r1-r0) * int64(len(planes))
		for _, p := range planes {
			shift := float64(int64(1) << uint(ib+p.Bit))
			for j := c0; j < c1; j++ {
				var sum float64
				for i := r0; i < r1; i++ {
					if p.Bits[i*p.Cols+j] != 0 && digit[i] != 0 {
						sum++
					}
				}
				// One ADC conversion digitizes this bitline's current.
				out[j] += shift * sum
			}
			stats.ADCConversions += int64(nCols)
		}
	}
}

func shapeErr(gotR, gotC, wantR, wantC int) error {
	return fmt.Errorf("sim: weight matrix %dx%d, layer unfolds to %dx%d", gotR, gotC, wantR, wantC)
}

func lengthErr(got, want int) error {
	return fmt.Errorf("sim: input length %d, want %d", got, want)
}
