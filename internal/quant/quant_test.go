package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"autohet/internal/mat"
)

func TestQuantizeWeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := mat.New(16, 16)
	w.Randomize(rng, 2.5)
	q := QuantizeWeights(w)
	d := q.Dequantize()
	maxErr := q.Scale / 2 // half an LSB
	for i := range w.Data {
		if math.Abs(w.Data[i]-d.Data[i]) > maxErr+1e-12 {
			t.Fatalf("element %d: %v vs %v (scale %v)", i, w.Data[i], d.Data[i], q.Scale)
		}
	}
}

func TestQuantizeZeroMatrix(t *testing.T) {
	w := mat.New(4, 4)
	q := QuantizeWeights(w)
	if q.Scale != 1 {
		t.Fatalf("zero matrix scale = %v, want 1", q.Scale)
	}
	for _, v := range q.Q {
		if v != 0 {
			t.Fatal("zero matrix quantized nonzero")
		}
	}
}

func TestQuantizeExtremes(t *testing.T) {
	w := mat.FromSlice(1, 2, []float64{1, -1})
	q := QuantizeWeights(w)
	if q.At(0, 0) != 127 {
		t.Fatalf("max quantized to %d, want 127", q.At(0, 0))
	}
	if q.At(0, 1) != -127 {
		t.Fatalf("min quantized to %d, want -127", q.At(0, 1))
	}
}

func TestAtPanics(t *testing.T) {
	q := QuantizeWeights(mat.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	q.At(2, 0)
}

func TestSlicesReassemble(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := mat.New(8, 8)
	w.Randomize(rng, 1)
	q := QuantizeWeights(w)
	planes := q.Slices()
	if len(planes) != WeightBits {
		t.Fatalf("planes = %d, want %d", len(planes), WeightBits)
	}
	for i := range q.Q {
		var u int
		for b, p := range planes {
			if p.Bit != b {
				t.Fatalf("plane %d has Bit %d", b, p.Bit)
			}
			u += int(p.Bits[i]) << b
		}
		if u != int(q.Q[i])+128 {
			t.Fatalf("element %d: planes give %d, want %d", i, u, int(q.Q[i])+128)
		}
	}
}

func TestBitPlaneMulVec(t *testing.T) {
	// Plane [[1,0],[1,1]] times x = [2,3] → [5, 3].
	p := &BitPlane{Rows: 2, Cols: 2, Bits: []uint8{1, 0, 1, 1}}
	dst := make([]float64, 2)
	p.MulVec(dst, []float64{2, 3})
	if dst[0] != 5 || dst[1] != 3 {
		t.Fatalf("MulVec = %v, want [5 3]", dst)
	}
}

func TestBitPlaneMulVecPanics(t *testing.T) {
	p := &BitPlane{Rows: 2, Cols: 2, Bits: make([]uint8, 4)}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	p.MulVec(make([]float64, 3), make([]float64, 2))
}

func TestQuantizeInputRoundTrip(t *testing.T) {
	x := []float64{0, 0.5, 1.0, 0.25, 0.999}
	in := QuantizeInput(x)
	d := in.Dequantize()
	for i := range x {
		if math.Abs(x[i]-d[i]) > in.Scale/2+1e-12 {
			t.Fatalf("input %d: %v vs %v", i, x[i], d[i])
		}
	}
}

func TestQuantizeInputClampsNegatives(t *testing.T) {
	in := QuantizeInput([]float64{-1, 1})
	if in.U[0] != 0 {
		t.Fatalf("negative input quantized to %d, want 0", in.U[0])
	}
}

func TestQuantizeInputZeros(t *testing.T) {
	in := QuantizeInput(make([]float64, 4))
	if in.Scale != 1 {
		t.Fatalf("zero input scale = %v", in.Scale)
	}
}

func TestInputDigitsReassemble(t *testing.T) {
	x := []float64{0.1, 0.7, 0.3}
	in := QuantizeInput(x)
	if len(in.Digits) != InputBits {
		t.Fatalf("digits = %d", len(in.Digits))
	}
	for i := range x {
		var u int
		for b := 0; b < InputBits; b++ {
			u += int(in.Digits[b][i]) << b
		}
		if u != int(in.U[i]) {
			t.Fatalf("input %d digits give %d, want %d", i, u, in.U[i])
		}
	}
}

// Property: full bit-sliced, bit-serial, offset-corrected MVM equals the
// integer MVM qᵀ·u exactly. This is the end-to-end invariant the in-situ
// computing pipeline rests on.
func TestBitSlicedMVMExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		w := mat.New(rows, cols)
		w.Randomize(rng, 3)
		q := QuantizeWeights(w)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.Float64()
		}
		in := QuantizeInput(x)
		planes := q.Slices()

		// Accumulate: Σ_ib 2^ib Σ_wb 2^wb (digit_ib · plane_wb), then
		// subtract the offset correction 128·Σu per... the correction is
		// per full input value, so apply it once using integer inputs.
		acc := make([]float64, cols)
		tmp := make([]float64, cols)
		xf := make([]float64, rows)
		for ib := 0; ib < InputBits; ib++ {
			for i := range xf {
				xf[i] = float64(in.Digits[ib][i])
			}
			for _, p := range planes {
				p.MulVec(tmp, xf)
				scale := math.Pow(2, float64(ib+p.Bit))
				for j := range acc {
					acc[j] += scale * tmp[j]
				}
			}
		}
		corr := OffsetCorrection(in)
		for j := range acc {
			acc[j] -= corr
		}

		// Reference integer MVM.
		for j := 0; j < cols; j++ {
			var want float64
			for i := 0; i < rows; i++ {
				want += float64(q.At(i, j)) * float64(in.U[i])
			}
			if math.Abs(acc[j]-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization error is bounded by half a scale step everywhere.
func TestQuantizationErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := mat.New(4, 4)
		w.Randomize(rng, 10)
		q := QuantizeWeights(w)
		d := q.Dequantize()
		for i := range w.Data {
			if math.Abs(w.Data[i]-d.Data[i]) > q.Scale/2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerColumnQuantizationTighter(t *testing.T) {
	// Columns with very different magnitudes: per-tensor scale wastes range
	// on the small column; per-column does not.
	w := mat.New(8, 2)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 8; i++ {
		w.Set(i, 0, rng.NormFloat64()*10) // large kernel
		w.Set(i, 1, rng.NormFloat64()*0.01)
	}
	perTensor := QuantizeWeightsN(w, 8).Dequantize()
	perCol := QuantizeWeightsPerColumn(w, 8).Dequantize()
	colErr := func(d *mat.Matrix, j int) float64 {
		var e float64
		for i := 0; i < 8; i++ {
			diff := d.At(i, j) - w.At(i, j)
			e += diff * diff
		}
		return e
	}
	if colErr(perCol, 1) >= colErr(perTensor, 1) {
		t.Fatalf("per-column error %v not tighter than per-tensor %v on the small column",
			colErr(perCol, 1), colErr(perTensor, 1))
	}
}

func TestScaleForFallsBackToTensorScale(t *testing.T) {
	m := QuantizeWeights(mat.FromSlice(1, 2, []float64{1, -1}))
	if m.ScaleFor(0) != m.Scale || m.ScaleFor(1) != m.Scale {
		t.Fatal("ScaleFor must fall back to the tensor scale")
	}
	pc := QuantizeWeightsPerColumn(mat.FromSlice(1, 2, []float64{2, 0.5}), 8)
	if pc.ScaleFor(0) == pc.ScaleFor(1) {
		t.Fatal("per-column scales must differ for different columns")
	}
}

func TestPerColumnQuantizePanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bits 0 did not panic")
		}
	}()
	QuantizeWeightsPerColumn(mat.New(2, 2), 0)
}
