package quant

import "math/bits"

// Packed bit-parallel representation of the crossbar state. A BitPlane
// stores one cell per byte, so the functional engines spend one branchy
// byte-load per (row, column) pair per read cycle. The crossbar hardware
// does nothing of the sort: a read cycle drives every wordline at once and
// each bitline's current IS the population count of (stored bit AND input
// digit) over the rows. PackedPlane reproduces that word-level parallelism
// in software: each column's cells are packed row-wise into []uint64 words,
// the input digits into matching per-cycle bitsets, and one crossbar read
// becomes bits.OnesCount64(planeWord & digitWord) over ⌈rows/64⌉ words —
// the same integer sums as the byte loop, ~64 cells per instruction.
//
// Word order: word w of a column covers rows [64w, 64w+64), row r mapped to
// bit r-64w (LSB = lowest row). Rows beyond Rows in the tail word are zero
// in both plane and digit words, so full-column sums need no tail masking;
// row-range sums mask the first and last word of the range explicitly.

// PackedPlane is one bit plane packed column-major: column j's rows live in
// Words[j*WordsPerCol : (j+1)*WordsPerCol].
type PackedPlane struct {
	Rows, Cols  int
	Bit         int // significance: plane contributes 2^Bit
	WordsPerCol int
	Words       []uint64
}

// PackPlane packs a byte-per-cell plane into the word-parallel layout.
func PackPlane(p *BitPlane) *PackedPlane {
	wpc := (p.Rows + 63) / 64
	pp := &PackedPlane{Rows: p.Rows, Cols: p.Cols, Bit: p.Bit,
		WordsPerCol: wpc, Words: make([]uint64, wpc*p.Cols)}
	for i := 0; i < p.Rows; i++ {
		row := p.Bits[i*p.Cols : (i+1)*p.Cols]
		w := i >> 6
		bit := uint64(1) << uint(i&63)
		for j, b := range row {
			if b != 0 {
				pp.Words[j*wpc+w] |= bit
			}
		}
	}
	return pp
}

// Col returns column j's packed words.
func (p *PackedPlane) Col(j int) []uint64 {
	return p.Words[j*p.WordsPerCol : (j+1)*p.WordsPerCol]
}

// ColSum counts rows where both the stored bit and the input digit are 1 —
// one full-height bitline read. digits must cover at least the plane's rows
// (tail bits beyond Rows zero).
func (p *PackedPlane) ColSum(j int, digits []uint64) int {
	col := p.Col(j)
	sum := 0
	for w, cw := range col {
		sum += bits.OnesCount64(cw & digits[w])
	}
	return sum
}

// ColRangeSum is ColSum restricted to rows [r0, r1) — the bitline read of a
// crossbar that stores only that row band.
func (p *PackedPlane) ColRangeSum(j, r0, r1 int, digits []uint64) int {
	if r0 >= r1 {
		return 0
	}
	col := p.Col(j)
	w0, w1 := r0>>6, (r1-1)>>6
	first := ^uint64(0) << uint(r0&63)
	last := ^uint64(0) >> uint(63-(r1-1)&63)
	if w0 == w1 {
		return bits.OnesCount64(col[w0] & digits[w0] & first & last)
	}
	sum := bits.OnesCount64(col[w0] & digits[w0] & first)
	for w := w0 + 1; w < w1; w++ {
		sum += bits.OnesCount64(col[w] & digits[w])
	}
	return sum + bits.OnesCount64(col[w1]&digits[w1]&last)
}

// PackedMatrix is a full bit-sliced weight matrix in packed form, least
// significant plane first — what a PE's stack of plane crossbars stores.
type PackedMatrix struct {
	Rows, Cols int
	Planes     []*PackedPlane
}

// PackPlanes packs a bit-plane stack (ideal, faulted, or repaired — any
// stack shaped like Matrix.Slices()) for the word-parallel kernels.
func PackPlanes(planes []*BitPlane) *PackedMatrix {
	pm := &PackedMatrix{Planes: make([]*PackedPlane, len(planes))}
	for i, p := range planes {
		pm.Planes[i] = PackPlane(p)
	}
	if len(planes) > 0 {
		pm.Rows, pm.Cols = planes[0].Rows, planes[0].Cols
	}
	return pm
}

// Planes returns the matrix's bit-plane stack, built once and memoized.
// Exec engines, fault injection, and the packer all consume the same planes;
// callers must treat them as immutable (fault/repair passes copy before
// mutating). Safe for concurrent use.
func (m *Matrix) Planes() []*BitPlane {
	m.memo.Lock()
	defer m.memo.Unlock()
	if m.memo.planes == nil {
		m.memo.planes = m.Slices()
	}
	return m.memo.planes
}

// Packed returns the word-packed form of the matrix's plane stack, built
// once and memoized. Safe for concurrent use.
func (m *Matrix) Packed() *PackedMatrix {
	m.memo.Lock()
	defer m.memo.Unlock()
	if m.memo.packed == nil {
		if m.memo.planes == nil {
			m.memo.planes = m.Slices()
		}
		m.memo.packed = PackPlanes(m.memo.planes)
	}
	return m.memo.packed
}

// packDigits rebuilds the per-cycle digit bitsets from u into dst, reusing
// dst's word slices when they are large enough. dst grows to InputBits rows.
func packDigits(dst [][]uint64, u []uint8) [][]uint64 {
	words := (len(u) + 63) / 64
	if cap(dst) < InputBits {
		dst = make([][]uint64, InputBits)
	}
	dst = dst[:InputBits]
	for b := range dst {
		if cap(dst[b]) < words {
			dst[b] = make([]uint64, words)
		}
		dst[b] = dst[b][:words]
		clear(dst[b])
	}
	for i, v := range u {
		if v == 0 {
			continue
		}
		w := i >> 6
		bit := uint64(1) << uint(i&63)
		for b := 0; b < InputBits; b++ {
			if v&(1<<uint(b)) != 0 {
				dst[b][w] |= bit
			}
		}
	}
	return dst
}
