package quant

import "testing"

// FuzzBitSliceRoundTrip checks the bit-slice → reassemble invariant the
// crossbar engines rely on: for any quantized matrix, summing 2^Bit · plane
// over the Slices() planes reconstructs q + Offset() exactly, with planes
// ordered least significant first.
// FuzzPackedMVM checks the packed popcount kernel against the scalar integer
// MVM: for any quantized matrix (1–8 bit weights, ragged row counts, all-zero
// and all-ones planes) and any input vector, reconstructing
// Σ_p Σ_b 2^(Bit+b)·popcount(plane ∧ digits) over a row split must equal the
// exact integer product Σ_i (q_i+offset)·u_i — `==`, never a tolerance.
func FuzzPackedMVM(f *testing.F) {
	f.Add(uint8(8), uint8(3), uint8(30), []byte{1, 255, 0, 127, 128, 5}, []byte{9, 0, 255})
	f.Add(uint8(1), uint8(1), uint8(0), []byte{0, 1, 2}, []byte{7})
	// 70 rows: the packed column spans two words with a ragged tail.
	f.Add(uint8(4), uint8(1), uint8(65), make([]byte, 70), []byte{255, 1, 0, 128})
	allOnes := make([]byte, 70)
	for i := range allOnes {
		allOnes[i] = 0xff
	}
	f.Add(uint8(8), uint8(1), uint8(64), allOnes, allOnes)
	f.Fuzz(func(t *testing.T, bitsRaw, colsRaw, splitRaw uint8, wdata, xdata []byte) {
		bits := int(bitsRaw)%8 + 1
		cols := int(colsRaw)%8 + 1
		rows := len(wdata) / cols
		if rows == 0 {
			return
		}
		if rows > 200 {
			rows = 200
		}
		off := 1 << (bits - 1)
		m := &Matrix{Rows: rows, Cols: cols, Bits: bits, Scale: 1, Q: make([]int8, rows*cols)}
		for i := range m.Q {
			q := int(int8(wdata[i]))
			if q > off-1 {
				q = off - 1
			}
			if q < -off {
				q = -off
			}
			m.Q[i] = int8(q)
		}
		u := make([]uint8, rows)
		for i := range u {
			if len(xdata) > 0 {
				u[i] = xdata[i%len(xdata)]
			}
		}
		// Build the bit-serial form of u directly (QuantizeInput rescales to
		// the full 8-bit range; here the raw codes are the ground truth).
		in := &Input{N: rows, Scale: 1, U: u, Digits: make([][]uint8, InputBits)}
		for b := range in.Digits {
			in.Digits[b] = make([]uint8, rows)
			for i, v := range u {
				in.Digits[b][i] = (v >> b) & 1
			}
		}
		in.DigitWords = packDigits(nil, u)
		pm := m.Packed()
		if len(pm.Planes) != bits {
			t.Fatalf("%d-bit matrix packed into %d planes", bits, len(pm.Planes))
		}
		split := int(splitRaw) % (rows + 1) // row band boundary, may be 0 or rows
		for j := 0; j < cols; j++ {
			var packed int64
			for _, p := range pm.Planes {
				for b := 0; b < InputBits; b++ {
					d := in.DigitWords[b]
					sum := p.ColRangeSum(j, 0, split, d) + p.ColRangeSum(j, split, rows, d)
					if full := p.ColSum(j, d); sum != full {
						t.Fatalf("col %d plane %d cycle %d: split at %d sums %d, full %d", j, p.Bit, b, split, sum, full)
					}
					packed += int64(sum) << uint(b+p.Bit)
				}
			}
			var want int64
			for i := 0; i < rows; i++ {
				want += (int64(m.Q[i*cols+j]) + int64(off)) * int64(u[i])
			}
			if packed != want {
				t.Fatalf("col %d: packed MVM %d, integer reference %d", j, packed, want)
			}
		}
	})
}

// FuzzBatchedMVM checks the batched bit-matrix kernel four ways for any
// quantized matrix (1–8 bit weights, ragged row counts), any batch size,
// and any input codes: MulBatch must equal (1) B independent single-vector
// packed MVMs (ColSum reconstruction) and (2) the scalar integer reference
// Σ_i (q_i+offset)·u_i, `==` for every member — never a tolerance —
// (3) splitting the batch sweep over an arbitrary row band must not change
// any member's sums (the crossbar-banded form the sim engine executes), and
// (4) the paired-column word-packed kernel (PairMatrix.MulBatch, the fast
// path) must produce the identical integers through whole-byte MACs.
func FuzzBatchedMVM(f *testing.F) {
	f.Add(uint8(8), uint8(3), uint8(4), uint8(30), []byte{1, 255, 0, 127, 128, 5}, []byte{9, 0, 255})
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), []byte{0, 1, 2}, []byte{7})
	// 70 rows: packed columns span two words with a ragged tail.
	f.Add(uint8(4), uint8(2), uint8(9), uint8(65), make([]byte, 140), []byte{255, 1, 0, 128})
	allOnes := make([]byte, 70)
	for i := range allOnes {
		allOnes[i] = 0xff
	}
	f.Add(uint8(8), uint8(1), uint8(32), uint8(64), allOnes, allOnes)
	f.Fuzz(func(t *testing.T, bitsRaw, colsRaw, batchRaw, splitRaw uint8, wdata, xdata []byte) {
		bits := int(bitsRaw)%8 + 1
		cols := int(colsRaw)%8 + 1
		B := int(batchRaw)%33 + 1
		rows := len(wdata) / cols
		if rows == 0 {
			return
		}
		if rows > 200 {
			rows = 200
		}
		off := 1 << (bits - 1)
		m := &Matrix{Rows: rows, Cols: cols, Bits: bits, Scale: 1, Q: make([]int8, rows*cols)}
		for i := range m.Q {
			q := int(int8(wdata[i]))
			if q > off-1 {
				q = off - 1
			}
			if q < -off {
				q = -off
			}
			m.Q[i] = int8(q)
		}
		// Derive B input vectors from xdata with member-dependent offsets so
		// the batch is heterogeneous even from short fuzz payloads.
		ins := make([]*Input, B)
		for k := range ins {
			u := make([]uint8, rows)
			for i := range u {
				if len(xdata) > 0 {
					u[i] = xdata[(i+k*7)%len(xdata)] + uint8(k)
				}
			}
			in := &Input{N: rows, Scale: 1, U: u, Digits: make([][]uint8, InputBits)}
			for b := range in.Digits {
				in.Digits[b] = make([]uint8, rows)
				for i, v := range u {
					in.Digits[b][i] = (v >> b) & 1
				}
			}
			in.DigitWords = packDigits(nil, u)
			ins[k] = in
		}
		pb := PackInputs(ins)
		pm := m.Packed()

		out := make([]int64, B*cols)
		pm.MulBatch(pb, out)
		pw := m.Pairs()
		pout := make([]int64, B*cols)
		pw.MulBatch(pb, pout, make([]uint64, B*pw.Pairs))
		for i := range out {
			if pout[i] != out[i] {
				t.Fatalf("flat index %d: pair kernel %d, popcount kernel %d", i, pout[i], out[i])
			}
		}
		split := int(splitRaw) % (rows + 1)
		banded := make([]int64, B)
		for j := 0; j < cols; j++ {
			for k, in := range ins {
				// (1) B independent single-vector packed MVMs.
				var single int64
				for _, p := range pm.Planes {
					for b := 0; b < InputBits; b++ {
						single += int64(p.ColSum(j, in.DigitWords[b])) << uint(b+p.Bit)
					}
				}
				if out[k*cols+j] != single {
					t.Fatalf("member %d col %d: batched %d, single-vector %d", k, j, out[k*cols+j], single)
				}
				// (2) scalar integer reference.
				var want int64
				for i := 0; i < rows; i++ {
					want += (int64(m.Q[i*cols+j]) + int64(off)) * int64(in.U[i])
				}
				if out[k*cols+j] != want {
					t.Fatalf("member %d col %d: batched %d, integer reference %d", k, j, out[k*cols+j], want)
				}
			}
			// (3) band-split batch sweep equals the full-height sweep.
			for _, p := range pm.Planes {
				clear(banded)
				p.ColRangeSumCycles(j, 0, split, pb, banded)
				p.ColRangeSumCycles(j, split, rows, pb, banded)
				full := make([]int64, B)
				p.ColSumCycles(j, pb, full)
				for k := range banded {
					if banded[k] != full[k] {
						t.Fatalf("col %d plane %d member %d: split at %d sums %d, full %d", j, p.Bit, k, split, banded[k], full[k])
					}
				}
			}
		}
	})
}

func FuzzBitSliceRoundTrip(f *testing.F) {
	f.Add(uint8(8), uint8(3), []byte{1, 255, 0, 127, 128, 5})
	f.Add(uint8(1), uint8(1), []byte{0, 1, 2})
	f.Add(uint8(4), uint8(7), []byte{200, 100, 50, 25, 12, 6, 3})
	f.Fuzz(func(t *testing.T, bitsRaw, colsRaw uint8, data []byte) {
		bits := int(bitsRaw)%8 + 1
		cols := int(colsRaw)%16 + 1
		rows := len(data) / cols
		if rows == 0 {
			return
		}
		data = data[:rows*cols]
		off := 1 << (bits - 1)
		m := &Matrix{Rows: rows, Cols: cols, Bits: bits, Scale: 0.5, Q: make([]int8, len(data))}
		for i, b := range data {
			q := int(int8(b))
			if q > off-1 {
				q = off - 1
			}
			if q < -off {
				q = -off
			}
			m.Q[i] = int8(q)
		}
		planes := m.Slices()
		if len(planes) != bits {
			t.Fatalf("%d-bit matrix sliced into %d planes", bits, len(planes))
		}
		for b, p := range planes {
			if p.Bit != b {
				t.Fatalf("plane %d has significance %d", b, p.Bit)
			}
			if p.Rows != rows || p.Cols != cols || len(p.Bits) != len(m.Q) {
				t.Fatalf("plane %d shape %dx%d (%d cells), want %dx%d", b, p.Rows, p.Cols, len(p.Bits), rows, cols)
			}
		}
		for i, q := range m.Q {
			sum := 0
			for _, p := range planes {
				if p.Bits[i] > 1 {
					t.Fatalf("cell %d plane %d holds non-binary %d", i, p.Bit, p.Bits[i])
				}
				sum += int(p.Bits[i]) << p.Bit
			}
			if sum != int(q)+off {
				t.Fatalf("cell %d: planes reassemble %d, want q %d + offset %d", i, sum, q, off)
			}
		}
	})
}
