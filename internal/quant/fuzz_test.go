package quant

import "testing"

// FuzzBitSliceRoundTrip checks the bit-slice → reassemble invariant the
// crossbar engines rely on: for any quantized matrix, summing 2^Bit · plane
// over the Slices() planes reconstructs q + Offset() exactly, with planes
// ordered least significant first.
func FuzzBitSliceRoundTrip(f *testing.F) {
	f.Add(uint8(8), uint8(3), []byte{1, 255, 0, 127, 128, 5})
	f.Add(uint8(1), uint8(1), []byte{0, 1, 2})
	f.Add(uint8(4), uint8(7), []byte{200, 100, 50, 25, 12, 6, 3})
	f.Fuzz(func(t *testing.T, bitsRaw, colsRaw uint8, data []byte) {
		bits := int(bitsRaw)%8 + 1
		cols := int(colsRaw)%16 + 1
		rows := len(data) / cols
		if rows == 0 {
			return
		}
		data = data[:rows*cols]
		off := 1 << (bits - 1)
		m := &Matrix{Rows: rows, Cols: cols, Bits: bits, Scale: 0.5, Q: make([]int8, len(data))}
		for i, b := range data {
			q := int(int8(b))
			if q > off-1 {
				q = off - 1
			}
			if q < -off {
				q = -off
			}
			m.Q[i] = int8(q)
		}
		planes := m.Slices()
		if len(planes) != bits {
			t.Fatalf("%d-bit matrix sliced into %d planes", bits, len(planes))
		}
		for b, p := range planes {
			if p.Bit != b {
				t.Fatalf("plane %d has significance %d", b, p.Bit)
			}
			if p.Rows != rows || p.Cols != cols || len(p.Bits) != len(m.Q) {
				t.Fatalf("plane %d shape %dx%d (%d cells), want %dx%d", b, p.Rows, p.Cols, len(p.Bits), rows, cols)
			}
		}
		for i, q := range m.Q {
			sum := 0
			for _, p := range planes {
				if p.Bits[i] > 1 {
					t.Fatalf("cell %d plane %d holds non-binary %d", i, p.Bit, p.Bits[i])
				}
				sum += int(p.Bits[i]) << p.Bit
			}
			if sum != int(q)+off {
				t.Fatalf("cell %d: planes reassemble %d, want q %d + offset %d", i, sum, q, off)
			}
		}
	})
}
