// AVX2 micro-kernel and CPUID feature detection for the blocked signed
// integer MVM (see blocked.go and madd_amd64.go). The kernel is gated at
// runtime by detectAVX2; nothing here executes on CPUs without AVX2.

#include "textflag.h"

// func cpuidlow(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidlow(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func maddBlock(w *int8, u *uint16, acc *int32, rowPairs int)
//
// Per row pair p: broadcast the dword (u[2p] | u[2p+1]<<16) to all eight
// dword lanes, sign-extend the pair's 32 interleaved int8 weights to two
// 16×int16 vectors, VPMADDWD each against the broadcast codes — int32 lane
// j accumulates q[2p][j]·u[2p] + q[2p+1][j]·u[2p+1] — and add into the two
// YMM column accumulators (cols 0–7 in Y0, 8–15 in Y1), which are loaded
// from and stored back to acc. Overflow is impossible by the
// maxBlockedRows bound.
TEXT ·maddBlock(SB), NOSPLIT, $0-32
	MOVQ w+0(FP), DI
	MOVQ u+8(FP), SI
	MOVQ acc+16(FP), DX
	MOVQ rowPairs+24(FP), CX
	VMOVDQU (DX), Y0
	VMOVDQU 32(DX), Y1

pairloop:
	VPBROADCASTD (SI), Y2
	VPMOVSXBW (DI), Y3
	VPMADDWD Y2, Y3, Y3
	VPADDD Y3, Y0, Y0
	VPMOVSXBW 16(DI), Y4
	VPMADDWD Y2, Y4, Y4
	VPADDD Y4, Y1, Y1
	ADDQ $32, DI
	ADDQ $4, SI
	DECQ CX
	JNZ pairloop

	VMOVDQU Y0, (DX)
	VMOVDQU Y1, 32(DX)
	VZEROUPPER
	RET
