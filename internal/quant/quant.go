// Package quant implements the paper's numeric pipeline (§4.1): DNN weights
// quantized to 8 bits and spread across eight 1-bit-cell crossbars per PE
// (bit slicing), with activations streamed bit-serially through 1-bit DACs.
// Weights use offset-binary encoding — cells hold conductances, which are
// non-negative, so a signed weight q is stored as q+128 and the constant
// offset is subtracted after accumulation.
package quant

import (
	"fmt"
	"math"
	"sync"

	"autohet/internal/mat"
)

// WeightBits is the paper's default weight precision. Mixed-precision
// extensions quantize individual layers to fewer bits (QuantizeWeightsN).
const WeightBits = 8

// InputBits is the activation precision streamed through 1-bit DACs, one bit
// per cycle (so a full MVM takes InputBits crossbar read cycles).
const InputBits = 8

// offset is the offset-binary bias added to signed 8-bit weights.
const offset = 1 << (WeightBits - 1) // 128

// Matrix is a Bits-wide quantized weight matrix: w ≈ scale·q with
// q ∈ [-2^(Bits-1), 2^(Bits-1)-1]. The scale is either one symmetric
// per-tensor value (Scale) or one per output column (ColScales — the
// per-kernel granularity the hardware gets for free, because each kernel
// owns its bitline and its scale folds into that column's shift-and-add).
type Matrix struct {
	Rows, Cols int
	Bits       int
	Scale      float64
	// ColScales, when non-nil, overrides Scale per output column.
	ColScales []float64
	Q         []int8 // row-major, len Rows*Cols

	// memo caches the bit-plane stack and its packed form (Planes/Packed).
	// Matrices are shared by pointer; the memo makes re-slicing per MVM —
	// once per sliding-window patch — a one-time cost per matrix instead.
	memo struct {
		sync.Mutex
		planes  []*BitPlane
		packed  *PackedMatrix
		pairs   *PairMatrix
		blocked *BlockedMatrix
	}
}

// ScaleFor returns the dequantization scale of column j.
func (m *Matrix) ScaleFor(j int) float64 {
	if m.ColScales != nil {
		return m.ColScales[j]
	}
	return m.Scale
}

// PlaneCount returns the number of bit planes the matrix slices into.
func (m *Matrix) PlaneCount() int {
	if m.Bits == 0 {
		return WeightBits
	}
	return m.Bits
}

// Offset returns the matrix's offset-binary bias, 2^(Bits-1). A zero Bits
// field (struct-literal construction) means the default width.
func (m *Matrix) Offset() int {
	bits := m.Bits
	if bits == 0 {
		bits = WeightBits
	}
	return 1 << (bits - 1)
}

// QuantizeWeights quantizes w symmetrically to the default 8 bits.
func QuantizeWeights(w *mat.Matrix) *Matrix { return QuantizeWeightsN(w, WeightBits) }

// QuantizeWeightsN quantizes w symmetrically to bits ∈ [1, 8]. A zero
// matrix gets scale 1 so dequantization stays well-defined.
func QuantizeWeightsN(w *mat.Matrix, bits int) *Matrix {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("quant: weight bits %d outside [1,8]", bits))
	}
	off := 1 << (bits - 1)
	maxAbs := w.MaxAbs()
	maxQ := off - 1
	if maxQ == 0 {
		maxQ = 1 // 1-bit weights: q ∈ {-1, 0}; use unit scale granularity
	}
	scale := maxAbs / float64(maxQ)
	if scale == 0 {
		scale = 1
	}
	q := &Matrix{Rows: w.Rows, Cols: w.Cols, Bits: bits, Scale: scale, Q: make([]int8, len(w.Data))}
	for i, v := range w.Data {
		r := math.Round(v / scale)
		if r > float64(off-1) {
			r = float64(off - 1)
		}
		if r < float64(-off) {
			r = float64(-off)
		}
		q.Q[i] = int8(r)
	}
	return q
}

// Dequantize reconstructs the float matrix scale·Q.
func (m *Matrix) Dequantize() *mat.Matrix {
	out := mat.New(m.Rows, m.Cols)
	for i, q := range m.Q {
		out.Data[i] = m.ScaleFor(i%m.Cols) * float64(q)
	}
	return out
}

// QuantizeWeightsPerColumn quantizes w to bits with one symmetric scale per
// output column. Each column (kernel) uses its own dynamic range, which
// tightens quantization error on layers whose kernels differ in magnitude.
func QuantizeWeightsPerColumn(w *mat.Matrix, bits int) *Matrix {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("quant: weight bits %d outside [1,8]", bits))
	}
	off := 1 << (bits - 1)
	maxQ := off - 1
	if maxQ == 0 {
		maxQ = 1
	}
	q := &Matrix{Rows: w.Rows, Cols: w.Cols, Bits: bits,
		ColScales: make([]float64, w.Cols), Q: make([]int8, len(w.Data))}
	for j := 0; j < w.Cols; j++ {
		var maxAbs float64
		for i := 0; i < w.Rows; i++ {
			if a := math.Abs(w.At(i, j)); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / float64(maxQ)
		if scale == 0 {
			scale = 1
		}
		q.ColScales[j] = scale
		for i := 0; i < w.Rows; i++ {
			r := math.Round(w.At(i, j) / scale)
			if r > float64(off-1) {
				r = float64(off - 1)
			}
			if r < float64(-off) {
				r = float64(-off)
			}
			q.Q[i*w.Cols+j] = int8(r)
		}
	}
	return q
}

// At returns the quantized integer at (i, j).
func (m *Matrix) At(i, j int) int8 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("quant: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
	return m.Q[i*m.Cols+j]
}

// BitPlane is one binary slice of a weight matrix: Bits[i*Cols+j] ∈ {0,1} is
// bit `Bit` of the offset-binary weight at (i,j). Each plane is what one of
// the eight 1-bit crossbars in a PE physically stores.
type BitPlane struct {
	Rows, Cols int
	Bit        int // significance: plane contributes 2^Bit
	Bits       []uint8
}

// Slices splits the matrix into Bits offset-binary planes, least
// significant first. Reassembling Σ_b 2^b·plane_b yields q+Offset().
func (m *Matrix) Slices() []*BitPlane {
	bits := m.Bits
	if bits == 0 {
		bits = WeightBits // zero-value matrices from old constructors
	}
	off := 1 << (bits - 1)
	planes := make([]*BitPlane, bits)
	for b := range planes {
		planes[b] = &BitPlane{Rows: m.Rows, Cols: m.Cols, Bit: b, Bits: make([]uint8, len(m.Q))}
	}
	for i, q := range m.Q {
		u := uint16(int(q) + off)
		for b := 0; b < bits; b++ {
			planes[b].Bits[i] = uint8((u >> b) & 1)
		}
	}
	return planes
}

// MulVec computes dst = planeᵀ-as-stored · x restricted to binary weights:
// dst[j] = Σ_i Bits[i][j]·x[i]. This is the analog bitline summation one
// crossbar performs for one input cycle. dst has length Cols, x length Rows.
func (p *BitPlane) MulVec(dst []float64, x []float64) {
	if len(x) != p.Rows || len(dst) != p.Cols {
		panic(fmt.Sprintf("quant: BitPlane.MulVec shapes %dx%d · %d -> %d", p.Rows, p.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < p.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := p.Bits[i*p.Cols : (i+1)*p.Cols]
		for j, bit := range row {
			if bit != 0 {
				dst[j] += xi
			}
		}
	}
}

// Input is a bit-serial quantized activation vector: x ≈ Scale · u where
// u ∈ [0, 255] is decomposed into InputBits binary digit vectors (LSB
// first), each driven through the 1-bit DACs in one cycle.
type Input struct {
	N      int
	Scale  float64
	U      []uint8   // quantized unsigned values
	Digits [][]uint8 // Digits[b][i] = bit b of U[i]
	// DigitWords is the packed form of Digits: DigitWords[b] holds bit b of
	// every U[i] as a ⌈N/64⌉-word bitset (row i → word i/64, bit i%64),
	// matching PackedPlane's word order so the popcount kernels can AND
	// them directly. Built by QuantizeInput; tail bits beyond N are zero.
	DigitWords [][]uint64
}

// QuantizeInput quantizes a non-negative activation vector to 8 bits and
// decomposes it into bit-serial digits. Negative inputs (which cannot occur
// after ReLU, but may in tests) are clamped to zero.
func QuantizeInput(x []float64) *Input { return QuantizeInputInto(nil, x) }

// QuantizeInputInto is QuantizeInput reusing in's buffers (U, Digits,
// DigitWords) when their capacity allows, so callers quantizing one patch
// per sliding-window position allocate once per layer, not once per patch.
// A nil in allocates fresh. Returns the (re)used Input.
func QuantizeInputInto(in *Input, x []float64) *Input {
	if in == nil {
		in = &Input{}
	}
	var maxV float64
	for _, v := range x {
		if v > maxV {
			maxV = v
		}
	}
	scale := maxV / float64((1<<InputBits)-1)
	if scale == 0 {
		scale = 1
	}
	in.N, in.Scale = len(x), scale
	if cap(in.U) < len(x) {
		in.U = make([]uint8, len(x))
	}
	in.U = in.U[:len(x)]
	for i, v := range x {
		if v < 0 {
			v = 0
		}
		r := math.Round(v / scale)
		if r > 255 {
			r = 255
		}
		in.U[i] = uint8(r)
	}
	if cap(in.Digits) < InputBits {
		in.Digits = make([][]uint8, InputBits)
	}
	in.Digits = in.Digits[:InputBits]
	for b := 0; b < InputBits; b++ {
		if cap(in.Digits[b]) < len(x) {
			in.Digits[b] = make([]uint8, len(x))
		}
		d := in.Digits[b][:len(x)]
		for i, u := range in.U {
			d[i] = (u >> b) & 1
		}
		in.Digits[b] = d
	}
	in.DigitWords = packDigits(in.DigitWords, in.U)
	return in
}

// Dequantize reconstructs the float activation vector.
func (in *Input) Dequantize() []float64 {
	out := make([]float64, in.N)
	for i, u := range in.U {
		out[i] = in.Scale * float64(u)
	}
	return out
}

// OffsetCorrection returns the constant that must be subtracted from an
// offset-binary accumulated MVM to recover the signed result:
// offset · Σ_i u_i (in integer input units), for the default 8-bit offset.
// Mixed-precision weights use Matrix.Correction instead.
func OffsetCorrection(in *Input) float64 {
	var sum float64
	for _, u := range in.U {
		sum += float64(u)
	}
	return float64(offset) * sum
}

// Correction returns the offset-binary correction for this matrix's
// bit-width: Offset() · Σ_i u_i.
func (m *Matrix) Correction(in *Input) float64 {
	var sum float64
	for _, u := range in.U {
		sum += float64(u)
	}
	return float64(m.Offset()) * sum
}
