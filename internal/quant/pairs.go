package quant

import "fmt"

// Word-packed paired-column integer kernel — the fast-path counterpart of
// the batched popcount sweep. The bit-serial kernels pay one popcount per
// (plane, cycle, word, column, member); the ideal (noise-free) MVM result is
// just the exact integer product Σ_i (q+offset)·u, so the fast path is free
// to compute it with whole-byte arithmetic instead of bit-planes — as long
// as it produces the identical integers (asserted by FuzzBatchedMVM and the
// sim engine equivalence tests).
//
// PairMatrix packs two adjacent output columns' offset-binary codes into the
// 32-bit lanes of one uint64:
//
//	Words[i*Pairs+jp] = code(i, 2jp) | code(i, 2jp+1)<<32
//
// One multiply by a member's input code u then performs two MACs at once —
// each lane's partial product code·u ≤ 255·255 < 2^16, so lanes cannot carry
// into each other — and lane sums stay exact as long as
// Rows·255·255 < 2^32 (maxPairRows; larger matrices fall back to the scalar
// kernel). Like the popcount slab kernels, MulBatch streams each packed
// weight word once per row-block tile and reuses it for every batch member,
// so serving batches amortize the weight traffic B ways.

// maxPairRows bounds the row count for which a 32-bit accumulator lane
// cannot overflow: Rows·(2^8−1)² < 2^32.
const maxPairRows = (1<<32 - 1) / (255 * 255)

// Tile shape for MulBatch: blocks of pairColBlock pair-words are accumulated
// in registers across a pairRowTile-row sweep (one 64-byte weight line per
// row, one 64-byte code line per member), and the weight tile stays
// L1-resident while the member loop reuses it.
const (
	pairRowTile  = 64
	pairColBlock = 8
)

// PairMatrix is the paired-column offset-binary packing of a quantized
// weight matrix. Pairs = ⌈Cols/2⌉; an odd trailing column's high lane packs
// code 0 and is discarded on unpack.
type PairMatrix struct {
	Rows, Cols, Pairs int
	Words             []uint64 // row-major, len Rows*Pairs
}

// Pairs returns the matrix's paired-column packing, built once and memoized
// like Packed(). Returns nil when Rows exceeds maxPairRows (accumulator
// lanes could overflow); callers fall back to a scalar kernel. Safe for
// concurrent use.
func (m *Matrix) Pairs() *PairMatrix {
	if m.Rows > maxPairRows {
		return nil
	}
	m.memo.Lock()
	defer m.memo.Unlock()
	if m.memo.pairs == nil {
		m.memo.pairs = buildPairs(m)
	}
	return m.memo.pairs
}

func buildPairs(m *Matrix) *PairMatrix {
	pairs := (m.Cols + 1) / 2
	pm := &PairMatrix{Rows: m.Rows, Cols: m.Cols, Pairs: pairs, Words: make([]uint64, m.Rows*pairs)}
	off := int64(m.Offset())
	for i := 0; i < m.Rows; i++ {
		row := m.Q[i*m.Cols : (i+1)*m.Cols]
		dst := pm.Words[i*pairs : (i+1)*pairs]
		for jp := range dst {
			w := uint64(int64(row[2*jp]) + off)
			if 2*jp+1 < m.Cols {
				w |= uint64(int64(row[2*jp+1])+off) << 32
			}
			dst[jp] = w
		}
	}
	return pm
}

// mulBatchAcc accumulates the batched paired-column MVM into acc, which is
// member-major with length B·Pairs and arrives zeroed: member k's lane-packed
// column-pair sums land in acc[k*Pairs:(k+1)*Pairs]. The pair-word block is
// the outermost loop so each member's accumulator tile (pairColBlock words)
// stays register/L1-resident across the whole row sweep; inside, tiles of
// pairRowTile rows keep the weight words hot across all batch members —
// each packed weight word is loaded once per (batch, row-tile) regardless
// of B. The inner sweep is branchless and two-row unrolled: skipping zero
// input codes per row was measured slower than multiplying by them (the
// data-dependent branch mispredicts on post-ReLU sparsity), so sparsity is
// not special-cased.
func (pm *PairMatrix) mulBatchAcc(pb *PackedBatch, acc []uint64) {
	rows, pairs, B := pm.Rows, pm.Pairs, pb.B
	W := pm.Words
	fullJP := pairs - pairs%pairColBlock
	for jp0 := 0; jp0 < fullJP; jp0 += pairColBlock {
		for i0 := 0; i0 < rows; i0 += pairRowTile {
			i1 := min(i0+pairRowTile, rows)
			for k := 0; k < B; k++ {
				u := pb.U[k*rows : (k+1)*rows : (k+1)*rows]
				a := acc[k*pairs+jp0 : k*pairs+jp0+8 : k*pairs+jp0+8]
				a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
				a4, a5, a6, a7 := a[4], a[5], a[6], a[7]
				i := i0
				for ; i+1 < i1; i += 2 {
					u0, u1 := uint64(u[i]), uint64(u[i+1])
					w0 := W[i*pairs+jp0 : i*pairs+jp0+8 : i*pairs+jp0+8]
					w1 := W[(i+1)*pairs+jp0 : (i+1)*pairs+jp0+8 : (i+1)*pairs+jp0+8]
					a0 += w0[0]*u0 + w1[0]*u1
					a1 += w0[1]*u0 + w1[1]*u1
					a2 += w0[2]*u0 + w1[2]*u1
					a3 += w0[3]*u0 + w1[3]*u1
					a4 += w0[4]*u0 + w1[4]*u1
					a5 += w0[5]*u0 + w1[5]*u1
					a6 += w0[6]*u0 + w1[6]*u1
					a7 += w0[7]*u0 + w1[7]*u1
				}
				for ; i < i1; i++ {
					uv := uint64(u[i])
					w := W[i*pairs+jp0 : i*pairs+jp0+8 : i*pairs+jp0+8]
					a0 += w[0] * uv
					a1 += w[1] * uv
					a2 += w[2] * uv
					a3 += w[3] * uv
					a4 += w[4] * uv
					a5 += w[5] * uv
					a6 += w[6] * uv
					a7 += w[7] * uv
				}
				a[0], a[1], a[2], a[3] = a0, a1, a2, a3
				a[4], a[5], a[6], a[7] = a4, a5, a6, a7
			}
		}
	}
	if fullJP == pairs {
		return
	}
	jpw := pairs - fullJP
	for i := 0; i < rows; i++ {
		w := W[i*pairs+fullJP : (i+1)*pairs : (i+1)*pairs]
		for k := 0; k < B; k++ {
			uv := uint64(pb.U[k*rows+i])
			if uv == 0 {
				continue
			}
			a := acc[k*pairs+fullJP : (k+1)*pairs : (k+1)*pairs]
			for jp := 0; jp < jpw; jp++ {
				a[jp] += w[jp] * uv
			}
		}
	}
}

// checkPairShapes validates pb/acc agreement for one batched pair MVM.
func (pm *PairMatrix) checkPairShapes(pb *PackedBatch, outLen, accLen int) {
	if pb.N != pm.Rows {
		panic(fmt.Sprintf("quant: batch of %d-row vectors against %dx%d pair matrix", pb.N, pm.Rows, pm.Cols))
	}
	if outLen != pb.B*pm.Cols {
		panic(fmt.Sprintf("quant: batched output %d, want %dx%d", outLen, pb.B, pm.Cols))
	}
	if accLen < pb.B*pm.Pairs {
		panic(fmt.Sprintf("quant: pair scratch %d, want %dx%d", accLen, pb.B, pm.Pairs))
	}
}

// MulBatch computes the batched offset-binary MVM
//
//	out[k*Cols+j] = Σ_i (q[i][j] + offset) · u_k[i]
//
// — the same exact integers as PackedMatrix.MulBatch, via paired-column MACs
// instead of popcounts. out is member-major (length B·Cols, overwritten);
// acc is caller scratch of length ≥ B·Pairs.
func (pm *PairMatrix) MulBatch(pb *PackedBatch, out []int64, acc []uint64) {
	pm.checkPairShapes(pb, len(out), len(acc))
	acc = acc[:pb.B*pm.Pairs]
	clear(acc)
	pm.mulBatchAcc(pb, acc)
	cols, pairs := pm.Cols, pm.Pairs
	for k := 0; k < pb.B; k++ {
		a := acc[k*pairs : (k+1)*pairs]
		o := out[k*cols : (k+1)*cols]
		for jp, v := range a {
			o[2*jp] = int64(uint32(v))
			if 2*jp+1 < cols {
				o[2*jp+1] = int64(v >> 32)
			}
		}
	}
}

// MulBatchFloat is MulBatch unpacking straight into a float64 output buffer
// (the sim engine's accumulator type; every lane sum < 2^32 is exact in
// float64). out must be member-major with length B·Cols; it is overwritten.
func (pm *PairMatrix) MulBatchFloat(pb *PackedBatch, out []float64, acc []uint64) {
	pm.checkPairShapes(pb, len(out), len(acc))
	acc = acc[:pb.B*pm.Pairs]
	clear(acc)
	pm.mulBatchAcc(pb, acc)
	cols, pairs := pm.Cols, pm.Pairs
	for k := 0; k < pb.B; k++ {
		a := acc[k*pairs : (k+1)*pairs]
		o := out[k*cols : (k+1)*cols]
		for jp, v := range a {
			o[2*jp] = float64(uint32(v))
			if 2*jp+1 < cols {
				o[2*jp+1] = float64(v >> 32)
			}
		}
	}
}
