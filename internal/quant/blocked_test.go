package quant

import (
	"math/rand"
	"testing"
)

// TestBlockedMatchesReference checks the AVX2 blocked kernel bit-exactly
// against the scalar signed reference Σ_i q_i·u_i across shapes that
// exercise every tail: odd rows (scalar tail row), cols % 16 ≠ 0 (scalar
// column tail), single-member and wide batches, extreme codes (±128, 255).
func TestBlockedMatchesReference(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2 blocked kernel on this CPU")
	}
	shapes := []struct{ rows, cols, B int }{
		{2, 16, 1},
		{3, 16, 2},   // odd rows
		{64, 48, 8},  // multiple blocks
		{65, 50, 5},  // odd rows + column tail
		{1, 17, 3},   // rp == 0: tail row only
		{200, 16, 33},
		{7, 31, 4},
	}
	rng := rand.New(rand.NewSource(42))
	for _, sh := range shapes {
		m := &Matrix{Rows: sh.rows, Cols: sh.cols, Bits: 8, Scale: 1, Q: make([]int8, sh.rows*sh.cols)}
		for i := range m.Q {
			m.Q[i] = int8(rng.Intn(256) - 128)
		}
		// Force extremes into the corners.
		m.Q[0] = -128
		m.Q[len(m.Q)-1] = 127
		ins := make([]*Input, sh.B)
		for k := range ins {
			u := make([]uint8, sh.rows)
			for i := range u {
				u[i] = uint8(rng.Intn(256))
			}
			u[0] = 255
			ins[k] = &Input{N: sh.rows, Scale: 1, U: u, DigitWords: packDigits(nil, u)}
		}
		pb := PackInputs(ins)
		bw := m.Blocked()
		if sh.cols < blockedColWidth {
			if bw != nil {
				t.Fatalf("%dx%d: Blocked() should be nil below one block width", sh.rows, sh.cols)
			}
			continue
		}
		if bw == nil {
			t.Fatalf("%dx%d: Blocked() returned nil with AVX2 available", sh.rows, sh.cols)
		}
		out := make([]float64, sh.B*sh.cols)
		bw.MulBatch(pb, out, make([]uint16, sh.B*sh.rows))
		for k := 0; k < sh.B; k++ {
			for j := 0; j < sh.cols; j++ {
				var want int64
				for i := 0; i < sh.rows; i++ {
					want += int64(m.Q[i*sh.cols+j]) * int64(ins[k].U[i])
				}
				if got := int64(out[k*sh.cols+j]); got != want {
					t.Fatalf("%dx%d B=%d member %d col %d: blocked %d, reference %d",
						sh.rows, sh.cols, sh.B, k, j, got, want)
				}
			}
		}
	}
}

// TestBlockedRowBound checks the memo's overflow gate: matrices above
// maxBlockedRows must not get a blocked form.
func TestBlockedRowBound(t *testing.T) {
	m := &Matrix{Rows: maxBlockedRows + 1, Cols: 16, Bits: 8, Scale: 1, Q: make([]int8, (maxBlockedRows+1)*16)}
	if m.Blocked() != nil {
		t.Fatalf("Blocked() must refuse %d rows (bound %d)", m.Rows, maxBlockedRows)
	}
}
