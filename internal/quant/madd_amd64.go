//go:build amd64

package quant

// Runtime gating for the AVX2 blocked kernel. Detection is hand-rolled
// CPUID rather than a dependency: AVX2 requires leaf-7 EBX bit 5 *and* an
// OS that saves YMM state across context switches (CPUID leaf-1 ECX
// OSXSAVE, then XGETBV XCR0 bits 1–2).
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidlow(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuidlow(1, 0)
	const osxsave = 1 << 27
	if c&osxsave == 0 {
		return false
	}
	if eax, _ := xgetbv0(); eax&0x6 != 0x6 { // XMM and YMM state OS-enabled
		return false
	}
	_, b, _, _ := cpuidlow(7, 0)
	return b&(1<<5) != 0 // AVX2
}

//go:noescape
func cpuidlow(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// maddBlock accumulates one member's signed MVM over one 16-column weight
// block into acc[0:16] (int32, read-modified-written): for each of rowPairs
// row pairs it broadcasts the two widened input codes at u[2p], u[2p+1] and
// multiply-adds the 32 interleaved int8 weights at w[32p:32p+32]. rowPairs
// must be ≥ 1 and small enough that lanes cannot overflow (maxBlockedRows).
// AVX2 only — callers gate on Matrix.Blocked() returning non-nil.
//
//go:noescape
func maddBlock(w *int8, u *uint16, acc *int32, rowPairs int)
