//go:build !amd64

package quant

// Non-amd64 builds have no AVX2 kernel; Matrix.Blocked() always returns
// nil and callers fall back to the pair or scalar kernels.
const hasAVX2 = false

func maddBlock(w *int8, u *uint16, acc *int32, rowPairs int) {
	panic("quant: maddBlock called without AVX2 support")
}
