package quant

import (
	"math/rand"
	"testing"
)

// randMatrix builds a deterministic quantized matrix for kernel tests.
func randMatrix(rng *rand.Rand, rows, cols, bits int) *Matrix {
	off := 1 << (bits - 1)
	m := &Matrix{Rows: rows, Cols: cols, Bits: bits, Scale: 1, Q: make([]int8, rows*cols)}
	for i := range m.Q {
		m.Q[i] = int8(rng.Intn(2*off) - off)
	}
	return m
}

// TestQuantizeBatchMatchesQuantizeInput: batch quantization must reproduce
// QuantizeInput member for member — same scales, same codes, same digit
// words — since bit-exactness of the batched engine rests on it.
func TestQuantizeBatchMatchesQuantizeInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, b = 130, 5 // two full words + ragged tail
	xs := make([][]float64, b)
	flat := make([]float64, n*b)
	for k := range xs {
		xs[k] = make([]float64, n)
		for i := range xs[k] {
			v := rng.Float64()*20 - 2 // include negatives (clamped to 0)
			xs[k][i] = v
			flat[k*n+i] = v
		}
	}
	xs[2] = make([]float64, n) // all-zero member: scale falls back to 1
	copy(flat[2*n:3*n], xs[2])

	for name, pb := range map[string]*PackedBatch{
		"slices": QuantizeBatchInto(nil, xs),
		"flat":   QuantizeBatchFlatInto(nil, flat, n, b),
	} {
		if pb.N != n || pb.B != b || pb.Words != (n+63)/64 {
			t.Fatalf("%s: batch shape %dx%d (%d words)", name, pb.N, pb.B, pb.Words)
		}
		for k := 0; k < b; k++ {
			want := QuantizeInput(xs[k])
			if pb.Scales[k] != want.Scale {
				t.Fatalf("%s member %d: scale %v, want %v", name, k, pb.Scales[k], want.Scale)
			}
			u := pb.Member(k)
			var usum float64
			for i := range u {
				if u[i] != want.U[i] {
					t.Fatalf("%s member %d row %d: code %d, want %d", name, k, i, u[i], want.U[i])
				}
				usum += float64(u[i])
			}
			if pb.USums[k] != usum {
				t.Fatalf("%s member %d: usum %v, want %v", name, k, pb.USums[k], usum)
			}
			for bit := 0; bit < InputBits; bit++ {
				for w := 0; w < pb.Words; w++ {
					if got := pb.DigitWord(w, k, bit); got != want.DigitWords[bit][w] {
						t.Fatalf("%s member %d bit %d word %d: %#x, want %#x", name, k, bit, w, got, want.DigitWords[bit][w])
					}
				}
			}
		}
	}
}

// TestPackInputsRoundTrip: packing pre-quantized Inputs preserves codes,
// scales, and digit words exactly.
func TestPackInputsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, b = 70, 3
	ins := make([]*Input, b)
	for k := range ins {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 9
		}
		ins[k] = QuantizeInput(x)
	}
	pb := PackInputs(ins)
	for k, in := range ins {
		if pb.Scales[k] != in.Scale {
			t.Fatalf("member %d: scale %v, want %v", k, pb.Scales[k], in.Scale)
		}
		for bit := 0; bit < InputBits; bit++ {
			for w := 0; w < pb.Words; w++ {
				if got := pb.DigitWord(w, k, bit); got != in.DigitWords[bit][w] {
					t.Fatalf("member %d bit %d word %d: %#x, want %#x", k, bit, w, got, in.DigitWords[bit][w])
				}
			}
		}
	}
	// Reuse with a smaller batch must fully reset the slab.
	pb2 := PackInputsInto(pb, ins[:1])
	for bit := 0; bit < InputBits; bit++ {
		for w := 0; w < pb2.Words; w++ {
			if got := pb2.DigitWord(w, 0, bit); got != ins[0].DigitWords[bit][w] {
				t.Fatalf("reused batch bit %d word %d: %#x, want %#x", bit, w, got, ins[0].DigitWords[bit][w])
			}
		}
	}
}

// TestBatchedKernelsMatchSingleVector: ColSumCycles / ColRangeSumCycles /
// ColRangeSumBatch / MulBatch against the single-vector ColSum and
// ColRangeSum kernels, over ragged shapes and row bands.
func TestBatchedKernelsMatchSingleVector(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct{ rows, cols, bits, b int }{
		{5, 3, 8, 1},
		{64, 4, 8, 7},
		{70, 2, 4, 8},
		{200, 6, 1, 3},
		{129, 5, 8, 32},
	} {
		m := randMatrix(rng, tc.rows, tc.cols, tc.bits)
		pm := m.Packed()
		ins := make([]*Input, tc.b)
		for k := range ins {
			x := make([]float64, tc.rows)
			for i := range x {
				x[i] = rng.Float64() * 100
			}
			ins[k] = QuantizeInput(x)
		}
		pb := PackInputs(ins)

		split := tc.rows / 3
		acc := make([]int64, tc.b)
		sums := make([]int64, tc.b)
		for j := 0; j < tc.cols; j++ {
			for _, p := range pm.Planes {
				// Full-height fused sweep == Σ_b ColSum << b per member.
				clear(acc)
				p.ColSumCycles(j, pb, acc)
				for k, in := range ins {
					var want int64
					for b := 0; b < InputBits; b++ {
						want += int64(p.ColSum(j, in.DigitWords[b])) << uint(b)
					}
					if acc[k] != want {
						t.Fatalf("%dx%d/%d-bit B=%d: ColSumCycles col %d plane %d member %d: %d, want %d",
							tc.rows, tc.cols, tc.bits, tc.b, j, p.Bit, k, acc[k], want)
					}
				}
				// Band-split fused sweep sums to the full-height sweep.
				clear(sums)
				p.ColRangeSumCycles(j, 0, split, pb, sums)
				p.ColRangeSumCycles(j, split, tc.rows, pb, sums)
				for k := range sums {
					if sums[k] != acc[k] {
						t.Fatalf("col %d plane %d member %d: band split %d, full %d", j, p.Bit, k, sums[k], acc[k])
					}
				}
				// Per-cycle band reads match ColRangeSum member for member.
				for b := 0; b < InputBits; b++ {
					p.ColRangeSumBatch(j, split, tc.rows, b, pb, sums)
					for k, in := range ins {
						if want := int64(p.ColRangeSum(j, split, tc.rows, in.DigitWords[b])); sums[k] != want {
							t.Fatalf("col %d plane %d bit %d member %d: %d, want %d", j, p.Bit, b, k, sums[k], want)
						}
					}
				}
			}
		}

		// MulBatch == integer reference per member.
		out := make([]int64, tc.b*tc.cols)
		pm.MulBatch(pb, out)
		off := int64(m.Offset())
		for k, in := range ins {
			for j := 0; j < tc.cols; j++ {
				var want int64
				for i := 0; i < tc.rows; i++ {
					want += (int64(m.Q[i*tc.cols+j]) + off) * int64(in.U[i])
				}
				if out[k*tc.cols+j] != want {
					t.Fatalf("%dx%d/%d-bit B=%d: MulBatch member %d col %d: %d, want %d",
						tc.rows, tc.cols, tc.bits, tc.b, k, j, out[k*tc.cols+j], want)
				}
			}
		}
	}
}

// TestQuantizeBatchFlatZeroAllocs: warm batch quantization must not
// allocate — the per-patch Input construction the batched engine lifted
// out of the inner loop must not creep back in.
func TestQuantizeBatchFlatZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, b = 363, 32
	flat := make([]float64, n*b)
	for i := range flat {
		flat[i] = rng.Float64() * 5
	}
	pb := QuantizeBatchFlatInto(nil, flat, n, b)
	avg := testing.AllocsPerRun(50, func() {
		pb = QuantizeBatchFlatInto(pb, flat, n, b)
	})
	if avg != 0 {
		t.Fatalf("warm QuantizeBatchFlatInto allocates %.2f times per call, want 0", avg)
	}
}
