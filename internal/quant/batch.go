package quant

import (
	"fmt"
	"math"
	"math/bits"
)

// Batched bit-matrix × bit-matrix MVM support. The single-vector packed
// kernel (PackedPlane.ColSum) walks every packed weight word once per input
// vector: serving B inputs re-reads the whole plane stack B times, and the
// per-(cycle, plane, bitline) loop overhead is paid per read. PackedBatch
// fixes both by packing a *batch* of B quantized input vectors into one
// member-interleaved digit slab, so a batched kernel sweeps each weight
// word exactly once per batch:
//
//	for each plane word cw:             // loaded once per batch
//	    for each member k:              // B reuses of cw
//	        for each input bit b:       // 8 reuses of member k's window
//	            sum[k] += popcount(cw & digits[w][k][b]) << b
//
// The arithmetic per member is identical to the single-vector kernel — the
// same popcounts, shifted and summed in a different order over exact
// integers — so batched results are bit-identical to B independent MVMs
// (asserted by FuzzBatchedMVM and the sim equivalence tests). What changes
// is the amortization: one weight-word load and one band-mask evaluation
// serve B·InputBits popcounts instead of one, exactly like the serving
// fleet amortizes per-request overhead via dynamic batching.
//
// Digit layout: Digits[(w*B+k)*InputBits+b] is word w of member k's bit-b
// digit bitset (same row→bit order as PackedPlane words). Bits are adjacent
// for one (word, member) so the 8-cycle sweep is one contiguous 64-byte
// window; members are adjacent within a word so the member loop streams
// sequentially while the weight word stays in a register.

// The 8-way unrolled cycle sweeps below are written for the fixed
// InputBits; this trips at compile time if the constant ever moves.
var _ = [1]struct{}{}[InputBits-8]

// PackedBatch is a batch of B bit-serial quantized input vectors packed
// for the batched popcount kernels. All per-member views are member-major:
// member k's codes live in U[k*N:(k+1)*N].
type PackedBatch struct {
	N     int // rows per input vector
	B     int // batch size
	Words int // ⌈N/64⌉ bitset words per member per input bit

	// Scales holds each member's activation dequantization scale (the same
	// value Input.Scale carries for a single vector).
	Scales []float64
	// USums caches Σ_i U[k][i] per member — the offset-binary correction
	// needs it once per (member, output column) batch.
	USums []float64
	// U holds the quantized unsigned codes, member-major.
	U []uint8
	// Digits is the interleaved digit slab: Digits[(w*B+k)*InputBits+b].
	Digits []uint64
}

// Member returns member k's quantized codes.
func (pb *PackedBatch) Member(k int) []uint8 { return pb.U[k*pb.N : (k+1)*pb.N] }

// DigitWord returns word w of member k's bit-b digit bitset (test hook).
func (pb *PackedBatch) DigitWord(w, k, b int) uint64 {
	return pb.Digits[(w*pb.B+k)*InputBits+b]
}

// resize grows the batch's buffers for n-row vectors in batches of b,
// reusing capacity. With digits set it zeroes the digit slab; without, the
// slab is truncated to zero length (keeping capacity) so any bit-serial
// kernel run against a codes-only batch fails fast on an index instead of
// reading stale bits.
func (pb *PackedBatch) resize(n, b int, digits bool) {
	if n <= 0 || b <= 0 {
		panic(fmt.Sprintf("quant: packed batch shape %d rows x %d members", n, b))
	}
	pb.N, pb.B = n, b
	pb.Words = (n + 63) / 64
	if cap(pb.Scales) < b {
		pb.Scales = make([]float64, b)
		pb.USums = make([]float64, b)
	}
	pb.Scales, pb.USums = pb.Scales[:b], pb.USums[:b]
	if cap(pb.U) < n*b {
		pb.U = make([]uint8, n*b)
	}
	pb.U = pb.U[:n*b]
	if !digits {
		pb.Digits = pb.Digits[:0]
		return
	}
	words := pb.Words * b * InputBits
	if cap(pb.Digits) < words {
		pb.Digits = make([]uint64, words)
	}
	pb.Digits = pb.Digits[:words]
	clear(pb.Digits)
}

// setMember installs member k's already-quantized codes (U must hold them)
// into the digit slab. The slab rows for k must be zero (resize clears the
// whole slab).
func (pb *PackedBatch) setMember(k int) {
	u := pb.Member(k)
	b := pb.B
	for i, c := range u {
		if c == 0 {
			continue
		}
		base := ((i>>6)*b + k) * InputBits
		bit := uint64(1) << uint(i&63)
		for v := c; v != 0; v &= v - 1 {
			pb.Digits[base+bits.TrailingZeros8(v)] |= bit
		}
	}
}

// quantizeMember quantizes member k's activation vector exactly as
// QuantizeInput does for a single vector (per-member scale from its own
// max, negatives clamped, round-to-nearest), caches its code sum, and —
// when digits is set — packs its digit words.
func (pb *PackedBatch) quantizeMember(k int, x []float64, digits bool) {
	var maxV float64
	for _, v := range x {
		if v > maxV {
			maxV = v
		}
	}
	scale := maxV / float64((1<<InputBits)-1)
	if scale == 0 {
		scale = 1
	}
	pb.Scales[k] = scale
	u := pb.Member(k)
	var sum float64
	for i, v := range x {
		if v < 0 {
			v = 0
		}
		r := math.Round(v / scale)
		if r > 255 {
			r = 255
		}
		u[i] = uint8(r)
		sum += r
	}
	pb.USums[k] = sum
	if digits {
		pb.setMember(k)
	}
}

// QuantizeBatchFlatInto quantizes a batch of b activation vectors stored
// member-major in one flat buffer (member k at xs[k*n:(k+1)*n]) into pb,
// reusing its buffers — the whole batch is quantized and packed in one
// pass, with no per-member Input construction. A nil pb allocates fresh.
func QuantizeBatchFlatInto(pb *PackedBatch, xs []float64, n, b int) *PackedBatch {
	return quantizeBatchFlat(pb, xs, n, b, true)
}

// QuantizeBatchFlatCodesInto is QuantizeBatchFlatInto without packing the
// bit-serial digit slab. The byte-code kernels (blocked, pair, scalar fast
// paths) never read digit words, and packing them is the single largest
// non-kernel cost per batch; the popcount kernels panic on a codes-only
// batch rather than compute garbage (resize truncates Digits).
func QuantizeBatchFlatCodesInto(pb *PackedBatch, xs []float64, n, b int) *PackedBatch {
	return quantizeBatchFlat(pb, xs, n, b, false)
}

func quantizeBatchFlat(pb *PackedBatch, xs []float64, n, b int, digits bool) *PackedBatch {
	if len(xs) != n*b {
		panic(fmt.Sprintf("quant: flat batch %d values, want %dx%d", len(xs), b, n))
	}
	if pb == nil {
		pb = &PackedBatch{}
	}
	pb.resize(n, b, digits)
	for k := 0; k < b; k++ {
		pb.quantizeMember(k, xs[k*n:(k+1)*n], digits)
	}
	return pb
}

// QuantizeBatchInto is QuantizeBatchFlatInto over per-member slices (all
// the same length).
func QuantizeBatchInto(pb *PackedBatch, xs [][]float64) *PackedBatch {
	if len(xs) == 0 {
		panic("quant: empty batch")
	}
	if pb == nil {
		pb = &PackedBatch{}
	}
	pb.resize(len(xs[0]), len(xs), true)
	for k, x := range xs {
		if len(x) != pb.N {
			panic(fmt.Sprintf("quant: batch member %d has %d rows, member 0 has %d", k, len(x), pb.N))
		}
		pb.quantizeMember(k, x, true)
	}
	return pb
}

// PackInputs packs already-quantized Inputs (which must share N) into a
// batch, preserving their codes and scales exactly.
func PackInputs(ins []*Input) *PackedBatch {
	return PackInputsInto(nil, ins)
}

// PackInputsInto is PackInputs reusing pb's buffers.
func PackInputsInto(pb *PackedBatch, ins []*Input) *PackedBatch {
	if len(ins) == 0 {
		panic("quant: empty batch")
	}
	if pb == nil {
		pb = &PackedBatch{}
	}
	pb.resize(ins[0].N, len(ins), true)
	for k, in := range ins {
		if in.N != pb.N {
			panic(fmt.Sprintf("quant: batch member %d has %d rows, member 0 has %d", k, in.N, pb.N))
		}
		pb.Scales[k] = in.Scale
		copy(pb.Member(k), in.U)
		var sum float64
		for _, c := range in.U {
			sum += float64(c)
		}
		pb.USums[k] = sum
		pb.setMember(k)
	}
	return pb
}

// ColSumCycles accumulates, for every batch member k, the full-height
// bit-serial read of plane column j over all InputBits cycles:
//
//	acc[k] += Σ_b popcount(col_j ∧ digits_{k,b}) << b
//
// — the per-plane integer partial sum of member k's MVM, with the weight
// word loaded once per batch and reused B·InputBits times. acc has length
// ≥ B; tail bits beyond Rows are zero in both operands, so no masking.
func (p *PackedPlane) ColSumCycles(j int, pb *PackedBatch, acc []int64) {
	col := p.Col(j)
	B := pb.B
	for w, cw := range col {
		if cw == 0 {
			continue
		}
		d := pb.Digits[w*B*InputBits:]
		for k := 0; k < B; k++ {
			dk := d[k*InputBits : k*InputBits+8 : k*InputBits+8]
			s := bits.OnesCount64(cw & dk[0])
			s += bits.OnesCount64(cw&dk[1]) << 1
			s += bits.OnesCount64(cw&dk[2]) << 2
			s += bits.OnesCount64(cw&dk[3]) << 3
			s += bits.OnesCount64(cw&dk[4]) << 4
			s += bits.OnesCount64(cw&dk[5]) << 5
			s += bits.OnesCount64(cw&dk[6]) << 6
			s += bits.OnesCount64(cw&dk[7]) << 7
			acc[k] += int64(s)
		}
	}
}

// ColRangeSumCycles is ColSumCycles restricted to rows [r0, r1) — the
// batched read of a crossbar band.
func (p *PackedPlane) ColRangeSumCycles(j, r0, r1 int, pb *PackedBatch, acc []int64) {
	if r0 >= r1 {
		return
	}
	col := p.Col(j)
	w0, w1 := r0>>6, (r1-1)>>6
	first := ^uint64(0) << uint(r0&63)
	last := ^uint64(0) >> uint(63-(r1-1)&63)
	B := pb.B
	for w := w0; w <= w1; w++ {
		cw := col[w]
		if w == w0 {
			cw &= first
		}
		if w == w1 {
			cw &= last
		}
		if cw == 0 {
			continue
		}
		d := pb.Digits[w*B*InputBits:]
		for k := 0; k < B; k++ {
			dk := d[k*InputBits : k*InputBits+8 : k*InputBits+8]
			s := bits.OnesCount64(cw & dk[0])
			s += bits.OnesCount64(cw&dk[1]) << 1
			s += bits.OnesCount64(cw&dk[2]) << 2
			s += bits.OnesCount64(cw&dk[3]) << 3
			s += bits.OnesCount64(cw&dk[4]) << 4
			s += bits.OnesCount64(cw&dk[5]) << 5
			s += bits.OnesCount64(cw&dk[6]) << 6
			s += bits.OnesCount64(cw&dk[7]) << 7
			acc[k] += int64(s)
		}
	}
}

// ColRangeSumBatch computes, for every member k, the single-cycle bitline
// read of plane column j over rows [r0, r1) for input bit b:
//
//	sums[k] = popcount(col_j[r0:r1] ∧ digits_{k,b}[r0:r1])
//
// The noisy bit-exact pipeline uses it so per-conversion noise can be
// injected in the same (cycle, plane, column) order as the scalar
// reference while still loading each weight word once per batch.
func (p *PackedPlane) ColRangeSumBatch(j, r0, r1, b int, pb *PackedBatch, sums []int64) {
	B := pb.B
	for k := 0; k < B; k++ {
		sums[k] = 0
	}
	if r0 >= r1 {
		return
	}
	col := p.Col(j)
	w0, w1 := r0>>6, (r1-1)>>6
	first := ^uint64(0) << uint(r0&63)
	last := ^uint64(0) >> uint(63-(r1-1)&63)
	for w := w0; w <= w1; w++ {
		cw := col[w]
		if w == w0 {
			cw &= first
		}
		if w == w1 {
			cw &= last
		}
		if cw == 0 {
			continue
		}
		d := pb.Digits[w*B*InputBits+b:]
		for k := 0; k < B; k++ {
			sums[k] += int64(bits.OnesCount64(cw & d[k*InputBits]))
		}
	}
}

// MulBatch computes the full batched offset-binary MVM over every plane:
//
//	out[k*Cols+j] = Σ_planes 2^Bit · Σ_b 2^b · popcount(plane_j ∧ digits_{k,b})
//	             = Σ_i (q[i][j] + offset) · u_k[i]
//
// out is member-major with length B·Cols and is overwritten. This is the
// reference-shaped batched kernel the fuzzer compares against B independent
// single-vector MVMs; the sim engine's grid execution splits the same sums
// over crossbar row bands.
func (m *PackedMatrix) MulBatch(pb *PackedBatch, out []int64) {
	if pb.N != m.Rows {
		panic(fmt.Sprintf("quant: batch of %d-row vectors against %dx%d matrix", pb.N, m.Rows, m.Cols))
	}
	if len(out) != pb.B*m.Cols {
		panic(fmt.Sprintf("quant: batched output %d, want %dx%d", len(out), pb.B, m.Cols))
	}
	clear(out)
	tmp := make([]int64, pb.B)
	for j := 0; j < m.Cols; j++ {
		for _, p := range m.Planes {
			clear(tmp)
			p.ColSumCycles(j, pb, tmp)
			for k, s := range tmp {
				out[k*m.Cols+j] += s << uint(p.Bit)
			}
		}
	}
}
