package quant

import (
	"math/rand"
	"testing"
)

// benchKernelSetup builds a random 8-bit weight matrix and a quantized
// input batch with roughly `sparsity` fraction of zero activations (the
// post-ReLU regime the serving path sees).
func benchKernelSetup(rows, cols, B int, sparsity float64) (*Matrix, *PackedBatch) {
	rng := rand.New(rand.NewSource(1))
	m := &Matrix{Rows: rows, Cols: cols, Bits: 8, Scale: 1, Q: make([]int8, rows*cols)}
	for i := range m.Q {
		m.Q[i] = int8(rng.Intn(256) - 128)
	}
	xs := make([]float64, rows*B)
	for i := range xs {
		if rng.Float64() >= sparsity {
			xs[i] = rng.Float64() * 100
		}
	}
	pb := QuantizeBatchFlatInto(nil, xs, rows, B)
	return m, pb
}

// The conv4-shaped (3456×256, B=32) kernel legs: paired-column scalar vs
// AVX2 blocked. SetBytes counts MACs, so MB/s reads as MMAC/s.
func BenchmarkPairMulBatchConv4(b *testing.B) {
	m, pb := benchKernelSetup(3456, 256, 32, 0.4)
	pw := m.Pairs()
	out := make([]float64, pb.B*m.Cols)
	acc := make([]uint64, pb.B*pw.Pairs)
	b.SetBytes(int64(m.Rows) * int64(m.Cols) * int64(pb.B))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pw.MulBatchFloat(pb, out, acc)
	}
}

func BenchmarkBlockedMulBatchConv4(b *testing.B) {
	m, pb := benchKernelSetup(3456, 256, 32, 0.4)
	bw := m.Blocked()
	if bw == nil {
		b.Skip("no AVX2 blocked kernel on this CPU")
	}
	out := make([]float64, pb.B*m.Cols)
	u16 := make([]uint16, pb.B*pb.N)
	b.SetBytes(int64(m.Rows) * int64(m.Cols) * int64(pb.B))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw.MulBatch(pb, out, u16)
	}
}
