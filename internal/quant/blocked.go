package quant

import "fmt"

// SIMD-blocked signed integer kernel — the widest fast path. Where
// PairMatrix packs two offset-binary codes per 64-bit multiply (2 MACs per
// IMUL), the blocked layout feeds an AVX2 VPMADDWD micro-kernel that
// performs 16 multiply-accumulates per instruction: weights are stored as
// signed int8 with two consecutive rows interleaved per 16-column block,
//
//	Data[blk][pair][2j+0] = q[2p][j0+j]    (j0 = 16·blk)
//	Data[blk][pair][2j+1] = q[2p+1][j0+j]
//
// so one VPMOVSXBW widens 16 bytes to 16 int16 lanes and one VPMADDWD
// against the broadcast pair (u[2p] | u[2p+1]<<16) adds q[2p][j]·u[2p] +
// q[2p+1][j]·u[2p+1] into 8 of 16 int32 column accumulators. Unlike the
// bit-plane and pair kernels, this computes the *signed* product Σ_i q_i·u_i
// directly — no offset-binary correction term — which is exactly the fast
// path's contract (integerMVMInto). Every intermediate is an exact integer,
// so the result is bit-identical to the scalar reference; equivalence is
// asserted by FuzzBatchedMVM and the sim engine oracle tests.
//
// The kernel is gated at runtime: Blocked() returns nil unless the CPU
// reports AVX2 with OS-enabled YMM state (see detectAVX2), the row count
// fits the int32 accumulator bound, and the matrix is at least one block
// wide. Callers fall back to the pair or scalar kernels on nil.

// maxBlockedRows bounds the row count for which a 16-lane int32 accumulator
// cannot overflow: one row-pair VPMADDWD step contributes at most
// 2·128·255 = 65280 per lane (|q| ≤ 128, u ≤ 255), int32 absorbs
// ⌊(2³¹−1)/65280⌋ = 32895 such steps, and the odd tail row adds at most
// half of one more.
const maxBlockedRows = 2*((1<<31-1)/65280) + 1

// blockedColWidth is the column width of one kernel block: 16 int8 codes
// widen into sixteen 16-bit lanes of one YMM register.
const blockedColWidth = 16

// BlockedMatrix is the row-pair-interleaved signed int8 packing of a
// quantized weight matrix, consumed by the AVX2 maddBlock micro-kernel.
// The trailing Cols%16 columns and (for odd Rows) the last row are not
// blocked; MulBatch finishes them with scalar sweeps over q.
type BlockedMatrix struct {
	Rows, Cols int
	Blocks     int    // full 16-column blocks
	RowPairs   int    // ⌊Rows/2⌋ interleaved row pairs per block
	Data       []int8 // Blocks × RowPairs × 32 bytes, layout above
	q          []int8 // source row-major codes, for the row/column tails
}

// Blocked returns the matrix's SIMD-blocked packing, built once and
// memoized like Packed() and Pairs(). Returns nil when the running CPU
// lacks AVX2, when Rows exceeds maxBlockedRows, or when the matrix is
// narrower than one block; callers fall back to another kernel. Safe for
// concurrent use.
func (m *Matrix) Blocked() *BlockedMatrix {
	if !hasAVX2 || m.Rows > maxBlockedRows || m.Cols < blockedColWidth {
		return nil
	}
	m.memo.Lock()
	defer m.memo.Unlock()
	if m.memo.blocked == nil {
		m.memo.blocked = buildBlocked(m)
	}
	return m.memo.blocked
}

func buildBlocked(m *Matrix) *BlockedMatrix {
	nb := m.Cols / blockedColWidth
	rp := m.Rows / 2
	bm := &BlockedMatrix{
		Rows: m.Rows, Cols: m.Cols,
		Blocks: nb, RowPairs: rp,
		Data: make([]int8, nb*rp*2*blockedColWidth),
		q:    m.Q,
	}
	for bi := 0; bi < nb; bi++ {
		j0 := bi * blockedColWidth
		dst := bm.Data[bi*rp*2*blockedColWidth:]
		for p := 0; p < rp; p++ {
			r0 := m.Q[(2*p)*m.Cols+j0 : (2*p)*m.Cols+j0+blockedColWidth]
			r1 := m.Q[(2*p+1)*m.Cols+j0 : (2*p+1)*m.Cols+j0+blockedColWidth]
			d := dst[p*2*blockedColWidth : (p+1)*2*blockedColWidth]
			for j := 0; j < blockedColWidth; j++ {
				d[2*j] = r0[j]
				d[2*j+1] = r1[j]
			}
		}
	}
	return bm
}

// checkBlockedShapes validates pb/out/scratch agreement for one batched
// blocked MVM.
func (bm *BlockedMatrix) checkBlockedShapes(pb *PackedBatch, outLen, scratchLen int) {
	if pb.N != bm.Rows {
		panic(fmt.Sprintf("quant: batch of %d-row vectors against %dx%d blocked matrix", pb.N, bm.Rows, bm.Cols))
	}
	if outLen != pb.B*bm.Cols {
		panic(fmt.Sprintf("quant: batched output %d, want %dx%d", outLen, pb.B, bm.Cols))
	}
	if scratchLen < pb.B*pb.N {
		panic(fmt.Sprintf("quant: blocked scratch %d, want %dx%d", scratchLen, pb.B, pb.N))
	}
}

// MulBatch computes the batched signed MVM
//
//	out[k*Cols+j] = Σ_i q[i][j] · u_k[i]
//
// (note: no offset term — this is the fast path's signed contract, equal to
// the offset-binary kernels' result minus offset·Σu). out is member-major
// (length B·Cols, overwritten); u16 is caller scratch of length ≥ B·N that
// holds the batch's input codes widened to the uint16 lanes VPMADDWD
// consumes. The weight block is the outer loop so each block's RowPairs×32
// bytes stay cache-resident while the member loop reuses them — the batched
// amortization mirrors the bit-plane and pair kernels.
func (bm *BlockedMatrix) MulBatch(pb *PackedBatch, out []float64, u16 []uint16) {
	bm.checkBlockedShapes(pb, len(out), len(u16))
	N, B := pb.N, pb.B
	cols, nb, rp := bm.Cols, bm.Blocks, bm.RowPairs
	u16 = u16[:B*N]
	for i, c := range pb.U {
		u16[i] = uint16(c)
	}
	blkStride := rp * 2 * blockedColWidth
	var acc [blockedColWidth]int32
	for bi := 0; bi < nb; bi++ {
		j0 := bi * blockedColWidth
		var wblk []int8
		if rp > 0 {
			wblk = bm.Data[bi*blkStride : (bi+1)*blkStride]
		}
		for k := 0; k < B; k++ {
			acc = [blockedColWidth]int32{}
			if rp > 0 {
				maddBlock(&wblk[0], &u16[k*N], &acc[0], rp)
			}
			if 2*rp < N { // odd tail row, scalar
				if uv := int32(pb.U[k*N+N-1]); uv != 0 {
					row := bm.q[(N-1)*cols+j0 : (N-1)*cols+j0+blockedColWidth]
					for j, q := range row {
						acc[j] += int32(q) * uv
					}
				}
			}
			o := out[k*cols+j0 : k*cols+j0+blockedColWidth]
			for j := range o {
				o[j] = float64(acc[j])
			}
		}
	}
	// Trailing Cols%16 columns: scalar column sweep over the source codes.
	if t0 := nb * blockedColWidth; t0 < cols {
		tw := cols - t0
		var tacc [blockedColWidth]int32
		for k := 0; k < B; k++ {
			for j := 0; j < tw; j++ {
				tacc[j] = 0
			}
			u := pb.U[k*N : (k+1)*N]
			for i, c := range u {
				if c == 0 {
					continue
				}
				uv := int32(c)
				row := bm.q[i*cols+t0 : (i+1)*cols]
				for j, q := range row {
					tacc[j] += int32(q) * uv
				}
			}
			o := out[k*cols+t0 : (k+1)*cols]
			for j := range o {
				o[j] = float64(tacc[j])
			}
		}
	}
}
