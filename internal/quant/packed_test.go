package quant

import (
	"math/rand"
	"testing"
)

// randomMatrix returns a quantized matrix with uniformly random codes at the
// given bit width, including the extremes -2^(b-1) and 2^(b-1)-1.
func randomMatrix(rng *rand.Rand, rows, cols, bits int) *Matrix {
	off := 1 << (bits - 1)
	m := &Matrix{Rows: rows, Cols: cols, Bits: bits, Scale: 1, Q: make([]int8, rows*cols)}
	for i := range m.Q {
		m.Q[i] = int8(rng.Intn(2*off) - off)
	}
	return m
}

func TestPackPlaneRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Rows chosen to exercise sub-word, exact-word, and ragged tails.
	for _, rows := range []int{1, 63, 64, 65, 100, 128, 129} {
		m := randomMatrix(rng, rows, 5, 8)
		for _, p := range m.Slices() {
			pp := PackPlane(p)
			if pp.Rows != rows || pp.Cols != 5 || pp.Bit != p.Bit {
				t.Fatalf("rows=%d: packed shape %d×%d bit %d", rows, pp.Rows, pp.Cols, pp.Bit)
			}
			if pp.WordsPerCol != (rows+63)/64 {
				t.Fatalf("rows=%d: WordsPerCol %d", rows, pp.WordsPerCol)
			}
			for j := 0; j < pp.Cols; j++ {
				col := pp.Col(j)
				for i := 0; i < rows; i++ {
					got := uint8(col[i>>6] >> uint(i&63) & 1)
					if got != p.Bits[i*p.Cols+j] {
						t.Fatalf("rows=%d plane %d cell (%d,%d): packed %d byte %d", rows, p.Bit, i, j, got, p.Bits[i*p.Cols+j])
					}
				}
				// Tail bits beyond Rows must be zero so full-column popcounts
				// need no masking.
				for i := rows; i < pp.WordsPerCol*64; i++ {
					if col[i>>6]>>uint(i&63)&1 != 0 {
						t.Fatalf("rows=%d plane %d col %d: tail bit %d set", rows, p.Bit, j, i)
					}
				}
			}
		}
	}
}

func TestColRangeSumMatchesByteLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const rows, cols = 150, 4
	m := randomMatrix(rng, rows, cols, 4)
	x := make([]float64, rows)
	for i := range x {
		x[i] = rng.Float64() * 3
	}
	in := QuantizeInput(x)
	ranges := [][2]int{{0, rows}, {0, 64}, {0, 63}, {1, 63}, {63, 65}, {64, 128}, {37, 100}, {128, 150}, {149, 150}, {5, 5}}
	for _, p := range m.Slices() {
		pp := PackPlane(p)
		for _, rr := range ranges {
			r0, r1 := rr[0], rr[1]
			for j := 0; j < cols; j++ {
				for b := 0; b < InputBits; b++ {
					want := 0
					for i := r0; i < r1; i++ {
						if p.Bits[i*p.Cols+j] != 0 && in.Digits[b][i] != 0 {
							want++
						}
					}
					if got := pp.ColRangeSum(j, r0, r1, in.DigitWords[b]); got != want {
						t.Fatalf("plane %d col %d rows [%d,%d) cycle %d: packed %d byte %d", p.Bit, j, r0, r1, b, got, want)
					}
					if r0 == 0 && r1 == rows {
						if got := pp.ColSum(j, in.DigitWords[b]); got != want {
							t.Fatalf("plane %d col %d cycle %d: ColSum %d byte %d", p.Bit, j, b, got, want)
						}
					}
				}
			}
		}
	}
}

func TestDigitWordsMatchDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 64, 65, 200} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		in := QuantizeInput(x)
		if len(in.DigitWords) != InputBits {
			t.Fatalf("n=%d: %d digit word rows", n, len(in.DigitWords))
		}
		for b := 0; b < InputBits; b++ {
			if len(in.DigitWords[b]) != (n+63)/64 {
				t.Fatalf("n=%d cycle %d: %d words", n, b, len(in.DigitWords[b]))
			}
			for i := 0; i < n; i++ {
				got := uint8(in.DigitWords[b][i>>6] >> uint(i&63) & 1)
				if got != in.Digits[b][i] {
					t.Fatalf("n=%d cycle %d row %d: word bit %d digit %d", n, b, i, got, in.Digits[b][i])
				}
			}
			for i := n; i < len(in.DigitWords[b])*64; i++ {
				if in.DigitWords[b][i>>6]>>uint(i&63)&1 != 0 {
					t.Fatalf("n=%d cycle %d: tail bit %d set", n, b, i)
				}
			}
		}
	}
}

// QuantizeInputInto must reuse buffers (no growth when capacity suffices) and
// produce exactly what a fresh QuantizeInput produces.
func TestQuantizeInputIntoReuses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	big := make([]float64, 130)
	for i := range big {
		big[i] = rng.Float64() * 7
	}
	in := QuantizeInputInto(nil, big)
	u0 := &in.U[0]
	for _, n := range []int{130, 70, 1, 130} {
		x := big[:n]
		got := QuantizeInputInto(in, x)
		if got != in {
			t.Fatal("QuantizeInputInto must return the same Input")
		}
		if &in.U[0] != u0 {
			t.Fatalf("n=%d: U buffer reallocated despite capacity", n)
		}
		want := QuantizeInput(x)
		if got.N != want.N || got.Scale != want.Scale {
			t.Fatalf("n=%d: header %d/%v want %d/%v", n, got.N, got.Scale, want.N, want.Scale)
		}
		for i := range want.U {
			if got.U[i] != want.U[i] {
				t.Fatalf("n=%d: U[%d] %d want %d", n, i, got.U[i], want.U[i])
			}
		}
		for b := range want.DigitWords {
			for w := range want.DigitWords[b] {
				if got.DigitWords[b][w] != want.DigitWords[b][w] {
					t.Fatalf("n=%d cycle %d word %d: %x want %x", n, b, w, got.DigitWords[b][w], want.DigitWords[b][w])
				}
			}
		}
	}
}

// Planes and Packed are memoized: repeated calls must return the same stack.
func TestPlanesAndPackedMemoized(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(5)), 40, 6, 8)
	p1, p2 := m.Planes(), m.Planes()
	if &p1[0] != &p2[0] {
		t.Fatal("Planes rebuilt on second call")
	}
	if m.Packed() != m.Packed() {
		t.Fatal("Packed rebuilt on second call")
	}
	if m.Packed().Rows != 40 || m.Packed().Cols != 6 || len(m.Packed().Planes) != 8 {
		t.Fatalf("packed header %dx%d, %d planes", m.Packed().Rows, m.Packed().Cols, len(m.Packed().Planes))
	}
}
