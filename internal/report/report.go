// Package report renders experiment results as aligned text tables (the
// form the paper's tables take) and as CSV for external plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a caption tying it to the paper's
// figure/table number, a note stating the expected shape, and rows.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table (header + rows) in CSV form.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// I formats an integer cell.
func I(v int) string { return fmt.Sprintf("%d", v) }

// E formats a value in scientific notation, matching the paper's tables.
func E(v float64) string { return fmt.Sprintf("%.2E", v) }
