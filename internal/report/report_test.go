package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "Sample",
		Note:   "a note",
		Header: []string{"Name", "Value"},
	}
	t.AddRow("alpha", "1")
	t.AddRow("longer-name", "22")
	return t
}

func TestRenderAlignment(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== Sample ==", "a note", "Name", "alpha", "longer-name"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Header and rows align: every data line starts its second column at
	// the same offset.
	lines := strings.Split(out, "\n")
	var dataLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "Name") || strings.HasPrefix(l, "alpha") || strings.HasPrefix(l, "longer-name") {
			dataLines = append(dataLines, l)
		}
	}
	col := -1
	for _, l := range dataLines {
		// Second column starts after the first gap's padding.
		gap := strings.Index(l, "  ")
		idx := gap
		for idx < len(l) && l[idx] == ' ' {
			idx++
		}
		if col == -1 {
			col = idx
		} else if idx != col {
			t.Fatalf("misaligned columns:\n%s", out)
		}
	}
}

func TestRenderWithoutNote(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"A"}}
	tab.AddRow("x")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\n\n== ") {
		t.Fatal("unexpected blank note line")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "Name,Value\nalpha,1\nlonger-name,22\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if F(1234.5678) != "1235" {
		t.Fatalf("F = %q", F(1234.5678))
	}
	if Pct(83.72) != "83.7%" {
		t.Fatalf("Pct = %q", Pct(83.72))
	}
	if I(42) != "42" {
		t.Fatalf("I = %q", I(42))
	}
	if E(123456.0) != "1.23E+05" {
		t.Fatalf("E = %q", E(123456.0))
	}
}
