package accel

import (
	"fmt"

	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/repair"
	"autohet/internal/xbar"
)

// Placement records which tile holds how many of a layer's crossbar slots.
type Placement struct {
	TileID int
	Slots  int
}

// LayerAlloc is the full allocation of one layer: its crossbar-grid mapping
// and where those logical crossbars physically live.
type LayerAlloc struct {
	Layer   *dnn.Layer
	Shape   xbar.Shape
	Mapping xbar.Mapping
	// Copies is the weight-replication factor (PipeLayer-style, the
	// paper's reference [21]): the whole crossbar grid is instantiated
	// Copies times so sliding-window MVMs run in parallel, dividing the
	// layer's latency at the cost of extra crossbars. Always ≥ 1.
	Copies int
	// WeightBits is the layer's weight precision. With b < cfg.WeightBits
	// only b of the PE's bit-plane crossbars operate, scaling the layer's
	// conversions (and energy) by b/8 — the mixed-precision extension in
	// the spirit of the paper's AutoML-quantization related work (§5).
	WeightBits int
	Placements []Placement
}

// SlotsNeeded returns the number of logical crossbar slots the layer needs:
// one per crossbar of its mapping grid, times the replication factor.
func (la *LayerAlloc) SlotsNeeded() int { return la.Mapping.Crossbars() * la.Copies }

// Plan is a complete mapping of a model onto the heterogeneous accelerator
// under a strategy, after tile allocation (tile-based always; tile-shared
// remapping when requested).
type Plan struct {
	Cfg      hw.Config
	Model    *dnn.Model
	Strategy Strategy
	Layers   []*LayerAlloc
	Tiles    []*Tile
	Shared   bool
	// Spares is the fault-tolerance redundancy built into the plan:
	// SpareCols extra bitline columns on every crossbar and SpareXBs spare
	// PEs per occupied tile. Spares hold no weights — their cells and area
	// are charged against utilization and RUE so the robustness/efficiency
	// trade-off stays honest.
	Spares repair.Provision
	// Remaps records Algorithm 1's combMap: for each head tile ID, the
	// tail tile IDs whose occupants were folded into it.
	Remaps map[int][]int
}

// Replication assigns a weight-duplication factor to each mappable layer
// (indexed like Strategy). Nil means no replication.
type Replication []int

// Validate checks the replication covers the model with factors ≥ 1.
func (r Replication) Validate(m *dnn.Model) error {
	if r == nil {
		return nil
	}
	if len(r) != m.NumMappable() {
		return fmt.Errorf("accel: replication covers %d layers, model %q has %d", len(r), m.Name, m.NumMappable())
	}
	for i, c := range r {
		if c < 1 {
			return fmt.Errorf("accel: layer %d replication factor %d < 1", i, c)
		}
	}
	return nil
}

// Precision assigns per-layer weight bit-widths (indexed like Strategy).
// Nil means the config's full WeightBits everywhere.
type Precision []int

// Validate checks the precision covers the model with widths in
// [1, maxBits].
func (p Precision) Validate(m *dnn.Model, maxBits int) error {
	if p == nil {
		return nil
	}
	if len(p) != m.NumMappable() {
		return fmt.Errorf("accel: precision covers %d layers, model %q has %d", len(p), m.Name, m.NumMappable())
	}
	for i, b := range p {
		if b < 1 || b > maxBits {
			return fmt.Errorf("accel: layer %d weight bits %d outside [1,%d]", i, b, maxBits)
		}
	}
	return nil
}

// PlanSpec bundles every per-layer mapping decision: crossbar shapes
// (always required), optional weight replication, optional mixed
// precision, and the allocation scheme.
type PlanSpec struct {
	Strategy    Strategy
	Replication Replication
	Precision   Precision
	Shared      bool
	// Spares provisions repair redundancy (spare columns per crossbar,
	// spare PEs per occupied tile). The zero value provisions nothing.
	Spares repair.Provision
}

// BuildPlan maps the model onto tiles under the strategy. With shared=false
// it performs the conventional tile-based allocation (§2.2.2: whole tiles
// per layer, round-up). With shared=true it then runs the paper's
// Algorithm 1 to fold under-filled tiles together.
func BuildPlan(cfg hw.Config, m *dnn.Model, st Strategy, shared bool) (*Plan, error) {
	return Build(cfg, m, PlanSpec{Strategy: st, Shared: shared})
}

// BuildPlanReplicated is BuildPlan with per-layer weight replication.
func BuildPlanReplicated(cfg hw.Config, m *dnn.Model, st Strategy, repl Replication, shared bool) (*Plan, error) {
	return Build(cfg, m, PlanSpec{Strategy: st, Replication: repl, Shared: shared})
}

// Build maps the model onto tiles under a full plan specification.
func Build(cfg hw.Config, m *dnn.Model, spec PlanSpec) (*Plan, error) {
	st, repl, shared := spec.Strategy, spec.Replication, spec.Shared
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := st.Validate(m); err != nil {
		return nil, err
	}
	if err := repl.Validate(m); err != nil {
		return nil, err
	}
	if err := spec.Precision.Validate(m, cfg.WeightBits); err != nil {
		return nil, err
	}
	if err := spec.Spares.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Cfg: cfg, Model: m, Strategy: st, Spares: spec.Spares, Remaps: map[int][]int{}}
	slotsPerTile := cfg.PEsPerTile
	nextID := 0
	for _, l := range m.Mappable() {
		shape := st[l.Index]
		la := &LayerAlloc{
			Layer: l, Shape: shape, Mapping: xbar.MapLayer(l, shape),
			Copies: 1, WeightBits: cfg.WeightBits,
		}
		if repl != nil {
			la.Copies = repl[l.Index]
		}
		if spec.Precision != nil {
			la.WeightBits = spec.Precision[l.Index]
		}
		need := la.SlotsNeeded()
		// Tile-based: allocate ⌈need/slotsPerTile⌉ fresh tiles to this
		// layer only.
		for need > 0 {
			t := &Tile{ID: nextID, Shape: shape, Slots: slotsPerTile}
			nextID++
			put := need
			if put > slotsPerTile {
				put = slotsPerTile
			}
			t.place(l.Index, put)
			la.Placements = append(la.Placements, Placement{TileID: t.ID, Slots: put})
			p.Tiles = append(p.Tiles, t)
			need -= put
		}
		p.Layers = append(p.Layers, la)
	}
	if len(p.Tiles) > cfg.TilesPerBank {
		return nil, fmt.Errorf("accel: model %q needs %d tiles, bank has %d", m.Name, len(p.Tiles), cfg.TilesPerBank)
	}
	if shared {
		p.applyTileSharing()
	}
	return p, nil
}

// tileByID returns the tile with the given ID (IDs are dense, but tiles may
// be removed by sharing, so scan).
func (p *Plan) tileByID(id int) *Tile {
	for _, t := range p.Tiles {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// OccupiedTiles returns the number of tiles holding at least one slot.
func (p *Plan) OccupiedTiles() int {
	n := 0
	for _, t := range p.Tiles {
		if t.Used() > 0 {
			n++
		}
	}
	return n
}

// OccupiedTilesByShape breaks OccupiedTiles down per crossbar shape.
func (p *Plan) OccupiedTilesByShape() map[xbar.Shape]int {
	out := map[xbar.Shape]int{}
	for _, t := range p.Tiles {
		if t.Used() > 0 {
			out[t.Shape]++
		}
	}
	return out
}

// UsedCells returns the weight-holding logical cells across all layers
// (replicated copies hold real weights and count).
func (p *Plan) UsedCells() int64 {
	var total int64
	for _, la := range p.Layers {
		total += la.Mapping.UsedCells * int64(la.Copies)
	}
	return total
}

// spareShape widens a crossbar shape by the plan's provisioned spare
// columns. Spares hold no weights, so they only ever appear on the
// cost side (area, allocated cells).
func (p *Plan) spareShape(s xbar.Shape) xbar.Shape {
	s.C += p.Spares.SpareCols
	return s
}

// AllocatedCells returns the logical cells of every slot in every occupied
// tile — the denominator of tile-level utilization. Empty slots of occupied
// tiles count as wastage; fully freed tiles do not. Provisioned spares
// (extra columns per crossbar, spare PEs per occupied tile) count too: they
// are silicon the plan pays for but cannot put weights on.
func (p *Plan) AllocatedCells() int64 {
	var total int64
	for _, t := range p.Tiles {
		if t.Used() > 0 {
			cells := int64(p.spareShape(t.Shape).Cells())
			total += (int64(t.Slots) + int64(p.Spares.SpareXBs)) * cells
		}
	}
	return total
}

// Utilization returns the tile-level crossbar utilization in percent:
// weight cells over allocated cells, counting empty slots in occupied tiles
// (the paper's crossbar-utilization metric, e.g. Fig. 5's 27/128).
func (p *Plan) Utilization() float64 {
	alloc := p.AllocatedCells()
	if alloc == 0 {
		return 0
	}
	return 100 * float64(p.UsedCells()) / float64(alloc)
}

// EmptySlotFraction returns the fraction of slots in occupied tiles that
// hold no weights (Fig. 4's "empty crossbars" proportion).
func (p *Plan) EmptySlotFraction() float64 {
	used, total := 0, 0
	for _, t := range p.Tiles {
		if t.Used() > 0 {
			used += t.Used()
			total += t.Slots
		}
	}
	if total == 0 {
		return 0
	}
	return float64(total-used) / float64(total)
}

// Area returns the silicon area in µm²: the sum of occupied tiles' areas
// (each sized by its crossbar shape, widened by any provisioned spare
// columns, plus any spare PEs) and the bank global controller.
func (p *Plan) Area() float64 {
	total := hw.GlobalCtrlArea
	for _, t := range p.Tiles {
		if t.Used() > 0 {
			s := p.spareShape(t.Shape)
			total += p.Cfg.TileArea(s) + float64(p.Spares.SpareXBs)*p.Cfg.PEArea(s)
		}
	}
	return total
}

// RepairBudget returns the spare capacity one layer's repair pass may draw
// on: the per-crossbar spare columns, and the spare-PE budget summed over
// the tiles the layer touches (spare PEs are a per-tile resource; a layer
// spanning k tiles can absorb k whole-crossbar remaps per provisioned
// spare).
func (p *Plan) RepairBudget(la *LayerAlloc) repair.Provision {
	return repair.Provision{
		SpareCols: p.Spares.SpareCols,
		SpareXBs:  p.Spares.SpareXBs * len(la.Placements),
	}
}

// LayerTiles returns the number of distinct tiles holding slots of the
// given layer.
func (p *Plan) LayerTiles(layerIndex int) int {
	n := 0
	for _, t := range p.Tiles {
		for _, o := range t.Occupants {
			if o.LayerIndex == layerIndex {
				n++
				break
			}
		}
	}
	return n
}

// LayerTileCounts returns, for every entry of p.Layers in order, the number
// of distinct tiles holding that layer's slots — all layers' LayerTiles in
// one pass over the tiles (each tile holds at most one occupancy per layer).
func (p *Plan) LayerTileCounts() []int {
	pos := make(map[int]int, len(p.Layers))
	for i, la := range p.Layers {
		pos[la.Layer.Index] = i
	}
	counts := make([]int, len(p.Layers))
	for _, t := range p.Tiles {
		for _, o := range t.Occupants {
			counts[pos[o.LayerIndex]]++
		}
	}
	return counts
}

// Validate cross-checks internal consistency: every layer's slots are fully
// placed, no tile is over-filled, and placements agree with occupancies.
// Tests and the simulator call it after construction and after sharing.
func (p *Plan) Validate() error {
	perLayerPlaced := map[int]int{}
	for _, t := range p.Tiles {
		if t.Used() > t.Slots {
			return fmt.Errorf("accel: tile %d overfilled: %d/%d", t.ID, t.Used(), t.Slots)
		}
		for _, o := range t.Occupants {
			perLayerPlaced[o.LayerIndex] += o.Slots
			if p.Strategy[o.LayerIndex] != t.Shape {
				return fmt.Errorf("accel: tile %d shape %v holds layer %d wanting %v",
					t.ID, t.Shape, o.LayerIndex, p.Strategy[o.LayerIndex])
			}
		}
	}
	for _, la := range p.Layers {
		if got := perLayerPlaced[la.Layer.Index]; got != la.SlotsNeeded() {
			return fmt.Errorf("accel: layer %d placed %d slots, needs %d", la.Layer.Index, got, la.SlotsNeeded())
		}
		var fromPlacements int
		for _, pl := range la.Placements {
			fromPlacements += pl.Slots
		}
		if fromPlacements != la.SlotsNeeded() {
			return fmt.Errorf("accel: layer %d placements total %d, need %d", la.Layer.Index, fromPlacements, la.SlotsNeeded())
		}
	}
	return nil
}
