// Package accel models the heterogeneous ReRAM accelerator itself: the
// bank→tile→PE→crossbar hierarchy (paper Fig. 1/Fig. 6), the mapping of a
// DNN model onto tiles under a per-layer crossbar strategy, the baseline
// tile-based allocation, and the paper's tile-shared allocation scheme
// (Algorithm 1). It produces the occupancy, utilization, and area metrics
// that the search reward and the experiment harness consume.
//
// Granularity: a PE groups hw.Config.XBPerPE physical 1-bit crossbars that
// jointly store one 8-bit weight plane, so a PE is one *logical* crossbar
// slot. A tile provides PEsPerTile slots. The paper's "number of crossbars
// contained in one tile" (Fig. 4) and "PEs in each tile" (Fig. 11c) both
// refer to these slots.
package accel

import (
	"fmt"
	"strconv"
	"strings"

	"autohet/internal/dnn"
	"autohet/internal/xbar"
)

// Strategy assigns one crossbar shape to each mappable layer, indexed by
// dnn.Layer.Index. It is the RL agent's output (Fig. 6: L0:XB0 … Ln:XBn).
type Strategy []xbar.Shape

// Homogeneous returns a strategy that uses the same shape for all n layers
// (the baseline accelerators of §4.1).
func Homogeneous(n int, s xbar.Shape) Strategy {
	st := make(Strategy, n)
	for i := range st {
		st[i] = s
	}
	return st
}

// ManualHetero returns the paper's Fig. 3 hand-tuned VGG16 strategy:
// 512×512 crossbars for the first ten layers and 256×256 for the last six.
func ManualHetero(n int) Strategy {
	st := make(Strategy, n)
	for i := range st {
		if i < 10 {
			st[i] = xbar.Square(512)
		} else {
			st[i] = xbar.Square(256)
		}
	}
	return st
}

// FromIndices decodes a strategy from candidate indices (the RL action
// sequence).
func FromIndices(candidates []xbar.Shape, indices []int) (Strategy, error) {
	st := make(Strategy, len(indices))
	for i, idx := range indices {
		if idx < 0 || idx >= len(candidates) {
			return nil, fmt.Errorf("accel: action %d for layer %d out of range [0,%d)", idx, i, len(candidates))
		}
		st[i] = candidates[idx]
	}
	return st, nil
}

// Validate checks the strategy covers the model's mappable layers with
// valid shapes.
func (st Strategy) Validate(m *dnn.Model) error {
	if len(st) != m.NumMappable() {
		return fmt.Errorf("accel: strategy covers %d layers, model %q has %d mappable", len(st), m.Name, m.NumMappable())
	}
	for i, s := range st {
		if !s.Valid() {
			return fmt.Errorf("accel: layer %d has invalid crossbar shape %v", i, s)
		}
	}
	return nil
}

// ParseStrategy parses the run-length format produced by Strategy.String,
// e.g. "L1-L10:512x512 L11-L16:256x256". Ranges must be contiguous from L1
// with no gaps or overlaps.
func ParseStrategy(text string) (Strategy, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "(empty)" {
		return nil, fmt.Errorf("accel: empty strategy text")
	}
	var st Strategy
	next := 1
	for _, tok := range strings.Fields(text) {
		parts := strings.SplitN(tok, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("accel: bad strategy token %q", tok)
		}
		shape, err := xbar.ParseShape(parts[1])
		if err != nil {
			return nil, fmt.Errorf("accel: token %q: %w", tok, err)
		}
		rangeText := parts[0]
		if !strings.HasPrefix(rangeText, "L") {
			return nil, fmt.Errorf("accel: bad layer range %q", rangeText)
		}
		lo, hi := 0, 0
		if dash := strings.Index(rangeText, "-"); dash >= 0 {
			lo, err = strconv.Atoi(rangeText[1:dash])
			if err != nil {
				return nil, fmt.Errorf("accel: bad layer range %q", rangeText)
			}
			if !strings.HasPrefix(rangeText[dash+1:], "L") {
				return nil, fmt.Errorf("accel: bad layer range %q", rangeText)
			}
			hi, err = strconv.Atoi(rangeText[dash+2:])
		} else {
			lo, err = strconv.Atoi(rangeText[1:])
			hi = lo
		}
		if err != nil {
			return nil, fmt.Errorf("accel: bad layer range %q", rangeText)
		}
		if lo != next || hi < lo {
			return nil, fmt.Errorf("accel: layer range %q out of order (expected L%d)", rangeText, next)
		}
		for i := lo; i <= hi; i++ {
			st = append(st, shape)
		}
		next = hi + 1
	}
	return st, nil
}

// String renders the strategy as run-length-encoded shape assignments,
// e.g. "L1-L10:512x512 L11-L16:256x256".
func (st Strategy) String() string {
	if len(st) == 0 {
		return "(empty)"
	}
	out := ""
	start := 0
	for i := 1; i <= len(st); i++ {
		if i == len(st) || st[i] != st[start] {
			if out != "" {
				out += " "
			}
			if start == i-1 {
				out += fmt.Sprintf("L%d:%v", start+1, st[start])
			} else {
				out += fmt.Sprintf("L%d-L%d:%v", start+1, i, st[start])
			}
			start = i
		}
	}
	return out
}
