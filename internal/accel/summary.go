package accel

import (
	"fmt"
	"sort"

	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/xbar"
)

// Summary holds the plan-level aggregates of mapping a model under a
// strategy, computed WITHOUT materializing tiles. For the search path
// (no replication, no spares) every field is bit-identical to the
// corresponding Plan quantity after BuildPlan — Utilization, Area(),
// OccupiedTiles(), LayerTileCounts() — which tests assert exactly.
type Summary struct {
	Utilization   float64
	AreaUM2       float64
	OccupiedTiles int
	// TotalTiles is the tile count before sharing (equals len(Plan.Tiles)).
	TotalTiles int
	// LayerTiles[i] is the number of distinct tiles holding mappable layer
	// i's slots. It is invariant under Algorithm 1, which only ever moves a
	// tile's occupants wholesale into one other tile, so a layer's tile
	// count never changes — only which tiles it lives on.
	LayerTiles []int
}

// Summarize computes the Summary directly from the strategy's per-layer
// mapping arithmetic, replaying Algorithm 1's fold decisions over partial
// tiles only. It exists for the search stack's memoizing evaluation engine:
// it skips the dominant cost of BuildPlan (tile materialization) while
// reproducing its aggregates exactly.
//
// Why this works: tile-based allocation gives layer i ⌈slots_i/S⌉ private
// tiles of which at most the last is partially filled. Algorithm 1 sorts
// each same-shape group ascending by empty-slot count — all full tiles
// first, so the head pointer walks past them without folding (a full head
// has no room) and a full tile is never a fold tail (it would need an
// entirely empty head). The fold dynamics therefore play out over the
// partial tiles alone, one per layer, which is what the two-pointer loop
// below replays. Shared aggregation still has to be recomputed per
// strategy: which partial tiles fold depends on the empty-slot counts of
// every OTHER layer mapped to the same shape, so fold results are not
// memoizable per layer.
func Summarize(cfg hw.Config, m *dnn.Model, st Strategy, shared bool) (*Summary, error) {
	if err := st.Validate(m); err != nil {
		return nil, err
	}
	mappable := m.Mappable()
	S := cfg.PEsPerTile
	n := len(mappable)
	sum := &Summary{LayerTiles: make([]int, n)}

	// Per-layer footprints: tile count and the partial (last) tile's fill.
	type partial struct{ empty, id int }
	partials := map[xbar.Shape][]partial{}
	tilesOf := make([]int, n)
	var usedCells int64
	tileID := 0
	for i, l := range mappable {
		shape := st[l.Index]
		mp := xbar.MapLayer(l, shape)
		slots := mp.Crossbars()
		usedCells += mp.UsedCells
		t := (slots + S - 1) / S
		tilesOf[i] = t
		sum.LayerTiles[i] = t
		if rem := slots % S; rem != 0 {
			partials[shape] = append(partials[shape], partial{empty: S - rem, id: tileID + t - 1})
		}
		tileID += t
	}
	sum.TotalTiles = tileID
	if tileID > cfg.TilesPerBank {
		return nil, fmt.Errorf("accel: model %q needs %d tiles, bank has %d", m.Name, tileID, cfg.TilesPerBank)
	}

	// Replay Algorithm 1 per shape group over the partial tiles: sorted
	// ascending by (empty, ID), the tail (emptiest) folds into the head
	// whenever its used slots fit the head's remaining room.
	folded := map[int]bool{}
	if shared {
		for _, list := range partials {
			sort.Slice(list, func(i, j int) bool {
				if list[i].empty != list[j].empty {
					return list[i].empty < list[j].empty
				}
				return list[i].id < list[j].id
			})
			head, tail := 0, len(list)-1
			for head < tail {
				used := S - list[tail].empty
				if list[head].empty >= used {
					list[head].empty -= used
					folded[list[tail].id] = true
					tail--
				} else {
					head++
				}
			}
		}
	}

	// Area and allocated cells in tile-ID order, skipping folded (released)
	// tiles — the same float-addition order Plan.Area uses, so the sums are
	// bit-identical.
	area := hw.GlobalCtrlArea
	var allocCells int64
	tileAreas := map[xbar.Shape]float64{}
	cellsPer := map[xbar.Shape]int64{}
	id := 0
	for i, l := range mappable {
		shape := st[l.Index]
		ta, ok := tileAreas[shape]
		if !ok {
			ta = cfg.TileArea(shape)
			tileAreas[shape] = ta
			cellsPer[shape] = int64(S) * int64(shape.Cells())
		}
		cells := cellsPer[shape]
		for k := 0; k < tilesOf[i]; k++ {
			if folded[id] {
				id++
				continue
			}
			area += ta
			allocCells += cells
			sum.OccupiedTiles++
			id++
		}
	}
	sum.AreaUM2 = area
	if allocCells > 0 {
		sum.Utilization = 100 * float64(usedCells) / float64(allocCells)
	}
	return sum, nil
}
