package accel

import (
	"fmt"

	"autohet/internal/xbar"
)

// Occupancy records that a layer occupies some slots of a tile.
type Occupancy struct {
	LayerIndex int // dnn.Layer.Index
	Slots      int
}

// Tile is one accelerator tile: Slots logical crossbar slots (PEs), all of
// one crossbar shape. Crossbars within a tile are homogeneous; shapes vary
// only across tiles (§3.1).
type Tile struct {
	ID        int
	Shape     xbar.Shape
	Slots     int
	Occupants []Occupancy
}

// Used returns the number of occupied slots.
func (t *Tile) Used() int {
	total := 0
	for _, o := range t.Occupants {
		total += o.Slots
	}
	return total
}

// Empty returns the number of unoccupied slots (emptyXBNum in Algorithm 1).
func (t *Tile) Empty() int { return t.Slots - t.Used() }

// place adds a layer's occupancy, panicking on overflow — callers size
// placements to fit.
func (t *Tile) place(layerIndex, slots int) {
	if slots <= 0 {
		panic(fmt.Sprintf("accel: placing %d slots", slots))
	}
	if slots > t.Empty() {
		panic(fmt.Sprintf("accel: tile %d overflow: placing %d into %d empty", t.ID, slots, t.Empty()))
	}
	// Merge with an existing occupancy of the same layer if present.
	for i := range t.Occupants {
		if t.Occupants[i].LayerIndex == layerIndex {
			t.Occupants[i].Slots += slots
			return
		}
	}
	t.Occupants = append(t.Occupants, Occupancy{LayerIndex: layerIndex, Slots: slots})
}

// SharesLayers reports whether more than one layer occupies the tile.
func (t *Tile) SharesLayers() bool { return len(t.Occupants) > 1 }

// String renders the tile, e.g. "tile 3 (64x64): 3/4 slots [L2:2 L5:1]".
func (t *Tile) String() string {
	occ := ""
	for i, o := range t.Occupants {
		if i > 0 {
			occ += " "
		}
		occ += fmt.Sprintf("L%d:%d", o.LayerIndex+1, o.Slots)
	}
	return fmt.Sprintf("tile %d (%v): %d/%d slots [%s]", t.ID, t.Shape, t.Used(), t.Slots, occ)
}
