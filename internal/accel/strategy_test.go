package accel

import (
	"testing"

	"autohet/internal/dnn"
	"autohet/internal/xbar"
)

func TestHomogeneous(t *testing.T) {
	st := Homogeneous(5, xbar.Square(64))
	if len(st) != 5 {
		t.Fatalf("len = %d", len(st))
	}
	for _, s := range st {
		if s != xbar.Square(64) {
			t.Fatalf("shape %v", s)
		}
	}
}

func TestManualHetero(t *testing.T) {
	// Fig. 3: 512×512 for the first ten layers, 256×256 for the rest.
	st := ManualHetero(16)
	for i := 0; i < 10; i++ {
		if st[i] != xbar.Square(512) {
			t.Fatalf("layer %d = %v", i, st[i])
		}
	}
	for i := 10; i < 16; i++ {
		if st[i] != xbar.Square(256) {
			t.Fatalf("layer %d = %v", i, st[i])
		}
	}
}

func TestFromIndices(t *testing.T) {
	cands := xbar.DefaultCandidates()
	st, err := FromIndices(cands, []int{0, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st[0] != cands[0] || st[1] != cands[4] || st[2] != cands[2] {
		t.Fatalf("FromIndices = %v", st)
	}
	if _, err := FromIndices(cands, []int{5}); err == nil {
		t.Fatal("out-of-range action must error")
	}
	if _, err := FromIndices(cands, []int{-1}); err == nil {
		t.Fatal("negative action must error")
	}
}

func TestStrategyValidate(t *testing.T) {
	m := dnn.AlexNet()
	st := Homogeneous(m.NumMappable(), xbar.Square(64))
	if err := st.Validate(m); err != nil {
		t.Fatal(err)
	}
	if err := Homogeneous(3, xbar.Square(64)).Validate(m); err == nil {
		t.Fatal("length mismatch must error")
	}
	bad := Homogeneous(m.NumMappable(), xbar.Square(64))
	bad[2] = xbar.Shape{}
	if err := bad.Validate(m); err == nil {
		t.Fatal("invalid shape must error")
	}
}

func TestStrategyString(t *testing.T) {
	st := ManualHetero(16)
	if got := st.String(); got != "L1-L10:512x512 L11-L16:256x256" {
		t.Fatalf("String = %q", got)
	}
	single := Strategy{xbar.Square(32)}
	if got := single.String(); got != "L1:32x32" {
		t.Fatalf("String = %q", got)
	}
	if Strategy(nil).String() != "(empty)" {
		t.Fatal("empty string wrong")
	}
}
