package accel

import (
	"math"
	"testing"

	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/repair"
	"autohet/internal/xbar"
)

// flatModel builds a test model from (k, inC, outC) conv specs with 1×1
// feature maps, sidestepping channel chaining.
func flatModel(t *testing.T, specs ...[3]int) *dnn.Model {
	t.Helper()
	var layers []*dnn.Layer
	for i, s := range specs {
		l := &dnn.Layer{
			Name: "c", Kind: dnn.Conv, K: s[0], InC: s[1], OutC: s[2],
			Stride: 1, Pad: 0, InH: 8, InW: 8,
		}
		_ = i
		layers = append(layers, l)
	}
	m, err := dnn.NewFlatModel("test", 8, 8, specs[0][1], layers)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cfg() hw.Config { return hw.DefaultConfig() }

// Paper Fig. 5: 128 3×3×12 kernels. On 64×64 the layer fills one 4-slot
// tile exactly → 27/32 utilization; on 128×128 it uses 1 of 4 slots →
// 27/128. ADC counting is exercised in package sim.
func TestPlanFig5Utilization(t *testing.T) {
	m := flatModel(t, [3]int{3, 12, 128})

	p64, err := BuildPlan(cfg(), m, Homogeneous(1, xbar.Square(64)), false)
	if err != nil {
		t.Fatal(err)
	}
	if got := p64.Utilization(); math.Abs(got-100*27.0/32.0) > 1e-9 {
		t.Fatalf("64x64 utilization = %v%%, want 27/32", got)
	}
	if p64.OccupiedTiles() != 1 {
		t.Fatalf("64x64 tiles = %d, want 1", p64.OccupiedTiles())
	}

	p128, err := BuildPlan(cfg(), m, Homogeneous(1, xbar.Square(128)), false)
	if err != nil {
		t.Fatal(err)
	}
	if got := p128.Utilization(); math.Abs(got-100*27.0/128.0) > 1e-9 {
		t.Fatalf("128x128 utilization = %v%%, want 27/128", got)
	}
}

// Paper Fig. 4: empty-crossbar proportion of VGG16 L1–L4 on 64×64 crossbars
// averages ≈24% with 4 slots per tile and ≈60% with 32.
func TestPlanFig4EmptyFractions(t *testing.T) {
	m := dnn.VGG16()
	measure := func(slots int) float64 {
		c := cfg()
		c.PEsPerTile = slots
		var sum float64
		for _, l := range m.Mappable()[:4] {
			single, err := dnn.NewFlatModel("one", l.InH, l.InW, l.InC, []*dnn.Layer{{
				Name: l.Name, Kind: l.Kind, K: l.K, InC: l.InC, OutC: l.OutC,
				Stride: l.Stride, Pad: l.Pad, InH: l.InH, InW: l.InW,
			}})
			if err != nil {
				t.Fatal(err)
			}
			p, err := BuildPlan(c, single, Homogeneous(1, xbar.Square(64)), false)
			if err != nil {
				t.Fatal(err)
			}
			sum += p.EmptySlotFraction()
		}
		return sum / 4
	}
	e4 := measure(4)
	e32 := measure(32)
	if math.Abs(e4-0.24) > 0.03 {
		t.Fatalf("avg empty at 4 slots/tile = %.3f, paper ≈0.24", e4)
	}
	if math.Abs(e32-0.60) > 0.05 {
		t.Fatalf("avg empty at 32 slots/tile = %.3f, paper ≈0.60", e32)
	}
	if e32 <= e4 {
		t.Fatal("empty fraction must grow with tile size")
	}
}

// Paper Fig. 8: three layers needing 2/1/1 slots on 4-slot tiles occupy
// three tiles without sharing and one tile with sharing.
func TestPlanFig8TileSharing(t *testing.T) {
	m := flatModel(t,
		[3]int{1, 16, 64}, // 2 slots on 32x32 (64 output columns)
		[3]int{1, 16, 16}, // 1 slot
		[3]int{1, 32, 20}, // 1 slot
	)
	st := Homogeneous(3, xbar.Square(32))

	plain, err := BuildPlan(cfg(), m, st, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain.OccupiedTiles() != 3 {
		t.Fatalf("tile-based occupied = %d, want 3", plain.OccupiedTiles())
	}
	if plain.EmptySlotFraction() != 8.0/12.0 {
		t.Fatalf("tile-based empty = %v, want 8/12", plain.EmptySlotFraction())
	}

	shared, err := BuildPlan(cfg(), m, st, true)
	if err != nil {
		t.Fatal(err)
	}
	if shared.OccupiedTiles() != 1 {
		t.Fatalf("shared occupied = %d, want 1", shared.OccupiedTiles())
	}
	if err := shared.Validate(); err != nil {
		t.Fatal(err)
	}
	if !shared.Shared || len(shared.Remaps) == 0 {
		t.Fatal("sharing metadata missing")
	}
	occupied := shared.Tiles[0]
	for _, tl := range shared.Tiles {
		if tl.Used() > 0 {
			occupied = tl
		}
	}
	if !occupied.SharesLayers() {
		t.Fatal("surviving tile must hold multiple layers")
	}
}

// Sharing never merges tiles of different crossbar shapes.
func TestSharingRespectsShapeGroups(t *testing.T) {
	m := flatModel(t, [3]int{1, 16, 16}, [3]int{1, 16, 16})
	st := Strategy{xbar.Square(32), xbar.Square(64)}
	p, err := BuildPlan(cfg(), m, st, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.OccupiedTiles() != 2 {
		t.Fatalf("occupied = %d, want 2 (different shapes cannot share)", p.OccupiedTiles())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSharingImprovesUtilizationNeverHurts(t *testing.T) {
	for _, model := range []*dnn.Model{dnn.AlexNet(), dnn.VGG16()} {
		for _, s := range xbar.SquareCandidates() {
			st := Homogeneous(model.NumMappable(), s)
			plain, err := BuildPlan(cfg(), model, st, false)
			if err != nil {
				t.Fatal(err)
			}
			shared, err := BuildPlan(cfg(), model, st, true)
			if err != nil {
				t.Fatal(err)
			}
			if err := shared.Validate(); err != nil {
				t.Fatalf("%s/%v: %v", model.Name, s, err)
			}
			if shared.OccupiedTiles() > plain.OccupiedTiles() {
				t.Errorf("%s/%v: sharing increased tiles %d→%d", model.Name, s,
					plain.OccupiedTiles(), shared.OccupiedTiles())
			}
			if shared.Utilization()+1e-9 < plain.Utilization() {
				t.Errorf("%s/%v: sharing reduced utilization %.2f→%.2f", model.Name, s,
					plain.Utilization(), shared.Utilization())
			}
			if shared.UsedCells() != plain.UsedCells() {
				t.Errorf("%s/%v: sharing changed used cells", model.Name, s)
			}
		}
	}
}

func TestRepackOptimalNeverWorseThanTwoPointer(t *testing.T) {
	model := dnn.VGG16()
	for _, s := range []xbar.Shape{xbar.Square(64), xbar.Square(256)} {
		st := Homogeneous(model.NumMappable(), s)
		twoPtr, err := BuildPlan(cfg(), model, st, true)
		if err != nil {
			t.Fatal(err)
		}
		repack, err := BuildPlan(cfg(), model, st, false)
		if err != nil {
			t.Fatal(err)
		}
		repack.RepackOptimal()
		if err := repack.Validate(); err != nil {
			t.Fatal(err)
		}
		if repack.OccupiedTiles() > twoPtr.OccupiedTiles() {
			t.Errorf("%v: repack %d tiles > two-pointer %d", s,
				repack.OccupiedTiles(), twoPtr.OccupiedTiles())
		}
		// Repack achieves the bin-packing lower bound per group.
		usedSlots := 0
		for _, tl := range repack.Tiles {
			usedSlots += tl.Used()
		}
		lower := (usedSlots + cfg().PEsPerTile - 1) / cfg().PEsPerTile
		if repack.OccupiedTiles() != lower {
			t.Errorf("%v: repack %d tiles, lower bound %d", s, repack.OccupiedTiles(), lower)
		}
	}
}

func TestBuildPlanErrors(t *testing.T) {
	m := dnn.AlexNet()
	// Strategy length mismatch.
	if _, err := BuildPlan(cfg(), m, Homogeneous(2, xbar.Square(64)), false); err == nil {
		t.Fatal("strategy mismatch must error")
	}
	// Invalid config.
	bad := cfg()
	bad.PEsPerTile = 0
	if _, err := BuildPlan(bad, m, Homogeneous(m.NumMappable(), xbar.Square(64)), false); err == nil {
		t.Fatal("invalid config must error")
	}
	// Bank capacity exceeded.
	tiny := cfg()
	tiny.TilesPerBank = 2
	if _, err := BuildPlan(tiny, m, Homogeneous(m.NumMappable(), xbar.Square(32)), false); err == nil {
		t.Fatal("bank overflow must error")
	}
}

func TestLayerTilesAndPlacements(t *testing.T) {
	m := flatModel(t, [3]int{1, 16, 300}) // 300 cols on 32x32 → 10 slots → 3 tiles
	p, err := BuildPlan(cfg(), m, Homogeneous(1, xbar.Square(32)), false)
	if err != nil {
		t.Fatal(err)
	}
	if p.LayerTiles(0) != 3 {
		t.Fatalf("LayerTiles = %d, want 3", p.LayerTiles(0))
	}
	if got := p.Layers[0].SlotsNeeded(); got != 10 {
		t.Fatalf("SlotsNeeded = %d, want 10", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAreaGrowsWithOccupiedTiles(t *testing.T) {
	m := dnn.VGG16()
	st := Homogeneous(m.NumMappable(), xbar.Square(64))
	plain, _ := BuildPlan(cfg(), m, st, false)
	shared, _ := BuildPlan(cfg(), m, st, true)
	if shared.Area() > plain.Area() {
		t.Fatalf("sharing must not increase area: %v > %v", shared.Area(), plain.Area())
	}
	if plain.Area() <= hw.GlobalCtrlArea {
		t.Fatal("area must include tiles")
	}
}

func TestOccupiedTilesByShape(t *testing.T) {
	m := flatModel(t, [3]int{1, 16, 16}, [3]int{1, 16, 16})
	st := Strategy{xbar.Square(32), xbar.Square(64)}
	p, _ := BuildPlan(cfg(), m, st, false)
	by := p.OccupiedTilesByShape()
	if by[xbar.Square(32)] != 1 || by[xbar.Square(64)] != 1 {
		t.Fatalf("by shape = %v", by)
	}
}

func TestTileString(t *testing.T) {
	tl := &Tile{ID: 3, Shape: xbar.Square(64), Slots: 4}
	tl.place(1, 2)
	tl.place(4, 1)
	want := "tile 3 (64x64): 3/4 slots [L2:2 L5:1]"
	if got := tl.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestTilePlacePanics(t *testing.T) {
	tl := &Tile{ID: 0, Shape: xbar.Square(32), Slots: 2}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overflow place did not panic")
			}
		}()
		tl.place(0, 3)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero place did not panic")
			}
		}()
		tl.place(0, 0)
	}()
}

func TestPlaceMergesSameLayer(t *testing.T) {
	tl := &Tile{ID: 0, Shape: xbar.Square(32), Slots: 4}
	tl.place(2, 1)
	tl.place(2, 2)
	if len(tl.Occupants) != 1 || tl.Occupants[0].Slots != 3 {
		t.Fatalf("occupants = %v", tl.Occupants)
	}
}

// Spare provisioning is charged honestly: the same model planned with
// spares must report more area, more allocated cells, and strictly lower
// utilization — while the weight mapping itself is untouched.
func TestPlanSparesChargedAgainstAreaAndUtilization(t *testing.T) {
	m := flatModel(t, [3]int{3, 12, 128})
	st := Homogeneous(1, xbar.Square(64))
	plain, err := Build(cfg(), m, PlanSpec{Strategy: st})
	if err != nil {
		t.Fatal(err)
	}
	spared, err := Build(cfg(), m, PlanSpec{Strategy: st, Spares: repair.Provision{SpareCols: 4, SpareXBs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if spared.UsedCells() != plain.UsedCells() {
		t.Fatalf("spares must not change weight cells: %d vs %d", spared.UsedCells(), plain.UsedCells())
	}
	if spared.AllocatedCells() <= plain.AllocatedCells() {
		t.Fatalf("spares must add allocated cells: %d vs %d", spared.AllocatedCells(), plain.AllocatedCells())
	}
	if spared.Area() <= plain.Area() {
		t.Fatalf("spares must add area: %v vs %v", spared.Area(), plain.Area())
	}
	if spared.Utilization() >= plain.Utilization() {
		t.Fatalf("spares must lower utilization: %v vs %v", spared.Utilization(), plain.Utilization())
	}
	// Expected exactly: each occupied tile's 4 slots widen 64x64 → 64x68,
	// plus one spare PE of the widened shape.
	wantAlloc := int64(4+1) * int64(64*68)
	if got := spared.AllocatedCells(); got != wantAlloc {
		t.Fatalf("allocated cells = %d, want %d", got, wantAlloc)
	}
	la := spared.Layers[0]
	budget := spared.RepairBudget(la)
	if budget.SpareCols != 4 || budget.SpareXBs != 1*len(la.Placements) {
		t.Fatalf("repair budget = %+v", budget)
	}
	if _, err := Build(cfg(), m, PlanSpec{Strategy: st, Spares: repair.Provision{SpareCols: -1}}); err == nil {
		t.Fatal("negative spares must be rejected")
	}
}
