package accel

import (
	"math"
	"testing"
)

func TestShardLayersBasic(t *testing.T) {
	lat := []float64{4, 1, 1, 1, 4}
	stages, err := ShardLayers(lat, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal 3-way split is [4][1 1 1][4]: max stage 4.
	if len(stages) != 3 {
		t.Fatalf("got %d stages", len(stages))
	}
	if stages[0].Hi != 1 || stages[1].Hi != 4 || stages[2].Hi != 5 {
		t.Fatalf("cuts %+v", stages)
	}
	if stages[1].LatencyNS != 3 {
		t.Fatalf("middle stage latency %v", stages[1].LatencyNS)
	}
}

func TestShardLayersSingleStage(t *testing.T) {
	stages, err := ShardLayers([]float64{2, 3, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 || stages[0].Lo != 0 || stages[0].Hi != 3 || stages[0].LatencyNS != 10 {
		t.Fatalf("stages %+v", stages)
	}
}

func TestShardLayersValidation(t *testing.T) {
	if _, err := ShardLayers(nil, 1); err == nil {
		t.Fatal("empty list must error")
	}
	if _, err := ShardLayers([]float64{1, 2}, 3); err == nil {
		t.Fatal("more stages than layers must error")
	}
	if _, err := ShardLayers([]float64{1}, 0); err == nil {
		t.Fatal("zero stages must error")
	}
	if _, err := ShardLayers([]float64{-1, 2}, 1); err == nil {
		t.Fatal("negative latency must error")
	}
	if _, err := ShardLayers([]float64{math.NaN()}, 1); err == nil {
		t.Fatal("NaN latency must error")
	}
}

// The DP is exact: compare against brute-force enumeration of all cuts on
// small inputs.
func TestShardLayersOptimal(t *testing.T) {
	lat := []float64{7, 2, 9, 4, 1, 6, 3, 8}
	for k := 1; k <= len(lat); k++ {
		stages, err := ShardLayers(lat, k)
		if err != nil {
			t.Fatal(err)
		}
		got := 0.0
		for _, s := range stages {
			if s.LatencyNS > got {
				got = s.LatencyNS
			}
		}
		want := bruteBestMax(lat, k)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("k=%d: DP max stage %v, brute force %v", k, got, want)
		}
	}
}

// bruteBestMax enumerates every contiguous k-partition.
func bruteBestMax(lat []float64, k int) float64 {
	n := len(lat)
	best := math.Inf(1)
	var rec func(start, left int, cur float64)
	rec = func(start, left int, cur float64) {
		if left == 1 {
			s := 0.0
			for _, v := range lat[start:] {
				s += v
			}
			if s > cur {
				cur = s
			}
			if cur < best {
				best = cur
			}
			return
		}
		for end := start + 1; end <= n-(left-1); end++ {
			s := 0.0
			for _, v := range lat[start:end] {
				s += v
			}
			m := cur
			if s > m {
				m = s
			}
			rec(end, left-1, m)
		}
	}
	rec(0, k, 0)
	return best
}

// FuzzShardPartition checks the two shard-partition invariants on arbitrary
// inputs: the K stages cover every layer exactly once (contiguous, in
// order, non-empty), and the balance is never worse than total/K plus the
// single worst layer — the bound a greedy fill guarantees, which the exact
// DP can only improve on.
func FuzzShardPartition(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50}, uint8(2))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 200}, uint8(4))
	f.Add([]byte{0, 0, 0, 5}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw uint8) {
		if len(raw) == 0 || len(raw) > 256 {
			t.Skip()
		}
		lat := make([]float64, len(raw))
		total, maxLayer := 0.0, 0.0
		for i, b := range raw {
			lat[i] = float64(b)
			total += lat[i]
			if lat[i] > maxLayer {
				maxLayer = lat[i]
			}
		}
		k := 1 + int(kRaw)%len(lat)
		stages, err := ShardLayers(lat, k)
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		if len(stages) != k {
			t.Fatalf("got %d stages, want %d", len(stages), k)
		}
		next := 0
		maxStage := 0.0
		for i, s := range stages {
			if s.Lo != next || s.Hi <= s.Lo {
				t.Fatalf("stage %d [%d,%d) breaks coverage at %d", i, s.Lo, s.Hi, next)
			}
			sum := 0.0
			for _, v := range lat[s.Lo:s.Hi] {
				sum += v
			}
			if math.Abs(sum-s.LatencyNS) > 1e-9 {
				t.Fatalf("stage %d latency %v, layers sum %v", i, s.LatencyNS, sum)
			}
			if s.LatencyNS > maxStage {
				maxStage = s.LatencyNS
			}
			next = s.Hi
		}
		if next != len(lat) {
			t.Fatalf("stages end at %d, want %d", next, len(lat))
		}
		if bound := total/float64(k) + maxLayer; maxStage > bound+1e-9 {
			t.Fatalf("max stage %v exceeds balance bound %v", maxStage, bound)
		}
	})
}
