package accel

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderOccupancy writes an ASCII view of the plan's occupied tiles: one
// line per tile, one cell per slot, each slot labeled with the letter of
// the layer occupying it ('a' = L1, 'b' = L2, …, wrapping for deep models;
// '.' = empty). It is the debugging view the hetmap tool exposes.
func (p *Plan) RenderOccupancy(w io.Writer) error {
	tiles := make([]*Tile, 0, len(p.Tiles))
	for _, t := range p.Tiles {
		if t.Used() > 0 {
			tiles = append(tiles, t)
		}
	}
	sort.Slice(tiles, func(i, j int) bool { return tiles[i].ID < tiles[j].ID })
	if _, err := fmt.Fprintf(w, "%d occupied tiles (%c = L1, %c = L2, …; . = empty slot)\n",
		len(tiles), layerGlyph(0), layerGlyph(1)); err != nil {
		return err
	}
	for _, t := range tiles {
		cells := make([]byte, 0, t.Slots)
		for _, o := range t.Occupants {
			g := layerGlyph(o.LayerIndex)
			for i := 0; i < o.Slots; i++ {
				cells = append(cells, g)
			}
		}
		for len(cells) < t.Slots {
			cells = append(cells, '.')
		}
		shared := ""
		if t.SharesLayers() {
			shared = "  (shared)"
		}
		if _, err := fmt.Fprintf(w, "  tile %4d %-9s [%s]%s\n", t.ID, t.Shape.String(), string(cells), shared); err != nil {
			return err
		}
	}
	return nil
}

// layerGlyph maps a layer index to a display letter, cycling a–z then A–Z.
func layerGlyph(index int) byte {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return letters[index%len(letters)]
}

// OccupancySummary returns a one-line histogram of tile fill levels, e.g.
// "fill: 4/4×12 3/4×2 1/4×1".
func (p *Plan) OccupancySummary() string {
	counts := map[int]int{}
	slots := 0
	for _, t := range p.Tiles {
		if t.Used() > 0 {
			counts[t.Used()]++
			slots = t.Slots
		}
	}
	levels := make([]int, 0, len(counts))
	for l := range counts {
		levels = append(levels, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	parts := make([]string, 0, len(levels))
	for _, l := range levels {
		parts = append(parts, fmt.Sprintf("%d/%d×%d", l, slots, counts[l]))
	}
	return "fill: " + strings.Join(parts, " ")
}
