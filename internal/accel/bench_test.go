package accel

import (
	"testing"

	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/xbar"
)

func BenchmarkBuildPlanTileBased(b *testing.B) {
	cfg := hw.DefaultConfig()
	m := dnn.VGG16()
	st := Homogeneous(m.NumMappable(), xbar.Square(64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPlan(cfg, m, st, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPlanTileShared(b *testing.B) {
	cfg := hw.DefaultConfig()
	m := dnn.VGG16()
	st := Homogeneous(m.NumMappable(), xbar.Square(64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPlan(cfg, m, st, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPlanResNet152(b *testing.B) {
	cfg := hw.DefaultConfig()
	m := dnn.ResNet152()
	st := Homogeneous(m.NumMappable(), xbar.Rect(288, 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPlan(cfg, m, st, true); err != nil {
			b.Fatal(err)
		}
	}
}
