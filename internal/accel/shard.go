package accel

import "fmt"

// Pipeline-parallel model sharding: a Plan's layers are cut into K
// contiguous stages so each stage can live on its own replica and requests
// flow through the chain. Layers already map independently (per-layer
// heterogeneous shapes, §3.1), so any contiguous cut is a valid shard
// boundary; the partitioner's job is purely load balance — minimize the
// slowest stage, which bounds the pipeline's steady-state interval.

// Stage is one contiguous pipeline stage: layers [Lo, Hi) of the plan's
// mappable layer sequence, with the stage's summed per-inference latency.
type Stage struct {
	Lo, Hi    int
	LatencyNS float64
}

// Layers returns the number of layers in the stage.
func (s Stage) Layers() int { return s.Hi - s.Lo }

// ShardLayers partitions n per-layer latencies into k contiguous non-empty
// stages minimizing the maximum stage latency — the classic linear
// partition problem, solved exactly by DP in O(n²k). The optimum is never
// worse than total/k + max(layer): a greedy fill against that cap always
// fits in k bins, so the fuzz target asserts that bound.
func ShardLayers(latencies []float64, k int) ([]Stage, error) {
	n := len(latencies)
	if n == 0 {
		return nil, fmt.Errorf("accel: sharding an empty layer list")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("accel: %d stages for %d layers", k, n)
	}
	for i, l := range latencies {
		if l < 0 || l != l {
			return nil, fmt.Errorf("accel: layer %d latency %v", i, l)
		}
	}
	prefix := make([]float64, n+1)
	for i, l := range latencies {
		prefix[i+1] = prefix[i] + l
	}
	sum := func(lo, hi int) float64 { return prefix[hi] - prefix[lo] }

	// dp[j][i] = minimal max-stage latency splitting layers [0,i) into j
	// stages; cut[j][i] = the last stage's start achieving it.
	const inf = 1e308
	dp := make([][]float64, k+1)
	cut := make([][]int, k+1)
	for j := 0; j <= k; j++ {
		dp[j] = make([]float64, n+1)
		cut[j] = make([]int, n+1)
		for i := range dp[j] {
			dp[j][i] = inf
		}
	}
	dp[0][0] = 0
	for j := 1; j <= k; j++ {
		for i := j; i <= n-(k-j); i++ {
			for c := j - 1; c < i; c++ {
				if dp[j-1][c] >= inf {
					continue
				}
				m := dp[j-1][c]
				if s := sum(c, i); s > m {
					m = s
				}
				if m < dp[j][i] {
					dp[j][i] = m
					cut[j][i] = c
				}
			}
		}
	}
	stages := make([]Stage, k)
	hi := n
	for j := k; j >= 1; j-- {
		lo := cut[j][hi]
		stages[j-1] = Stage{Lo: lo, Hi: hi, LatencyNS: sum(lo, hi)}
		hi = lo
	}
	return stages, nil
}
