package accel

import (
	"strings"
	"testing"

	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/xbar"
)

// summaryModels are the workloads the bit-equality sweep covers: the three
// paper models plus the grouped-convolution stress model.
func summaryModels() []*dnn.Model {
	return append(dnn.Zoo(), dnn.DepthwiseNet())
}

// summaryStrategies builds a representative strategy set for a model:
// every homogeneous candidate plus deterministic mixed patterns that stripe
// the candidates across layers (producing several partial tiles per shape
// group, the case tile sharing acts on).
func summaryStrategies(m *dnn.Model, cands []xbar.Shape) []Strategy {
	n := m.NumMappable()
	var out []Strategy
	for _, s := range cands {
		out = append(out, Homogeneous(n, s))
	}
	for stride := 1; stride <= 3; stride++ {
		st := make(Strategy, n)
		for i := range st {
			st[i] = cands[(i/stride)%len(cands)]
		}
		out = append(out, st)
	}
	return out
}

// TestSummarizeMatchesPlan asserts the tile-free Summary reproduces the
// materialized plan's aggregates bit-identically (exact float equality) for
// both allocation schemes across models, candidate pools, and strategies.
func TestSummarizeMatchesPlan(t *testing.T) {
	cfg := hw.DefaultConfig()
	for _, m := range summaryModels() {
		for _, st := range summaryStrategies(m, xbar.DefaultCandidates()) {
			for _, shared := range []bool{false, true} {
				p, err := BuildPlan(cfg, m, st, shared)
				if err != nil {
					t.Fatalf("%s %v shared=%t: build: %v", m.Name, st, shared, err)
				}
				sum, err := Summarize(cfg, m, st, shared)
				if err != nil {
					t.Fatalf("%s %v shared=%t: summarize: %v", m.Name, st, shared, err)
				}
				if got, want := sum.Utilization, p.Utilization(); got != want {
					t.Errorf("%s shared=%t: utilization %v != plan %v", m.Name, shared, got, want)
				}
				if got, want := sum.AreaUM2, p.Area(); got != want {
					t.Errorf("%s shared=%t: area %v != plan %v", m.Name, shared, got, want)
				}
				if got, want := sum.OccupiedTiles, p.OccupiedTiles(); got != want {
					t.Errorf("%s shared=%t: occupied tiles %d != plan %d", m.Name, shared, got, want)
				}
				if got, want := sum.TotalTiles, len(p.Tiles); got != want {
					t.Errorf("%s shared=%t: total tiles %d != plan %d", m.Name, shared, got, want)
				}
				counts := p.LayerTileCounts()
				for i := range counts {
					if sum.LayerTiles[i] != counts[i] {
						t.Errorf("%s shared=%t: layer %d tiles %d != plan %d",
							m.Name, shared, i, sum.LayerTiles[i], counts[i])
					}
				}
			}
		}
	}
}

// TestSummarizeBankOverflow asserts Summarize rejects over-capacity mappings
// with the same error Build produces.
func TestSummarizeBankOverflow(t *testing.T) {
	cfg := hw.DefaultConfig()
	cfg.TilesPerBank = 4
	m := dnn.VGG16()
	st := Homogeneous(m.NumMappable(), xbar.Square(64))
	_, planErr := BuildPlan(cfg, m, st, true)
	_, sumErr := Summarize(cfg, m, st, true)
	if planErr == nil || sumErr == nil {
		t.Fatalf("want bank-overflow errors, got plan=%v summary=%v", planErr, sumErr)
	}
	if planErr.Error() != sumErr.Error() {
		t.Errorf("error mismatch:\n plan:    %v\n summary: %v", planErr, sumErr)
	}
	if !strings.Contains(sumErr.Error(), "bank has 4") {
		t.Errorf("unexpected error %v", sumErr)
	}
}

// TestLayerTileCountsMatchesLayerTiles pins the one-pass helper to the
// per-layer scan it replaces.
func TestLayerTileCountsMatchesLayerTiles(t *testing.T) {
	cfg := hw.DefaultConfig()
	m := dnn.VGG16()
	st := make(Strategy, m.NumMappable())
	cands := xbar.DefaultCandidates()
	for i := range st {
		st[i] = cands[i%len(cands)]
	}
	for _, shared := range []bool{false, true} {
		p, err := BuildPlan(cfg, m, st, shared)
		if err != nil {
			t.Fatal(err)
		}
		counts := p.LayerTileCounts()
		for i, la := range p.Layers {
			if want := p.LayerTiles(la.Layer.Index); counts[i] != want {
				t.Errorf("shared=%t layer %d: counts %d, LayerTiles %d", shared, i, counts[i], want)
			}
		}
	}
}
