package accel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"autohet/internal/xbar"
)

func TestParseStrategy(t *testing.T) {
	st, err := ParseStrategy("L1-L10:512x512 L11-L16:256x256")
	if err != nil {
		t.Fatal(err)
	}
	want := ManualHetero(16)
	if len(st) != 16 {
		t.Fatalf("len = %d", len(st))
	}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("layer %d: %v vs %v", i, st[i], want[i])
		}
	}
}

func TestParseStrategySingles(t *testing.T) {
	st, err := ParseStrategy("L1:32x32 L2:36x32 L3-L3:64x64")
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 3 || st[1] != xbar.Rect(36, 32) || st[2] != xbar.Square(64) {
		t.Fatalf("st = %v", st)
	}
}

func TestParseStrategyErrors(t *testing.T) {
	bad := []string{
		"",
		"(empty)",
		"L1",
		"L1:badshape",
		"X1:32x32",
		"L2:32x32",          // must start at L1
		"L1:32x32 L3:32x32", // gap
		"L1-L0:32x32",       // inverted range
		"L1:32x32 L1:64x64", // overlap
		"L1-X5:32x32",       // malformed range
		"La:32x32",          // non-numeric
	}
	for _, text := range bad {
		if _, err := ParseStrategy(text); err == nil {
			t.Errorf("ParseStrategy(%q) succeeded, want error", text)
		}
	}
}

// Property: String → ParseStrategy is the identity for any valid strategy.
func TestStrategyStringRoundTrip(t *testing.T) {
	pool := xbar.MixedPool()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		st := make(Strategy, n)
		for i := range st {
			st[i] = pool[rng.Intn(len(pool))]
		}
		back, err := ParseStrategy(st.String())
		if err != nil || len(back) != n {
			return false
		}
		for i := range st {
			if back[i] != st[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
