package accel

import (
	"sort"

	"autohet/internal/xbar"
)

// Tile-shared crossbar allocation (paper §3.4, Algorithm 1). Tiles are
// grouped by crossbar shape — only same-shape tiles may share. Within a
// group, tiles are sorted ascending by empty-slot count and a two-pointer
// sweep folds the tail tile's occupants (the emptiest tile, holding the
// fewest slots) into the head tile's free slots whenever they fit:
// hEmpty + tEmpty ≥ slotsPerTile ⇔ tUsed ≤ hEmpty. The freed tail tile is
// released for other layers or models.

func (p *Plan) applyTileSharing() {
	p.Shared = true
	groups := map[xbar.Shape][]*Tile{}
	var shapes []xbar.Shape
	for _, t := range p.Tiles {
		if t.Used() == 0 {
			continue
		}
		if _, ok := groups[t.Shape]; !ok {
			shapes = append(shapes, t.Shape)
		}
		groups[t.Shape] = append(groups[t.Shape], t)
	}
	// Deterministic group order (map iteration is randomized).
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i].R != shapes[j].R {
			return shapes[i].R < shapes[j].R
		}
		return shapes[i].C < shapes[j].C
	})
	for _, s := range shapes {
		p.shareGroup(groups[s])
	}
}

// shareGroup runs Algorithm 1 over one same-shape tile group.
func (p *Plan) shareGroup(list []*Tile) {
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].Empty() != list[j].Empty() {
			return list[i].Empty() < list[j].Empty()
		}
		return list[i].ID < list[j].ID
	})
	head, tail := 0, len(list)-1
	for head < tail {
		h, t := list[head], list[tail]
		if h.Empty()+t.Empty() >= h.Slots {
			p.moveOccupants(t, h)
			p.Remaps[h.ID] = append(p.Remaps[h.ID], t.ID)
			tail--
		} else {
			head++
		}
	}
}

// RepackOptimal is the ablation alternative to Algorithm 1 (see DESIGN.md
// §5): within each shape group it repacks every occupied slot into
// ⌈used/slotsPerTile⌉ tiles — the bin-packing optimum when layer slots may
// split arbitrarily across tiles. It frees the most tiles possible but
// moves far more weight data than the two-pointer scheme; the benchmark
// BenchmarkAllocSchemes contrasts the two.
func (p *Plan) RepackOptimal() {
	p.Shared = true
	groups := map[xbar.Shape][]*Tile{}
	for _, t := range p.Tiles {
		if t.Used() > 0 {
			groups[t.Shape] = append(groups[t.Shape], t)
		}
	}
	for _, list := range groups {
		// Gather per-layer slot totals in this group.
		perLayer := map[int]int{}
		var order []int
		for _, t := range list {
			for _, o := range t.Occupants {
				if _, ok := perLayer[o.LayerIndex]; !ok {
					order = append(order, o.LayerIndex)
				}
				perLayer[o.LayerIndex] += o.Slots
			}
			t.Occupants = nil
		}
		sort.Ints(order)
		// Refill tiles densely in ID order.
		sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
		ti := 0
		for _, li := range order {
			need := perLayer[li]
			la := p.Layers[li]
			la.Placements = la.Placements[:0]
			for need > 0 {
				t := list[ti]
				if t.Empty() == 0 {
					ti++
					continue
				}
				put := need
				if put > t.Empty() {
					put = t.Empty()
				}
				t.place(li, put)
				la.Placements = append(la.Placements, Placement{TileID: t.ID, Slots: put})
				need -= put
				if t.Empty() == 0 {
					ti++
				}
			}
		}
	}
}

// moveOccupants relocates every occupant of src into dst, updating the
// owning layers' placement records. src ends fully empty (released).
func (p *Plan) moveOccupants(src, dst *Tile) {
	for _, o := range src.Occupants {
		dst.place(o.LayerIndex, o.Slots)
		la := p.Layers[o.LayerIndex]
		// Drop the src placement and fold its slots into a dst placement.
		kept := la.Placements[:0]
		moved := 0
		for _, pl := range la.Placements {
			if pl.TileID == src.ID {
				moved += pl.Slots
				continue
			}
			kept = append(kept, pl)
		}
		la.Placements = kept
		merged := false
		for i := range la.Placements {
			if la.Placements[i].TileID == dst.ID {
				la.Placements[i].Slots += moved
				merged = true
				break
			}
		}
		if !merged {
			la.Placements = append(la.Placements, Placement{TileID: dst.ID, Slots: moved})
		}
	}
	src.Occupants = nil
}
